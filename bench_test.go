// Package causalfl's top-level benchmarks regenerate every table and figure
// of the paper's evaluation section, plus ablations of the design choices
// called out in DESIGN.md and microbenchmarks of the hot paths.
//
// Experiment benches use the abbreviated (Quick) collection windows so a full
// `go test -bench=. -benchmem` pass stays in the minutes range; the headline
// paper-length runs are produced by `causalfl tables` / `causalfl figures`
// and recorded in EXPERIMENTS.md. Accuracy and informativeness are attached
// to each bench result via b.ReportMetric.
package causalfl

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/baselines"
	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/eval"
	"causalfl/internal/load"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
	"causalfl/internal/stats"
	"causalfl/internal/stream"
)

var benchOpts = eval.Options{Seed: 42, Quick: true}

// --- Table I ---------------------------------------------------------------

// tableIBench trains at 1x and evaluates at the given multiplier.
func tableIBench(b *testing.B, build apps.Builder, mult float64) {
	b.Helper()
	var acc, info float64
	for i := 0; i < b.N; i++ {
		cfg := benchOpts.Apply(eval.Config{
			Build:          build,
			Metrics:        metrics.DerivedAll(),
			TestMultiplier: mult,
		})
		model, report, err := eval.TrainAndEvaluate(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = model
		acc, info = report.Accuracy, report.MeanInformativeness
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(info, "informativeness")
}

func BenchmarkTableI_CausalBench_1x(b *testing.B) { tableIBench(b, causalbench.Build, 1) }
func BenchmarkTableI_CausalBench_4x(b *testing.B) { tableIBench(b, causalbench.Build, 4) }
func BenchmarkTableI_RobotShop_1x(b *testing.B)   { tableIBench(b, robotshop.Build, 1) }
func BenchmarkTableI_RobotShop_4x(b *testing.B)   { tableIBench(b, robotshop.Build, 4) }

// --- Table II --------------------------------------------------------------

// tableIIBench scores one metric-set preset at 4x test load.
func tableIIBench(b *testing.B, build apps.Builder, preset string) {
	b.Helper()
	set, err := metrics.Preset(preset)
	if err != nil {
		b.Fatal(err)
	}
	union := append(metrics.RawAll(), metrics.DerivedAll()...)
	var acc, info float64
	for i := 0; i < b.N; i++ {
		cfg := benchOpts.Apply(eval.Config{
			Build:          build,
			Metrics:        union,
			TestMultiplier: 4,
		})
		scores, err := eval.CompareTechniques(context.Background(), cfg, []baselines.Technique{
			&baselines.Paper{MetricNames: metrics.Names(set)},
		})
		if err != nil {
			b.Fatal(err)
		}
		acc, info = scores[0].Accuracy, scores[0].MeanInformativeness
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(info, "informativeness")
}

func BenchmarkTableII_CausalBench_RawMsg(b *testing.B) {
	tableIIBench(b, causalbench.Build, metrics.SetRawMsg)
}
func BenchmarkTableII_CausalBench_RawCPU(b *testing.B) {
	tableIIBench(b, causalbench.Build, metrics.SetRawCPU)
}
func BenchmarkTableII_CausalBench_RawAll(b *testing.B) {
	tableIIBench(b, causalbench.Build, metrics.SetRawAll)
}
func BenchmarkTableII_CausalBench_DerivedMsg(b *testing.B) {
	tableIIBench(b, causalbench.Build, metrics.SetDerivedMsg)
}
func BenchmarkTableII_CausalBench_DerivedCPU(b *testing.B) {
	tableIIBench(b, causalbench.Build, metrics.SetDerivedCPU)
}
func BenchmarkTableII_CausalBench_DerivedAll(b *testing.B) {
	tableIIBench(b, causalbench.Build, metrics.SetDerivedAll)
}
func BenchmarkTableII_RobotShop_RawAll(b *testing.B) {
	tableIIBench(b, robotshop.Build, metrics.SetRawAll)
}
func BenchmarkTableII_RobotShop_DerivedAll(b *testing.B) {
	tableIIBench(b, robotshop.Build, metrics.SetDerivedAll)
}

// --- Figures ---------------------------------------------------------------

func BenchmarkFig1_MetricDependentCausality(b *testing.B) {
	var distinct float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunFig1(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		// Count pattern/target combinations whose #logs and #requests
		// worlds differ — the figure's claim is that they all do.
		distinct = 0
		for _, byMetric := range result.Sets {
			for target := range byMetric[metrics.MsgRate.Name] {
				logs := byMetric[metrics.MsgRate.Name][target]
				reqs := byMetric[metrics.ReqRate.Name][target]
				if !equalSets(logs, reqs) {
					distinct++
				}
			}
		}
	}
	b.ReportMetric(distinct, "divergent-worlds")
}

func BenchmarkFig2_LoadConfounder(b *testing.B) {
	var shiftI, shiftC float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunFig2(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		shiftI = result.FaultCI.Mean/result.HealthyI.Mean - 1
		shiftC = result.FaultIC.Mean/result.HealthyC.Mean - 1
	}
	b.ReportMetric(shiftI*100, "reqI-shift-%")
	b.ReportMetric(shiftC*100, "reqC-shift-%")
}

func BenchmarkCausalSetsExample(b *testing.B) {
	var match float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunCausalSetsExample(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		match = 0
		if equalSets(result.MsgRateSet, []string{"A", "B", "E"}) {
			match++
		}
		if equalSets(result.CPUSet, []string{"B", "C", "E"}) {
			match++
		}
	}
	b.ReportMetric(match, "paper-matching-sets")
}

// --- Baseline comparison (§VI-B / §VII narrative) ----------------------------

func baselineBench(b *testing.B, build apps.Builder, name string) {
	b.Helper()
	var ourAcc, errlogInfo float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunBaselineComparison(context.Background(), benchOpts, build, name)
		if err != nil {
			b.Fatal(err)
		}
		ourAcc = result.Scores[0].Accuracy
		errlogInfo = result.Scores[1].MeanInformativeness
	}
	b.ReportMetric(ourAcc, "our-accuracy")
	b.ReportMetric(errlogInfo, "errlog-informativeness")
}

func BenchmarkBaselines_CausalBench(b *testing.B) {
	baselineBench(b, causalbench.Build, causalbench.Name)
}
func BenchmarkBaselines_RobotShop(b *testing.B) {
	baselineBench(b, robotshop.Build, robotshop.Name)
}

// --- Ablations (design choices from DESIGN.md §5) ---------------------------

// ablationRun runs a CausalBench campaign with a config mutation.
func ablationRun(b *testing.B, mutate func(*eval.Config)) (acc, info float64) {
	b.Helper()
	cfg := benchOpts.Apply(eval.Config{
		Build:          causalbench.Build,
		Metrics:        metrics.DerivedAll(),
		TestMultiplier: 4,
	})
	mutate(&cfg)
	_, report, err := eval.TrainAndEvaluate(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return report.Accuracy, report.MeanInformativeness
}

func benchAblationAlpha(b *testing.B, alpha float64) {
	var acc, info float64
	for i := 0; i < b.N; i++ {
		acc, info = ablationRun(b, func(c *eval.Config) { c.Alpha = alpha })
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(info, "informativeness")
}

func BenchmarkAblation_Alpha001(b *testing.B) { benchAblationAlpha(b, 0.01) }
func BenchmarkAblation_Alpha005(b *testing.B) { benchAblationAlpha(b, 0.05) }
func BenchmarkAblation_Alpha010(b *testing.B) { benchAblationAlpha(b, 0.10) }

func benchAblationWindow(b *testing.B, length, hop time.Duration) {
	var acc, info float64
	for i := 0; i < b.N; i++ {
		acc, info = ablationRun(b, func(c *eval.Config) {
			c.WindowLength = length
			c.WindowHop = hop
		})
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(info, "informativeness")
}

func BenchmarkAblation_Window15s(b *testing.B) {
	benchAblationWindow(b, 15*time.Second, 7500*time.Millisecond)
}
func BenchmarkAblation_Window30s(b *testing.B) {
	benchAblationWindow(b, 30*time.Second, 15*time.Second)
}
func BenchmarkAblation_Window60s(b *testing.B) {
	benchAblationWindow(b, 60*time.Second, 30*time.Second)
}

func benchAblationDuration(b *testing.B, d time.Duration) {
	var acc, info float64
	for i := 0; i < b.N; i++ {
		acc, info = ablationRun(b, func(c *eval.Config) {
			c.BaselineDuration = d
			c.FaultDuration = d
		})
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(info, "informativeness")
}

func BenchmarkAblation_Duration75s(b *testing.B)  { benchAblationDuration(b, 75*time.Second) }
func BenchmarkAblation_Duration150s(b *testing.B) { benchAblationDuration(b, 150*time.Second) }
func BenchmarkAblation_Duration300s(b *testing.B) { benchAblationDuration(b, 300*time.Second) }

// benchVoteRule compares the localizer's vote rules on identical data.
func benchVoteRule(b *testing.B, rule core.VoteRule) {
	var acc, info float64
	union := metrics.DerivedAll()
	for i := 0; i < b.N; i++ {
		cfg := benchOpts.Apply(eval.Config{
			Build:          causalbench.Build,
			Metrics:        union,
			TestMultiplier: 4,
		})
		scores, err := eval.CompareTechniques(context.Background(), cfg, []baselines.Technique{
			&baselines.Paper{Rule: rule},
		})
		if err != nil {
			b.Fatal(err)
		}
		acc, info = scores[0].Accuracy, scores[0].MeanInformativeness
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(info, "informativeness")
}

func BenchmarkAblation_VoteIntersectionParsimony(b *testing.B) {
	benchVoteRule(b, core.IntersectionVote)
}
func BenchmarkAblation_VotePureIntersection(b *testing.B) {
	benchVoteRule(b, core.PureIntersectionVote)
}
func BenchmarkAblation_VoteJaccard(b *testing.B) {
	benchVoteRule(b, core.JaccardVote)
}

// benchTestRule ablates the two-sample decision rule itself.
func benchTestRule(b *testing.B, test stats.TwoSampleTest) {
	var acc, info float64
	for i := 0; i < b.N; i++ {
		cfg := benchOpts.Apply(eval.Config{
			Build:          causalbench.Build,
			Metrics:        metrics.DerivedAll(),
			TestMultiplier: 4,
		})
		scores, err := eval.CompareTechniques(context.Background(), cfg, []baselines.Technique{
			&baselines.Paper{Test: test},
		})
		if err != nil {
			b.Fatal(err)
		}
		acc, info = scores[0].Accuracy, scores[0].MeanInformativeness
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(info, "informativeness")
}

// benchDecision ablates per-test alpha vs Benjamini-Hochberg FDR control.
func benchDecision(b *testing.B, fdr float64) {
	var acc, info float64
	for i := 0; i < b.N; i++ {
		cfg := benchOpts.Apply(eval.Config{
			Build:          causalbench.Build,
			Metrics:        metrics.DerivedAll(),
			TestMultiplier: 4,
		})
		scores, err := eval.CompareTechniques(context.Background(), cfg, []baselines.Technique{
			&baselines.Paper{FDR: fdr},
		})
		if err != nil {
			b.Fatal(err)
		}
		acc, info = scores[0].Accuracy, scores[0].MeanInformativeness
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(info, "informativeness")
}

func BenchmarkAblation_DecisionAlpha(b *testing.B) { benchDecision(b, 0) }
func BenchmarkAblation_DecisionFDR(b *testing.B)   { benchDecision(b, 0.05) }

func BenchmarkAblation_TestGuardedKS(b *testing.B) {
	benchTestRule(b, stats.GuardedTest{Inner: stats.KSTest{}})
}
func BenchmarkAblation_TestRawKS(b *testing.B) {
	benchTestRule(b, stats.KSTest{})
}
func BenchmarkAblation_TestMannWhitney(b *testing.B) {
	benchTestRule(b, stats.GuardedTest{Inner: stats.MannWhitneyTest{}})
}
func BenchmarkAblation_TestPermutation(b *testing.B) {
	benchTestRule(b, stats.GuardedTest{Inner: stats.PermutationTest{Rounds: 100, Seed: 1}})
}

// --- Extensions --------------------------------------------------------------

func BenchmarkExtension_FaultTypes(b *testing.B) {
	var crossLatency, matchedLatency float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunFaultTypeExtension(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range result.Rows {
			if row.Fault == "latency" {
				if row.TrainedOn == "latency" {
					matchedLatency = row.Accuracy
				} else {
					crossLatency = row.Accuracy
				}
			}
		}
	}
	b.ReportMetric(crossLatency, "latency-acc-crosstrained")
	b.ReportMetric(matchedLatency, "latency-acc-matched")
}

func BenchmarkExtension_MultiFault(b *testing.B) {
	var both float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunMultiFaultExtension(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		both = float64(result.BothInTop2) / float64(result.Pairs)
	}
	b.ReportMetric(both, "pairs-fully-recovered")
}

func BenchmarkExtension_TraceComparison(b *testing.B) {
	var traceAcc, ourAcc float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunTraceComparison(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		traceAcc, ourAcc = result.TraceAccuracy, result.OurAccuracy
	}
	b.ReportMetric(traceAcc, "trace-rca-accuracy")
	b.ReportMetric(ourAcc, "causalfl-accuracy")
}

func BenchmarkExtension_SeedSweep(b *testing.B) {
	var mean, std float64
	for i := 0; i < b.N; i++ {
		cfg := benchOpts.Apply(eval.Config{
			Build:          causalbench.Build,
			Metrics:        metrics.DerivedAll(),
			TestMultiplier: 4,
		})
		result, err := eval.SweepSeeds(context.Background(), cfg, []int64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		mean, std = result.MeanAccuracy, result.StdAccuracy
	}
	b.ReportMetric(mean, "mean-accuracy")
	b.ReportMetric(std, "std-accuracy")
}

func BenchmarkExtension_NonstationaryLoad(b *testing.B) {
	var rawAcc, derivedAcc float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunNonstationaryExtension(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range result.Rows {
			if row.Test != "raw-ks" {
				continue
			}
			switch row.Preset {
			case metrics.SetRawAll:
				rawAcc = row.Accuracy
			case metrics.SetDerivedAll:
				derivedAcc = row.Accuracy
			}
		}
	}
	b.ReportMetric(rawAcc, "rawks-raw-accuracy")
	b.ReportMetric(derivedAcc, "rawks-derived-accuracy")
}

func BenchmarkExtension_Interference(b *testing.B) {
	var paperAlarm, extAlarm float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunInterferenceExtension(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range result.Rows {
			v := 0.0
			if row.AlarmRaised {
				v = 1
			}
			switch row.Preset {
			case metrics.SetDerivedAll:
				paperAlarm = v
			case metrics.SetDerivedExt:
				extAlarm = v
			}
		}
	}
	b.ReportMetric(paperAlarm, "false-alarm-derived-all")
	b.ReportMetric(extAlarm, "false-alarm-derived-ext")
}

func BenchmarkExtension_ContaminatedBaseline(b *testing.B) {
	var clean, dirty float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunContaminationExtension(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		clean, dirty = result.CleanInformativeness, result.DirtyInformativeness
	}
	b.ReportMetric(clean, "clean-informativeness")
	b.ReportMetric(dirty, "dirty-informativeness")
}

func BenchmarkExtension_TrainingBudget(b *testing.B) {
	var accHalf, accFull float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunBudgetExtension(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range result.Rows {
			switch row.TrainedTargets {
			case 4:
				accHalf = row.Accuracy
			case 8:
				accFull = row.Accuracy
			}
		}
	}
	b.ReportMetric(accHalf, "accuracy-half-budget")
	b.ReportMetric(accFull, "accuracy-full-budget")
}

func BenchmarkExtension_Scalability36(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		result, err := eval.RunScalabilityExtension(context.Background(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		acc = result.Rows[len(result.Rows)-1].Accuracy
	}
	b.ReportMetric(acc, "accuracy-at-36-services")
}

// --- Microbenchmarks of the hot paths ----------------------------------------

func BenchmarkMicro_KSTest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 19)
	y := make([]float64, 19)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 0.5
	}
	var ks stats.KSTest
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ks.PValue(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_GuardedKSTest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 19)
	y := make([]float64, 19)
	for i := range x {
		x[i] = 5 + rng.NormFloat64()*0.1
		y[i] = 5 + rng.NormFloat64()*0.1
	}
	test := stats.GuardedTest{Inner: stats.KSTest{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := test.PValue(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_SimulatorThroughput(b *testing.B) {
	// Events per second of the discrete-event engine driving CausalBench
	// under the paper's default load.
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(7)
		app, err := causalbench.Build(eng)
		if err != nil {
			b.Fatal(err)
		}
		gen, err := load.NewGenerator(app, load.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := gen.Start(); err != nil {
			b.Fatal(err)
		}
		eng.Run(60 * time.Second) // one virtual minute per iteration
	}
}

func BenchmarkMicro_Localize(b *testing.B) {
	cfg := benchOpts.Apply(eval.Config{
		Build:   causalbench.Build,
		Metrics: metrics.DerivedAll(),
	})
	model, err := eval.Train(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	production, err := eval.CollectProduction(context.Background(), cfg, 1, "B", chaos.Unavailable(), 99)
	if err != nil {
		b.Fatal(err)
	}
	localizer, err := core.NewLocalizer()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := localizer.Localize(context.Background(), model, production); err != nil {
			b.Fatal(err)
		}
	}
}

// equalSets compares two string sets ignoring order.
func equalSets(a, c []string) bool {
	if len(a) != len(c) {
		return false
	}
	m := make(map[string]bool, len(a))
	for _, s := range a {
		m[s] = true
	}
	for _, s := range c {
		if !m[s] {
			return false
		}
	}
	return true
}

// --- Parallel engine (serial vs pooled) ------------------------------------

// benchParallelLearn times Algorithm 1's KS matrix alone (collection done
// once, untimed) at a fixed worker count. The learned model is identical at
// every count; only the wall clock may differ.
func benchParallelLearn(b *testing.B, workers int) {
	b.Helper()
	cfg := benchOpts.Apply(eval.Config{
		Build:   causalbench.Build,
		Metrics: metrics.DerivedAll(),
	})
	data, err := eval.CollectTraining(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	learner, err := core.NewLearner(core.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learner.Learn(context.Background(), data.Baseline, data.Interventions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel_Learn_Serial(b *testing.B) { benchParallelLearn(b, 1) }
func BenchmarkParallel_Learn_Pooled(b *testing.B) { benchParallelLearn(b, runtime.GOMAXPROCS(0)) }

// benchParallelLocalize times Algorithm 2 at a fixed worker count.
func benchParallelLocalize(b *testing.B, workers int) {
	b.Helper()
	cfg := benchOpts.Apply(eval.Config{
		Build:   causalbench.Build,
		Metrics: metrics.DerivedAll(),
	})
	model, err := eval.Train(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	production, err := eval.CollectProduction(context.Background(), cfg, 1, "B", chaos.Unavailable(), 99)
	if err != nil {
		b.Fatal(err)
	}
	localizer, err := core.NewLocalizer(core.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := localizer.Localize(context.Background(), model, production); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel_Localize_Serial(b *testing.B) { benchParallelLocalize(b, 1) }
func BenchmarkParallel_Localize_Pooled(b *testing.B) {
	benchParallelLocalize(b, runtime.GOMAXPROCS(0))
}

// benchParallelCampaign times the full train-and-evaluate campaign with
// sharded rounds and per-case localization at a fixed worker count.
func benchParallelCampaign(b *testing.B, workers int) {
	b.Helper()
	var acc float64
	for i := 0; i < b.N; i++ {
		cfg := benchOpts.Apply(eval.Config{
			Build:   causalbench.Build,
			Metrics: metrics.DerivedAll(),
		})
		cfg.Workers = workers
		_, report, err := eval.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc = report.Accuracy
	}
	b.ReportMetric(acc, "accuracy")
}

func BenchmarkParallel_Campaign_Serial(b *testing.B) { benchParallelCampaign(b, 1) }
func BenchmarkParallel_Campaign_Pooled(b *testing.B) {
	benchParallelCampaign(b, runtime.GOMAXPROCS(0))
}

// --- Streaming engine ------------------------------------------------------

// streamBenchWorkload is the reference online-localization workload: 64
// services, 8 metrics, a half-way fault, 60 production hops. The same shape
// backs `causalfl bench -stream` and BENCH_stream.json.
func streamBenchWorkload(b *testing.B) (*stream.SynthWorkload, *core.Model) {
	b.Helper()
	w, err := stream.NewSynth(stream.SynthConfig{
		Services: 64, Metrics: 8, BaselineLen: 24, Hops: 60,
		Seed: 42, FaultService: 32, FaultAfter: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w, w.Model()
}

// BenchmarkStream_IncrementalHops drives the streaming localizer one Step per
// hop; every KS statistic is updated in O(window) from the previous hop.
func BenchmarkStream_IncrementalHops(b *testing.B) {
	w, model := streamBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl, err := stream.NewLocalizer(model, stream.WithWindow(8))
		if err != nil {
			b.Fatal(err)
		}
		for _, hop := range w.Hops {
			if _, err := sl.Step(context.Background(), 0, hop); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStream_BatchPerTick recomputes from scratch on every hop: rebuild
// the sliding-window snapshot, then run the full batch localizer. This is the
// naive alternative the incremental engine replaces; verdicts are identical.
func BenchmarkStream_BatchPerTick(b *testing.B) {
	w, model := streamBenchWorkload(b)
	const window = 8
	batch, err := core.NewLocalizer()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shadow := make(map[string]map[string][]float64, len(w.MetricNames))
		for _, m := range w.MetricNames {
			shadow[m] = make(map[string][]float64, len(w.Services))
		}
		for _, hop := range w.Hops {
			snap := metrics.NewSnapshot(w.MetricNames, w.Services)
			for _, m := range w.MetricNames {
				for _, svc := range w.Services {
					s := append(shadow[m][svc], hop[m][svc])
					if len(s) > window {
						s = s[len(s)-window:]
					}
					shadow[m][svc] = s
					snap.Data[m][svc] = s
				}
			}
			if _, err := batch.Localize(context.Background(), model, snap); err != nil {
				b.Fatal(err)
			}
		}
	}
}
