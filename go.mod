module causalfl

go 1.22
