package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-duration", "30s", "-fault", "B"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRobotShop(t *testing.T) {
	if err := run([]string{"-app", "robotshop", "-duration", "20s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownApp(t *testing.T) {
	if err := run([]string{"-app", "nope"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-duration", "tomorrow"}); err == nil {
		t.Fatal("unparseable duration accepted")
	}
}
