// Command causalbench runs the CausalBench application under load in the
// simulator and prints a live telemetry summary — the quickest way to watch
// the benchmark's behaviour, with or without an injected fault.
//
// Usage:
//
//	causalbench [-app causalbench|robotshop] [-duration 2m] [-mult 1]
//	            [-fault SVC] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/chaos"
	"causalfl/internal/load"
	"causalfl/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "causalbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("causalbench", flag.ContinueOnError)
	appName := fs.String("app", causalbench.Name, "application to run")
	duration := fs.Duration("duration", 2*time.Minute, "virtual time to simulate")
	mult := fs.Float64("mult", 1, "load multiplier")
	fault := fs.String("fault", "", "inject http-service-unavailable into this service halfway through")
	seed := fs.Int64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var build apps.Builder
	switch *appName {
	case causalbench.Name:
		build = causalbench.Build
	case robotshop.Name:
		build = robotshop.Build
	default:
		return fmt.Errorf("unknown app %q", *appName)
	}

	eng := sim.NewEngine(*seed)
	app, err := build(eng)
	if err != nil {
		return err
	}
	gen, err := load.NewGenerator(app, load.Config{Multiplier: *mult})
	if err != nil {
		return err
	}
	if err := gen.Start(); err != nil {
		return err
	}
	injector, err := chaos.NewInjector(app.Cluster)
	if err != nil {
		return err
	}
	if *fault != "" {
		half := *duration / 2
		if err := injector.ScheduleWindow(*fault, chaos.Unavailable(), half, *duration-half, func(e error) {
			fmt.Fprintln(os.Stderr, "fault scheduling:", e)
		}); err != nil {
			return err
		}
		fmt.Printf("scheduling %s on %s at %v\n", chaos.ServiceUnavailable, *fault, half)
	}

	before := app.Cluster.CountersByService()
	eng.Run(*duration)
	after := app.Cluster.CountersByService()

	secs := duration.Seconds()
	fmt.Printf("\n%s after %v of virtual time at %gx load:\n", app.Name, *duration, *mult)
	fmt.Printf("%-11s %9s %9s %9s %9s %9s\n", "service", "req/s", "logs/s", "errlogs/s", "cpu%", "rx pkt/s")
	for _, name := range app.Services() {
		d := after[name].Sub(before[name])
		fmt.Printf("%-11s %9.2f %9.3f %9.3f %9.2f %9.1f\n",
			name,
			float64(d.RequestsReceived)/secs,
			float64(d.LogMessages)/secs,
			float64(d.ErrorLogMessages)/secs,
			d.CPUSeconds/secs*100,
			float64(d.RxPackets)/secs,
		)
	}
	stats := gen.Stats()
	fmt.Printf("\nload generator: issued=%d ok=%d failed=%d\n", stats.Issued, stats.Succeeded, stats.Failed)
	return nil
}
