package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"causalfl/internal/arena"
	"causalfl/internal/clock"
)

// cmdArena runs the head-to-head baseline arena: every localization
// technique on identical collected datasets, swept over apps × load
// multipliers × telemetry-loss fractions. By default timings come from a
// deterministic virtual clock so a fixed seed yields byte-identical reports
// at any -workers value; -wall switches to real host timings (no longer
// byte-stable, excluded from goldens).
func cmdArena(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("arena", flag.ContinueOnError)
	app := fs.String("app", "both", "application under test (causalbench, robotshop, or both)")
	quick := fs.Bool("quick", false, "shortened collection windows (2.5min instead of 10min)")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "worker pool size for the cell fan-out (0 = GOMAXPROCS, 1 = serial); results are identical at every setting")
	mults := fs.String("mults", "", "comma-separated test load multipliers (default 1,4)")
	losses := fs.String("losses", "", "comma-separated scrape-loss fractions for the test campaign (default 0,0.2)")
	fractions := fs.String("fractions", "", "comma-separated training fractions for the sample-efficiency sweep (default 0.5,0.25,0.125)")
	wall := fs.Bool("wall", false, "use real host wall timings instead of the deterministic virtual clock")
	asJSON := fs.Bool("json", false, "emit the versioned JSON envelope instead of text")
	out := fs.String("out", "", "write the report to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := arena.Options{Seed: *seed, Quick: *quick, Workers: *workers}
	switch *app {
	case "both":
		o.Apps = arena.PaperApps()
	default:
		for _, spec := range arena.PaperApps() {
			if spec.Name == *app {
				o.Apps = []arena.AppSpec{spec}
			}
		}
		if len(o.Apps) == 0 {
			names := make([]string, 0, 2)
			for _, spec := range arena.PaperApps() {
				names = append(names, spec.Name)
			}
			return fmt.Errorf("unknown app %q (want %s, or both)", *app, strings.Join(names, ", "))
		}
	}
	var err error
	if o.Multipliers, err = parseFloats(*mults); err != nil {
		return fmt.Errorf("-mults: %w", err)
	}
	if o.Losses, err = parseFloats(*losses); err != nil {
		return fmt.Errorf("-losses: %w", err)
	}
	if o.Fractions, err = parseFloats(*fractions); err != nil {
		return fmt.Errorf("-fractions: %w", err)
	}
	if *wall {
		o.Clock = clock.Wall
	}

	report, err := arena.Run(ctx, o)
	if err != nil {
		return err
	}
	return writeOutput(*out, func(w io.Writer) error {
		if *asJSON {
			return report.WriteJSON(w)
		}
		_, err := io.WriteString(w, report.String())
		return err
	})
}

// parseFloats parses a comma-separated float list; empty input yields nil
// (the caller's defaults).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
