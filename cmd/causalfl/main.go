// Command causalfl is the front door to the fault-localization pipeline: it
// trains interventional causal models on the benchmark applications,
// localizes injected faults, evaluates campaigns, and regenerates the
// paper's tables and figures.
//
// Usage:
//
//	causalfl tables   [-table 1|2] [-quick] [-seed N]
//	causalfl figures  [-fig 1|2|causal-sets] [-quick] [-seed N]
//	causalfl train    -app causalbench|robotshop [-metrics preset] [-out model.json] [-quick]
//	causalfl localize -app causalbench|robotshop -model model.json -fault SVC [-mult M]
//	causalfl evaluate -app causalbench|robotshop [-metrics preset] [-mult M] [-quick]
//	causalfl compare  -app causalbench|robotshop [-quick]
//	causalfl topology -app causalbench|robotshop
//	causalfl extensions [-quick] [-seed N]
//	causalfl sweep    -app causalbench|robotshop [-seeds N] [-mult M] [-quick] [-degraded]
//	causalfl scale    [-quick] [-seed N]
//	causalfl collect  -app causalbench|robotshop -out data.json [-quick]
//	causalfl learn    -data data.json [-out model.json] [-alpha 0.05]
//	causalfl worlds   -model model.json
//	causalfl report   [-out report.md] [-quick] [-seed N] [-workers N]
//	causalfl bench    [-quick] [-seed N] [-out BENCH_parallel.json] [-stream]
//	causalfl explain  -app causalbench|robotshop -fault SVC[,SVC...] [-model model.json] [-quick] [-json] [-out report.json]
//	causalfl watch    -app causalbench|robotshop [-model model.json] [-fault SVC] [-inject-at 3m] [-duration 10m] [-out verdicts.json]
//	causalfl serve    [-addr :8080] [-snapshot-dir DIR] [-model model.json] [-queue N] [-snapshot-every N]
//	causalfl diff     -old old.json -new new.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/chaos"
	"causalfl/internal/clock"
	"causalfl/internal/core"
	"causalfl/internal/eval"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/report"
	"causalfl/internal/sim"
)

func main() {
	// The root context dies on Ctrl-C / SIGTERM, which drains the worker
	// pools and aborts campaigns cleanly instead of mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		stop()
		fmt.Fprintln(os.Stderr, "causalfl:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (tables, figures, train, collect, learn, worlds, localize, explain, evaluate, compare, arena, topology, extensions, sweep, scale, bench, watch, report, serve, diff)")
	}
	switch args[0] {
	case "tables":
		return cmdTables(ctx, args[1:])
	case "figures":
		return cmdFigures(ctx, args[1:])
	case "train":
		return cmdTrain(ctx, args[1:])
	case "localize":
		return cmdLocalize(ctx, args[1:])
	case "explain":
		return cmdExplain(ctx, args[1:])
	case "evaluate":
		return cmdEvaluate(ctx, args[1:])
	case "compare":
		return cmdCompare(ctx, args[1:])
	case "arena":
		return cmdArena(ctx, args[1:])
	case "topology":
		return cmdTopology(args[1:])
	case "extensions":
		return cmdExtensions(ctx, args[1:])
	case "sweep":
		return cmdSweep(ctx, args[1:])
	case "scale":
		return cmdScale(ctx, args[1:])
	case "bench":
		return cmdBench(ctx, args[1:])
	case "collect":
		return cmdCollect(ctx, args[1:])
	case "learn":
		return cmdLearn(ctx, args[1:])
	case "worlds":
		return cmdWorlds(args[1:])
	case "report":
		return cmdReport(ctx, args[1:])
	case "watch":
		return cmdWatch(ctx, args[1:])
	case "serve":
		return cmdServe(ctx, args[1:])
	case "diff":
		return cmdDiff(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// builderFor resolves an application name.
func builderFor(name string) (apps.Builder, error) {
	switch name {
	case causalbench.Name:
		return causalbench.Build, nil
	case robotshop.Name:
		return robotshop.Build, nil
	default:
		return nil, fmt.Errorf("unknown app %q (want %s or %s)", name, causalbench.Name, robotshop.Name)
	}
}

// commonFlags registers the flags shared by campaign subcommands.
type commonFlags struct {
	app     string
	metrics string
	quick   bool
	seed    int64
	mult    float64
	workers int
}

func (c *commonFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&c.app, "app", causalbench.Name, "application under test")
	fs.StringVar(&c.metrics, "metrics", metrics.SetDerivedAll, "metric set preset: "+strings.Join(metrics.PresetNames(), ", "))
	fs.BoolVar(&c.quick, "quick", false, "shortened collection windows (2.5min instead of 10min)")
	fs.Int64Var(&c.seed, "seed", 42, "random seed")
	fs.Float64Var(&c.mult, "mult", 1, "test load multiplier")
	fs.IntVar(&c.workers, "workers", 0, "worker pool size for parallel stages (0 = GOMAXPROCS, 1 = serial); results are identical at every setting")
}

// options builds the experiment options shared by the Run* wrappers.
func (c *commonFlags) options() eval.Options {
	return eval.Options{Seed: c.seed, Quick: c.quick, Workers: c.workers}
}

func (c *commonFlags) config() (eval.Config, error) {
	build, err := builderFor(c.app)
	if err != nil {
		return eval.Config{}, err
	}
	set, err := metrics.Preset(c.metrics)
	if err != nil {
		return eval.Config{}, err
	}
	cfg := c.options().Apply(eval.Config{
		Build:          build,
		Metrics:        set,
		TestMultiplier: c.mult,
	})
	return cfg, nil
}

func cmdTables(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	table := fs.Int("table", 0, "table number (0 = both)")
	quick := fs.Bool("quick", false, "shortened collection windows")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := eval.Options{Seed: *seed, Quick: *quick, Workers: *workers}
	if *table == 0 || *table == 1 {
		result, err := eval.RunTableI(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(result)
	}
	if *table == 0 || *table == 2 {
		result, err := eval.RunTableII(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(result)
	}
	if *table < 0 || *table > 2 {
		return fmt.Errorf("unknown table %d", *table)
	}
	return nil
}

func cmdFigures(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fig := fs.String("fig", "", "figure: 1, 2, causal-sets or logging (empty = all)")
	quick := fs.Bool("quick", false, "shortened collection windows")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := eval.Options{Seed: *seed, Quick: *quick, Workers: *workers}
	if *fig == "" || *fig == "1" {
		result, err := eval.RunFig1(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(result)
	}
	if *fig == "" || *fig == "2" {
		result, err := eval.RunFig2(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(result)
	}
	if *fig == "" || *fig == "causal-sets" {
		result, err := eval.RunCausalSetsExample(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(result)
	}
	if *fig == "" || *fig == "logging" {
		result, err := eval.RunLoggingDiscipline(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(result)
	}
	switch *fig {
	case "", "1", "2", "causal-sets", "logging":
		return nil
	default:
		return fmt.Errorf("unknown figure %q", *fig)
	}
}

// writeOutput runs write against a freshly created file at path, or stdout
// when path is empty. The file is closed explicitly and the close error
// returned — for buffered file writes, the close error is the write error.
func writeOutput(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}

func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	out := fs.String("out", "", "write the trained model JSON to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	model, err := eval.Train(ctx, cfg)
	if err != nil {
		return err
	}
	if err := writeOutput(*out, model.WriteJSON); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained %d causal worlds over %d targets (alpha=%.2f)\n",
		len(model.Metrics), len(model.Targets), model.Alpha)
	return nil
}

func cmdLocalize(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("localize", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	modelPath := fs.String("model", "", "trained model JSON (from causalfl train)")
	fault := fs.String("fault", "", "comma-separated services to break in the production session")
	productionPath := fs.String("production", "", "localize a production snapshot JSON file instead of simulating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("localize needs -model")
	}
	if *fault == "" && *productionPath == "" {
		return fmt.Errorf("localize needs -fault (simulate) or -production (snapshot file)")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return fmt.Errorf("open model: %w", err)
	}
	defer f.Close()
	model, err := core.ReadModel(f)
	if err != nil {
		return err
	}

	var production *metrics.Snapshot
	var faults []string
	if *productionPath != "" {
		blob, err := os.ReadFile(*productionPath)
		if err != nil {
			return fmt.Errorf("open production snapshot: %w", err)
		}
		var snap metrics.Snapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			return fmt.Errorf("decode production snapshot: %w", err)
		}
		if err := snap.Validate(); err != nil {
			return fmt.Errorf("production snapshot: %w", err)
		}
		production = &snap
		fmt.Printf("production data: %s\n", *productionPath)
	} else {
		cfg, err := cf.config()
		if err != nil {
			return err
		}
		faults = strings.Split(*fault, ",")
		production, err = eval.CollectProductionMulti(ctx, cfg, cf.mult, faults, chaos.Unavailable(), cf.seed+99)
		if err != nil {
			return err
		}
		fmt.Printf("injected fault(s): %s (load %gx)\n", *fault, cf.mult)
	}

	localizer, err := core.NewLocalizer(core.WithWorkers(cf.workers))
	if err != nil {
		return err
	}
	if len(faults) > 1 {
		named, err := localizer.LocalizeMulti(ctx, model, production, len(faults))
		if err != nil {
			return err
		}
		fmt.Printf("localized to:      %s (greedy explain-away, k=%d)\n", strings.Join(named, ", "), len(faults))
		return nil
	}
	loc, err := localizer.Localize(ctx, model, production)
	if err != nil {
		return err
	}
	fmt.Printf("localized to:      %s\n", strings.Join(loc.Candidates, ", "))
	for _, m := range model.Metrics {
		fmt.Printf("  A(%s) = {%s}\n", m, strings.Join(loc.Anomalies[m], ", "))
	}
	return nil
}

func cmdEvaluate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	model, report, err := eval.Run(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Print(report)
	fmt.Printf("(model: %d metrics, %d targets, alpha=%.2f)\n",
		len(model.Metrics), len(model.Targets), model.Alpha)
	return nil
}

func cmdCompare(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	build, err := builderFor(cf.app)
	if err != nil {
		return err
	}
	result, err := eval.RunBaselineComparison(ctx, cf.options(), build, cf.app)
	if err != nil {
		return err
	}
	fmt.Print(result)
	return nil
}

func cmdTopology(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ContinueOnError)
	app := fs.String("app", causalbench.Name, "application")
	if err := fs.Parse(args); err != nil {
		return err
	}
	build, err := builderFor(*app)
	if err != nil {
		return err
	}
	a, err := build(sim.NewEngine(0))
	if err != nil {
		return err
	}
	fmt.Printf("app: %s\nservices: %s\n", a.Name, strings.Join(a.Services(), ", "))
	fmt.Println("edges:")
	for _, e := range a.Edges {
		fmt.Printf("  %s -> %s\n", e.From, e.To)
	}
	fmt.Println("user flows:")
	for _, f := range a.Flows {
		fmt.Printf("  %-10s %s/%s (weight %g)\n", f.Name, f.Entry, f.Endpoint, f.Weight)
	}
	fmt.Printf("fault targets: %s\n", strings.Join(a.FaultTargets, ", "))
	return nil
}

func cmdExtensions(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("extensions", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shortened collection windows")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := eval.Options{Seed: *seed, Quick: *quick, Workers: *workers}
	faultTypes, err := eval.RunFaultTypeExtension(ctx, o)
	if err != nil {
		return err
	}
	fmt.Println(faultTypes)
	multi, err := eval.RunMultiFaultExtension(ctx, o)
	if err != nil {
		return err
	}
	fmt.Println(multi)
	tracesVs, err := eval.RunTraceComparison(ctx, o)
	if err != nil {
		return err
	}
	fmt.Println(tracesVs)
	nonstationary, err := eval.RunNonstationaryExtension(ctx, o)
	if err != nil {
		return err
	}
	fmt.Println(nonstationary)
	contamination, err := eval.RunContaminationExtension(ctx, o)
	if err != nil {
		return err
	}
	fmt.Println(contamination)
	interference, err := eval.RunInterferenceExtension(ctx, o)
	if err != nil {
		return err
	}
	fmt.Println(interference)
	budget, err := eval.RunBudgetExtension(ctx, o)
	if err != nil {
		return err
	}
	fmt.Println(budget)
	return nil
}

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	count := fs.Int("seeds", 5, "number of seeds to sweep")
	degraded := fs.Bool("degraded", false, "sweep scrape-loss fractions (0-50%) instead of seeds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *degraded {
		build, err := builderFor(cf.app)
		if err != nil {
			return err
		}
		result, err := eval.RunDegradationSweep(ctx, cf.options(), build, cf.app, nil)
		if err != nil {
			return err
		}
		fmt.Print(result)
		return nil
	}
	if *count < 1 {
		return fmt.Errorf("sweep needs at least one seed")
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	seeds := make([]int64, *count)
	for i := range seeds {
		seeds[i] = cf.seed + int64(i)*101
	}
	result, err := eval.SweepSeeds(ctx, cfg, seeds)
	if err != nil {
		return err
	}
	fmt.Print(result)
	return nil
}

func cmdScale(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("scale", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shortened collection windows")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	result, err := eval.RunScalabilityExtension(ctx, eval.Options{Seed: *seed, Quick: *quick, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Print(result)
	return nil
}

func cmdCollect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	out := fs.String("out", "", "write the collected dataset JSON to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	data, err := eval.CollectTraining(ctx, cfg)
	if err != nil {
		return err
	}
	if err := writeOutput(*out, func(w io.Writer) error { return data.WriteJSON(w, cf.app) }); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "collected baseline + %d intervention datasets from %s\n",
		len(data.Interventions), cf.app)
	return nil
}

func cmdLearn(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("learn", flag.ContinueOnError)
	dataPath := fs.String("data", "", "dataset JSON from `causalfl collect`")
	out := fs.String("out", "", "write the trained model JSON to this file (default stdout)")
	alpha := fs.Float64("alpha", 0, "KS significance level (default 0.05)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return fmt.Errorf("learn needs -data")
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		return fmt.Errorf("open dataset: %w", err)
	}
	defer f.Close()
	data, app, err := eval.ReadTrainingData(f)
	if err != nil {
		return err
	}
	opts := []core.Option{core.WithWorkers(*workers)}
	if *alpha != 0 {
		opts = append(opts, core.WithAlpha(*alpha))
	}
	learner, err := core.NewLearner(opts...)
	if err != nil {
		return err
	}
	model, err := learner.Learn(ctx, data.Baseline, data.Interventions)
	if err != nil {
		return err
	}
	if err := writeOutput(*out, model.WriteJSON); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "learned %d causal worlds over %d targets from %s data\n",
		len(model.Metrics), len(model.Targets), app)
	return nil
}

func cmdWorlds(args []string) error {
	fs := flag.NewFlagSet("worlds", flag.ContinueOnError)
	modelPath := fs.String("model", "", "trained model JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("worlds needs -model")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return fmt.Errorf("open model: %w", err)
	}
	defer f.Close()
	model, err := core.ReadModel(f)
	if err != nil {
		return err
	}
	fmt.Print(model.Describe())
	return nil
}

// benchEntry is one timed stage of `causalfl bench`.
type benchEntry struct {
	Stage   string  `json:"stage"`
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
}

// benchReport is the JSON document `causalfl bench` emits.
type benchReport struct {
	App        string       `json:"app"`
	Quick      bool         `json:"quick"`
	Seed       int64        `json:"seed"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Entries    []benchEntry `json:"entries"`
}

// cmdBench times the campaign stages serially (workers=1) and with the full
// pool, and writes the comparison as JSON. The outputs of both runs are
// identical by construction — only the wall clock differs.
func cmdBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	out := fs.String("out", "", "write the benchmark JSON to this file (default stdout)")
	streamMode := fs.Bool("stream", false, "benchmark the streaming engine against batch-per-tick recomputation instead of the causal-learning stages")
	var sf streamBenchFlags
	fs.StringVar(&sf.services, "services", "64", "with -stream: comma list of fleet sizes to sweep")
	fs.IntVar(&sf.baseline, "baseline", 24, "with -stream: baseline series length per (metric, service) pair")
	fs.BoolVar(&sf.sketch, "sketch", false, "with -stream: also time the bounded-memory ECDF-sketch engine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *streamMode {
		return benchStream(ctx, cf, sf, *out)
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	pool := parallel.Workers(cf.workers)
	result := benchReport{App: cf.app, Quick: cf.quick, Seed: cf.seed, GOMAXPROCS: pool}

	// Shared inputs, collected once and untimed: the benchmark isolates
	// the causal-learning stages, not simulator data collection.
	data, err := eval.CollectTraining(ctx, cfg)
	if err != nil {
		return err
	}
	targets := make([]string, 0, len(data.Interventions))
	for target := range data.Interventions {
		targets = append(targets, target)
	}
	sort.Strings(targets)
	production, err := eval.CollectProduction(ctx, cfg, cfg.TestMultiplier, targets[0], chaos.Unavailable(), cf.seed+99)
	if err != nil {
		return err
	}

	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = core.DefaultAlpha
	}
	counts := []int{1}
	if pool > 1 {
		counts = append(counts, pool)
	}
	var serial, parallelWall map[string]float64
	for _, w := range counts {
		walls := make(map[string]float64, 3)

		learner, err := core.NewLearner(core.WithAlpha(alpha), core.WithWorkers(w))
		if err != nil {
			return err
		}
		start := clock.Wall.Now()
		model, err := learner.Learn(ctx, data.Baseline, data.Interventions)
		if err != nil {
			return err
		}
		walls["learn"] = float64(clock.Wall.Now().Sub(start).Microseconds()) / 1e3

		localizer, err := core.NewLocalizer(core.WithWorkers(w))
		if err != nil {
			return err
		}
		start = clock.Wall.Now()
		if _, err := localizer.Localize(ctx, model, production); err != nil {
			return err
		}
		walls["localize"] = float64(clock.Wall.Now().Sub(start).Microseconds()) / 1e3

		c := cfg
		c.Workers = w
		start = clock.Wall.Now()
		if _, _, err := eval.Run(ctx, c); err != nil {
			return err
		}
		walls["campaign"] = float64(clock.Wall.Now().Sub(start).Microseconds()) / 1e3

		for _, stage := range []string{"learn", "localize", "campaign"} {
			result.Entries = append(result.Entries, benchEntry{Stage: stage, Workers: w, WallMS: walls[stage]})
		}
		if w == 1 {
			serial = walls
		} else {
			parallelWall = walls
		}
	}

	if err := writeOutput(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(result)
	}); err != nil {
		return err
	}
	for _, stage := range []string{"learn", "localize", "campaign"} {
		line := fmt.Sprintf("%-8s serial %.1fms", stage, serial[stage])
		if parallelWall != nil && parallelWall[stage] > 0 {
			line += fmt.Sprintf("  workers=%d %.1fms  (%.2fx)", pool, parallelWall[stage], serial[stage]/parallelWall[stage])
		}
		fmt.Fprintln(os.Stderr, line)
	}
	return nil
}

func cmdReport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shortened collection windows")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	out := fs.String("out", "", "write the Markdown report to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return writeOutput(*out, func(w io.Writer) error {
		return report.Generate(ctx, eval.Options{Seed: *seed, Quick: *quick, Workers: *workers}, w)
	})
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	oldPath := fs.String("old", "", "previous model JSON")
	newPath := fs.String("new", "", "current model JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("diff needs -old and -new")
	}
	readModel := func(path string) (*core.Model, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open model: %w", err)
		}
		defer f.Close()
		return core.ReadModel(f)
	}
	oldModel, err := readModel(*oldPath)
	if err != nil {
		return err
	}
	newModel, err := readModel(*newPath)
	if err != nil {
		return err
	}
	d, err := core.DiffModels(oldModel, newModel)
	if err != nil {
		return err
	}
	fmt.Print(d)
	return nil
}
