package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/eval"
	"causalfl/internal/serve"
	"causalfl/internal/sim"
	"causalfl/internal/stream"
)

// watchReport is the JSON artifact of one watch run: the run parameters and
// the full verdict timeline.
type watchReport struct {
	App      string            `json:"app"`
	Faults   []string          `json:"faults,omitempty"`
	InjectAt sim.Time          `json:"inject_at,omitempty"`
	Duration sim.Time          `json:"duration"`
	Window   int               `json:"window"`
	HystK    int               `json:"hyst_k"`
	HystN    int               `json:"hyst_n"`
	Verdicts []*stream.Verdict `json:"verdicts"`
}

// cmdWatch runs the streaming localization engine against a live simulated
// deployment: train (or load) a model, start the application under load,
// then advance virtual time one sampling tick at a time, feeding drained
// telemetry through the incremental pipeline and emitting a verdict per
// completed hop. A fault is optionally injected mid-run so the timeline
// shows the detect-and-confirm transition.
func cmdWatch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	modelPath := fs.String("model", "", "trained model JSON (from causalfl train); trains in-session when empty")
	fault := fs.String("fault", "", "comma-separated services to break mid-run (empty: healthy run)")
	injectAt := fs.Duration("inject-at", 3*time.Minute, "virtual time into the run at which the fault is injected")
	duration := fs.Duration("duration", 10*time.Minute, "virtual duration of the watched production period")
	window := fs.Int("window", 8, "sliding-window length in window-values per (metric, service) series")
	hystK := fs.Int("hyst-k", stream.DefaultHystK, "hops that must agree for confirmation (K of N)")
	hystN := fs.Int("hyst-n", stream.DefaultHystN, "hysteresis horizon in hops (K of N)")
	alpha := fs.Float64("alpha", 0, "per-test significance threshold (0: the model's training alpha)")
	fdr := fs.Float64("fdr", 0, "Benjamini-Hochberg FDR level; overrides -alpha when > 0")
	out := fs.String("out", "", "write the verdict timeline JSON to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}

	var model *core.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return fmt.Errorf("open model: %w", err)
		}
		defer f.Close()
		model, err = core.ReadModel(f)
		if err != nil {
			return err
		}
	} else {
		fmt.Fprintln(os.Stderr, "no -model given; training in-session...")
		if model, err = eval.Train(ctx, cfg); err != nil {
			return err
		}
	}

	ls, err := eval.NewLiveSession(cfg, cf.mult, cf.seed+99)
	if err != nil {
		return err
	}
	live := ls.Config()
	opts := []stream.Option{
		stream.WithMetricSet(live.Metrics),
		stream.WithGeometry(live.WindowLength, live.WindowHop),
		stream.WithWindow(*window),
		stream.WithHysteresis(*hystK, *hystN),
		stream.WithWorkers(cf.workers),
	}
	if *alpha != 0 {
		opts = append(opts, stream.WithAlpha(*alpha))
	}
	if *fdr != 0 {
		opts = append(opts, stream.WithFDR(*fdr))
	}
	pipe, err := stream.NewPipeline(model, opts...)
	if err != nil {
		return err
	}

	var faults []string
	if *fault != "" {
		faults = strings.Split(*fault, ",")
	}
	rep := &watchReport{
		App: cf.app, Faults: faults, Duration: sim.Time(*duration),
		Window: *window, HystK: *hystK, HystN: *hystN,
	}
	if len(faults) > 0 {
		rep.InjectAt = sim.Time(*injectAt)
	}

	start := ls.Now()
	injected := false
	var lastConfirmed string
	// processTick advances one sampling interval and feeds the pipeline.
	// It takes its own context so the drain path can finish the in-flight
	// window after the command context is already cancelled.
	processTick := func(ctx context.Context) error {
		samples := ls.Advance(live.SampleInterval)
		verdicts, err := pipe.Tick(ctx, samples)
		if err != nil {
			return err
		}
		for _, v := range verdicts {
			rep.Verdicts = append(rep.Verdicts, v)
			if c := strings.Join(v.Confirmed, ","); c != lastConfirmed {
				fmt.Fprintf(os.Stderr, "t=%v confirmed=[%s] candidates=%v\n",
					time.Duration(v.At-start), c, v.Candidates)
				lastConfirmed = c
			}
		}
		return nil
	}

	step := func() (bool, error) {
		if ls.Now()-start >= sim.Time(*duration) {
			return true, nil
		}
		if len(faults) > 0 && !injected && ls.Now()-start >= sim.Time(*injectAt) {
			for _, target := range faults {
				if err := ls.Inject(target, chaos.Unavailable()); err != nil {
					return false, err
				}
			}
			injected = true
			fmt.Fprintf(os.Stderr, "t=%v injected %s\n", time.Duration(ls.Now()-start), *fault)
		}
		return false, processTick(ctx)
	}

	drain := func() error {
		if ctx.Err() != nil {
			// Interrupted mid-hop (SIGINT): finish the current window so the
			// report ends on a verdict instead of a dangling partial hop —
			// at most one hop's worth of extra ticks.
			fmt.Fprintf(os.Stderr, "t=%v interrupted; draining current window\n",
				time.Duration(ls.Now()-start))
			before := len(rep.Verdicts)
			for i := 0; i < int(live.WindowHop/live.SampleInterval) && len(rep.Verdicts) == before; i++ {
				if err := processTick(context.Background()); err != nil {
					return err
				}
			}
		}
		if err := writeOutput(*out, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}); err != nil {
			return err
		}
		st := pipe.Stats()
		fmt.Fprintf(os.Stderr, "watched %v: %d verdicts, final confirmed=[%s] (%d samples accepted, %d out-of-order, %d dead, %d windows)\n",
			time.Duration(ls.Now()-start), len(rep.Verdicts), lastConfirmed,
			st.Aggregator.Accepted, st.Aggregator.OutOfOrder, st.Aggregator.Dead, st.Aggregator.Windows)
		return nil
	}

	return serve.RunDrained(ctx, step, drain)
}
