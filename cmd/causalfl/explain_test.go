package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"causalfl/internal/repair"
)

// explainOutput runs `causalfl explain` with -out into a temp file and
// returns the bytes it wrote.
func explainOutput(t *testing.T, extra ...string) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "report.out")
	args := append([]string{
		"explain", "-app", "causalbench", "-fault", "B", "-quick", "-seed", "42", "-out", out,
	}, extra...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// checkGolden compares got against the golden file, refreshing it when
// CAUSALFL_UPDATE_GOLDEN is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	goldenPath := filepath.Join("testdata", name)
	if os.Getenv("CAUSALFL_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with CAUSALFL_UPDATE_GOLDEN=1 go test ./cmd/causalfl -run TestExplainGolden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("explain output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

// TestExplainGoldenText pins the exact terminal rendering of the repair
// report. The output carries no wall clock, so a fixed seed makes it
// byte-stable across machines and worker counts.
func TestExplainGoldenText(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	checkGolden(t, "explain.golden.txt", explainOutput(t))
}

// TestExplainGoldenJSON pins the versioned JSON envelope CI and downstream
// tooling consume, and checks it round-trips through the codec.
func TestExplainGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	got := explainOutput(t, "-json")
	checkGolden(t, "explain.golden.json", got)
	report, err := repair.ReadReport(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("golden JSON rejected by ReadReport: %v", err)
	}
	if chosen := report.Chosen(); chosen == nil || !chosen.MeetsSLO {
		t.Fatal("golden report has no SLO-restoring fix set")
	}
}

// TestExplainDeterministicAcrossWorkers pins the CLI determinism contract:
// byte-identical reports whether the candidate replays run serially or on a
// saturated pool.
func TestExplainDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	serial := explainOutput(t, "-workers", "1")
	pooled := explainOutput(t, "-workers", "8")
	if len(serial) == 0 {
		t.Fatal("explain produced no output")
	}
	if !bytes.Equal(serial, pooled) {
		t.Fatalf("explain output differs between -workers=1 and -workers=8:\n--- serial ---\n%s\n--- pooled ---\n%s", serial, pooled)
	}
}

// TestExplainRejectsBadInvocations covers the flag validation paths.
func TestExplainRejectsBadInvocations(t *testing.T) {
	cases := [][]string{
		{"explain"}, // missing -fault
		{"explain", "-app", "zzz", "-fault", "B"},            // unknown app
		{"explain", "-fault", "nosuchservice", "-quick"},     // unknown service
		{"explain", "-fault", "B", "-model", "missing.json"}, // unreadable model
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(context.Background(), %v) accepted", args)
		}
	}
}
