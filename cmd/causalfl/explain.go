package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/eval"
	"causalfl/internal/repair"
)

// cmdExplain replays a faulty window under candidate interventions and prints
// the ranked minimal fix sets — the counterfactual "what would have fixed
// this" report. With -model the candidate ranking comes from the trained
// localizer's verdict on the simulated production window; without it the
// search falls back to the app's sorted fault targets. Output carries no wall
// clock, so a fixed seed yields byte-identical reports at any -workers value.
func cmdExplain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	var cf commonFlags
	cf.register(fs)
	fault := fs.String("fault", "", "comma-separated services to break in the replayed window")
	modelPath := fs.String("model", "", "trained model JSON: rank candidates by the localizer's verdict")
	maxSet := fs.Int("max-set", 0, "largest searched intervention set (default 3)")
	top := fs.Int("top", 0, "ranked fix sets retained in the report (default 10)")
	asJSON := fs.Bool("json", false, "emit the versioned JSON envelope instead of text")
	out := fs.String("out", "", "write the report to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fault == "" {
		return fmt.Errorf("explain needs -fault")
	}
	build, err := builderFor(cf.app)
	if err != nil {
		return err
	}

	sc := repair.Scenario{
		App:   cf.app,
		Build: build,
		Seed:  cf.seed,
	}
	for _, target := range strings.Split(*fault, ",") {
		sc.Faults = append(sc.Faults, chaos.TargetFault{
			Target: strings.TrimSpace(target), Fault: chaos.Unavailable(),
		})
	}
	if cf.quick {
		sc.Warmup = repair.QuickWarmup
		sc.Window = repair.QuickWindow
	}

	opts := repair.Options{MaxSetSize: *maxSet, MaxSets: *top, Workers: cf.workers}
	if *modelPath != "" {
		ranked, err := explainRanking(ctx, cf, *modelPath, sc.Faults)
		if err != nil {
			return err
		}
		opts.Ranked = ranked
	}

	report, err := repair.Search(ctx, sc, opts)
	if err != nil {
		return err
	}
	return writeOutput(*out, func(w io.Writer) error {
		if *asJSON {
			return report.WriteJSON(w)
		}
		_, err := io.WriteString(w, report.String())
		return err
	})
}

// explainRanking localizes the faulty production window with a trained model
// and returns the verdict's attribution ranking.
func explainRanking(ctx context.Context, cf commonFlags, modelPath string, faults []chaos.TargetFault) ([]string, error) {
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, fmt.Errorf("open model: %w", err)
	}
	defer f.Close()
	model, err := core.ReadModel(f)
	if err != nil {
		return nil, err
	}
	cfg, err := cf.config()
	if err != nil {
		return nil, err
	}
	targets := make([]string, len(faults))
	for i, tf := range faults {
		targets[i] = tf.Target
	}
	production, err := eval.CollectProductionMulti(ctx, cfg, cf.mult, targets, chaos.Unavailable(), cf.seed+99)
	if err != nil {
		return nil, err
	}
	localizer, err := core.NewLocalizer(core.WithWorkers(cf.workers))
	if err != nil {
		return nil, err
	}
	loc, err := localizer.Localize(ctx, model, production)
	if err != nil {
		return nil, err
	}
	return loc.Ranked(), nil
}
