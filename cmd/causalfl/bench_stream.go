package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"causalfl/internal/clock"
	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/stats"
	"causalfl/internal/stream"
)

// streamBenchEntry is one timed engine run over a scale point's hop sequence.
type streamBenchEntry struct {
	Engine      string  `json:"engine"` // "stream", "stream-sketch" or "batch-per-tick"
	Workers     int     `json:"workers"`
	Services    int     `json:"services"`
	Metrics     int     `json:"metrics"`
	Window      int     `json:"window"`
	BaselineLen int     `json:"baseline_len"`
	Hops        int     `json:"hops"` // timed hops (warmup excluded)
	Sketch      bool    `json:"sketch,omitempty"`
	WallMS      float64 `json:"wall_ms"`
	PerHopMS    float64 `json:"per_hop_ms"`
}

// streamBenchReport is the BENCH_stream.json artifact.
type streamBenchReport struct {
	Seed    int64              `json:"seed"`
	Entries []streamBenchEntry `json:"entries"`
}

// streamBenchFlags are the bench flags that only apply with -stream.
type streamBenchFlags struct {
	services string
	baseline int
	sketch   bool
}

const (
	streamBenchWindow = 8
	streamBenchWarmup = 8  // untimed full-density hops that fill the windows
	streamBenchTimed  = 60 // timed hops in the sparse steady state
	streamBenchActive = 64 // services reporting per steady-state hop
	streamBenchMaxCmp = 512
)

// streamMetricCount reinterprets the shared -metrics flag as a metric count:
// `bench -stream` sizes a synthetic grid, so a preset name is meaningless
// here. The registered default preset means "unset" and falls back to 8.
func streamMetricCount(preset string) (int, error) {
	if preset == metrics.SetDerivedAll {
		return 8, nil
	}
	n, err := strconv.Atoi(preset)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bench -stream wants a positive -metrics count, got %q", preset)
	}
	return n, nil
}

// benchStream times the incremental streaming engine across a sweep of fleet
// sizes. Every scale point runs the same shape of workload: a dense warmup
// fills the sliding windows (untimed), then streamBenchTimed hops arrive in
// the sparse steady state a large fleet produces — per hop, only
// streamBenchActive services report (plus the faulty one). The sharded
// detector's per-hop cost tracks the number of *reporting* services, so the
// per-hop latency should stay flat as the fleet grows; that flatness is the
// number this benchmark exists to record.
//
// Engines per scale point:
//
//   - "stream": exact incremental engine, full baselines in memory.
//   - "stream-sketch" (-sketch): bounded-memory ECDF-sketch baselines.
//   - "batch-per-tick" (fleets up to streamBenchMaxCmp services): rebuild the
//     sliding-window snapshot and rerun the batch localizer from scratch each
//     hop. Its candidates must match the exact stream engine bit for bit.
func benchStream(ctx context.Context, cf commonFlags, sf streamBenchFlags, outPath string) error {
	nMetrics, err := streamMetricCount(cf.metrics)
	if err != nil {
		return err
	}
	if sf.baseline < 1 {
		return fmt.Errorf("bench -stream wants a positive -baseline length, got %d", sf.baseline)
	}
	var scales []int
	for _, f := range strings.Split(sf.services, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return fmt.Errorf("bench -stream wants -services as a comma list of fleet sizes >= 2, got %q", sf.services)
		}
		scales = append(scales, n)
	}

	pool := parallel.Workers(cf.workers)
	counts := []int{1}
	if pool > 1 {
		counts = append(counts, pool)
	}
	rep := &streamBenchReport{Seed: cf.seed}

	for _, services := range scales {
		w, err := stream.NewSynth(stream.SynthConfig{
			Services: services, Metrics: nMetrics,
			BaselineLen:    sf.baseline,
			Hops:           streamBenchWarmup + streamBenchTimed,
			Seed:           cf.seed,
			FaultService:   services / 2,
			FaultAfter:     streamBenchWarmup + streamBenchTimed/2,
			ActiveServices: streamBenchActive,
			Warmup:         streamBenchWarmup,
		})
		if err != nil {
			return err
		}
		model := w.Model()
		faulty := w.Services[services/2]

		for _, workers := range counts {
			entry := func(engine string, sketch bool, wallMS float64) streamBenchEntry {
				return streamBenchEntry{
					Engine: engine, Workers: workers,
					Services: services, Metrics: nMetrics,
					Window: streamBenchWindow, BaselineLen: sf.baseline,
					Hops: streamBenchTimed, Sketch: sketch,
					WallMS: wallMS, PerHopMS: wallMS / streamBenchTimed,
				}
			}

			// runStream feeds the warmup untimed, then times the steady state.
			runStream := func(extra ...stream.Option) ([]string, float64, error) {
				opts := append([]stream.Option{
					stream.WithWindow(streamBenchWindow),
					stream.WithWorkers(workers),
				}, extra...)
				sl, err := stream.NewLocalizer(model, opts...)
				if err != nil {
					return nil, 0, err
				}
				var cand []string
				var start time.Time
				for h, hop := range w.Hops {
					if h == streamBenchWarmup {
						// Collect the warmup's (and prior scale points')
						// garbage outside the timed region, so steady-state
						// hops are not charged for someone else's allocations.
						runtime.GC()
						start = clock.Wall.Now()
					}
					v, err := sl.Step(ctx, 0, hop)
					if err != nil {
						return nil, 0, err
					}
					cand = v.Candidates
				}
				return cand, float64(clock.Wall.Now().Sub(start).Microseconds()) / 1e3, nil
			}

			streamCand, streamMS, err := runStream()
			if err != nil {
				return err
			}
			if !containsString(streamCand, faulty) {
				return fmt.Errorf("bench: stream engine missed the fault at %d services: candidates %v", services, streamCand)
			}
			rep.Entries = append(rep.Entries, entry("stream", false, streamMS))

			var sketchMS float64
			if sf.sketch {
				sketchCand, ms, err := runStream(stream.WithSketch(stream.DefaultSketchEps))
				if err != nil {
					return err
				}
				sketchMS = ms
				if !containsString(sketchCand, faulty) {
					return fmt.Errorf("bench: sketch engine missed the fault at %d services: candidates %v", services, sketchCand)
				}
				// In the lossless regime (baseline within the sketch cutoff)
				// the sketch path must be bit-identical to the exact one.
				if sf.baseline <= stats.SketchCutoff(stream.DefaultSketchEps) && !reflect.DeepEqual(sketchCand, streamCand) {
					return fmt.Errorf("bench: lossless sketch diverged from exact: %v vs %v", sketchCand, streamCand)
				}
				rep.Entries = append(rep.Entries, entry("stream-sketch", true, ms))
			}

			var batchMS float64
			if services <= streamBenchMaxCmp {
				batchCand, ms, err := benchBatchPerTick(ctx, w, model, workers)
				if err != nil {
					return err
				}
				batchMS = ms
				if !reflect.DeepEqual(streamCand, batchCand) {
					return fmt.Errorf("bench: engines diverged at %d services: stream %v, batch %v", services, streamCand, batchCand)
				}
				rep.Entries = append(rep.Entries, entry("batch-per-tick", false, ms))
			}

			line := fmt.Sprintf("services=%-5d workers=%d  stream %7.2fms (%.3fms/hop)",
				services, workers, streamMS, streamMS/streamBenchTimed)
			if sf.sketch {
				line += fmt.Sprintf("  sketch %7.2fms", sketchMS)
			}
			if services <= streamBenchMaxCmp {
				line += fmt.Sprintf("  batch-per-tick %8.2fms (%.1fx)", batchMS, batchMS/streamMS)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}

	return writeOutput(outPath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
}

// benchBatchPerTick maintains the same sliding windows as the stream engine
// but rebuilds a snapshot and runs the full batch localizer from scratch each
// hop — the naive baseline the incremental engine replaces.
func benchBatchPerTick(ctx context.Context, w *stream.SynthWorkload, model *core.Model, workers int) ([]string, float64, error) {
	batch, err := core.NewLocalizer(core.WithWorkers(workers))
	if err != nil {
		return nil, 0, err
	}
	shadow := make(map[string]map[string][]float64, len(w.MetricNames))
	for _, m := range w.MetricNames {
		shadow[m] = make(map[string][]float64, len(w.Services))
	}
	var cand []string
	var start time.Time
	for h, hop := range w.Hops {
		if h == streamBenchWarmup {
			runtime.GC()
			start = clock.Wall.Now()
		}
		snap := metrics.NewSnapshot(w.MetricNames, w.Services)
		for _, m := range w.MetricNames {
			for _, svc := range w.Services {
				s := shadow[m][svc]
				if v, ok := hop[m][svc]; ok {
					s = append(s, v)
					if len(s) > streamBenchWindow {
						s = s[len(s)-streamBenchWindow:]
					}
					shadow[m][svc] = s
				}
				snap.Data[m][svc] = s
			}
		}
		loc, err := batch.Localize(ctx, model, snap)
		if err != nil {
			return nil, 0, err
		}
		cand = loc.Candidates
	}
	return cand, float64(clock.Wall.Now().Sub(start).Microseconds()) / 1e3, nil
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
