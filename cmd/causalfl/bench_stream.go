package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"

	"causalfl/internal/clock"
	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/stream"
)

// streamBenchEntry is one timed engine run over the whole hop sequence.
type streamBenchEntry struct {
	Engine   string  `json:"engine"` // "stream" or "batch-per-tick"
	Workers  int     `json:"workers"`
	Hops     int     `json:"hops"`
	WallMS   float64 `json:"wall_ms"`
	PerHopMS float64 `json:"per_hop_ms"`
}

// streamBenchReport is the BENCH_stream.json artifact.
type streamBenchReport struct {
	Services    int                `json:"services"`
	Metrics     int                `json:"metrics"`
	Window      int                `json:"window"`
	BaselineLen int                `json:"baseline_len"`
	Seed        int64              `json:"seed"`
	Entries     []streamBenchEntry `json:"entries"`
}

// benchStream compares the incremental streaming engine against naive
// batch-per-tick recomputation (rebuild the sliding-window snapshot and run
// the full batch localizer on every hop) on the reference 64-service ×
// 8-metric workload. Both engines produce byte-identical verdicts — the
// equivalence suite guarantees it and this benchmark asserts it — so the
// comparison is purely about wall clock.
func benchStream(ctx context.Context, cf commonFlags, outPath string) error {
	const (
		services    = 64
		nMetrics    = 8
		window      = 8
		baselineLen = 24
		hops        = 60
	)
	w, err := stream.NewSynth(stream.SynthConfig{
		Services: services, Metrics: nMetrics, BaselineLen: baselineLen, Hops: hops,
		Seed: cf.seed, FaultService: services / 2, FaultAfter: hops / 2,
	})
	if err != nil {
		return err
	}
	model := w.Model()
	pool := parallel.Workers(cf.workers)
	counts := []int{1}
	if pool > 1 {
		counts = append(counts, pool)
	}
	rep := &streamBenchReport{
		Services: services, Metrics: nMetrics, Window: window,
		BaselineLen: baselineLen, Seed: cf.seed,
	}

	for _, workers := range counts {
		// Streaming engine: one incremental Step per hop.
		sl, err := stream.NewLocalizer(model, stream.LocalizerConfig{Window: window, Workers: workers})
		if err != nil {
			return err
		}
		var streamCand []string
		start := clock.Wall.Now()
		for _, hop := range w.Hops {
			v, err := sl.Step(ctx, 0, hop)
			if err != nil {
				return err
			}
			streamCand = v.Candidates
		}
		streamMS := float64(clock.Wall.Now().Sub(start).Microseconds()) / 1e3
		rep.Entries = append(rep.Entries, streamBenchEntry{
			Engine: "stream", Workers: workers, Hops: hops,
			WallMS: streamMS, PerHopMS: streamMS / hops,
		})

		// Batch-per-tick: maintain the same sliding windows, but rebuild a
		// snapshot and run the full batch localizer from scratch each hop.
		batch, err := core.NewLocalizer(core.WithWorkers(workers))
		if err != nil {
			return err
		}
		shadow := make(map[string]map[string][]float64, nMetrics)
		for _, m := range w.MetricNames {
			shadow[m] = make(map[string][]float64, services)
		}
		var batchCand []string
		start = clock.Wall.Now()
		for _, hop := range w.Hops {
			snap := metrics.NewSnapshot(w.MetricNames, w.Services)
			for _, m := range w.MetricNames {
				for _, svc := range w.Services {
					s := append(shadow[m][svc], hop[m][svc])
					if len(s) > window {
						s = s[len(s)-window:]
					}
					shadow[m][svc] = s
					snap.Data[m][svc] = s
				}
			}
			loc, err := batch.Localize(ctx, model, snap)
			if err != nil {
				return err
			}
			batchCand = loc.Candidates
		}
		batchMS := float64(clock.Wall.Now().Sub(start).Microseconds()) / 1e3
		rep.Entries = append(rep.Entries, streamBenchEntry{
			Engine: "batch-per-tick", Workers: workers, Hops: hops,
			WallMS: batchMS, PerHopMS: batchMS / hops,
		})

		if !reflect.DeepEqual(streamCand, batchCand) {
			return fmt.Errorf("bench: engines diverged: stream %v, batch %v", streamCand, batchCand)
		}
		fmt.Fprintf(os.Stderr, "workers=%d  stream %.1fms  batch-per-tick %.1fms  (%.2fx)\n",
			workers, streamMS, batchMS, batchMS/streamMS)
	}

	return writeOutput(outPath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
}
