package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/serve"
	"causalfl/internal/webui"
)

// cmdServe runs the long-running localization service: the multi-tenant
// streaming API from internal/serve (bounded ingest queues, crash-safe
// snapshots, restore-on-boot) with the webui dashboard mounted beside it.
// On SIGINT/SIGTERM the HTTP listener stops, every tenant flushes its queue
// and writes a final snapshot, and only then does the process exit — so the
// next boot resumes exactly where this one stopped.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dir := fs.String("snapshot-dir", "causalfl-serve", "directory for crash-safe tenant snapshots")
	modelPath := fs.String("model", "", "trained model JSON; also mounts the model explorer and /localize (optional — tenants carry their own models)")
	preset := fs.String("metrics", "", "default metric preset for new tenants (default "+metrics.SetRawAll+")")
	queue := fs.Int("queue", 0, fmt.Sprintf("default per-tenant ingest queue capacity in batches (default %d)", serve.DefaultQueueCap))
	snapEvery := fs.Int("snapshot-every", 0, fmt.Sprintf("default snapshot cadence in processed batches, negative disables periodic snapshots (default %d)", serve.DefaultSnapshotEvery))
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := serve.NewStore(*dir)
	if err != nil {
		return err
	}
	api, err := serve.NewServer(serve.Options{Store: store, Defaults: serve.TenantConfig{
		Preset:        *preset,
		QueueCap:      *queue,
		SnapshotEvery: *snapEvery,
	}})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	mux.Handle("/healthz", api.Handler())
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return fmt.Errorf("open model: %w", err)
		}
		model, err := core.ReadModel(f)
		_ = f.Close() // read-only; nothing to flush
		if err != nil {
			return err
		}
		ui, err := webui.NewServer(model)
		if err != nil {
			return err
		}
		mux.Handle("/", ui)
	} else {
		mux.Handle("GET /dashboard", webui.Dashboard())
		mux.Handle("GET /{$}", http.RedirectHandler("/dashboard", http.StatusFound))
	}

	restored := len(api.Stats().Tenants)
	hs := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving on %s (snapshots in %s, %d tenant(s) restored)\n", *addr, store.Dir(), restored)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// The signal context is spent; the drain deliberately runs unbounded so
	// final snapshots always land (a second Ctrl-C kills the process the
	// usual way). Shutdown first so no new ingest races the drain.
	fmt.Fprintln(os.Stderr, "shutting down: draining tenants and writing final snapshots...")
	if err := hs.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := api.Drain(context.Background()); err != nil {
		return err
	}
	st := api.Stats()
	fmt.Fprintf(os.Stderr, "drained %d tenant(s): %d batches processed, %d shed; snapshots in %s\n",
		len(st.Tenants), st.Processed, st.Shed, store.Dir())
	return nil
}
