package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"causalfl/internal/arena"
)

// arenaOutput runs `causalfl arena` with -out into a temp file and returns
// the bytes it wrote. The base invocation is the quick CausalBench sweep the
// goldens pin; extra flags append (later flags win for repeats).
func arenaOutput(t *testing.T, extra ...string) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "arena.out")
	args := append([]string{
		"arena", "-app", "causalbench", "-quick", "-seed", "42", "-out", out,
	}, extra...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestArenaGoldenText pins the exact terminal rendering of the cross-method
// comparison. The default virtual clock makes the report byte-stable across
// machines and worker counts.
func TestArenaGoldenText(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	checkGolden(t, "arena.golden.txt", arenaOutput(t))
}

// TestArenaGoldenJSON pins the versioned JSON envelope and checks it
// round-trips through the codec.
func TestArenaGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	got := arenaOutput(t, "-json")
	checkGolden(t, "arena.golden.json", got)
	report, err := arena.ReadArenaReport(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("golden JSON rejected by ReadArenaReport: %v", err)
	}
	if len(report.Apps) != 1 || len(report.Apps[0].Cells) == 0 {
		t.Fatalf("golden report shape unexpected: %+v", report)
	}
	if n := len(report.Apps[0].Cells[0].Rows); n < 7 {
		t.Fatalf("golden report compares %d techniques, want >= 7", n)
	}
}

// TestArenaDeterministicAcrossWorkers pins the acceptance contract:
// `causalfl arena -app causalbench -workers 8` byte-identical to
// `-workers 1`.
func TestArenaDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	serial := arenaOutput(t, "-workers", "1")
	pooled := arenaOutput(t, "-workers", "8")
	if len(serial) == 0 {
		t.Fatal("arena produced no output")
	}
	if !bytes.Equal(serial, pooled) {
		t.Fatalf("arena output differs between -workers=1 and -workers=8:\n--- serial ---\n%s\n--- pooled ---\n%s", serial, pooled)
	}
}

// TestArenaRejectsBadInvocations covers the flag validation paths.
func TestArenaRejectsBadInvocations(t *testing.T) {
	cases := [][]string{
		{"arena", "-app", "zzz"},                // unknown app
		{"arena", "-mults", "abc"},              // unparsable multiplier
		{"arena", "-losses", "1.5", "-quick"},   // loss out of range
		{"arena", "-fractions", "0", "-quick"},  // zero fraction
		{"arena", "-mults", "0,-1", "-quick"},   // non-positive multiplier
		{"arena", "-losses", "0;0.2", "-quick"}, // bad separator
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(context.Background(), %v) accepted", args)
		}
	}
}
