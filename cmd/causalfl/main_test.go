package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	cases := [][]string{
		nil,                         // no subcommand
		{"frobnicate"},              // unknown subcommand
		{"tables", "-table", "7"},   // unknown table
		{"figures", "-fig", "9"},    // unknown figure
		{"topology", "-app", "zzz"}, // unknown app
		{"localize"},                // missing -model/-fault
		{"evaluate", "-app", "zzz"},
		{"train", "-metrics", "nonsense"},
		{"sweep", "-seeds", "0"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(context.Background(), %v) accepted", args)
		}
	}
}

func TestBuilderFor(t *testing.T) {
	for _, name := range []string{"causalbench", "robotshop"} {
		if _, err := builderFor(name); err != nil {
			t.Errorf("builderFor(%q): %v", name, err)
		}
	}
	if _, err := builderFor("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestCmdTopologyRuns(t *testing.T) {
	if err := run(context.Background(), []string{"topology", "-app", "causalbench"}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainLocalizeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	if err := run(context.Background(), []string{
		"train", "-app", "causalbench", "-quick", "-out", modelPath,
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "causal_sets") {
		t.Fatal("model file missing causal sets")
	}
	if err := run(context.Background(), []string{
		"localize", "-app", "causalbench", "-quick",
		"-model", modelPath, "-fault", "D",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectLearnWorldsDiffPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.json")
	modelA := filepath.Join(dir, "a.json")
	modelB := filepath.Join(dir, "b.json")

	if err := run(context.Background(), []string{"collect", "-app", "causalbench", "-quick", "-out", dataPath}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"learn", "-data", dataPath, "-out", modelA}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"worlds", "-model", modelA}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"train", "-app", "causalbench", "-quick", "-seed", "7", "-out", modelB}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"diff", "-old", modelA, "-new", modelB}); err != nil {
		t.Fatal(err)
	}
	// Multi-fault localization through the CLI.
	if err := run(context.Background(), []string{
		"localize", "-app", "causalbench", "-quick", "-model", modelA, "-fault", "B,I",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalizeMissingInputs(t *testing.T) {
	if err := run(context.Background(), []string{"localize", "-model", "x.json"}); err == nil {
		t.Fatal("localize without -fault or -production accepted")
	}
	if err := run(context.Background(), []string{"learn"}); err == nil {
		t.Fatal("learn without -data accepted")
	}
	if err := run(context.Background(), []string{"worlds"}); err == nil {
		t.Fatal("worlds without -model accepted")
	}
	if err := run(context.Background(), []string{"diff", "-old", "x"}); err == nil {
		t.Fatal("diff without -new accepted")
	}
	if err := run(context.Background(), []string{"serve", "-snapshot-dir", ""}); err == nil {
		t.Fatal("serve with empty -snapshot-dir accepted")
	}
	if err := run(context.Background(), []string{"serve", "-snapshot-dir", t.TempDir(), "-model", "nope.json"}); err == nil {
		t.Fatal("serve with unreadable -model accepted")
	}
}

func TestCmdFiguresCausalSets(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	if err := run(context.Background(), []string{"figures", "-fig", "causal-sets", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	blob, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return string(blob)
}

// TestSweepDeterministicAcrossWorkers pins the CLI-level determinism
// contract: `causalfl sweep` must print byte-identical output whether the
// seed campaigns run serially or on a saturated pool.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	sweep := func(workers string) string {
		return captureStdout(t, func() error {
			return run(context.Background(), []string{
				"sweep", "-app", "causalbench", "-quick", "-seeds", "3", "-workers", workers,
			})
		})
	}
	serial := sweep("1")
	pooled := sweep("8")
	if serial == "" {
		t.Fatal("sweep produced no output")
	}
	if serial != pooled {
		t.Fatalf("sweep output differs between -workers=1 and -workers=8:\n--- serial ---\n%s\n--- pooled ---\n%s", serial, pooled)
	}
}

// TestCmdBenchWritesJSON smoke-tests the bench subcommand's JSON artifact.
func TestCmdBenchWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(context.Background(), []string{"bench", "-quick", "-out", out}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		GOMAXPROCS int `json:"gomaxprocs"`
		Entries    []struct {
			Stage   string  `json:"stage"`
			Workers int     `json:"workers"`
			WallMS  float64 `json:"wall_ms"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("bench JSON: %v", err)
	}
	if len(doc.Entries) < 3 {
		t.Fatalf("bench JSON has %d entries, want at least learn/localize/campaign", len(doc.Entries))
	}
	stages := map[string]bool{}
	for _, e := range doc.Entries {
		stages[e.Stage] = true
		if e.WallMS < 0 {
			t.Fatalf("stage %s workers=%d has negative wall time", e.Stage, e.Workers)
		}
	}
	for _, want := range []string{"learn", "localize", "campaign"} {
		if !stages[want] {
			t.Fatalf("bench JSON missing stage %q", want)
		}
	}
}
