package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	cases := [][]string{
		nil,                         // no subcommand
		{"frobnicate"},              // unknown subcommand
		{"tables", "-table", "7"},   // unknown table
		{"figures", "-fig", "9"},    // unknown figure
		{"topology", "-app", "zzz"}, // unknown app
		{"localize"},                // missing -model/-fault
		{"evaluate", "-app", "zzz"},
		{"train", "-metrics", "nonsense"},
		{"sweep", "-seeds", "0"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestBuilderFor(t *testing.T) {
	for _, name := range []string{"causalbench", "robotshop"} {
		if _, err := builderFor(name); err != nil {
			t.Errorf("builderFor(%q): %v", name, err)
		}
	}
	if _, err := builderFor("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestCmdTopologyRuns(t *testing.T) {
	if err := run([]string{"topology", "-app", "causalbench"}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainLocalizeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	if err := run([]string{
		"train", "-app", "causalbench", "-quick", "-out", modelPath,
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "causal_sets") {
		t.Fatal("model file missing causal sets")
	}
	if err := run([]string{
		"localize", "-app", "causalbench", "-quick",
		"-model", modelPath, "-fault", "D",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectLearnWorldsDiffPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.json")
	modelA := filepath.Join(dir, "a.json")
	modelB := filepath.Join(dir, "b.json")

	if err := run([]string{"collect", "-app", "causalbench", "-quick", "-out", dataPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"learn", "-data", dataPath, "-out", modelA}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"worlds", "-model", modelA}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"train", "-app", "causalbench", "-quick", "-seed", "7", "-out", modelB}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"diff", "-old", modelA, "-new", modelB}); err != nil {
		t.Fatal(err)
	}
	// Multi-fault localization through the CLI.
	if err := run([]string{
		"localize", "-app", "causalbench", "-quick", "-model", modelA, "-fault", "B,I",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalizeMissingInputs(t *testing.T) {
	if err := run([]string{"localize", "-model", "x.json"}); err == nil {
		t.Fatal("localize without -fault or -production accepted")
	}
	if err := run([]string{"learn"}); err == nil {
		t.Fatal("learn without -data accepted")
	}
	if err := run([]string{"worlds"}); err == nil {
		t.Fatal("worlds without -model accepted")
	}
	if err := run([]string{"diff", "-old", "x"}); err == nil {
		t.Fatal("diff without -new accepted")
	}
	if err := run([]string{"serve"}); err == nil {
		t.Fatal("serve without -model accepted")
	}
}

func TestCmdFiguresCausalSets(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	if err := run([]string{"figures", "-fig", "causal-sets", "-quick"}); err != nil {
		t.Fatal(err)
	}
}
