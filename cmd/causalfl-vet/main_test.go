package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixtureModule lays out a small module with two seeded violations: a
// library panic in internal/sim and a global math/rand draw in an examples
// command (which also proves the walker descends into examples/).
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",
		"internal/sim/bad.go": `package sim

func Build(ok bool) {
	if !ok {
		panic("seeded violation")
	}
}
`,
		"examples/demo/main.go": `package main

import "math/rand"

func main() { _ = rand.Intn(10) }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	return dir
}

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestSeededViolationsFailTheRun(t *testing.T) {
	dir := writeFixtureModule(t)
	code, stdout, _ := runVet(t, "-dir", dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, stdout)
	}
	for _, want := range []string{
		"internal/sim/bad.go:5", "panic in library package", "(paniclib)",
		"examples/demo/main.go:5", "global math/rand source", "(globalrand)",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

func TestJSONReportIsMachineReadable(t *testing.T) {
	dir := writeFixtureModule(t)
	code, stdout, _ := runVet(t, "-dir", dir, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var report struct {
		Module   string   `json:"module"`
		Passes   []string `json:"passes"`
		Findings []struct {
			Pass    string `json:"pass"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"findings"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if report.Module != "fixturemod" {
		t.Errorf("module = %q, want fixturemod", report.Module)
	}
	if len(report.Passes) == 0 || report.Passes[0] != "globalrand" {
		t.Errorf("envelope pass catalogue missing or reordered: %v", report.Passes)
	}
	if len(report.Findings) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(report.Findings), report.Findings)
	}
	f := report.Findings[1]
	if f.Pass != "paniclib" || f.File != "internal/sim/bad.go" || f.Line != 5 || f.Col == 0 {
		t.Errorf("unexpected finding: %+v", f)
	}
}

// TestJSONReportMatchesGolden pins the exact -json byte stream CI consumes.
// Findings use module-relative paths and the envelope lists the compiled-in
// pass catalogue, so the output is fully deterministic across checkouts.
func TestJSONReportMatchesGolden(t *testing.T) {
	dir := writeFixtureModule(t)
	code, stdout, _ := runVet(t, "-dir", dir, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	goldenPath := filepath.Join("testdata", "report.golden.json")
	if os.Getenv("VET_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(goldenPath, []byte(stdout), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with VET_UPDATE_GOLDEN=1 go test ./cmd/causalfl-vet -run TestJSONReportMatchesGolden)", err)
	}
	if stdout != string(golden) {
		t.Errorf("-json output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, stdout, golden)
	}
}

func TestBaselineWorkflow(t *testing.T) {
	dir := writeFixtureModule(t)
	baseline := filepath.Join(dir, "baseline.json")

	// Adopt: write the baseline, then the same tree passes.
	if code, _, stderr := runVet(t, "-dir", dir, "-baseline", baseline, "-write-baseline"); code != 0 {
		t.Fatalf("write-baseline exit = %d: %s", code, stderr)
	}
	if code, stdout, _ := runVet(t, "-dir", dir, "-baseline", baseline); code != 0 {
		t.Fatalf("baselined tree exit = %d:\n%s", code, stdout)
	}

	// Fix one violation: its baseline entry is now stale, which also fails.
	bad := filepath.Join(dir, "examples", "demo", "main.go")
	if err := os.WriteFile(bad, []byte("package main\n\nfunc main() {}\n"), 0o644); err != nil {
		t.Fatalf("fix violation: %v", err)
	}
	code, stdout, _ := runVet(t, "-dir", dir, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("stale baseline exit = %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "stale baseline entry") {
		t.Errorf("output does not report the stale entry:\n%s", stdout)
	}
}

func TestPassSelection(t *testing.T) {
	dir := writeFixtureModule(t)
	code, stdout, _ := runVet(t, "-dir", dir, "-passes", "globalrand")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "paniclib") {
		t.Errorf("unselected pass ran:\n%s", stdout)
	}
	if !strings.Contains(stdout, "globalrand") {
		t.Errorf("selected pass did not run:\n%s", stdout)
	}

	code, _, stderr := runVet(t, "-dir", dir, "-passes", "no-such-pass")
	if code != 2 {
		t.Fatalf("unknown pass exit = %d, want 2: %s", code, stderr)
	}
	// The error must name the bad pass and print the catalogue so the typo
	// is fixable without a second invocation.
	for _, want := range []string{"no-such-pass", "available passes:", "globalrand", "locked-blocking"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("unknown-pass stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestListPasses(t *testing.T) {
	code, stdout, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, pass := range []string{
		"globalrand", "walltime", "walltime-flow", "rand-flow", "floateq",
		"paniclib", "errcheck-io", "magic-alpha", "goroutine-leak",
		"unbounded-spawn", "locked-blocking", "topology", "metric-class",
	} {
		if !strings.Contains(stdout, pass) {
			t.Errorf("-list missing %q:\n%s", pass, stdout)
		}
	}
}

// TestGraphDumpsDOT exercises the -graph debug flag: the fixture module's
// call graph comes out as Graphviz DOT with its declared functions as nodes.
func TestGraphDumpsDOT(t *testing.T) {
	dir := writeFixtureModule(t)
	code, stdout, stderr := runVet(t, "-dir", dir, "-graph")
	if code != 0 {
		t.Fatalf("exit = %d, want 0: %s", code, stderr)
	}
	for _, want := range []string{"digraph callgraph {", "sim.Build", "main.main", "}"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-graph output missing %q:\n%s", want, stdout)
		}
	}
}

func TestBadDirIsAUsageError(t *testing.T) {
	if code, _, _ := runVet(t, "-dir", filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
