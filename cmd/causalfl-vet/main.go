// Command causalfl-vet runs the project's static analyzers: source hygiene
// passes (determinism, statistical correctness, library safety) plus the
// domain linters that validate the application catalog. See
// docs/STATIC_ANALYSIS.md for the pass catalogue and the suppression model.
//
// Usage:
//
//	causalfl-vet [-dir .] [-baseline vet-baseline.json] [-json] \
//	             [-passes p1,p2] [-list] [-write-baseline] [-graph]
//
// Exit status: 0 when no fresh findings (and no stale baseline entries),
// 1 when findings remain, 2 on usage or analysis errors. An unknown name in
// -passes exits 2 and prints the pass catalogue to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"causalfl/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("causalfl-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to analyze")
	baselinePath := fs.String("baseline", "", "baseline (suppression) file; missing file means empty baseline")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to -baseline and exit 0")
	jsonOut := fs.Bool("json", false, "emit the machine-readable JSON report")
	passes := fs.String("passes", "", "comma-separated pass selection (default: all)")
	list := fs.Bool("list", false, "list available passes and exit")
	graph := fs.Bool("graph", false, "dump the module call graph as Graphviz DOT and exit")
	skipDomain := fs.Bool("skip-domain", false, "skip the catalog domain linters")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, line := range analysis.PassNames() {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}

	if *graph {
		mod, err := analysis.LoadModule(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "causalfl-vet: %v\n", err)
			return 2
		}
		if err := mod.CallGraph().WriteDOT(stdout); err != nil {
			fmt.Fprintf(stderr, "causalfl-vet: %v\n", err)
			return 2
		}
		return 0
	}

	opts := analysis.Options{Dir: *dir, SkipDomain: *skipDomain}
	if *passes != "" {
		for _, name := range strings.Split(*passes, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Passes = append(opts.Passes, name)
			}
		}
	}
	res, err := analysis.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "causalfl-vet: %v\n", err)
		// A typo in -passes is the one error the user fixes by reading the
		// catalogue, so print it.
		if errors.Is(err, analysis.ErrUnknownPass) {
			fmt.Fprintln(stderr, "available passes:")
			for _, line := range analysis.PassNames() {
				fmt.Fprintf(stderr, "  %s\n", line)
			}
		}
		return 2
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "causalfl-vet: -write-baseline requires -baseline")
			return 2
		}
		if err := analysis.BaselineFromFindings(res.Findings).Write(*baselinePath); err != nil {
			fmt.Fprintf(stderr, "causalfl-vet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %d baseline entr(ies) to %s\n", len(res.Findings), *baselinePath)
		return 0
	}

	baseline := &analysis.Baseline{}
	if *baselinePath != "" {
		baseline, err = analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "causalfl-vet: %v\n", err)
			return 2
		}
	}
	fresh, suppressed, stale := baseline.Filter(res.Findings)

	if *jsonOut {
		if err := analysis.WriteJSON(stdout, res.Module, fresh, suppressed, stale, res.TypeErrors); err != nil {
			fmt.Fprintf(stderr, "causalfl-vet: %v\n", err)
			return 2
		}
	} else {
		if err := analysis.WriteText(stdout, fresh); err != nil {
			fmt.Fprintf(stderr, "causalfl-vet: %v\n", err)
			return 2
		}
		for _, e := range stale {
			fmt.Fprintf(stdout, "stale baseline entry: %s: %s (%s)\n", e.File, e.Message, e.Pass)
		}
		for _, te := range res.TypeErrors {
			fmt.Fprintf(stderr, "causalfl-vet: type-check (non-fatal): %s\n", te)
		}
		fmt.Fprintf(stdout, "causalfl-vet: %d package(s), %s\n", res.Packages, analysis.Summary(len(fresh), suppressed, len(stale)))
	}

	// Stale entries fail the run too: a suppression that matches nothing is
	// either a fixed finding (delete the entry) or a typo (fix it).
	if len(fresh) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}
