// Confounder demo (Fig. 2): an intervention changes the load distribution.
//
// Ten closed-loop users drive the topology
//
//	user -> A -> { B -> (C -> E | E),  I }
//
// through three flows. When node C fails, requests on the C path return
// immediately, users cycle faster, and node I — which has no code-level
// relationship with C at all — receives measurably more requests. A naive
// causal learner would draw a C -> I edge from that shift; the paper's
// derived metrics and per-metric worlds exist to absorb exactly this
// confounding.
//
//	go run ./examples/confounder [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"causalfl/internal/eval"
)

func main() {
	quick := flag.Bool("quick", false, "shortened collection windows")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()
	if err := run(*quick, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, seed int64) error {
	result, err := eval.RunFig2(context.Background(), eval.Options{Seed: seed, Quick: quick})
	if err != nil {
		return err
	}
	fmt.Print(result)

	deltaI := (result.FaultCI.Mean/result.HealthyI.Mean - 1) * 100
	deltaC := (result.FaultIC.Mean/result.HealthyC.Mean - 1) * 100
	fmt.Printf("\nfailing C raised I's request rate by %.1f%%; failing I raised C's by %.1f%% —\n", deltaI, deltaC)
	fmt.Println("the external load never changed. This is the queuing confounder of §III-C.")
	return nil
}
