// Tracing demo: why the paper doesn't stop at distributed tracing.
//
// The trace-based root-cause heuristic (blame the deepest erroring span of
// failed user traces) pinpoints any fault that propagates HTTP errors along
// a synchronous request path. This program shows both its strength and the
// structural blind spot the paper's introduction describes: an omission
// fault on CausalBench's node G — which is only ever called by the
// background worker F, never inside a user request — produces zero failed
// user traces. The interventional causal model localizes it anyway.
//
//	go run ./examples/tracing [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"causalfl/internal/eval"
)

func main() {
	quick := flag.Bool("quick", true, "shortened collection windows (default true; -quick=false for paper-length)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()
	if err := run(*quick, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, seed int64) error {
	result, err := eval.RunTraceComparison(context.Background(), eval.Options{Seed: seed, Quick: quick})
	if err != nil {
		return err
	}
	fmt.Print(result)
	fmt.Println("\nreading guide:")
	fmt.Println("  - every request-path fault: both localizers agree (traces are great there)")
	fmt.Println("  - fault on G (omission via store D and worker F): no user trace ever fails,")
	fmt.Println("    so trace RCA returns the whole service list; causalfl pinpoints G because")
	fmt.Println("    training observed G's metrics shift when G was fault-injected")
	return nil
}
