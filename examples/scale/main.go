// Scalability demo: fault localization on generated production-scale
// topologies.
//
// The paper's evaluation stops at 12 services, but its motivation cites
// call graphs of 40+ microservices. This program generates synthetic layered
// applications (stores, background drain workers, heterogeneous logging —
// the CausalBench ingredients) at increasing sizes and measures both
// localization quality and the cost of the training campaign, which is
// inherently linear: Algorithm 1 needs one fault-injection window per
// service.
//
//	go run ./examples/scale [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"causalfl/internal/eval"
)

func main() {
	quick := flag.Bool("quick", true, "shortened collection windows (default true; -quick=false for paper-length)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()
	if err := run(*quick, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, seed int64) error {
	result, err := eval.RunScalabilityExtension(context.Background(), eval.Options{Seed: seed, Quick: quick})
	if err != nil {
		return err
	}
	fmt.Print(result)
	fmt.Println("\nreading guide:")
	fmt.Println("  - accuracy holds as the application grows: causal sets get more distinctive,")
	fmt.Println("    not less, because larger graphs give faults more room to differ")
	fmt.Println("  - wall time grows linearly in service count — the real-world analogue is the")
	fmt.Println("    injection budget: ten minutes of controlled faulting per service")
	return nil
}
