// Robot-shop scenario: fault localization on the e-commerce benchmark under
// load drift, head to head with the error-log-only baseline of [23].
//
// The storefront's faults are exactly the hard cases the paper motivates: a
// broken data store surfaces only as omissions on its dependents, and the
// async dispatch worker never appears in any request path.
//
//	go run ./examples/robotshop [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"causalfl/internal/apps/robotshop"
	"causalfl/internal/baselines"
	"causalfl/internal/eval"
	"causalfl/internal/metrics"
)

func main() {
	quick := flag.Bool("quick", true, "shortened collection windows (default true; -quick=false for paper-length)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()
	if err := run(*quick, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, seed int64) error {
	// Collect once with the union of every metric any technique needs,
	// then let each technique project its own view: identical data,
	// different methods.
	union := append(metrics.RawAll(), metrics.DerivedAll()...)
	union = append(union, metrics.ErrLogRate)
	cfg := eval.Options{Seed: seed, Quick: quick}.Apply(eval.Config{
		Build:          robotshop.Build,
		Metrics:        union,
		TestMultiplier: 4, // production runs 4x hotter than training
	})

	fmt.Println("robot-shop: training at 1x, localizing every fault at 4x load ...")
	scores, err := eval.CompareTechniques(context.Background(), cfg, []baselines.Technique{
		&baselines.Paper{MetricNames: metrics.Names(metrics.DerivedAll())},
		baselines.ErrLogOnly(),
		&baselines.SingleWorld{},
		&baselines.Observational{},
		&baselines.RandomGuess{Seed: seed},
	})
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderScores("technique comparison (robot-shop, test load 4x)", scores))
	fmt.Println("\nreading guide:")
	fmt.Println("  - derived metrics + per-metric worlds keep accuracy under load drift")
	fmt.Println("  - the error-log-only baseline misses faults that surface as omissions")
	fmt.Println("  - the single-world learner ties faults whose merged worlds coincide")
	return nil
}
