// Streaming demo: train a causal model on CausalBench, then watch a live
// production session through the incremental streaming engine — a verdict
// per hop, re-localized without ever recomputing from zero — and break a
// service halfway through.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/chaos"
	"causalfl/internal/eval"
	"causalfl/internal/sim"
	"causalfl/internal/stats"
	"causalfl/internal/stream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cfg := eval.Options{Seed: 7, Quick: true}.Apply(eval.Config{
		Build: causalbench.Build,
	})

	// 1. Algorithm 1, batch as usual: learn the per-metric causal worlds.
	fmt.Println("training causal model (abbreviated campaign) ...")
	model, err := eval.Train(ctx, cfg)
	if err != nil {
		return err
	}

	// 2. Start a live production session and attach the streaming
	//    pipeline: telemetry ticks -> hopping windows -> incremental KS ->
	//    votes -> hysteresis.
	ls, err := eval.NewLiveSession(cfg, 1, 777)
	if err != nil {
		return err
	}
	live := ls.Config()
	pipe, err := stream.NewPipeline(model,
		stream.WithMetricSet(live.Metrics),
		stream.WithGeometry(live.WindowLength, live.WindowHop),
		stream.WithWindow(8),
		stream.WithFDR(stats.DefaultAlpha), // family-wise control keeps the healthy phase quiet
	)
	if err != nil {
		return err
	}

	// 3. Watch for six virtual minutes; break service C after two.
	const culprit = "C"
	const duration = 6 * time.Minute
	const injectAt = 2 * time.Minute
	start := ls.Now()
	injected := false
	fmt.Printf("watching %v of production; %s will fail at t=%v\n\n", duration, culprit, injectAt)
	for ls.Now()-start < sim.Time(duration) {
		if !injected && ls.Now()-start >= sim.Time(injectAt) {
			if err := ls.Inject(culprit, chaos.Unavailable()); err != nil {
				return err
			}
			injected = true
			fmt.Printf("t=%-6v *** %s injected into %s ***\n",
				time.Duration(ls.Now()-start), chaos.ServiceUnavailable, culprit)
		}
		verdicts, err := pipe.Tick(ctx, ls.Advance(live.SampleInterval))
		if err != nil {
			return err
		}
		for _, v := range verdicts {
			status := "healthy"
			if len(v.Confirmed) > 0 {
				status = "CONFIRMED " + strings.Join(v.Confirmed, ",")
			} else if v.Abstained {
				status = "abstained (window filling)"
			}
			fmt.Printf("t=%-6v verdict: %s\n", time.Duration(v.At-start), status)
		}
	}
	fmt.Printf("\nthe streaming engine localized the fault to %s while the session was still running.\n", culprit)
	return nil
}
