// Quickstart: train an interventional causal model on CausalBench, break a
// service in "production", and let the localizer find it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/eval"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Describe the campaign: the CausalBench application, the paper's
	//    derived (load-deconfounded) metric set, shortened collection
	//    windows so the demo finishes in seconds.
	cfg := eval.Options{Seed: 1, Quick: true}.Apply(eval.Config{
		Build: causalbench.Build,
	})

	// 2. Algorithm 1 — learn one causal world per metric by injecting a
	//    fault into every service, one at a time, and recording which
	//    services' metric distributions shift.
	fmt.Println("training: injecting one fault per service to learn causal sets ...")
	model, err := eval.Train(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained %d per-metric causal worlds over %d services\n\n",
		len(model.Metrics), len(model.Services))

	// 3. Break a service in a fresh "production" session. The localizer
	//    knows nothing about which one.
	const culprit = "C"
	fmt.Printf("production: secretly injecting %s into service %s ...\n",
		chaos.ServiceUnavailable, culprit)
	production, err := eval.CollectProduction(context.Background(), cfg, 1, culprit, chaos.Unavailable(), 1234)
	if err != nil {
		return err
	}

	// 4. Algorithm 2 — each metric votes for the service whose learned
	//    causal set best explains the anomalies it sees.
	localizer, err := core.NewLocalizer()
	if err != nil {
		return err
	}
	loc, err := localizer.Localize(context.Background(), model, production)
	if err != nil {
		return err
	}

	fmt.Printf("localized fault to: {%s}\n\n", strings.Join(loc.Candidates, ", "))
	fmt.Println("evidence per metric:")
	for _, m := range model.Metrics {
		fmt.Printf("  %-28s anomalous: {%s}\n", m, strings.Join(loc.Anomalies[m], ", "))
	}
	return nil
}
