// Command arena demonstrates the head-to-head baseline arena: every
// localization technique — the paper's interventional method, its §VI-B
// ablations, and the graph-based competitor family (CausalRCA-style
// regression, PC-style single-graph, random-walk PageRank) — trained and
// graded on identical collected datasets, with the paper's method expected
// to top the containment-accuracy column.
//
// The demo runs the quick CausalBench sweep at clean and degraded telemetry
// and then proves the determinism contract: a serial rerun must reproduce
// the pooled report byte for byte.
package main

import (
	"context"
	"fmt"
	"os"

	"causalfl/internal/arena"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arena demo:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	opts := arena.Options{
		Apps:        []arena.AppSpec{arena.PaperApps()[0]},
		Multipliers: []float64{1},
		Losses:      []float64{0, 0.2},
		Quick:       true,
	}

	pooled, err := arena.Run(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Print(pooled.String())

	serialOpts := opts
	serialOpts.Workers = 1
	serial, err := arena.Run(ctx, serialOpts)
	if err != nil {
		return err
	}
	if serial.String() != pooled.String() {
		return fmt.Errorf("serial rerun diverged from the pooled run")
	}
	fmt.Println("\nserial rerun is byte-identical to the pooled run")

	winner := pooled.Apps[0].Cells[0].Rows[0]
	fmt.Printf("paper method: top-1 %.2f, containment %.2f on clean telemetry\n", winner.Top1, winner.Contain)
	return nil
}
