// CausalBench walkthrough: the full Table-I style experiment on the paper's
// microbenchmark — train at 1x load, inspect the learned per-metric causal
// worlds (including the §VI-B example), then evaluate localization at 1x and
// 4x production load.
//
//	go run ./examples/causalbench          # full 10-minute collection windows
//	go run ./examples/causalbench -quick   # abbreviated windows
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/eval"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "shortened collection windows")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()
	if err := run(*quick, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, seed int64) error {
	// Show the Fig. 4 topology first.
	app, err := causalbench.Build(sim.NewEngine(0))
	if err != nil {
		return err
	}
	fmt.Printf("CausalBench (%d services):\n", len(app.Services()))
	for _, e := range app.Edges {
		fmt.Printf("  %s -> %s\n", e.From, e.To)
	}
	fmt.Printf("injectable: %s (F is a portless background worker)\n\n",
		strings.Join(app.FaultTargets, ", "))

	// Train with both raw and derived metrics so the per-metric causal
	// worlds can be inspected.
	cfg := eval.Options{Seed: seed, Quick: quick}.Apply(eval.Config{
		Build:   causalbench.Build,
		Metrics: append(metrics.RawAll(), metrics.DerivedAll()...),
	})
	fmt.Println("running the Algorithm 1 training campaign ...")
	model, err := eval.Train(context.Background(), cfg)
	if err != nil {
		return err
	}

	// The §VI-B observation: the same intervention induces different
	// causal worlds under different metrics.
	msg, err := model.CausalSet(metrics.MsgRate.Name, "B")
	if err != nil {
		return err
	}
	cpu, err := model.CausalSet(metrics.CPU.Name, "B")
	if err != nil {
		return err
	}
	fmt.Printf("\nintervention on B:\n  C(B, msg rate) = {%s}   (paper: {B, A, E})\n  C(B, cpu)      = {%s}   (paper: {B, C, E})\n\n",
		strings.Join(msg, ", "), strings.Join(cpu, ", "))

	// Localize with the derived set only (the paper's headline config).
	cfg.Metrics = metrics.DerivedAll()
	model, err = eval.Train(context.Background(), cfg)
	if err != nil {
		return err
	}
	for _, mult := range []float64{1, 4} {
		c := cfg
		c.TestMultiplier = mult
		report, err := eval.Evaluate(context.Background(), c, model)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	return nil
}
