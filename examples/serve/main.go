// Serving demo: boot the crash-safe multi-tenant localization service, feed
// a live production session to a tenant over the HTTP API, crash the server
// mid-stream, boot a second server from the same snapshot directory and let
// it finish the stream — then verify the stitched verdict timeline is
// byte-identical to an uninterrupted in-process pipeline run.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/eval"
	"causalfl/internal/metrics"
	"causalfl/internal/serve"
	"causalfl/internal/sim"
	"causalfl/internal/stream"
	"causalfl/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	culprit  = "C"
	tenant   = "demo"
	duration = 6 * time.Minute
	injectAt = 2 * time.Minute
)

func run() error {
	ctx := context.Background()
	cfg := eval.Options{Seed: 7, Quick: true}.Apply(eval.Config{
		Build: causalbench.Build,
	})

	fmt.Println("training causal model (abbreviated campaign) ...")
	model, err := eval.Train(ctx, cfg)
	if err != nil {
		return err
	}

	// Record one production session as wire-form ticks: the same stream is
	// fed to the service and to the in-process reference pipeline.
	ticks, live, err := record(cfg)
	if err != nil {
		return err
	}
	tcfg := serve.TenantConfig{
		WindowLength:  sim.Time(live.WindowLength),
		WindowHop:     sim.Time(live.WindowHop),
		Preset:        metrics.SetDerivedAll,
		Window:        8,
		FDR:           0.05,
		SnapshotEvery: 1, // snapshot every batch: the crash loses nothing
	}
	want, err := reference(ctx, model, live, tcfg, ticks)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "causalfl-serve-demo-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// First server: create the tenant, stream half the session, then crash.
	srvA, hsA, err := boot(dir)
	if err != nil {
		return err
	}
	blob, _ := json.Marshal(map[string]any{"config": tcfg, "model": model})
	if err := post(hsA, "PUT", "/v1/tenants/"+tenant, blob, http.StatusCreated); err != nil {
		return err
	}
	half := len(ticks) / 2
	fmt.Printf("serving %s: streaming %d of %d ticks, then killing the server mid-stream\n", tenant, half, len(ticks))
	if err := ingest(hsA, ticks[:half]); err != nil {
		return err
	}
	if err := srvA.Quiesce(ctx, tenant); err != nil {
		return err
	}
	head, err := verdicts(hsA, 0)
	if err != nil {
		return err
	}
	srvA.Kill() // crash simulation: no drain, no final snapshot
	hsA.Close()
	fmt.Printf("*** server killed after %d verdicts ***\n", len(head.Verdicts))

	// Second server: restore-on-boot from the same directory, finish the
	// stream, and stitch the timelines.
	srvB, hsB, err := boot(dir)
	if err != nil {
		return err
	}
	defer hsB.Close()
	fmt.Printf("second server restored tenant %q from %s\n", tenant, dir)
	if err := ingest(hsB, ticks[half:]); err != nil {
		return err
	}
	if err := srvB.Quiesce(ctx, tenant); err != nil {
		return err
	}
	tail, err := verdicts(hsB, head.Next)
	if err != nil {
		return err
	}

	got := append(append([]serve.SeqVerdict(nil), head.Verdicts...), tail.Verdicts...)
	gotBlob, _ := json.Marshal(got)
	if !bytes.Equal(gotBlob, want) {
		return fmt.Errorf("resumed timeline diverges from the uninterrupted run")
	}
	for _, sv := range got {
		status := "healthy"
		if len(sv.Verdict.Confirmed) > 0 {
			status = "CONFIRMED " + strings.Join(sv.Verdict.Confirmed, ",")
		} else if sv.Verdict.Abstained {
			status = "abstained (window filling)"
		}
		fmt.Printf("seq=%-3d t=%-6v %s\n", sv.Seq, time.Duration(sv.Verdict.At), status)
	}
	if err := srvB.Drain(ctx); err != nil {
		return err
	}
	fmt.Printf("\ncrash + restore preserved the timeline byte-for-byte (%d verdicts, culprit %s confirmed).\n", len(got), culprit)
	return nil
}

// record plays one live session and captures each tick in wire form.
func record(cfg eval.Config) ([][]map[string][]stream.SampleState, eval.Config, error) {
	ls, err := eval.NewLiveSession(cfg, 1, 777)
	if err != nil {
		return nil, eval.Config{}, err
	}
	live := ls.Config()
	var ticks [][]map[string][]stream.SampleState
	start := ls.Now()
	injected := false
	for ls.Now()-start < sim.Time(duration) {
		if !injected && ls.Now()-start >= sim.Time(injectAt) {
			if err := ls.Inject(culprit, chaos.Unavailable()); err != nil {
				return nil, live, err
			}
			injected = true
		}
		samples := ls.Advance(live.SampleInterval)
		wire := make(map[string][]stream.SampleState, len(samples))
		for svc, ss := range samples {
			enc := make([]stream.SampleState, len(ss))
			for i, smp := range ss {
				enc[i] = stream.EncodeSample(smp)
			}
			wire[svc] = enc
		}
		ticks = append(ticks, []map[string][]stream.SampleState{wire})
	}
	return ticks, live, nil
}

// reference runs the uninterrupted in-process pipeline over the same ticks
// and returns the serialized SeqVerdict timeline the service must match.
func reference(ctx context.Context, model *core.Model, live eval.Config, tcfg serve.TenantConfig, ticks [][]map[string][]stream.SampleState) ([]byte, error) {
	set, err := metrics.Preset(tcfg.Preset)
	if err != nil {
		return nil, err
	}
	pipe, err := stream.NewPipeline(model,
		stream.WithMetricSet(set),
		stream.WithGeometry(live.WindowLength, live.WindowHop),
		stream.WithWindow(tcfg.Window),
		stream.WithFDR(tcfg.FDR),
	)
	if err != nil {
		return nil, err
	}
	var out []serve.SeqVerdict
	for _, batch := range ticks {
		for _, wire := range batch {
			tick := make(map[string][]telemetry.Sample, len(wire))
			for svc, enc := range wire {
				ss := make([]telemetry.Sample, len(enc))
				for i, one := range enc {
					ss[i] = one.Sample()
				}
				tick[svc] = ss
			}
			vs, err := pipe.Tick(ctx, tick)
			if err != nil {
				return nil, err
			}
			for _, v := range vs {
				out = append(out, serve.SeqVerdict{Seq: uint64(len(out) + 1), Verdict: v})
			}
		}
	}
	return json.Marshal(out)
}

// boot starts a service over the snapshot directory.
func boot(dir string) (*serve.Server, *httptest.Server, error) {
	store, err := serve.NewStore(dir)
	if err != nil {
		return nil, nil, err
	}
	srv, err := serve.NewServer(serve.Options{Store: store})
	if err != nil {
		return nil, nil, err
	}
	return srv, httptest.NewServer(srv.Handler()), nil
}

func post(hs *httptest.Server, method, path string, body []byte, want int) error {
	req, err := http.NewRequest(method, hs.URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: status %d, want %d", method, path, resp.StatusCode, want)
	}
	return nil
}

func ingest(hs *httptest.Server, ticks [][]map[string][]stream.SampleState) error {
	for _, batch := range ticks {
		blob, err := json.Marshal(map[string]any{"ticks": batch})
		if err != nil {
			return err
		}
		// An honest producer backs off on 429; the demo queue never fills.
		if err := post(hs, "POST", "/v1/tenants/"+tenant+"/ingest", blob, http.StatusAccepted); err != nil {
			return err
		}
	}
	return nil
}

func verdicts(hs *httptest.Server, since uint64) (out struct {
	Verdicts []serve.SeqVerdict `json:"verdicts"`
	Next     uint64             `json:"next"`
}, err error) {
	resp, err := hs.Client().Get(fmt.Sprintf("%s/v1/tenants/%s/verdicts?since=%d", hs.URL, tenant, since))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("verdicts: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}
