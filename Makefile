# causalfl — stdlib-only Go; no tool dependencies beyond the Go toolchain.

GO ?= go

.PHONY: all check build test test-short test-stream test-serve test-arena race vet lint lint-json graph fmt fmt-check fuzz-smoke bench bench-parallel bench-stream bench-scale demo-stream demo-serve demo-arena report tables figures clean

all: check

# The default verification path: compile, static checks (go vet plus the
# project's own causalfl-vet analyzers), full tests, the race detector
# over the library packages, and the end-to-end demos.
check: build vet lint test race demo-stream demo-serve demo-arena

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the simulation campaigns; unit and property tests only.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/...

# The batch↔stream conformance suite under the race detector: per-hop
# equivalence properties, the aggregator conformance, the golden verdict
# timeline, and the Drain ordering regression.
test-stream:
	$(GO) test -race ./internal/stream/ ./internal/telemetry/ ./internal/stats/

# The serving-layer suite under the race detector: crash-recovery
# conformance (kill + restore mid-stream, byte-identical timelines),
# backpressure accounting, the snapshot codec fuzz seeds, and concurrent
# multi-tenant ingest.
test-serve:
	$(GO) test -race ./internal/serve/ ./internal/stream/

# The baseline-arena suite under the race detector: the head-to-head
# harness (workers byte-identity, arena<->evaluate parity, envelope
# round-trip) plus the competitor implementations it measures.
test-arena:
	$(GO) test -race ./internal/arena/ ./internal/baselines/

vet:
	$(GO) vet ./...

# Project-invariant static analysis (determinism, statistical hygiene,
# topology validity) over the whole module, examples included. See
# docs/STATIC_ANALYSIS.md; suppressions live in vet-baseline.json.
lint:
	$(GO) run ./cmd/causalfl-vet -baseline vet-baseline.json

lint-json:
	$(GO) run ./cmd/causalfl-vet -baseline vet-baseline.json -json

# Dump the module call graph (the engine behind the interprocedural passes)
# as Graphviz DOT on stdout.
graph:
	$(GO) run ./cmd/causalfl-vet -graph

fmt:
	gofmt -l -w .

# Fails (and lists the offenders) if any file is not gofmt-clean; CI runs
# this, `make fmt` fixes it.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Short-budget run of every fuzz target (go test runs one -fuzz pattern per
# invocation, hence one line per target). Catches codec and parser
# regressions in CI without an open-ended fuzzing session; raise FUZZTIME
# locally for a deeper hunt. -run xxx skips the package's unit tests.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzIncrementalKS -fuzztime $(FUZZTIME) ./internal/stats
	$(GO) test -run xxx -fuzz FuzzSketchRankError -fuzztime $(FUZZTIME) ./internal/stats
	$(GO) test -run xxx -fuzz FuzzSanitize -fuzztime $(FUZZTIME) ./internal/metrics
	$(GO) test -run xxx -fuzz FuzzReadTrainingData -fuzztime $(FUZZTIME) ./internal/eval
	$(GO) test -run xxx -fuzz FuzzTopology -fuzztime $(FUZZTIME) ./internal/analysis
	$(GO) test -run xxx -fuzz FuzzCallGraph -fuzztime $(FUZZTIME) ./internal/analysis
	$(GO) test -run xxx -fuzz FuzzSnapshotRoundTrip -fuzztime $(FUZZTIME) ./internal/stream
	$(GO) test -run xxx -fuzz FuzzReadModel -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz FuzzReadReport -fuzztime $(FUZZTIME) ./internal/repair
	$(GO) test -run xxx -fuzz FuzzReadArenaReport -fuzztime $(FUZZTIME) ./internal/arena

# Every table, figure, ablation and extension, abbreviated windows.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x .

# Serial vs parallel wall-clock comparison of the causal-learning stages.
# The JSON artifact records learn/localize/campaign timings at workers=1 and
# workers=GOMAXPROCS; the outputs of both runs are identical by construction.
bench-parallel:
	$(GO) run ./cmd/causalfl bench -quick -out BENCH_parallel.json

# Incremental streaming engine vs naive batch-per-tick recomputation on the
# 64-service × 8-metric reference workload; both engines emit byte-identical
# verdicts, so the artifact is purely a wall-clock comparison.
bench-stream:
	$(GO) run ./cmd/causalfl bench -stream -out BENCH_stream.json

# Fleet-size sweep: the sharded streaming engine (exact and ECDF-sketch
# baselines) from 64 to 4096 services at a fixed reporting density. The
# headline number is per-hop latency staying flat as the fleet grows; the
# batch-per-tick comparison runs up to 512 services, where it is already
# orders of magnitude off the pace. See docs/SCALING.md.
bench-scale:
	$(GO) run ./cmd/causalfl bench -stream \
		-services 64,256,512,1024,2048,4096 -baseline 384 -sketch \
		-out BENCH_stream.json

# End-to-end streaming demo: train, watch a live session, break a service,
# see the verdict timeline confirm it.
demo-stream:
	$(GO) run ./examples/streaming

# End-to-end serving demo: boot the multi-tenant service, feed a tenant over
# the HTTP API, crash it mid-stream, boot a second server from the same
# snapshot directory and verify the resumed timeline is byte-identical.
demo-serve:
	$(GO) run ./examples/serve

# Head-to-head arena demo: every technique on identical datasets, clean and
# degraded telemetry, with a serial-vs-pooled byte-identity proof.
demo-arena:
	$(GO) run ./examples/arena

# Paper-length regeneration of the full evaluation.
report:
	$(GO) run ./cmd/causalfl report -out docs/EVALUATION.md

tables:
	$(GO) run ./cmd/causalfl tables

figures:
	$(GO) run ./cmd/causalfl figures

clean:
	$(GO) clean ./...
