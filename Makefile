# causalfl — stdlib-only Go; no tool dependencies beyond the Go toolchain.

GO ?= go

.PHONY: all build test test-short vet fmt bench report tables figures clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the simulation campaigns; unit and property tests only.
test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Every table, figure, ablation and extension, abbreviated windows.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x .

# Paper-length regeneration of the full evaluation.
report:
	$(GO) run ./cmd/causalfl report -out docs/EVALUATION.md

tables:
	$(GO) run ./cmd/causalfl tables

figures:
	$(GO) run ./cmd/causalfl figures

clean:
	$(GO) clean ./...
