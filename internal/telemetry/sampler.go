// Package telemetry turns the simulator's cumulative per-service counters
// into the time-series datasets the paper's pipeline consumes: raw samples on
// a fixed tick, then overlapping hopping windows (sixty-second windows every
// thirty seconds in the paper's setup, §V-A).
//
// Collection is degradation-aware: scrapes can fail (scrape-loss faults) or
// return mangled readings (sample-corruption faults). The sampler records
// gaps instead of fabricating zero deltas, optionally re-reads failed scrapes
// with capped exponential backoff, and folds the counter mass accumulated
// across a gap into the first successful scrape after it (cumulative counters
// lose granularity across a gap, not information).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"time"

	"causalfl/internal/sim"
)

// DefaultSampleInterval is the cadence at which counters are read. The paper
// aggregates log messages every thirty seconds; a finer base tick loses no
// information because windows re-aggregate.
const DefaultSampleInterval = 5 * time.Second

// Sample is one per-interval telemetry reading for a service: the counter
// deltas accumulated since the previous tick.
type Sample struct {
	// At is the virtual time of the reading (end of the interval).
	At sim.Time
	// Deltas holds counter increments over the interval.
	Deltas sim.Counters
	// Missing marks a tick whose scrape failed (after any retries). The
	// deltas are zero-valued and MUST NOT be interpreted as "the service
	// did nothing" — downstream window aggregation counts the tick as
	// uncovered instead.
	Missing bool
	// Span counts how many sampling intervals the deltas cover. It is 1 in
	// steady state; the first successful scrape after a gap carries the
	// whole gap's counter mass, so its span is 1 + the missed ticks. Zero
	// means 1 (legacy construction).
	Span int
	// Corrupt marks deltas mangled by a sample-corruption fault
	// (diagnostic; the values themselves carry the corruption).
	Corrupt bool
}

// RetryPolicy controls how the sampler re-reads failed scrapes before
// declaring the tick missing: up to Attempts re-reads, the first after
// BaseDelay, doubling up to MaxDelay. The total backoff must fit inside one
// sampling interval so a late reading never collides with the next tick.
type RetryPolicy struct {
	// Attempts is the number of re-reads after the initial failure.
	Attempts int
	// BaseDelay is the delay before the first re-read.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
}

// DefaultRetryPolicy re-reads three times at 100/200/400ms, well inside the
// default five-second sampling interval.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond}
}

// totalBackoff sums the worst-case delay of all attempts.
func (p RetryPolicy) totalBackoff() time.Duration {
	total := time.Duration(0)
	delay := p.BaseDelay
	for i := 0; i < p.Attempts; i++ {
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
		total += delay
		delay *= 2
	}
	return total
}

// SamplerOption customizes a Sampler.
type SamplerOption func(*Sampler) error

// WithRetry enables retrying collection under the given policy.
func WithRetry(p RetryPolicy) SamplerOption {
	return func(s *Sampler) error {
		if p.Attempts < 0 {
			return fmt.Errorf("telemetry: retry attempts must be non-negative, got %d", p.Attempts)
		}
		if p.Attempts > 0 {
			if p.BaseDelay <= 0 {
				return fmt.Errorf("telemetry: retry base delay must be positive, got %v", p.BaseDelay)
			}
			if p.MaxDelay < p.BaseDelay {
				return fmt.Errorf("telemetry: retry max delay %v below base delay %v", p.MaxDelay, p.BaseDelay)
			}
			if total := p.totalBackoff(); total >= s.interval {
				return fmt.Errorf("telemetry: retry backoff %v does not fit inside the %v sampling interval", total, s.interval)
			}
		}
		s.retry = p
		return nil
	}
}

// Sampler periodically scrapes every service's counters and stores the
// per-interval deltas. Create it, Start it once, and Drain it at phase
// boundaries (end of baseline, end of each fault injection) to collect the
// datasets D_0 and D_s of the paper.
type Sampler struct {
	cluster  *sim.Cluster
	interval time.Duration
	retry    RetryPolicy
	prev     map[string]sim.Counters
	lastAt   map[string]sim.Time
	series   map[string][]Sample
	gaps     map[string]int
	// floor drops late retry completions from a phase that was already
	// discarded or drained.
	floor   sim.Time
	started bool
}

// NewSampler creates a sampler for every service currently registered in the
// cluster. interval <= 0 selects DefaultSampleInterval.
func NewSampler(c *sim.Cluster, interval time.Duration, opts ...SamplerOption) (*Sampler, error) {
	if c == nil {
		return nil, fmt.Errorf("telemetry: sampler needs a cluster")
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &Sampler{
		cluster:  c,
		interval: interval,
		prev:     make(map[string]sim.Counters),
		lastAt:   make(map[string]sim.Time),
		series:   make(map[string][]Sample),
		gaps:     make(map[string]int),
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Interval reports the sampling cadence.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start schedules the sampling loop beginning one interval after the current
// virtual time. It must be called exactly once.
func (s *Sampler) Start() error {
	if s.started {
		return fmt.Errorf("telemetry: sampler already started")
	}
	s.started = true
	// Prime the baseline so the first tick yields deltas, not totals. The
	// prime reads true counters directly: it is collector-internal state,
	// not a published sample, so telemetry faults do not apply.
	now := s.cluster.Engine().Now()
	for name, cnt := range s.cluster.CountersByService() {
		s.prev[name] = cnt
		s.lastAt[name] = now
	}
	eng := s.cluster.Engine()
	return eng.Every(eng.Now()+s.interval, s.interval, s.tick)
}

// tick scrapes every service and appends one Sample (or gap) per service.
// Services are visited in registration order so that any randomness consumed
// by the scrape fault path is drawn deterministically.
func (s *Sampler) tick() {
	now := s.cluster.Engine().Now()
	for _, name := range s.cluster.ServiceNames() {
		svc, ok := s.cluster.Service(name)
		if !ok {
			continue
		}
		res := svc.Scrape()
		if !res.Missing {
			s.record(name, now, res)
			continue
		}
		if s.retry.Attempts <= 0 {
			s.miss(name, now)
			continue
		}
		s.retryScrape(name, now, 1, s.retry.BaseDelay)
	}
}

// retryScrape re-reads a failed scrape after a backoff, doubling the delay up
// to the policy cap, and declares the tick missing once attempts run out. The
// recorded sample keeps the nominal tick timestamp: the reading is late by at
// most the total backoff, which WithRetry bounds below one interval.
func (s *Sampler) retryScrape(name string, tickAt sim.Time, attempt int, delay time.Duration) {
	s.cluster.Engine().After(delay, func() {
		svc, ok := s.cluster.Service(name)
		if !ok {
			return
		}
		res := svc.Scrape()
		if !res.Missing {
			s.record(name, tickAt, res)
			return
		}
		if attempt >= s.retry.Attempts {
			s.miss(name, tickAt)
			return
		}
		next := delay * 2
		if next > s.retry.MaxDelay {
			next = s.retry.MaxDelay
		}
		s.retryScrape(name, tickAt, attempt+1, next)
	})
}

// record appends one successful reading, folding any preceding gap into the
// sample's span.
func (s *Sampler) record(name string, tickAt sim.Time, res sim.ScrapeResult) {
	if tickAt < s.floor {
		// A retry completed after the phase it belonged to was drained
		// or discarded; publishing it would corrupt the fresh buffer.
		s.prev[name] = res.Counters
		s.lastAt[name] = tickAt
		return
	}
	delta := res.Counters.Sub(s.prev[name])
	s.prev[name] = res.Counters
	span := 1
	if last, ok := s.lastAt[name]; ok {
		if n := int((tickAt - last) / s.interval); n > 1 {
			span = n
		}
	}
	s.lastAt[name] = tickAt
	if res.Corrupt {
		delta = corruptCounters(delta, s.cluster.Engine().Rand())
	}
	s.series[name] = append(s.series[name], Sample{At: tickAt, Deltas: delta, Span: span, Corrupt: res.Corrupt})
}

// miss appends a gap marker for a tick whose scrape never succeeded.
func (s *Sampler) miss(name string, tickAt sim.Time) {
	s.gaps[name]++
	if tickAt < s.floor {
		return
	}
	s.series[name] = append(s.series[name], Sample{At: tickAt, Missing: true})
}

// corruptCounters mangles one per-interval delta the way broken exporters
// and lossy transports do: non-finite readings on the float-valued counters
// or a multiplicative spike across the board.
func corruptCounters(c sim.Counters, rng interface{ Intn(int) int }) sim.Counters {
	switch rng.Intn(3) {
	case 0:
		c.CPUSeconds = math.NaN()
		c.BusySeconds = math.NaN()
	case 1:
		c.CPUSeconds = math.Inf(1)
		c.BusySeconds = math.Inf(1)
	default:
		const spike = 1000
		c.RequestsReceived *= spike
		c.RequestsSent *= spike
		c.LogMessages *= spike
		c.ErrorLogMessages *= spike
		c.RxPackets *= spike
		c.TxPackets *= spike
		c.CPUSeconds *= spike
		c.BusySeconds *= spike
	}
	return c
}

// Drain returns all samples accumulated since the previous Drain and clears
// the buffer. The sampler keeps running; use it at phase boundaries.
//
// Each series is returned sorted by tick timestamp. Appends are normally
// already in order, but a retried scrape records under its *nominal* tick
// stamp whenever the backoff finally succeeds — with an aggressive retry
// policy that can be after the following tick has appended, leaving the
// buffer locally out of order. Window aggregation (and the streaming
// engine's incremental aggregator) assume ascending stamps, so Drain
// restores the invariant rather than pushing it onto every consumer.
func (s *Sampler) Drain() map[string][]Sample {
	out := s.series
	s.series = make(map[string][]Sample, len(out))
	s.floor = s.cluster.Engine().Now()
	for _, series := range out {
		sort.SliceStable(series, func(i, j int) bool { return series[i].At < series[j].At })
	}
	return out
}

// Discard drops accumulated samples without returning them (used to skip a
// settling period after injecting or removing a fault).
func (s *Sampler) Discard() {
	s.series = make(map[string][]Sample)
	s.floor = s.cluster.Engine().Now()
}

// Gaps returns, per service, the number of ticks whose scrape failed for
// good since the sampler started (retries that eventually succeeded do not
// count).
func (s *Sampler) Gaps() map[string]int {
	out := make(map[string]int, len(s.gaps))
	for k, v := range s.gaps {
		out[k] = v
	}
	return out
}
