// Package telemetry turns the simulator's cumulative per-service counters
// into the time-series datasets the paper's pipeline consumes: raw samples on
// a fixed tick, then overlapping hopping windows (sixty-second windows every
// thirty seconds in the paper's setup, §V-A).
package telemetry

import (
	"fmt"
	"time"

	"causalfl/internal/sim"
)

// DefaultSampleInterval is the cadence at which counters are read. The paper
// aggregates log messages every thirty seconds; a finer base tick loses no
// information because windows re-aggregate.
const DefaultSampleInterval = 5 * time.Second

// Sample is one per-interval telemetry reading for a service: the counter
// deltas accumulated since the previous tick.
type Sample struct {
	// At is the virtual time of the reading (end of the interval).
	At sim.Time
	// Deltas holds counter increments over the interval.
	Deltas sim.Counters
}

// Sampler periodically snapshots every service's counters and stores the
// per-interval deltas. Create it, Start it once, and Drain it at phase
// boundaries (end of baseline, end of each fault injection) to collect the
// datasets D_0 and D_s of the paper.
type Sampler struct {
	cluster  *sim.Cluster
	interval time.Duration
	prev     map[string]sim.Counters
	series   map[string][]Sample
	started  bool
}

// NewSampler creates a sampler for every service currently registered in the
// cluster. interval <= 0 selects DefaultSampleInterval.
func NewSampler(c *sim.Cluster, interval time.Duration) (*Sampler, error) {
	if c == nil {
		return nil, fmt.Errorf("telemetry: sampler needs a cluster")
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{
		cluster:  c,
		interval: interval,
		prev:     make(map[string]sim.Counters),
		series:   make(map[string][]Sample),
	}, nil
}

// Interval reports the sampling cadence.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start schedules the sampling loop beginning one interval after the current
// virtual time. It must be called exactly once.
func (s *Sampler) Start() error {
	if s.started {
		return fmt.Errorf("telemetry: sampler already started")
	}
	s.started = true
	// Prime the baseline so the first tick yields deltas, not totals.
	for name, cnt := range s.cluster.CountersByService() {
		s.prev[name] = cnt
	}
	eng := s.cluster.Engine()
	return eng.Every(eng.Now()+s.interval, s.interval, s.tick)
}

// tick reads every counter and appends one Sample per service.
func (s *Sampler) tick() {
	now := s.cluster.Engine().Now()
	for name, cnt := range s.cluster.CountersByService() {
		delta := cnt.Sub(s.prev[name])
		s.prev[name] = cnt
		s.series[name] = append(s.series[name], Sample{At: now, Deltas: delta})
	}
}

// Drain returns all samples accumulated since the previous Drain and clears
// the buffer. The sampler keeps running; use it at phase boundaries.
func (s *Sampler) Drain() map[string][]Sample {
	out := s.series
	s.series = make(map[string][]Sample, len(out))
	return out
}

// Discard drops accumulated samples without returning them (used to skip a
// settling period after injecting or removing a fault).
func (s *Sampler) Discard() { s.series = make(map[string][]Sample) }
