package telemetry

import (
	"testing"
	"testing/quick"
	"time"

	"causalfl/internal/sim"
)

// newLoadedCluster builds a one-service cluster receiving a steady request
// stream.
func newLoadedCluster(t *testing.T) (*sim.Engine, *sim.Cluster) {
	t.Helper()
	eng := sim.NewEngine(1)
	c := sim.NewCluster(eng)
	c.MustAddService(sim.ServiceConfig{Name: "svc", Endpoints: []sim.Endpoint{{
		Name:  "work",
		Steps: []sim.Step{sim.Compute{Mean: time.Millisecond}, sim.LogEveryN{N: 1}},
	}}})
	if err := eng.Every(0, 100*time.Millisecond, func() {
		c.Call("client", "svc", "work", nil)
	}); err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestSamplerCollectsDeltas(t *testing.T) {
	eng, c := newLoadedCluster(t)
	s, err := NewSampler(c, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run(10 * time.Second)
	samples := s.Drain()["svc"]
	if len(samples) != 10 {
		t.Fatalf("got %d samples in 10s at 1s cadence, want 10", len(samples))
	}
	for i, smp := range samples {
		if want := time.Duration(i+1) * time.Second; smp.At != want {
			t.Fatalf("sample %d at %v, want %v", i, smp.At, want)
		}
		// 10 requests/second arrive; deltas, not totals.
		if smp.Deltas.RequestsReceived < 8 || smp.Deltas.RequestsReceived > 12 {
			t.Fatalf("sample %d delta %d requests, want ~10 (cumulative leak?)",
				i, smp.Deltas.RequestsReceived)
		}
		if smp.Deltas.LogMessages == 0 {
			t.Fatalf("sample %d has no log messages", i)
		}
	}
}

func TestSamplerDrainClearsBuffer(t *testing.T) {
	eng, c := newLoadedCluster(t)
	s, err := NewSampler(c, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run(5 * time.Second)
	first := s.Drain()["svc"]
	eng.Run(8 * time.Second)
	second := s.Drain()["svc"]
	if len(first) != 5 || len(second) != 3 {
		t.Fatalf("drains returned %d and %d samples, want 5 and 3", len(first), len(second))
	}
	if second[0].At != 6*time.Second {
		t.Fatalf("second drain starts at %v, want 6s", second[0].At)
	}
}

func TestSamplerDiscard(t *testing.T) {
	eng, c := newLoadedCluster(t)
	s, err := NewSampler(c, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run(3 * time.Second)
	s.Discard()
	eng.Run(5 * time.Second)
	if got := len(s.Drain()["svc"]); got != 2 {
		t.Fatalf("after discard got %d samples, want 2", got)
	}
}

func TestSamplerDoubleStartRejected(t *testing.T) {
	_, c := newLoadedCluster(t)
	s, err := NewSampler(c, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil, time.Second); err == nil {
		t.Fatal("NewSampler accepted nil cluster")
	}
	_, c := newLoadedCluster(t)
	s, err := NewSampler(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval() != DefaultSampleInterval {
		t.Fatalf("zero interval defaulted to %v, want %v", s.Interval(), DefaultSampleInterval)
	}
}

// makeSamples builds a synthetic per-interval series with the given request
// deltas at 1s spacing.
func makeSamples(deltas ...uint64) []Sample {
	out := make([]Sample, len(deltas))
	for i, d := range deltas {
		out[i] = Sample{
			At:     time.Duration(i+1) * time.Second,
			Deltas: sim.Counters{RequestsReceived: d, CPUSeconds: float64(d) / 10},
		}
	}
	return out
}

func TestHoppingWindowsSumsAndOverlaps(t *testing.T) {
	// 8 one-second samples, window 4s, hop 2s -> windows [0,4) [2,6) [4,8).
	samples := makeSamples(1, 2, 3, 4, 5, 6, 7, 8)
	windows, err := HoppingWindows(samples, 4*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(windows))
	}
	wantSums := []uint64{1 + 2 + 3 + 4, 3 + 4 + 5 + 6, 5 + 6 + 7 + 8}
	for i, w := range windows {
		if w.Sum.RequestsReceived != wantSums[i] {
			t.Errorf("window %d sum = %d, want %d", i, w.Sum.RequestsReceived, wantSums[i])
		}
	}
	if windows[1].Start != 2*time.Second || windows[1].End != 6*time.Second {
		t.Errorf("window 1 spans [%v,%v), want [2s,6s)", windows[1].Start, windows[1].End)
	}
}

func TestHoppingWindowsPaperGeometry(t *testing.T) {
	// Ten minutes of 5s samples with 60s/30s windows must yield 19 windows,
	// matching the paper's collection setup.
	n := int((10 * time.Minute) / (5 * time.Second))
	deltas := make([]uint64, n)
	for i := range deltas {
		deltas[i] = 10
	}
	samples := make([]Sample, n)
	for i := range samples {
		samples[i] = Sample{At: time.Duration(i+1) * 5 * time.Second, Deltas: sim.Counters{RequestsReceived: deltas[i]}}
	}
	windows, err := HoppingWindows(samples, DefaultWindowLength, DefaultWindowHop)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 19 {
		t.Fatalf("10min/60s/30s produced %d windows, want 19", len(windows))
	}
	for i, w := range windows {
		if w.Sum.RequestsReceived != 120 {
			t.Fatalf("window %d sum = %d, want 120 (12 samples × 10)", i, w.Sum.RequestsReceived)
		}
	}
}

func TestHoppingWindowsValidation(t *testing.T) {
	samples := makeSamples(1, 2, 3)
	if _, err := HoppingWindows(samples, 0, time.Second); err == nil {
		t.Fatal("accepted zero window length")
	}
	if _, err := HoppingWindows(samples, time.Second, 0); err == nil {
		t.Fatal("accepted zero hop")
	}
	if _, err := HoppingWindows(samples, time.Second, 2*time.Second); err == nil {
		t.Fatal("accepted hop larger than window")
	}
	got, err := HoppingWindows(nil, time.Second, time.Second)
	if err != nil || got != nil {
		t.Fatalf("empty samples: got %v, %v; want nil, nil", got, err)
	}
}

func TestHoppingWindowsTooShortSeries(t *testing.T) {
	samples := makeSamples(1, 2) // 2s of data, 4s window
	windows, err := HoppingWindows(samples, 4*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 0 {
		t.Fatalf("got %d windows from under-length series, want 0", len(windows))
	}
}

func TestWindowsByService(t *testing.T) {
	in := map[string][]Sample{
		"a": makeSamples(1, 1, 1, 1),
		"b": makeSamples(2, 2, 2, 2),
	}
	out, err := WindowsByService(in, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(out["a"]) != 2 || len(out["b"]) != 2 {
		t.Fatalf("window counts a=%d b=%d, want 2/2", len(out["a"]), len(out["b"]))
	}
	if out["b"][0].Sum.RequestsReceived != 4 {
		t.Fatalf("b window sum = %d, want 4", out["b"][0].Sum.RequestsReceived)
	}
}

// Property: with hop == length (tumbling windows) the total of window sums
// equals the total of all samples that fall inside produced windows, and
// windows never overlap.
func TestTumblingWindowConservationProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		deltas := make([]uint64, len(raw))
		for i, v := range raw {
			deltas[i] = uint64(v)
		}
		samples := makeSamples(deltas...)
		const length = 3 * time.Second
		windows, err := HoppingWindows(samples, length, length)
		if err != nil {
			return false
		}
		var winTotal uint64
		for i, w := range windows {
			winTotal += w.Sum.RequestsReceived
			if i > 0 && w.Start != windows[i-1].End {
				return false
			}
		}
		covered := (len(deltas) / 3) * 3
		var want uint64
		for i := 0; i < covered; i++ {
			want += deltas[i]
		}
		return winTotal == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
