package telemetry

import (
	"fmt"
	"time"

	"causalfl/internal/sim"
)

// Paper defaults: "metrics are smoothed by aggregating them using a hopping
// window to create overlapping sixty second windows which are created every
// thirty seconds" (§V-A).
const (
	DefaultWindowLength = 60 * time.Second
	DefaultWindowHop    = 30 * time.Second
)

// Window is one hopping-window aggregate: counter deltas summed over
// [Start, End).
type Window struct {
	Start sim.Time
	End   sim.Time
	Sum   sim.Counters
}

// HoppingWindows aggregates a service's samples into overlapping windows of
// the given length created every hop. Windows are aligned to the first
// sample's interval start and only fully covered windows are produced.
func HoppingWindows(samples []Sample, length, hop time.Duration) ([]Window, error) {
	if length <= 0 || hop <= 0 {
		return nil, fmt.Errorf("telemetry: window length and hop must be positive (length=%v hop=%v)", length, hop)
	}
	if hop > length {
		return nil, fmt.Errorf("telemetry: hop %v larger than window %v would drop samples", hop, length)
	}
	if len(samples) == 0 {
		return nil, nil
	}
	// A sample stamped At covers the interval ending at At; the series
	// origin is therefore the start of the first sample's interval. We
	// recover the interval from consecutive stamps (or assume the first
	// stamp equals one interval from origin, which holds for Sampler).
	interval := samples[0].At
	if len(samples) > 1 {
		interval = samples[1].At - samples[0].At
	}
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: non-increasing sample timestamps")
	}
	origin := samples[0].At - interval
	end := samples[len(samples)-1].At

	var windows []Window
	for start := origin; start+length <= end; start += hop {
		w := Window{Start: start, End: start + length}
		for _, smp := range samples {
			// Sample covers (At-interval, At]; include it when the
			// whole interval lies inside the window.
			if smp.At-interval >= w.Start && smp.At <= w.End {
				w.Sum = w.Sum.Add(smp.Deltas)
			}
		}
		windows = append(windows, w)
	}
	return windows, nil
}

// WindowsByService applies HoppingWindows to every service in samples.
func WindowsByService(samples map[string][]Sample, length, hop time.Duration) (map[string][]Window, error) {
	out := make(map[string][]Window, len(samples))
	for svc, s := range samples {
		w, err := HoppingWindows(s, length, hop)
		if err != nil {
			return nil, fmt.Errorf("telemetry: windows for %s: %w", svc, err)
		}
		out[svc] = w
	}
	return out, nil
}
