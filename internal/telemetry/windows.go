package telemetry

import (
	"fmt"
	"time"

	"causalfl/internal/sim"
)

// Paper defaults: "metrics are smoothed by aggregating them using a hopping
// window to create overlapping sixty second windows which are created every
// thirty seconds" (§V-A).
const (
	DefaultWindowLength = 60 * time.Second
	DefaultWindowHop    = 30 * time.Second
)

// Window is one hopping-window aggregate: counter deltas summed over
// [Start, End).
type Window struct {
	Start sim.Time
	End   sim.Time
	Sum   sim.Counters
	// Expected is the number of sampling intervals the window spans;
	// Covered is how many of them contributed data. Covered < Expected
	// marks a window degraded by scrape loss. Zero Expected means the
	// window predates coverage accounting and is treated as fully covered.
	Expected int
	Covered  int
}

// Coverage returns the fraction of the window's sampling intervals backed by
// data, in [0,1]. Windows without coverage accounting report 1.
func (w Window) Coverage() float64 {
	if w.Expected <= 0 {
		return 1
	}
	c := float64(w.Covered) / float64(w.Expected)
	if c > 1 {
		return 1
	}
	return c
}

// HoppingWindows aggregates a service's samples into overlapping windows of
// the given length created every hop. Windows are aligned to the first
// sample's interval start and only fully covered windows are produced.
func HoppingWindows(samples []Sample, length, hop time.Duration) ([]Window, error) {
	if length <= 0 || hop <= 0 {
		return nil, fmt.Errorf("telemetry: window length and hop must be positive (length=%v hop=%v)", length, hop)
	}
	if hop > length {
		return nil, fmt.Errorf("telemetry: hop %v larger than window %v would drop samples", hop, length)
	}
	if len(samples) == 0 {
		return nil, nil
	}
	// A sample stamped At covers the interval ending at At; the series
	// origin is therefore the start of the first sample's interval. We
	// recover the interval from consecutive stamps (or assume the first
	// stamp equals one interval from origin, which holds for Sampler).
	interval := samples[0].At
	if len(samples) > 1 {
		interval = samples[1].At - samples[0].At
	}
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: non-increasing sample timestamps")
	}
	origin := samples[0].At - interval
	end := samples[len(samples)-1].At
	expected := int(length / interval)

	var windows []Window
	for start := origin; start+length <= end; start += hop {
		w := Window{Start: start, End: start + length, Expected: expected}
		for _, smp := range samples {
			if smp.Missing {
				continue
			}
			span := smp.Span
			if span < 1 {
				span = 1
			}
			// Sample covers (At-span*interval, At]; include it when the
			// whole covered stretch lies inside the window. A recovery
			// sample whose span crosses the window boundary is excluded
			// from both windows — its mass cannot be split, so the
			// affected windows honestly report under-coverage instead.
			if smp.At-sim.Time(span)*sim.Time(interval) >= w.Start && smp.At <= w.End {
				w.Sum = w.Sum.Add(smp.Deltas)
				w.Covered += span
			}
		}
		if w.Covered > w.Expected {
			w.Covered = w.Expected
		}
		windows = append(windows, w)
	}
	return windows, nil
}

// WindowsByService applies HoppingWindows to every service in samples.
func WindowsByService(samples map[string][]Sample, length, hop time.Duration) (map[string][]Window, error) {
	out := make(map[string][]Window, len(samples))
	for svc, s := range samples {
		w, err := HoppingWindows(s, length, hop)
		if err != nil {
			return nil, fmt.Errorf("telemetry: windows for %s: %w", svc, err)
		}
		out[svc] = w
	}
	return out, nil
}
