package telemetry

import (
	"time"

	"testing"

	"causalfl/internal/sim"
)

// TestDrainSortsByTick is the regression test for out-of-order sample
// buffers: a retried scrape records under its nominal tick stamp when the
// backoff finally succeeds, which with an aggressive policy can land after
// the following tick already appended. Drain must restore ascending-stamp
// order — window aggregation and the streaming aggregator rely on it.
func TestDrainSortsByTick(t *testing.T) {
	eng := sim.NewEngine(1)
	c := sim.NewCluster(eng)
	c.MustAddService(sim.ServiceConfig{Name: "svc", Endpoints: []sim.Endpoint{{
		Name:  "work",
		Steps: []sim.Step{sim.Compute{Mean: time.Millisecond}},
	}}})
	s, err := NewSampler(c, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the late-retry append pattern directly: the tick at 2s
	// landed before the retried tick at 1s finally recorded.
	tick := func(at sim.Time) Sample { return Sample{At: at, Span: 1} }
	s.series["svc"] = []Sample{
		tick(sim.Time(2 * time.Second)),
		tick(sim.Time(1 * time.Second)),
		tick(sim.Time(3 * time.Second)),
	}
	out := s.Drain()
	got := out["svc"]
	if len(got) != 3 {
		t.Fatalf("drained %d samples, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("drain left samples out of order: %v before %v", got[i-1].At, got[i].At)
		}
	}
	if got[0].At != sim.Time(time.Second) || got[2].At != sim.Time(3*time.Second) {
		t.Fatalf("unexpected order after drain: %v", got)
	}
	// The buffer must be cleared regardless.
	if len(s.series) != 0 {
		t.Fatalf("drain left %d series buffered", len(s.series))
	}
}
