package telemetry

import (
	"math"
	"testing"
	"time"

	"causalfl/internal/sim"
)

// lossAt flips the service's scrape-loss rate at a scheduled virtual time.
func lossAt(t *testing.T, eng *sim.Engine, c *sim.Cluster, at sim.Time, rate float64) {
	t.Helper()
	svc, ok := c.Service("svc")
	if !ok {
		t.Fatal("no svc")
	}
	eng.Schedule(at, func() { svc.SetScrapeLossRate(rate) })
}

func TestSamplerRecordsGapsNotZeros(t *testing.T) {
	eng, c := newLoadedCluster(t)
	s, err := NewSampler(c, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Ticks 3, 4, 5 fail; ticks 1-2 and 6-8 succeed.
	lossAt(t, eng, c, 2500*time.Millisecond, 1)
	lossAt(t, eng, c, 5500*time.Millisecond, 0)
	eng.Run(8 * time.Second)
	samples := s.Drain()["svc"]
	if len(samples) != 8 {
		t.Fatalf("got %d samples, want 8 (gaps must be recorded, not dropped)", len(samples))
	}
	for i, smp := range samples {
		tick := i + 1
		wantMissing := tick >= 3 && tick <= 5
		if smp.Missing != wantMissing {
			t.Errorf("tick %d Missing=%v, want %v", tick, smp.Missing, wantMissing)
		}
		if wantMissing && smp.Deltas.RequestsReceived != 0 {
			t.Errorf("tick %d missing sample carries deltas %+v", tick, smp.Deltas)
		}
	}
	// The first sample after the gap spans it and carries the counter mass
	// accumulated across the whole outage (~40 requests over 4 intervals).
	rec := samples[5]
	if rec.Span != 4 {
		t.Fatalf("recovery sample span = %d, want 4", rec.Span)
	}
	if rec.Deltas.RequestsReceived < 32 || rec.Deltas.RequestsReceived > 48 {
		t.Fatalf("recovery sample deltas = %d requests, want ~40 (mass lost?)", rec.Deltas.RequestsReceived)
	}
	if gaps := s.Gaps()["svc"]; gaps != 3 {
		t.Fatalf("Gaps = %d, want 3", gaps)
	}
}

func TestSamplerRetryRecoversWithinInterval(t *testing.T) {
	eng, c := newLoadedCluster(t)
	s, err := NewSampler(c, time.Second, WithRetry(RetryPolicy{
		Attempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Tick 3 fails at 3s, but the exporter is healthy again at 3.05s, so
	// the first re-read at 3.1s succeeds.
	lossAt(t, eng, c, 2500*time.Millisecond, 1)
	lossAt(t, eng, c, 3050*time.Millisecond, 0)
	eng.Run(6 * time.Second)
	samples := s.Drain()["svc"]
	if len(samples) != 6 {
		t.Fatalf("got %d samples, want 6", len(samples))
	}
	for i, smp := range samples {
		if smp.Missing {
			t.Fatalf("tick %d missing despite successful retry", i+1)
		}
		if smp.Span > 1 {
			t.Fatalf("tick %d span = %d, want 1 (retry kept the tick whole)", i+1, smp.Span)
		}
		if smp.At != time.Duration(i+1)*time.Second {
			t.Fatalf("tick %d stamped %v, want nominal tick time", i+1, smp.At)
		}
	}
	if gaps := s.Gaps()["svc"]; gaps != 0 {
		t.Fatalf("Gaps = %d, want 0 (retry succeeded)", gaps)
	}
}

func TestSamplerRetryExhaustionDeclaresMiss(t *testing.T) {
	eng, c := newLoadedCluster(t)
	s, err := NewSampler(c, time.Second, WithRetry(RetryPolicy{
		Attempts: 2, BaseDelay: 100 * time.Millisecond, MaxDelay: 200 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// The outage outlasts every retry of tick 3.
	lossAt(t, eng, c, 2500*time.Millisecond, 1)
	lossAt(t, eng, c, 3500*time.Millisecond, 0)
	eng.Run(6 * time.Second)
	samples := s.Drain()["svc"]
	if len(samples) != 6 {
		t.Fatalf("got %d samples, want 6", len(samples))
	}
	if !samples[2].Missing {
		t.Fatal("tick 3 not marked missing after retry exhaustion")
	}
	if samples[3].Missing || samples[3].Span != 2 {
		t.Fatalf("tick 4 = %+v, want recovery with span 2", samples[3])
	}
	if gaps := s.Gaps()["svc"]; gaps != 1 {
		t.Fatalf("Gaps = %d, want 1", gaps)
	}
}

func TestWithRetryValidation(t *testing.T) {
	_, c := newLoadedCluster(t)
	bad := []RetryPolicy{
		{Attempts: -1},
		{Attempts: 2, BaseDelay: 0},
		{Attempts: 2, BaseDelay: 200 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
		// Total worst-case backoff exceeds the sampling interval.
		{Attempts: 5, BaseDelay: 400 * time.Millisecond, MaxDelay: 400 * time.Millisecond},
	}
	for i, p := range bad {
		if _, err := NewSampler(c, time.Second, WithRetry(p)); err == nil {
			t.Errorf("case %d: retry policy %+v accepted", i, p)
		}
	}
	if _, err := NewSampler(c, time.Second, WithRetry(DefaultRetryPolicy())); err != nil {
		t.Fatalf("default retry policy rejected: %v", err)
	}
	// Attempts: 0 disables retrying and needs no delays.
	if _, err := NewSampler(c, time.Second, WithRetry(RetryPolicy{})); err != nil {
		t.Fatalf("zero retry policy rejected: %v", err)
	}
}

func TestSamplerCorruptionMarksSamples(t *testing.T) {
	eng, c := newLoadedCluster(t)
	svc, _ := c.Service("svc")
	svc.SetSampleCorruptionRate(1)
	s, err := NewSampler(c, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run(10 * time.Second)
	samples := s.Drain()["svc"]
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	mangled := 0
	for i, smp := range samples {
		if !smp.Corrupt {
			t.Fatalf("tick %d not marked corrupt at rate 1", i+1)
		}
		d := smp.Deltas
		if math.IsNaN(d.CPUSeconds) || math.IsInf(d.CPUSeconds, 0) || d.RequestsReceived > 1000 {
			mangled++
		}
	}
	if mangled == 0 {
		t.Fatal("corruption flagged but no sample value was actually mangled")
	}
}

func TestWindowCoverageAccounting(t *testing.T) {
	// 1s samples, tumbling 2s windows. Tick 2 is missing; tick 3 spans the
	// gap but its stretch (1s,3s] crosses the window boundary at 2s, so it
	// lands in neither window — both report half coverage.
	samples := []Sample{
		{At: 1 * time.Second, Deltas: sim.Counters{RequestsReceived: 10}},
		{At: 2 * time.Second, Missing: true},
		{At: 3 * time.Second, Deltas: sim.Counters{RequestsReceived: 20}, Span: 2},
		{At: 4 * time.Second, Deltas: sim.Counters{RequestsReceived: 10}},
	}
	windows, err := HoppingWindows(samples, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(windows))
	}
	for i, w := range windows {
		if w.Expected != 2 {
			t.Errorf("window %d expected = %d, want 2", i, w.Expected)
		}
		if w.Covered != 1 {
			t.Errorf("window %d covered = %d, want 1", i, w.Covered)
		}
		if w.Coverage() != 0.5 {
			t.Errorf("window %d coverage = %v, want 0.5", i, w.Coverage())
		}
	}
	if windows[0].Sum.RequestsReceived != 10 || windows[1].Sum.RequestsReceived != 10 {
		t.Errorf("window sums = %d, %d; want 10, 10 (boundary-crossing span excluded)",
			windows[0].Sum.RequestsReceived, windows[1].Sum.RequestsReceived)
	}
}

func TestWindowSpanRecoveryInsideWindow(t *testing.T) {
	// The gap and its recovery land inside one 4s window: the counter mass
	// survives and the window is fully covered.
	samples := []Sample{
		{At: 1 * time.Second, Deltas: sim.Counters{RequestsReceived: 10}},
		{At: 2 * time.Second, Missing: true},
		{At: 3 * time.Second, Deltas: sim.Counters{RequestsReceived: 20}, Span: 2},
		{At: 4 * time.Second, Deltas: sim.Counters{RequestsReceived: 10}},
	}
	windows, err := HoppingWindows(samples, 4*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 1 {
		t.Fatalf("got %d windows, want 1", len(windows))
	}
	w := windows[0]
	if w.Sum.RequestsReceived != 40 {
		t.Errorf("window sum = %d, want 40 (span recovery lost mass)", w.Sum.RequestsReceived)
	}
	if w.Coverage() != 1 {
		t.Errorf("coverage = %v, want 1 (span covers the gap)", w.Coverage())
	}
}

func TestFullyCoveredWindowsMatchLegacyBehavior(t *testing.T) {
	// Clean samples: coverage is exactly 1 everywhere and sums equal the
	// pre-degradation behavior.
	samples := makeSamples(1, 2, 3, 4, 5, 6, 7, 8)
	windows, err := HoppingWindows(samples, 4*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range windows {
		if w.Coverage() != 1 {
			t.Errorf("window %d coverage = %v, want 1", i, w.Coverage())
		}
		if w.Covered != w.Expected {
			t.Errorf("window %d covered %d/%d", i, w.Covered, w.Expected)
		}
	}
}

func TestLateRetryDoesNotLeakAcrossDrain(t *testing.T) {
	eng, c := newLoadedCluster(t)
	s, err := NewSampler(c, time.Second, WithRetry(RetryPolicy{
		Attempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Tick 3 fails and its retries are pending when the phase boundary
	// (Drain at 3.05s) passes; the exporter recovers at 3.2s so a retry
	// completes at 3.3s — into the *new* phase's buffer if unguarded.
	lossAt(t, eng, c, 2500*time.Millisecond, 1)
	lossAt(t, eng, c, 3200*time.Millisecond, 0)
	eng.Run(3050 * time.Millisecond)
	first := s.Drain()["svc"]
	eng.Run(6 * time.Second)
	second := s.Drain()["svc"]
	if len(first) != 2 {
		t.Fatalf("first drain has %d samples, want 2", len(first))
	}
	for i, smp := range second {
		if smp.At <= 3050*time.Millisecond {
			t.Fatalf("second drain sample %d stamped %v — late retry leaked across Drain", i, smp.At)
		}
	}
	// The fresh buffer must still be windowable (monotonic timestamps).
	if _, err := HoppingWindows(second, 2*time.Second, time.Second); err != nil {
		t.Fatalf("second drain not windowable: %v", err)
	}
}
