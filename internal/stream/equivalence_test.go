package stream_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/stream"
)

// The batch↔stream equivalence property: at every hop, for every worker
// count and decision mode, the streaming detector's output must be
// byte-identical to core.Detect run on the materialized sliding window, and
// the streaming localizer's vote output must be byte-identical to
// core.Localizer.Localize on the same windows. These tests enforce the
// property exhaustively over a fault-injected synthetic stream.

// detectOpts translates a batch core.DetectConfig into the stream option
// list that reproduces it, so each equivalence case states its semantics
// once in batch terms.
func detectOpts(window int, cfg core.DetectConfig) []stream.Option {
	opts := []stream.Option{stream.WithWindow(window), stream.WithTolerant(cfg.Tolerant)}
	if cfg.Alpha != 0 {
		opts = append(opts, stream.WithAlpha(cfg.Alpha))
	}
	if cfg.FDR != 0 {
		opts = append(opts, stream.WithFDR(cfg.FDR))
	}
	if cfg.MinSamples != 0 {
		opts = append(opts, stream.WithMinSamples(cfg.MinSamples))
	}
	if cfg.Workers != 0 {
		opts = append(opts, stream.WithWorkers(cfg.Workers))
	}
	return opts
}

// noisyDet returns a copy of the workload's hops with deterministic NaN/Inf
// injections (positions pinned by the workload's canonical name order),
// exercising the tolerant path's finite-value filtering and the min-sample
// guard (a freshly poisoned pair can drop below MinSamples).
func noisyDet(w *stream.SynthWorkload) []map[string]map[string]float64 {
	out := make([]map[string]map[string]float64, len(w.Hops))
	for h, hop := range w.Hops {
		oh := make(map[string]map[string]float64, len(hop))
		for mi, m := range w.MetricNames {
			ov := make(map[string]float64, len(hop[m]))
			for si, svc := range w.Services {
				v := hop[m][svc]
				switch (h + 3*mi + 7*si) % 19 {
				case 4:
					v = math.NaN()
				case 9:
					v = math.Inf(1)
				}
				ov[svc] = v
			}
			oh[m] = ov
		}
		out[h] = oh
	}
	return out
}

func TestDetectorMatchesBatchEveryHop(t *testing.T) {
	w, err := stream.NewSynth(stream.SynthConfig{
		Services: 6, Metrics: 3, BaselineLen: 12, Hops: 30,
		Seed: 3, FaultService: 2, FaultAfter: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		hops   []map[string]map[string]float64
		detect core.DetectConfig
		sketch bool
	}{
		{"alpha-tolerant", noisyDet(w), core.DetectConfig{Alpha: 0.05, Tolerant: true}, false},
		{"fdr-tolerant", noisyDet(w), core.DetectConfig{FDR: 0.10, Tolerant: true}, false},
		{"alpha-strict", w.Hops, core.DetectConfig{Alpha: 0.05}, false},
		{"fdr-strict", w.Hops, core.DetectConfig{FDR: 0.05}, false},
		{"minsamples-tolerant", noisyDet(w), core.DetectConfig{Alpha: 0.05, Tolerant: true, MinSamples: 6}, false},
		// BaselineLen 12 <= stats.SketchCutoff(DefaultSketchEps): the sketch
		// is lossless, so even the sketched detector must match batch exactly.
		{"alpha-tolerant-sketch", noisyDet(w), core.DetectConfig{Alpha: 0.05, Tolerant: true}, true},
		{"fdr-tolerant-sketch", noisyDet(w), core.DetectConfig{FDR: 0.10, Tolerant: true}, true},
	}

	const window = 8
	ctx := context.Background()
	for _, tc := range cases {
		for workers := 1; workers <= 8; workers++ {
			cfg := tc.detect
			cfg.Workers = workers
			// Vary the shard count with the worker count: detection output
			// must not depend on either.
			opts := append(detectOpts(window, cfg), stream.WithShards(workers))
			if tc.sketch {
				opts = append(opts, stream.WithSketch(stream.DefaultSketchEps))
			}
			det, err := stream.NewDetector(w.Baseline, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for h, hop := range tc.hops {
				if err := det.ObserveHop(hop); err != nil {
					t.Fatalf("%s w=%d hop %d: observe: %v", tc.name, workers, h, err)
				}
				mat := det.Materialize()
				for _, m := range w.MetricNames {
					got, err := det.Detect(ctx, m)
					if err != nil {
						t.Fatalf("%s w=%d hop %d %s: stream: %v", tc.name, workers, h, m, err)
					}
					want, err := core.Detect(ctx, cfg, w.Baseline, mat, m)
					if err != nil {
						t.Fatalf("%s w=%d hop %d %s: batch: %v", tc.name, workers, h, m, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s w=%d hop %d %s: stream %+v, batch %+v",
							tc.name, workers, h, m, got, want)
					}
				}
			}
		}
	}
}

func TestLocalizerMatchesBatchEveryHop(t *testing.T) {
	w, err := stream.NewSynth(stream.SynthConfig{
		Services: 5, Metrics: 3, BaselineLen: 10, Hops: 24,
		Seed: 11, FaultService: 3, FaultAfter: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := w.Model()
	hops := noisyDet(w)
	const window = 7

	modes := []struct {
		name  string
		alpha float64
		fdr   float64
	}{
		{"alpha", 0, 0}, // falls back to model.Alpha on both paths
		{"fdr", 0, 0.10},
	}
	ctx := context.Background()
	for _, mode := range modes {
		for workers := 1; workers <= 8; workers++ {
			lopts := []stream.Option{
				stream.WithWindow(window), stream.WithWorkers(workers), stream.WithShards(workers * 3),
			}
			if mode.alpha != 0 {
				lopts = append(lopts, stream.WithAlpha(mode.alpha))
			}
			if mode.fdr != 0 {
				lopts = append(lopts, stream.WithFDR(mode.fdr))
			}
			sl, err := stream.NewLocalizer(model, lopts...)
			if err != nil {
				t.Fatal(err)
			}
			var opts []core.Option
			opts = append(opts, core.WithWorkers(workers))
			if mode.fdr > 0 {
				opts = append(opts, core.WithFDR(mode.fdr))
			}
			batch, err := core.NewLocalizer(opts...)
			if err != nil {
				t.Fatal(err)
			}
			for h, hop := range hops {
				v, err := sl.Step(ctx, 0, hop)
				if err != nil {
					t.Fatalf("%s w=%d hop %d: step: %v", mode.name, workers, h, err)
				}
				want, err := batch.Localize(ctx, model, sl.Detector().Materialize())
				if err != nil {
					t.Fatalf("%s w=%d hop %d: batch: %v", mode.name, workers, h, err)
				}
				// Aggregate never sees the production snapshot, so the
				// streaming verdict carries no degradation report; strip it
				// before the whole-struct comparison.
				want.Degradation = nil
				if !reflect.DeepEqual(v.Full, want) {
					t.Fatalf("%s w=%d hop %d: stream %+v, batch %+v", mode.name, workers, h, v.Full, want)
				}
				if !reflect.DeepEqual(v.Candidates, want.Candidates) ||
					!reflect.DeepEqual(v.Votes, want.Votes) || v.Abstained != want.Abstained {
					t.Fatalf("%s w=%d hop %d: verdict fields diverge from batch", mode.name, workers, h)
				}
			}
		}
	}
}

// TestDetectorStrictMissingPair checks that strict mode fails on an
// unobserved pair the way batch strict mode fails on a missing snapshot
// entry, and that tolerant mode skips it.
func TestDetectorStrictMissingPair(t *testing.T) {
	base := metrics.NewSnapshot([]string{"m"}, []string{"a", "b"})
	rng := rand.New(rand.NewSource(5))
	for _, svc := range []string{"a", "b"} {
		s := make([]float64, 8)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		base.Data["m"][svc] = s
	}
	ctx := context.Background()

	strict, err := stream.NewDetector(base, stream.WithWindow(4), stream.WithAlpha(0.05))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := strict.Observe("m", "a", rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := strict.Detect(ctx, "m"); err == nil {
		t.Fatal("strict detect accepted a never-observed pair")
	}

	tol, err := stream.NewDetector(base, stream.WithWindow(4), stream.WithAlpha(0.05), stream.WithTolerant(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tol.Observe("m", "a", rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tol.Detect(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Detect(ctx, core.DetectConfig{Alpha: 0.05, Tolerant: true}, base, tol.Materialize(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tolerant skip diverges: stream %+v, batch %+v", got, want)
	}
	if got.Tested != 1 {
		t.Fatalf("tolerant family size %d, want 1", got.Tested)
	}
}
