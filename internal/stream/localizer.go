package stream

import (
	"context"
	"fmt"
	"sort"

	"causalfl/internal/core"
	"causalfl/internal/parallel"
	"causalfl/internal/sim"
)

// Default hysteresis: a service must be a top candidate in at least 3 of the
// last 5 hops before it is confirmed. One anomalous window on one metric can
// flip a single hop's vote; demanding K-of-N agreement suppresses that flap
// without adding latency beyond (K-1) hops after a genuine fault.
const (
	DefaultHystK = 3
	DefaultHystN = 5
)

// Verdict is one hop's localization outcome on the stream timeline.
type Verdict struct {
	// At is the virtual timestamp of the window end this verdict reflects:
	// every sample up to At has been ingested, none after.
	At sim.Time `json:"at"`
	// Candidates, Votes and Abstained are the hop's raw vote outcome —
	// exactly core.Localization's fields for the materialized window.
	Candidates []string           `json:"candidates,omitempty"`
	Votes      map[string]float64 `json:"votes,omitempty"`
	Abstained  bool               `json:"abstained,omitempty"`
	// Confirmed is the hysteresis-filtered localization: services that
	// were top candidates in at least K of the last N voted hops. Empty
	// until a fault signal persists.
	Confirmed []string `json:"confirmed,omitempty"`
	// Full is the complete vote-phase output for in-process consumers
	// (coverage, per-metric winners, anomaly sets). Not serialized: the
	// timeline JSON stays one small object per hop.
	Full *core.Localization `json:"-"`
}

// Localizer is the streaming counterpart of core.Localizer: a Detector per
// trained model plus the batch vote phase (core.Localizer.Aggregate) plus
// K-of-N hysteresis over the emitted candidate sets. Each Step ingests one
// hop and re-localizes incrementally; the vote phase runs over the model's
// sparse causal index (core.CausalIndex), so a hop's vote cost scales with
// the anomalous sets, not the target universe.
//
// A Localizer is not safe for concurrent use; Step parallelizes internally
// across shards and metrics.
type Localizer struct {
	model   *core.Model
	idx     *core.CausalIndex
	det     *Detector
	voter   *core.Localizer
	workers int
	hystK   int
	hystN   int
	// history holds the candidate sets of the last hystN hops, oldest
	// first. Hops where no metric cast a vote contribute an empty set, so
	// quiet periods break confirmation streaks instead of sustaining them.
	history []map[string]bool
}

// NewLocalizer builds a streaming localizer for a trained model. The model's
// baseline series are sorted (or sketched, with WithSketch) once here.
// Detection is always tolerant, as in the batch localizer; WithTolerant is
// ignored.
func NewLocalizer(model *core.Model, opts ...Option) (*Localizer, error) {
	s, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	return newLocalizer(model, s)
}

// newLocalizer builds a Localizer from resolved settings (shared with
// NewPipeline, which applies the option list once).
func newLocalizer(model *core.Model, s settings) (*Localizer, error) {
	if model == nil {
		return nil, fmt.Errorf("stream: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	hystK, hystN := s.hystK, s.hystN
	if hystK == 0 && hystN == 0 {
		hystK, hystN = DefaultHystK, DefaultHystN
	}
	workers := s.workers
	if workers < 1 {
		workers = 1
	}

	ds := s
	if ds.alpha == 0 {
		// Fall back to the model's training alpha, exactly as the batch
		// localizer does.
		ds.alpha = model.Alpha
	}
	ds.tolerant = true // the batch localizer always detects tolerantly
	ds.workers = 1     // the localizer owns the pool; no nested fan-out
	det, err := newDetector(model.Baseline, ds)
	if err != nil {
		return nil, err
	}
	idx, err := core.NewCausalIndex(model)
	if err != nil {
		return nil, err
	}
	var copts []core.Option
	if s.rule != 0 {
		copts = append(copts, core.WithVoteRule(s.rule))
	}
	voter, err := core.NewLocalizer(copts...)
	if err != nil {
		return nil, err
	}
	return &Localizer{
		model:   model,
		idx:     idx,
		det:     det,
		voter:   voter,
		workers: workers,
		hystK:   hystK,
		hystN:   hystN,
	}, nil
}

// Detector exposes the underlying detector, read-only between Steps — the
// conformance suite uses it to materialize the batch-equivalent snapshot.
func (l *Localizer) Detector() *Detector { return l.det }

// Step ingests one hop (metric -> service -> window value) stamped at the
// window end `at`, then re-localizes: the detector flushes the touched
// shards across the worker pool, the per-metric detections are assembled
// read-only, the vote phase is core.Localizer.Aggregate over the sparse
// causal index, and the hysteresis filter updates last. The returned
// Verdict's vote fields are byte-identical to core.Localizer.Localize on the
// materialized windows.
func (l *Localizer) Step(ctx context.Context, at sim.Time, hop map[string]map[string]float64) (*Verdict, error) {
	if err := l.det.ObserveHop(hop); err != nil {
		return nil, err
	}
	if err := l.det.flush(ctx, l.workers); err != nil {
		return nil, err
	}
	detections, err := parallel.Map(ctx, l.workers, len(l.model.Metrics), func(ctx context.Context, i int) (*core.Detection, error) {
		return l.det.detect(ctx, l.model.Metrics[i], 1)
	})
	if err != nil {
		return nil, err
	}
	loc, err := l.voter.AggregateIndexed(l.idx, detections)
	if err != nil {
		return nil, err
	}

	// Hysteresis bookkeeping: only hops where some metric actually voted
	// contribute their candidates; abstentions and no-vote hops (whose
	// candidate set is the uninformative full target list) push an empty
	// set, so a healthy stream never accumulates confirmations.
	set := make(map[string]bool)
	if len(loc.Votes) > 0 {
		for _, c := range loc.Candidates {
			set[c] = true
		}
	}
	l.history = append(l.history, set)
	if len(l.history) > l.hystN {
		l.history = l.history[1:]
	}

	return &Verdict{
		At:         at,
		Candidates: loc.Candidates,
		Votes:      loc.Votes,
		Abstained:  loc.Abstained,
		Confirmed:  l.confirmed(),
		Full:       loc,
	}, nil
}

// confirmed returns the sorted services named top candidate in at least
// hystK of the retained hops.
func (l *Localizer) confirmed() []string {
	counts := make(map[string]int)
	for _, set := range l.history {
		for s := range set {
			counts[s]++
		}
	}
	var out []string
	for s, n := range counts {
		if n >= l.hystK {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
