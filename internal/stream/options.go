package stream

import (
	"fmt"
	"time"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/stats"
)

// Defaults for the option set below. DefaultWindow is the sliding-window
// length in window-values per (metric, service) pair; DefaultShards is the
// number of hash shards the detector's dirty-pair flush fans across.
const (
	DefaultWindow = 8
	DefaultShards = 32
)

// DefaultSketchEps re-exports the stats package's default sketch error budget
// so callers configuring WithSketch need not import internal/stats.
const DefaultSketchEps = stats.DefaultSketchEps

// settings is the resolved configuration shared by Detector, Localizer and
// Pipeline. Each constructor reads the subset it understands; options that do
// not apply to a constructor (say, WithGeometry on a bare Detector) are
// simply ignored by it, so one option list can configure a whole Pipeline.
type settings struct {
	window     int
	hystK      int
	hystN      int
	alpha      float64
	fdr        float64
	minSamples int
	workers    int
	rule       core.VoteRule
	test       stats.TwoSampleTest
	tolerant   bool
	length     time.Duration
	hop        time.Duration
	set        []metrics.Metric
	sketchEps  float64
	shards     int
}

// Option configures a Detector, Localizer or Pipeline. All three constructors
// take the same option set — the single front door for streaming
// configuration.
type Option func(*settings) error

// applyOptions resolves an option list over the defaults.
func applyOptions(opts []Option) (settings, error) {
	s := settings{window: DefaultWindow, shards: DefaultShards}
	for _, opt := range opts {
		if opt == nil {
			return s, fmt.Errorf("stream: nil option")
		}
		if err := opt(&s); err != nil {
			return s, err
		}
	}
	return s, nil
}

// WithWindow sets the number of most-recent window-values retained per
// (metric, service) series — the sliding production sample the two-sample
// tests see. The default is DefaultWindow.
func WithWindow(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("stream: window must be >= 1, got %d", n)
		}
		s.window = n
		return nil
	}
}

// WithHysteresis requires a service to be a top candidate in at least k of
// the last n voted hops before it is confirmed. The default is
// DefaultHystK of DefaultHystN. Detector-only constructions ignore it.
func WithHysteresis(k, n int) Option {
	return func(s *settings) error {
		if k < 1 || n < k {
			return fmt.Errorf("stream: hysteresis wants 1 <= K <= N, got K=%d N=%d", k, n)
		}
		s.hystK, s.hystN = k, n
		return nil
	}
}

// WithAlpha sets the per-test significance threshold. Unset, the Localizer
// falls back to the model's training alpha and the Detector to
// core.DefaultAlpha, exactly as the batch path does. Ignored when FDR
// control is on.
func WithAlpha(alpha float64) Option {
	return func(s *settings) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("stream: alpha must be in (0,1), got %v", alpha)
		}
		s.alpha = alpha
		return nil
	}
}

// WithFDR switches the per-metric family decision to Benjamini-Hochberg
// control at level q.
func WithFDR(q float64) Option {
	return func(s *settings) error {
		if q <= 0 || q >= 1 {
			return fmt.Errorf("core: FDR level must be in (0,1), got %v", q)
		}
		s.fdr = q
		return nil
	}
}

// WithMinSamples sets the tolerant-mode minimum finite series length per
// side; the default is core.DefaultMinSamples.
func WithMinSamples(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("stream: min samples must be >= 1, got %d", n)
		}
		s.minSamples = n
		return nil
	}
}

// WithWorkers bounds the per-hop fan-out (across metrics in the Localizer,
// across dirty shards in the Detector's flush). Zero or one is serial.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("stream: worker count must be >= 0, got %d", n)
		}
		s.workers = n
		return nil
	}
}

// WithVoteRule selects the vote rule; the default is core.IntersectionVote.
// Detector-only constructions ignore it.
func WithVoteRule(rule core.VoteRule) Option {
	return func(s *settings) error {
		s.rule = rule
		return nil
	}
}

// WithTest overrides the two-sample test. The default (guarded KS) rides the
// incremental fast path; any other test falls back to materializing the
// window per hop.
func WithTest(t stats.TwoSampleTest) Option {
	return func(s *settings) error {
		if t == nil {
			return fmt.Errorf("stream: nil two-sample test")
		}
		s.test = t
		return nil
	}
}

// WithTolerant selects degraded-telemetry semantics for a bare Detector:
// pairs missing on either side are skipped instead of failing the call. The
// Detector default is strict; the Localizer and Pipeline always detect
// tolerantly (the batch localizer does too) and ignore this option.
func WithTolerant(tolerant bool) Option {
	return func(s *settings) error {
		s.tolerant = tolerant
		return nil
	}
}

// WithMetricSet sets the metric set a Pipeline evaluates per window. Its
// names must match the model's metric names exactly (the model was trained
// on these extractors). Required for NewPipeline; ignored elsewhere.
func WithMetricSet(set []metrics.Metric) Option {
	return func(s *settings) error {
		if len(set) == 0 {
			return fmt.Errorf("stream: empty metric set")
		}
		s.set = set
		return nil
	}
}

// WithGeometry sets the telemetry window geometry (window length and hop
// interval) a Pipeline aggregates on. Zero values select the telemetry
// defaults. Ignored outside NewPipeline.
func WithGeometry(length, hop time.Duration) Option {
	return func(s *settings) error {
		if length < 0 || hop < 0 {
			return fmt.Errorf("stream: window geometry must be >= 0, got length=%v hop=%v", length, hop)
		}
		s.length, s.hop = length, hop
		return nil
	}
}

// WithSketch replaces each pair's retained baseline with a bounded-memory
// ECDF sketch of error budget eps (stats.NewECDFSketch): per-pair baseline
// memory drops from O(len(baseline)) to O(1/eps) and every KS statistic is
// within the sketch's rank-error bound of exact — bit-identical whenever
// len(baseline) <= stats.SketchCutoff(eps). Requires the (guarded) KS test;
// pass DefaultSketchEps when in doubt.
func WithSketch(eps float64) Option {
	return func(s *settings) error {
		if eps <= 0 || eps >= 1 {
			return fmt.Errorf("stats: sketch eps must be in (0,1), got %v", eps)
		}
		s.sketchEps = eps
		return nil
	}
}

// WithShards sets how many hash shards the detector's dirty-pair state is
// partitioned into; the flush after each hop fans the shards that actually
// changed across the worker pool. The default is DefaultShards. Purely a
// throughput knob: results are byte-identical at every shard count.
func WithShards(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("stream: shard count must be >= 1, got %d", n)
		}
		s.shards = n
		return nil
	}
}
