package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
	"causalfl/internal/stream"
	"causalfl/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScenario builds the conformance corpus scenario: a four-service
// chain (svc-0 -> ... -> svc-3) scraped every 5s, aggregated into 30s
// windows every 15s. Training: 60 healthy ticks through the batch pipeline
// (HoppingWindows + BuildSnapshot) with chain causal sets — a fault in
// svc-i shifts svc-i and everything downstream. Production: 60 ticks with a
// CPU fault in svc-2 (which also shifts svc-3) from tick 31 on. The model's
// exact-cover explanation is svc-2 via parsimony.
type goldenScenario struct {
	set      []metrics.Metric
	services []string
	model    *core.Model
	// ticks is the production stream: ticks[i] maps service -> one sample.
	ticks []map[string][]telemetry.Sample
}

const (
	goldenInterval = 5 * time.Second
	goldenLength   = 30 * time.Second
	goldenHop      = 15 * time.Second
)

func buildGoldenScenario(t *testing.T) *goldenScenario {
	t.Helper()
	services := []string{"svc-0", "svc-1", "svc-2", "svc-3"}
	set := metrics.RawAll()
	rng := rand.New(rand.NewSource(404))

	counters := func(si int, faulty bool) sim.Counters {
		c := sim.Counters{
			LogMessages: uint64(100 + 10*si + rng.Intn(5)),
			RxPackets:   uint64(300 + 20*si + rng.Intn(7)),
			TxPackets:   uint64(250 + 15*si + rng.Intn(7)),
			CPUSeconds:  1.0 + 0.1*float64(si) + 0.02*rng.NormFloat64(),
		}
		if faulty {
			c.CPUSeconds *= 1.8
		}
		return c
	}

	// Baseline: 60 healthy ticks, aggregated by the batch pipeline.
	baseSamples := make(map[string][]telemetry.Sample, len(services))
	for tick := 1; tick <= 60; tick++ {
		at := sim.Time(tick) * sim.Time(goldenInterval)
		for si, svc := range services {
			baseSamples[svc] = append(baseSamples[svc], telemetry.Sample{
				At: at, Deltas: counters(si, false), Span: 1,
			})
		}
	}
	baseWindows, err := telemetry.WindowsByService(baseSamples, goldenLength, goldenHop)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := metrics.BuildSnapshot(baseWindows, services, set)
	if err != nil {
		t.Fatal(err)
	}

	// Chain causal sets: C(svc-i) = {svc-i, ..., svc-3}.
	sets := make(map[string]map[string][]string, len(set))
	for _, m := range metrics.Names(set) {
		byTarget := make(map[string][]string, len(services))
		for i, svc := range services {
			byTarget[svc] = append([]string(nil), services[i:]...)
		}
		sets[m] = byTarget
	}
	model := &core.Model{
		Services:   services,
		Metrics:    metrics.Names(set),
		Targets:    append([]string(nil), services...),
		CausalSets: sets,
		Baseline:   baseline,
		Alpha:      0.05,
	}

	// Production: 60 ticks, CPU fault in svc-2 and its downstream svc-3
	// from tick 31.
	var ticks []map[string][]telemetry.Sample
	for tick := 61; tick <= 120; tick++ {
		at := sim.Time(tick) * sim.Time(goldenInterval)
		one := make(map[string][]telemetry.Sample, len(services))
		for si, svc := range services {
			faulty := tick > 90 && si >= 2
			one[svc] = []telemetry.Sample{{At: at, Deltas: counters(si, faulty), Span: 1}}
		}
		ticks = append(ticks, one)
	}
	return &goldenScenario{set: set, services: services, model: model, ticks: ticks}
}

// TestPipelineGoldenTimeline runs the golden scenario through the full
// streaming engine and compares the verdict timeline against the committed
// golden JSON. Regenerate with `go test ./internal/stream -run Golden
// -update` after an intentional behavior change, and review the diff like
// code: it is the observable contract of the watch pipeline.
func TestPipelineGoldenTimeline(t *testing.T) {
	sc := buildGoldenScenario(t)
	p, err := stream.NewPipeline(sc.model,
		stream.WithMetricSet(sc.set),
		stream.WithGeometry(goldenLength, goldenHop),
		stream.WithWindow(6),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var timeline []*stream.Verdict
	for i, tick := range sc.ticks {
		vs, err := p.Tick(ctx, tick)
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		timeline = append(timeline, vs...)
	}
	if len(timeline) < 10 {
		t.Fatalf("timeline has %d verdicts; scenario misconfigured", len(timeline))
	}
	got, err := json.MarshalIndent(timeline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "watch_timeline.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("verdict timeline diverges from golden %s (run with -update and review the diff if intentional)\ngot:\n%s", golden, got)
	}

	// Structural spot checks so the golden cannot silently encode a broken
	// outcome: the pre-fault prefix confirms nothing, and the final verdict
	// confirms exactly svc-2 (parsimony separates it from its upstream
	// supersets even though svc-3 shifted too).
	for _, v := range timeline {
		if v.At <= sim.Time(90*goldenInterval) && len(v.Confirmed) > 0 {
			t.Fatalf("verdict at %v confirms %v before the fault", v.At, v.Confirmed)
		}
	}
	last := timeline[len(timeline)-1]
	if len(last.Confirmed) != 1 || last.Confirmed[0] != "svc-2" {
		t.Fatalf("final verdict confirms %v, want [svc-2]", last.Confirmed)
	}
}
