package stream_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/eval"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
	"causalfl/internal/stats"
	"causalfl/internal/stream"
	"causalfl/internal/telemetry"
)

// TestSketchExactParityPaperApps drives both paper applications through two
// streaming pipelines fed identical ticks — one with exact baselines, one
// with ECDF-sketch baselines at the default eps — and requires the verdict
// timelines to be deeply equal. The paper apps' baselines fit inside the
// sketch cutoff (the sketch keeps every sorted baseline value), so this is
// the lossless regime: parity is a hard equality, not an approximation bound.
// The sketch pipeline also runs with different worker and shard counts, so
// the equality additionally witnesses shard/worker invariance on real apps.
func TestSketchExactParityPaperApps(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build apps.Builder
	}{
		{causalbench.Name, causalbench.Build},
		{robotshop.Name, robotshop.Build},
	} {
		t.Run(tc.name, func(t *testing.T) {
			model, cfg := parityModel(t, tc.build, 31)

			exact, err := stream.NewPipeline(model,
				stream.WithMetricSet(cfg.Metrics),
				stream.WithGeometry(cfg.WindowLength, cfg.WindowHop),
				stream.WithWindow(6),
			)
			if err != nil {
				t.Fatal(err)
			}
			sketched, err := stream.NewPipeline(model,
				stream.WithMetricSet(cfg.Metrics),
				stream.WithGeometry(cfg.WindowLength, cfg.WindowHop),
				stream.WithWindow(6),
				stream.WithSketch(stream.DefaultSketchEps),
				stream.WithWorkers(4),
				stream.WithShards(5),
			)
			if err != nil {
				t.Fatal(err)
			}

			// Production: a fresh session with the first fault target broken
			// two minutes in; both pipelines see the exact same drained ticks.
			ls, err := eval.NewLiveSession(cfg, 1, 31+99)
			if err != nil {
				t.Fatal(err)
			}
			topo := parityTopology(t, tc.build)
			fault := topo.SortedFaultTargets()[0]
			ctx := context.Background()
			start := ls.Now()
			injected := false
			var exactTL, sketchTL []*stream.Verdict
			for ls.Now()-start < sim.Time(6*time.Minute) {
				if !injected && ls.Now()-start >= sim.Time(2*time.Minute) {
					if err := ls.Inject(fault, chaos.Unavailable()); err != nil {
						t.Fatal(err)
					}
					injected = true
				}
				tick := ls.Advance(cfg.SampleInterval)
				ev, err := exact.Tick(ctx, tick)
				if err != nil {
					t.Fatal(err)
				}
				sv, err := sketched.Tick(ctx, tick)
				if err != nil {
					t.Fatal(err)
				}
				exactTL = append(exactTL, ev...)
				sketchTL = append(sketchTL, sv...)
			}

			if !reflect.DeepEqual(exactTL, sketchTL) {
				t.Fatalf("sketch pipeline diverged from exact on %s:\nexact:  %+v\nsketch: %+v",
					tc.name, verdictDigest(exactTL), verdictDigest(sketchTL))
			}
			// The run must be non-trivial: windows materialized and the fault
			// produced at least one non-abstained, candidate-bearing verdict.
			if len(exactTL) == 0 {
				t.Fatal("no verdicts produced; scenario misconfigured")
			}
			voted := false
			for _, v := range exactTL {
				if !v.Abstained && len(v.Candidates) > 0 {
					voted = true
					break
				}
			}
			if !voted {
				t.Fatalf("no hop produced candidates on %s; the fault never reached the detector", tc.name)
			}
		})
	}
}

// parityModel builds a streaming model for a paper app without a training
// campaign: a healthy session supplies the baseline snapshot, and the causal
// sets are the topology closure (services reachable along call edges in
// either direction) — a superset of any trained set, sufficient for the vote
// phase and cheap enough for a unit test.
func parityModel(t *testing.T, build apps.Builder, seed int64) (*core.Model, eval.Config) {
	t.Helper()
	ls, err := eval.NewLiveSession(eval.Options{Seed: seed, Quick: true}.Apply(eval.Config{Build: build}), 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ls.Config() // fully defaulted (metric set, geometry, intervals)
	samples := ls.Advance(3 * time.Minute)
	windows, err := telemetry.WindowsByService(samples, cfg.WindowLength, cfg.WindowHop)
	if err != nil {
		t.Fatal(err)
	}
	services := ls.Services()
	baseline, err := metrics.BuildSnapshot(windows, services, cfg.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := stats.SketchCutoff(stream.DefaultSketchEps)
	for _, m := range metrics.Names(cfg.Metrics) {
		for svc, series := range baseline.Data[m] {
			if len(series) > cutoff {
				t.Fatalf("baseline %s/%s has %d windows, beyond the lossless sketch cutoff %d",
					m, svc, len(series), cutoff)
			}
		}
	}

	topo := parityTopology(t, build)
	closure := topologyClosure(services, topo.Edges)
	sets := make(map[string]map[string][]string, len(cfg.Metrics))
	for _, m := range metrics.Names(cfg.Metrics) {
		sets[m] = closure
	}
	model := &core.Model{
		Services:   services,
		Metrics:    metrics.Names(cfg.Metrics),
		Targets:    topo.SortedFaultTargets(),
		CausalSets: sets,
		Baseline:   baseline,
		Alpha:      stats.DefaultAlpha,
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	return model, cfg
}

// parityTopology instantiates the app on a throwaway engine for its static
// shape (edges, fault targets), the same trick `causalfl topology` uses.
func parityTopology(t *testing.T, build apps.Builder) *apps.App {
	t.Helper()
	a, err := build(sim.NewEngine(0))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// topologyClosure maps every service to the services reachable from it along
// call edges traversed in either direction (itself included), in the order of
// the services slice.
func topologyClosure(services []string, edges []apps.Edge) map[string][]string {
	adj := make(map[string][]string, len(services))
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	out := make(map[string][]string, len(services))
	for _, svc := range services {
		seen := map[string]bool{svc: true}
		queue := []string{svc}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		set := make([]string, 0, len(seen))
		for _, s := range services {
			if seen[s] {
				set = append(set, s)
			}
		}
		out[svc] = set
	}
	return out
}

// verdictDigest renders a timeline compactly for failure messages.
func verdictDigest(tl []*stream.Verdict) string {
	s := ""
	for _, v := range tl {
		s += fmt.Sprintf("{at=%v cand=%v conf=%v abst=%v} ", v.At, v.Candidates, v.Confirmed, v.Abstained)
	}
	return s
}
