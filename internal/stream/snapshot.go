package stream

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

// This file is the detector-state codec: a versioned, JSON-serializable
// snapshot of a Pipeline's complete dynamic state — the incremental KS ring
// buffers and order-statistics indexes (rebuilt from the retained
// arrival-order windows), the aggregator's buffered tails, window cursors and
// drop accounting, the hysteresis history, and the partially-reported pending
// windows. ExportState and RestoreState are exact inverses: a pipeline
// restored from a snapshot emits a verdict timeline byte-identical to one
// that never stopped, which is the crash-recovery guarantee `causalfl serve`
// builds on (and the serve conformance suite enforces).
//
// Hostile input is rejected with errors, never a panic: Validate checks the
// structural invariants an honest exporter maintains, and RestoreState
// re-checks everything that needs the model and window geometry.

// SnapshotVersion is the codec version ExportState writes. RestoreState
// refuses other versions: silently reinterpreting a future or corrupted
// snapshot is how baselines get quietly lost.
const SnapshotVersion = 1

// Float64 is a float64 whose JSON form round-trips non-finite values:
// finite values encode as plain JSON numbers (shortest form that re-parses
// exactly), NaN and the infinities as the strings "NaN", "+Inf" and "-Inf".
// Sliding windows legitimately hold non-finite values (corrupt telemetry
// ages through the ring like any other sample), and encoding/json would
// refuse to serialize them.
type Float64 float64

// MarshalJSON implements json.Marshaler.
func (f Float64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float64) UnmarshalJSON(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("stream: empty float literal")
	}
	if data[0] == '"' {
		switch string(data) {
		case `"NaN"`:
			*f = Float64(math.NaN())
			return nil
		case `"+Inf"`:
			*f = Float64(math.Inf(1))
			return nil
		case `"-Inf"`:
			*f = Float64(math.Inf(-1))
			return nil
		}
		return fmt.Errorf("stream: unknown float literal %s (want \"NaN\", \"+Inf\" or \"-Inf\")", data)
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return fmt.Errorf("stream: parse float %q: %w", data, err)
	}
	*f = Float64(v)
	return nil
}

// CounterState is sim.Counters in snapshot form: the float-valued counters
// go through Float64 so corrupted (non-finite) deltas survive the trip.
type CounterState struct {
	RequestsReceived uint64  `json:"requests_received,omitempty"`
	RequestsSent     uint64  `json:"requests_sent,omitempty"`
	ResponsesOK      uint64  `json:"responses_ok,omitempty"`
	ResponsesErr     uint64  `json:"responses_err,omitempty"`
	ErrorsObserved   uint64  `json:"errors_observed,omitempty"`
	LogMessages      uint64  `json:"log_messages,omitempty"`
	ErrorLogMessages uint64  `json:"error_log_messages,omitempty"`
	CPUSeconds       Float64 `json:"cpu_seconds,omitempty"`
	BusySeconds      Float64 `json:"busy_seconds,omitempty"`
	RxPackets        uint64  `json:"rx_packets,omitempty"`
	TxPackets        uint64  `json:"tx_packets,omitempty"`
	QueueDrops       uint64  `json:"queue_drops,omitempty"`
}

// EncodeCounters converts counters to snapshot form.
func EncodeCounters(c sim.Counters) CounterState {
	return CounterState{
		RequestsReceived: c.RequestsReceived,
		RequestsSent:     c.RequestsSent,
		ResponsesOK:      c.ResponsesOK,
		ResponsesErr:     c.ResponsesErr,
		ErrorsObserved:   c.ErrorsObserved,
		LogMessages:      c.LogMessages,
		ErrorLogMessages: c.ErrorLogMessages,
		CPUSeconds:       Float64(c.CPUSeconds),
		BusySeconds:      Float64(c.BusySeconds),
		RxPackets:        c.RxPackets,
		TxPackets:        c.TxPackets,
		QueueDrops:       c.QueueDrops,
	}
}

// Counters converts back.
func (cs CounterState) Counters() sim.Counters {
	return sim.Counters{
		RequestsReceived: cs.RequestsReceived,
		RequestsSent:     cs.RequestsSent,
		ResponsesOK:      cs.ResponsesOK,
		ResponsesErr:     cs.ResponsesErr,
		ErrorsObserved:   cs.ErrorsObserved,
		LogMessages:      cs.LogMessages,
		ErrorLogMessages: cs.ErrorLogMessages,
		CPUSeconds:       float64(cs.CPUSeconds),
		BusySeconds:      float64(cs.BusySeconds),
		RxPackets:        cs.RxPackets,
		TxPackets:        cs.TxPackets,
		QueueDrops:       cs.QueueDrops,
	}
}

// SampleState is telemetry.Sample in snapshot (and serve ingest-wire) form.
type SampleState struct {
	At      sim.Time     `json:"at"`
	Deltas  CounterState `json:"deltas"`
	Missing bool         `json:"missing,omitempty"`
	Span    int          `json:"span,omitempty"`
	Corrupt bool         `json:"corrupt,omitempty"`
	// Used marks a buffered sample that already contributed to an emitted
	// window (snapshot-only; ignored on the ingest wire).
	Used bool `json:"used,omitempty"`
}

// EncodeSample converts a sample to wire/snapshot form.
func EncodeSample(s telemetry.Sample) SampleState {
	return SampleState{At: s.At, Deltas: EncodeCounters(s.Deltas), Missing: s.Missing, Span: s.Span, Corrupt: s.Corrupt}
}

// Sample converts back (dropping the snapshot-only Used flag).
func (ss SampleState) Sample() telemetry.Sample {
	return telemetry.Sample{At: ss.At, Deltas: ss.Deltas.Counters(), Missing: ss.Missing, Span: ss.Span, Corrupt: ss.Corrupt}
}

// WindowState is telemetry.Window in snapshot form.
type WindowState struct {
	Start    sim.Time     `json:"start"`
	End      sim.Time     `json:"end"`
	Sum      CounterState `json:"sum"`
	Expected int          `json:"expected,omitempty"`
	Covered  int          `json:"covered,omitempty"`
}

// EncodeWindow converts a window to snapshot form.
func EncodeWindow(w telemetry.Window) WindowState {
	return WindowState{Start: w.Start, End: w.End, Sum: EncodeCounters(w.Sum), Expected: w.Expected, Covered: w.Covered}
}

// Window converts back.
func (ws WindowState) Window() telemetry.Window {
	return telemetry.Window{Start: ws.Start, End: ws.End, Sum: ws.Sum.Counters(), Expected: ws.Expected, Covered: ws.Covered}
}

// PairState is one (metric, service) detector state: the retained
// arrival-order sliding window and the lifetime push count. The sorted
// order-statistics index is not persisted — it is a deterministic function of
// the values and is rebuilt on restore.
type PairState struct {
	Values []Float64 `json:"values"`
	Pushed int       `json:"pushed"`
}

// AggServiceState is one service's aggregator state: buffered tail, learned
// cadence, window cursor and ingest accounting.
type AggServiceState struct {
	Buf      []SampleState `json:"buf,omitempty"`
	Interval sim.Time      `json:"interval,omitempty"`
	Next     sim.Time      `json:"next,omitempty"`
	Expected int           `json:"expected,omitempty"`
	LastAt   sim.Time      `json:"last_at,omitempty"`
	Stats    SvcAggStats   `json:"stats"`
}

// PendingState is one window start awaiting reports from the remaining
// services: the per-service windows collected so far.
type PendingState struct {
	Start   sim.Time               `json:"start"`
	Windows map[string]WindowState `json:"windows"`
}

// PipelineState is the complete serializable dynamic state of a Pipeline.
type PipelineState struct {
	Version int `json:"version"`
	// Length and Hop echo the window geometry and Window the sliding-window
	// length the state was exported under; RestoreState refuses a pipeline
	// configured differently (the state would silently mean something else).
	Length sim.Time `json:"length"`
	Hop    sim.Time `json:"hop"`
	Window int      `json:"window"`
	// Aggregator is the per-service window-assembly state.
	Aggregator map[string]AggServiceState `json:"aggregator,omitempty"`
	// Pairs is metric -> service -> detector state, present only for pairs
	// that observed at least one production value.
	Pairs map[string]map[string]PairState `json:"pairs,omitempty"`
	// History is the hysteresis window: the candidate sets of the most
	// recent voted hops, oldest first, each sorted.
	History [][]string `json:"history,omitempty"`
	// Pending lists partially-reported window starts in ascending order.
	Pending []PendingState `json:"pending,omitempty"`
	// Hops and LastVerdictAt are the verdict counters.
	Hops          uint64   `json:"hops,omitempty"`
	LastVerdictAt sim.Time `json:"last_verdict_at,omitempty"`
}

// Validate checks the structural invariants an honest ExportState maintains,
// without needing the model or pipeline configuration (RestoreState checks
// those). It never panics on arbitrary decoded input.
func (st *PipelineState) Validate() error {
	if st == nil {
		return fmt.Errorf("stream: nil pipeline state")
	}
	if st.Version != SnapshotVersion {
		return fmt.Errorf("stream: snapshot version %d, this build reads %d", st.Version, SnapshotVersion)
	}
	if st.Length <= 0 || st.Hop <= 0 || st.Hop > st.Length || st.Length >= maxSnapshotStamp {
		return fmt.Errorf("stream: snapshot window geometry invalid (length=%v hop=%v)", st.Length, st.Hop)
	}
	if st.Window < 1 {
		return fmt.Errorf("stream: snapshot sliding window %d < 1", st.Window)
	}
	for svc, as := range st.Aggregator {
		if err := as.validate(st.Length); err != nil {
			return fmt.Errorf("stream: snapshot aggregator %q: %w", svc, err)
		}
	}
	for m, bySvc := range st.Pairs {
		for svc, ps := range bySvc {
			if ps.Pushed < 1 {
				return fmt.Errorf("stream: snapshot pair %s/%s: pushed %d < 1", m, svc, ps.Pushed)
			}
			want := ps.Pushed
			if want > st.Window {
				want = st.Window
			}
			if len(ps.Values) != want {
				return fmt.Errorf("stream: snapshot pair %s/%s: %d retained values, %d pushed into window %d wants %d",
					m, svc, len(ps.Values), ps.Pushed, st.Window, want)
			}
		}
	}
	for i, set := range st.History {
		if !sort.StringsAreSorted(set) {
			return fmt.Errorf("stream: snapshot history[%d] not sorted", i)
		}
		for j, s := range set {
			if s == "" {
				return fmt.Errorf("stream: snapshot history[%d] has an empty service name", i)
			}
			if j > 0 && set[j-1] == s {
				return fmt.Errorf("stream: snapshot history[%d] repeats %q", i, s)
			}
		}
	}
	var prev sim.Time
	for i, pe := range st.Pending {
		if pe.Start <= -maxSnapshotStamp || pe.Start >= maxSnapshotStamp {
			return fmt.Errorf("stream: snapshot pending start %v out of range", pe.Start)
		}
		if i > 0 && pe.Start <= prev {
			return fmt.Errorf("stream: snapshot pending starts not strictly ascending at %v", pe.Start)
		}
		prev = pe.Start
		if len(pe.Windows) == 0 {
			return fmt.Errorf("stream: snapshot pending %v has no windows", pe.Start)
		}
		for svc, ws := range pe.Windows {
			if svc == "" {
				return fmt.Errorf("stream: snapshot pending %v has an empty service name", pe.Start)
			}
			if ws.Start != pe.Start {
				return fmt.Errorf("stream: snapshot pending %v: window for %q starts at %v", pe.Start, svc, ws.Start)
			}
			if ws.End != ws.Start+st.Length {
				return fmt.Errorf("stream: snapshot pending %v: window for %q ends at %v, want %v", pe.Start, svc, ws.End, ws.Start+st.Length)
			}
			if ws.Expected < 0 || ws.Covered < 0 {
				return fmt.Errorf("stream: snapshot pending %v: negative coverage for %q", pe.Start, svc)
			}
		}
	}
	return nil
}

// maxSnapshotStamp bounds every timestamp and duration a snapshot may carry
// (about 146 virtual years in nanoseconds). Honest streams start their
// virtual clock at zero and never get near it; a hostile snapshot with a
// cursor parked next to the int64 horizon would overflow the window-emission
// arithmetic after restore and spin the aggregator for 2^63/hop iterations.
const maxSnapshotStamp = sim.Time(1) << 62

// validate checks one service's aggregator state against the snapshot's
// window length.
func (as *AggServiceState) validate(length sim.Time) error {
	if as.Interval < 0 || as.Expected < 0 || as.LastAt < 0 {
		return fmt.Errorf("negative cadence fields (interval=%v expected=%d last_at=%v)", as.Interval, as.Expected, as.LastAt)
	}
	if as.Interval >= maxSnapshotStamp || as.LastAt >= maxSnapshotStamp || as.Next <= -maxSnapshotStamp || as.Next >= maxSnapshotStamp {
		return fmt.Errorf("cadence fields out of range (interval=%v next=%v last_at=%v)", as.Interval, as.Next, as.LastAt)
	}
	if as.Interval == 0 {
		if len(as.Buf) > 1 {
			return fmt.Errorf("%d buffered samples but no learned interval", len(as.Buf))
		}
		if as.Next != 0 || as.Expected != 0 {
			return fmt.Errorf("window cursor set before the interval was learned")
		}
	} else {
		// The interval is learned from two accepted samples, and the
		// emission loop runs (at least vacuously) in the same Ingest: the
		// cursor never trails the newest stamp by a full window, and never
		// leads it.
		if as.Stats.Accepted < 2 {
			return fmt.Errorf("learned interval after %d accepted samples", as.Stats.Accepted)
		}
		if as.Next > as.LastAt || as.LastAt >= as.Next+length {
			return fmt.Errorf("window cursor %v inconsistent with newest stamp %v (length %v)", as.Next, as.LastAt, length)
		}
	}
	var prev sim.Time
	for i, bs := range as.Buf {
		if bs.Span < 0 {
			return fmt.Errorf("buf[%d]: negative span %d", i, bs.Span)
		}
		if bs.At <= -maxSnapshotStamp || bs.At >= maxSnapshotStamp {
			return fmt.Errorf("buf[%d]: stamp %v out of range", i, bs.At)
		}
		if i > 0 && bs.At <= prev {
			return fmt.Errorf("buf stamps not strictly ascending at %v", bs.At)
		}
		prev = bs.At
		if as.Interval > 0 && bs.At <= as.Next {
			return fmt.Errorf("buf[%d] at %v is behind the window cursor %v (would have been trimmed)", i, bs.At, as.Next)
		}
	}
	if n := len(as.Buf); n > 0 {
		if as.LastAt != as.Buf[n-1].At {
			return fmt.Errorf("last_at %v does not match newest buffered stamp %v", as.LastAt, as.Buf[n-1].At)
		}
		if as.Stats.Accepted < uint64(n) {
			return fmt.Errorf("accepted %d below %d buffered samples", as.Stats.Accepted, n)
		}
	}
	if as.Stats.Accepted == 0 && (as.LastAt != 0 || len(as.Buf) != 0) {
		return fmt.Errorf("dynamic state without any accepted sample")
	}
	return nil
}

// ExportState captures the pipeline's complete dynamic state. The returned
// state is deep-copied: mutating the pipeline afterwards does not alter it.
func (p *Pipeline) ExportState() *PipelineState {
	st := &PipelineState{
		Version:       SnapshotVersion,
		Length:        sim.Time(p.agg.length),
		Hop:           sim.Time(p.agg.hop),
		Window:        p.loc.det.window,
		Hops:          p.hops,
		LastVerdictAt: p.lastAt,
	}

	if len(p.agg.svcs) > 0 {
		st.Aggregator = make(map[string]AggServiceState, len(p.agg.svcs))
		for svc, sw := range p.agg.svcs {
			as := AggServiceState{
				Interval: sw.interval,
				Next:     sw.next,
				Expected: sw.expected,
				LastAt:   sw.lastAt,
				Stats:    sw.stats,
			}
			for _, bs := range sw.buf {
				ss := EncodeSample(bs.s)
				ss.Used = bs.used
				as.Buf = append(as.Buf, ss)
			}
			st.Aggregator[svc] = as
		}
	}

	d := p.loc.det
	for _, m := range d.baseline.Metrics {
		for _, svc := range d.baseline.Services {
			ps := d.states[m][svc]
			if ps == nil || ps.ks == nil || ps.ks.Pushed() == 0 {
				continue
			}
			if st.Pairs == nil {
				st.Pairs = make(map[string]map[string]PairState)
			}
			bySvc := st.Pairs[m]
			if bySvc == nil {
				bySvc = make(map[string]PairState)
				st.Pairs[m] = bySvc
			}
			win := ps.ks.Window()
			vals := make([]Float64, len(win))
			for i, v := range win {
				vals[i] = Float64(v)
			}
			bySvc[svc] = PairState{Values: vals, Pushed: ps.ks.Pushed()}
		}
	}

	for _, set := range p.loc.history {
		st.History = append(st.History, sortedNames(set))
	}

	if len(p.pending) > 0 {
		starts := make([]sim.Time, 0, len(p.pending))
		for start := range p.pending {
			starts = append(starts, start)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for _, start := range starts {
			pe := PendingState{Start: start, Windows: make(map[string]WindowState, len(p.pending[start]))}
			for svc, w := range p.pending[start] {
				pe.Windows[svc] = EncodeWindow(w)
			}
			st.Pending = append(st.Pending, pe)
		}
	}
	return st
}

// RestoreState loads a snapshot into a freshly constructed Pipeline. The
// pipeline must have been built with the same model, metric set and
// configuration the snapshot was exported under: RestoreState verifies
// everything the state itself carries (version, window geometry, sliding
// window, service and metric universe) and rejects mismatches, but the
// statistical configuration (alpha/FDR, hysteresis, vote rule) lives outside
// the state — the caller persists it alongside and rebuilds the pipeline
// from it, as `causalfl serve` does.
//
// After a successful restore the pipeline is bit-for-bit equivalent to the
// exporting one: feeding both the same subsequent ticks yields byte-identical
// verdict timelines. On error the pipeline is unusable and must be rebuilt —
// a partially applied snapshot is worse than none.
func (p *Pipeline) RestoreState(st *PipelineState) error {
	if err := st.Validate(); err != nil {
		return err
	}
	if !p.fresh() {
		return fmt.Errorf("stream: restore into a pipeline that already ingested data")
	}
	if sim.Time(p.agg.length) != st.Length || sim.Time(p.agg.hop) != st.Hop {
		return fmt.Errorf("stream: snapshot window geometry %v/%v does not match pipeline %v/%v",
			st.Length, st.Hop, p.agg.length, p.agg.hop)
	}
	d := p.loc.det
	if d.window != st.Window {
		return fmt.Errorf("stream: snapshot sliding window %d does not match pipeline %d", st.Window, d.window)
	}
	known := make(map[string]bool, len(p.model.Services))
	for _, svc := range p.model.Services {
		known[svc] = true
	}

	for svc, as := range st.Aggregator {
		if as.Interval > 0 {
			if want := int(sim.Time(p.agg.length) / as.Interval); as.Expected != want {
				return fmt.Errorf("stream: snapshot aggregator %q: expected %d does not match length %v / interval %v",
					svc, as.Expected, p.agg.length, as.Interval)
			}
		}
		sw := &svcWindows{
			interval: as.Interval,
			next:     as.Next,
			expected: as.Expected,
			lastAt:   as.LastAt,
			stats:    as.Stats,
		}
		for _, ss := range as.Buf {
			sw.buf = append(sw.buf, bufSample{s: ss.Sample(), used: ss.Used})
		}
		p.agg.svcs[svc] = sw
	}

	for m, bySvc := range st.Pairs {
		states, ok := d.states[m]
		if !ok {
			return fmt.Errorf("stream: snapshot pair metric %q not in model", m)
		}
		for svc, ps := range bySvc {
			pst := states[svc]
			if pst == nil || pst.ks == nil {
				return fmt.Errorf("stream: snapshot pair %s/%s has no usable baseline in the model", m, svc)
			}
			vals := make([]float64, len(ps.Values))
			for i, v := range ps.Values {
				vals[i] = float64(v)
			}
			if err := pst.ks.RestoreWindow(vals, ps.Pushed); err != nil {
				return fmt.Errorf("stream: snapshot pair %s/%s: %w", m, svc, err)
			}
			pst.seen = true
			// Mark the restored pair for the next flush so the incremental
			// detection caches are rebuilt from the restored window.
			d.touch(pst)
		}
	}

	if len(st.History) > p.loc.hystN {
		return fmt.Errorf("stream: snapshot history holds %d hops, hysteresis horizon is %d", len(st.History), p.loc.hystN)
	}
	for i, names := range st.History {
		set := make(map[string]bool, len(names))
		for _, s := range names {
			if !known[s] {
				return fmt.Errorf("stream: snapshot history[%d] names unknown service %q", i, s)
			}
			set[s] = true
		}
		p.loc.history = append(p.loc.history, set)
	}

	for _, pe := range st.Pending {
		if len(pe.Windows) >= len(p.model.Services) {
			return fmt.Errorf("stream: snapshot pending %v is fully reported; it should have been emitted", pe.Start)
		}
		bySvc := make(map[string]telemetry.Window, len(pe.Windows))
		for svc, ws := range pe.Windows {
			if !known[svc] {
				return fmt.Errorf("stream: snapshot pending %v names unknown service %q", pe.Start, svc)
			}
			bySvc[svc] = ws.Window()
		}
		p.pending[pe.Start] = bySvc
	}

	p.hops = st.Hops
	p.lastAt = st.LastVerdictAt
	return nil
}

// fresh reports whether the pipeline has ingested nothing yet.
func (p *Pipeline) fresh() bool {
	if len(p.agg.svcs) > 0 || len(p.pending) > 0 || p.hops > 0 {
		return false
	}
	if len(p.loc.history) > 0 {
		return false
	}
	d := p.loc.det
	for _, bySvc := range d.states {
		for _, ps := range bySvc {
			if ps.seen || (ps.ks != nil && ps.ks.Pushed() > 0) {
				return false
			}
		}
	}
	return true
}

// sortedNames turns a membership set into a sorted name slice.
func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
