package stream

import (
	"fmt"
	"math/rand"
	"sort"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/stats"
)

// SynthConfig sizes a synthetic streaming workload.
type SynthConfig struct {
	// Services and Metrics size the grid; BaselineLen is the baseline
	// series length per pair and Hops the number of production hops.
	Services, Metrics, BaselineLen, Hops int
	// Seed drives the generator; equal configs produce equal workloads.
	Seed int64
	// FaultService, when >= 0, is the index of the service whose
	// distribution shifts by several baseline standard deviations on every
	// metric starting at hop FaultAfter.
	FaultService int
	// FaultAfter is the first faulty hop index.
	FaultAfter int
	// ActiveServices, when positive and below Services, caps how many
	// services report per hop: each hop carries values only for a rotating
	// window of that many services (plus the fault service once faulty), the
	// sparse steady state a large fleet produces. Zero means every service
	// reports every hop.
	ActiveServices int
	// Warmup is the number of leading hops where every service reports
	// regardless of ActiveServices, so sliding windows fill before the
	// sparse steady state begins.
	Warmup int
}

// SynthWorkload is a deterministic synthetic stream: a baseline snapshot and
// a hop sequence over a services × metrics grid, with an optional
// distribution shift injected into one service mid-stream. The benchmarks
// use it as the 64-service × 8-metric reference workload; the conformance
// tests use smaller grids.
type SynthWorkload struct {
	Baseline    *metrics.Snapshot
	MetricNames []string
	Services    []string
	// Hops is the production stream: Hops[i] maps metric -> service ->
	// window value for hop i.
	Hops []map[string]map[string]float64
	cfg  SynthConfig
}

// NewSynth generates a workload. Pair (m, s) draws from a normal
// distribution with a mean that varies across the grid; the faulty service's
// mean shifts by +5 (five baseline standard deviations) from FaultAfter on.
func NewSynth(cfg SynthConfig) (*SynthWorkload, error) {
	if cfg.Services < 1 || cfg.Metrics < 1 || cfg.BaselineLen < 1 || cfg.Hops < 0 {
		return nil, fmt.Errorf("stream: synth wants positive grid sizes, got %+v", cfg)
	}
	if cfg.FaultService >= cfg.Services {
		return nil, fmt.Errorf("stream: synth fault service %d out of range (%d services)", cfg.FaultService, cfg.Services)
	}
	if cfg.ActiveServices < 0 || cfg.Warmup < 0 {
		return nil, fmt.Errorf("stream: synth wants non-negative activity shape, got %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	svcs := make([]string, cfg.Services)
	for i := range svcs {
		svcs[i] = fmt.Sprintf("svc-%02d", i)
	}
	ms := make([]string, cfg.Metrics)
	for i := range ms {
		ms[i] = fmt.Sprintf("metric-%d", i)
	}

	// The per-service mean offset wraps at 64 so the fault's +5 shift stays
	// several guard tolerances above every mean at any grid size (the guard
	// is relative); for grids up to 64 services the wrap is the identity.
	mean := func(mi, si int) float64 { return 10 + 3*float64(mi) + 0.5*float64(si%64) }
	base := metrics.NewSnapshot(ms, svcs)
	for mi, m := range ms {
		for si, svc := range svcs {
			series := make([]float64, cfg.BaselineLen)
			for i := range series {
				series[i] = mean(mi, si) + rng.NormFloat64()
			}
			base.Data[m][svc] = series
		}
	}

	// active reports whether service si reports on hop h. The RNG draw below
	// always runs for every pair — membership filters the hop map only — so
	// equal seeds produce equal values whatever the activity shape.
	active := func(h, si int) bool {
		a := cfg.ActiveServices
		if a <= 0 || a >= cfg.Services || h < cfg.Warmup {
			return true
		}
		if cfg.FaultService >= 0 && si == cfg.FaultService && h >= cfg.FaultAfter {
			return true
		}
		start := ((h - cfg.Warmup) * a) % cfg.Services
		return (si-start+cfg.Services)%cfg.Services < a
	}
	hops := make([]map[string]map[string]float64, cfg.Hops)
	for h := range hops {
		// Size each metric's map for the services that actually report: map
		// iteration walks capacity, not population, so a map sized for the
		// whole fleet would make every consumer's hop cost O(Services) even
		// in the sparse steady state the workload exists to model.
		hopCap := len(svcs)
		if cfg.ActiveServices > 0 && cfg.ActiveServices < cfg.Services && h >= cfg.Warmup {
			hopCap = cfg.ActiveServices + 1
		}
		hop := make(map[string]map[string]float64, len(ms))
		for mi, m := range ms {
			vals := make(map[string]float64, hopCap)
			for si, svc := range svcs {
				v := mean(mi, si) + rng.NormFloat64()
				if cfg.FaultService >= 0 && si == cfg.FaultService && h >= cfg.FaultAfter {
					v += 5
				}
				if active(h, si) {
					vals[svc] = v
				}
			}
			hop[m] = vals
		}
		hops[h] = hop
	}
	return &SynthWorkload{Baseline: base, MetricNames: ms, Services: svcs, Hops: hops, cfg: cfg}, nil
}

// Model wraps the workload's baseline in a minimal trained model: every
// service is a target and each causal set is the singleton {target} under
// every metric — the exact-attribution model, sufficient for exercising the
// vote phase and hysteresis end to end.
func (w *SynthWorkload) Model() *core.Model {
	sets := make(map[string]map[string][]string, len(w.MetricNames))
	for _, m := range w.MetricNames {
		byTarget := make(map[string][]string, len(w.Services))
		for _, svc := range w.Services {
			byTarget[svc] = []string{svc}
		}
		sets[m] = byTarget
	}
	targets := append([]string(nil), w.Services...)
	sort.Strings(targets)
	return &core.Model{
		Services:   append([]string(nil), w.Services...),
		Metrics:    append([]string(nil), w.MetricNames...),
		Targets:    targets,
		CausalSets: sets,
		Baseline:   w.Baseline,
		Alpha:      stats.DefaultAlpha,
	}
}
