package stream

import (
	"fmt"
	"math/rand"
	"sort"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/stats"
)

// SynthConfig sizes a synthetic streaming workload.
type SynthConfig struct {
	// Services and Metrics size the grid; BaselineLen is the baseline
	// series length per pair and Hops the number of production hops.
	Services, Metrics, BaselineLen, Hops int
	// Seed drives the generator; equal configs produce equal workloads.
	Seed int64
	// FaultService, when >= 0, is the index of the service whose
	// distribution shifts by several baseline standard deviations on every
	// metric starting at hop FaultAfter.
	FaultService int
	// FaultAfter is the first faulty hop index.
	FaultAfter int
}

// SynthWorkload is a deterministic synthetic stream: a baseline snapshot and
// a hop sequence over a services × metrics grid, with an optional
// distribution shift injected into one service mid-stream. The benchmarks
// use it as the 64-service × 8-metric reference workload; the conformance
// tests use smaller grids.
type SynthWorkload struct {
	Baseline    *metrics.Snapshot
	MetricNames []string
	Services    []string
	// Hops is the production stream: Hops[i] maps metric -> service ->
	// window value for hop i.
	Hops []map[string]map[string]float64
	cfg  SynthConfig
}

// NewSynth generates a workload. Pair (m, s) draws from a normal
// distribution with a mean that varies across the grid; the faulty service's
// mean shifts by +5 (five baseline standard deviations) from FaultAfter on.
func NewSynth(cfg SynthConfig) (*SynthWorkload, error) {
	if cfg.Services < 1 || cfg.Metrics < 1 || cfg.BaselineLen < 1 || cfg.Hops < 0 {
		return nil, fmt.Errorf("stream: synth wants positive grid sizes, got %+v", cfg)
	}
	if cfg.FaultService >= cfg.Services {
		return nil, fmt.Errorf("stream: synth fault service %d out of range (%d services)", cfg.FaultService, cfg.Services)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	svcs := make([]string, cfg.Services)
	for i := range svcs {
		svcs[i] = fmt.Sprintf("svc-%02d", i)
	}
	ms := make([]string, cfg.Metrics)
	for i := range ms {
		ms[i] = fmt.Sprintf("metric-%d", i)
	}

	mean := func(mi, si int) float64 { return 10 + 3*float64(mi) + 0.5*float64(si) }
	base := metrics.NewSnapshot(ms, svcs)
	for mi, m := range ms {
		for si, svc := range svcs {
			series := make([]float64, cfg.BaselineLen)
			for i := range series {
				series[i] = mean(mi, si) + rng.NormFloat64()
			}
			base.Data[m][svc] = series
		}
	}

	hops := make([]map[string]map[string]float64, cfg.Hops)
	for h := range hops {
		hop := make(map[string]map[string]float64, len(ms))
		for mi, m := range ms {
			vals := make(map[string]float64, len(svcs))
			for si, svc := range svcs {
				v := mean(mi, si) + rng.NormFloat64()
				if cfg.FaultService >= 0 && si == cfg.FaultService && h >= cfg.FaultAfter {
					v += 5
				}
				vals[svc] = v
			}
			hop[m] = vals
		}
		hops[h] = hop
	}
	return &SynthWorkload{Baseline: base, MetricNames: ms, Services: svcs, Hops: hops, cfg: cfg}, nil
}

// Model wraps the workload's baseline in a minimal trained model: every
// service is a target and each causal set is the singleton {target} under
// every metric — the exact-attribution model, sufficient for exercising the
// vote phase and hysteresis end to end.
func (w *SynthWorkload) Model() *core.Model {
	sets := make(map[string]map[string][]string, len(w.MetricNames))
	for _, m := range w.MetricNames {
		byTarget := make(map[string][]string, len(w.Services))
		for _, svc := range w.Services {
			byTarget[svc] = []string{svc}
		}
		sets[m] = byTarget
	}
	targets := append([]string(nil), w.Services...)
	sort.Strings(targets)
	return &core.Model{
		Services:   append([]string(nil), w.Services...),
		Metrics:    append([]string(nil), w.MetricNames...),
		Targets:    targets,
		CausalSets: sets,
		Baseline:   w.Baseline,
		Alpha:      stats.DefaultAlpha,
	}
}
