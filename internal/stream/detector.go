package stream

import (
	"context"
	"fmt"
	"math"
	"sort"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/stats"
)

// testMode selects the per-pair p-value path. The incremental fast paths
// cover the library defaults (raw KS and guarded KS); any other
// stats.TwoSampleTest falls back to materializing the arrival-order window,
// which is still correct (byte-identical to batch) but pays the test's own
// cost per hop.
type testMode int

const (
	modeGuardedKS testMode = iota // GuardedTest{Inner: KSTest} or nil Test
	modeRawKS                     // bare KSTest
	modeGeneric                   // anything else: materialize and delegate
)

// pairState is the per-(metric, service) streaming state.
type pairState struct {
	// base is the baseline series in snapshot order, the exact slice the
	// batch path would pass as the test's second sample.
	base []float64
	// ks is the incremental state; nil when the pair has no usable baseline
	// (empty series), in which case the pair can never be tested.
	ks *stats.IncrementalKS
	// seen records whether the pair ever received a production value. A
	// batch snapshot only contains pairs that were observed; an unseen pair
	// must be skipped (tolerant) or fail (strict) exactly as a missing
	// snapshot entry would.
	seen bool
}

// Detector maintains sliding-window anomaly detection over a fixed baseline:
// the streaming counterpart of core.Detect. Feed it production window-values
// with Observe/ObserveHop and ask for the current anomalous set with Detect;
// the answer is byte-identical to core.Detect on a snapshot holding each
// pair's last Window values.
//
// A Detector is not safe for concurrent use. Parallelism lives inside
// Detect (the per-service p-value fan-out, Config.Detect.Workers) and inside
// the Localizer's per-metric fan-out, both of which only read the states.
type Detector struct {
	baseline *metrics.Snapshot
	cfg      Config
	mode     testMode
	relTol   float64 // guard tolerance for modeGuardedKS
	test     stats.TwoSampleTest
	alpha    float64
	minSamp  int
	// states is metric -> service -> state, populated eagerly at
	// construction for every baseline-backed pair so each baseline series
	// is sorted exactly once, up front.
	states map[string]map[string]*pairState
}

// NewDetector builds a Detector over the given baseline snapshot. Every
// baseline series is copied and sorted once here; no per-hop call sorts
// anything afterwards.
func NewDetector(baseline *metrics.Snapshot, cfg Config) (*Detector, error) {
	if baseline == nil {
		return nil, fmt.Errorf("stream: nil baseline snapshot")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	d := &Detector{
		baseline: baseline,
		cfg:      cfg,
		test:     cfg.Detect.Test,
		alpha:    cfg.Detect.Alpha,
		minSamp:  cfg.Detect.MinSamples,
		states:   make(map[string]map[string]*pairState, len(baseline.Metrics)),
	}
	// Resolve defaults exactly as core.Detect does.
	if d.alpha == 0 && cfg.Detect.FDR == 0 {
		d.alpha = core.DefaultAlpha
	}
	if d.minSamp < 1 {
		d.minSamp = core.DefaultMinSamples
	}
	switch tt := cfg.Detect.Test.(type) {
	case nil:
		d.mode = modeGuardedKS
	case stats.KSTest:
		d.mode = modeRawKS
	case stats.GuardedTest:
		if _, ok := tt.Inner.(stats.KSTest); ok {
			d.mode = modeGuardedKS
			d.relTol = tt.RelTol
		} else {
			d.mode = modeGeneric
		}
	default:
		d.mode = modeGeneric
	}
	if d.mode == modeGuardedKS && d.relTol < 0 {
		return nil, fmt.Errorf("stats: negative relative tolerance %v", d.relTol)
	}

	for _, m := range baseline.Metrics {
		bySvc := make(map[string]*pairState, len(baseline.Services))
		for _, svc := range baseline.Services {
			series, ok := baseline.SeriesOK(m, svc)
			if !ok {
				continue
			}
			st := &pairState{base: series}
			if len(series) > 0 {
				ks, err := stats.NewIncrementalKS(series, cfg.Window)
				if err != nil {
					return nil, fmt.Errorf("stream: baseline %s/%s: %w", m, svc, err)
				}
				st.ks = ks
			}
			bySvc[svc] = st
		}
		d.states[m] = bySvc
	}
	return d, nil
}

// Window returns the configured sliding-window length.
func (d *Detector) Window() int { return d.cfg.Window }

// Observe feeds one production window-value for a (metric, service) pair.
// The metric and service must be declared in the baseline universe. A pair
// the baseline does not cover is a silent no-op in tolerant mode (the batch
// path would skip it) and an error in strict mode (the batch path would fail
// it at Detect time; failing at ingest surfaces the problem earlier).
func (d *Detector) Observe(metric, svc string, v float64) error {
	bySvc, ok := d.states[metric]
	if !ok {
		return fmt.Errorf("stream: observe: metric %q not in baseline", metric)
	}
	st, ok := bySvc[svc]
	if !ok || st.ks == nil {
		if d.cfg.Detect.Tolerant {
			return nil
		}
		return fmt.Errorf("stream: observe: baseline has no usable series for metric %q service %q", metric, svc)
	}
	st.ks.Push(v)
	st.seen = true
	return nil
}

// ObserveHop feeds one hop's window-values for every (metric, service) pair
// at once: hop maps metric -> service -> value. Pairs are ingested in sorted
// order so error reporting is deterministic; ingestion order across distinct
// pairs does not affect any state.
func (d *Detector) ObserveHop(hop map[string]map[string]float64) error {
	ms := make([]string, 0, len(hop))
	for m := range hop {
		ms = append(ms, m)
	}
	sort.Strings(ms)
	for _, m := range ms {
		svcs := make([]string, 0, len(hop[m]))
		for svc := range hop[m] {
			svcs = append(svcs, svc)
		}
		sort.Strings(svcs)
		for _, svc := range svcs {
			if err := d.Observe(m, svc, hop[m][svc]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Materialize builds the batch production snapshot a one-shot collector
// would have produced from the current window contents: per seen pair, the
// retained arrival-order values (non-finite entries included). It exists for
// the conformance suite — stream.Detect(d, m) must equal
// core.Detect(cfg, baseline, d.Materialize(), m) — and for debugging.
func (d *Detector) Materialize() *metrics.Snapshot {
	out := metrics.NewSnapshot(d.baseline.Metrics, d.baseline.Services)
	for _, m := range d.baseline.Metrics {
		for _, svc := range d.baseline.Services {
			st := d.states[m][svc]
			if st == nil || !st.seen {
				continue
			}
			out.Data[m][svc] = st.ks.Window()
		}
	}
	return out
}

// Detect computes the current anomalous set A(metric) over the sliding
// windows, mirroring core.Detect stage by stage: family assembly in baseline
// service order with the same strict/tolerant skip rules and min-sample
// guard, p-values fanned across Config.Detect.Workers via the same ordered
// pool, and the alpha-vs-FDR family decision made once by core.DecideFamily.
func (d *Detector) Detect(ctx context.Context, metric string) (*core.Detection, error) {
	return d.detect(ctx, metric, d.cfg.Detect.Workers)
}

// detect is Detect with an explicit worker count, so the Localizer can force
// the inner fan-out serial while it parallelizes across metrics (no nested
// pools — the same discipline core.Localizer applies).
func (d *Detector) detect(ctx context.Context, metric string, workers int) (*core.Detection, error) {
	bySvc, ok := d.states[metric]
	if !ok {
		if d.cfg.Detect.Tolerant {
			// Batch: production.SeriesOK misses every pair -> empty family.
			return &core.Detection{Anomalous: []string{}, Tested: 0}, nil
		}
		return nil, fmt.Errorf("metrics: snapshot has no metric %q", metric)
	}

	// Family assembly, serial, in baseline service order — identical skip
	// decisions to core.Detect's loop over baseline.Services.
	var family []*pairState
	var names []string
	for _, svc := range d.baseline.Services {
		st := bySvc[svc]
		if d.cfg.Detect.Tolerant {
			if st == nil || st.ks == nil || !st.seen {
				continue
			}
			if len(st.base) < d.minSamp || st.ks.Len() < d.minSamp {
				continue
			}
		} else {
			if st == nil {
				return nil, fmt.Errorf("metrics: snapshot metric %q has no service %q", metric, svc)
			}
			if st.ks == nil || !st.seen {
				return nil, fmt.Errorf("stream: no production window for metric %q service %q", metric, svc)
			}
		}
		family = append(family, st)
		names = append(names, svc)
	}

	if workers < 1 {
		workers = 1
	}
	pvals, err := parallel.Map(ctx, workers, len(family), func(_ context.Context, i int) (float64, error) {
		p, err := d.pairPValue(family[i])
		if err != nil {
			return 0, fmt.Errorf("stream: anomaly test %s on %s: %w", metric, names[i], err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}

	shifted, err := core.DecideFamily(pvals, d.alpha, d.cfg.Detect.FDR)
	if err != nil {
		return nil, fmt.Errorf("stream: anomalies: %w", err)
	}
	anom := make([]string, 0, len(family))
	for i, svc := range names {
		if shifted[i] {
			anom = append(anom, svc)
		}
	}
	sort.Strings(anom)
	return &core.Detection{Anomalous: anom, Tested: len(family)}, nil
}

// pairPValue computes one pair's p-value on the fast incremental path when
// the configured test is (guarded) KS, or by materializing the window for
// any other test. The materialized path applies the same finite-values
// filter the tolerant batch path does.
func (d *Detector) pairPValue(st *pairState) (float64, error) {
	switch d.mode {
	case modeGuardedKS:
		return st.ks.GuardedPValue(d.relTol)
	case modeRawKS:
		return st.ks.PValue()
	default:
		prod := st.ks.Window()
		if d.cfg.Detect.Tolerant {
			prod = finiteValues(prod)
		}
		return d.test.PValue(prod, st.base)
	}
}

// DetectAll runs Detect for every baseline metric, fanning the metrics
// across Config.Detect.Workers with the per-metric family kept serial (the
// localizer's parallelism shape). The result is aligned with
// baseline.Metrics by index.
func (d *Detector) DetectAll(ctx context.Context) ([]*core.Detection, error) {
	workers := d.cfg.Detect.Workers
	if workers < 1 {
		workers = 1
	}
	return parallel.Map(ctx, workers, len(d.baseline.Metrics), func(ctx context.Context, i int) (*core.Detection, error) {
		return d.detect(ctx, d.baseline.Metrics[i], 1)
	})
}

// finiteValues filters non-finite entries, mirroring the unexported helper
// the tolerant batch path uses (including its no-alloc clean fast path, so
// a clean window takes the same code shape).
func finiteValues(s []float64) []float64 {
	clean := true
	for _, v := range s {
		if !isFinite(v) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	out := make([]float64, 0, len(s))
	for _, v := range s {
		if isFinite(v) {
			out = append(out, v)
		}
	}
	return out
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
