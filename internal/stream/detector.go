package stream

import (
	"context"
	"fmt"
	"math"
	"sort"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/stats"
)

// testMode selects the per-pair p-value path. The incremental fast paths
// cover the library defaults (raw KS and guarded KS); any other
// stats.TwoSampleTest falls back to materializing the arrival-order window,
// which is still correct (byte-identical to batch) but pays the test's own
// cost per hop.
type testMode int

const (
	modeGuardedKS testMode = iota // GuardedTest{Inner: KSTest} or nil Test
	modeRawKS                     // bare KSTest
	modeGeneric                   // anything else: materialize and delegate
)

// pairState is the per-(metric, service) streaming state.
type pairState struct {
	// base is the baseline series in snapshot order, the exact slice the
	// batch path would pass as the test's second sample. Nil in sketch mode,
	// where the incremental state carries the baseline summary instead.
	base []float64
	// baseLen is the baseline series length — len(base) in exact mode, the
	// original length in sketch mode.
	baseLen int
	// ks is the incremental state; nil when the pair has no usable baseline
	// (empty series), in which case the pair can never be tested.
	ks *stats.IncrementalKS
	// seen records whether the pair ever received a production value. A
	// batch snapshot only contains pairs that were observed; an unseen pair
	// must be skipped (tolerant) or fail (strict) exactly as a missing
	// snapshot entry would.
	seen bool

	// Incremental-detection bookkeeping (fast path only). svc, mi and shard
	// locate the pair; dirty marks it for the next flush; testable, pval and
	// anom cache its contribution to the per-metric detection, valid since
	// the last flush. nextTestable and nextPval stage the recomputation: the
	// parallel phase writes them, the serial merge applies them.
	svc          string
	mi           int
	shard        int
	dirty        bool
	testable     bool
	anom         bool
	pval         float64
	nextTestable bool
	nextPval     float64
}

// metricAgg is one metric's cached detection aggregate on the fast path: the
// current family size and the sorted anomalous set, maintained incrementally
// as pair states flip.
type metricAgg struct {
	tested int
	anom   []string // sorted; never handed out directly
}

// insertAnom adds svc to the sorted anomalous set.
func (a *metricAgg) insertAnom(svc string) {
	i := sort.SearchStrings(a.anom, svc)
	a.anom = append(a.anom, "")
	copy(a.anom[i+1:], a.anom[i:])
	a.anom[i] = svc
}

// removeAnom drops svc from the sorted anomalous set.
func (a *metricAgg) removeAnom(svc string) {
	i := sort.SearchStrings(a.anom, svc)
	if i < len(a.anom) && a.anom[i] == svc {
		a.anom = append(a.anom[:i], a.anom[i+1:]...)
	}
}

// Detector maintains sliding-window anomaly detection over a fixed baseline:
// the streaming counterpart of core.Detect. Feed it production window-values
// with Observe/ObserveHop and ask for the current anomalous set with Detect;
// the answer is byte-identical to core.Detect on a snapshot holding each
// pair's last Window values.
//
// In tolerant mode with the (guarded) KS test — the Localizer's
// configuration — detection is incremental end to end: pair states are
// hash-sharded, Observe only marks a pair dirty, and the flush before the
// next Detect recomputes exactly the dirty pairs (fanned across the worker
// pool by shard) before merging their deltas into per-metric aggregates. A
// hop that touches T pairs costs O(T) test evaluations regardless of how
// many services exist. Strict mode and generic tests take the full-scan
// path, which remains correct at any scale but pays O(S) per metric per
// Detect.
//
// A Detector is not safe for concurrent use. Parallelism lives inside
// Detect (the shard/p-value fan-out, WithWorkers) and inside the Localizer's
// per-metric fan-out, which only reads the flushed states.
type Detector struct {
	baseline *metrics.Snapshot
	window   int
	mode     testMode
	relTol   float64 // guard tolerance for modeGuardedKS
	test     stats.TwoSampleTest
	alpha    float64
	fdr      float64
	minSamp  int
	tolerant bool
	workers  int
	// states is metric -> service -> state, populated eagerly at
	// construction for every baseline-backed pair so each baseline series
	// is sorted (or sketched) exactly once, up front.
	states map[string]map[string]*pairState

	// Fast-path structures, built only when fast is set (tolerant + KS).
	fast        bool
	shards      int
	dirty       [][]*pairState // per shard: pairs awaiting recomputation
	byMetric    [][]*pairState // tracked pairs per metric, baseline.Services order
	metricIndex map[string]int // metric name -> index into byMetric/aggs
	aggs        []metricAgg
	fdrTouched  []bool    // metrics needing a family re-decision (FDR mode)
	pvalBuf     []float64 // scratch for the FDR family decision
}

// NewDetector builds a Detector over the given baseline snapshot. Every
// baseline series is copied and sorted once here; no per-hop call sorts
// anything afterwards. The zero option set means: DefaultWindow,
// guarded-KS test, core.DefaultAlpha, strict completeness, serial execution.
func NewDetector(baseline *metrics.Snapshot, opts ...Option) (*Detector, error) {
	s, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	return newDetector(baseline, s)
}

// newDetector builds a Detector from resolved settings (shared with
// newLocalizer, which applies the option list once for the whole stack).
func newDetector(baseline *metrics.Snapshot, s settings) (*Detector, error) {
	if baseline == nil {
		return nil, fmt.Errorf("stream: nil baseline snapshot")
	}
	d := &Detector{
		baseline: baseline,
		window:   s.window,
		test:     s.test,
		alpha:    s.alpha,
		fdr:      s.fdr,
		minSamp:  s.minSamples,
		tolerant: s.tolerant,
		workers:  s.workers,
		shards:   s.shards,
		states:   make(map[string]map[string]*pairState, len(baseline.Metrics)),
	}
	// Resolve defaults exactly as core.Detect does.
	if d.alpha == 0 && d.fdr == 0 {
		d.alpha = core.DefaultAlpha
	}
	if d.minSamp < 1 {
		d.minSamp = core.DefaultMinSamples
	}
	switch tt := s.test.(type) {
	case nil:
		d.mode = modeGuardedKS
	case stats.KSTest:
		d.mode = modeRawKS
	case stats.GuardedTest:
		if _, ok := tt.Inner.(stats.KSTest); ok {
			d.mode = modeGuardedKS
			d.relTol = tt.RelTol
		} else {
			d.mode = modeGeneric
		}
	default:
		d.mode = modeGeneric
	}
	if d.mode == modeGuardedKS && d.relTol < 0 {
		return nil, fmt.Errorf("stats: negative relative tolerance %v", d.relTol)
	}
	if s.sketchEps > 0 && d.mode == modeGeneric {
		return nil, fmt.Errorf("stream: sketched baselines require the (guarded) KS test")
	}
	d.fast = d.tolerant && d.mode != modeGeneric

	if d.fast {
		d.dirty = make([][]*pairState, d.shards)
		d.byMetric = make([][]*pairState, len(baseline.Metrics))
		d.metricIndex = make(map[string]int, len(baseline.Metrics))
		d.aggs = make([]metricAgg, len(baseline.Metrics))
		d.fdrTouched = make([]bool, len(baseline.Metrics))
	}
	for mi, m := range baseline.Metrics {
		bySvc := make(map[string]*pairState, len(baseline.Services))
		for _, svc := range baseline.Services {
			series, ok := baseline.SeriesOK(m, svc)
			if !ok {
				continue
			}
			st := &pairState{base: series, baseLen: len(series)}
			if len(series) > 0 {
				var ks *stats.IncrementalKS
				var err error
				if s.sketchEps > 0 {
					ks, err = stats.NewIncrementalKSSketch(series, s.window, s.sketchEps)
					st.base = nil
				} else {
					ks, err = stats.NewIncrementalKS(series, s.window)
				}
				if err != nil {
					return nil, fmt.Errorf("stream: baseline %s/%s: %w", m, svc, err)
				}
				st.ks = ks
			}
			bySvc[svc] = st
			if d.fast {
				st.svc = svc
				st.mi = mi
				st.shard = pairShard(m, svc, d.shards)
				if st.ks != nil {
					d.byMetric[mi] = append(d.byMetric[mi], st)
				}
			}
		}
		d.states[m] = bySvc
		if d.fast {
			d.metricIndex[m] = mi
		}
	}
	return d, nil
}

// pairShard assigns a (metric, service) pair to a shard by FNV-1a over the
// NUL-separated pair key. Purely a load-spreading function: any assignment
// yields the same detection output.
func pairShard(metric, svc string, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(metric); i++ {
		h ^= uint64(metric[i])
		h *= prime64
	}
	h *= prime64 // NUL separator: ^= 0 is the identity
	for i := 0; i < len(svc); i++ {
		h ^= uint64(svc[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// Window returns the configured sliding-window length.
func (d *Detector) Window() int { return d.window }

// Observe feeds one production window-value for a (metric, service) pair.
// The metric and service must be declared in the baseline universe. A pair
// the baseline does not cover is a silent no-op in tolerant mode (the batch
// path would skip it) and an error in strict mode (the batch path would fail
// it at Detect time; failing at ingest surfaces the problem earlier).
func (d *Detector) Observe(metric, svc string, v float64) error {
	bySvc, ok := d.states[metric]
	if !ok {
		return fmt.Errorf("stream: observe: metric %q not in baseline", metric)
	}
	st, ok := bySvc[svc]
	if !ok || st.ks == nil {
		if d.tolerant {
			return nil
		}
		return fmt.Errorf("stream: observe: baseline has no usable series for metric %q service %q", metric, svc)
	}
	st.ks.Push(v)
	st.seen = true
	d.touch(st)
	return nil
}

// touch marks a pair for recomputation at the next flush.
func (d *Detector) touch(st *pairState) {
	if !d.fast || st.dirty {
		return
	}
	st.dirty = true
	d.dirty[st.shard] = append(d.dirty[st.shard], st)
}

// flush brings the fast path's cached detection state current: every pair
// whose window changed since the last flush is recomputed, with the dirty
// shards fanned across the worker pool (each pair lives in exactly one
// shard, so the staged writes are disjoint) and the deltas merged serially
// into the per-metric aggregates. A no-op outside the fast path or when
// nothing changed.
func (d *Detector) flush(ctx context.Context, workers int) error {
	if !d.fast {
		return nil
	}
	var touched []int
	for si, pairs := range d.dirty {
		if len(pairs) > 0 {
			touched = append(touched, si)
		}
	}
	if len(touched) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if _, err := parallel.Map(ctx, workers, len(touched), func(_ context.Context, i int) (struct{}, error) {
		for _, st := range d.dirty[touched[i]] {
			st.nextTestable = st.seen && st.baseLen >= d.minSamp && st.ks.Len() >= d.minSamp
			st.nextPval = 0
			if st.nextTestable {
				p, err := d.pairPValue(st)
				if err != nil {
					return struct{}{}, fmt.Errorf("stream: anomaly test %s on %s: %w", d.baseline.Metrics[st.mi], st.svc, err)
				}
				st.nextPval = p
			}
		}
		return struct{}{}, nil
	}); err != nil {
		return err
	}

	for _, si := range touched {
		for _, st := range d.dirty[si] {
			agg := &d.aggs[st.mi]
			if st.testable {
				agg.tested--
				if d.fdr == 0 && st.anom {
					agg.removeAnom(st.svc)
				}
			}
			st.testable, st.pval = st.nextTestable, st.nextPval
			st.anom = false
			if st.testable {
				agg.tested++
				if d.fdr == 0 {
					st.anom = st.pval < d.alpha
					if st.anom {
						agg.insertAnom(st.svc)
					}
				}
			}
			if d.fdr > 0 {
				d.fdrTouched[st.mi] = true
			}
			st.dirty = false
		}
		d.dirty[si] = d.dirty[si][:0]
	}

	// Benjamini-Hochberg couples the whole family: any change within a
	// metric re-decides that metric's family over the cached p-values (a
	// float scan, not a re-test).
	if d.fdr > 0 {
		for mi := range d.fdrTouched {
			if !d.fdrTouched[mi] {
				continue
			}
			d.fdrTouched[mi] = false
			if err := d.redecide(mi); err != nil {
				return err
			}
		}
	}
	return nil
}

// redecide reruns the family decision for one metric from the cached
// p-values, rebuilding its anomalous set.
func (d *Detector) redecide(mi int) error {
	pvals := d.pvalBuf[:0]
	for _, st := range d.byMetric[mi] {
		if st.testable {
			pvals = append(pvals, st.pval)
		}
	}
	d.pvalBuf = pvals
	shifted, err := core.DecideFamily(pvals, d.alpha, d.fdr)
	if err != nil {
		return fmt.Errorf("stream: anomalies: %w", err)
	}
	agg := &d.aggs[mi]
	agg.anom = agg.anom[:0]
	j := 0
	for _, st := range d.byMetric[mi] {
		if !st.testable {
			st.anom = false
			continue
		}
		st.anom = shifted[j]
		j++
		if st.anom {
			agg.anom = append(agg.anom, st.svc)
		}
	}
	sort.Strings(agg.anom)
	return nil
}

// ObserveHop feeds one hop's window-values for every (metric, service) pair
// at once: hop maps metric -> service -> value. Pairs are ingested in sorted
// order so error reporting is deterministic; ingestion order across distinct
// pairs does not affect any state.
func (d *Detector) ObserveHop(hop map[string]map[string]float64) error {
	ms := make([]string, 0, len(hop))
	for m := range hop {
		ms = append(ms, m)
	}
	sort.Strings(ms)
	for _, m := range ms {
		svcs := make([]string, 0, len(hop[m]))
		for svc := range hop[m] {
			svcs = append(svcs, svc)
		}
		sort.Strings(svcs)
		for _, svc := range svcs {
			if err := d.Observe(m, svc, hop[m][svc]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Materialize builds the batch production snapshot a one-shot collector
// would have produced from the current window contents: per seen pair, the
// retained arrival-order values (non-finite entries included). It exists for
// the conformance suite — stream.Detect(d, m) must equal
// core.Detect(cfg, baseline, d.Materialize(), m) — and for debugging.
func (d *Detector) Materialize() *metrics.Snapshot {
	out := metrics.NewSnapshot(d.baseline.Metrics, d.baseline.Services)
	for _, m := range d.baseline.Metrics {
		for _, svc := range d.baseline.Services {
			st := d.states[m][svc]
			if st == nil || !st.seen {
				continue
			}
			out.Data[m][svc] = st.ks.Window()
		}
	}
	return out
}

// Detect computes the current anomalous set A(metric) over the sliding
// windows, mirroring core.Detect stage by stage: family assembly in baseline
// service order with the same strict/tolerant skip rules and min-sample
// guard, and the alpha-vs-FDR family decision made once by core.DecideFamily.
// On the fast path the answer is assembled from the incrementally maintained
// aggregates after a flush of the pairs the last hops touched.
func (d *Detector) Detect(ctx context.Context, metric string) (*core.Detection, error) {
	if err := d.flush(ctx, d.workers); err != nil {
		return nil, err
	}
	return d.detect(ctx, metric, d.workers)
}

// detect is Detect without the flush and with an explicit worker count, so
// the Localizer can flush once per hop and then fan read-only per-metric
// detections across its pool (no nested pools — the same discipline
// core.Localizer applies). The fast path must have been flushed.
func (d *Detector) detect(ctx context.Context, metric string, workers int) (*core.Detection, error) {
	if d.fast {
		mi, ok := d.metricIndex[metric]
		if !ok {
			// Batch: production.SeriesOK misses every pair -> empty family.
			return &core.Detection{Anomalous: []string{}, Tested: 0}, nil
		}
		agg := &d.aggs[mi]
		return &core.Detection{
			Anomalous: append(make([]string, 0, len(agg.anom)), agg.anom...),
			Tested:    agg.tested,
		}, nil
	}

	bySvc, ok := d.states[metric]
	if !ok {
		if d.tolerant {
			return &core.Detection{Anomalous: []string{}, Tested: 0}, nil
		}
		return nil, fmt.Errorf("metrics: snapshot has no metric %q", metric)
	}

	// Family assembly, serial, in baseline service order — identical skip
	// decisions to core.Detect's loop over baseline.Services.
	var family []*pairState
	var names []string
	for _, svc := range d.baseline.Services {
		st := bySvc[svc]
		if d.tolerant {
			if st == nil || st.ks == nil || !st.seen {
				continue
			}
			if st.baseLen < d.minSamp || st.ks.Len() < d.minSamp {
				continue
			}
		} else {
			if st == nil {
				return nil, fmt.Errorf("metrics: snapshot metric %q has no service %q", metric, svc)
			}
			if st.ks == nil || !st.seen {
				return nil, fmt.Errorf("stream: no production window for metric %q service %q", metric, svc)
			}
		}
		family = append(family, st)
		names = append(names, svc)
	}

	if workers < 1 {
		workers = 1
	}
	pvals, err := parallel.Map(ctx, workers, len(family), func(_ context.Context, i int) (float64, error) {
		p, err := d.pairPValue(family[i])
		if err != nil {
			return 0, fmt.Errorf("stream: anomaly test %s on %s: %w", metric, names[i], err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}

	shifted, err := core.DecideFamily(pvals, d.alpha, d.fdr)
	if err != nil {
		return nil, fmt.Errorf("stream: anomalies: %w", err)
	}
	anom := make([]string, 0, len(family))
	for i, svc := range names {
		if shifted[i] {
			anom = append(anom, svc)
		}
	}
	sort.Strings(anom)
	return &core.Detection{Anomalous: anom, Tested: len(family)}, nil
}

// pairPValue computes one pair's p-value on the fast incremental path when
// the configured test is (guarded) KS, or by materializing the window for
// any other test. The materialized path applies the same finite-values
// filter the tolerant batch path does.
func (d *Detector) pairPValue(st *pairState) (float64, error) {
	switch d.mode {
	case modeGuardedKS:
		return st.ks.GuardedPValue(d.relTol)
	case modeRawKS:
		return st.ks.PValue()
	default:
		prod := st.ks.Window()
		if d.tolerant {
			prod = finiteValues(prod)
		}
		return d.test.PValue(prod, st.base)
	}
}

// DetectAll runs Detect for every baseline metric after a single flush,
// fanning the metrics across the worker pool with the per-metric work kept
// serial (the localizer's parallelism shape). The result is aligned with
// baseline.Metrics by index.
func (d *Detector) DetectAll(ctx context.Context) ([]*core.Detection, error) {
	workers := d.workers
	if workers < 1 {
		workers = 1
	}
	if err := d.flush(ctx, workers); err != nil {
		return nil, err
	}
	return parallel.Map(ctx, workers, len(d.baseline.Metrics), func(ctx context.Context, i int) (*core.Detection, error) {
		return d.detect(ctx, d.baseline.Metrics[i], 1)
	})
}

// finiteValues filters non-finite entries, mirroring the unexported helper
// the tolerant batch path uses (including its no-alloc clean fast path, so
// a clean window takes the same code shape).
func finiteValues(s []float64) []float64 {
	clean := true
	for _, v := range s {
		if !isFinite(v) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	out := make([]float64, 0, len(s))
	for _, v := range s {
		if isFinite(v) {
			out = append(out, v)
		}
	}
	return out
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
