package stream_test

import (
	"context"
	"fmt"

	"causalfl/internal/metrics"
	"causalfl/internal/stream"
)

// ExampleDetector feeds a two-service stream into the incremental detector:
// svc-b's latency metric drifts away from baseline mid-stream, and the
// per-hop anomalous set flips from empty to {svc-b} without ever recomputing
// the baseline side.
func ExampleDetector() {
	baseline := metrics.NewSnapshot([]string{"latency"}, []string{"svc-a", "svc-b"})
	baseline.Data["latency"]["svc-a"] = []float64{10, 11, 10, 12, 11, 10, 11, 12}
	baseline.Data["latency"]["svc-b"] = []float64{20, 21, 20, 22, 21, 20, 21, 22}

	det, err := stream.NewDetector(baseline,
		stream.WithWindow(6),
		stream.WithAlpha(0.05),
		stream.WithTolerant(true),
	)
	if err != nil {
		fmt.Println(err)
		return
	}

	healthy := map[string]map[string]float64{"latency": {"svc-a": 11, "svc-b": 21}}
	degraded := map[string]map[string]float64{"latency": {"svc-a": 11, "svc-b": 90}}
	ctx := context.Background()
	for hop := 0; hop < 12; hop++ {
		obs := healthy
		if hop >= 6 {
			obs = degraded
		}
		if err := det.ObserveHop(obs); err != nil {
			fmt.Println(err)
			return
		}
		d, err := det.Detect(ctx, "latency")
		if err != nil {
			fmt.Println(err)
			return
		}
		if hop == 5 || hop == 11 {
			fmt.Printf("hop %d: anomalous=%v tested=%d\n", hop, d.Anomalous, d.Tested)
		}
	}
	// Output:
	// hop 5: anomalous=[] tested=2
	// hop 11: anomalous=[svc-b] tested=2
}
