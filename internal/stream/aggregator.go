package stream

import (
	"fmt"
	"sort"
	"time"

	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

// Aggregator turns per-service telemetry.Sample ticks into completed hopping
// windows incrementally. It is the streaming counterpart of
// telemetry.HoppingWindows: feed it samples as they are drained and it emits
// exactly the windows the batch function would emit over the materialized
// prefix, in the same order, with bit-identical sums (counter deltas are
// added in the same ascending-timestamp order).
//
// Like the batch function, the window grid is aligned per service to the
// start of its first sample's interval, and the sampling interval is learned
// from the first two stamps — so an Aggregator emits nothing until a service
// has delivered two samples.
type Aggregator struct {
	length, hop time.Duration
	svcs        map[string]*svcWindows
}

// svcWindows is one service's buffered tail and window cursor.
type svcWindows struct {
	// buf holds the samples that can still contribute to an unemitted
	// window, ascending by At.
	buf []telemetry.Sample
	// interval is the learned sampling cadence; zero until two samples
	// arrived.
	interval sim.Time
	// next is the start of the next window to emit.
	next sim.Time
	// expected is int(length / interval), the batch coverage denominator.
	expected int
}

// NewAggregator builds an aggregator with the given window geometry; zero
// values select the paper defaults (60s windows every 30s). The validation
// mirrors telemetry.HoppingWindows.
func NewAggregator(length, hop time.Duration) (*Aggregator, error) {
	if length == 0 && hop == 0 {
		length, hop = telemetry.DefaultWindowLength, telemetry.DefaultWindowHop
	}
	if length <= 0 || hop <= 0 {
		return nil, fmt.Errorf("telemetry: window length and hop must be positive (length=%v hop=%v)", length, hop)
	}
	if hop > length {
		return nil, fmt.Errorf("telemetry: hop %v larger than window %v would drop samples", hop, length)
	}
	return &Aggregator{length: length, hop: hop, svcs: make(map[string]*svcWindows)}, nil
}

// Length returns the window length.
func (a *Aggregator) Length() time.Duration { return a.length }

// Hop returns the hop interval.
func (a *Aggregator) Hop() time.Duration { return a.hop }

// Ingest feeds one service's next samples (ascending At, later than anything
// previously ingested for that service) and returns the windows completed by
// them, in start order.
func (a *Aggregator) Ingest(svc string, samples []telemetry.Sample) ([]telemetry.Window, error) {
	sw := a.svcs[svc]
	if sw == nil {
		sw = &svcWindows{}
		a.svcs[svc] = sw
	}
	for _, smp := range samples {
		if n := len(sw.buf); n > 0 && smp.At <= sw.buf[n-1].At {
			return nil, fmt.Errorf("stream: out-of-order sample for %s: %v after %v", svc, smp.At, sw.buf[n-1].At)
		}
		sw.buf = append(sw.buf, smp)
	}
	if sw.interval == 0 {
		if len(sw.buf) < 2 {
			return nil, nil
		}
		// Same cadence recovery as the batch function: interval from the
		// first two stamps, origin one interval before the first.
		sw.interval = sw.buf[1].At - sw.buf[0].At
		if sw.interval <= 0 {
			return nil, fmt.Errorf("telemetry: non-increasing sample timestamps")
		}
		sw.next = sw.buf[0].At - sw.interval
		sw.expected = int(a.length / time.Duration(sw.interval))
	}

	var out []telemetry.Window
	end := sw.buf[len(sw.buf)-1].At
	length := sim.Time(a.length)
	for sw.next+length <= end {
		w := telemetry.Window{Start: sw.next, End: sw.next + length, Expected: sw.expected}
		for _, smp := range sw.buf {
			if smp.Missing {
				continue
			}
			span := smp.Span
			if span < 1 {
				span = 1
			}
			// The batch inclusion rule verbatim: the sample's covered
			// stretch (At-span*interval, At] must lie inside the window.
			if smp.At-sim.Time(span)*sw.interval >= w.Start && smp.At <= w.End {
				w.Sum = w.Sum.Add(smp.Deltas)
				w.Covered += span
			}
		}
		if w.Covered > w.Expected {
			w.Covered = w.Expected
		}
		out = append(out, w)
		sw.next += sim.Time(a.hop)
	}

	// Trim: a sample stamped at or before the next window start can never
	// satisfy the inclusion rule again (its covered stretch ends at its
	// stamp, which is <= every future window start).
	keep := 0
	for keep < len(sw.buf) && sw.buf[keep].At <= sw.next {
		keep++
	}
	if keep > 0 {
		sw.buf = append(sw.buf[:0], sw.buf[keep:]...)
	}
	return out, nil
}

// IngestTick feeds one drained tick for every service (service -> samples)
// and returns the completed windows per service. Services are processed in
// sorted order for deterministic error reporting; per-service results are
// independent.
func (a *Aggregator) IngestTick(tick map[string][]telemetry.Sample) (map[string][]telemetry.Window, error) {
	svcs := make([]string, 0, len(tick))
	for svc := range tick {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	out := make(map[string][]telemetry.Window, len(tick))
	for _, svc := range svcs {
		ws, err := a.Ingest(svc, tick[svc])
		if err != nil {
			return nil, err
		}
		if len(ws) > 0 {
			out[svc] = ws
		}
	}
	return out, nil
}
