package stream

import (
	"fmt"
	"sort"
	"time"

	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

// SvcAggStats is one service's ingest accounting: every sample handed to the
// aggregator ends up in exactly one of Accepted, OutOfOrder or (later) Dead.
type SvcAggStats struct {
	// Accepted counts samples buffered for window assembly.
	Accepted uint64 `json:"accepted"`
	// OutOfOrder counts samples rejected because their stamp was not
	// strictly later than everything previously accepted for the service.
	// A well-behaved producer (the Sampler drains in ascending tick order)
	// never trips this; a misbehaving or replaying one does, and the
	// rejection is counted instead of killing the pipeline.
	OutOfOrder uint64 `json:"out_of_order"`
	// Dead counts non-gap samples that were trimmed without contributing
	// to any emitted window: stale arrivals behind the window cursor, and
	// recovery samples whose gap span straddles a window boundary (their
	// mass cannot be split, so the affected windows report under-coverage
	// instead). These were silently discarded before accounting existed.
	Dead uint64 `json:"dead"`
	// Windows counts completed windows emitted for the service.
	Windows uint64 `json:"windows"`
}

// add accumulates o into s.
func (s *SvcAggStats) add(o SvcAggStats) {
	s.Accepted += o.Accepted
	s.OutOfOrder += o.OutOfOrder
	s.Dead += o.Dead
	s.Windows += o.Windows
}

// AggStats is the aggregator's ingest accounting: totals across services plus
// the per-service breakdown.
type AggStats struct {
	SvcAggStats
	// PerService breaks the totals down by service name.
	PerService map[string]SvcAggStats `json:"per_service,omitempty"`
}

// Aggregator turns per-service telemetry.Sample ticks into completed hopping
// windows incrementally. It is the streaming counterpart of
// telemetry.HoppingWindows: feed it samples as they are drained and it emits
// exactly the windows the batch function would emit over the materialized
// prefix, in the same order, with bit-identical sums (counter deltas are
// added in the same ascending-timestamp order).
//
// Like the batch function, the window grid is aligned per service to the
// start of its first sample's interval, and the sampling interval is learned
// from the first two stamps — so an Aggregator emits nothing until a service
// has delivered two samples.
//
// Robustness contract: a misbehaving producer cannot corrupt emitted windows
// or kill the stream. Samples that arrive out of order are dropped and
// counted (SvcAggStats.OutOfOrder) — the window cursor only moves forward,
// so a replayed or time-warped sample can never resurrect an already-emitted
// window. Samples that arrive too late to fall into any future window are
// buffered, trimmed, and counted as dead (SvcAggStats.Dead). Stats exposes
// the accounting.
type Aggregator struct {
	length, hop time.Duration
	svcs        map[string]*svcWindows
}

// bufSample is one buffered sample plus its contribution flag, which feeds
// the dead-sample accounting at trim time.
type bufSample struct {
	s telemetry.Sample
	// used marks that the sample's deltas were summed into at least one
	// emitted window. A sample trimmed with used still false carried data
	// that reached no window.
	used bool
}

// svcWindows is one service's buffered tail and window cursor.
type svcWindows struct {
	// buf holds the samples that can still contribute to an unemitted
	// window, ascending by At.
	buf []bufSample
	// interval is the learned sampling cadence; zero until two samples
	// arrived.
	interval sim.Time
	// next is the start of the next window to emit.
	next sim.Time
	// expected is int(length / interval), the batch coverage denominator.
	expected int
	// lastAt is the stamp of the newest accepted sample. It survives
	// trims, so the out-of-order guard keeps rejecting replays even after
	// the buffer has been emptied.
	lastAt sim.Time
	// stats is the service's ingest accounting.
	stats SvcAggStats
}

// NewAggregator builds an aggregator with the given window geometry; zero
// values select the paper defaults (60s windows every 30s). The validation
// mirrors telemetry.HoppingWindows.
func NewAggregator(length, hop time.Duration) (*Aggregator, error) {
	if length == 0 && hop == 0 {
		length, hop = telemetry.DefaultWindowLength, telemetry.DefaultWindowHop
	}
	if length <= 0 || hop <= 0 {
		return nil, fmt.Errorf("telemetry: window length and hop must be positive (length=%v hop=%v)", length, hop)
	}
	if hop > length {
		return nil, fmt.Errorf("telemetry: hop %v larger than window %v would drop samples", hop, length)
	}
	return &Aggregator{length: length, hop: hop, svcs: make(map[string]*svcWindows)}, nil
}

// Length returns the window length.
func (a *Aggregator) Length() time.Duration { return a.length }

// Hop returns the hop interval.
func (a *Aggregator) Hop() time.Duration { return a.hop }

// Stats returns a copy of the ingest accounting: totals plus the per-service
// breakdown.
func (a *Aggregator) Stats() AggStats {
	out := AggStats{PerService: make(map[string]SvcAggStats, len(a.svcs))}
	for svc, sw := range a.svcs {
		out.PerService[svc] = sw.stats
		out.SvcAggStats.add(sw.stats)
	}
	return out
}

// Ingest feeds one service's next samples and returns the windows completed
// by them, in start order. Samples must arrive in strictly ascending stamp
// order; ones that do not are dropped and counted, never applied.
func (a *Aggregator) Ingest(svc string, samples []telemetry.Sample) ([]telemetry.Window, error) {
	sw := a.svcs[svc]
	if sw == nil {
		sw = &svcWindows{}
		a.svcs[svc] = sw
	}
	for _, smp := range samples {
		if sw.stats.Accepted > 0 && smp.At <= sw.lastAt {
			sw.stats.OutOfOrder++
			continue
		}
		sw.buf = append(sw.buf, bufSample{s: smp})
		sw.lastAt = smp.At
		sw.stats.Accepted++
	}
	if len(sw.buf) == 0 {
		return nil, nil
	}
	if sw.interval == 0 {
		if len(sw.buf) < 2 {
			return nil, nil
		}
		// Same cadence recovery as the batch function: interval from the
		// first two stamps, origin one interval before the first. The
		// out-of-order guard has already enforced strictly ascending
		// stamps, so the interval is positive.
		sw.interval = sw.buf[1].s.At - sw.buf[0].s.At
		sw.next = sw.buf[0].s.At - sw.interval
		sw.expected = int(a.length / time.Duration(sw.interval))
	}

	var out []telemetry.Window
	end := sw.buf[len(sw.buf)-1].s.At
	length := sim.Time(a.length)
	for sw.next+length <= end {
		w := telemetry.Window{Start: sw.next, End: sw.next + length, Expected: sw.expected}
		for i := range sw.buf {
			smp := sw.buf[i].s
			if smp.Missing {
				continue
			}
			span := smp.Span
			if span < 1 {
				span = 1
			}
			// The batch inclusion rule verbatim: the sample's covered
			// stretch (At-span*interval, At] must lie inside the window.
			if smp.At-sim.Time(span)*sw.interval >= w.Start && smp.At <= w.End {
				w.Sum = w.Sum.Add(smp.Deltas)
				w.Covered += span
				sw.buf[i].used = true
			}
		}
		if w.Covered > w.Expected {
			w.Covered = w.Expected
		}
		out = append(out, w)
		sw.next += sim.Time(a.hop)
	}
	sw.stats.Windows += uint64(len(out))

	// Trim: a sample stamped at or before the next window start can never
	// satisfy the inclusion rule again (its covered stretch ends at its
	// stamp, which is <= every future window start). A trimmed data sample
	// that fed no window is dead — count it instead of discarding silently.
	keep := 0
	for keep < len(sw.buf) && sw.buf[keep].s.At <= sw.next {
		if !sw.buf[keep].s.Missing && !sw.buf[keep].used {
			sw.stats.Dead++
		}
		keep++
	}
	if keep > 0 {
		sw.buf = append(sw.buf[:0], sw.buf[keep:]...)
	}
	return out, nil
}

// IngestTick feeds one drained tick for every service (service -> samples)
// and returns the completed windows per service. Services are processed in
// sorted order for deterministic error reporting; per-service results are
// independent.
func (a *Aggregator) IngestTick(tick map[string][]telemetry.Sample) (map[string][]telemetry.Window, error) {
	svcs := make([]string, 0, len(tick))
	for svc := range tick {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	out := make(map[string][]telemetry.Window, len(tick))
	for _, svc := range svcs {
		ws, err := a.Ingest(svc, tick[svc])
		if err != nil {
			return nil, err
		}
		if len(ws) > 0 {
			out[svc] = ws
		}
	}
	return out, nil
}
