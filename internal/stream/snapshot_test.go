package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
	"causalfl/internal/stream"
	"causalfl/internal/telemetry"
)

// snapFixture is a compact degraded-stream scenario for the snapshot codec:
// three services scraped every 5s into 30s/15s windows, a CPU fault in svc-b
// from tick 26, scrape gaps on svc-c (every 9th tick missing, recovered with
// a spanning sample) and NaN corruption on svc-a's CPU every 13th tick — so
// an exported state carries partially-filled aggregator buffers, gap spans,
// non-finite ring values and live hysteresis history all at once.
type snapFixture struct {
	set   []metrics.Metric
	model *core.Model
	// ticks[i] is production tick i+1: service -> samples.
	ticks []map[string][]telemetry.Sample
}

const (
	snapInterval = 5 * time.Second
	snapLength   = 30 * time.Second
	snapHop      = 15 * time.Second
	snapTicks    = 50
)

func buildSnapFixture() (*snapFixture, error) {
	services := []string{"svc-a", "svc-b", "svc-c"}
	set := []metrics.Metric{metrics.MsgRate, metrics.CPU}

	counters := func(si, tick int, faulty bool) sim.Counters {
		c := sim.Counters{
			LogMessages: uint64(100 + 10*si + (tick*7+si*3)%5),
			CPUSeconds:  1.0 + 0.1*float64(si) + 0.01*float64((tick*11+si*5)%7),
		}
		if faulty {
			c.CPUSeconds *= 2.1
		}
		return c
	}

	baseSamples := make(map[string][]telemetry.Sample, len(services))
	for tick := 1; tick <= 40; tick++ {
		at := sim.Time(tick) * sim.Time(snapInterval)
		for si, svc := range services {
			baseSamples[svc] = append(baseSamples[svc], telemetry.Sample{
				At: at, Deltas: counters(si, tick, false), Span: 1,
			})
		}
	}
	baseWindows, err := telemetry.WindowsByService(baseSamples, snapLength, snapHop)
	if err != nil {
		return nil, err
	}
	baseline, err := metrics.BuildSnapshot(baseWindows, services, set)
	if err != nil {
		return nil, err
	}

	// Singleton causal sets: every service explains only itself.
	sets := make(map[string]map[string][]string, len(set))
	for _, m := range metrics.Names(set) {
		byTarget := make(map[string][]string, len(services))
		for _, svc := range services {
			byTarget[svc] = []string{svc}
		}
		sets[m] = byTarget
	}
	model := &core.Model{
		Services:   services,
		Metrics:    metrics.Names(set),
		Targets:    append([]string(nil), services...),
		CausalSets: sets,
		Baseline:   baseline,
		Alpha:      0.05,
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}

	var ticks []map[string][]telemetry.Sample
	gap := 0
	for tick := 41; tick <= 40+snapTicks; tick++ {
		at := sim.Time(tick) * sim.Time(snapInterval)
		one := make(map[string][]telemetry.Sample, len(services))
		for si, svc := range services {
			smp := telemetry.Sample{At: at, Deltas: counters(si, tick, tick > 65 && si == 1), Span: 1}
			switch {
			case si == 2 && tick%9 == 0:
				smp = telemetry.Sample{At: at, Missing: true}
				gap++
			case si == 2:
				smp.Span = 1 + gap
				gap = 0
			case si == 0 && tick%13 == 0:
				smp.Deltas.CPUSeconds = math.NaN()
				smp.Corrupt = true
			}
			one[svc] = []telemetry.Sample{smp}
		}
		ticks = append(ticks, one)
	}
	return &snapFixture{set: set, model: model, ticks: ticks}, nil
}

// newPipeline builds a fresh pipeline over the fixture.
func (fx *snapFixture) newPipeline(opts ...stream.Option) (*stream.Pipeline, error) {
	base := []stream.Option{stream.WithMetricSet(fx.set), stream.WithGeometry(snapLength, snapHop)}
	return stream.NewPipeline(fx.model, append(base, opts...)...)
}

// runTicks feeds ticks[from:to] and returns the emitted verdicts.
func runTicks(t *testing.T, p *stream.Pipeline, ticks []map[string][]telemetry.Sample) []*stream.Verdict {
	t.Helper()
	var out []*stream.Verdict
	for i, tick := range ticks {
		vs, err := p.Tick(context.Background(), tick)
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		out = append(out, vs...)
	}
	return out
}

// TestPipelineSnapshotResume is the codec's core contract: export at an
// arbitrary mid-stream point, serialize, restore into a fresh pipeline, and
// the resumed verdict timeline — and every later snapshot — is byte-identical
// to a run that never stopped. Exercised across split points (including
// mid-hysteresis and mid-gap), worker counts and both decision modes.
func TestPipelineSnapshotResume(t *testing.T) {
	fx, err := buildSnapFixture()
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name string
		opts []stream.Option
	}{
		{"alpha-w1", []stream.Option{stream.WithWindow(6), stream.WithWorkers(1)}},
		{"alpha-w4", []stream.Option{stream.WithWindow(6), stream.WithWorkers(4)}},
		{"fdr-w8", []stream.Option{stream.WithWindow(6), stream.WithWorkers(8), stream.WithFDR(0.1)}},
		{"alpha-sketch", []stream.Option{stream.WithWindow(6), stream.WithWorkers(4), stream.WithSketch(stream.DefaultSketchEps), stream.WithShards(3)}},
	}
	splits := []int{0, 1, 9, 17, 26, 33, snapTicks - 1}

	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			full, err := fx.newPipeline(mode.opts...)
			if err != nil {
				t.Fatal(err)
			}
			wantTimeline := runTicks(t, full, fx.ticks)
			if len(wantTimeline) < 10 {
				t.Fatalf("uninterrupted run emitted only %d verdicts; fixture misconfigured", len(wantTimeline))
			}
			wantJSON := mustJSON(t, wantTimeline)
			wantFinal := mustJSON(t, full.ExportState())
			wantStats := full.Stats()

			for _, split := range splits {
				first, err := fx.newPipeline(mode.opts...)
				if err != nil {
					t.Fatal(err)
				}
				head := runTicks(t, first, fx.ticks[:split])

				// Serialize through JSON — the exact path serve's snapshots
				// take — and require the encoding to be stable under a
				// decode/encode round trip.
				blob := mustJSON(t, first.ExportState())
				var st stream.PipelineState
				if err := json.Unmarshal(blob, &st); err != nil {
					t.Fatalf("split %d: decode: %v", split, err)
				}
				if err := st.Validate(); err != nil {
					t.Fatalf("split %d: exported state fails validation: %v", split, err)
				}
				if again := mustJSON(t, &st); !bytes.Equal(blob, again) {
					t.Fatalf("split %d: encoding not stable under round trip:\n%s\nvs\n%s", split, blob, again)
				}

				second, err := fx.newPipeline(mode.opts...)
				if err != nil {
					t.Fatal(err)
				}
				if err := second.RestoreState(&st); err != nil {
					t.Fatalf("split %d: restore: %v", split, err)
				}
				tail := runTicks(t, second, fx.ticks[split:])

				gotJSON := mustJSON(t, append(head, tail...))
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Fatalf("split %d: resumed timeline diverges from uninterrupted run:\n%s\nvs\n%s", split, gotJSON, wantJSON)
				}
				if gotFinal := mustJSON(t, second.ExportState()); !bytes.Equal(gotFinal, wantFinal) {
					t.Fatalf("split %d: final state diverges:\n%s\nvs\n%s", split, gotFinal, wantFinal)
				}
				if gotStats := second.Stats(); !reflect.DeepEqual(gotStats.Aggregator.SvcAggStats, wantStats.Aggregator.SvcAggStats) ||
					gotStats.Hops != wantStats.Hops || gotStats.LastVerdictAt != wantStats.LastVerdictAt {
					t.Fatalf("split %d: stats diverge: %+v vs %+v", split, gotStats, wantStats)
				}
			}
		})
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotRestoreRejects drives corrupted snapshots through
// Validate/RestoreState and requires an explicit error for each — a damaged
// snapshot must never silently seed a diverging pipeline.
func TestSnapshotRestoreRejects(t *testing.T) {
	fx, err := buildSnapFixture()
	if err != nil {
		t.Fatal(err)
	}
	opts := []stream.Option{stream.WithWindow(6)}
	donor, err := fx.newPipeline(opts...)
	if err != nil {
		t.Fatal(err)
	}
	runTicks(t, donor, fx.ticks[:20])
	pristine := mustJSON(t, donor.ExportState())

	state := func() *stream.PipelineState {
		var st stream.PipelineState
		if err := json.Unmarshal(pristine, &st); err != nil {
			t.Fatal(err)
		}
		return &st
	}
	cases := []struct {
		name   string
		mutate func(*stream.PipelineState)
	}{
		{"future version", func(st *stream.PipelineState) { st.Version = stream.SnapshotVersion + 1 }},
		{"window mismatch", func(st *stream.PipelineState) { st.Window++ }},
		{"geometry mismatch", func(st *stream.PipelineState) { st.Length *= 2 }},
		{"unknown pair metric", func(st *stream.PipelineState) {
			st.Pairs["no_such_metric"] = map[string]stream.PairState{"svc-a": st.Pairs["cpu"]["svc-a"]}
		}},
		{"pair value count inconsistent", func(st *stream.PipelineState) {
			ps := st.Pairs["cpu"]["svc-a"]
			ps.Pushed += 3
			st.Pairs["cpu"]["svc-a"] = ps
		}},
		{"unknown history service", func(st *stream.PipelineState) {
			st.History = append(st.History, []string{"svc-zz"})
		}},
		{"history beyond horizon", func(st *stream.PipelineState) {
			for i := 0; i < 10; i++ {
				st.History = append(st.History, []string{})
			}
		}},
		{"unsorted history set", func(st *stream.PipelineState) {
			st.History = append(st.History, []string{"svc-b", "svc-a"})
		}},
		{"pending start mismatch", func(st *stream.PipelineState) {
			start := sim.Time(time.Hour)
			st.Pending = append(st.Pending, stream.PendingState{
				Start: start,
				Windows: map[string]stream.WindowState{
					"svc-a": {Start: start + sim.Time(time.Second), End: start + st.Length},
				},
			})
		}},
		{"pending fully reported", func(st *stream.PipelineState) {
			start := sim.Time(time.Hour)
			ws := map[string]stream.WindowState{}
			for _, svc := range []string{"svc-a", "svc-b", "svc-c"} {
				ws[svc] = stream.WindowState{Start: start, End: start + st.Length}
			}
			st.Pending = append(st.Pending, stream.PendingState{Start: start, Windows: ws})
		}},
		{"unordered aggregator buffer", func(st *stream.PipelineState) {
			as := st.Aggregator["svc-a"]
			if len(as.Buf) < 2 {
				t.Fatal("fixture export should buffer at least two samples")
			}
			as.Buf[0], as.Buf[1] = as.Buf[1], as.Buf[0]
			st.Aggregator["svc-a"] = as
		}},
		{"cursor leads newest stamp", func(st *stream.PipelineState) {
			as := st.Aggregator["svc-a"]
			as.Buf = nil
			as.Next = as.LastAt + sim.Time(time.Second)
			st.Aggregator["svc-a"] = as
		}},
		{"cursor trails a full window", func(st *stream.PipelineState) {
			as := st.Aggregator["svc-a"]
			as.Buf = nil
			as.Next = as.LastAt - st.Length
			st.Aggregator["svc-a"] = as
		}},
		{"stamp out of range", func(st *stream.PipelineState) {
			as := st.Aggregator["svc-a"]
			as.Buf = nil
			as.LastAt = sim.Time(1) << 62
			as.Next = as.LastAt
			st.Aggregator["svc-a"] = as
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := state()
			tc.mutate(st)
			fresh, err := fx.newPipeline(opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.RestoreState(st); err == nil {
				t.Fatal("corrupted snapshot accepted")
			}
		})
	}

	t.Run("nil state", func(t *testing.T) {
		var st *stream.PipelineState
		if err := st.Validate(); err == nil {
			t.Fatal("nil state validated")
		}
	})
	t.Run("restore into used pipeline", func(t *testing.T) {
		used, err := fx.newPipeline(opts...)
		if err != nil {
			t.Fatal(err)
		}
		runTicks(t, used, fx.ticks[:1])
		if err := used.RestoreState(state()); err == nil {
			t.Fatal("restore into a non-fresh pipeline accepted")
		}
	})
}

// TestFloat64JSON pins the non-finite float encoding: the three specials
// round-trip through their string forms, finite values through shortest
// numbers, and anything else is an error.
func TestFloat64JSON(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), `"NaN"`},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
		{1.5, `1.5`},
		{0, `0`},
		{1e300, `1e+300`},
		{0.1, `0.1`},
	}
	for _, tc := range cases {
		b, err := json.Marshal(stream.Float64(tc.v))
		if err != nil {
			t.Fatalf("%v: %v", tc.v, err)
		}
		if string(b) != tc.want {
			t.Fatalf("%v encoded as %s, want %s", tc.v, b, tc.want)
		}
		var back stream.Float64
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if g, w := float64(back), tc.v; g != w && !(math.IsNaN(g) && math.IsNaN(w)) { //nolint:staticcheck
			t.Fatalf("%s decoded to %v, want %v", b, g, w)
		}
	}
	for _, bad := range []string{`"Infinity"`, `"nan"`, `""`, `"1.5x"`, `true`, `[1]`, `{}`} {
		var f stream.Float64
		if err := json.Unmarshal([]byte(bad), &f); err == nil {
			t.Fatalf("%s accepted", bad)
		}
	}
}

// FuzzSnapshotRoundTrip throws arbitrary bytes at the codec: anything that
// decodes and validates must re-encode stably (encode∘decode∘encode =
// encode), and restoring it into a fresh pipeline must either succeed or
// return an error — never panic, never hang.
func FuzzSnapshotRoundTrip(f *testing.F) {
	fx, err := buildSnapFixture()
	if err != nil {
		f.Fatal(err)
	}
	opts := []stream.Option{stream.WithWindow(6)}

	// Seed with honest exports at several depths (empty, mid-gap, post-fault
	// with NaN in the rings) and a few structured hostiles.
	for _, split := range []int{0, 3, 17, 40} {
		p, err := fx.newPipeline(opts...)
		if err != nil {
			f.Fatal(err)
		}
		for _, tick := range fx.ticks[:split] {
			if _, err := p.Tick(context.Background(), tick); err != nil {
				f.Fatal(err)
			}
		}
		blob, err := json.Marshal(p.ExportState())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"length":1,"hop":1,"window":1}`))
	f.Add([]byte(fmt.Sprintf(`{"version":1,"length":%d,"hop":%d,"window":6,"pairs":{"cpu":{"svc-a":{"values":["NaN"],"pushed":1}}}}`,
		snapLength, snapHop)))
	f.Add([]byte(`{"version":1,"length":30000000000,"hop":15000000000,"window":6,"aggregator":{"svc-a":{"next":4611686018427387903,"last_at":4611686018427387903,"stats":{"accepted":2,"out_of_order":0,"dead":0,"windows":0}}}}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var st stream.PipelineState
		if err := json.Unmarshal(data, &st); err != nil {
			return
		}
		if err := st.Validate(); err != nil {
			return
		}
		enc1, err := json.Marshal(&st)
		if err != nil {
			t.Fatalf("validated state failed to encode: %v", err)
		}
		var st2 stream.PipelineState
		if err := json.Unmarshal(enc1, &st2); err != nil {
			t.Fatalf("own encoding failed to decode: %v", err)
		}
		if err := st2.Validate(); err != nil {
			t.Fatalf("own encoding failed validation: %v", err)
		}
		enc2, err := json.Marshal(&st2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not stable:\n%s\nvs\n%s", enc1, enc2)
		}

		p, err := fx.newPipeline(opts...)
		if err != nil {
			t.Fatal(err)
		}
		// Success or error are both fine; panics and hangs are not.
		if err := p.RestoreState(&st); err == nil {
			if _, err := p.Tick(context.Background(), nil); err != nil {
				_ = err // a restored-but-odd state may legitimately reject ticks
			}
		}
	})
}
