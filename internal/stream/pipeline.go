package stream

import (
	"context"
	"fmt"
	"sort"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

// Pipeline is the full streaming engine behind `causalfl watch`: drained
// telemetry ticks in, verdicts out. It chains an Aggregator (ticks ->
// completed hopping windows per service), metric extraction (the
// BuildSnapshot recipe, one value per window), and a Localizer (incremental
// detection + vote phase + hysteresis).
//
// A hop fires when every model service has completed the window starting at
// the same instant; with the Sampler's regular cadence that happens once per
// hop interval. A service whose window grid drifts from the others' is a
// misalignment error, not a silent stall.
type Pipeline struct {
	model *core.Model
	set   []metrics.Metric
	agg   *Aggregator
	loc   *Localizer
	// pending collects completed windows by start time until every service
	// has reported that window.
	pending map[sim.Time]map[string]telemetry.Window
	// hops counts emitted verdicts; lastAt stamps the newest one.
	hops   uint64
	lastAt sim.Time
}

// PipelineStats is a Pipeline's ingest-to-verdict accounting: the
// aggregator's sample accounting plus the verdict counters. `causalfl watch`
// prints it in the final summary and `causalfl serve` exposes it per tenant
// on the stats endpoint.
type PipelineStats struct {
	// Aggregator is the sample-level accounting (accepted, out-of-order
	// rejections, dead-trimmed samples, emitted windows).
	Aggregator AggStats `json:"aggregator"`
	// Hops counts verdicts emitted over the pipeline's lifetime.
	Hops uint64 `json:"hops"`
	// LastVerdictAt is the timestamp of the newest verdict (zero before
	// the first hop completes).
	LastVerdictAt sim.Time `json:"last_verdict_at"`
}

// NewPipeline builds the watch engine for a trained model. WithMetricSet is
// required; WithGeometry sets the telemetry aggregation grid (zero values
// select the paper defaults); the remaining options configure the embedded
// Localizer as NewLocalizer would.
func NewPipeline(model *core.Model, opts ...Option) (*Pipeline, error) {
	s, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("stream: nil model")
	}
	if len(s.set) == 0 {
		return nil, fmt.Errorf("stream: empty metric set (a pipeline needs WithMetricSet)")
	}
	names := metrics.Names(s.set)
	if len(names) != len(model.Metrics) {
		return nil, fmt.Errorf("stream: metric set has %d metrics, model has %d", len(names), len(model.Metrics))
	}
	for i, n := range names {
		if n != model.Metrics[i] {
			return nil, fmt.Errorf("stream: metric set[%d] is %q, model expects %q", i, n, model.Metrics[i])
		}
	}
	agg, err := NewAggregator(s.length, s.hop)
	if err != nil {
		return nil, err
	}
	loc, err := newLocalizer(model, s)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		model:   model,
		set:     s.set,
		agg:     agg,
		loc:     loc,
		pending: make(map[sim.Time]map[string]telemetry.Window),
	}, nil
}

// Localizer exposes the verdict engine (read-only between Ticks).
func (p *Pipeline) Localizer() *Localizer { return p.loc }

// Stats returns a copy of the pipeline's accounting.
func (p *Pipeline) Stats() PipelineStats {
	return PipelineStats{Aggregator: p.agg.Stats(), Hops: p.hops, LastVerdictAt: p.lastAt}
}

// Tick feeds one drained batch of samples (service -> samples, e.g. one
// Sampler.Drain) and returns the verdicts for every hop completed by it, in
// timeline order. Most ticks complete zero or one hop.
func (p *Pipeline) Tick(ctx context.Context, samples map[string][]telemetry.Sample) ([]*Verdict, error) {
	completed, err := p.agg.IngestTick(samples)
	if err != nil {
		return nil, err
	}
	for svc, ws := range completed {
		for _, w := range ws {
			bySvc := p.pending[w.Start]
			if bySvc == nil {
				bySvc = make(map[string]telemetry.Window, len(p.model.Services))
				p.pending[w.Start] = bySvc
			}
			bySvc[svc] = w
		}
	}

	// Collect fully reported window starts in timeline order.
	var ready []sim.Time
	for start, bySvc := range p.pending {
		if len(bySvc) == len(p.model.Services) {
			ready = append(ready, start)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })

	var out []*Verdict
	for _, start := range ready {
		bySvc := p.pending[start]
		delete(p.pending, start)
		// A pending window older than one we are about to emit means some
		// service's grid drifted: it produced this older window while
		// another never did. Surface that instead of growing the backlog.
		for s := range p.pending {
			if s < start {
				return nil, fmt.Errorf("stream: service windows misaligned: window at %v still incomplete while %v is ready", s, start)
			}
		}
		hop := make(map[string]map[string]float64, len(p.set))
		var at sim.Time
		for _, m := range p.set {
			vals := make(map[string]float64, len(bySvc))
			for svc, w := range bySvc {
				vals[svc] = m.Extract(w.Sum)
				at = w.End
			}
			hop[m.Name] = vals
		}
		v, err := p.loc.Step(ctx, at, hop)
		if err != nil {
			return nil, err
		}
		p.hops++
		p.lastAt = v.At
		out = append(out, v)
	}
	return out, nil
}
