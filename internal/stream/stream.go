// Package stream is the online localization engine: it consumes telemetry
// window-values as they are produced and re-localizes on every hop without
// recomputing the batch pipeline from zero.
//
// The batch pipeline (core.Detect, core.Localizer) assumes a one-shot
// production snapshot: every call re-sorts every series and re-runs every
// two-sample test. Re-running it per hop over a sliding window costs
// O(n log n) per series per tick. This package keeps, per (metric, service)
// pair, an incremental KS state (stats.IncrementalKS) whose baseline is
// sorted exactly once and whose production window is maintained by ordered
// insert/evict — so a hop costs one bounded insert per pair plus the D-walk,
// never a sort.
//
// Equivalence contract: the Detector's per-hop output is byte-identical to
// core.Detect run on the materialized sliding window (same Test, alpha-vs-FDR
// family decision, strict-vs-tolerant completeness, min-sample guard), and
// the Localizer's per-hop votes are produced by the same vote phase
// (core.Localizer.Aggregate) the batch localizer runs. The conformance suite
// in this package (equivalence tests, golden corpus, FuzzIncrementalKS in
// internal/stats) enforces the contract at every hop for workers 1..8 in
// both alpha and FDR modes.
//
// Layering, bottom to top:
//
//   - Detector: sliding-window anomaly sets A(M) per metric.
//   - Localizer: Detector + core vote phase + K-of-N hysteresis, emitting a
//     timestamped Verdict per hop.
//   - Aggregator: telemetry.Sample ticks -> completed hopping windows,
//     incrementally equivalent to telemetry.HoppingWindows.
//   - Pipeline: Aggregator + Localizer, the `causalfl watch` engine.
package stream

import (
	"fmt"

	"causalfl/internal/core"
)

// Config configures a Detector.
type Config struct {
	// Window is the number of most-recent window-values retained per
	// (metric, service) series — the sliding production sample the
	// two-sample tests see. It must be at least 1.
	Window int
	// Detect carries the batch detection semantics the stream reproduces:
	// test choice, alpha vs FDR family decision, min-sample guard, strict
	// vs tolerant completeness, and the worker fan-out for the per-service
	// p-values inside one metric.
	Detect core.DetectConfig
}

// validate checks the configuration, mirroring core.Detect's parameter
// validation so a config rejected by the batch path is rejected here too.
func (c Config) validate() error {
	if c.Window < 1 {
		return fmt.Errorf("stream: window must be >= 1, got %d", c.Window)
	}
	if c.Detect.FDR < 0 || c.Detect.FDR >= 1 {
		return fmt.Errorf("core: FDR level must be in (0,1), got %v", c.Detect.FDR)
	}
	if c.Detect.Alpha < 0 || c.Detect.Alpha >= 1 {
		return fmt.Errorf("stream: alpha must be in [0,1), got %v", c.Detect.Alpha)
	}
	if c.Detect.MinSamples < 0 {
		return fmt.Errorf("stream: min samples must be >= 0, got %d", c.Detect.MinSamples)
	}
	if c.Detect.Workers < 0 {
		return fmt.Errorf("stream: worker count must be >= 0, got %d", c.Detect.Workers)
	}
	return nil
}
