// Package stream is the online localization engine: it consumes telemetry
// window-values as they are produced and re-localizes on every hop without
// recomputing the batch pipeline from zero.
//
// The batch pipeline (core.Detect, core.Localizer) assumes a one-shot
// production snapshot: every call re-sorts every series and re-runs every
// two-sample test. Re-running it per hop over a sliding window costs
// O(n log n) per series per tick. This package keeps, per (metric, service)
// pair, an incremental KS state (stats.IncrementalKS) whose baseline is
// sorted exactly once and whose production window is maintained by ordered
// insert/evict — so a hop costs one bounded insert per pair plus the D-walk,
// never a sort.
//
// Scale contract: per-pair detection state is hash-sharded, and each hop's
// flush recomputes only the pairs whose windows actually changed — so a hop
// that touches T of the S×M pairs costs O(T) test evaluations, not O(S·M),
// and per-hop latency stays flat as the service count grows with constant
// hop density. With WithSketch, per-pair baseline memory is O(1/eps)
// regardless of baseline length. Both are pure representation changes:
// verdicts are byte-identical at every shard count, and bit-identical to the
// exact baseline whenever the sketch is lossless for it.
//
// Equivalence contract: the Detector's per-hop output is byte-identical to
// core.Detect run on the materialized sliding window (same Test, alpha-vs-FDR
// family decision, strict-vs-tolerant completeness, min-sample guard), and
// the Localizer's per-hop votes are produced by the same vote phase
// (core.Localizer.Aggregate) the batch localizer runs. The conformance suite
// in this package (equivalence tests, golden corpus, FuzzIncrementalKS in
// internal/stats) enforces the contract at every hop for workers 1..8 in
// both alpha and FDR modes.
//
// Configuration is one functional-option set (Option): NewDetector,
// NewLocalizer and NewPipeline all take the same options, each reading the
// subset it understands.
//
// Layering, bottom to top:
//
//   - Detector: sliding-window anomaly sets A(M) per metric.
//   - Localizer: Detector + core vote phase + K-of-N hysteresis, emitting a
//     timestamped Verdict per hop.
//   - Aggregator: telemetry.Sample ticks -> completed hopping windows,
//     incrementally equivalent to telemetry.HoppingWindows.
//   - Pipeline: Aggregator + Localizer, the `causalfl watch` engine.
package stream
