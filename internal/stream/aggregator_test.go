package stream_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"causalfl/internal/sim"
	"causalfl/internal/stream"
	"causalfl/internal/telemetry"
)

// synthSamples builds a deterministic tick series with scrape gaps and
// recovery spans, the shapes degraded collection produces.
func synthSamples(n int, seed int64) []telemetry.Sample {
	rng := rand.New(rand.NewSource(seed))
	interval := 5 * time.Second
	out := make([]telemetry.Sample, 0, n)
	missedSince := 0
	for i := 1; i <= n; i++ {
		at := sim.Time(i) * sim.Time(interval)
		if rng.Intn(10) == 0 {
			out = append(out, telemetry.Sample{At: at, Missing: true})
			missedSince++
			continue
		}
		span := 1 + missedSince
		missedSince = 0
		out = append(out, telemetry.Sample{
			At: at,
			Deltas: sim.Counters{
				LogMessages: uint64(90 + rng.Intn(20)),
				RxPackets:   uint64(200 + rng.Intn(30)),
				CPUSeconds:  0.8 + 0.05*rng.NormFloat64(),
			},
			Span: span,
		})
	}
	return out
}

// TestAggregatorMatchesHoppingWindows feeds a gappy sample series one tick
// at a time and checks, after every tick, that the windows emitted so far
// are exactly telemetry.HoppingWindows over the materialized prefix —
// including the bit-identical CPUSeconds sums (same ascending add order) and
// the coverage accounting.
func TestAggregatorMatchesHoppingWindows(t *testing.T) {
	const length, hop = 30 * time.Second, 15 * time.Second
	samples := synthSamples(80, 21)

	agg, err := stream.NewAggregator(length, hop)
	if err != nil {
		t.Fatal(err)
	}
	var got []telemetry.Window
	for i, smp := range samples {
		ws, err := agg.Ingest("svc", []telemetry.Sample{smp})
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		got = append(got, ws...)
		want, err := telemetry.HoppingWindows(samples[:i+1], length, hop)
		if err != nil {
			t.Fatalf("tick %d: batch: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tick %d: incremental emitted %d windows %+v, batch %d %+v",
				i, len(got), got, len(want), want)
		}
	}
	if len(got) == 0 {
		t.Fatal("scenario produced no windows; not a meaningful conformance run")
	}
}

func TestAggregatorValidation(t *testing.T) {
	if _, err := stream.NewAggregator(-time.Second, time.Second); err == nil {
		t.Fatal("negative length accepted")
	}
	if _, err := stream.NewAggregator(time.Second, 2*time.Second); err == nil {
		t.Fatal("hop > length accepted")
	}
	agg, err := stream.NewAggregator(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Length() != telemetry.DefaultWindowLength || agg.Hop() != telemetry.DefaultWindowHop {
		t.Fatalf("zero geometry did not select defaults: %v/%v", agg.Length(), agg.Hop())
	}
	// Out-of-order samples are dropped and counted, not applied and not an
	// error: a replaying producer must not kill the stream.
	if _, err := agg.Ingest("svc", []telemetry.Sample{{At: 10}, {At: 5}}); err != nil {
		t.Fatalf("out-of-order ingest errored: %v", err)
	}
	st := agg.Stats()
	if st.Accepted != 1 || st.OutOfOrder != 1 {
		t.Fatalf("accounting after out-of-order ingest: %+v", st.SvcAggStats)
	}
	if per := st.PerService["svc"]; per.OutOfOrder != 1 {
		t.Fatalf("per-service accounting missing the drop: %+v", per)
	}
	// The guard keys on the newest accepted stamp, so an exact replay of the
	// accepted sample is also dropped.
	if _, err := agg.Ingest("svc", []telemetry.Sample{{At: 10}}); err != nil {
		t.Fatal(err)
	}
	if st := agg.Stats(); st.OutOfOrder != 2 {
		t.Fatalf("replayed stamp not dropped: %+v", st.SvcAggStats)
	}
}

// TestLocalizerHysteresis drives a fault through the streaming localizer and
// checks the K-of-N confirmation discipline: no confirmation while healthy,
// no confirmation from a single anomalous hop's flap, confirmation within K
// hops of a persistent fault.
func TestLocalizerHysteresis(t *testing.T) {
	w, err := stream.NewSynth(stream.SynthConfig{
		Services: 4, Metrics: 2, BaselineLen: 10, Hops: 20,
		Seed: 9, FaultService: 1, FaultAfter: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := stream.NewLocalizer(w.Model(), stream.WithWindow(6), stream.WithHysteresis(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	faulty := w.Services[1]
	var confirmedAt = -1
	for h, hop := range w.Hops {
		v, err := sl.Step(ctx, sim.Time(h), hop)
		if err != nil {
			t.Fatal(err)
		}
		if h < 12 && len(v.Confirmed) > 0 {
			// Before the fault has persisted K hops nothing may confirm;
			// hops 10 and 11 are the at-most-K-1 confirmation latency.
			t.Fatalf("hop %d: premature confirmation %v", h, v.Confirmed)
		}
		if confirmedAt < 0 && len(v.Confirmed) > 0 {
			confirmedAt = h
		}
	}
	if confirmedAt < 0 {
		t.Fatal("persistent fault never confirmed")
	}
	// Latency budget: the KS window needs a few post-fault values before
	// the vote flips (detection lag), plus K-1 hops of hysteresis.
	if confirmedAt > 16 {
		t.Fatalf("confirmation too late: hop %d", confirmedAt)
	}
	// The confirmed set must be exactly the faulty service by the end.
	vLast, err := sl.Step(ctx, sim.Time(len(w.Hops)), w.Hops[len(w.Hops)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(vLast.Confirmed) != 1 || vLast.Confirmed[0] != faulty {
		t.Fatalf("confirmed %v, want [%s]", vLast.Confirmed, faulty)
	}
}

func TestLocalizerOptionValidation(t *testing.T) {
	w, err := stream.NewSynth(stream.SynthConfig{Services: 2, Metrics: 1, BaselineLen: 6, Hops: 0, Seed: 1, FaultService: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.NewLocalizer(nil, stream.WithWindow(4)); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(0)); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(4), stream.WithHysteresis(3, 2)); err == nil {
		t.Fatal("K > N accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(4), stream.WithFDR(1.5)); err == nil {
		t.Fatal("out-of-range FDR accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(4), stream.WithAlpha(1.5)); err == nil {
		t.Fatal("out-of-range alpha accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(4), stream.WithWorkers(-1)); err == nil {
		t.Fatal("negative worker count accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(4), stream.WithShards(0)); err == nil {
		t.Fatal("zero shard count accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(4), stream.WithSketch(1.5)); err == nil {
		t.Fatal("out-of-range sketch eps accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(4), stream.WithMinSamples(0)); err == nil {
		t.Fatal("zero min samples accepted")
	}
	if _, err := stream.NewLocalizer(w.Model(), stream.WithWindow(4), nil); err == nil {
		t.Fatal("nil option accepted")
	}
}
