package stats

import (
	"fmt"
	"math"
	"sort"
)

// IncrementalKS maintains a two-sample Kolmogorov–Smirnov comparison between
// a fixed baseline sample and a bounded sliding window of production values.
//
// The batch pipeline re-sorts both samples on every PValue call — O(n log n)
// per tick once a streaming consumer re-tests after every hop. This state
// sorts the baseline exactly once at construction and maintains the
// production window through ordered insert/evict: a ring buffer remembers
// arrival order (so the oldest value can be evicted when the window is full)
// and an order-statistics index keeps the finite values sorted between
// pushes. A push costs one binary search plus a bounded memmove inside the
// window; the D-statistic walk over the merged support never pays a sort.
//
// Equivalence contract: after any sequence of pushes, PValue equals
// KSTest{}.PValue(window, baseline) and GuardedPValue equals
// GuardedTest{Inner: KSTest{}}.PValue(window, baseline) — bit for bit, where
// window is the retained arrival-order suffix with non-finite values dropped
// (the same finiteValues filtering the tolerant detection path applies).
// FuzzIncrementalKS cross-checks this invariant.
// Sketch mode (NewIncrementalKSSketch) replaces the retained baseline with a
// bounded-memory ECDFSketch: per-pair memory drops from O(len(baseline)) to
// O(1/eps) and the KS statistic is computed against the sketched baseline
// ECDF, within ECDFSketch.ErrorBound of the exact statistic — and bit-equal
// to it whenever len(baseline) ≤ SketchCutoff(eps). The guard's trimmed
// baseline mean is computed exactly at construction either way.
type IncrementalKS struct {
	// base is the baseline sample, sorted once. Nil in sketch mode, where sk
	// carries the baseline summary instead.
	base []float64
	// sk is the bounded-memory baseline summary; non-nil selects sketch mode.
	sk *ECDFSketch
	// baseN is the original baseline sample size (len(base) in exact mode);
	// the p-value's effective-sample-size arithmetic uses it in both modes.
	baseN int
	// baseTrimmed caches trimmedMeanSorted(base, DefaultTrim) for the
	// practical-equivalence guard, which would otherwise recompute it on
	// every hop.
	baseTrimmed float64
	// ring holds the last cap pushed values in arrival order; head indexes
	// the oldest. Non-finite values occupy ring slots (they age out like
	// any other) but are excluded from sorted.
	ring []float64
	head int
	n    int
	// sorted is the order-statistics index: the finite ring values in
	// ascending order.
	sorted []float64
}

// NewIncrementalKS builds the state for one (baseline, sliding window) pair.
// The baseline is copied and sorted once; window is the maximum number of
// production values retained.
func NewIncrementalKS(baseline []float64, window int) (*IncrementalKS, error) {
	if len(baseline) == 0 {
		return nil, fmt.Errorf("stats: incremental ks: empty baseline")
	}
	if window < 1 {
		return nil, fmt.Errorf("stats: incremental ks: window must be >= 1, got %d", window)
	}
	base := make([]float64, len(baseline))
	copy(base, baseline)
	sortFloat64s(base)
	return &IncrementalKS{
		base:        base,
		baseN:       len(base),
		baseTrimmed: trimmedMeanSorted(base, DefaultTrim),
		ring:        make([]float64, 0, window),
		sorted:      make([]float64, 0, window),
	}, nil
}

// NewIncrementalKSSketch is NewIncrementalKS with the baseline summarized by
// an ECDFSketch of error budget eps instead of retained exactly: the state
// holds O(1/eps) baseline anchors plus the window, regardless of baseline
// length. The window side is untouched (same ring, same restore semantics),
// the guard's baseline trimmed mean is computed exactly before the baseline
// is dropped, and whenever len(baseline) ≤ SketchCutoff(eps) the sketch is
// lossless and every statistic matches the exact state bit for bit.
func NewIncrementalKSSketch(baseline []float64, window int, eps float64) (*IncrementalKS, error) {
	if len(baseline) == 0 {
		return nil, fmt.Errorf("stats: incremental ks: empty baseline")
	}
	if window < 1 {
		return nil, fmt.Errorf("stats: incremental ks: window must be >= 1, got %d", window)
	}
	base := make([]float64, len(baseline))
	copy(base, baseline)
	for _, v := range base {
		if !isFinite(v) {
			return nil, fmt.Errorf("stats: incremental ks: sketch baseline must be finite, got %v", v)
		}
	}
	sortFloat64s(base)
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("stats: sketch eps must be in (0,1), got %v", eps)
	}
	return &IncrementalKS{
		sk:          newECDFSketchSorted(base, eps),
		baseN:       len(base),
		baseTrimmed: trimmedMeanSorted(base, DefaultTrim),
		ring:        make([]float64, 0, window),
		sorted:      make([]float64, 0, window),
	}, nil
}

// Sketch returns the baseline sketch, or nil when the state retains the
// baseline exactly.
func (k *IncrementalKS) Sketch() *ECDFSketch { return k.sk }

// Push appends one production value, evicting the oldest when the window is
// full. Non-finite values age through the ring like any other but never
// enter the sorted index, mirroring the tolerant detection path's
// finite-values filter.
func (k *IncrementalKS) Push(v float64) {
	if len(k.ring) == cap(k.ring) {
		old := k.ring[k.head]
		k.ring[k.head] = v
		k.head = (k.head + 1) % len(k.ring)
		if isFinite(old) {
			k.removeSorted(old)
		}
	} else {
		k.ring = append(k.ring, v)
	}
	k.n++
	if isFinite(v) {
		k.insertSorted(v)
	}
}

// insertSorted places v into the order-statistics index.
func (k *IncrementalKS) insertSorted(v float64) {
	i := sort.SearchFloat64s(k.sorted, v)
	k.sorted = append(k.sorted, 0)
	copy(k.sorted[i+1:], k.sorted[i:])
	k.sorted[i] = v
}

// removeSorted evicts one instance of v from the index. Which instance of a
// tied value is removed is immaterial: the multiset is what the statistics
// see.
func (k *IncrementalKS) removeSorted(v float64) {
	i := sort.SearchFloat64s(k.sorted, v)
	if i >= len(k.sorted) || k.sorted[i] != v { //vet:allow floateq -- exact bit-match lookup of a value known to be present
		return
	}
	k.sorted = append(k.sorted[:i], k.sorted[i+1:]...)
}

// Len reports the number of finite values currently in the window — the
// sample size the min-sample guard checks.
func (k *IncrementalKS) Len() int { return len(k.sorted) }

// Pushed reports how many values were ever pushed (including ones that have
// aged out).
func (k *IncrementalKS) Pushed() int { return k.n }

// BaselineLen reports the baseline sample size — the original size in sketch
// mode, where the values themselves are no longer retained.
func (k *IncrementalKS) BaselineLen() int { return k.baseN }

// Window materializes the retained values in arrival order (a copy),
// non-finite entries included. It is the exact series a batch consumer would
// see for this pair, used by the generic-test fallback and the conformance
// suite.
func (k *IncrementalKS) Window() []float64 {
	out := make([]float64, 0, len(k.ring))
	for i := 0; i < len(k.ring); i++ {
		out = append(out, k.ring[(k.head+i)%len(k.ring)])
	}
	return out
}

// D returns the current KS statistic between the finite window and the
// baseline.
func (k *IncrementalKS) D() (float64, error) {
	if len(k.sorted) == 0 {
		return 0, fmt.Errorf("stats: incremental ks: empty window")
	}
	if k.sk != nil {
		return ksDistanceSketch(k.sorted, k.sk), nil
	}
	return ksDistanceSorted(k.sorted, k.base), nil
}

// PValue returns KSTest{}.PValue(window, baseline) without re-sorting either
// sample. In sketch mode the D statistic comes from the sketched baseline
// ECDF (within the sketch's error bound of exact; bit-identical when the
// sketch is lossless).
func (k *IncrementalKS) PValue() (float64, error) {
	if len(k.sorted) == 0 {
		return 0, fmt.Errorf("stats: ks first sample: stats: ECDF of empty sample")
	}
	if k.sk != nil {
		return ksPValueSketch(k.sorted, k.sk), nil
	}
	return ksPValueSorted(k.sorted, k.base), nil
}

// GuardedPValue returns GuardedTest{Inner: KSTest{}, RelTol:
// relTol}.PValue(window, baseline): the practical-equivalence guard first
// (with the baseline trimmed mean cached), then the KS p-value. relTol zero
// selects DefaultRelTol, matching the guard's defaulting.
func (k *IncrementalKS) GuardedPValue(relTol float64) (float64, error) {
	if len(k.sorted) == 0 {
		return 0, fmt.Errorf("stats: guarded test needs non-empty samples (|x|=%d |y|=%d)", len(k.sorted), k.baseN)
	}
	tol := relTol
	if tol == 0 {
		tol = DefaultRelTol
	}
	if tol < 0 {
		return 0, fmt.Errorf("stats: negative relative tolerance %v", tol)
	}
	tx := trimmedMeanSorted(k.sorted, DefaultTrim)
	diff := abs(tx - k.baseTrimmed)
	scale := abs(tx)
	if s := abs(k.baseTrimmed); s > scale {
		scale = s
	}
	if scale == 0 || diff <= tol*scale {
		return 1, nil
	}
	if k.sk != nil {
		return ksPValueSketch(k.sorted, k.sk), nil
	}
	return ksPValueSorted(k.sorted, k.base), nil
}

// RestoreWindow refills a freshly constructed state from a persisted
// snapshot: values is the retained arrival-order window (exactly what Window
// returned at snapshot time, non-finite entries included) and pushed the
// lifetime push count. After a successful restore the state is
// indistinguishable from one that ingested the original stream — the ring
// contents, the sorted index multiset and the push counter all match, so
// every subsequent Push/PValue sequence produces bit-identical results.
//
// The state must be fresh (nothing pushed yet), and the snapshot must be
// self-consistent: a ring that has seen `pushed` values retains exactly
// min(pushed, window) of them. Inconsistent input is rejected with an error
// so a corrupted snapshot cannot silently seed a diverging detector.
func (k *IncrementalKS) RestoreWindow(values []float64, pushed int) error {
	if k.n != 0 {
		return fmt.Errorf("stats: incremental ks: restore into a state with %d values already pushed", k.n)
	}
	if pushed < 0 {
		return fmt.Errorf("stats: incremental ks: negative push count %d", pushed)
	}
	want := pushed
	if c := cap(k.ring); pushed > c {
		want = c
	}
	if len(values) != want {
		return fmt.Errorf("stats: incremental ks: snapshot retains %d values but %d pushed into a window of %d wants %d",
			len(values), pushed, cap(k.ring), want)
	}
	for _, v := range values {
		k.Push(v)
	}
	k.n = pushed
	return nil
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
