package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSketchEps is the rank-error budget a sketch is built with when the
// caller does not pick one. At 0.05 the sketch keeps k = ⌈2/ε⌉ = 40 anchors,
// which stores the paper apps' ~19–24-window baselines exactly (n ≤ k) while
// compressing the multi-hundred-sample baselines wide deployments retain.
const DefaultSketchEps = 0.05

// ECDFSketch is a bounded-memory summary of a fixed sample's empirical CDF
// with a deterministic, provable rank-error bound:
//
//	0 ≤ F(x) − F̃(x) ≤ (⌈n/k⌉−1)/n < ε  for every x, where k = ⌈2/ε⌉.
//
// Construction keeps k anchor order statistics at target ranks ⌈j·n/k⌉,
// j = 1..k, each stored with its exact rank (the count of sample values ≤ the
// anchor). Between anchors the sketch answers with the rank of the last
// anchor at or below x, so the estimate is one-sided (never above the true
// ECDF) and the gap is bounded by the largest rank step between consecutive
// targets. When n ≤ k every distinct value is an anchor and the sketch
// reproduces the exact ECDF; SketchCutoff reports that threshold.
//
// Unlike randomized KLL/t-digest summaries the construction draws no
// randomness, so sketch-backed detectors stay bit-reproducible across runs —
// the same determinism contract the exact path is held to (and that
// causalfl-vet's rand-flow pass enforces for this package).
type ECDFSketch struct {
	// n is the original sample size; ranks are exact counts out of n.
	n   int
	eps float64
	// cuts are the distinct anchor values, ascending; the last is the sample
	// maximum. ranks[i] is the exact number of sample values ≤ cuts[i], so
	// ranks[len-1] == n.
	cuts  []float64
	ranks []int
}

// SketchCutoff returns k = ⌈2/ε⌉, the anchor budget for error bound eps. A
// sample of size n ≤ k is stored exactly (zero rank error), which is what
// makes sketch↔exact verdict parity provable at paper scale.
func SketchCutoff(eps float64) int {
	if eps <= 0 || eps >= 1 {
		return 0
	}
	return int(math.Ceil(2 / eps))
}

// NewECDFSketch summarizes sample with rank-error budget eps in (0,1). The
// input is copied; every value must be finite (a baseline with NaN/±Inf holes
// has no well-defined order statistics to anchor on — sanitize first).
func NewECDFSketch(sample []float64, eps float64) (*ECDFSketch, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("stats: sketch of empty sample")
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("stats: sketch eps must be in (0,1), got %v", eps)
	}
	for _, v := range sample {
		if !isFinite(v) {
			return nil, fmt.Errorf("stats: sketch sample must be finite, got %v", v)
		}
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return newECDFSketchSorted(s, eps), nil
}

// newECDFSketchSorted builds the sketch over an already-sorted finite sample.
// The slice is only read during construction and not retained.
func newECDFSketchSorted(sorted []float64, eps float64) *ECDFSketch {
	n := len(sorted)
	k := SketchCutoff(eps)
	sk := &ECDFSketch{n: n, eps: eps}
	if n <= k {
		// Small sample: one anchor per distinct value, exact ECDF.
		for i := 0; i < n; i++ {
			if i+1 < n && sorted[i+1] == sorted[i] { //vet:allow floateq -- duplicate collapse over exact stored values
				continue
			}
			sk.cuts = append(sk.cuts, sorted[i])
			sk.ranks = append(sk.ranks, i+1)
		}
		return sk
	}
	sk.cuts = make([]float64, 0, k)
	sk.ranks = make([]int, 0, k)
	for j := 1; j <= k; j++ {
		// Target rank ⌈j·n/k⌉ in 1-based order statistics; j=k hits n, so
		// the last anchor is always the sample maximum.
		t := (j*n + k - 1) / k
		v := sorted[t-1]
		// Exact rank of v: advance to the last index holding v. Duplicated
		// anchors collapse onto one cut carrying that rank.
		r := t
		for r < n && sorted[r] == v { //vet:allow floateq -- duplicate run walk over exact stored values
			r++
		}
		if m := len(sk.cuts); m > 0 && sk.cuts[m-1] == v { //vet:allow floateq -- duplicate collapse over exact stored values
			sk.ranks[m-1] = r
			continue
		}
		sk.cuts = append(sk.cuts, v)
		sk.ranks = append(sk.ranks, r)
	}
	return sk
}

// At returns F̃(x), the sketched estimate of P(X ≤ x).
func (s *ECDFSketch) At(x float64) float64 {
	// First anchor with value > x; the previous one carries the rank.
	idx := sort.Search(len(s.cuts), func(i int) bool { return s.cuts[i] > x })
	if idx == 0 {
		return 0
	}
	return float64(s.ranks[idx-1]) / float64(s.n)
}

// N returns the summarized sample's size.
func (s *ECDFSketch) N() int { return s.n }

// Size returns the number of retained anchors — the sketch's memory footprint
// in values, at most ⌈2/ε⌉ regardless of n.
func (s *ECDFSketch) Size() int { return len(s.cuts) }

// Eps returns the error budget the sketch was built with.
func (s *ECDFSketch) Eps() float64 { return s.eps }

// ErrorBound returns the sketch's actual worst-case rank error
// (⌈n/k⌉−1)/n — zero when the sample fit entirely (n ≤ k), always strictly
// below the requested eps otherwise. FuzzSketchRankError asserts At never
// deviates from the exact ECDF by more than this.
func (s *ECDFSketch) ErrorBound() float64 {
	k := SketchCutoff(s.eps)
	if s.n <= k {
		return 0
	}
	step := (s.n + k - 1) / k
	return float64(step-1) / float64(s.n)
}

// ksDistanceSketch is ksDistanceSorted with the second sample replaced by its
// sketch: D̃ = sup_x |F_a(x) − F̃_b(x)| over the merged support of a and the
// anchor cuts. Because F̃_b is within ErrorBound of F_b everywhere,
// |D̃ − D| ≤ ErrorBound; when the sketch is exact (n ≤ k) the walk visits the
// same step function and D̃ == D bit for bit.
func ksDistanceSketch(a []float64, b *ECDFSketch) float64 {
	var d float64
	i, j := 0, 0
	na, nb := float64(len(a)), float64(b.n)
	for i < len(a) && j < len(b.cuts) {
		x := a[i]
		if b.cuts[j] < x {
			x = b.cuts[j]
		}
		for i < len(a) && a[i] <= x {
			i++
		}
		for j < len(b.cuts) && b.cuts[j] <= x {
			j++
		}
		fb := 0.0
		if j > 0 {
			fb = float64(b.ranks[j-1]) / nb
		}
		diff := abs(float64(i)/na - fb)
		if diff > d {
			d = diff
		}
	}
	fb := 0.0
	if j > 0 {
		fb = float64(b.ranks[j-1]) / nb
	}
	diff := abs(float64(i)/na - fb)
	if diff > d {
		d = diff
	}
	return d
}

// ksPValueSketch mirrors ksPValueSorted with the baseline side sketched: the
// D statistic comes from the sketch walk and the effective-sample-size
// arithmetic uses the original baseline size the sketch summarizes, so an
// exact-regime sketch (n ≤ k) yields a bit-identical p-value.
func ksPValueSketch(a []float64, b *ECDFSketch) float64 {
	d := ksDistanceSketch(a, b)
	n := float64(len(a))
	m := float64(b.n)
	ne := n * m / (n + m)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return kolmogorovQ(lambda)
}
