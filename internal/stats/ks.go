package stats

import (
	"fmt"
	"math"
)

// TwoSampleTest decides whether two samples come from the same distribution.
// Implementations return the p-value for the null hypothesis "x and y are
// equally distributed"; callers reject the null when p < alpha.
type TwoSampleTest interface {
	PValue(x, y []float64) (float64, error)
	Name() string
}

// KSTest is the two-sample Kolmogorov–Smirnov test used by the paper
// (Algorithms 1 and 2 decide F̂_s ≠ F̂_0 with it). The p-value uses the
// asymptotic Kolmogorov distribution with the Stephens small-sample
// correction, which is accurate for the ~19-window samples the pipeline
// produces from ten-minute collection periods.
type KSTest struct{}

var _ TwoSampleTest = KSTest{}

// Name implements TwoSampleTest.
func (KSTest) Name() string { return "ks" }

// Statistic returns the KS statistic D between samples x and y.
func (KSTest) Statistic(x, y []float64) (float64, error) {
	ex, err := NewECDF(x)
	if err != nil {
		return 0, fmt.Errorf("stats: ks first sample: %w", err)
	}
	ey, err := NewECDF(y)
	if err != nil {
		return 0, fmt.Errorf("stats: ks second sample: %w", err)
	}
	return KSDistance(ex, ey), nil
}

// PValue implements TwoSampleTest. Unlike Statistic it does not build ECDF
// values: the samples are copied into pooled scratch buffers, sorted there,
// and the buffers are reused across calls — the per-call allocations on the
// learner's (service × metric × intervention) matrix would otherwise
// dominate the parallel pipeline's garbage-collection budget.
func (t KSTest) PValue(x, y []float64) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("stats: ks first sample: stats: ECDF of empty sample")
	}
	if len(y) == 0 {
		return 0, fmt.Errorf("stats: ks second sample: stats: ECDF of empty sample")
	}
	s := borrowScratch(x, y)
	p := ksPValueSorted(s.a, s.b)
	s.release()
	return p, nil
}

// ksPValueSorted is the KS p-value over two already-sorted samples. It is the
// single arithmetic path shared by KSTest.PValue and IncrementalKS, so the
// streaming engine's per-hop p-values are bit-identical to the batch test's.
func ksPValueSorted(a, b []float64) float64 {
	d := ksDistanceSorted(a, b)
	n := float64(len(a))
	m := float64(len(b))
	ne := n * m / (n + m)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return kolmogorovQ(lambda)
}

// kolmogorovQ evaluates Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} exp(-2 j² λ²), the
// complementary CDF of the Kolmogorov distribution. Q(0) = 1 and Q(∞) = 0.
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const (
		eps1    = 1e-6  // term ratio convergence
		eps2    = 1e-12 // absolute term convergence
		maxIter = 200
	)
	a2 := -2 * lambda * lambda
	sum := 0.0
	termPrev := 0.0
	sign := 1.0
	for j := 1; j <= maxIter; j++ {
		term := sign * math.Exp(a2*float64(j)*float64(j))
		sum += term
		at := math.Abs(term)
		if at <= eps1*termPrev || at <= eps2*sum {
			p := 2 * sum
			switch {
			case p < 0:
				return 0
			case p > 1:
				return 1
			default:
				return p
			}
		}
		termPrev = at
		sign = -sign
	}
	// Failed to converge: λ is tiny, distributions are indistinguishable.
	return 1
}

// CriticalValue returns the approximate critical D above which the KS test
// rejects at significance alpha for sample sizes n and m, using the
// large-sample c(α)·sqrt((n+m)/(n·m)) formula.
func CriticalValue(alpha float64, n, m int) (float64, error) {
	if n <= 0 || m <= 0 {
		return 0, fmt.Errorf("stats: critical value needs positive sample sizes, got n=%d m=%d", n, m)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: alpha must be in (0,1), got %v", alpha)
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	fn, fm := float64(n), float64(m)
	return c * math.Sqrt((fn+fm)/(fn*fm)), nil
}

// Differs is a convenience helper: it reports whether test rejects the null
// hypothesis that x and y are equally distributed at level alpha.
func Differs(test TwoSampleTest, x, y []float64, alpha float64) (bool, error) {
	if alpha <= 0 || alpha >= 1 {
		return false, fmt.Errorf("stats: alpha must be in (0,1), got %v", alpha)
	}
	p, err := test.PValue(x, y)
	if err != nil {
		return false, err
	}
	return p < alpha, nil
}
