package stats

import (
	"fmt"
	"sort"
)

// DefaultRelTol is the default practical-equivalence tolerance of
// GuardedTest: samples whose trimmed means differ by less than 20% are
// treated as operationally identical.
const DefaultRelTol = 0.20

// DefaultTrim is the fraction trimmed from each tail when computing the
// robust location estimate.
const DefaultTrim = 0.1

// GuardedTest wraps a two-sample test with a practical-equivalence guard:
// when the robust locations (trimmed means) of the two samples are within a
// relative tolerance of each other, the samples are declared equal (p = 1)
// without consulting the inner test.
//
// Rationale: the KS test measures *statistical* significance only. Two kinds
// of operationally meaningless differences plague black-box service metrics:
//
//   - near-deterministic series (a store's fixed per-op cost, a ratio whose
//     numerator and denominator move in lockstep), where a microscopic
//     displacement of the distribution's atoms yields a huge KS statistic;
//   - pure variance scaling under load changes (Poisson counts at 4× load
//     have half the relative spread), which shifts no location at all.
//
// Production anomaly detection always pairs significance with a minimum
// effect size; this wrapper is that guard. Faults of the paper's magnitude —
// rates collapsing to zero, error logs appearing from nothing — change the
// trimmed mean by far more than any reasonable tolerance.
type GuardedTest struct {
	// Inner is the significance test consulted when the guard does not
	// declare practical equivalence.
	Inner TwoSampleTest
	// RelTol is the relative location-difference tolerance. Zero means
	// DefaultRelTol.
	RelTol float64
}

var _ TwoSampleTest = GuardedTest{}

// Name implements TwoSampleTest.
func (g GuardedTest) Name() string {
	inner := "nil"
	if g.Inner != nil {
		inner = g.Inner.Name()
	}
	return "guarded-" + inner
}

// PValue implements TwoSampleTest.
func (g GuardedTest) PValue(x, y []float64) (float64, error) {
	if g.Inner == nil {
		return 0, fmt.Errorf("stats: guarded test has no inner test")
	}
	if len(x) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("stats: guarded test needs non-empty samples (|x|=%d |y|=%d)", len(x), len(y))
	}
	tol := g.RelTol
	if tol == 0 {
		tol = DefaultRelTol
	}
	if tol < 0 {
		return 0, fmt.Errorf("stats: negative relative tolerance %v", tol)
	}
	if practicallyEqual(x, y, tol) {
		return 1, nil
	}
	return g.Inner.PValue(x, y)
}

// practicallyEqual reports whether the trimmed means of x and y differ by at
// most tol relative to the larger magnitude. Two all-zero samples are equal;
// zero-versus-nonzero always differs (relative difference 1). Both samples
// are sorted into one pooled scratch, so the guard adds no allocations to
// the hot test path.
func practicallyEqual(x, y []float64, tol float64) bool {
	s := borrowScratch(x, y)
	eq := practicallyEqualSorted(s.a, s.b, tol)
	s.release()
	return eq
}

// practicallyEqualSorted is practicallyEqual over already-sorted samples —
// the arithmetic path shared with IncrementalKS, whose window is kept sorted
// between hops.
func practicallyEqualSorted(a, b []float64, tol float64) bool {
	tx := trimmedMeanSorted(a, DefaultTrim)
	ty := trimmedMeanSorted(b, DefaultTrim)
	diff := abs(tx - ty)
	scale := abs(tx)
	if s := abs(ty); s > scale {
		scale = s
	}
	if scale == 0 {
		return true
	}
	return diff <= tol*scale
}

// trimmedMean averages the sample after dropping the trim fraction from each
// tail (at least keeping one central value).
func trimmedMean(sample []float64, trim float64) float64 {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return trimmedMeanSorted(s, trim)
}

// trimmedMeanSorted is trimmedMean over an already-sorted sample.
func trimmedMeanSorted(s []float64, trim float64) float64 {
	drop := int(float64(len(s)) * trim)
	if 2*drop >= len(s) {
		drop = (len(s) - 1) / 2
	}
	s = s[drop : len(s)-drop]
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}
