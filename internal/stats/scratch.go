package stats

import (
	"slices"
	"sync"
)

// sortFloat64s sorts in place. slices.Sort compiles to a monomorphized
// pdqsort without sort.Interface call overhead — measurably faster than
// sort.Float64s on the ~19-element windows the pipeline produces.
func sortFloat64s(s []float64) { slices.Sort(s) }

// scratch holds the reusable sort buffers of the hot two-sample paths. The
// learner's KS matrix calls PValue once per (service × metric × intervention)
// cell; without pooling every call allocates and garbage-collects two sample
// copies, which dominates the profile once campaigns fan out across workers.
// A sync.Pool gives each worker goroutine an effectively private buffer pair
// with no coordination on the hot path.
type scratch struct {
	a, b []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// borrowScratch returns a scratch with a and b holding sorted copies of x
// and y. Callers must release() it before returning and must not let the
// slices escape.
func borrowScratch(x, y []float64) *scratch {
	s := scratchPool.Get().(*scratch)
	s.a = append(s.a[:0], x...)
	s.b = append(s.b[:0], y...)
	sortFloat64s(s.a)
	sortFloat64s(s.b)
	return s
}

// release returns the scratch (and its grown capacity) to the pool.
func (s *scratch) release() { scratchPool.Put(s) }
