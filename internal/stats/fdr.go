package stats

import (
	"fmt"
	"sort"
)

// BenjaminiHochberg applies the Benjamini–Hochberg step-up procedure to a
// family of p-values, controlling the false discovery rate at level q. It
// returns a parallel slice marking the rejected hypotheses.
//
// The localization pipeline runs one two-sample test per service per metric
// — dozens of simultaneous hypotheses. Per-test α controls each test's
// false-positive rate but lets the *family-wise* false-anomaly count grow
// with the application; FDR control adapts the threshold to how much signal
// is actually present: under a real fault many tiny p-values appear and the
// effective threshold loosens, while on healthy data it tightens toward
// q/m. Exposed as an alternative decision procedure (core.WithFDR).
func BenjaminiHochberg(pvalues []float64, q float64) ([]bool, error) {
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("stats: FDR level must be in (0,1), got %v", q)
	}
	m := len(pvalues)
	if m == 0 {
		return nil, nil
	}
	for i, p := range pvalues {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("stats: p-value %d out of range: %v", i, p)
		}
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pvalues[order[a]] < pvalues[order[b]] })

	// Largest k with p_(k) <= k/m * q.
	cutoff := -1
	for rank, idx := range order {
		k := float64(rank + 1)
		if pvalues[idx] <= k/float64(m)*q {
			cutoff = rank
		}
	}
	rejected := make([]bool, m)
	for rank := 0; rank <= cutoff; rank++ {
		rejected[order[rank]] = true
	}
	return rejected, nil
}
