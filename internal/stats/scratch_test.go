package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestPValueMatchesECDFPath pins the pooled fast path to the reference ECDF
// implementation: same statistic, same p-value, no mutation of the inputs.
func TestPValueMatchesECDFPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ks KSTest
	for round := 0; round < 200; round++ {
		n := 2 + rng.Intn(40)
		m := 2 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64() + rng.Float64()
		}
		xCopy := append([]float64(nil), x...)
		yCopy := append([]float64(nil), y...)

		d, err := ks.Statistic(x, y)
		if err != nil {
			t.Fatal(err)
		}
		ne := float64(n) * float64(m) / float64(n+m)
		sq := math.Sqrt(ne)
		want := kolmogorovQ((sq + 0.12 + 0.11/sq) * d)

		got, err := ks.PValue(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: pooled PValue %v != ECDF-path %v", round, got, want)
		}
		for i := range x {
			if x[i] != xCopy[i] {
				t.Fatal("PValue mutated its first sample")
			}
		}
		for i := range y {
			if y[i] != yCopy[i] {
				t.Fatal("PValue mutated its second sample")
			}
		}
	}
}

// TestGuardedTestDoesNotMutateSamples guards the pooled trimmed-mean path.
func TestGuardedTestDoesNotMutateSamples(t *testing.T) {
	x := []float64{5, 3, 4, 1, 2}
	y := []float64{9, 7, 8, 6, 10}
	test := GuardedTest{Inner: KSTest{}}
	if _, err := test.PValue(x, y); err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 || x[4] != 2 || y[0] != 9 || y[4] != 10 {
		t.Fatalf("guarded test mutated inputs: x=%v y=%v", x, y)
	}
}

func BenchmarkMicro_KSTestPooled(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 19)
	y := make([]float64, 19)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 0.5
	}
	var ks KSTest
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ks.PValue(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
