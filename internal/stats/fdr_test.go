package stats

import (
	"math/rand"
	"testing"
)

func TestBenjaminiHochbergTextbook(t *testing.T) {
	// Classic example: with q=0.05 and m=6, the largest k with
	// p_(k) <= k/6 * 0.05 decides.
	pvals := []float64{0.001, 0.008, 0.039, 0.041, 0.042, 0.60}
	rejected, err := BenjaminiHochberg(pvals, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds: 0.0083, 0.0167, 0.025, 0.033, 0.0417, 0.05.
	// p_(5)=0.042 > 0.0417, p_(4)=0.041 > 0.033... largest satisfied rank
	// is k=2 (0.008 <= 0.0167).
	want := []bool{true, true, false, false, false, false}
	for i := range want {
		if rejected[i] != want[i] {
			t.Fatalf("rejected = %v, want %v", rejected, want)
		}
	}
}

func TestBenjaminiHochbergStepUpRescuesBorderline(t *testing.T) {
	// The step-up property: a borderline p-value is rejected when enough
	// smaller ones accompany it.
	alone := []float64{0.04, 0.9, 0.9, 0.9}
	rej, err := BenjaminiHochberg(alone, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rej[0] {
		t.Fatal("0.04 alone among 4 tests should not clear 0.05/4")
	}
	accompanied := []float64{0.04, 0.001, 0.002, 0.003}
	rej, err = BenjaminiHochberg(accompanied, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rej[0] {
		t.Fatal("0.04 with three strong companions should be rejected (k=4 threshold 0.05)")
	}
}

func TestBenjaminiHochbergAllNull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	falseDiscoveries := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		pvals := make([]float64, 30)
		for i := range pvals {
			pvals[i] = rng.Float64()
		}
		rej, err := BenjaminiHochberg(pvals, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rej {
			if r {
				falseDiscoveries++
				break // count trials with any discovery
			}
		}
	}
	// Under the global null, P(any rejection) <= q = 5%; allow slack.
	if falseDiscoveries > 25 {
		t.Fatalf("BH made discoveries in %d/%d all-null trials", falseDiscoveries, trials)
	}
}

func TestBenjaminiHochbergValidation(t *testing.T) {
	if _, err := BenjaminiHochberg([]float64{0.5}, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := BenjaminiHochberg([]float64{1.5}, 0.05); err == nil {
		t.Error("p>1 accepted")
	}
	rej, err := BenjaminiHochberg(nil, 0.05)
	if err != nil || rej != nil {
		t.Errorf("empty input: %v, %v", rej, err)
	}
}
