package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGuardedTestSuppressesMicroShifts(t *testing.T) {
	// Two near-deterministic samples whose atoms moved microscopically:
	// raw KS rejects loudly, the guard declares practical equivalence.
	x := []float64{0.000300, 0.000300, 0.000301, 0.000300, 0.000300, 0.000301}
	y := []float64{0.000299, 0.000300, 0.000299, 0.000299, 0.000300, 0.000299}
	var ks KSTest
	rawP, err := ks.PValue(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if rawP >= 0.05 {
		t.Skipf("fixture no longer triggers raw KS (p=%v); rebuild it", rawP)
	}
	g := GuardedTest{Inner: KSTest{}}
	p, err := g.PValue(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("guard let a micro-shift through (p=%v)", p)
	}
}

func TestGuardedTestPassesRealShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]float64, 19)
	collapsed := make([]float64, 19) // the fault signature: rate -> 0
	appeared := make([]float64, 19)  // error logs from nothing
	for i := range base {
		base[i] = 10 + rng.NormFloat64()
		collapsed[i] = 0
		appeared[i] = 0
	}
	g := GuardedTest{Inner: KSTest{}}
	if p, err := g.PValue(base, collapsed); err != nil || p >= 0.05 {
		t.Errorf("collapse-to-zero not detected (p=%v err=%v)", p, err)
	}
	if p, err := g.PValue(appeared, base); err != nil || p >= 0.05 {
		t.Errorf("appear-from-zero not detected (p=%v err=%v)", p, err)
	}
}

func TestGuardedTestSuppressesVarianceOnlyChange(t *testing.T) {
	// Same mean, half the spread — the 4x-load signature on a ratio
	// metric. The guard must not flag it.
	rng := rand.New(rand.NewSource(2))
	wide := make([]float64, 19)
	narrow := make([]float64, 19)
	for i := range wide {
		wide[i] = 100 + rng.NormFloat64()*10
		narrow[i] = 100 + rng.NormFloat64()*5
	}
	g := GuardedTest{Inner: KSTest{}}
	p, err := g.PValue(wide, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.05 {
		t.Fatalf("variance-only change flagged as anomaly (p=%v)", p)
	}
}

func TestGuardedTestBothZeroEqual(t *testing.T) {
	g := GuardedTest{Inner: KSTest{}}
	zeros := []float64{0, 0, 0, 0}
	p, err := g.PValue(zeros, zeros)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("all-zero samples not equal (p=%v)", p)
	}
}

func TestGuardedTestValidation(t *testing.T) {
	g := GuardedTest{}
	if _, err := g.PValue([]float64{1}, []float64{1}); err == nil {
		t.Error("nil inner test accepted")
	}
	g = GuardedTest{Inner: KSTest{}}
	if _, err := g.PValue(nil, []float64{1}); err == nil {
		t.Error("empty sample accepted")
	}
	g = GuardedTest{Inner: KSTest{}, RelTol: -1}
	if _, err := g.PValue([]float64{1}, []float64{1}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestGuardedTestName(t *testing.T) {
	if got := (GuardedTest{Inner: KSTest{}}).Name(); got != "guarded-ks" {
		t.Errorf("Name = %q", got)
	}
	if got := (GuardedTest{}).Name(); got != "guarded-nil" {
		t.Errorf("Name = %q", got)
	}
}

func TestTrimmedMean(t *testing.T) {
	// 10% trim on 10 values drops one from each end.
	s := []float64{-1000, 1, 2, 3, 4, 5, 6, 7, 8, 1000}
	if got := trimmedMean(s, 0.1); got != 4.5 {
		t.Fatalf("trimmedMean = %v, want 4.5 (outliers dropped)", got)
	}
	// Tiny samples keep at least the central value.
	if got := trimmedMean([]float64{7}, 0.4); got != 7 {
		t.Fatalf("single-value trimmed mean = %v", got)
	}
	if got := trimmedMean([]float64{1, 3}, 0.5); got != 2 {
		t.Fatalf("two-value trimmed mean = %v, want 2", got)
	}
}

// Property: the guard is symmetric and scaling both samples by a positive
// constant does not change the decision.
func TestGuardedTestScaleInvarianceProperty(t *testing.T) {
	g := GuardedTest{Inner: KSTest{}}
	rng := rand.New(rand.NewSource(3))
	prop := func(shiftPct uint8, scaleSeed uint8) bool {
		scale := 0.5 + float64(scaleSeed)/32.0
		shift := float64(shiftPct%60) / 100.0
		x := make([]float64, 15)
		y := make([]float64, 15)
		for i := range x {
			x[i] = 10 + rng.NormFloat64()*0.1
			y[i] = 10*(1+shift) + rng.NormFloat64()*0.1
		}
		px, err1 := g.PValue(x, y)
		py, err2 := g.PValue(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		xs := make([]float64, len(x))
		ys := make([]float64, len(y))
		for i := range x {
			xs[i] = x[i] * scale
			ys[i] = y[i] * scale
		}
		ps, err3 := g.PValue(xs, ys)
		if err3 != nil {
			return false
		}
		return (px < 0.05) == (py < 0.05) && (px < 0.05) == (ps < 0.05)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
