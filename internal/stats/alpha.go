package stats

// Significance-level constants. Every alpha / p-value threshold in the
// project references a named constant here; bare numeric significance
// literals elsewhere are rejected by the magic-alpha analyzer
// (internal/analysis), which keeps the statistical configuration auditable
// in one place.
const (
	// DefaultAlpha is the project-wide default significance level for the
	// two-sample tests (the paper's KS decisions, §V-A).
	DefaultAlpha = 0.05
	// StrictAlpha is the conservative level used when many comparisons
	// share one decision and no FDR correction is applied.
	StrictAlpha = 0.01
)
