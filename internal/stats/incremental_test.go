package stats

import (
	"math"
	"math/rand"
	"testing"
)

// sameValues compares two float slices by bit pattern, so NaN entries
// compare equal to themselves.
func sameValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// materialFinite drops non-finite entries, preserving order — the same
// filtering the tolerant detection path applies before testing.
func materialFinite(s []float64) []float64 {
	out := make([]float64, 0, len(s))
	for _, v := range s {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}

func TestIncrementalKSValidation(t *testing.T) {
	if _, err := NewIncrementalKS(nil, 8); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if _, err := NewIncrementalKS([]float64{1, 2}, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	k, err := NewIncrementalKS([]float64{3, 1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.D(); err == nil {
		t.Fatal("D on empty window should error")
	}
	if _, err := k.PValue(); err == nil {
		t.Fatal("PValue on empty window should error")
	}
	if _, err := k.GuardedPValue(0); err == nil {
		t.Fatal("GuardedPValue on empty window should error")
	}
	k.Push(1)
	if _, err := k.GuardedPValue(-0.5); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

// TestIncrementalKSMatchesBatch drives a long push sequence through a small
// window and checks, after every push, that the incremental statistics equal
// the batch tests run on the materialized window.
func TestIncrementalKSMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	baseline := make([]float64, 19)
	for i := range baseline {
		baseline[i] = rng.NormFloat64()
	}
	const window = 9
	k, err := NewIncrementalKS(baseline, window)
	if err != nil {
		t.Fatal(err)
	}
	var pushed []float64
	for step := 0; step < 200; step++ {
		v := rng.NormFloat64() * 2
		switch step % 17 {
		case 5:
			v = math.NaN()
		case 11:
			v = math.Inf(1)
		}
		k.Push(v)
		pushed = append(pushed, v)
		raw := pushed
		if len(raw) > window {
			raw = raw[len(raw)-window:]
		}
		if got := k.Window(); !sameValues(got, raw) {
			t.Fatalf("step %d: window %v, want %v", step, got, raw)
		}
		finite := materialFinite(raw)
		if k.Len() != len(finite) {
			t.Fatalf("step %d: Len %d, want %d", step, k.Len(), len(finite))
		}
		if len(finite) == 0 {
			continue
		}
		wantD, err := (KSTest{}).Statistic(finite, baseline)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := k.D()
		if err != nil {
			t.Fatal(err)
		}
		if gotD != wantD { //vet:allow floateq -- the equivalence contract is bitwise
			t.Fatalf("step %d: D=%v, batch %v", step, gotD, wantD)
		}
		wantP, err := (KSTest{}).PValue(finite, baseline)
		if err != nil {
			t.Fatal(err)
		}
		gotP, err := k.PValue()
		if err != nil {
			t.Fatal(err)
		}
		if gotP != wantP { //vet:allow floateq -- the equivalence contract is bitwise
			t.Fatalf("step %d: p=%v, batch %v", step, gotP, wantP)
		}
		wantG, err := (GuardedTest{Inner: KSTest{}}).PValue(finite, baseline)
		if err != nil {
			t.Fatal(err)
		}
		gotG, err := k.GuardedPValue(0)
		if err != nil {
			t.Fatal(err)
		}
		if gotG != wantG { //vet:allow floateq -- the equivalence contract is bitwise
			t.Fatalf("step %d: guarded p=%v, batch %v", step, gotG, wantG)
		}
	}
}

// TestIncrementalKSGuardTolerance checks the custom-tolerance guarded path
// against the batch guard.
func TestIncrementalKSGuardTolerance(t *testing.T) {
	baseline := []float64{10, 10.5, 11, 10.2, 10.8, 10.1, 10.9, 10.4}
	k, err := NewIncrementalKS(baseline, 6)
	if err != nil {
		t.Fatal(err)
	}
	stream := []float64{12, 12.5, 11.8, 12.2, 12.1, 12.4}
	for _, v := range stream {
		k.Push(v)
	}
	for _, tol := range []float64{0.05, 0.20, 0.50} {
		want, err := (GuardedTest{Inner: KSTest{}, RelTol: tol}).PValue(stream, baseline)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.GuardedPValue(tol)
		if err != nil {
			t.Fatal(err)
		}
		if got != want { //vet:allow floateq -- the equivalence contract is bitwise
			t.Fatalf("tol %v: guarded p=%v, batch %v", tol, got, want)
		}
	}
}

// FuzzIncrementalKS cross-checks the incremental D-statistic and p-values
// against stats.KS on the same data for fuzzer-chosen baselines, window
// capacities and push sequences.
func FuzzIncrementalKS(f *testing.F) {
	f.Add(int64(1), uint8(19), uint8(8), uint16(40))
	f.Add(int64(42), uint8(3), uint8(1), uint16(7))
	f.Add(int64(99), uint8(64), uint8(31), uint16(200))
	f.Fuzz(func(t *testing.T, seed int64, baseN, window uint8, steps uint16) {
		bn := int(baseN)%64 + 1
		w := int(window)%32 + 1
		n := int(steps) % 300
		rng := rand.New(rand.NewSource(seed))
		baseline := make([]float64, bn)
		for i := range baseline {
			baseline[i] = rng.NormFloat64() * 10
		}
		k, err := NewIncrementalKS(baseline, w)
		if err != nil {
			t.Fatal(err)
		}
		var pushed []float64
		for step := 0; step < n; step++ {
			var v float64
			switch rng.Intn(10) {
			case 0:
				v = math.NaN()
			case 1:
				v = math.Inf(1 - 2*rng.Intn(2))
			case 2:
				// Duplicate an already-pushed value to stress tied
				// insert/evict in the order-statistics index.
				if len(pushed) > 0 {
					v = pushed[rng.Intn(len(pushed))]
				}
			default:
				v = rng.NormFloat64() * 5
			}
			k.Push(v)
			pushed = append(pushed, v)
			raw := pushed
			if len(raw) > w {
				raw = raw[len(raw)-w:]
			}
			finite := materialFinite(raw)
			if k.Len() != len(finite) {
				t.Fatalf("step %d: Len %d, want %d", step, k.Len(), len(finite))
			}
			if len(finite) == 0 {
				continue
			}
			wantD, err := (KSTest{}).Statistic(finite, baseline)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := k.D()
			if err != nil {
				t.Fatal(err)
			}
			if gotD != wantD { //vet:allow floateq -- the equivalence contract is bitwise
				t.Fatalf("step %d: D=%v, batch %v", step, gotD, wantD)
			}
			wantP, err := (KSTest{}).PValue(finite, baseline)
			if err != nil {
				t.Fatal(err)
			}
			gotP, err := k.PValue()
			if err != nil {
				t.Fatal(err)
			}
			if gotP != wantP { //vet:allow floateq -- the equivalence contract is bitwise
				t.Fatalf("step %d: p=%v, batch %v", step, gotP, wantP)
			}
			wantG, err := (GuardedTest{Inner: KSTest{}}).PValue(finite, baseline)
			if err != nil {
				t.Fatal(err)
			}
			gotG, err := k.GuardedPValue(0)
			if err != nil {
				t.Fatal(err)
			}
			if gotG != wantG { //vet:allow floateq -- the equivalence contract is bitwise
				t.Fatalf("step %d: guarded p=%v, batch %v", step, gotG, wantG)
			}
		}
	})
}
