package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 1.0 / 3},
		{1.5, 1.0 / 3},
		{2, 2.0 / 3},
		{3, 1},
		{99, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("F(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestECDFEmptySample(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("ECDF accepted empty sample")
	}
}

func TestECDFCopiesInput(t *testing.T) {
	in := []float64{5, 1, 3}
	e, err := NewECDF(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = -100
	if e.At(0) != 0 {
		t.Fatal("ECDF aliases caller's slice")
	}
}

func TestECDFProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, v)
			}
		}
		if len(sample) == 0 {
			return true
		}
		e, err := NewECDF(sample)
		if err != nil {
			return false
		}
		// Monotone, in [0,1], hits 0 before min and 1 at max.
		sorted := make([]float64, len(sample))
		copy(sorted, sample)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			fx := e.At(x)
			if fx < prev || fx < 0 || fx > 1 {
				return false
			}
			prev = fx
		}
		below := math.Nextafter(sorted[0], math.Inf(-1))
		return e.At(sorted[len(sorted)-1]) == 1 && e.At(below) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKSDistanceIdenticalSamples(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	var ks KSTest
	d, err := ks.Statistic(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("KS distance of identical samples = %v, want 0", d)
	}
}

func TestKSDistanceDisjointSamples(t *testing.T) {
	var ks KSTest
	d, err := ks.Statistic([]float64{1, 2, 3}, []float64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("KS distance of disjoint samples = %v, want 1", d)
	}
}

func TestKSKnownValue(t *testing.T) {
	// x = {1,2,3,4}, y = {3,4,5,6}: max gap is at x<=2 where F1=0.5, F2=0.
	var ks KSTest
	d, err := ks.Statistic([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS distance = %v, want 0.5", d)
	}
}

func TestKSPValueSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rejections := 0
	const trials = 100
	var ks KSTest
	for i := 0; i < trials; i++ {
		x := make([]float64, 30)
		y := make([]float64, 30)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64()
		}
		reject, err := Differs(ks, x, y, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if reject {
			rejections++
		}
	}
	// Expected false-positive rate ~5%; allow generous slack.
	if rejections > 15 {
		t.Fatalf("KS rejected %d/%d identical-distribution pairs at alpha=0.05", rejections, trials)
	}
}

func TestKSPValueShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	detected := 0
	const trials = 50
	var ks KSTest
	for i := 0; i < trials; i++ {
		x := make([]float64, 25)
		y := make([]float64, 25)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64() + 2.0 // two-sigma shift
		}
		reject, err := Differs(ks, x, y, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if reject {
			detected++
		}
	}
	if detected < 45 {
		t.Fatalf("KS detected only %d/%d two-sigma shifts", detected, trials)
	}
}

func TestKolmogorovQBoundaries(t *testing.T) {
	if got := kolmogorovQ(0); got != 1 {
		t.Errorf("Q(0) = %v, want 1", got)
	}
	if got := kolmogorovQ(-1); got != 1 {
		t.Errorf("Q(-1) = %v, want 1", got)
	}
	if got := kolmogorovQ(10); got > 1e-10 {
		t.Errorf("Q(10) = %v, want ~0", got)
	}
	// Known value: Q(1.0) ≈ 0.27.
	if got := kolmogorovQ(1.0); math.Abs(got-0.27) > 0.01 {
		t.Errorf("Q(1.0) = %v, want ≈0.27", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := kolmogorovQ(l)
		if q > prev+1e-12 {
			t.Fatalf("Q not monotone at λ=%v: %v > %v", l, q, prev)
		}
		prev = q
	}
}

func TestKSEmptySampleRejected(t *testing.T) {
	var ks KSTest
	if _, err := ks.PValue(nil, []float64{1}); err == nil {
		t.Fatal("KS accepted empty first sample")
	}
	if _, err := ks.PValue([]float64{1}, nil); err == nil {
		t.Fatal("KS accepted empty second sample")
	}
}

func TestDiffersValidatesAlpha(t *testing.T) {
	var ks KSTest
	for _, alpha := range []float64{0, 1, -0.5, 2} {
		if _, err := Differs(ks, []float64{1}, []float64{2}, alpha); err == nil {
			t.Fatalf("Differs accepted alpha=%v", alpha)
		}
	}
}

func TestCriticalValue(t *testing.T) {
	// Classic two-sample critical value at alpha=0.05, n=m=20:
	// 1.358*sqrt(2/20) ≈ 0.4294.
	cv, err := CriticalValue(0.05, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cv-0.4294) > 0.001 {
		t.Fatalf("critical value = %v, want ≈0.4294", cv)
	}
	if _, err := CriticalValue(0.05, 0, 20); err == nil {
		t.Fatal("CriticalValue accepted n=0")
	}
	if _, err := CriticalValue(1.5, 20, 20); err == nil {
		t.Fatal("CriticalValue accepted alpha out of range")
	}
}

// Property: KS p-value and critical-value rejection broadly agree.
func TestKSDecisionConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ks KSTest
	for trial := 0; trial < 100; trial++ {
		n := 10 + rng.Intn(30)
		m := 10 + rng.Intn(30)
		shift := float64(rng.Intn(4))
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64() + shift
		}
		d, err := ks.Statistic(x, y)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ks.PValue(x, y)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := CriticalValue(0.05, n, m)
		if err != nil {
			t.Fatal(err)
		}
		// The two decision procedures may disagree near the boundary;
		// require agreement when clearly inside/outside.
		if d > cv*1.3 && p > 0.05 {
			t.Fatalf("D=%v far above critical %v but p=%v", d, cv, p)
		}
		if d < cv*0.7 && p < 0.05 {
			t.Fatalf("D=%v far below critical %v but p=%v", d, cv, p)
		}
	}
}

func TestPermutationTestAgreesWithKS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	same := make([]float64, 20)
	shifted := make([]float64, 20)
	base := make([]float64, 20)
	for i := range base {
		base[i] = rng.NormFloat64()
		same[i] = rng.NormFloat64()
		shifted[i] = rng.NormFloat64() + 3
	}
	perm := PermutationTest{Rounds: 300, Seed: 7}
	pSame, err := perm.PValue(base, same)
	if err != nil {
		t.Fatal(err)
	}
	pShift, err := perm.PValue(base, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if pSame < 0.05 {
		t.Errorf("permutation test rejected identical distributions (p=%v)", pSame)
	}
	if pShift > 0.05 {
		t.Errorf("permutation test missed a 3-sigma shift (p=%v)", pShift)
	}
}

func TestPermutationTestDeterministic(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 3, 4, 5, 6}
	perm := PermutationTest{Rounds: 100, Seed: 42}
	p1, err := perm.PValue(x, y)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := perm.PValue(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("same seed produced p=%v then p=%v", p1, p2)
	}
}

func TestPermutationTestEmptySamples(t *testing.T) {
	perm := PermutationTest{}
	if _, err := perm.PValue(nil, []float64{1}); err == nil {
		t.Fatal("permutation test accepted empty sample")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary basics wrong: %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ≈2.138", s.StdDev)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("Summarize accepted empty sample")
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.StdDev != 0 {
		t.Fatalf("single-value summary wrong: %+v", s)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, err := PearsonCorrelation(x, yPos); err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %v (err %v), want 1", r, err)
	}
	if r, err := PearsonCorrelation(x, yNeg); err != nil || math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %v (err %v), want -1", r, err)
	}
	if r, err := PearsonCorrelation(x, []float64{3, 3, 3, 3, 3}); err != nil || r != 0 {
		t.Fatalf("constant series correlation = %v (err %v), want 0", r, err)
	}
	if _, err := PearsonCorrelation(x, []float64{1}); err == nil {
		t.Fatal("correlation accepted mismatched lengths")
	}
	if _, err := PearsonCorrelation([]float64{1}, []float64{1}); err == nil {
		t.Fatal("correlation accepted single pair")
	}
}

func TestQuantileSortedInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if got := quantileSorted(s, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
	if got := quantileSorted([]float64{3}, 0.9); got != 3 {
		t.Fatalf("single-element quantile = %v, want 3", got)
	}
}

// Property: KS distance is symmetric and within [0, 1].
func TestKSSymmetryProperty(t *testing.T) {
	prop := func(xr, yr []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					out = append(out, v)
				}
			}
			return out
		}
		x, y := clean(xr), clean(yr)
		if len(x) == 0 || len(y) == 0 {
			return true
		}
		var ks KSTest
		dxy, err1 := ks.Statistic(x, y)
		dyx, err2 := ks.Statistic(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(dxy-dyx) < 1e-12 && dxy >= 0 && dxy <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
