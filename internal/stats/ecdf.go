// Package stats provides the statistical machinery the fault-localization
// pipeline depends on: empirical CDFs, the two-sample Kolmogorov–Smirnov test
// used by Algorithms 1 and 2 of the paper, a permutation test alternative,
// and descriptive summaries used to render figures.
//
// Everything is implemented from scratch on the standard library and is
// deterministic given explicit seeds.
package stats

import (
	"fmt"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds the ECDF of sample. The input is copied; an empty sample is
// rejected because F(x) would be undefined.
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("stats: ECDF of empty sample")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns F(x) = P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	// First index with value > x.
	idx := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(idx) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Quantile returns the q-th empirical quantile (nearest-rank, q in [0,1]).
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	rank := int(q * float64(len(e.sorted)))
	if rank >= len(e.sorted) {
		rank = len(e.sorted) - 1
	}
	return e.sorted[rank]
}

// KSDistance computes the Kolmogorov–Smirnov statistic
// D = sup_x |F1(x) - F2(x)| between two ECDFs by walking their merged
// support.
func KSDistance(a, b *ECDF) float64 {
	return ksDistanceSorted(a.sorted, b.sorted)
}

// ksDistanceSorted is KSDistance over raw sorted samples. The hot KS path
// (stats.KSTest.PValue under the learner's per-cell fan-out) calls it with
// pooled scratch buffers, skipping the ECDF allocation entirely.
func ksDistanceSorted(a, b []float64) float64 {
	var d float64
	i, j := 0, 0
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] <= x {
			i++
		}
		for j < len(b) && b[j] <= x {
			j++
		}
		diff := abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	// After one sample is exhausted the difference can only shrink toward
	// |1 - F(x)| at remaining points; check the tail once.
	diff := abs(float64(i)/na - float64(j)/nb)
	if diff > d {
		d = diff
	}
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
