package stats

import (
	"fmt"
	"math"
	"sort"
)

// MannWhitneyTest is the Mann–Whitney U (Wilcoxon rank-sum) two-sample test
// with the normal approximation and tie correction. Unlike KS it is
// sensitive to location shifts only, which makes it a natural alternative
// decision rule for the pipeline: fault signatures are location collapses,
// while the variance scaling caused by load changes should be ignored.
// Exposed as an ablation (`core.WithTest`).
type MannWhitneyTest struct{}

var _ TwoSampleTest = MannWhitneyTest{}

// Name implements TwoSampleTest.
func (MannWhitneyTest) Name() string { return "mann-whitney" }

// PValue implements TwoSampleTest. It returns the two-sided p-value for the
// null hypothesis that x and y come from the same distribution against
// location-shift alternatives.
func (MannWhitneyTest) PValue(x, y []float64) (float64, error) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return 0, fmt.Errorf("stats: mann-whitney needs non-empty samples (|x|=%d |y|=%d)", n1, n2)
	}
	// Rank the pooled sample with midranks for ties.
	type obs struct {
		v     float64
		fromX bool
	}
	pooled := make([]obs, 0, n1+n2)
	for _, v := range x {
		pooled = append(pooled, obs{v: v, fromX: true})
	}
	for _, v := range y {
		pooled = append(pooled, obs{v: v})
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].v < pooled[j].v })

	n := n1 + n2
	ranks := make([]float64, n)
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		//vet:allow floateq -- midrank tie groups are defined by exact equality of observations
		for j < n && pooled[j].v == pooled[i].v {
			j++
		}
		// Midrank for the tie group [i, j).
		mid := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}

	var r1 float64
	for i, o := range pooled {
		if o.fromX {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	mean := fn1 * fn2 / 2
	fn := float64(n)
	variance := fn1 * fn2 / 12 * ((fn + 1) - tieTerm/(fn*(fn-1)))
	if variance <= 0 {
		// All values tied: the samples are indistinguishable.
		return 1, nil
	}
	// Continuity correction.
	z := (math.Abs(u1-mean) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	return 2 * normalSF(z), nil
}

// normalSF is the standard normal survival function P(Z > z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
