package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number-plus summary of one sample, enough to render the
// boxplots of the paper's Fig. 2.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes the Summary of sample.
func Summarize(sample []float64) (Summary, error) {
	if len(sample) == 0 {
		return Summary{}, fmt.Errorf("stats: summary of empty sample")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)

	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	variance := 0.0
	if len(s) > 1 {
		variance = ss / float64(len(s)-1)
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}, nil
}

// quantileSorted computes the q-th quantile of an already sorted sample with
// linear interpolation between closest ranks (type-7, the numpy default).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of sample, or 0 for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// PearsonCorrelation returns the sample correlation coefficient of the paired
// samples x and y. It is used by the observational and error-log baselines,
// which infer edges from correlation rather than intervention.
func PearsonCorrelation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: correlation needs paired samples, got %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: correlation needs at least 2 pairs, got %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		// A constant series carries no correlation information.
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
