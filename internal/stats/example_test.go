package stats_test

import (
	"fmt"

	"causalfl/internal/stats"
)

// Example demonstrates the guarded KS decision the pipeline uses: a
// microscopic displacement of a near-deterministic series is declared
// practically equal, while a collapse to zero is flagged.
func Example() {
	test := stats.GuardedTest{Inner: stats.KSTest{}}

	base := []float64{0.300, 0.300, 0.301, 0.300, 0.301, 0.300}
	wobble := []float64{0.299, 0.300, 0.299, 0.300, 0.299, 0.300}
	collapsed := []float64{0, 0, 0, 0, 0, 0}

	pWobble, err := test.PValue(base, wobble)
	if err != nil {
		panic(err)
	}
	pCollapse, err := test.PValue(base, collapsed)
	if err != nil {
		panic(err)
	}
	fmt.Printf("micro-wobble anomalous:   %v\n", pWobble < 0.05)
	fmt.Printf("collapse-to-0 anomalous:  %v\n", pCollapse < 0.05)
	// Output:
	// micro-wobble anomalous:   false
	// collapse-to-0 anomalous:  true
}
