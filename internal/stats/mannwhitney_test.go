package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMannWhitneySameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var mw MannWhitneyTest
	rejections := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		x := make([]float64, 25)
		y := make([]float64, 25)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64()
		}
		reject, err := Differs(mw, x, y, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if reject {
			rejections++
		}
	}
	if rejections > 15 {
		t.Fatalf("MW rejected %d/%d identical-distribution pairs at alpha=0.05", rejections, trials)
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var mw MannWhitneyTest
	detected := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		x := make([]float64, 20)
		y := make([]float64, 20)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64() + 1.5
		}
		reject, err := Differs(mw, x, y, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if reject {
			detected++
		}
	}
	if detected < 45 {
		t.Fatalf("MW detected only %d/%d 1.5-sigma shifts", detected, trials)
	}
}

func TestMannWhitneyIgnoresVarianceOnlyChange(t *testing.T) {
	// The property that motivates offering MW: equal medians, different
	// spreads should (mostly) not reject.
	rng := rand.New(rand.NewSource(13))
	var mw MannWhitneyTest
	rejections := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		x := make([]float64, 20)
		y := make([]float64, 20)
		for j := range x {
			x[j] = rng.NormFloat64() * 3
			y[j] = rng.NormFloat64()
		}
		reject, err := Differs(mw, x, y, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if reject {
			rejections++
		}
	}
	if rejections > 12 {
		t.Fatalf("MW rejected %d/%d variance-only changes; it should be location-sensitive only", rejections, trials)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	var mw MannWhitneyTest
	x := []float64{3, 3, 3}
	y := []float64{3, 3, 3, 3}
	p, err := mw.PValue(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("all-tied samples p = %v, want 1", p)
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Disjoint samples: U = 0, the most extreme configuration.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{11, 12, 13, 14, 15, 16, 17, 18}
	var mw MannWhitneyTest
	p, err := mw.PValue(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Normal approximation for n=m=8, U=0: z ≈ (32-0.5)/9.52 ≈ 3.31,
	// p ≈ 0.0009.
	if p > 0.01 {
		t.Fatalf("disjoint samples p = %v, want < 0.01", p)
	}
	// Symmetry.
	p2, err := mw.PValue(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-p2) > 1e-12 {
		t.Fatalf("MW not symmetric: %v vs %v", p, p2)
	}
}

func TestMannWhitneyEmptySamples(t *testing.T) {
	var mw MannWhitneyTest
	if _, err := mw.PValue(nil, []float64{1}); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestNormalSF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.96, 0.025},
		{3, 0.00135},
	}
	for _, c := range cases {
		if got := normalSF(c.z); math.Abs(got-c.want) > 0.001 {
			t.Errorf("normalSF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}
