package stats

import (
	"fmt"
	"math/rand"
)

// PermutationTest is a randomization alternative to the asymptotic KS
// p-value: it permutes the pooled sample R times and reports the fraction of
// permutations whose KS statistic is at least as extreme as the observed
// one. It is exact in expectation for any sample size (useful for the short
// windows produced by abbreviated benchmark runs) at the cost of R
// statistic evaluations.
type PermutationTest struct {
	// Rounds is the number of permutations; zero means DefaultRounds.
	Rounds int
	// Seed drives the permutation RNG so results are reproducible.
	Seed int64
}

// DefaultRounds is the number of permutations used when Rounds is zero.
const DefaultRounds = 200

var _ TwoSampleTest = PermutationTest{}

// Name implements TwoSampleTest.
func (t PermutationTest) Name() string { return "permutation-ks" }

// PValue implements TwoSampleTest.
func (t PermutationTest) PValue(x, y []float64) (float64, error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("stats: permutation test needs non-empty samples (|x|=%d |y|=%d)", len(x), len(y))
	}
	rounds := t.Rounds
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	var ks KSTest
	observed, err := ks.Statistic(x, y)
	if err != nil {
		return 0, err
	}
	pool := make([]float64, 0, len(x)+len(y))
	pool = append(pool, x...)
	pool = append(pool, y...)
	rng := rand.New(rand.NewSource(t.Seed))
	extreme := 0
	px := make([]float64, len(x))
	py := make([]float64, len(y))
	for r := 0; r < rounds; r++ {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		copy(px, pool[:len(x)])
		copy(py, pool[len(x):])
		d, err := ks.Statistic(px, py)
		if err != nil {
			return 0, err
		}
		if d >= observed {
			extreme++
		}
	}
	// The +1 correction keeps the p-value strictly positive, which avoids
	// spuriously "certain" rejections at small R.
	return (float64(extreme) + 1) / (float64(rounds) + 1), nil
}
