package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// probePoints returns the interesting query locations for a sample: every
// value, midpoints between neighbours, and points beyond both ends.
func probePoints(sample []float64) []float64 {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	pts := []float64{s[0] - 1, s[len(s)-1] + 1}
	for i, v := range s {
		pts = append(pts, v)
		if i+1 < len(s) {
			pts = append(pts, v+(s[i+1]-v)/2)
		}
	}
	return pts
}

// checkRankError asserts the sketch invariants against the exact ECDF:
// one-sided (F̃ ≤ F) and within ErrorBound, which itself must sit under eps.
func checkRankError(t *testing.T, sample []float64, eps float64) {
	t.Helper()
	sk, err := NewECDFSketch(sample, eps)
	if err != nil {
		t.Fatalf("NewECDFSketch: %v", err)
	}
	ex, err := NewECDF(sample)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	bound := sk.ErrorBound()
	if bound >= eps {
		t.Fatalf("ErrorBound %v not strictly below eps %v (n=%d)", bound, eps, len(sample))
	}
	if k := SketchCutoff(eps); sk.Size() > k {
		t.Fatalf("sketch keeps %d anchors, budget is %d", sk.Size(), k)
	}
	for _, x := range probePoints(sample) {
		f, fs := ex.At(x), sk.At(x)
		if fs > f+1e-15 {
			t.Fatalf("At(%v): sketch %v above exact %v — estimate must be one-sided", x, fs, f)
		}
		if f-fs > bound+1e-15 {
			t.Fatalf("At(%v): exact %v, sketch %v, gap %v exceeds bound %v (n=%d eps=%v)",
				x, f, fs, f-fs, bound, len(sample), eps)
		}
	}
}

func TestSketchRankErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 39, 40, 41, 64, 100, 256, 1000} {
		for _, eps := range []float64{0.01, 0.05, 0.1, 0.3} {
			uniform := make([]float64, n)
			heavy := make([]float64, n)
			ties := make([]float64, n)
			for i := range uniform {
				uniform[i] = rng.Float64() * 100
				heavy[i] = math.Exp(rng.NormFloat64() * 3)
				ties[i] = float64(rng.Intn(5))
			}
			for name, sample := range map[string][]float64{"uniform": uniform, "heavy": heavy, "ties": ties} {
				t.Run("", func(t *testing.T) {
					_ = name
					checkRankError(t, sample, eps)
				})
			}
		}
	}
}

func TestSketchExactWhenSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eps := 0.05
	k := SketchCutoff(eps)
	if k != 40 {
		t.Fatalf("SketchCutoff(0.05) = %d, want 40", k)
	}
	for _, n := range []int{1, 5, 19, 24, 40} {
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.NormFloat64()
		}
		sk, err := NewECDFSketch(sample, eps)
		if err != nil {
			t.Fatal(err)
		}
		if sk.ErrorBound() != 0 {
			t.Fatalf("n=%d <= k=%d but ErrorBound = %v, want 0", n, k, sk.ErrorBound())
		}
		ex, _ := NewECDF(sample)
		for _, x := range probePoints(sample) {
			if got, want := sk.At(x), ex.At(x); got != want { //vet:allow floateq -- lossless regime must be bit-identical
				t.Fatalf("n=%d At(%v): sketch %v != exact %v", n, x, got, want)
			}
		}
	}
}

// TestSketchDistanceWithinBound: the sketched KS statistic deviates from the
// exact statistic by at most the sketch's rank-error bound.
func TestSketchDistanceWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		nBase := 50 + rng.Intn(500)
		nWin := 1 + rng.Intn(30)
		shift := rng.Float64() * 3
		base := make([]float64, nBase)
		win := make([]float64, nWin)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		for i := range win {
			win[i] = rng.NormFloat64() + shift
		}
		sort.Float64s(base)
		sort.Float64s(win)
		eps := []float64{0.02, 0.05, 0.2}[trial%3]
		sk := newECDFSketchSorted(base, eps)
		exact := ksDistanceSorted(win, base)
		approx := ksDistanceSketch(win, sk)
		if diff := math.Abs(exact - approx); diff > sk.ErrorBound()+1e-15 {
			t.Fatalf("trial %d: |D̃−D| = %v exceeds bound %v (eps=%v n=%d)", trial, diff, sk.ErrorBound(), eps, nBase)
		}
	}
}

func TestSketchValidation(t *testing.T) {
	if _, err := NewECDFSketch(nil, 0.05); err == nil {
		t.Fatal("empty sample accepted")
	}
	for _, eps := range []float64{0, -0.1, 1, 2} {
		if _, err := NewECDFSketch([]float64{1, 2}, eps); err == nil {
			t.Fatalf("eps=%v accepted", eps)
		}
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewECDFSketch([]float64{1, bad}, 0.05); err == nil {
			t.Fatalf("non-finite sample value %v accepted", bad)
		}
	}
	if SketchCutoff(0) != 0 || SketchCutoff(1) != 0 {
		t.Fatal("SketchCutoff outside (0,1) should be 0")
	}
	if got := SketchCutoff(0.01); got != 200 {
		t.Fatalf("SketchCutoff(0.01) = %d, want 200", got)
	}
}

// TestIncrementalKSSketchLossless: with a baseline small enough for the
// lossless regime, the sketch-backed state reproduces the exact state's
// D/PValue/GuardedPValue bit for bit through pushes, evictions and non-finite
// values — the guarantee the verdict-parity suite at paper scale rests on.
func TestIncrementalKSSketchLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	base := make([]float64, 24)
	for i := range base {
		base[i] = 10 + rng.NormFloat64()
	}
	exact, err := NewIncrementalKS(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	sketched, err := NewIncrementalKSSketch(base, 8, DefaultSketchEps)
	if err != nil {
		t.Fatal(err)
	}
	if sketched.Sketch() == nil || exact.Sketch() != nil {
		t.Fatal("Sketch() accessor does not reflect the mode")
	}
	if sketched.BaselineLen() != len(base) {
		t.Fatalf("BaselineLen = %d, want %d", sketched.BaselineLen(), len(base))
	}
	for i := 0; i < 64; i++ {
		v := 10 + rng.NormFloat64()*2
		if i%11 == 5 {
			v = math.NaN()
		}
		exact.Push(v)
		sketched.Push(v)
		if exact.Len() == 0 {
			continue
		}
		de, err1 := exact.D()
		ds, err2 := sketched.D()
		if err1 != nil || err2 != nil || de != ds { //vet:allow floateq -- lossless regime must be bit-identical
			t.Fatalf("push %d: D exact=%v(%v) sketch=%v(%v)", i, de, err1, ds, err2)
		}
		pe, err1 := exact.PValue()
		ps, err2 := sketched.PValue()
		if err1 != nil || err2 != nil || pe != ps { //vet:allow floateq -- lossless regime must be bit-identical
			t.Fatalf("push %d: PValue exact=%v(%v) sketch=%v(%v)", i, pe, err1, ps, err2)
		}
		ge, err1 := exact.GuardedPValue(0)
		gs, err2 := sketched.GuardedPValue(0)
		if err1 != nil || err2 != nil || ge != gs { //vet:allow floateq -- lossless regime must be bit-identical
			t.Fatalf("push %d: GuardedPValue exact=%v(%v) sketch=%v(%v)", i, ge, err1, gs, err2)
		}
	}
}

func TestIncrementalKSSketchValidation(t *testing.T) {
	if _, err := NewIncrementalKSSketch(nil, 4, 0.05); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if _, err := NewIncrementalKSSketch([]float64{1, 2}, 0, 0.05); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := NewIncrementalKSSketch([]float64{1, 2}, 4, 1.5); err == nil {
		t.Fatal("eps 1.5 accepted")
	}
	if _, err := NewIncrementalKSSketch([]float64{1, math.NaN()}, 4, 0.05); err == nil {
		t.Fatal("non-finite baseline accepted")
	}
}

// FuzzSketchRankError fuzzes samples of arbitrary size and error budget and
// asserts the sketch's advertised bound holds pointwise against the exact
// ECDF.
func FuzzSketchRankError(f *testing.F) {
	f.Add(int64(1), 10, 50)
	f.Add(int64(2), 1, 10)
	f.Add(int64(3), 500, 900)
	f.Add(int64(4), 41, 49)
	f.Add(int64(5), 200, 5)
	f.Fuzz(func(t *testing.T, seed int64, n int, epsMilli int) {
		if n < 1 || n > 4096 {
			t.Skip()
		}
		eps := float64(epsMilli) / 1000
		if eps <= 0 || eps >= 1 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		sample := make([]float64, n)
		for i := range sample {
			switch rng.Intn(3) {
			case 0:
				sample[i] = rng.NormFloat64() * 10
			case 1:
				sample[i] = float64(rng.Intn(4)) // dense ties
			default:
				sample[i] = math.Exp(rng.NormFloat64() * 2)
			}
		}
		checkRankError(t, sample, eps)
	})
}
