package clock

import (
	"testing"
	"time"
)

func TestFakeAdvancesByStep(t *testing.T) {
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	f := &Fake{Current: base, Step: 250 * time.Millisecond}
	first := f.Now()
	second := f.Now()
	if got, want := first, base.Add(250*time.Millisecond); !got.Equal(want) {
		t.Fatalf("first reading = %v, want %v", got, want)
	}
	if got, want := second.Sub(first), 250*time.Millisecond; got != want {
		t.Fatalf("step between readings = %v, want %v", got, want)
	}
}

func TestFuncAdapter(t *testing.T) {
	fixed := time.Date(2030, 6, 15, 12, 0, 0, 0, time.UTC)
	var c Clock = Func(func() time.Time { return fixed })
	if !c.Now().Equal(fixed) {
		t.Fatalf("Func adapter returned %v, want %v", c.Now(), fixed)
	}
}

func TestWallIsMonotonicEnough(t *testing.T) {
	a := Wall.Now()
	b := Wall.Now()
	if b.Before(a) {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}
