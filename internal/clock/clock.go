// Package clock provides an injectable wall-clock source.
//
// The simulator runs on virtual time and must never consult the host clock,
// but the evaluation harness reports real (host) training and evaluation
// costs. Code that needs such timings receives a Clock instead of calling
// time.Now directly, so tests can substitute a deterministic fake and the
// determinism analyzer (internal/analysis, walltime pass) can keep the rest
// of the codebase wall-clock-free.
package clock

import (
	"sync"
	"time"
)

// Clock supplies wall-clock readings.
type Clock interface {
	Now() time.Time
}

// Func adapts a plain function to the Clock interface.
type Func func() time.Time

// Now implements Clock.
func (f Func) Now() time.Time { return f() }

// Wall reads the host's real clock. It is the one sanctioned source of wall
// time in the deterministic packages; everything else receives a Clock.
var Wall Clock = Func(time.Now) //vet:allow walltime -- the single blessed wall-clock source

// Fake is a deterministic Clock for tests: every reading advances the
// current instant by Step before returning it, so consecutive calls yield
// strictly increasing, perfectly predictable times. It is safe for
// concurrent use (the report generator reads its clock from worker
// goroutines).
type Fake struct {
	mu sync.Mutex
	// Current is the instant the previous reading returned (or the epoch
	// the fake starts from).
	Current time.Time
	// Step is how far each reading advances the clock.
	Step time.Duration
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.Current = f.Current.Add(f.Step)
	return f.Current
}
