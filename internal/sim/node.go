package sim

import (
	"fmt"
	"sort"
	"time"
)

// Node-level CPU contention. Services placed on a shared node compete for
// its cores: when more compute executions are active than cores, everyone's
// wall time stretches while the CPU *work* stays the same. This is the
// noisy-neighbor interference of multi-tenant clusters — a latent confounder
// the paper's observability model cannot attribute (the victim's occupancy
// telemetry shifts although nothing about the victim changed).
//
// Services without a Node assignment run uncontended, so existing topologies
// are unaffected unless they opt in.

// NodeConfig declares one compute node.
type NodeConfig struct {
	// Name identifies the node.
	Name string
	// Cores is the CPU capacity; fractional values model cgroup limits.
	Cores float64
}

// node tracks the live compute pressure on one node.
type node struct {
	cfg NodeConfig
	// active counts in-flight compute executions of placed services;
	// background models unmonitored co-tenants (batch jobs, daemonsets)
	// that consume cores without appearing in any service's telemetry.
	active     int
	background int
}

// slowdown returns the wall-time stretch factor for a compute execution
// starting now, with the execution itself already counted in active. It is
// sampled at start-of-compute — a standard discrete-event approximation of
// processor sharing (exact time-slicing would require re-planning every
// in-flight execution on every arrival).
func (n *node) slowdown() float64 {
	if n == nil {
		return 1
	}
	pressure := float64(n.active+n.background) / n.cfg.Cores
	if pressure < 1 {
		return 1
	}
	return pressure
}

// AddNode registers a compute node.
func (c *Cluster) AddNode(cfg NodeConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("sim: node name must not be empty")
	}
	if cfg.Cores <= 0 {
		return fmt.Errorf("sim: node %q needs positive cores, got %v", cfg.Name, cfg.Cores)
	}
	if _, dup := c.nodes[cfg.Name]; dup {
		return fmt.Errorf("sim: duplicate node %q", cfg.Name)
	}
	if c.nodes == nil {
		c.nodes = make(map[string]*node)
	}
	c.nodes[cfg.Name] = &node{cfg: cfg}
	return nil
}

// Place assigns a service to a node. Services start unplaced (uncontended).
func (c *Cluster) Place(service, nodeName string) error {
	svc, ok := c.services[service]
	if !ok {
		return fmt.Errorf("sim: place: %w", &UnknownServiceError{Name: service})
	}
	n, ok := c.nodes[nodeName]
	if !ok {
		return fmt.Errorf("sim: place: unknown node %q", nodeName)
	}
	svc.node = n
	return nil
}

// NodeNames returns the registered node names sorted alphabetically. The
// slice is a copy; callers may modify it.
func (c *Cluster) NodeNames() []string {
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PlacedOn returns the services assigned to the named node, in registration
// order.
func (c *Cluster) PlacedOn(nodeName string) ([]string, error) {
	n, ok := c.nodes[nodeName]
	if !ok {
		return nil, fmt.Errorf("sim: unknown node %q", nodeName)
	}
	var out []string
	for _, name := range c.order {
		if c.services[name].node == n {
			out = append(out, name)
		}
	}
	return out, nil
}

// EvacuateNode unassigns every service placed on the named node, returning
// how many were moved. Evacuated services run uncontended afterwards — the
// "reroute around a sick node" repair intervention. In-flight compute
// executions keep their already-sampled slowdown; only executions starting
// after the evacuation escape the node's pressure.
func (c *Cluster) EvacuateNode(nodeName string) (int, error) {
	n, ok := c.nodes[nodeName]
	if !ok {
		return 0, fmt.Errorf("sim: unknown node %q", nodeName)
	}
	moved := 0
	for _, name := range c.order {
		if svc := c.services[name]; svc.node == n {
			svc.node = nil
			moved++
		}
	}
	return moved, nil
}

// SetNodeBackgroundLoad sets the number of core-equivalents an unmonitored
// co-tenant burns on the node. It is the interference injection of the
// noisy-neighbor experiments: the pressure is real, but no monitored
// service's counters show where it comes from.
func (c *Cluster) SetNodeBackgroundLoad(nodeName string, coreEquivalents int) error {
	n, ok := c.nodes[nodeName]
	if !ok {
		return fmt.Errorf("sim: unknown node %q", nodeName)
	}
	if coreEquivalents < 0 {
		return fmt.Errorf("sim: negative background load %d", coreEquivalents)
	}
	n.background = coreEquivalents
	return nil
}

// NodeActive reports the live compute executions on a node (for tests).
func (c *Cluster) NodeActive(nodeName string) (int, error) {
	n, ok := c.nodes[nodeName]
	if !ok {
		return 0, fmt.Errorf("sim: unknown node %q", nodeName)
	}
	return n.active, nil
}

// computeOn executes d of CPU work for svc, applying node contention, then
// runs next. CPUSeconds accrues the work (demand); wall time stretches by
// the node's pressure.
func (s *Service) computeOn(d time.Duration, next func()) {
	s.addCPU(d)
	n := s.node
	if n == nil {
		s.cluster.eng.After(d, next)
		return
	}
	n.active++
	wall := time.Duration(float64(d) * n.slowdown())
	s.cluster.eng.After(wall, func() {
		n.active--
		next()
	})
}
