package sim

// Distributed-tracing support. The paper's introduction motivates
// interventional causal learning by the limits of tracing: it requires
// instrumentation the application may not have, and it cannot see omission
// faults (a worker that silently stops calling a downstream). The simulator
// therefore emits Dapper-style spans for every call so that a trace-based
// root-cause baseline can be built and those limits demonstrated.

// Span is one client-observed call: From issued a request to To/Endpoint at
// Start and saw the response (or refusal) at End.
type Span struct {
	// TraceID groups the spans of one causally-linked request tree.
	TraceID uint64
	// SpanID identifies this span within the cluster (globally unique).
	SpanID uint64
	// ParentID is the SpanID of the calling span, 0 for a root span.
	ParentID uint64
	// From and To are the caller and callee service names; From may be an
	// external client unknown to the cluster.
	From string
	// To is the callee.
	To string
	// Endpoint is the called endpoint (or the KV operation).
	Endpoint string
	// Start is when the request was issued, End when the response reached
	// the caller.
	Start Time
	End   Time
	// Err reports a failed call.
	Err bool
}

// SpanObserver receives every completed span. Observers must not retain the
// cluster's internal state; the Span value is self-contained.
type SpanObserver func(Span)

// traceCtx is the trace context propagated along synchronous call trees.
type traceCtx struct {
	traceID uint64
	spanID  uint64
}

// WithSpanObserver installs a span observer at cluster construction.
func WithSpanObserver(fn SpanObserver) ClusterOption {
	return func(c *Cluster) { c.spanObserver = fn }
}

// SetSpanObserver installs (or replaces) the span observer on a built
// cluster. Passing nil disables tracing.
func (c *Cluster) SetSpanObserver(fn SpanObserver) { c.spanObserver = fn }

// newTraceCtx mints a root trace context.
func (c *Cluster) newTraceCtx() traceCtx {
	c.lastTraceID++
	return traceCtx{traceID: c.lastTraceID}
}

// childCtx derives the context for a downstream call from the handler's
// context. A zero parent (untraced entry or a service that drops context)
// starts a fresh trace, modelling broken instrumentation.
func (c *Cluster) childCtx(parent traceCtx) traceCtx {
	if parent.traceID == 0 {
		return c.newTraceCtx()
	}
	return parent
}

// startSpan allocates the span for one outgoing call and returns it with
// Start filled; the caller completes and emits it via finishSpan.
func (c *Cluster) startSpan(ctx traceCtx, from, to, endpoint string) Span {
	c.lastSpanID++
	return Span{
		TraceID:  ctx.traceID,
		SpanID:   c.lastSpanID,
		ParentID: ctx.spanID,
		From:     from,
		To:       to,
		Endpoint: endpoint,
		Start:    c.eng.Now(),
	}
}

// finishSpan completes the span and hands it to the observer.
func (c *Cluster) finishSpan(span Span, failed bool) {
	if c.spanObserver == nil {
		return
	}
	span.End = c.eng.Now()
	span.Err = failed
	c.spanObserver(span)
}
