package sim

import (
	"fmt"
	"time"
)

// Default network parameters. A request or response packet takes
// DefaultNetworkDelay ± DefaultNetworkJitter to traverse the network; a call
// to an unavailable service is refused after DefaultFailFastDelay (the TCP
// RST of the paper's dead-port injection).
const (
	DefaultNetworkDelay   = 500 * time.Microsecond
	DefaultNetworkJitter  = 200 * time.Microsecond
	DefaultFailFastDelay  = 1 * time.Millisecond
	defaultPollerCapacity = 1
)

// ClusterOption customizes a Cluster.
type ClusterOption func(*Cluster)

// WithNetworkDelay sets the base one-way network delay and its uniform
// jitter.
func WithNetworkDelay(base, jitter time.Duration) ClusterOption {
	return func(c *Cluster) {
		c.netDelay = base
		c.netJitter = jitter
	}
}

// WithFailFastDelay sets how quickly calls to an unavailable service fail.
func WithFailFastDelay(d time.Duration) ClusterOption {
	return func(c *Cluster) { c.failFast = d }
}

// Cluster is a set of services sharing one event engine and network model.
type Cluster struct {
	// err records a construction error (nil engine). It surfaces from every
	// fallible operation instead of panicking in library code.
	err          error
	eng          *Engine
	services     map[string]*Service
	order        []string
	pollers      []*Poller
	netDelay     time.Duration
	netJitter    time.Duration
	failFast     time.Duration
	spanObserver SpanObserver
	lastTraceID  uint64
	lastSpanID   uint64
	nodes        map[string]*node
}

// NewCluster creates an empty cluster on eng. A nil engine is a
// configuration error; it is reported by the first fallible operation
// (AddService, AddPoller, Call) rather than by panicking here.
func NewCluster(eng *Engine, opts ...ClusterOption) *Cluster {
	c := &Cluster{
		eng:       eng,
		services:  make(map[string]*Service),
		netDelay:  DefaultNetworkDelay,
		netJitter: DefaultNetworkJitter,
		failFast:  DefaultFailFastDelay,
	}
	if eng == nil {
		c.err = ErrNilEngine
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Engine returns the event engine the cluster runs on.
func (c *Cluster) Engine() *Engine { return c.eng }

// AddService registers a service defined by cfg.
func (c *Cluster) AddService(cfg ServiceConfig) (*Service, error) {
	if c.err != nil {
		return nil, c.err
	}
	if _, dup := c.services[cfg.Name]; dup {
		return nil, fmt.Errorf("sim: duplicate service %q", cfg.Name)
	}
	s, err := newService(c, cfg)
	if err != nil {
		return nil, err
	}
	c.services[cfg.Name] = s
	c.order = append(c.order, cfg.Name)
	return s, nil
}

// MustAddService is AddService for static topologies built at program start;
// it panics on configuration errors.
func (c *Cluster) MustAddService(cfg ServiceConfig) *Service {
	s, err := c.AddService(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Service returns the named service.
func (c *Cluster) Service(name string) (*Service, bool) {
	s, ok := c.services[name]
	return s, ok
}

// ServiceNames returns the registered service names in registration order.
// The slice is a copy; callers may modify it.
func (c *Cluster) ServiceNames() []string {
	names := make([]string, len(c.order))
	copy(names, c.order)
	return names
}

// CountersByService snapshots the telemetry counters of every service.
func (c *Cluster) CountersByService() map[string]Counters {
	out := make(map[string]Counters, len(c.services))
	for name, s := range c.services {
		out[name] = s.counters
	}
	return out
}

// netLatency samples one one-way network traversal time.
func (c *Cluster) netLatency() time.Duration {
	d := c.netDelay
	if c.netJitter > 0 {
		d += time.Duration(c.eng.Rand().Int63n(int64(c.netJitter)))
	}
	return d
}

// Call issues a request from the named caller to target/endpoint and invokes
// done with the outcome when the response (or refusal) arrives. The caller
// name may be unknown to the cluster (an external client such as the load
// generator); in that case only the target's counters advance.
func (c *Cluster) Call(from, target, endpoint string, done func(Result)) {
	c.callTraced(c.newTraceCtx(), from, target, workItem{from: from, endpoint: endpoint, respond: done})
}

// CallKV issues a key-value operation against a KV store service.
func (c *Cluster) CallKV(from, store string, op KVOp, done func(Result)) {
	opCopy := op
	c.callTraced(c.newTraceCtx(), from, store, workItem{from: from, kvOp: &opCopy, respond: done})
}

// callTraced issues a call under an existing trace context: a span is opened
// for the call, the handler inherits the context for its own downstream
// calls, and the span completes when the response reaches the caller.
func (c *Cluster) callTraced(ctx traceCtx, from, target string, item workItem) {
	if c.err != nil {
		// No engine: fail synchronously without opening a span.
		if item.respond != nil {
			item.respond(Result{Err: c.err})
		}
		return
	}
	endpoint := item.endpoint
	if item.kvOp != nil {
		endpoint = item.kvOp.Kind.String() + " " + item.kvOp.Key
	}
	span := c.startSpan(ctx, from, target, endpoint)
	item.trace = traceCtx{traceID: span.TraceID, spanID: span.SpanID}
	orig := item.respond
	item.respond = func(res Result) {
		c.finishSpan(span, res.Err != nil)
		if orig != nil {
			orig(res)
		}
	}
	c.call(from, target, item)
}

func (c *Cluster) call(from, target string, item workItem) {
	if item.respond == nil {
		item.respond = func(Result) {}
	}
	if c.err != nil {
		// No engine to schedule on: fail the call synchronously.
		item.respond(Result{Err: c.err})
		return
	}
	if fromSvc, ok := c.services[from]; ok {
		fromSvc.counters.RequestsSent++
		fromSvc.counters.TxPackets++
	}
	tgt, ok := c.services[target]
	if !ok {
		err := &UnknownServiceError{Name: target}
		c.eng.After(0, func() { item.respond(Result{Err: err}) })
		return
	}
	if tgt.fault.unavailable {
		// Connection refused: the target never sees the request; the
		// caller receives the refusal after the fail-fast delay.
		c.eng.After(c.netLatency()+c.failFast, func() {
			if fromSvc, ok := c.services[from]; ok {
				fromSvc.counters.RxPackets++
			}
			item.respond(Result{Err: fmt.Errorf("%s: %w", target, ErrServiceUnavailable)})
		})
		return
	}
	c.eng.After(c.netLatency(), func() { tgt.handleArrival(item) })
}

// deliverResponse carries a response packet back to the caller.
func (c *Cluster) deliverResponse(from string, respond func(Result), res Result) {
	c.eng.After(c.netLatency(), func() {
		if fromSvc, ok := c.services[from]; ok {
			fromSvc.counters.RxPackets++
		}
		respond(res)
	})
}
