package sim

import (
	"testing"
	"time"
)

func TestNodeValidation(t *testing.T) {
	eng := NewEngine(91)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc"})
	if err := c.AddNode(NodeConfig{Name: "", Cores: 1}); err == nil {
		t.Error("empty node name accepted")
	}
	if err := c.AddNode(NodeConfig{Name: "n", Cores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	if err := c.AddNode(NodeConfig{Name: "n", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(NodeConfig{Name: "n", Cores: 2}); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := c.Place("ghost", "n"); err == nil {
		t.Error("placing unknown service accepted")
	}
	if err := c.Place("svc", "ghost"); err == nil {
		t.Error("placing on unknown node accepted")
	}
	if err := c.Place("svc", "n"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NodeActive("ghost"); err == nil {
		t.Error("NodeActive for unknown node accepted")
	}
}

func TestUncontendedComputeUnchanged(t *testing.T) {
	eng := NewEngine(92)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "/", Steps: []Step{
		Compute{Mean: 50 * time.Millisecond},
	}}}})
	var doneAt Time
	c.Call("client", "svc", "/", func(Result) { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt != 50*time.Millisecond {
		t.Fatalf("unplaced service compute took %v, want exactly 50ms", doneAt)
	}
}

func TestContentionStretchesWallNotCPU(t *testing.T) {
	eng := NewEngine(93)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	if err := c.AddNode(NodeConfig{Name: "n1", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"p", "q"} {
		c.MustAddService(ServiceConfig{Name: name, Endpoints: []Endpoint{{Name: "/", Steps: []Step{
			Compute{Mean: 100 * time.Millisecond},
		}}}})
		if err := c.Place(name, "n1"); err != nil {
			t.Fatal(err)
		}
	}
	var pDone, qDone Time
	c.Call("client", "p", "/", func(Result) { pDone = eng.Now() })
	c.Call("client", "q", "/", func(Result) { qDone = eng.Now() })
	eng.Run(time.Second)

	// Two 100ms jobs sharing one core: the second to start sees pressure
	// 2 and stretches to ~200ms.
	last := pDone
	if qDone > last {
		last = qDone
	}
	if last < 190*time.Millisecond {
		t.Fatalf("contended jobs finished by %v; expected ~200ms stretch", last)
	}
	// CPU accounting records demand, not stretched wall time.
	p, _ := c.Service("p")
	q, _ := c.Service("q")
	total := p.Counters().CPUSeconds + q.Counters().CPUSeconds
	if total < 0.19 || total > 0.21 {
		t.Fatalf("total cpu %.3fs, want 0.2s (work, not wall)", total)
	}
}

func TestNoisyNeighborInflatesVictimBusyOnly(t *testing.T) {
	// victim and neighbor share a node; a load spike on the neighbor must
	// inflate the victim's busy time while leaving its CPU-per-request
	// ratio intact — the latent interference confounder.
	run := func(neighborRPS int) (busyPerReq, cpuPerReq float64) {
		eng := NewEngine(94)
		c := NewCluster(eng)
		if err := c.AddNode(NodeConfig{Name: "n1", Cores: 2}); err != nil {
			t.Fatal(err)
		}
		c.MustAddService(ServiceConfig{Name: "victim", Endpoints: []Endpoint{{Name: "/", Steps: []Step{
			Compute{Mean: 10 * time.Millisecond},
		}}}})
		c.MustAddService(ServiceConfig{Name: "neighbor", Capacity: 64, Endpoints: []Endpoint{{Name: "/", Steps: []Step{
			Compute{Mean: 10 * time.Millisecond},
		}}}})
		for _, svc := range []string{"victim", "neighbor"} {
			if err := c.Place(svc, "n1"); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Every(0, 50*time.Millisecond, func() {
			c.Call("client", "victim", "/", nil)
		}); err != nil {
			t.Fatal(err)
		}
		if neighborRPS > 0 {
			gap := time.Second / time.Duration(neighborRPS)
			if err := eng.Every(0, gap, func() {
				c.Call("client", "neighbor", "/", nil)
			}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run(time.Minute)
		v, _ := c.Service("victim")
		cnt := v.Counters()
		reqs := float64(cnt.RequestsReceived)
		return cnt.BusySeconds / reqs, cnt.CPUSeconds / reqs
	}

	quietBusy, quietCPU := run(0)
	noisyBusy, noisyCPU := run(400)
	if noisyBusy < quietBusy*1.5 {
		t.Fatalf("victim busy/req %.4f -> %.4f; neighbor spike should inflate occupancy", quietBusy, noisyBusy)
	}
	rel := noisyCPU / quietCPU
	if rel < 0.95 || rel > 1.05 {
		t.Fatalf("victim cpu/req changed %.4f -> %.4f; CPU demand must be interference-free", quietCPU, noisyCPU)
	}
}
