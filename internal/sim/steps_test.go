package sim

import (
	"errors"
	"testing"
	"time"
)

func TestLogSampledRateEquivalence(t *testing.T) {
	eng := NewEngine(21)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		LogSampled{P: 0.1},
	}}}})
	const n = 5000
	for i := 0; i < n; i++ {
		eng.After(time.Duration(i)*time.Millisecond, func() {
			c.Call("client", "svc", "work", nil)
		})
	}
	eng.Run(10 * time.Second)
	svc, _ := c.Service("svc")
	logs := svc.Counters().LogMessages
	// Binomial(5000, 0.1): mean 500, std ~21. Allow 5 sigma.
	if logs < 390 || logs > 610 {
		t.Fatalf("LogSampled{0.1} over %d requests wrote %d logs, want ~500", n, logs)
	}
	if svc.Counters().ErrorLogMessages != 0 {
		t.Error("info-level sampled log counted as error")
	}
}

func TestLogSampledErrorLevelAndZeroRate(t *testing.T) {
	eng := NewEngine(22)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{
		{Name: "always", Steps: []Step{LogSampled{P: 1, Error: true}}},
		{Name: "never", Steps: []Step{LogSampled{P: 0}}},
	}})
	for i := 0; i < 10; i++ {
		c.Call("client", "svc", "always", nil)
		c.Call("client", "svc", "never", nil)
	}
	eng.Run(time.Second)
	svc, _ := c.Service("svc")
	if got := svc.Counters().ErrorLogMessages; got != 10 {
		t.Errorf("P=1 error logs = %d, want 10", got)
	}
	if got := svc.Counters().LogMessages; got != 10 {
		t.Errorf("total logs = %d, want 10 (P=0 endpoint must not log)", got)
	}
}

func TestKVCallStepGet(t *testing.T) {
	eng := NewEngine(23)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "store", KV: true})
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		KVCall{Store: "store", Op: KVIncrBy, Key: "k", Delta: 5},
		KVCall{Store: "store", Op: KVGet, Key: "k"},
	}}}})
	var res *Result
	c.Call("client", "svc", "work", func(r Result) { res = &r })
	eng.Run(time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("kv pipeline failed: %+v", res)
	}
	store, _ := c.Service("store")
	if store.KVValue("k") != 5 {
		t.Fatalf("store k = %d, want 5", store.KVValue("k"))
	}
	if store.Counters().RequestsReceived != 2 {
		t.Fatalf("store received %d ops, want 2", store.Counters().RequestsReceived)
	}
}

func TestKVCallStepErrorPolicies(t *testing.T) {
	eng := NewEngine(24)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "store", KV: true})
	c.MustAddService(ServiceConfig{Name: "after", Endpoints: []Endpoint{{Name: "ping"}}})
	c.MustAddService(ServiceConfig{Name: "strict", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		KVCall{Store: "store", Op: KVGet, Key: "k"},
		CallStep{Target: "after", Endpoint: "ping"},
	}}}})
	c.MustAddService(ServiceConfig{Name: "lenient", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		KVCall{Store: "store", Op: KVGet, Key: "k", IgnoreError: true},
		CallStep{Target: "after", Endpoint: "ping"},
	}}}})
	store, _ := c.Service("store")
	store.SetUnavailable(true)

	var strictRes, lenientRes *Result
	c.Call("client", "strict", "work", func(r Result) { strictRes = &r })
	c.Call("client", "lenient", "work", func(r Result) { lenientRes = &r })
	eng.Run(time.Second)

	if strictRes == nil || !errors.Is(strictRes.Err, ErrServiceUnavailable) {
		t.Fatalf("strict service should propagate the store failure, got %+v", strictRes)
	}
	if lenientRes == nil || lenientRes.Err != nil {
		t.Fatalf("lenient service should swallow the store failure, got %+v", lenientRes)
	}
	after, _ := c.Service("after")
	if after.Counters().RequestsReceived != 1 {
		t.Fatalf("after received %d pings, want 1 (lenient only)", after.Counters().RequestsReceived)
	}
}

func TestKVIncrStepIsSugarForKVCall(t *testing.T) {
	eng := NewEngine(25)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "store", KV: true})
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		KVIncr{Store: "store", Key: "n", Delta: 3},
	}}}})
	c.Call("client", "svc", "work", nil)
	eng.Run(time.Second)
	store, _ := c.Service("store")
	if store.KVValue("n") != 3 {
		t.Fatalf("n = %d, want 3", store.KVValue("n"))
	}
}

func TestUnsupportedStepFailsRequest(t *testing.T) {
	eng := NewEngine(26)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		bogusStep{},
	}}}})
	var res *Result
	c.Call("client", "svc", "work", func(r Result) { res = &r })
	eng.Run(time.Second)
	if res == nil || res.Err == nil {
		t.Fatal("unsupported step should fail the request")
	}
}

type bogusStep struct{}

func (bogusStep) isStep() {}

func TestKVOpKindStrings(t *testing.T) {
	names := map[KVOpKind]string{
		KVGet:            "GET",
		KVIncrBy:         "INCRBY",
		KVDecrIfPositive: "DECRPOS",
		KVSet:            "SET",
		KVOpKind(99):     "UNKNOWN",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestPollCtxRandIsDeterministic(t *testing.T) {
	run := func() []int64 {
		eng := NewEngine(27)
		c := NewCluster(eng)
		var draws []int64
		_, err := c.AddPoller(PollerConfig{
			Service:  ServiceConfig{Name: "w"},
			Interval: 10 * time.Millisecond,
			Body: func(ctx *PollCtx, done func()) {
				draws = append(draws, ctx.Rand().Int63n(1000))
				done()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(time.Second)
		return draws
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("draw counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("poller RNG not deterministic across identical runs")
		}
	}
}
