package sim

import (
	"errors"
	"testing"
)

// The library paths of the simulator must not panic on misconfiguration;
// these tests pin the returned-error behaviour the static analyzer's
// paniclib pass enforces.

func TestNilEngineClusterReturnsErrors(t *testing.T) {
	c := NewCluster(nil)
	if _, err := c.AddService(ServiceConfig{Name: "svc"}); !errors.Is(err, ErrNilEngine) {
		t.Fatalf("AddService on nil-engine cluster: err = %v, want ErrNilEngine", err)
	}
	if _, err := c.AddPoller(PollerConfig{
		Service:  ServiceConfig{Name: "w"},
		Interval: 1,
		Body:     func(ctx *PollCtx, done func()) { done() },
	}); !errors.Is(err, ErrNilEngine) {
		t.Fatalf("AddPoller on nil-engine cluster: err = %v, want ErrNilEngine", err)
	}
	called := false
	c.Call("client", "svc", "/", func(res Result) {
		called = true
		if !errors.Is(res.Err, ErrNilEngine) {
			t.Fatalf("Call on nil-engine cluster: err = %v, want ErrNilEngine", res.Err)
		}
	})
	if !called {
		t.Fatal("Call on nil-engine cluster never delivered its synchronous failure")
	}
}

func TestMustAddServicePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddService on a nil-engine cluster did not panic")
		}
	}()
	NewCluster(nil).MustAddService(ServiceConfig{Name: "svc"})
}

func TestScheduleNilCallbackIsNoOp(t *testing.T) {
	eng := NewEngine(1)
	eng.Schedule(0, nil)
	if got := eng.Pending(); got != 0 {
		t.Fatalf("Schedule(nil) enqueued %d events, want 0", got)
	}
	if got := eng.Run(1); got != 0 {
		t.Fatalf("Run executed %d events after Schedule(nil), want 0", got)
	}
}
