package sim

// KVOpKind enumerates operations understood by key-value store services
// (the paper's node D is a Redis holding the `items` and `dummy` counters).
type KVOpKind int

const (
	// KVGet reads the current value of a key (0 when absent).
	KVGet KVOpKind = iota + 1
	// KVIncrBy adds Delta (possibly negative) to a key and returns the new
	// value.
	KVIncrBy
	// KVDecrIfPositive decrements a key only when its value is positive;
	// the result Value is 1 when the decrement happened and 0 otherwise.
	KVDecrIfPositive
	// KVSet overwrites a key with Delta.
	KVSet
)

// String returns the redis-like name of the operation.
func (k KVOpKind) String() string {
	switch k {
	case KVGet:
		return "GET"
	case KVIncrBy:
		return "INCRBY"
	case KVDecrIfPositive:
		return "DECRPOS"
	case KVSet:
		return "SET"
	default:
		return "UNKNOWN"
	}
}

// KVOp is one key-value store operation carried by a request to a KV
// service.
type KVOp struct {
	Kind  KVOpKind
	Key   string
	Delta int64
}

// apply mutates the store state and returns the operation result value.
func (op KVOp) apply(kv map[string]int64) int64 {
	switch op.Kind {
	case KVGet:
		return kv[op.Key]
	case KVIncrBy:
		kv[op.Key] += op.Delta
		return kv[op.Key]
	case KVDecrIfPositive:
		if kv[op.Key] > 0 {
			kv[op.Key]--
			return 1
		}
		return 0
	case KVSet:
		kv[op.Key] = op.Delta
		return kv[op.Key]
	default:
		return 0
	}
}
