package sim

import (
	"errors"
	"testing"
	"time"
)

// buildChain constructs client -> a -> b -> c where each hop is a synchronous
// call and each service burns 1ms of CPU per request.
func buildChain(t *testing.T, seed int64) (*Engine, *Cluster) {
	t.Helper()
	eng := NewEngine(seed)
	c := NewCluster(eng)
	compute := Compute{Mean: time.Millisecond}
	mustAdd := func(cfg ServiceConfig) {
		if _, err := c.AddService(cfg); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(ServiceConfig{Name: "c", Endpoints: []Endpoint{{Name: "work", Steps: []Step{compute}}}})
	mustAdd(ServiceConfig{Name: "b", Endpoints: []Endpoint{
		{Name: "work", Steps: []Step{compute, CallStep{Target: "c", Endpoint: "work"}}},
	}})
	mustAdd(ServiceConfig{Name: "a", Endpoints: []Endpoint{
		{Name: "work", Steps: []Step{compute, CallStep{Target: "b", Endpoint: "work"}}},
	}})
	return eng, c
}

func TestCallChainSuccess(t *testing.T) {
	eng, c := buildChain(t, 1)
	var res *Result
	c.Call("client", "a", "work", func(r Result) { res = &r })
	eng.Run(time.Second)
	if res == nil {
		t.Fatal("no response delivered")
	}
	if res.Err != nil {
		t.Fatalf("chain call failed: %v", res.Err)
	}
	for _, name := range []string{"a", "b", "c"} {
		svc, _ := c.Service(name)
		cnt := svc.Counters()
		if cnt.RequestsReceived != 1 {
			t.Errorf("%s received %d requests, want 1", name, cnt.RequestsReceived)
		}
		if cnt.ResponsesOK != 1 {
			t.Errorf("%s returned %d OK responses, want 1", name, cnt.ResponsesOK)
		}
		if cnt.CPUSeconds <= 0 {
			t.Errorf("%s consumed no CPU", name)
		}
	}
}

func TestUnavailableFaultPropagatesErrorsUpstream(t *testing.T) {
	eng, c := buildChain(t, 2)
	svcB, _ := c.Service("b")
	svcB.SetUnavailable(true)

	var res *Result
	c.Call("client", "a", "work", func(r Result) { res = &r })
	eng.Run(time.Second)

	if res == nil || res.Err == nil {
		t.Fatal("expected an error response through the chain")
	}
	if !errors.Is(res.Err, ErrServiceUnavailable) {
		t.Fatalf("error %v does not match ErrServiceUnavailable", res.Err)
	}
	var dserr *DownstreamError
	if !errors.As(res.Err, &dserr) {
		t.Fatalf("error %v is not a DownstreamError", res.Err)
	}
	if dserr.Caller != "a" || dserr.Target != "b" {
		t.Errorf("DownstreamError = %s->%s, want a->b", dserr.Caller, dserr.Target)
	}

	svcA, _ := c.Service("a")
	svcC, _ := c.Service("c")
	if got := svcA.Counters().ErrorLogMessages; got != 1 {
		t.Errorf("a wrote %d error logs, want 1 (errors surface on the response path)", got)
	}
	if got := svcB.Counters().RequestsReceived; got != 0 {
		t.Errorf("unavailable b received %d requests, want 0 (connection refused)", got)
	}
	if got := svcC.Counters().RequestsReceived; got != 0 {
		t.Errorf("c received %d requests, want 0 (omission downstream of the fault)", got)
	}
}

func TestSuppressErrorLogs(t *testing.T) {
	eng := NewEngine(3)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "down"})
	c.MustAddService(ServiceConfig{
		Name:              "quiet",
		SuppressErrorLogs: true,
		Endpoints: []Endpoint{{Name: "work", Steps: []Step{
			CallStep{Target: "down", Endpoint: "nope"},
		}}},
	})
	down, _ := c.Service("down")
	down.SetUnavailable(true)
	c.Call("client", "quiet", "work", func(Result) {})
	eng.Run(time.Second)
	quiet, _ := c.Service("quiet")
	if got := quiet.Counters().ErrorLogMessages; got != 0 {
		t.Fatalf("quiet service wrote %d error logs, want 0", got)
	}
	if got := quiet.Counters().ErrorsObserved; got != 1 {
		t.Fatalf("quiet service observed %d errors, want 1", got)
	}
}

func TestIgnoreErrorContinuesPipeline(t *testing.T) {
	eng := NewEngine(4)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "flaky"})
	c.MustAddService(ServiceConfig{Name: "after", Endpoints: []Endpoint{{Name: "ping"}}})
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		CallStep{Target: "flaky", Endpoint: "x", IgnoreError: true},
		CallStep{Target: "after", Endpoint: "ping"},
	}}}})
	flaky, _ := c.Service("flaky")
	flaky.SetUnavailable(true)

	var res *Result
	c.Call("client", "svc", "work", func(r Result) { res = &r })
	eng.Run(time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("IgnoreError call should succeed, got %+v", res)
	}
	after, _ := c.Service("after")
	if after.Counters().RequestsReceived != 1 {
		t.Fatal("step after ignored failure did not run")
	}
}

func TestUnknownServiceAndEndpoint(t *testing.T) {
	eng := NewEngine(5)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "ok"}}})

	var unknownSvc, unknownEp *Result
	c.Call("client", "ghost", "x", func(r Result) { unknownSvc = &r })
	c.Call("client", "svc", "missing", func(r Result) { unknownEp = &r })
	eng.Run(time.Second)

	var use *UnknownServiceError
	if unknownSvc == nil || !errors.As(unknownSvc.Err, &use) {
		t.Fatalf("call to ghost service returned %+v, want UnknownServiceError", unknownSvc)
	}
	var uee *UnknownEndpointError
	if unknownEp == nil || !errors.As(unknownEp.Err, &uee) {
		t.Fatalf("call to missing endpoint returned %+v, want UnknownEndpointError", unknownEp)
	}
}

func TestKVOperations(t *testing.T) {
	eng := NewEngine(6)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "store", KV: true})

	var got []int64
	record := func(r Result) {
		if r.Err != nil {
			t.Errorf("kv op failed: %v", r.Err)
		}
		got = append(got, r.Value)
	}
	c.CallKV("client", "store", KVOp{Kind: KVIncrBy, Key: "items", Delta: 2}, record)
	eng.Run(100 * time.Millisecond)
	c.CallKV("client", "store", KVOp{Kind: KVGet, Key: "items"}, record)
	eng.Run(200 * time.Millisecond)
	c.CallKV("client", "store", KVOp{Kind: KVDecrIfPositive, Key: "items"}, record)
	eng.Run(300 * time.Millisecond)
	c.CallKV("client", "store", KVOp{Kind: KVGet, Key: "items"}, record)
	eng.Run(400 * time.Millisecond)
	c.CallKV("client", "store", KVOp{Kind: KVDecrIfPositive, Key: "empty"}, record)
	eng.Run(500 * time.Millisecond)
	c.CallKV("client", "store", KVOp{Kind: KVSet, Key: "items", Delta: 9}, record)
	eng.Run(time.Second)

	want := []int64{2, 2, 1, 1, 0, 9}
	if len(got) != len(want) {
		t.Fatalf("got %d results %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kv results %v, want %v", got, want)
		}
	}
	store, _ := c.Service("store")
	if store.KVValue("items") != 9 {
		t.Fatalf("final items = %d, want 9", store.KVValue("items"))
	}
	if store.Counters().CPUSeconds <= 0 {
		t.Error("kv store consumed no CPU")
	}
}

func TestKVOpToNonKVServiceFails(t *testing.T) {
	eng := NewEngine(7)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "plain", Endpoints: []Endpoint{{Name: "x"}}})
	var res *Result
	c.CallKV("client", "plain", KVOp{Kind: KVGet, Key: "k"}, func(r Result) { res = &r })
	eng.Run(time.Second)
	if res == nil || res.Err == nil {
		t.Fatal("kv op against plain service should fail")
	}
}

func TestCapacityQueuesRequests(t *testing.T) {
	eng := NewEngine(8)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	c.MustAddService(ServiceConfig{
		Name:     "slow",
		Capacity: 1,
		Endpoints: []Endpoint{{Name: "work", Steps: []Step{
			Compute{Mean: 10 * time.Millisecond},
		}}},
	})
	var doneTimes []Time
	for i := 0; i < 3; i++ {
		c.Call("client", "slow", "work", func(Result) {
			doneTimes = append(doneTimes, eng.Now())
		})
	}
	eng.Run(time.Second)
	if len(doneTimes) != 3 {
		t.Fatalf("completed %d requests, want 3", len(doneTimes))
	}
	// With capacity 1 the three 10ms requests must finish serially.
	if doneTimes[2] < 30*time.Millisecond {
		t.Fatalf("third completion at %v, want >= 30ms (serial execution)", doneTimes[2])
	}
}

func TestQueueLimitDropsRequests(t *testing.T) {
	eng := NewEngine(9)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	c.MustAddService(ServiceConfig{
		Name:       "tiny",
		Capacity:   1,
		QueueLimit: 1,
		Endpoints: []Endpoint{{Name: "work", Steps: []Step{
			Compute{Mean: 10 * time.Millisecond},
		}}},
	})
	errs := 0
	for i := 0; i < 5; i++ {
		c.Call("client", "tiny", "work", func(r Result) {
			if r.Err != nil {
				if !errors.Is(r.Err, ErrQueueFull) {
					t.Errorf("unexpected error %v", r.Err)
				}
				errs++
			}
		})
	}
	eng.Run(time.Second)
	if errs != 3 {
		t.Fatalf("%d requests dropped, want 3 (1 running + 1 queued survive)", errs)
	}
	tiny, _ := c.Service("tiny")
	if got := tiny.Counters().QueueDrops; got != 3 {
		t.Fatalf("QueueDrops = %d, want 3", got)
	}
}

func TestErrorRateFault(t *testing.T) {
	eng := NewEngine(10)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work"}}})
	svc, _ := c.Service("svc")
	svc.SetErrorRate(1.0)
	var res *Result
	c.Call("client", "svc", "work", func(r Result) { res = &r })
	eng.Run(time.Second)
	if res == nil || !errors.Is(res.Err, ErrInjectedFault) {
		t.Fatalf("got %+v, want ErrInjectedFault", res)
	}
}

func TestExtraLatencyFaultDelaysResponses(t *testing.T) {
	eng := NewEngine(11)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work"}}})
	svc, _ := c.Service("svc")

	var fast, slowT Time
	c.Call("client", "svc", "work", func(Result) { fast = eng.Now() })
	eng.Run(100 * time.Millisecond)
	svc.SetExtraLatency(50 * time.Millisecond)
	start := eng.Now()
	c.Call("client", "svc", "work", func(Result) { slowT = eng.Now() })
	eng.Run(time.Second)

	if fast > 10*time.Millisecond {
		t.Fatalf("unfaulted call took %v", fast)
	}
	if slowT-start < 50*time.Millisecond {
		t.Fatalf("latency-faulted call took %v, want >= 50ms", slowT-start)
	}
}

func TestLogEveryN(t *testing.T) {
	eng := NewEngine(12)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		LogEveryN{N: 10},
	}}}})
	for i := 0; i < 25; i++ {
		c.Call("client", "svc", "work", nil)
	}
	eng.Run(time.Second)
	svc, _ := c.Service("svc")
	if got := svc.Counters().LogMessages; got != 2 {
		t.Fatalf("LogEveryN{10} over 25 requests wrote %d logs, want 2", got)
	}
}

func TestAsyncCallDoesNotBlockResponse(t *testing.T) {
	eng := NewEngine(13)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	c.MustAddService(ServiceConfig{Name: "slow", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		Compute{Mean: 100 * time.Millisecond},
	}}}})
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		CallStep{Target: "slow", Endpoint: "work", Async: true},
	}}}})
	var doneAt Time = -1
	c.Call("client", "svc", "work", func(Result) { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt < 0 {
		t.Fatal("no response")
	}
	if doneAt > 50*time.Millisecond {
		t.Fatalf("async caller responded at %v, should not wait for slow downstream", doneAt)
	}
	slow, _ := c.Service("slow")
	if slow.Counters().RequestsReceived != 1 {
		t.Fatal("async downstream request was not delivered")
	}
}

func TestPollerLoopAndPause(t *testing.T) {
	eng := NewEngine(14)
	c := NewCluster(eng)
	ticks := 0
	_, err := c.AddPoller(PollerConfig{
		Service:  ServiceConfig{Name: "worker"},
		Interval: 10 * time.Millisecond,
		Body: func(ctx *PollCtx, done func()) {
			ticks++
			ctx.Compute(time.Millisecond, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(105 * time.Millisecond)
	if ticks < 8 || ticks > 10 {
		t.Fatalf("poller ticked %d times in 105ms at 10ms+1ms cadence, want ~9", ticks)
	}
	worker, _ := c.Service("worker")
	if worker.Counters().CPUSeconds <= 0 {
		t.Error("poller consumed no CPU")
	}
	worker.SetPaused(true)
	before := ticks
	eng.Run(205 * time.Millisecond)
	if ticks != before {
		t.Fatalf("paused poller still ticked (%d -> %d)", before, ticks)
	}
	worker.SetPaused(false)
	eng.Run(305 * time.Millisecond)
	if ticks == before {
		t.Fatal("unpaused poller did not resume")
	}
}

func TestAddPollerValidation(t *testing.T) {
	eng := NewEngine(15)
	c := NewCluster(eng)
	if _, err := c.AddPoller(PollerConfig{Service: ServiceConfig{Name: "x"}, Interval: time.Second}); err == nil {
		t.Fatal("AddPoller accepted nil body")
	}
	if _, err := c.AddPoller(PollerConfig{Service: ServiceConfig{Name: "x"}, Body: func(*PollCtx, func()) {}}); err == nil {
		t.Fatal("AddPoller accepted zero interval")
	}
}

func TestDuplicateServiceRejected(t *testing.T) {
	eng := NewEngine(16)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "dup"})
	if _, err := c.AddService(ServiceConfig{Name: "dup"}); err == nil {
		t.Fatal("duplicate service accepted")
	}
}

func TestServiceNamesOrderAndCopy(t *testing.T) {
	eng := NewEngine(17)
	c := NewCluster(eng)
	for _, n := range []string{"z", "a", "m"} {
		c.MustAddService(ServiceConfig{Name: n})
	}
	names := c.ServiceNames()
	want := []string{"z", "a", "m"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ServiceNames = %v, want registration order %v", names, want)
		}
	}
	names[0] = "mutated"
	if c.ServiceNames()[0] != "z" {
		t.Fatal("ServiceNames returned internal slice, not a copy")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() map[string]Counters {
		eng, c := buildChain(t, 42)
		for i := 0; i < 200; i++ {
			eng.After(time.Duration(i)*5*time.Millisecond, func() {
				c.Call("client", "a", "work", nil)
			})
		}
		eng.Run(5 * time.Second)
		return c.CountersByService()
	}
	a, b := run(), run()
	for name, ca := range a {
		if ca != b[name] {
			t.Fatalf("service %s counters differ across identical runs:\n%+v\n%+v", name, ca, b[name])
		}
	}
}

func TestPacketAccounting(t *testing.T) {
	eng, c := buildChain(t, 18)
	c.Call("client", "a", "work", nil)
	eng.Run(time.Second)
	svcA, _ := c.Service("a")
	// a: rx request from client, tx request to b, rx response from b,
	// tx response to client = 2 rx, 2 tx.
	cnt := svcA.Counters()
	if cnt.RxPackets != 2 || cnt.TxPackets != 2 {
		t.Fatalf("a packets rx=%d tx=%d, want 2/2", cnt.RxPackets, cnt.TxPackets)
	}
}
