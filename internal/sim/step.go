package sim

import "time"

// Step is one element of an endpoint's handler program. Handlers are declared
// as a sequence of steps executed in order; a failing Call step with the
// default error policy aborts the remainder and propagates the error to the
// caller (mirroring an uncaught exception in a request handler).
type Step interface {
	isStep()
}

// Compute models CPU work: the handler occupies its capacity slot for the
// sampled duration and the service's CPUSeconds counter advances by the same
// amount. The duration is sampled uniformly from [Mean-Jitter, Mean+Jitter].
type Compute struct {
	Mean   time.Duration
	Jitter time.Duration
}

func (Compute) isStep() {}

// CallStep models a synchronous downstream request: the handler blocks (while
// still holding its capacity slot) until the target responds. If the call
// fails and IgnoreError is false, the handler writes an error log (unless the
// service suppresses error logs), aborts, and returns the error to its own
// caller — this is how errors propagate along the response path. With
// IgnoreError set, the handler swallows the failure and continues, modelling
// a developer who catches the exception without logging (§III-B).
//
// Async issues the request without waiting for (or acting on) the response;
// async calls ignore Retries and Timeout.
//
// Retries re-issues a failed synchronous call up to Retries extra times
// before giving up — each failed attempt is observed (and logged) like any
// downstream error, so retry storms inflate error-log telemetry exactly as
// they do in production. Timeout bounds each attempt; a response arriving
// after the timeout is discarded (the downstream work is already wasted).
type CallStep struct {
	Target      string
	Endpoint    string
	Async       bool
	IgnoreError bool
	Retries     int
	Timeout     time.Duration
}

func (CallStep) isStep() {}

// KVIncr increments a counter key on a key-value store service by Delta
// (which may be negative). It is sugar for a synchronous CallStep against the
// store's "incr" endpoint, so faults on the store propagate exactly like any
// other downstream failure.
type KVIncr struct {
	Store string
	Key   string
	Delta int64
}

func (KVIncr) isStep() {}

// KVCall is the general form of KVIncr: it performs any key-value operation
// against a store as a synchronous call. IgnoreError mirrors
// CallStep.IgnoreError.
type KVCall struct {
	Store       string
	Op          KVOpKind
	Key         string
	Delta       int64
	IgnoreError bool
}

func (KVCall) isStep() {}

// LogEveryN writes one log line every Nth time this endpoint runs the step
// (the paper's node E writes "I am okay!" every hundredth request). N<=1 logs
// on every execution. Error selects the error log level.
type LogEveryN struct {
	N     uint64
	Error bool
}

func (LogEveryN) isStep() {}

// LogSampled writes one log line per execution with probability P — the
// stochastic counterpart of LogEveryN{N: 1/P}. Rate-equivalent, but the
// per-window log counts carry the Poisson variance that real aggregated log
// telemetry has, instead of LogEveryN's quantized near-deterministic counts.
type LogSampled struct {
	P     float64
	Error bool
}

func (LogSampled) isStep() {}

// Endpoint is a named handler: a sequence of steps executed per request.
type Endpoint struct {
	Name  string
	Steps []Step
}
