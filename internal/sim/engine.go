// Package sim implements a deterministic discrete-event simulator for
// microservice applications.
//
// The simulator is the substrate on which the fault-localization experiments
// run. It models a cluster of capacity-limited services exchanging synchronous
// requests (blocking call trees, as in HTTP microservices), stateful key-value
// stores, and background pollers. Every stochastic choice is driven by a
// seeded random source and all work is executed on a single-threaded event
// loop, so a run is a pure function of its configuration and seed.
//
// Virtual time is a time.Duration measured from the start of the simulation;
// no wall-clock time is consulted anywhere in the package.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual simulation time, measured as an offset from the start of
// the run. The zero Time is the instant the simulation begins.
type Time = time.Duration

// Duration aliases time.Duration so that callers can use the time package's
// constants (time.Second, ...) directly for virtual-time arithmetic.
type Duration = time.Duration

// event is a scheduled callback. The seq field breaks ties between events
// scheduled for the same instant so that execution order is deterministic and
// FIFO with respect to scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	// Only the engine pushes onto this heap, always with *event; the type
	// assertion documents (and enforces) that invariant.
	*h = append(*h, x.(*event))
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event loop. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
type Engine struct {
	heap    eventHeap
	now     Time
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// NewEngine returns an engine whose random source is seeded with seed.
// Two engines built with the same seed and fed the same schedule of events
// produce identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. Callbacks must use
// this source (never package-level rand) so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule arranges for fn to run at virtual time at. Events scheduled in the
// past are executed at the current time instead (they cannot rewind the
// clock). Events at equal times run in scheduling order. A nil fn schedules
// nothing: there is no work to run, so the call is a no-op rather than a
// panic in library code.
func (e *Engine) Schedule(at Time, fn func()) {
	if fn == nil {
		return
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.heap, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Every schedules fn at a fixed cadence starting at start, until the engine
// run horizon is reached or Stop is called. The callback itself may consult
// Now to decide whether to keep working.
func (e *Engine) Every(start Time, interval Duration, fn func()) error {
	if interval <= 0 {
		return fmt.Errorf("sim: Every interval must be positive, got %v", interval)
	}
	var tick func()
	next := start
	tick = func() {
		fn()
		next += interval
		e.Schedule(next, tick)
	}
	e.Schedule(start, tick)
	return nil
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or the next
// event lies strictly beyond until. The clock is left at until (or at the
// time of the last executed event if that is later, which cannot happen by
// construction). It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	e.stopped = false
	executed := 0
	for len(e.heap) > 0 && !e.stopped {
		next := e.heap[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.heap)
		e.now = next.at
		next.fn()
		executed++
	}
	if e.now < until {
		e.now = until
	}
	return executed
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) }
