package sim

import (
	"testing"
	"time"
)

// scaledService builds a cluster with one low-capacity service under an
// autoscaler and a configurable request stream.
func scaledService(t *testing.T, rps int) (*Engine, *Cluster, *Autoscaler) {
	t.Helper()
	eng := NewEngine(71)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{
		Name:     "svc",
		Capacity: 2,
		Endpoints: []Endpoint{{Name: "/", Steps: []Step{
			Compute{Mean: 20 * time.Millisecond, Jitter: 2 * time.Millisecond},
		}}},
	})
	a, err := c.AddAutoscaler(AutoscalerConfig{Service: "svc", MaxReplicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rps > 0 {
		gap := time.Second / time.Duration(rps)
		if err := eng.Every(0, gap, func() {
			c.Call("client", "svc", "/", nil)
		}); err != nil {
			t.Fatal(err)
		}
	}
	return eng, c, a
}

func TestAutoscalerScalesUpUnderLoad(t *testing.T) {
	// Capacity 2 x 20ms => ~100/s per replica set of 2. 180 rps needs
	// nearly full utilization -> scale up.
	eng, _, a := scaledService(t, 180)
	if a.Replicas() != 1 {
		t.Fatalf("initial replicas = %d, want 1", a.Replicas())
	}
	eng.Run(3 * time.Minute)
	if a.Replicas() < 2 {
		t.Fatalf("autoscaler never scaled up under saturating load (replicas=%d)", a.Replicas())
	}
}

func TestAutoscalerScalesBackDownWhenIdle(t *testing.T) {
	eng, c, a := scaledService(t, 0)
	// Manually push to 3 replicas, then leave idle.
	a.replicas = 3
	a.apply()
	_ = c
	eng.Run(2 * time.Minute)
	if a.Replicas() != 1 {
		t.Fatalf("idle service stayed at %d replicas, want 1", a.Replicas())
	}
}

func TestAutoscalerIdleOverheadAccrues(t *testing.T) {
	eng, c, _ := scaledService(t, 0)
	svc, _ := c.Service("svc")
	before := svc.Counters().CPUSeconds
	eng.Run(time.Minute)
	after := svc.Counters().CPUSeconds
	// One replica at 2ms/s for 60s => ~0.12 CPU seconds of pure overhead.
	if after-before < 0.1 {
		t.Fatalf("idle replica accrued only %.4f cpu-s in a minute; overhead missing", after-before)
	}
}

func TestAutoscalerCapacityActuallyGrows(t *testing.T) {
	eng, c, a := scaledService(t, 180)
	eng.Run(3 * time.Minute)
	if a.Replicas() < 2 {
		t.Skip("load pattern did not trigger scaling in this configuration")
	}
	svc, _ := c.Service("svc")
	// With more capacity, new bursts complete concurrently: fire 8
	// simultaneous probes and watch completion time.
	start := eng.Now()
	doneCount := 0
	var last Time
	for i := 0; i < 8; i++ {
		c.Call("probe", "svc", "/", func(Result) {
			doneCount++
			last = eng.Now()
		})
	}
	eng.Run(eng.Now() + 10*time.Second)
	if doneCount != 8 {
		t.Fatalf("only %d/8 probes completed", doneCount)
	}
	// Capacity >= 4 workers: 8 x 20ms jobs finish within ~3 serial
	// rounds even with background traffic.
	if last-start > 2*time.Second {
		t.Errorf("8 probes took %v; capacity increase not effective", last-start)
	}
	_ = svc
}

func TestAutoscalerValidation(t *testing.T) {
	eng := NewEngine(72)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc"})
	cases := []AutoscalerConfig{
		{Service: "ghost"},
		{Service: "svc", MinReplicas: 3, MaxReplicas: 2},
		{Service: "svc", CheckInterval: -time.Second},
		{Service: "svc", ScaleUpAt: 0.2, ScaleDownAt: 0.5},
	}
	for i, cfg := range cases {
		if _, err := c.AddAutoscaler(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}
