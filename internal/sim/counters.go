package sim

// Counters holds the cumulative black-box telemetry of one service. These are
// the "raw metrics" of the paper's observability model (§V-A): CPU seconds
// (container_cpu_user_seconds_total), network packets received/transmitted
// (container_network_{receive,transmit}_packets_total) and console log
// messages (the source of the `msg rate` metric). The remaining fields exist
// for diagnostics and extensions.
//
// Counters are cumulative; the telemetry sampler differences successive
// snapshots to obtain per-interval rates.
type Counters struct {
	// RequestsReceived counts requests admitted by this service.
	RequestsReceived uint64
	// RequestsSent counts downstream requests issued by this service.
	RequestsSent uint64
	// ResponsesOK counts successful responses returned by this service.
	ResponsesOK uint64
	// ResponsesErr counts error responses returned by this service.
	ResponsesErr uint64
	// ErrorsObserved counts failed downstream calls seen by this service.
	ErrorsObserved uint64
	// LogMessages counts every console log line (info and error).
	LogMessages uint64
	// ErrorLogMessages counts only error-level log lines.
	ErrorLogMessages uint64
	// CPUSeconds accumulates compute time consumed by request handling.
	CPUSeconds float64
	// BusySeconds accumulates worker-slot occupancy: the time handlers
	// spent executing *or blocked on downstream calls*. It is the
	// thread-pool-utilization analogue that makes latency faults visible
	// (they consume no extra CPU but hold slots longer, upstream included).
	BusySeconds float64
	// RxPackets counts network packets received (requests in, responses in).
	RxPackets uint64
	// TxPackets counts network packets transmitted (requests out, responses out).
	TxPackets uint64
	// QueueDrops counts requests rejected because the queue limit was hit.
	QueueDrops uint64
}

// Sub returns the element-wise difference c - prev. It is used by samplers to
// turn cumulative counters into per-interval deltas.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		RequestsReceived: c.RequestsReceived - prev.RequestsReceived,
		RequestsSent:     c.RequestsSent - prev.RequestsSent,
		ResponsesOK:      c.ResponsesOK - prev.ResponsesOK,
		ResponsesErr:     c.ResponsesErr - prev.ResponsesErr,
		ErrorsObserved:   c.ErrorsObserved - prev.ErrorsObserved,
		LogMessages:      c.LogMessages - prev.LogMessages,
		ErrorLogMessages: c.ErrorLogMessages - prev.ErrorLogMessages,
		CPUSeconds:       c.CPUSeconds - prev.CPUSeconds,
		BusySeconds:      c.BusySeconds - prev.BusySeconds,
		RxPackets:        c.RxPackets - prev.RxPackets,
		TxPackets:        c.TxPackets - prev.TxPackets,
		QueueDrops:       c.QueueDrops - prev.QueueDrops,
	}
}

// Add returns the element-wise sum of c and other. It is used when
// aggregating per-interval deltas into hopping windows.
func (c Counters) Add(other Counters) Counters {
	return Counters{
		RequestsReceived: c.RequestsReceived + other.RequestsReceived,
		RequestsSent:     c.RequestsSent + other.RequestsSent,
		ResponsesOK:      c.ResponsesOK + other.ResponsesOK,
		ResponsesErr:     c.ResponsesErr + other.ResponsesErr,
		ErrorsObserved:   c.ErrorsObserved + other.ErrorsObserved,
		LogMessages:      c.LogMessages + other.LogMessages,
		ErrorLogMessages: c.ErrorLogMessages + other.ErrorLogMessages,
		CPUSeconds:       c.CPUSeconds + other.CPUSeconds,
		BusySeconds:      c.BusySeconds + other.BusySeconds,
		RxPackets:        c.RxPackets + other.RxPackets,
		TxPackets:        c.TxPackets + other.TxPackets,
		QueueDrops:       c.QueueDrops + other.QueueDrops,
	}
}
