package sim

import (
	"testing"
	"time"
)

func TestSetCapacityClampsAndReports(t *testing.T) {
	eng := NewEngine(94)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "svc", Capacity: 3})
	svc, _ := c.Service("svc")
	if got := svc.Capacity(); got != 3 {
		t.Fatalf("Capacity() = %d, want 3", got)
	}
	svc.SetCapacity(8)
	if got := svc.Capacity(); got != 8 {
		t.Fatalf("after SetCapacity(8): Capacity() = %d, want 8", got)
	}
	svc.SetCapacity(0)
	if got := svc.Capacity(); got != 1 {
		t.Fatalf("after SetCapacity(0): Capacity() = %d, want clamp to 1", got)
	}
	svc.SetCapacity(-5)
	if got := svc.Capacity(); got != 1 {
		t.Fatalf("after SetCapacity(-5): Capacity() = %d, want clamp to 1", got)
	}
}

func TestSetCapacityWidensThroughput(t *testing.T) {
	// One slow endpoint, capacity 1: requests serialize. Doubling capacity
	// mid-run must let queued work drain in parallel afterwards.
	run := func(scale bool) int {
		eng := NewEngine(95)
		c := NewCluster(eng, WithNetworkDelay(0, 0))
		c.MustAddService(ServiceConfig{Name: "svc", Capacity: 1, QueueLimit: 128, Endpoints: []Endpoint{{
			Name: "/", Steps: []Step{Compute{Mean: 100 * time.Millisecond}},
		}}})
		done := 0
		if err := eng.Every(0, 60*time.Millisecond, func() {
			c.Call("client", "svc", "/", func(r Result) {
				if r.Err == nil {
					done++
				}
			})
		}); err != nil {
			t.Fatal(err)
		}
		if scale {
			eng.After(time.Second, func() {
				svc, _ := c.Service("svc")
				svc.SetCapacity(4)
			})
		}
		eng.Run(5 * time.Second)
		return done
	}
	base, scaled := run(false), run(true)
	if scaled <= base {
		t.Fatalf("scaled run completed %d requests, base %d; capacity increase should raise throughput", scaled, base)
	}
}

func TestNodeNamesSorted(t *testing.T) {
	eng := NewEngine(96)
	c := NewCluster(eng)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := c.AddNode(NodeConfig{Name: n, Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.NodeNames()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("NodeNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeNames() = %v, want %v", got, want)
		}
	}
}

func TestPlacedOnAndEvacuateNode(t *testing.T) {
	eng := NewEngine(97)
	c := NewCluster(eng)
	if err := c.AddNode(NodeConfig{Name: "n1", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(NodeConfig{Name: "n2", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b", "a", "c"} {
		c.MustAddService(ServiceConfig{Name: name})
	}
	for _, name := range []string{"b", "a"} {
		if err := c.Place(name, "n1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Place("c", "n2"); err != nil {
		t.Fatal(err)
	}

	if _, err := c.PlacedOn("ghost"); err == nil {
		t.Error("PlacedOn accepted unknown node")
	}
	placed, err := c.PlacedOn("n1")
	if err != nil {
		t.Fatal(err)
	}
	// Registration order, not placement or alphabetical order.
	if len(placed) != 2 || placed[0] != "b" || placed[1] != "a" {
		t.Fatalf("PlacedOn(n1) = %v, want [b a]", placed)
	}

	if _, err := c.EvacuateNode("ghost"); err == nil {
		t.Error("EvacuateNode accepted unknown node")
	}
	moved, err := c.EvacuateNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("EvacuateNode(n1) moved %d services, want 2", moved)
	}
	placed, err = c.PlacedOn("n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 0 {
		t.Fatalf("after evacuation PlacedOn(n1) = %v, want empty", placed)
	}
	// Other nodes untouched.
	placed, err = c.PlacedOn("n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 || placed[0] != "c" {
		t.Fatalf("PlacedOn(n2) = %v, want [c]", placed)
	}
}

func TestEvacuateNodeEscapesContention(t *testing.T) {
	// A saturated 1-core node doubles wall time for two concurrent
	// computes. After evacuation, new computes run uncontended.
	eng := NewEngine(98)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	if err := c.AddNode(NodeConfig{Name: "n1", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	c.MustAddService(ServiceConfig{Name: "svc", Capacity: 4, Endpoints: []Endpoint{{
		Name: "/", Steps: []Step{Compute{Mean: 100 * time.Millisecond}},
	}}})
	if err := c.Place("svc", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeBackgroundLoad("n1", 1); err != nil {
		t.Fatal(err)
	}
	var contended, free Time
	start := eng.Now()
	c.Call("client", "svc", "/", func(Result) { contended = eng.Now() - start })
	eng.After(time.Second, func() {
		if _, err := c.EvacuateNode("n1"); err != nil {
			t.Error(err)
		}
		at := eng.Now()
		c.Call("client", "svc", "/", func(Result) { free = eng.Now() - at })
	})
	eng.Run(3 * time.Second)
	if contended < 150*time.Millisecond {
		t.Fatalf("contended compute took %v, want ≥150ms under background load", contended)
	}
	if free > 120*time.Millisecond {
		t.Fatalf("post-evacuation compute took %v, want ~100ms uncontended", free)
	}
}
