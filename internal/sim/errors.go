package sim

import (
	"errors"
	"fmt"
)

var (
	// ErrServiceUnavailable is returned for calls to a service with an
	// active "service unavailable" fault (the paper's
	// http-service-unavailable injection: connections are refused before
	// the target ever sees them).
	ErrServiceUnavailable = errors.New("service unavailable")

	// ErrQueueFull is returned when a bounded request queue overflows.
	ErrQueueFull = errors.New("request queue full")

	// ErrInjectedFault is returned by an error-rate fault (extension fault
	// type; the target handles the request but responds with an error).
	ErrInjectedFault = errors.New("injected handler fault")

	// ErrCallTimeout is returned when a CallStep's per-attempt timeout
	// elapses before the response arrives.
	ErrCallTimeout = errors.New("call timed out")

	// ErrNilEngine reports a Cluster built with a nil engine. The
	// construction error surfaces from AddService/AddPoller/Call instead of
	// panicking inside NewCluster.
	ErrNilEngine = errors.New("sim: cluster built with nil engine")
)

// UnknownServiceError reports a call routed to a service name that is not
// registered in the cluster. It indicates a topology bug, not a fault.
type UnknownServiceError struct {
	Name string
}

func (e *UnknownServiceError) Error() string {
	return fmt.Sprintf("unknown service %q", e.Name)
}

// UnknownEndpointError reports a call to an endpoint a service does not
// expose.
type UnknownEndpointError struct {
	Service  string
	Endpoint string
}

func (e *UnknownEndpointError) Error() string {
	return fmt.Sprintf("service %q has no endpoint %q", e.Service, e.Endpoint)
}

// DownstreamError wraps a failure observed while calling a downstream
// service; it is what propagates hop by hop back along the response path.
type DownstreamError struct {
	Caller   string
	Target   string
	Endpoint string
	Err      error
}

func (e *DownstreamError) Error() string {
	return fmt.Sprintf("%s: call %s/%s: %v", e.Caller, e.Target, e.Endpoint, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is/errors.As matching.
func (e *DownstreamError) Unwrap() error { return e.Err }
