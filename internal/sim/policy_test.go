package sim

import (
	"errors"
	"testing"
	"time"
)

func TestRetriesMaskTransientFaults(t *testing.T) {
	eng := NewEngine(51)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "flaky", Endpoints: []Endpoint{{Name: "/"}}})
	c.MustAddService(ServiceConfig{Name: "caller", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		CallStep{Target: "flaky", Endpoint: "/", Retries: 5},
	}}}})
	flaky, _ := c.Service("flaky")
	flaky.SetErrorRate(0.5)

	ok, failed := 0, 0
	for i := 0; i < 100; i++ {
		eng.After(time.Duration(i)*20*time.Millisecond, func() {
			c.Call("client", "caller", "work", func(r Result) {
				if r.Err == nil {
					ok++
				} else {
					failed++
				}
			})
		})
	}
	eng.Run(time.Minute)
	if ok+failed != 100 {
		t.Fatalf("completed %d calls, want 100", ok+failed)
	}
	// P(6 consecutive failures) = 0.5^6 ≈ 1.6%: retries mask nearly all.
	if failed > 10 {
		t.Fatalf("%d/100 calls failed despite 5 retries against a 50%% fault", failed)
	}
	// But the masking is visible in telemetry: the caller logged an error
	// per failed attempt (the paper's §III-B point that observability
	// depends on code-level error handling).
	caller, _ := c.Service("caller")
	if got := caller.Counters().ErrorLogMessages; got < 30 {
		t.Fatalf("caller logged %d errors; retries should still surface failed attempts (~50+)", got)
	}
}

func TestRetriesAgainstHardFaultStillFail(t *testing.T) {
	eng := NewEngine(52)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "dead", Endpoints: []Endpoint{{Name: "/"}}})
	c.MustAddService(ServiceConfig{Name: "caller", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		CallStep{Target: "dead", Endpoint: "/", Retries: 3},
	}}}})
	dead, _ := c.Service("dead")
	dead.SetUnavailable(true)

	var res *Result
	c.Call("client", "caller", "work", func(r Result) { res = &r })
	eng.Run(time.Second)
	if res == nil || !errors.Is(res.Err, ErrServiceUnavailable) {
		t.Fatalf("hard fault should still fail after retries, got %+v", res)
	}
	caller, _ := c.Service("caller")
	// 1 original + 3 retries = 4 observed failures.
	if got := caller.Counters().ErrorsObserved; got != 4 {
		t.Fatalf("caller observed %d errors, want 4 (retry storm visible)", got)
	}
	// And the dead service was attempted 4 times at the network level:
	// each refused attempt bumps the caller's tx.
	if got := caller.Counters().RequestsSent; got != 4 {
		t.Fatalf("caller sent %d requests, want 4", got)
	}
}

func TestCallTimeoutFiresOnSlowDownstream(t *testing.T) {
	eng := NewEngine(53)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	c.MustAddService(ServiceConfig{Name: "slow", Endpoints: []Endpoint{{Name: "/", Steps: []Step{
		Compute{Mean: 500 * time.Millisecond},
	}}}})
	c.MustAddService(ServiceConfig{Name: "caller", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		CallStep{Target: "slow", Endpoint: "/", Timeout: 50 * time.Millisecond},
	}}}})

	var res *Result
	var doneAt Time
	c.Call("client", "caller", "work", func(r Result) {
		res = &r
		doneAt = eng.Now()
	})
	eng.Run(2 * time.Second)
	if res == nil || !errors.Is(res.Err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout, got %+v", res)
	}
	if doneAt > 100*time.Millisecond {
		t.Fatalf("timed-out call completed at %v, want ~50ms", doneAt)
	}
	// The downstream still did the (wasted) work.
	slow, _ := c.Service("slow")
	if slow.Counters().RequestsReceived != 1 {
		t.Fatal("downstream never received the request")
	}
	eng.Run(3 * time.Second)
	if slow.Counters().ResponsesOK != 1 {
		t.Fatal("downstream response was not produced (late responses should be discarded, not prevented)")
	}
}

func TestCallTimeoutNotTriggeredOnFastResponse(t *testing.T) {
	eng := NewEngine(54)
	c := NewCluster(eng)
	c.MustAddService(ServiceConfig{Name: "fast", Endpoints: []Endpoint{{Name: "/", Steps: []Step{
		Compute{Mean: time.Millisecond},
	}}}})
	c.MustAddService(ServiceConfig{Name: "caller", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		CallStep{Target: "fast", Endpoint: "/", Timeout: time.Second},
	}}}})
	var res *Result
	c.Call("client", "caller", "work", func(r Result) { res = &r })
	eng.Run(5 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("fast call failed under generous timeout: %+v", res)
	}
	// The caller must complete exactly once despite the armed timer.
	caller, _ := c.Service("caller")
	if got := caller.Counters().ResponsesOK; got != 1 {
		t.Fatalf("caller produced %d responses, want 1", got)
	}
}

func TestTimeoutWithRetriesRecoversFromOneSlowAttempt(t *testing.T) {
	// A service that is slow only while extra latency is injected: the
	// first attempt times out; the fault is cleared before the retry,
	// which then succeeds.
	eng := NewEngine(55)
	c := NewCluster(eng, WithNetworkDelay(0, 0))
	c.MustAddService(ServiceConfig{Name: "svc", Endpoints: []Endpoint{{Name: "/", Steps: []Step{
		Compute{Mean: time.Millisecond},
	}}}})
	c.MustAddService(ServiceConfig{Name: "caller", Endpoints: []Endpoint{{Name: "work", Steps: []Step{
		CallStep{Target: "svc", Endpoint: "/", Timeout: 100 * time.Millisecond, Retries: 2},
	}}}})
	svc, _ := c.Service("svc")
	svc.SetExtraLatency(time.Second)
	eng.After(150*time.Millisecond, func() { svc.SetExtraLatency(0) })

	var res *Result
	c.Call("client", "caller", "work", func(r Result) { res = &r })
	eng.Run(10 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("retry after timeout should succeed, got %+v", res)
	}
}
