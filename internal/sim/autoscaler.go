package sim

import (
	"fmt"
	"time"
)

// Autoscaler defaults.
const (
	DefaultScaleCheckInterval = 15 * time.Second
	DefaultScaleUpAt          = 0.7
	DefaultScaleDownAt        = 0.25
	DefaultMaxReplicas        = 4
	// DefaultIdleCPUPerReplica is the per-replica runtime overhead (GC,
	// health probes, metric scraping) accrued per second regardless of
	// traffic.
	DefaultIdleCPUPerReplica = 2 * time.Millisecond
)

// AutoscalerConfig attaches a horizontal autoscaler to one service. The
// paper (§IV-B) names autoscaling as the canonical *latent confounder*: an
// unobserved control loop that changes a service's capacity and resource
// consumption in response to load, leaving fingerprints in the metrics that
// no fault produced. The simulator models replicas as multiplied worker
// capacity plus per-replica idle CPU overhead.
type AutoscalerConfig struct {
	// Service is the scaled service.
	Service string
	// MinReplicas / MaxReplicas bound the replica count (defaults 1 / 4).
	MinReplicas int
	MaxReplicas int
	// CheckInterval is the control-loop period (default 15s).
	CheckInterval time.Duration
	// ScaleUpAt / ScaleDownAt are worker-utilization thresholds measured
	// over the last interval (defaults 0.7 / 0.25).
	ScaleUpAt   float64
	ScaleDownAt float64
	// IdleCPUPerReplica is idle overhead per replica per second of
	// virtual time (default DefaultIdleCPUPerReplica).
	IdleCPUPerReplica time.Duration
}

// Autoscaler is the running control loop.
type Autoscaler struct {
	cluster      *Cluster
	svc          *Service
	cfg          AutoscalerConfig
	baseCapacity int
	replicas     int
	prevBusy     float64
}

// AddAutoscaler validates cfg, attaches the control loop, and starts it.
func (c *Cluster) AddAutoscaler(cfg AutoscalerConfig) (*Autoscaler, error) {
	svc, ok := c.services[cfg.Service]
	if !ok {
		return nil, fmt.Errorf("sim: autoscaler: %w", &UnknownServiceError{Name: cfg.Service})
	}
	if cfg.MinReplicas == 0 {
		cfg.MinReplicas = 1
	}
	if cfg.MaxReplicas == 0 {
		cfg.MaxReplicas = DefaultMaxReplicas
	}
	if cfg.MinReplicas < 1 || cfg.MaxReplicas < cfg.MinReplicas {
		return nil, fmt.Errorf("sim: autoscaler: bad replica bounds [%d, %d]", cfg.MinReplicas, cfg.MaxReplicas)
	}
	if cfg.CheckInterval == 0 {
		cfg.CheckInterval = DefaultScaleCheckInterval
	}
	if cfg.CheckInterval < 0 {
		return nil, fmt.Errorf("sim: autoscaler: negative check interval %v", cfg.CheckInterval)
	}
	if cfg.ScaleUpAt == 0 {
		cfg.ScaleUpAt = DefaultScaleUpAt
	}
	if cfg.ScaleDownAt == 0 {
		cfg.ScaleDownAt = DefaultScaleDownAt
	}
	if cfg.ScaleDownAt >= cfg.ScaleUpAt {
		return nil, fmt.Errorf("sim: autoscaler: scale-down threshold %v must be below scale-up %v",
			cfg.ScaleDownAt, cfg.ScaleUpAt)
	}
	if cfg.IdleCPUPerReplica == 0 {
		cfg.IdleCPUPerReplica = DefaultIdleCPUPerReplica
	}
	a := &Autoscaler{
		cluster:      c,
		svc:          svc,
		cfg:          cfg,
		baseCapacity: svc.cfg.Capacity,
		replicas:     cfg.MinReplicas,
		prevBusy:     svc.counters.BusySeconds,
	}
	a.apply()
	if err := c.eng.Every(c.eng.Now()+cfg.CheckInterval, cfg.CheckInterval, a.tick); err != nil {
		return nil, err
	}
	return a, nil
}

// Replicas reports the current replica count.
func (a *Autoscaler) Replicas() int { return a.replicas }

// apply reflects the replica count in the service's worker capacity.
func (a *Autoscaler) apply() {
	a.svc.SetCapacity(a.baseCapacity * a.replicas)
}

// tick runs one control-loop iteration: accrue idle overhead, measure
// utilization, scale.
func (a *Autoscaler) tick() {
	interval := a.cfg.CheckInterval.Seconds()
	// Idle overhead: every replica burns CPU whether or not it serves —
	// the unobserved side effect that confounds CPU telemetry.
	a.svc.counters.CPUSeconds += a.cfg.IdleCPUPerReplica.Seconds() * interval * float64(a.replicas)

	busy := a.svc.counters.BusySeconds
	utilization := (busy - a.prevBusy) / (interval * float64(a.svc.cfg.Capacity))
	a.prevBusy = busy

	switch {
	case utilization > a.cfg.ScaleUpAt && a.replicas < a.cfg.MaxReplicas:
		a.replicas++
		a.apply()
	case utilization < a.cfg.ScaleDownAt && a.replicas > a.cfg.MinReplicas:
		a.replicas--
		a.apply()
	}
}
