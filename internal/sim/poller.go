package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// PollCtx is the API available to a poller body while it executes one
// iteration. All of its call methods are continuation-passing: they return
// immediately and invoke the supplied callback when the simulated operation
// completes.
type PollCtx struct {
	cluster *Cluster
	svc     *Service
}

// Now reports the current virtual time.
func (p *PollCtx) Now() Time { return p.cluster.eng.Now() }

// Compute consumes d of CPU on the poller's service, then runs next.
func (p *PollCtx) Compute(d time.Duration, next func()) {
	p.svc.addCPU(d)
	p.cluster.eng.After(d, next)
}

// Call issues a synchronous request to target/endpoint on behalf of the
// poller's service.
func (p *PollCtx) Call(target, endpoint string, done func(Result)) {
	p.cluster.Call(p.svc.cfg.Name, target, endpoint, done)
}

// CallKV issues a key-value operation on behalf of the poller's service.
func (p *PollCtx) CallKV(store string, op KVOp, done func(Result)) {
	p.cluster.CallKV(p.svc.cfg.Name, store, op, done)
}

// Log writes one console log line for the poller's service.
func (p *PollCtx) Log(isError bool) { p.svc.log(isError) }

// Rand exposes the engine's deterministic random source for stochastic
// worker behaviour (e.g. sampled logging).
func (p *PollCtx) Rand() *rand.Rand { return p.cluster.eng.Rand() }

// ObserveError records a failed downstream call (error log included unless
// the service suppresses error logs).
func (p *PollCtx) ObserveError() { p.svc.observeDownstreamError() }

// PollerConfig declares a background worker service — a component that is
// never called by anyone but acts on its own clock, like CausalBench's node
// F, which drains the `items` counter from node D and calls node G.
type PollerConfig struct {
	// Service declares the identity (name, log behaviour) of the worker.
	// Endpoints are allowed but unusual; Capacity defaults to 1.
	Service ServiceConfig
	// Interval is the pause between the end of one body execution and the
	// start of the next.
	Interval time.Duration
	// InitialDelay postpones the first iteration; zero starts at Interval.
	InitialDelay time.Duration
	// Body runs one iteration. It must invoke done exactly once when the
	// iteration is finished; the next iteration is scheduled Interval
	// later. Pausing the service (SetPaused) skips iterations.
	Body func(ctx *PollCtx, done func())
}

// Poller drives a PollerConfig on the cluster's event loop.
type Poller struct {
	cluster *Cluster
	svc     *Service
	cfg     PollerConfig
}

// AddPoller registers the worker's service and starts its polling loop.
func (c *Cluster) AddPoller(cfg PollerConfig) (*Service, error) {
	if cfg.Body == nil {
		return nil, fmt.Errorf("sim: poller %q needs a body", cfg.Service.Name)
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("sim: poller %q needs a positive interval, got %v", cfg.Service.Name, cfg.Interval)
	}
	if cfg.Service.Capacity == 0 {
		cfg.Service.Capacity = defaultPollerCapacity
	}
	svc, err := c.AddService(cfg.Service)
	if err != nil {
		return nil, err
	}
	p := &Poller{cluster: c, svc: svc, cfg: cfg}
	c.pollers = append(c.pollers, p)
	start := cfg.InitialDelay
	if start <= 0 {
		start = cfg.Interval
	}
	c.eng.After(start, p.tick)
	return svc, nil
}

// tick runs one iteration (or skips it while paused) and reschedules itself.
func (p *Poller) tick() {
	if p.svc.fault.paused {
		p.cluster.eng.After(p.cfg.Interval, p.tick)
		return
	}
	ctx := &PollCtx{cluster: p.cluster, svc: p.svc}
	done := func() {
		p.cluster.eng.After(p.cfg.Interval, p.tick)
	}
	p.cfg.Body(ctx, done)
}
