package sim

import (
	"fmt"
	"time"
)

// Default tuning constants. They are deliberately modest: the experiments in
// this repository care about distribution *shifts*, not absolute latencies.
const (
	// DefaultCapacity is the number of requests a service handles
	// concurrently when ServiceConfig.Capacity is zero.
	DefaultCapacity = 16
	// DefaultKVOpCost is the CPU time a key-value store spends per
	// operation when ServiceConfig.KVOpCost is zero.
	DefaultKVOpCost = 300 * time.Microsecond
	// errorRateFaultCost is the handler time consumed before an
	// error-rate fault responds with an injected error.
	errorRateFaultCost = 500 * time.Microsecond
)

// ServiceConfig declares one microservice of the cluster.
type ServiceConfig struct {
	// Name identifies the service; it must be unique within the cluster.
	Name string
	// Capacity bounds concurrent request handling (worker threads).
	// Zero means DefaultCapacity.
	Capacity int
	// QueueLimit bounds the backlog of admitted-but-unserved requests.
	// Zero means unbounded.
	QueueLimit int
	// Endpoints lists the handlers this service exposes. Ignored for KV
	// services.
	Endpoints []Endpoint
	// KV marks the service as a key-value store (the CausalBench node D).
	KV bool
	// KVOpCost is the CPU cost of one KV operation; zero means
	// DefaultKVOpCost.
	KVOpCost time.Duration
	// SuppressErrorLogs prevents the service from writing error log lines
	// when downstream calls fail — the "developer catches the exception
	// silently" behaviour from §III-B of the paper. The zero value keeps
	// the conventional behaviour of logging every observed error.
	SuppressErrorLogs bool
	// DropTraceContext models a service without tracing instrumentation:
	// its downstream calls start fresh traces instead of continuing the
	// caller's, breaking the span tree (the partial-adoption reality the
	// paper's introduction describes).
	DropTraceContext bool
}

// faultState carries the active chaos injections of a service. The paper's
// evaluation uses only Unavailable; the rest are extension fault types.
// scrapeLoss and corruption act on the observability plane: they degrade what
// a telemetry scrape of the service reports without touching the service.
type faultState struct {
	unavailable  bool
	extraLatency time.Duration
	errorRate    float64
	paused       bool
	scrapeLoss   float64
	corruption   float64
}

// Result is the outcome of a call delivered to the caller's continuation.
type Result struct {
	// Err is nil on success.
	Err error
	// Value carries the result of KV operations.
	Value int64
}

// workItem is one admitted request waiting for (or occupying) a worker slot.
type workItem struct {
	from      string
	endpoint  string
	kvOp      *KVOp
	respond   func(Result)
	trace     traceCtx
	startedAt Time
}

// Service is one simulated microservice: a named queueing station with a
// fixed worker capacity, declarative request handlers, cumulative telemetry
// counters, and chaos-controllable fault state.
type Service struct {
	cluster   *Cluster
	cfg       ServiceConfig
	endpoints map[string]*Endpoint
	counters  Counters
	fault     faultState
	busy      int
	queue     []workItem
	kv        map[string]int64
	node      *node
	// logEvery tracks per-(endpoint,step) execution counts for LogEveryN.
	logEvery map[logEveryKey]uint64
}

type logEveryKey struct {
	endpoint string
	step     int
}

func newService(c *Cluster, cfg ServiceConfig) (*Service, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("sim: service name must not be empty")
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("sim: service %q: capacity must be positive, got %d", cfg.Name, cfg.Capacity)
	}
	if cfg.KVOpCost == 0 {
		cfg.KVOpCost = DefaultKVOpCost
	}
	s := &Service{
		cluster:   c,
		cfg:       cfg,
		endpoints: make(map[string]*Endpoint, len(cfg.Endpoints)),
		logEvery:  make(map[logEveryKey]uint64),
	}
	if cfg.KV {
		s.kv = make(map[string]int64)
	}
	for i := range cfg.Endpoints {
		ep := &cfg.Endpoints[i]
		if _, dup := s.endpoints[ep.Name]; dup {
			return nil, fmt.Errorf("sim: service %q: duplicate endpoint %q", cfg.Name, ep.Name)
		}
		s.endpoints[ep.Name] = ep
	}
	return s, nil
}

// Name returns the service name.
func (s *Service) Name() string { return s.cfg.Name }

// Counters returns a copy of the cumulative telemetry counters.
func (s *Service) Counters() Counters { return s.counters }

// IsKV reports whether the service is a key-value store.
func (s *Service) IsKV() bool { return s.cfg.KV }

// Endpoints returns the endpoint names the service exposes, in declaration
// order.
func (s *Service) Endpoints() []string {
	names := make([]string, 0, len(s.cfg.Endpoints))
	for i := range s.cfg.Endpoints {
		names = append(names, s.cfg.Endpoints[i].Name)
	}
	return names
}

// KVValue reads a key directly from a KV service's state, bypassing the
// simulation. It exists for tests and inspection; simulated components must
// use CallKV.
func (s *Service) KVValue(key string) int64 { return s.kv[key] }

// Capacity reports the current concurrent-handling capacity (worker slots ×
// replicas).
func (s *Service) Capacity() int { return s.cfg.Capacity }

// SetCapacity resets the worker capacity — the horizontal-scaling
// intervention (adding or removing replicas multiplies the worker pool).
// Values below one are clamped to one: a service cannot scale to zero
// workers. The new capacity takes effect at the next dispatch opportunity
// (request arrival or handler completion), matching how the autoscaler's
// replica changes have always applied.
func (s *Service) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	s.cfg.Capacity = n
}

// SetUnavailable toggles the paper's http-service-unavailable fault: while
// set, every call to the service fails fast without reaching it.
func (s *Service) SetUnavailable(v bool) { s.fault.unavailable = v }

// Unavailable reports whether the service-unavailable fault is active.
func (s *Service) Unavailable() bool { return s.fault.unavailable }

// SetExtraLatency injects d of additional delay at the start of every
// handler execution (extension fault type).
func (s *Service) SetExtraLatency(d time.Duration) { s.fault.extraLatency = d }

// SetErrorRate makes the fraction p of handled requests fail with
// ErrInjectedFault (extension fault type). p is clamped to [0, 1].
func (s *Service) SetErrorRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s.fault.errorRate = p
}

// SetPaused suspends background pollers attached to this service
// (process-kill extension fault). It has no effect on request handling.
func (s *Service) SetPaused(v bool) { s.fault.paused = v }

// SetScrapeLossRate makes the fraction p of telemetry scrapes of this service
// fail (telemetry-plane fault: the service keeps running, its monitoring goes
// dark intermittently). p is clamped to [0, 1].
func (s *Service) SetScrapeLossRate(p float64) { s.fault.scrapeLoss = clamp01(p) }

// ScrapeLossRate reports the active scrape-loss fraction.
func (s *Service) ScrapeLossRate() float64 { return s.fault.scrapeLoss }

// SetSampleCorruptionRate makes the fraction p of telemetry scrapes of this
// service return corrupted readings (telemetry-plane fault). p is clamped to
// [0, 1].
func (s *Service) SetSampleCorruptionRate(p float64) { s.fault.corruption = clamp01(p) }

// SampleCorruptionRate reports the active sample-corruption fraction.
func (s *Service) SampleCorruptionRate() float64 { return s.fault.corruption }

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ScrapeResult is one attempted telemetry read of a service's counters.
type ScrapeResult struct {
	// Counters holds the cumulative counters at scrape time. Meaningless
	// when Missing is set.
	Counters Counters
	// Missing marks a scrape dropped by an active scrape-loss fault.
	Missing bool
	// Corrupt marks a reading mangled by an active sample-corruption
	// fault. The counters themselves are the true values; the collector is
	// responsible for mangling the derived sample, so that the cumulative
	// stream it differences against stays consistent.
	Corrupt bool
}

// Scrape reads the cumulative counters the way a monitoring scrape would,
// subject to the service's telemetry-plane fault state. With no telemetry
// fault active it consumes no randomness, so fault-free runs are
// bit-identical to runs that never call into the fault path.
func (s *Service) Scrape() ScrapeResult {
	if p := s.fault.scrapeLoss; p > 0 && s.cluster.eng.Rand().Float64() < p {
		return ScrapeResult{Missing: true}
	}
	res := ScrapeResult{Counters: s.counters}
	if p := s.fault.corruption; p > 0 && s.cluster.eng.Rand().Float64() < p {
		res.Corrupt = true
	}
	return res
}

// log records one console log line.
func (s *Service) log(isError bool) {
	s.counters.LogMessages++
	if isError {
		s.counters.ErrorLogMessages++
	}
}

// observeDownstreamError records a failed downstream call and, unless the
// service suppresses error logs, writes an error log line. This is the
// mechanism by which faults become visible on the response path (§III-A).
func (s *Service) observeDownstreamError() {
	s.counters.ErrorsObserved++
	if !s.cfg.SuppressErrorLogs {
		s.log(true)
	}
}

// handleArrival admits a request (already past the network) into the queue.
func (s *Service) handleArrival(item workItem) {
	s.counters.RxPackets++
	if s.cfg.QueueLimit > 0 && s.busy >= s.cfg.Capacity && len(s.queue) >= s.cfg.QueueLimit {
		s.counters.QueueDrops++
		s.respond(item, Result{Err: fmt.Errorf("%s: %w", s.cfg.Name, ErrQueueFull)})
		return
	}
	s.counters.RequestsReceived++
	s.queue = append(s.queue, item)
	s.dispatch()
}

// dispatch starts handlers while worker slots and queued work are available.
func (s *Service) dispatch() {
	for s.busy < s.cfg.Capacity && len(s.queue) > 0 {
		item := s.queue[0]
		s.queue = s.queue[1:]
		s.busy++
		s.start(item)
	}
}

// start begins executing one admitted request on an occupied worker slot.
func (s *Service) start(item workItem) {
	item.startedAt = s.cluster.eng.Now()
	begin := func() {
		if p := s.fault.errorRate; p > 0 && s.cluster.eng.Rand().Float64() < p {
			s.addCPU(errorRateFaultCost)
			s.finish(item, Result{Err: fmt.Errorf("%s: %w", s.cfg.Name, ErrInjectedFault)})
			return
		}
		if s.cfg.KV {
			s.startKV(item)
			return
		}
		if item.kvOp != nil {
			s.finish(item, Result{Err: fmt.Errorf("%s: kv operation sent to non-kv service", s.cfg.Name)})
			return
		}
		ep, ok := s.endpoints[item.endpoint]
		if !ok {
			s.finish(item, Result{Err: &UnknownEndpointError{Service: s.cfg.Name, Endpoint: item.endpoint}})
			return
		}
		s.runSteps(item, ep, 0)
	}
	if d := s.fault.extraLatency; d > 0 {
		s.cluster.eng.After(d, begin)
		return
	}
	begin()
}

// startKV executes a key-value operation after its CPU cost elapses. The
// cost carries one third of jitter so that the store's CPU metrics have the
// continuous variance of a real container rather than a deterministic
// per-op constant.
func (s *Service) startKV(item workItem) {
	if item.kvOp == nil {
		s.finish(item, Result{Err: fmt.Errorf("%s: non-kv request sent to kv service", s.cfg.Name)})
		return
	}
	op := *item.kvOp
	cost := s.sampleCompute(Compute{Mean: s.cfg.KVOpCost, Jitter: s.cfg.KVOpCost / 3})
	s.computeOn(cost, func() {
		val := op.apply(s.kv)
		s.finish(item, Result{Value: val})
	})
}

// runSteps executes the endpoint program from step index i onward in
// continuation-passing style over the event loop.
func (s *Service) runSteps(item workItem, ep *Endpoint, i int) {
	if i >= len(ep.Steps) {
		s.finish(item, Result{})
		return
	}
	next := func() { s.runSteps(item, ep, i+1) }
	switch step := ep.Steps[i].(type) {
	case Compute:
		s.computeOn(s.sampleCompute(step), next)
	case CallStep:
		observe := func(res Result) {
			if res.Err != nil {
				s.observeDownstreamError()
			}
		}
		if step.Async {
			s.issueCall(item, workItem{from: s.cfg.Name, endpoint: step.Endpoint, respond: observe}, step.Target)
			next()
			return
		}
		s.callWithPolicy(item, step, func(res Result) {
			if res.Err != nil {
				if !step.IgnoreError {
					s.finish(item, Result{Err: &DownstreamError{
						Caller:   s.cfg.Name,
						Target:   step.Target,
						Endpoint: step.Endpoint,
						Err:      res.Err,
					}})
					return
				}
			}
			next()
		})
	case KVIncr:
		s.runKVStep(item, KVCall{Store: step.Store, Op: KVIncrBy, Key: step.Key, Delta: step.Delta}, next)
	case KVCall:
		s.runKVStep(item, step, next)
	case LogEveryN:
		key := logEveryKey{endpoint: ep.Name, step: i}
		s.logEvery[key]++
		n := step.N
		if n <= 1 {
			n = 1
		}
		if s.logEvery[key]%n == 0 {
			s.log(step.Error)
		}
		next()
	case LogSampled:
		if step.P > 0 && s.cluster.eng.Rand().Float64() < step.P {
			s.log(step.Error)
		}
		next()
	default:
		s.finish(item, Result{Err: fmt.Errorf("%s: endpoint %q: unsupported step %T", s.cfg.Name, ep.Name, step)})
	}
}

// runKVStep executes one key-value store step with CallStep-like error
// semantics.
func (s *Service) runKVStep(item workItem, step KVCall, next func()) {
	op := KVOp{Kind: step.Op, Key: step.Key, Delta: step.Delta}
	s.issueCall(item, workItem{from: s.cfg.Name, kvOp: &op, respond: func(res Result) {
		if res.Err != nil {
			s.observeDownstreamError()
			if !step.IgnoreError {
				s.finish(item, Result{Err: &DownstreamError{
					Caller:   s.cfg.Name,
					Target:   step.Store,
					Endpoint: op.Kind.String() + " " + step.Key,
					Err:      res.Err,
				}})
				return
			}
		}
		next()
	}}, step.Store)
}

// callWithPolicy issues a synchronous downstream call applying the step's
// retry and timeout policy. Every failed attempt is observed (error log
// included unless suppressed); done receives the final outcome.
func (s *Service) callWithPolicy(parent workItem, step CallStep, done func(Result)) {
	attempt := 0
	var tryOnce func()
	tryOnce = func() {
		settled := false
		handle := func(res Result) {
			if settled {
				// A response racing a fired timeout (or vice versa)
				// is discarded.
				return
			}
			settled = true
			if res.Err == nil {
				done(res)
				return
			}
			s.observeDownstreamError()
			if attempt < step.Retries {
				attempt++
				tryOnce()
				return
			}
			done(res)
		}
		s.issueCall(parent, workItem{from: s.cfg.Name, endpoint: step.Endpoint, respond: handle}, step.Target)
		if step.Timeout > 0 {
			s.cluster.eng.After(step.Timeout, func() {
				handle(Result{Err: fmt.Errorf("%s/%s after %v: %w", step.Target, step.Endpoint, step.Timeout, ErrCallTimeout)})
			})
		}
	}
	tryOnce()
}

// issueCall sends a downstream request on behalf of the handler executing
// parent, propagating (or, for un-instrumented services, dropping) its trace
// context.
func (s *Service) issueCall(parent workItem, call workItem, target string) {
	ctx := parent.trace
	if s.cfg.DropTraceContext {
		ctx = traceCtx{}
	}
	s.cluster.callTraced(s.cluster.childCtx(ctx), s.cfg.Name, target, call)
}

// sampleCompute draws a compute duration uniformly from Mean±Jitter,
// clamped to be non-negative.
func (s *Service) sampleCompute(c Compute) time.Duration {
	d := c.Mean
	if c.Jitter > 0 {
		span := 2 * int64(c.Jitter)
		d += time.Duration(s.cluster.eng.Rand().Int63n(span)) - c.Jitter
	}
	if d < 0 {
		d = 0
	}
	return d
}

// addCPU accrues handler CPU time to the service's counters.
func (s *Service) addCPU(d time.Duration) {
	if d > 0 {
		s.counters.CPUSeconds += d.Seconds()
	}
}

// finish releases the worker slot, accounts the response, and sends it back
// to the caller across the network.
func (s *Service) finish(item workItem, res Result) {
	s.busy--
	s.counters.BusySeconds += (s.cluster.eng.Now() - item.startedAt).Seconds()
	if res.Err != nil {
		s.counters.ResponsesErr++
	} else {
		s.counters.ResponsesOK++
	}
	s.respond(item, res)
	s.dispatch()
}

// respond transmits a response packet back to the caller.
func (s *Service) respond(item workItem, res Result) {
	s.counters.TxPackets++
	s.cluster.deliverResponse(item.from, item.respond, res)
}
