package sim

import (
	"testing"
	"time"
)

// traceChain builds client -> a -> b -> c with a span recorder attached.
func traceChain(t *testing.T, dropAtB bool) (*Engine, *Cluster, *[]Span) {
	t.Helper()
	eng := NewEngine(41)
	var spans []Span
	c := NewCluster(eng, WithSpanObserver(func(s Span) { spans = append(spans, s) }))
	step := Compute{Mean: time.Millisecond}
	c.MustAddService(ServiceConfig{Name: "c", Endpoints: []Endpoint{{Name: "/", Steps: []Step{step}}}})
	c.MustAddService(ServiceConfig{
		Name:             "b",
		DropTraceContext: dropAtB,
		Endpoints:        []Endpoint{{Name: "/", Steps: []Step{step, CallStep{Target: "c", Endpoint: "/"}}}},
	})
	c.MustAddService(ServiceConfig{Name: "a", Endpoints: []Endpoint{{Name: "/", Steps: []Step{step, CallStep{Target: "b", Endpoint: "/"}}}}})
	return eng, c, &spans
}

func TestSpansFormOneTreePerRequest(t *testing.T) {
	eng, c, spans := traceChain(t, false)
	c.Call("client", "a", "/", nil)
	eng.Run(time.Second)

	if len(*spans) != 3 {
		t.Fatalf("recorded %d spans, want 3 (client->a, a->b, b->c)", len(*spans))
	}
	traceID := (*spans)[0].TraceID
	byTo := make(map[string]Span, 3)
	for _, s := range *spans {
		if s.TraceID != traceID {
			t.Fatalf("span %+v not in trace %d", s, traceID)
		}
		byTo[s.To] = s
	}
	root := byTo["a"]
	if root.ParentID != 0 || root.From != "client" {
		t.Errorf("root span wrong: %+v", root)
	}
	if byTo["b"].ParentID != root.SpanID {
		t.Errorf("a->b span parent = %d, want %d", byTo["b"].ParentID, root.SpanID)
	}
	if byTo["c"].ParentID != byTo["b"].SpanID {
		t.Errorf("b->c span parent = %d, want %d", byTo["c"].ParentID, byTo["b"].SpanID)
	}
	for _, s := range *spans {
		if s.Err {
			t.Errorf("healthy span marked Err: %+v", s)
		}
		if s.End <= s.Start {
			t.Errorf("span has no duration: %+v", s)
		}
	}
}

func TestSpansMarkErrorsAlongResponsePath(t *testing.T) {
	eng, c, spans := traceChain(t, false)
	svc, _ := c.Service("c")
	svc.SetUnavailable(true)
	c.Call("client", "a", "/", nil)
	eng.Run(time.Second)

	if len(*spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(*spans))
	}
	for _, s := range *spans {
		if !s.Err {
			t.Errorf("span %s->%s not marked Err despite propagated failure", s.From, s.To)
		}
	}
}

func TestDropTraceContextBreaksTree(t *testing.T) {
	eng, c, spans := traceChain(t, true)
	c.Call("client", "a", "/", nil)
	eng.Run(time.Second)

	if len(*spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(*spans))
	}
	var rootTrace, leafTrace uint64
	for _, s := range *spans {
		switch s.To {
		case "a":
			rootTrace = s.TraceID
		case "c":
			leafTrace = s.TraceID
			if s.ParentID != 0 {
				t.Errorf("b->c span should be a fresh root after context drop, got parent %d", s.ParentID)
			}
		}
	}
	if rootTrace == leafTrace {
		t.Fatal("un-instrumented b did not break the trace")
	}
}

func TestKVSpansCarryOperation(t *testing.T) {
	eng := NewEngine(42)
	var spans []Span
	c := NewCluster(eng, WithSpanObserver(func(s Span) { spans = append(spans, s) }))
	c.MustAddService(ServiceConfig{Name: "store", KV: true})
	c.CallKV("client", "store", KVOp{Kind: KVIncrBy, Key: "items", Delta: 1}, nil)
	eng.Run(time.Second)
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	if spans[0].Endpoint != "INCRBY items" {
		t.Errorf("kv span endpoint = %q, want \"INCRBY items\"", spans[0].Endpoint)
	}
}

func TestNoObserverMeansNoOverheadPanics(t *testing.T) {
	// Tracing disabled: calls must still work.
	eng, c, _ := traceChain(t, false)
	c.SetSpanObserver(nil)
	ok := false
	c.Call("client", "a", "/", func(r Result) { ok = r.Err == nil })
	eng.Run(time.Second)
	if !ok {
		t.Fatal("call failed with tracing disabled")
	}
}

func TestSpanIDsAreUniqueAndDeterministic(t *testing.T) {
	run := func() []Span {
		eng, c, spans := traceChain(t, false)
		for i := 0; i < 10; i++ {
			eng.After(time.Duration(i)*10*time.Millisecond, func() {
				c.Call("client", "a", "/", nil)
			})
		}
		eng.Run(time.Second)
		return *spans
	}
	a, b := run(), run()
	if len(a) != 30 || len(a) != len(b) {
		t.Fatalf("span counts: %d vs %d, want 30", len(a), len(b))
	}
	seen := make(map[uint64]bool, len(a))
	for i, s := range a {
		if seen[s.SpanID] {
			t.Fatalf("duplicate span id %d", s.SpanID)
		}
		seen[s.SpanID] = true
		if s != b[i] {
			t.Fatalf("span %d differs across identical runs:\n%+v\n%+v", i, s, b[i])
		}
	}
}
