package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestCounterConservationProperty drives random traffic through a small
// random topology and checks, after quiescence, the bookkeeping invariants a
// queueing simulator must satisfy:
//
//   - every admitted request was answered: received == ok + err
//   - within the cluster (all callers registered), packets sent == packets
//     received
//   - every client call completed exactly once
func TestCounterConservationProperty(t *testing.T) {
	prop := func(seed int64, faultB bool, nCallsRaw uint8) bool {
		nCalls := 1 + int(nCallsRaw%100)
		eng := NewEngine(seed)
		c := NewCluster(eng)
		step := Compute{Mean: 2 * time.Millisecond, Jitter: time.Millisecond}
		c.MustAddService(ServiceConfig{Name: "c", Endpoints: []Endpoint{{Name: "/", Steps: []Step{step}}}})
		c.MustAddService(ServiceConfig{Name: "b", Endpoints: []Endpoint{{Name: "/", Steps: []Step{
			step, CallStep{Target: "c", Endpoint: "/"},
		}}}})
		// The entry service is registered too, so cluster-internal packet
		// accounting closes — except for the unregistered test client.
		c.MustAddService(ServiceConfig{Name: "a", Endpoints: []Endpoint{{Name: "/", Steps: []Step{
			step,
			CallStep{Target: "b", Endpoint: "/", IgnoreError: true},
			CallStep{Target: "c", Endpoint: "/", IgnoreError: true},
		}}}})
		if faultB {
			svc, _ := c.Service("b")
			svc.SetUnavailable(true)
		}
		completed := 0
		for i := 0; i < nCalls; i++ {
			eng.After(time.Duration(i)*3*time.Millisecond, func() {
				c.Call("client", "a", "/", func(Result) { completed++ })
			})
		}
		eng.Run(time.Minute)

		if completed != nCalls {
			t.Logf("seed %d: %d/%d calls completed", seed, completed, nCalls)
			return false
		}
		var totTx, totRx, clientPkts uint64
		for name, cnt := range c.CountersByService() {
			if cnt.RequestsReceived != cnt.ResponsesOK+cnt.ResponsesErr {
				t.Logf("seed %d: %s received %d but answered %d+%d",
					seed, name, cnt.RequestsReceived, cnt.ResponsesOK, cnt.ResponsesErr)
				return false
			}
			totTx += cnt.TxPackets
			totRx += cnt.RxPackets
		}
		// The unregistered client exchanged one request and one response
		// per call with service a.
		clientPkts = uint64(nCalls)
		return totTx+clientPkts == totRx+clientPkts && totTx == totRx
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBusyNeverExceedsCapacityTimesTime: total busy seconds accrued by a
// service cannot exceed capacity × elapsed time.
func TestBusyNeverExceedsCapacityTimesTime(t *testing.T) {
	eng := NewEngine(81)
	c := NewCluster(eng)
	const capacity = 3
	c.MustAddService(ServiceConfig{
		Name:     "svc",
		Capacity: capacity,
		Endpoints: []Endpoint{{Name: "/", Steps: []Step{
			Compute{Mean: 30 * time.Millisecond, Jitter: 5 * time.Millisecond},
		}}},
	})
	if err := eng.Every(0, 5*time.Millisecond, func() {
		c.Call("client", "svc", "/", nil)
	}); err != nil {
		t.Fatal(err)
	}
	horizon := 10 * time.Second
	eng.Run(horizon)
	svc, _ := c.Service("svc")
	limit := float64(capacity) * horizon.Seconds()
	if busy := svc.Counters().BusySeconds; busy > limit {
		t.Fatalf("busy %.2fs exceeds capacity x time = %.2fs", busy, limit)
	}
	// Under saturating load the workers should also be nearly fully busy.
	if busy := svc.Counters().BusySeconds; busy < 0.8*limit {
		t.Fatalf("busy %.2fs; expected near saturation (%.2fs)", busy, limit)
	}
}
