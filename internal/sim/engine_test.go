package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimestampOrder(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	eng.Schedule(3*time.Second, func() { got = append(got, 3) })
	eng.Schedule(1*time.Second, func() { got = append(got, 1) })
	eng.Schedule(2*time.Second, func() { got = append(got, 2) })
	n := eng.Run(10 * time.Second)
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(time.Second, func() { got = append(got, i) })
	}
	eng.Run(time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of scheduling order: %v", got)
		}
	}
}

func TestEngineClockAdvancesToEventTime(t *testing.T) {
	eng := NewEngine(1)
	var at Time
	eng.Schedule(5*time.Second, func() { at = eng.Now() })
	eng.Run(time.Minute)
	if at != 5*time.Second {
		t.Errorf("Now inside event = %v, want 5s", at)
	}
	if eng.Now() != time.Minute {
		t.Errorf("Now after Run = %v, want 1m (clock advances to horizon)", eng.Now())
	}
}

func TestEngineDoesNotRunEventsBeyondHorizon(t *testing.T) {
	eng := NewEngine(1)
	ran := false
	eng.Schedule(2*time.Minute, func() { ran = true })
	eng.Run(time.Minute)
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if eng.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", eng.Pending())
	}
	eng.Run(3 * time.Minute)
	if !ran {
		t.Fatal("event not executed on later Run")
	}
}

func TestEnginePastEventsClampToNow(t *testing.T) {
	eng := NewEngine(1)
	var at Time
	eng.Schedule(10*time.Second, func() {
		// Scheduled "in the past": must run at current time, not rewind.
		eng.Schedule(1*time.Second, func() { at = eng.Now() })
	})
	eng.Run(time.Minute)
	if at != 10*time.Second {
		t.Fatalf("past-scheduled event ran at %v, want 10s", at)
	}
}

func TestEngineAfterNegativeDuration(t *testing.T) {
	eng := NewEngine(1)
	ran := false
	eng.After(-time.Second, func() { ran = true })
	eng.Run(time.Second)
	if !ran {
		t.Fatal("After with negative duration did not run")
	}
}

func TestEngineEveryCadence(t *testing.T) {
	eng := NewEngine(1)
	var times []Time
	if err := eng.Every(time.Second, 2*time.Second, func() {
		times = append(times, eng.Now())
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run(9 * time.Second)
	want := []Time{1 * time.Second, 3 * time.Second, 5 * time.Second, 7 * time.Second, 9 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("got %d ticks %v, want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestEngineEveryRejectsNonPositiveInterval(t *testing.T) {
	eng := NewEngine(1)
	if err := eng.Every(0, 0, func() {}); err == nil {
		t.Fatal("Every accepted zero interval")
	}
	if err := eng.Every(0, -time.Second, func() {}); err == nil {
		t.Fatal("Every accepted negative interval")
	}
}

func TestEngineStop(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	for i := 1; i <= 5; i++ {
		eng.Schedule(Time(i)*time.Second, func() {
			count++
			if count == 2 {
				eng.Stop()
			}
		})
	}
	eng.Run(time.Minute)
	if count != 2 {
		t.Fatalf("executed %d events after Stop, want 2", count)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		eng := NewEngine(seed)
		var draws []int64
		for i := 0; i < 50; i++ {
			eng.After(time.Duration(i)*time.Millisecond, func() {
				draws = append(draws, eng.Rand().Int63n(1000))
			})
		}
		eng.Run(time.Second)
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different draws at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

// Property: for any set of event offsets, events run in non-decreasing time
// order and the executed count matches the number of events inside the
// horizon.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		eng := NewEngine(99)
		horizon := 30 * time.Second
		within := 0
		var last Time = -1
		ok := true
		for _, off := range offsets {
			at := time.Duration(off) * time.Millisecond
			if at <= horizon {
				within++
			}
			eng.Schedule(at, func() {
				if eng.Now() < last {
					ok = false
				}
				last = eng.Now()
			})
		}
		n := eng.Run(horizon)
		return ok && n == within
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
