package traces

import (
	"testing"
	"time"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/load"
	"causalfl/internal/sim"
)

func span(trace, id, parent uint64, from, to string, start time.Duration, err bool) sim.Span {
	return sim.Span{
		TraceID: trace, SpanID: id, ParentID: parent,
		From: from, To: to, Start: start, End: start + time.Millisecond, Err: err,
	}
}

func TestAssembleGroupsAndFindsRoots(t *testing.T) {
	spans := []sim.Span{
		span(2, 5, 0, "client", "a", 0, false),
		span(1, 3, 2, "b", "c", 2*time.Millisecond, false),
		span(1, 2, 1, "a", "b", time.Millisecond, false),
		span(1, 1, 0, "client", "a", 0, false),
	}
	traces := Assemble(spans)
	if len(traces) != 2 {
		t.Fatalf("assembled %d traces, want 2", len(traces))
	}
	if traces[0].ID != 1 || len(traces[0].Spans) != 3 {
		t.Fatalf("trace 1 wrong: %+v", traces[0])
	}
	if traces[0].Root != 0 || traces[0].Spans[0].SpanID != 1 {
		t.Fatalf("trace 1 root wrong: %+v", traces[0])
	}
	if traces[1].Failed() {
		t.Error("healthy trace reported failed")
	}
}

func TestRootCauseDeepestError(t *testing.T) {
	// client -> a -> b -> c, with c the origin: all three spans error.
	spans := []sim.Span{
		span(1, 1, 0, "client", "a", 0, true),
		span(1, 2, 1, "a", "b", time.Millisecond, true),
		span(1, 3, 2, "b", "c", 2*time.Millisecond, true),
	}
	traces := Assemble(spans)
	if got := RootCause(traces[0]); got != "c" {
		t.Fatalf("RootCause = %q, want c (deepest error)", got)
	}
}

func TestRootCauseMidTreeError(t *testing.T) {
	// b failed but its call to c succeeded: blame b, not c.
	spans := []sim.Span{
		span(1, 1, 0, "client", "a", 0, true),
		span(1, 2, 1, "a", "b", time.Millisecond, true),
		span(1, 3, 2, "b", "c", 2*time.Millisecond, false),
	}
	traces := Assemble(spans)
	if got := RootCause(traces[0]); got != "b" {
		t.Fatalf("RootCause = %q, want b", got)
	}
}

func TestRootCauseNoError(t *testing.T) {
	spans := []sim.Span{span(1, 1, 0, "client", "a", 0, false)}
	if got := RootCause(Assemble(spans)[0]); got != "" {
		t.Fatalf("RootCause of healthy trace = %q, want empty", got)
	}
}

func TestLocalizerMajority(t *testing.T) {
	var spans []sim.Span
	// Three failed traces blaming b, one blaming c.
	for i := uint64(0); i < 3; i++ {
		base := i * 10
		spans = append(spans,
			span(i+1, base+1, 0, "loadgen", "a", 0, true),
			span(i+1, base+2, base+1, "a", "b", time.Millisecond, true),
		)
	}
	spans = append(spans,
		span(9, 91, 0, "loadgen", "a", 0, true),
		span(9, 92, 91, "a", "c", time.Millisecond, true),
	)
	l := &Localizer{ClientName: "loadgen"}
	got, err := l.Localize(spans, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("Localize = %v, want {b}", got)
	}
}

func TestLocalizerIgnoresBackgroundTraces(t *testing.T) {
	spans := []sim.Span{
		// A failed background-worker trace must not count.
		span(1, 1, 0, "worker", "g", 0, true),
	}
	l := &Localizer{ClientName: "loadgen"}
	got, err := l.Localize(spans, []string{"g", "h"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("background-only evidence should yield the full set, got %v", got)
	}
}

func TestLocalizerValidation(t *testing.T) {
	l := &Localizer{}
	if _, err := l.Localize(nil, nil); err == nil {
		t.Fatal("empty universe accepted")
	}
}

// Integration: on CausalBench, the trace baseline pinpoints a request-path
// fault (B) but is blind to the omission fault (G), which never appears in
// any failed user trace — the paper's motivating limitation.
func TestTraceBaselineOnCausalBench(t *testing.T) {
	run := func(target string) []string {
		eng := sim.NewEngine(31)
		app, err := causalbench.Build(eng)
		if err != nil {
			t.Fatal(err)
		}
		collector := NewCollector()
		app.Cluster.SetSpanObserver(collector.Observe)
		gen, err := load.NewGenerator(app, load.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.Start(); err != nil {
			t.Fatal(err)
		}
		eng.Run(30 * time.Second)
		svc, ok := app.Cluster.Service(target)
		if !ok {
			t.Fatalf("no service %s", target)
		}
		svc.SetUnavailable(true)
		collector.Drain()
		eng.Run(90 * time.Second)
		l := &Localizer{ClientName: load.ClientName}
		got, err := l.Localize(collector.Drain(), app.Services())
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	if got := run("B"); len(got) != 1 || got[0] != "B" {
		t.Errorf("trace baseline on request-path fault B = %v, want {B}", got)
	}
	got := run("G")
	for _, svc := range got {
		if svc == "G" && len(got) == 1 {
			t.Fatalf("trace baseline pinpointed the omission fault G — it should have no user-trace evidence (got %v)", got)
		}
	}
	if len(got) < 9 {
		t.Errorf("omission fault should leave the full 9-service set, got %v", got)
	}
}
