package traces

import (
	"testing"
	"time"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/load"
	"causalfl/internal/sim"
)

func TestSelfTimesSubtractChildren(t *testing.T) {
	// parent span 100ms with one child of 60ms: parent self-time 40ms.
	spans := []sim.Span{
		{TraceID: 1, SpanID: 1, From: "client", To: "a", Start: 0, End: 100 * time.Millisecond},
		{TraceID: 1, SpanID: 2, ParentID: 1, From: "a", To: "b", Start: 20 * time.Millisecond, End: 80 * time.Millisecond},
	}
	self := SelfTimes(spans)
	if got := self["a"][0]; got != 40*time.Millisecond {
		t.Errorf("a self-time = %v, want 40ms", got)
	}
	if got := self["b"][0]; got != 60*time.Millisecond {
		t.Errorf("b self-time = %v, want 60ms", got)
	}
}

func TestSelfTimesClampNegative(t *testing.T) {
	// Async children can overlap beyond the parent's duration.
	spans := []sim.Span{
		{TraceID: 1, SpanID: 1, From: "client", To: "a", Start: 0, End: 10 * time.Millisecond},
		{TraceID: 1, SpanID: 2, ParentID: 1, From: "a", To: "b", Start: 0, End: 50 * time.Millisecond},
	}
	if got := SelfTimes(spans)["a"][0]; got != 0 {
		t.Errorf("overlapped parent self-time = %v, want 0", got)
	}
}

func TestLatencyRCAValidation(t *testing.T) {
	l := &LatencyRCA{}
	if _, err := l.Localize(nil, nil); err == nil {
		t.Fatal("empty collections accepted")
	}
}

// Integration: a latency fault on CausalBench node C inflates C's self-time
// and nothing else's — the trace-side counterpart of the busy-metric
// extension.
func TestLatencyRCAOnCausalBench(t *testing.T) {
	eng := sim.NewEngine(61)
	app, err := causalbench.Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	collector := NewCollector()
	app.Cluster.SetSpanObserver(collector.Observe)
	gen, err := load.NewGenerator(app, load.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run(60 * time.Second)
	healthy := collector.Drain()

	svc, _ := app.Cluster.Service("C")
	svc.SetExtraLatency(80 * time.Millisecond)
	eng.Run(2 * time.Minute)
	suspect := collector.Drain()

	rca := &LatencyRCA{}
	suspects, err := rca.Localize(healthy, suspect)
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) == 0 {
		t.Fatal("latency fault produced no suspects")
	}
	if suspects[0].Service != "C" {
		t.Fatalf("top suspect = %+v, want C", suspects[0])
	}
	if suspects[0].Inflation < 5 {
		t.Errorf("C inflation = %.1fx, want large (80ms on a ~3ms handler)", suspects[0].Inflation)
	}
	// Upstream callers must NOT be blamed: their wall time grew, but
	// self-time attribution subtracts the slow child.
	for _, s := range suspects {
		if s.Service == "A" || s.Service == "B" {
			t.Errorf("caller %s blamed (inflation %.1fx); self-time should absorb child waits", s.Service, s.Inflation)
		}
	}
}
