package traces

import (
	"fmt"
	"sort"
	"time"

	"causalfl/internal/sim"
)

// Latency analysis over spans. Latency faults produce no errors and drop no
// requests, so the error-blame heuristic of Localizer sees nothing; the
// standard trace-side answer is self-time attribution: a span's duration
// minus the time spent waiting on its children is the service's own
// contribution, and the service whose self-time distribution inflates most
// is the likely culprit.

// SelfTimes computes, per service, the self-time samples of its spans: span
// duration minus the summed durations of direct child spans (clamped at
// zero for overlapping async children).
func SelfTimes(spans []sim.Span) map[string][]time.Duration {
	childSum := make(map[uint64]time.Duration)
	for _, s := range spans {
		if s.ParentID != 0 {
			childSum[s.ParentID] += s.End - s.Start
		}
	}
	out := make(map[string][]time.Duration)
	for _, s := range spans {
		self := (s.End - s.Start) - childSum[s.SpanID]
		if self < 0 {
			self = 0
		}
		out[s.To] = append(out[s.To], self)
	}
	return out
}

// LatencyRCA blames the service whose mean self-time grew the most,
// relatively, between a healthy and a suspect span collection. Services
// below minSamples spans in either collection are skipped. It returns the
// ranked suspects (largest inflation first) with their inflation factors.
type LatencyRCA struct {
	// MinSamples is the minimum span count per service per collection
	// (default 20).
	MinSamples int
	// MinInflation is the minimum mean self-time ratio to report a
	// suspect at all (default 1.5x).
	MinInflation float64
}

// Suspect is one ranked latency-RCA finding.
type Suspect struct {
	Service   string
	Inflation float64 // mean self-time ratio, suspect / healthy
}

// Localize ranks services by self-time inflation.
func (l *LatencyRCA) Localize(healthy, suspect []sim.Span) ([]Suspect, error) {
	if len(healthy) == 0 || len(suspect) == 0 {
		return nil, fmt.Errorf("traces: latency rca needs spans from both periods (healthy=%d suspect=%d)",
			len(healthy), len(suspect))
	}
	minSamples := l.MinSamples
	if minSamples == 0 {
		minSamples = 20
	}
	minInflation := l.MinInflation
	if minInflation == 0 {
		minInflation = 1.5
	}
	before := SelfTimes(healthy)
	after := SelfTimes(suspect)

	var out []Suspect
	for svc, afterSamples := range after {
		beforeSamples := before[svc]
		if len(beforeSamples) < minSamples || len(afterSamples) < minSamples {
			continue
		}
		b := meanDuration(beforeSamples)
		a := meanDuration(afterSamples)
		if b <= 0 {
			continue
		}
		inflation := float64(a) / float64(b)
		if inflation >= minInflation {
			out = append(out, Suspect{Service: svc, Inflation: inflation})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		//vet:allow floateq -- sort tie-break: exact equality falls through to the alphabetical order
		if out[i].Inflation != out[j].Inflation {
			return out[i].Inflation > out[j].Inflation
		}
		return out[i].Service < out[j].Service
	})
	return out, nil
}

// meanDuration averages a duration sample.
func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
