// Package traces implements distributed-trace collection and a trace-based
// root-cause baseline.
//
// The paper's introduction positions interventional causal learning against
// tracing: "Distributed tracing helps to localize a particular class of
// faults ... Yet, many cloud applications still lack support for tracing,
// and tracing itself does not encompass all fault types. For example,
// omission faults ... require costly manual inspection."
//
// This package makes those limits concrete and measurable: the Localizer
// blames the deepest erroring span of failed request trees — the textbook
// trace-RCA heuristic — which pinpoints any fault on a synchronous request
// path but is structurally blind to (i) omission faults mediated by state
// (CausalBench's D→F→G path carries no failed user span when G dies) and
// (ii) spans lost to un-instrumented services (sim.ServiceConfig's
// DropTraceContext).
package traces

import (
	"fmt"
	"sort"

	"causalfl/internal/sim"
)

// Collector accumulates spans from a cluster's span observer.
type Collector struct {
	spans []sim.Span
}

// NewCollector returns an empty collector; attach its Observe method with
// cluster.SetSpanObserver(collector.Observe).
func NewCollector() *Collector {
	return &Collector{}
}

// Observe implements sim.SpanObserver.
func (c *Collector) Observe(span sim.Span) {
	c.spans = append(c.spans, span)
}

// Len reports the number of collected spans.
func (c *Collector) Len() int { return len(c.spans) }

// Drain returns collected spans and clears the buffer.
func (c *Collector) Drain() []sim.Span {
	out := c.spans
	c.spans = nil
	return out
}

// Trace is one reassembled span tree.
type Trace struct {
	// ID is the trace id.
	ID uint64
	// Spans are the member spans, in SpanID order.
	Spans []sim.Span
	// Root is the index of the root span (ParentID 0), -1 if missing.
	Root int
}

// Failed reports whether the trace's root call errored.
func (t *Trace) Failed() bool {
	return t.Root >= 0 && t.Spans[t.Root].Err
}

// Assemble groups spans into traces, sorted by trace id.
func Assemble(spans []sim.Span) []Trace {
	byID := make(map[uint64][]sim.Span)
	for _, s := range spans {
		byID[s.TraceID] = append(byID[s.TraceID], s)
	}
	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]Trace, 0, len(ids))
	for _, id := range ids {
		members := byID[id]
		sort.Slice(members, func(i, j int) bool { return members[i].SpanID < members[j].SpanID })
		root := -1
		for i, s := range members {
			if s.ParentID == 0 {
				root = i
				break
			}
		}
		out = append(out, Trace{ID: id, Spans: members, Root: root})
	}
	return out
}

// RootCause returns the service blamed by the deepest-error heuristic for
// one failed trace: the callee of an erroring span none of whose child spans
// errored (the frontier where the failure originated). Returns "" when the
// trace has no erroring span.
func RootCause(t Trace) string {
	childErr := make(map[uint64]bool) // spanID -> has erroring child
	for _, s := range t.Spans {
		if s.Err && s.ParentID != 0 {
			childErr[s.ParentID] = true
		}
	}
	// Deepest erroring spans are those with no erroring children; among
	// several (fan-out failures) pick the earliest started for
	// determinism.
	best := -1
	for i, s := range t.Spans {
		if !s.Err || childErr[s.SpanID] {
			continue
		}
		if best == -1 || s.Start < t.Spans[best].Start {
			best = i
		}
	}
	if best == -1 {
		return ""
	}
	return t.Spans[best].To
}

// Localizer is the trace-based root-cause baseline.
type Localizer struct {
	// ClientName restricts root spans to those issued by this caller
	// (the load generator); empty accepts any root. Background-worker
	// traces are deliberately excluded by default, as real user-facing
	// trace pipelines sample user requests.
	ClientName string
}

// Localize blames the majority root cause across failed user traces. When no
// user trace failed — the omission-fault case — it has no evidence and
// returns the full candidate universe.
func (l *Localizer) Localize(spans []sim.Span, universe []string) ([]string, error) {
	if len(universe) == 0 {
		return nil, fmt.Errorf("traces: empty service universe")
	}
	votes := make(map[string]int)
	for _, t := range Assemble(spans) {
		if t.Root < 0 {
			continue
		}
		if l.ClientName != "" && t.Spans[t.Root].From != l.ClientName {
			continue
		}
		if !t.Failed() {
			continue
		}
		if cause := RootCause(t); cause != "" {
			votes[cause]++
		}
	}
	best := 0
	for _, n := range votes {
		if n > best {
			best = n
		}
	}
	if best == 0 {
		out := append([]string(nil), universe...)
		sort.Strings(out)
		return out, nil
	}
	var winners []string
	for svc, n := range votes {
		if n == best {
			winners = append(winners, svc)
		}
	}
	sort.Strings(winners)
	return winners, nil
}
