package baselines

import "causalfl/internal/stats"

// defaultTest is the distribution-shift test shared by the baselines: the
// same guarded KS decision the core pipeline uses, so technique comparisons
// differ in *method*, not in test plumbing.
func defaultTest() stats.TwoSampleTest {
	return stats.GuardedTest{Inner: stats.KSTest{}}
}
