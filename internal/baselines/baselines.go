// Package baselines implements the comparison techniques the paper evaluates
// against (§VI-B, §VII):
//
//   - ErrLogOnly — the AAAI-22 approach [23]: interventional causal learning
//     restricted to the error-log-rate metric, with the paper's verbatim
//     intersection vote. Error logs see only the response path, so omission
//     faults and silently-handled errors escape it.
//   - SingleWorld — a Ψ-FCI-style learner [24], [40]: it assumes one causal
//     graph explains all metrics and therefore learns the union world
//     "s' is affected by s if *any* metric shifts". Collapsing the
//     per-metric worlds destroys the identifiability the paper's §III-B
//     discusses.
//   - Observational — no interventions at all: it ranks services by how many
//     metrics flag them anomalous against the baseline, the data-driven
//     strategy of the observational RCA literature [6]-[13].
//   - RandomGuess — the sanity floor.
//
// All techniques consume the same collected datasets through the Technique
// interface so comparisons are apples-to-apples.
package baselines

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/stats"
)

// Technique is one fault-localization method under comparison. Both phases
// take a context: training runs full campaigns worth of statistics and
// localization fans out across worker pools, so cancellation must reach them
// (the same contract core.Learner/Localizer adopted in the core API redesign).
type Technique interface {
	// Name identifies the technique in reports.
	Name() string
	// Train fits the technique on the training campaign's datasets. The
	// snapshots carry the union of all metrics; techniques project what
	// they need.
	Train(ctx context.Context, baseline *metrics.Snapshot, interventions map[string]*metrics.Snapshot) error
	// Localize returns the candidate fault-location set for production
	// data. Train must have been called first.
	Localize(ctx context.Context, production *metrics.Snapshot) ([]string, error)
}

// Paper wraps the repository's own method (core.Learner + core.Localizer) as
// a Technique, restricted to the given metric names.
type Paper struct {
	// MetricNames restricts the snapshots (nil means use all).
	MetricNames []string
	// Rule selects the vote rule (zero means core.IntersectionVote).
	Rule core.VoteRule
	// Alpha is the significance level (zero means core.DefaultAlpha).
	Alpha float64
	// Label overrides the reported name (used by derived baselines that
	// reuse this wrapper, like the error-log-only technique).
	Label string
	// Test overrides the two-sample decision rule (nil means the core
	// default, a guarded KS test). Used by the decision-rule ablation.
	Test stats.TwoSampleTest
	// FDR, when nonzero, replaces per-test alpha with Benjamini-Hochberg
	// control at this level for both learning and localization.
	FDR float64

	model *core.Model
}

var _ RankedTechnique = (*Paper)(nil)

// Name implements Technique.
func (p *Paper) Name() string {
	if p.Label != "" {
		return p.Label
	}
	rule := p.Rule
	if rule == 0 {
		rule = core.IntersectionVote
	}
	return "causalfl/" + rule.String()
}

// Train implements Technique.
func (p *Paper) Train(ctx context.Context, baseline *metrics.Snapshot, interventions map[string]*metrics.Snapshot) error {
	baseline, interventions, err := project(p.MetricNames, baseline, interventions)
	if err != nil {
		return fmt.Errorf("baselines: %s: %w", p.Name(), err)
	}
	var opts []core.Option
	if p.Alpha != 0 {
		opts = append(opts, core.WithAlpha(p.Alpha))
	}
	if p.Test != nil {
		opts = append(opts, core.WithTest(p.Test))
	}
	if p.FDR != 0 {
		opts = append(opts, core.WithFDR(p.FDR))
	}
	learner, err := core.NewLearner(opts...)
	if err != nil {
		return err
	}
	p.model, err = learner.Learn(ctx, baseline, interventions)
	return err
}

// Localize implements Technique.
func (p *Paper) Localize(ctx context.Context, production *metrics.Snapshot) ([]string, error) {
	if p.model == nil {
		return nil, fmt.Errorf("baselines: %s: Localize before Train", p.Name())
	}
	if p.MetricNames != nil {
		var err error
		production, err = production.Project(p.MetricNames)
		if err != nil {
			return nil, err
		}
	}
	var opts []core.Option
	if p.Rule != 0 {
		opts = append(opts, core.WithVoteRule(p.Rule))
	}
	if p.Test != nil {
		opts = append(opts, core.WithTest(p.Test))
	}
	if p.FDR != 0 {
		opts = append(opts, core.WithFDR(p.FDR))
	}
	localizer, err := core.NewLocalizer(opts...)
	if err != nil {
		return nil, err
	}
	loc, err := localizer.Localize(ctx, p.model, production)
	if err != nil {
		return nil, err
	}
	return loc.Candidates, nil
}

// LocalizeRanked implements RankedTechnique: targets ordered by the
// localizer's vote mass.
func (p *Paper) LocalizeRanked(ctx context.Context, production *metrics.Snapshot) ([]Scored, error) {
	if p.model == nil {
		return nil, fmt.Errorf("baselines: %s: LocalizeRanked before Train", p.Name())
	}
	if p.MetricNames != nil {
		var err error
		production, err = production.Project(p.MetricNames)
		if err != nil {
			return nil, err
		}
	}
	var opts []core.Option
	if p.Rule != 0 {
		opts = append(opts, core.WithVoteRule(p.Rule))
	}
	if p.Test != nil {
		opts = append(opts, core.WithTest(p.Test))
	}
	if p.FDR != 0 {
		opts = append(opts, core.WithFDR(p.FDR))
	}
	localizer, err := core.NewLocalizer(opts...)
	if err != nil {
		return nil, err
	}
	loc, err := localizer.Localize(ctx, p.model, production)
	if err != nil {
		return nil, err
	}
	ranked := make([]Scored, 0, len(loc.Votes))
	for _, svc := range loc.Ranked() {
		ranked = append(ranked, Scored{Service: svc, Score: loc.Votes[svc]})
	}
	return ranked, nil
}

// project restricts the training snapshots to the named metrics.
func project(names []string, baseline *metrics.Snapshot, interventions map[string]*metrics.Snapshot) (*metrics.Snapshot, map[string]*metrics.Snapshot, error) {
	if names == nil {
		return baseline, interventions, nil
	}
	pb, err := baseline.Project(names)
	if err != nil {
		return nil, nil, err
	}
	pi := make(map[string]*metrics.Snapshot, len(interventions))
	for target, snap := range interventions {
		ps, err := snap.Project(names)
		if err != nil {
			return nil, nil, err
		}
		pi[target] = ps
	}
	return pb, pi, nil
}

// ErrLogOnly is the [23]-style baseline: interventional causal learning over
// the error-log-rate metric only, with the verbatim intersection vote.
func ErrLogOnly() Technique {
	return &Paper{
		MetricNames: []string{metrics.ErrLogRate.Name},
		Rule:        core.PureIntersectionVote,
		Label:       "errlog-only[23]",
	}
}

// sortedAnomalyUnion and friends support SingleWorld and Observational.

// SingleWorld learns one causal world per intervention as the union of the
// per-metric worlds, modelling learners that assume a single causal graph
// generates every metric.
type SingleWorld struct {
	// Alpha is the significance level (zero means core.DefaultAlpha).
	Alpha float64

	baseline *metrics.Snapshot
	worlds   map[string]map[string]bool // target -> union causal set
	targets  []string
}

var _ RankedTechnique = (*SingleWorld)(nil)

// Name implements Technique.
func (s *SingleWorld) Name() string { return "single-world" }

// Train implements Technique.
func (s *SingleWorld) Train(ctx context.Context, baseline *metrics.Snapshot, interventions map[string]*metrics.Snapshot) error {
	alpha := s.Alpha
	if alpha == 0 {
		alpha = core.DefaultAlpha
	}
	learner, err := core.NewLearner(core.WithAlpha(alpha))
	if err != nil {
		return err
	}
	model, err := learner.Learn(ctx, baseline, interventions)
	if err != nil {
		return fmt.Errorf("baselines: single-world: %w", err)
	}
	s.baseline = model.Baseline
	s.targets = model.Targets
	s.worlds = make(map[string]map[string]bool, len(model.Targets))
	for _, target := range model.Targets {
		union := make(map[string]bool)
		for _, metric := range model.Metrics {
			for _, svc := range model.CausalSets[metric][target] {
				union[svc] = true
			}
		}
		s.worlds[target] = union
	}
	return nil
}

// Localize implements Technique: anomalies under the joint view (any metric
// shifts) matched against the union worlds by intersection size.
func (s *SingleWorld) Localize(ctx context.Context, production *metrics.Snapshot) ([]string, error) {
	scores, err := s.scores(ctx, production)
	if err != nil {
		return nil, err
	}
	best := 0
	var winners []string
	for _, target := range s.targets {
		n := scores[target]
		switch {
		case n > best:
			best = n
			winners = []string{target}
		case n == best && n > 0:
			winners = append(winners, target)
		}
	}
	if len(winners) == 0 {
		winners = append(winners, s.targets...)
	}
	sort.Strings(winners)
	return winners, nil
}

// LocalizeRanked implements RankedTechnique: targets ordered by the size of
// the intersection between the joint anomaly set and their union world.
func (s *SingleWorld) LocalizeRanked(ctx context.Context, production *metrics.Snapshot) ([]Scored, error) {
	scores, err := s.scores(ctx, production)
	if err != nil {
		return nil, err
	}
	ranked := make([]Scored, 0, len(s.targets))
	for _, target := range s.targets {
		ranked = append(ranked, Scored{Service: target, Score: float64(scores[target])})
	}
	sortScored(ranked)
	return ranked, nil
}

// scores computes the per-target intersection sizes shared by Localize and
// LocalizeRanked.
func (s *SingleWorld) scores(ctx context.Context, production *metrics.Snapshot) (map[string]int, error) {
	if s.worlds == nil {
		return nil, fmt.Errorf("baselines: single-world: Localize before Train")
	}
	alpha := s.Alpha
	if alpha == 0 {
		alpha = core.DefaultAlpha
	}
	anom, err := jointAnomalies(ctx, alpha, s.baseline, production)
	if err != nil {
		return nil, err
	}
	scores := make(map[string]int, len(s.targets))
	for _, target := range s.targets {
		n := 0
		for svc := range anom {
			if s.worlds[target][svc] {
				n++
			}
		}
		scores[target] = n
	}
	return scores, nil
}

// jointAnomalies returns the services flagged by any metric.
func jointAnomalies(ctx context.Context, alpha float64, baseline, production *metrics.Snapshot) (map[string]bool, error) {
	counts, err := anomalyCounts(ctx, alpha, baseline, production)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(counts))
	for svc := range counts {
		out[svc] = true
	}
	return out, nil
}

// anomalyCounts returns, per service, how many metrics flag it anomalous
// against the baseline. Services no metric flags are absent.
func anomalyCounts(ctx context.Context, alpha float64, baseline, production *metrics.Snapshot) (map[string]int, error) {
	cfg := core.DetectConfig{Test: defaultTest(), Alpha: alpha}
	out := make(map[string]int)
	for _, metric := range baseline.Metrics {
		det, err := core.Detect(ctx, cfg, baseline, production, metric)
		if err != nil {
			return nil, err
		}
		for _, svc := range det.Anomalous {
			out[svc]++
		}
	}
	return out, nil
}

// Observational ranks services by how many metrics flag them anomalous,
// without any interventional knowledge.
type Observational struct {
	// Alpha is the significance level (zero means core.DefaultAlpha).
	Alpha float64

	baseline *metrics.Snapshot
}

var _ RankedTechnique = (*Observational)(nil)

// Name implements Technique.
func (o *Observational) Name() string { return "observational" }

// Train implements Technique: only the baseline is retained; interventional
// datasets are deliberately ignored.
func (o *Observational) Train(_ context.Context, baseline *metrics.Snapshot, _ map[string]*metrics.Snapshot) error {
	if baseline == nil {
		return fmt.Errorf("baselines: observational: nil baseline")
	}
	if err := baseline.Validate(); err != nil {
		return err
	}
	o.baseline = baseline.Clone()
	return nil
}

// Localize implements Technique.
func (o *Observational) Localize(ctx context.Context, production *metrics.Snapshot) ([]string, error) {
	score, err := o.scores(ctx, production)
	if err != nil {
		return nil, err
	}
	best := 0
	for _, n := range score {
		if n > best {
			best = n
		}
	}
	var winners []string
	if best > 0 {
		for svc, n := range score {
			if n == best {
				winners = append(winners, svc)
			}
		}
	} else {
		winners = append(winners, o.baseline.Services...)
	}
	sort.Strings(winners)
	return winners, nil
}

// LocalizeRanked implements RankedTechnique: services ordered by how many
// metrics flag them anomalous.
func (o *Observational) LocalizeRanked(ctx context.Context, production *metrics.Snapshot) ([]Scored, error) {
	score, err := o.scores(ctx, production)
	if err != nil {
		return nil, err
	}
	ranked := make([]Scored, 0, len(o.baseline.Services))
	for _, svc := range o.baseline.Services {
		ranked = append(ranked, Scored{Service: svc, Score: float64(score[svc])})
	}
	sortScored(ranked)
	return ranked, nil
}

// scores counts flagging metrics per service.
func (o *Observational) scores(ctx context.Context, production *metrics.Snapshot) (map[string]int, error) {
	if o.baseline == nil {
		return nil, fmt.Errorf("baselines: observational: Localize before Train")
	}
	alpha := o.Alpha
	if alpha == 0 {
		alpha = core.DefaultAlpha
	}
	return anomalyCounts(ctx, alpha, o.baseline, production)
}

// RandomGuess picks one service uniformly at random (seeded, deterministic).
type RandomGuess struct {
	// Seed drives the guesses.
	Seed int64

	services []string
	rng      *rand.Rand
}

var _ Technique = (*RandomGuess)(nil)

// Name implements Technique.
func (r *RandomGuess) Name() string { return "random" }

// Train implements Technique.
func (r *RandomGuess) Train(_ context.Context, baseline *metrics.Snapshot, _ map[string]*metrics.Snapshot) error {
	if baseline == nil || len(baseline.Services) == 0 {
		return fmt.Errorf("baselines: random: empty baseline")
	}
	r.services = append([]string(nil), baseline.Services...)
	r.rng = rand.New(rand.NewSource(r.Seed))
	return nil
}

// Localize implements Technique.
func (r *RandomGuess) Localize(_ context.Context, _ *metrics.Snapshot) ([]string, error) {
	if r.rng == nil {
		return nil, fmt.Errorf("baselines: random: Localize before Train")
	}
	return []string{r.services[r.rng.Intn(len(r.services))]}, nil
}
