package baselines

import (
	"context"
	"fmt"
	"sort"

	"causalfl/internal/apps"
	"causalfl/internal/core"
	"causalfl/internal/metrics"
)

// TopologyRCA is the topology-driven baseline of the paper's related work
// ([14] relies on an expert-provided causal structure; service-mesh
// topologies are the usual substitute). It needs no interventions: given the
// static caller-callee graph, it flags anomalous services and blames the
// ones deepest along the call direction — the anomalous services none of
// whose callees are anomalous — on the assumption that failures propagate
// backwards from their origin.
//
// The paper's §III-A is exactly the refutation of that assumption: under
// log-type metrics errors propagate *against* the call direction, and under
// omission faults the relevant causal edge (F's background drain) is not a
// request edge at all. This baseline therefore mislocalizes request-path
// faults whose loudest signal is upstream error logs.
type TopologyRCA struct {
	// Edges is the static topology (from the application definition, as a
	// service mesh would report it).
	Edges []apps.Edge
	// Alpha is the significance level (zero means core.DefaultAlpha).
	Alpha float64

	baseline *metrics.Snapshot
	callees  map[string][]string
}

var _ Technique = (*TopologyRCA)(nil)

// Name implements Technique.
func (t *TopologyRCA) Name() string { return "topology-rca[14]" }

// Train implements Technique: only the fault-free baseline is retained;
// interventional datasets are deliberately ignored (the technique's whole
// point is that it needs none).
func (t *TopologyRCA) Train(_ context.Context, baseline *metrics.Snapshot, _ map[string]*metrics.Snapshot) error {
	if baseline == nil {
		return fmt.Errorf("baselines: topology-rca: nil baseline")
	}
	if len(t.Edges) == 0 {
		return fmt.Errorf("baselines: topology-rca: no topology edges")
	}
	if err := baseline.Validate(); err != nil {
		return err
	}
	t.baseline = baseline.Clone()
	t.callees = make(map[string][]string)
	for _, e := range t.Edges {
		t.callees[e.From] = append(t.callees[e.From], e.To)
	}
	return nil
}

// Localize implements Technique.
func (t *TopologyRCA) Localize(ctx context.Context, production *metrics.Snapshot) ([]string, error) {
	if t.baseline == nil {
		return nil, fmt.Errorf("baselines: topology-rca: Localize before Train")
	}
	alpha := t.Alpha
	if alpha == 0 {
		alpha = core.DefaultAlpha
	}
	anom, err := jointAnomalies(ctx, alpha, t.baseline, production)
	if err != nil {
		return nil, err
	}
	if len(anom) == 0 {
		out := append([]string(nil), t.baseline.Services...)
		sort.Strings(out)
		return out, nil
	}
	// Blame the anomaly frontier along the call direction: anomalous
	// services with no anomalous callee.
	var winners []string
	for svc := range anom {
		frontier := true
		for _, callee := range t.callees[svc] {
			if anom[callee] {
				frontier = false
				break
			}
		}
		if frontier {
			winners = append(winners, svc)
		}
	}
	if len(winners) == 0 {
		// A cycle of anomalies: return them all.
		for svc := range anom {
			winners = append(winners, svc)
		}
	}
	sort.Strings(winners)
	return winners, nil
}
