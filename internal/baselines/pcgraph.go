package baselines

import (
	"context"
	"fmt"
	"math"
	"sort"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
)

// PCGraph is a PC-algorithm-style competitor: it learns ONE undirected
// dependency skeleton from fault-free data by conditional-independence
// testing (Fisher-z on correlations, conditioning sets of size ≤ 1) and
// localizes by scoring anomalous services by how central they are in the
// anomalous subgraph. This is the "single causal graph learned
// observationally" family (PC / Ψ-FCI in the related work) — exactly the
// assumption the paper's §VI-B refutes with the single-world ablation,
// here built as a real structure-learning competitor rather than a
// degenerate configuration of the paper's own learner.
type PCGraph struct {
	// Alpha is the significance level for both the CI tests and the
	// anomaly detection (zero means core.DefaultAlpha).
	Alpha float64

	services []string
	baseline *metrics.Snapshot
	// neighbors is the learned skeleton's adjacency (symmetric).
	neighbors map[string]map[string]bool
}

var _ RankedTechnique = (*PCGraph)(nil)

// Name implements Technique.
func (p *PCGraph) Name() string { return "pc-single-graph" }

// Train implements Technique: skeleton learning on the fault-free baseline;
// interventional datasets are deliberately ignored (the family's defining
// limitation).
func (p *PCGraph) Train(ctx context.Context, baseline *metrics.Snapshot, _ map[string]*metrics.Snapshot) error {
	if baseline == nil {
		return fmt.Errorf("baselines: pc-single-graph: nil baseline")
	}
	if err := baseline.Validate(); err != nil {
		return err
	}
	p.baseline = baseline.Clone()
	p.services = append([]string(nil), baseline.Services...)
	sort.Strings(p.services)

	// One feature vector per service: all metric series z-scored and
	// concatenated, so the CI tests see a service's whole behaviour.
	feats := make(map[string][]float64, len(p.services))
	for _, svc := range p.services {
		var feat []float64
		for _, metric := range baseline.Metrics {
			feat = append(feat, zscored(baseline.Data[metric][svc])...)
		}
		feats[svc] = feat
	}

	alpha := p.Alpha
	if alpha == 0 {
		alpha = core.DefaultAlpha
	}
	// PC skeleton, order 0 then order 1: start complete, drop the edge
	// (i,j) if i ⫫ j or i ⫫ j | k for any single k, judged by Fisher-z.
	corr := func(a, b string) float64 { return pearson(feats[a], feats[b]) }
	adj := make(map[string]map[string]bool, len(p.services))
	for _, svc := range p.services {
		adj[svc] = make(map[string]bool)
	}
	sampleN := 0
	for _, f := range feats {
		if len(f) > sampleN {
			sampleN = len(f)
		}
	}
	for i, a := range p.services {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, b := range p.services[i+1:] {
			rab := corr(a, b)
			if independent(rab, sampleN, 0, alpha) {
				continue
			}
			sep := false
			for _, k := range p.services {
				if k == a || k == b {
					continue
				}
				rp := partialCorr(rab, corr(a, k), corr(b, k))
				if independent(rp, sampleN, 1, alpha) {
					sep = true
					break
				}
			}
			if !sep {
				adj[a][b] = true
				adj[b][a] = true
			}
		}
	}
	p.neighbors = adj
	return nil
}

// Localize implements Technique: the top-scoring tie group of the ranking,
// falling back to every service when nothing is anomalous.
func (p *PCGraph) Localize(ctx context.Context, production *metrics.Snapshot) ([]string, error) {
	ranked, err := p.LocalizeRanked(ctx, production)
	if err != nil {
		return nil, err
	}
	best := 0.0
	for _, s := range ranked {
		if s.Score > best {
			best = s.Score
		}
	}
	var winners []string
	if best > 0 {
		for _, s := range ranked {
			//vet:allow floateq -- scores are small exact integers (1 + neighbor count); the tie group is exact by construction
			if s.Score == best {
				winners = append(winners, s.Service)
			}
		}
	} else {
		winners = append([]string(nil), p.services...)
	}
	sort.Strings(winners)
	return winners, nil
}

// LocalizeRanked implements RankedTechnique: anomalous services score
// 1 + the number of anomalous skeleton neighbors (hub-of-the-anomalous-
// subgraph centrality); healthy services score 0.
func (p *PCGraph) LocalizeRanked(ctx context.Context, production *metrics.Snapshot) ([]Scored, error) {
	if p.neighbors == nil {
		return nil, fmt.Errorf("baselines: pc-single-graph: Localize before Train")
	}
	alpha := p.Alpha
	if alpha == 0 {
		alpha = core.DefaultAlpha
	}
	anom, err := jointAnomalies(ctx, alpha, p.baseline, production)
	if err != nil {
		return nil, err
	}
	ranked := make([]Scored, 0, len(p.services))
	for _, svc := range p.services {
		score := 0.0
		if anom[svc] {
			score = 1
			for n := range p.neighbors[svc] {
				if anom[n] {
					score++
				}
			}
		}
		ranked = append(ranked, Scored{Service: svc, Score: score})
	}
	sortScored(ranked)
	return ranked, nil
}

// Neighbors exposes the learned skeleton (sorted) for tests and reports.
func (p *PCGraph) Neighbors(svc string) []string {
	var out []string
	for n := range p.neighbors[svc] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// zscored standardizes a series; zero-variance or empty series map to zeros
// and non-finite samples to 0 so degraded telemetry cannot poison the CI
// statistics.
func zscored(x []float64) []float64 {
	sum, m := 0.0, 0
	for _, v := range x {
		if finite(v) {
			sum += v
			m++
		}
	}
	out := make([]float64, len(x))
	if m == 0 {
		return out
	}
	mean := sum / float64(m)
	sumSq := 0.0
	for _, v := range x {
		if finite(v) {
			d := v - mean
			sumSq += d * d
		}
	}
	std := math.Sqrt(sumSq / float64(m))
	if std == 0 {
		return out
	}
	for i, v := range x {
		if finite(v) {
			out[i] = (v - mean) / std
		}
	}
	return out
}

// partialCorr is the first-order partial correlation of a and b given k.
func partialCorr(rab, rak, rbk float64) float64 {
	den := math.Sqrt((1 - rak*rak) * (1 - rbk*rbk))
	if den == 0 || math.IsNaN(den) {
		return 0
	}
	return (rab - rak*rbk) / den
}

// independent reports whether the (partial) correlation r over n samples
// with |S| = order conditioning variables fails to reject independence at
// level alpha, via the Fisher z-transform's normal approximation.
func independent(r float64, n, order int, alpha float64) bool {
	if math.IsNaN(r) {
		return true
	}
	if r >= 1 || r <= -1 {
		return false
	}
	df := float64(n-order) - 3
	if df < 1 {
		return true
	}
	z := 0.5 * math.Log((1+r)/(1-r)) * math.Sqrt(df)
	// Two-sided p-value from the standard normal survival function.
	pval := math.Erfc(math.Abs(z) / math.Sqrt2)
	return pval > alpha
}
