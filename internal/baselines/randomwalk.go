package baselines

import (
	"context"
	"fmt"
	"math"
	"sort"

	"causalfl/internal/apps"
	"causalfl/internal/core"
	"causalfl/internal/metrics"
)

// RandomWalk is the random-walk-over-call-graph competitor (the
// MonitorRank/MicroCause family in the related work): a personalized
// PageRank on the call graph with edges reversed (walkers move from callers
// toward callees, i.e. toward the presumed fault origin), teleport mass
// concentrated on anomalous services, and edge weights biased toward
// anomalous neighbors. The stationary distribution ranks suspects.
//
// The walk is computed by fixed-iteration power iteration — fully
// deterministic, no random number generator — so identical inputs always
// produce identical rankings.
type RandomWalk struct {
	// Edges is the static call topology from the app catalog.
	Edges []apps.Edge
	// Alpha is the anomaly-detection significance level (zero means
	// core.DefaultAlpha).
	Alpha float64
	// Damping is the PageRank damping factor (zero means 0.85).
	Damping float64

	services []string
	baseline *metrics.Snapshot
	// out[svc] lists the reversed-edge successors: the callees of svc,
	// toward which walkers move in search of the origin.
	out map[string][]string
}

const (
	defaultDamping    = 0.85
	walkIterations    = 50
	anomalyEdgeWeight = 4.0
)

var _ RankedTechnique = (*RandomWalk)(nil)

// Name implements Technique.
func (r *RandomWalk) Name() string { return "randomwalk-pagerank" }

// Train implements Technique: retains the fault-free baseline for anomaly
// detection and indexes the reversed call graph; interventional datasets
// are ignored.
func (r *RandomWalk) Train(_ context.Context, baseline *metrics.Snapshot, _ map[string]*metrics.Snapshot) error {
	if baseline == nil {
		return fmt.Errorf("baselines: randomwalk: nil baseline")
	}
	if len(r.Edges) == 0 {
		return fmt.Errorf("baselines: randomwalk: no topology edges")
	}
	if err := baseline.Validate(); err != nil {
		return err
	}
	r.baseline = baseline.Clone()
	r.services = append([]string(nil), baseline.Services...)
	sort.Strings(r.services)
	r.out = make(map[string][]string)
	known := make(map[string]bool, len(r.services))
	for _, svc := range r.services {
		known[svc] = true
	}
	for _, e := range r.Edges {
		if !known[e.From] || !known[e.To] {
			continue
		}
		r.out[e.From] = append(r.out[e.From], e.To)
	}
	for svc := range r.out {
		sort.Strings(r.out[svc])
	}
	return nil
}

// Localize implements Technique: the leading tie group of the PageRank
// ranking (scores compared at a small tolerance, since power iteration is
// floating-point).
func (r *RandomWalk) Localize(ctx context.Context, production *metrics.Snapshot) ([]string, error) {
	ranked, err := r.LocalizeRanked(ctx, production)
	if err != nil {
		return nil, err
	}
	if len(ranked) == 0 {
		return nil, nil
	}
	best := ranked[0].Score
	var winners []string
	for _, s := range ranked {
		if s.Score >= best*(1-1e-9) {
			winners = append(winners, s.Service)
		}
	}
	sort.Strings(winners)
	return winners, nil
}

// LocalizeRanked implements RankedTechnique: the stationary distribution of
// the anomaly-personalized walk.
func (r *RandomWalk) LocalizeRanked(ctx context.Context, production *metrics.Snapshot) ([]Scored, error) {
	if r.baseline == nil {
		return nil, fmt.Errorf("baselines: randomwalk: Localize before Train")
	}
	alpha := r.Alpha
	if alpha == 0 {
		alpha = core.DefaultAlpha
	}
	counts, err := anomalyCounts(ctx, alpha, r.baseline, production)
	if err != nil {
		return nil, err
	}

	idx := make(map[string]int, len(r.services))
	for i, svc := range r.services {
		idx[svc] = i
	}
	n := len(r.services)

	// Teleport vector: anomaly counts normalized; uniform when nothing is
	// anomalous (the walk then degenerates to plain topology PageRank).
	tele := make([]float64, n)
	total := 0.0
	for svc, c := range counts {
		if i, ok := idx[svc]; ok {
			tele[i] = float64(c)
			total += float64(c)
		}
	}
	if total == 0 {
		for i := range tele {
			tele[i] = 1
		}
		total = float64(n)
	}
	for i := range tele {
		tele[i] /= total
	}

	// Transition weights on reversed call edges, boosted toward anomalous
	// callees; dangling nodes teleport.
	type edge struct {
		to int
		w  float64
	}
	trans := make([][]edge, n)
	for svc, callees := range r.out {
		i := idx[svc]
		sum := 0.0
		row := make([]edge, 0, len(callees))
		for _, callee := range callees {
			w := 1.0
			if counts[callee] > 0 {
				w = anomalyEdgeWeight
			}
			row = append(row, edge{idx[callee], w})
			sum += w
		}
		for k := range row {
			row[k].w /= sum
		}
		trans[i] = row
	}

	d := r.Damping
	if d == 0 {
		d = defaultDamping
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	copy(rank, tele)
	for it := 0; it < walkIterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range next {
			next[i] = (1 - d) * tele[i]
		}
		for i, row := range trans {
			if len(row) == 0 {
				// Dangling: redistribute via the teleport vector.
				for j := range next {
					next[j] += d * rank[i] * tele[j]
				}
				continue
			}
			for _, e := range row {
				next[e.to] += d * rank[i] * e.w
			}
		}
		rank, next = next, rank
	}

	ranked := make([]Scored, 0, n)
	for i, svc := range r.services {
		score := rank[i]
		if math.IsNaN(score) || math.IsInf(score, 0) {
			score = 0
		}
		ranked = append(ranked, Scored{Service: svc, Score: score})
	}
	sortScored(ranked)
	return ranked, nil
}
