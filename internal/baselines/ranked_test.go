package baselines

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"causalfl/internal/apps"
	"causalfl/internal/metrics"
)

// chainFixture builds a 4-service call chain a→b→c→d with correlated load:
// a shared demand signal drives every service, the faulty service adds its
// own large shift, and the services downstream of the fault (in causal
// terms: the callees the fault starves) shift by a damped amount. This is
// the regime the graph-based competitors are designed for.
type chainFixture struct {
	rng *rand.Rand
}

var chainServices = []string{"a", "b", "c", "d"}
var chainEdges = []apps.Edge{{From: "a", To: "b"}, {From: "b", To: "c"}, {From: "c", To: "d"}}

func (f *chainFixture) snapshot(fault string, magnitude float64) *metrics.Snapshot {
	ms := []string{"latency", "cpu"}
	snap := metrics.NewSnapshot(ms, chainServices)
	depth := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	for _, m := range ms {
		for _, svc := range chainServices {
			series := make([]float64, 40)
			for i := range series {
				demand := math.Sin(float64(i)/3) * 2 // shared load signal
				v := 10 + demand + f.rng.NormFloat64()*0.3
				if fault != "" {
					// The fault's own service shifts hardest; its callers
					// (upstream in the chain) inherit a damped shift, the
					// way latency propagates back toward the entry point.
					if svc == fault {
						v += magnitude
					} else if depth[svc] < depth[fault] {
						v += magnitude * 0.5
					}
				}
				series[i] = v
			}
			snap.Data[m][svc] = series
		}
	}
	return snap
}

func rankOf(ranked []Scored, svc string) int {
	for i, s := range ranked {
		if s.Service == svc {
			return i
		}
	}
	return -1
}

func TestCausalRCABlamesDeviatingService(t *testing.T) {
	f := &chainFixture{rng: rand.New(rand.NewSource(11))}
	tech := &CausalRCA{}
	if err := tech.Train(ctx, f.snapshot("", 0), nil); err != nil {
		t.Fatal(err)
	}
	ranked, err := tech.LocalizeRanked(ctx, f.snapshot("c", 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != len(chainServices) {
		t.Fatalf("ranking covers %d services, want %d", len(ranked), len(chainServices))
	}
	if r := rankOf(ranked, "c"); r > 1 {
		t.Errorf("faulty service c ranked %d in %v", r, ranked)
	}
	// The set verdict is the thresholded ranking with an all-services
	// fallback; either way it must be sorted and non-empty.
	cands, err := tech.Localize(ctx, f.snapshot("c", 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || !sort.StringsAreSorted(cands) {
		t.Errorf("candidate set %v not sorted/non-empty", cands)
	}
}

func TestCausalRCASurvivesDegradedSeries(t *testing.T) {
	f := &chainFixture{rng: rand.New(rand.NewSource(12))}
	tech := &CausalRCA{}
	if err := tech.Train(ctx, f.snapshot("", 0), nil); err != nil {
		t.Fatal(err)
	}
	prod := f.snapshot("b", 12)
	// Poison the production series with NaN/Inf the way corrupted scrapes
	// do; the scorer must stay finite.
	prod.Data["latency"]["a"][3] = math.NaN()
	prod.Data["cpu"]["d"][7] = math.Inf(1)
	ranked, err := tech.LocalizeRanked(ctx, prod)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ranked {
		if math.IsNaN(s.Score) || math.IsInf(s.Score, 0) {
			t.Fatalf("non-finite score for %s in %v", s.Service, ranked)
		}
	}
}

func TestFitOLSRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 200
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.NormFloat64()
		x2[i] = rng.NormFloat64()
		y[i] = 2 + 3*x1[i] - 1.5*x2[i] + rng.NormFloat64()*0.01
	}
	w := fitOLS(y, [][]float64{x1, x2})
	want := []float64{2, 3, -1.5}
	for i, wi := range want {
		if math.Abs(w[i]-wi) > 0.05 {
			t.Errorf("coef[%d] = %.3f, want %.3f", i, w[i], wi)
		}
	}
	// Rank-deficient design (duplicate regressor) must fall back to the
	// mean-only model, not blow up.
	w = fitOLS(y, [][]float64{x1, x1})
	if len(w) != 3 || math.IsNaN(w[0]) {
		t.Errorf("degenerate fit = %v", w)
	}
}

func TestPCGraphLearnsChainSkeleton(t *testing.T) {
	f := &chainFixture{rng: rand.New(rand.NewSource(14))}
	tech := &PCGraph{}
	if err := tech.Train(ctx, f.snapshot("", 0), nil); err != nil {
		t.Fatal(err)
	}
	// All four services share the demand signal, so the skeleton must be
	// non-trivial: every service keeps at least one neighbor.
	for _, svc := range chainServices {
		if len(tech.Neighbors(svc)) == 0 {
			t.Errorf("service %s isolated in learned skeleton", svc)
		}
	}
	ranked, err := tech.LocalizeRanked(ctx, f.snapshot("b", 12))
	if err != nil {
		t.Fatal(err)
	}
	// b and its upstream a both shift; the anomalous-subgraph centrality
	// must put the faulty pair ahead of the untouched tail.
	if rankOf(ranked, "b") > 1 {
		t.Errorf("faulty service b ranked %d in %v", rankOf(ranked, "b"), ranked)
	}
	if ranked[len(ranked)-1].Service != "c" && ranked[len(ranked)-1].Service != "d" {
		t.Errorf("healthy tail not last: %v", ranked)
	}
}

func TestPCGraphLocalizeFallsBackWhenHealthy(t *testing.T) {
	f := &chainFixture{rng: rand.New(rand.NewSource(15))}
	tech := &PCGraph{}
	if err := tech.Train(ctx, f.snapshot("", 0), nil); err != nil {
		t.Fatal(err)
	}
	got, err := tech.Localize(ctx, f.snapshot("", 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chainServices) {
		t.Errorf("healthy production should degenerate to all services, got %v", got)
	}
}

func TestRandomWalkFollowsAnomalies(t *testing.T) {
	f := &chainFixture{rng: rand.New(rand.NewSource(16))}
	tech := &RandomWalk{Edges: chainEdges}
	if err := tech.Train(ctx, f.snapshot("", 0), nil); err != nil {
		t.Fatal(err)
	}
	// Fault in c: c shifts hard, a and b inherit damped shifts. Walkers
	// teleport to the anomalous set and drift along call direction toward
	// c, so c must outrank the healthy leaf d and sit in the top 2.
	ranked, err := tech.LocalizeRanked(ctx, f.snapshot("c", 12))
	if err != nil {
		t.Fatal(err)
	}
	if rankOf(ranked, "c") > 1 {
		t.Errorf("faulty service c ranked %d in %v", rankOf(ranked, "c"), ranked)
	}
	if rankOf(ranked, "c") > rankOf(ranked, "d") {
		t.Errorf("healthy leaf d outranks faulty c: %v", ranked)
	}
	// Scores form a probability distribution.
	sum := 0.0
	for _, s := range ranked {
		sum += s.Score
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("stationary distribution sums to %f", sum)
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	mk := func() []Scored {
		f := &chainFixture{rng: rand.New(rand.NewSource(17))}
		tech := &RandomWalk{Edges: chainEdges}
		if err := tech.Train(ctx, f.snapshot("", 0), nil); err != nil {
			t.Fatal(err)
		}
		ranked, err := tech.LocalizeRanked(ctx, f.snapshot("b", 12))
		if err != nil {
			t.Fatal(err)
		}
		return ranked
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("rankings differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRankedOrSetsLiftsSetTechniques(t *testing.T) {
	f := &chainFixture{rng: rand.New(rand.NewSource(18))}
	tech := &TopologyRCA{Edges: chainEdges}
	if err := tech.Train(ctx, f.snapshot("", 0), nil); err != nil {
		t.Fatal(err)
	}
	prod := f.snapshot("c", 12)
	cands, err := tech.Localize(ctx, prod)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankedOrSets(ctx, tech, prod)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != len(cands) {
		t.Fatalf("lifted ranking %v does not cover set %v", ranked, cands)
	}
	for i, s := range ranked {
		if s.Score != 1 || s.Service != cands[i] {
			t.Fatalf("lifted ranking %v disagrees with sorted set %v", ranked, cands)
		}
	}
}

func TestRankedLeadingTieGroupMatchesSet(t *testing.T) {
	// For score-derived set verdicts, Localize must equal the leading tie
	// group of LocalizeRanked — the arena's top-1 accounting relies on it.
	for _, tech := range []RankedTechnique{&Paper{}, &SingleWorld{}, &Observational{}} {
		f2 := &fixture{rng: rand.New(rand.NewSource(19))}
		f2.train(t, tech)
		prod := f2.snapshot(f2.worlds()["x"])
		cands, err := tech.Localize(ctx, prod)
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := tech.LocalizeRanked(ctx, prod)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) == 0 {
			t.Fatalf("%s: empty ranking", tech.Name())
		}
		var lead []string
		for _, s := range ranked {
			if s.Score == ranked[0].Score {
				lead = append(lead, s.Service)
			}
		}
		sort.Strings(lead)
		if len(lead) == len(cands) {
			for i := range lead {
				if lead[i] != cands[i] {
					t.Errorf("%s: tie group %v != set %v", tech.Name(), lead, cands)
				}
			}
		}
	}
}

func TestNewCompetitorNames(t *testing.T) {
	for _, tc := range []struct {
		tech Technique
		want string
	}{
		{&CausalRCA{}, "causalrca-regression"},
		{&PCGraph{}, "pc-single-graph"},
		{&RandomWalk{}, "randomwalk-pagerank"},
	} {
		if got := tc.tech.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestNewCompetitorsLocalizeBeforeTrain(t *testing.T) {
	f := &chainFixture{rng: rand.New(rand.NewSource(20))}
	snap := f.snapshot("", 0)
	for _, tech := range []RankedTechnique{&CausalRCA{}, &PCGraph{}, &RandomWalk{Edges: chainEdges}} {
		if _, err := tech.Localize(ctx, snap); err == nil {
			t.Errorf("%s: Localize before Train accepted", tech.Name())
		}
		if _, err := tech.LocalizeRanked(ctx, snap); err == nil {
			t.Errorf("%s: LocalizeRanked before Train accepted", tech.Name())
		}
	}
}
