package baselines

import (
	"context"
	"math/rand"
	"testing"

	"causalfl/internal/metrics"
)

// ctx is the shared context for the ctx-threaded Technique API; these
// tests never cancel it.
var ctx = context.Background()

// fixture builds synthetic datasets over services {x, y, z} with three
// metrics. Ground truth: a fault in x shifts error logs on {x, y} and cpu on
// {x, z}; a fault in z shifts cpu on {z} only (no error logs anywhere — the
// silent-handler case that defeats the error-log-only baseline).
type fixture struct {
	rng *rand.Rand
}

var fixtureMetrics = []string{metrics.ErrLogRate.Name, "cpu", "tx"}

const fixtureN = 20

func (f *fixture) snapshot(shifted map[string]map[string]bool) *metrics.Snapshot {
	services := []string{"x", "y", "z"}
	snap := metrics.NewSnapshot(fixtureMetrics, services)
	for _, m := range fixtureMetrics {
		for _, svc := range services {
			series := make([]float64, fixtureN)
			offset := 0.0
			if shifted != nil && shifted[m][svc] {
				offset = 9
			}
			for i := range series {
				series[i] = 5 + offset + f.rng.NormFloat64()*0.5
			}
			snap.Data[m][svc] = series
		}
	}
	return snap
}

func (f *fixture) worlds() map[string]map[string]map[string]bool {
	return map[string]map[string]map[string]bool{
		"x": {
			metrics.ErrLogRate.Name: {"x": true, "y": true},
			"cpu":                   {"x": true, "z": true},
		},
		"z": {
			"cpu": {"z": true},
		},
	}
}

func (f *fixture) train(t *testing.T, tech Technique) {
	t.Helper()
	baseline := f.snapshot(nil)
	interventions := make(map[string]*metrics.Snapshot)
	for target, w := range f.worlds() {
		interventions[target] = f.snapshot(w)
	}
	if err := tech.Train(ctx, baseline, interventions); err != nil {
		t.Fatalf("%s: train: %v", tech.Name(), err)
	}
}

func contains(set []string, s string) bool {
	for _, v := range set {
		if v == s {
			return true
		}
	}
	return false
}

func TestPaperTechniqueLocalizes(t *testing.T) {
	f := &fixture{rng: rand.New(rand.NewSource(1))}
	tech := &Paper{}
	f.train(t, tech)
	for target, w := range f.worlds() {
		got, err := tech.Localize(ctx, f.snapshot(w))
		if err != nil {
			t.Fatal(err)
		}
		if !contains(got, target) {
			t.Errorf("fault in %s localized to %v", target, got)
		}
	}
}

func TestPaperTechniqueMetricProjection(t *testing.T) {
	f := &fixture{rng: rand.New(rand.NewSource(2))}
	tech := &Paper{MetricNames: []string{"cpu"}}
	f.train(t, tech)
	got, err := tech.Localize(ctx, f.snapshot(f.worlds()["z"]))
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, "z") {
		t.Errorf("cpu-only projection missed fault z: %v", got)
	}
	bad := &Paper{MetricNames: []string{"nope"}}
	baseline := f.snapshot(nil)
	if err := bad.Train(ctx, baseline, map[string]*metrics.Snapshot{"x": f.snapshot(nil)}); err == nil {
		t.Error("projection onto missing metric accepted")
	}
}

func TestErrLogOnlyMissesSilentFault(t *testing.T) {
	f := &fixture{rng: rand.New(rand.NewSource(3))}
	tech := ErrLogOnly()
	f.train(t, tech)

	// Fault x produces error logs: the baseline can find it.
	got, err := tech.Localize(ctx, f.snapshot(f.worlds()["x"]))
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, "x") {
		t.Errorf("errlog baseline missed the loud fault x: %v", got)
	}

	// Fault z is silent in error logs: the candidate set degenerates to
	// everything (no error-log evidence), i.e. the baseline cannot
	// localize it.
	got, err = tech.Localize(ctx, f.snapshot(f.worlds()["z"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Errorf("errlog baseline confidently localized a silent fault to %v; it has no evidence", got)
	}
}

func TestSingleWorldLosesIdentifiability(t *testing.T) {
	// Two targets whose union worlds are identical even though the
	// per-metric worlds differ: the single-world learner cannot separate
	// them, the per-metric method can.
	services := []string{"p", "q"}
	ms := []string{"m1", "m2"}
	rng := rand.New(rand.NewSource(4))
	mk := func(shift map[string]map[string]bool) *metrics.Snapshot {
		snap := metrics.NewSnapshot(ms, services)
		for _, m := range ms {
			for _, svc := range services {
				series := make([]float64, fixtureN)
				off := 0.0
				if shift != nil && shift[m][svc] {
					off = 9
				}
				for i := range series {
					series[i] = 5 + off + rng.NormFloat64()*0.5
				}
				snap.Data[m][svc] = series
			}
		}
		return snap
	}
	worldP := map[string]map[string]bool{"m1": {"p": true, "q": true}} // p shifts m1 on both
	worldQ := map[string]map[string]bool{"m2": {"p": true, "q": true}} // q shifts m2 on both

	baseline := mk(nil)
	interventions := map[string]*metrics.Snapshot{"p": mk(worldP), "q": mk(worldQ)}

	single := &SingleWorld{}
	if err := single.Train(ctx, baseline, interventions); err != nil {
		t.Fatal(err)
	}
	got, err := single.Localize(ctx, mk(worldP))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("single-world learner should tie {p,q} on merged worlds, got %v", got)
	}

	perMetric := &Paper{}
	if err := perMetric.Train(ctx, baseline, interventions); err != nil {
		t.Fatal(err)
	}
	got, err = perMetric.Localize(ctx, mk(worldP))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "p" {
		t.Errorf("per-metric method should pinpoint p, got %v", got)
	}
}

func TestObservationalRanksByAnomalyCount(t *testing.T) {
	f := &fixture{rng: rand.New(rand.NewSource(5))}
	tech := &Observational{}
	f.train(t, tech)
	// Fault x flags x under two metrics, y and z under one each: the
	// observational ranker picks x.
	got, err := tech.Localize(ctx, f.snapshot(f.worlds()["x"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("observational ranker = %v, want {x}", got)
	}
}

func TestRandomGuessDeterministic(t *testing.T) {
	f := &fixture{rng: rand.New(rand.NewSource(6))}
	a := &RandomGuess{Seed: 9}
	b := &RandomGuess{Seed: 9}
	f.train(t, a)
	f = &fixture{rng: rand.New(rand.NewSource(6))}
	f.train(t, b)
	snap := f.snapshot(nil)
	for i := 0; i < 10; i++ {
		ga, err := a.Localize(ctx, snap)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b.Localize(ctx, snap)
		if err != nil {
			t.Fatal(err)
		}
		if len(ga) != 1 || ga[0] != gb[0] {
			t.Fatalf("random guesses diverged: %v vs %v", ga, gb)
		}
	}
}

func TestLocalizeBeforeTrain(t *testing.T) {
	f := &fixture{rng: rand.New(rand.NewSource(7))}
	snap := f.snapshot(nil)
	for _, tech := range []Technique{&Paper{}, &SingleWorld{}, &Observational{}, &RandomGuess{}} {
		if _, err := tech.Localize(ctx, snap); err == nil {
			t.Errorf("%s: Localize before Train accepted", tech.Name())
		}
	}
}

func TestTechniqueNames(t *testing.T) {
	for _, tc := range []struct {
		tech Technique
		want string
	}{
		{&Paper{}, "causalfl/intersection+parsimony"},
		{ErrLogOnly(), "errlog-only[23]"},
		{&SingleWorld{}, "single-world"},
		{&Observational{}, "observational"},
		{&RandomGuess{}, "random"},
	} {
		if got := tc.tech.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}
