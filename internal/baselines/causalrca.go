package baselines

import (
	"context"
	"fmt"
	"math"
	"sort"

	"causalfl/internal/metrics"
)

// CausalRCA is a regression/graph-attribution competitor in the CausalRCA
// style (PAPERS.md): from fault-free data alone it learns, per service, a
// small set of statistical "parents" (the most correlated other services),
// fits a linear model predicting each service's metrics from its parents,
// and at localization time blames the services whose own behaviour deviates
// most from what their parents predict. The intuition is that a fault's
// origin is the service that is anomalous *beyond* what its dependencies
// explain, while downstream victims are well predicted by their (also
// anomalous) parents.
//
// Unlike the paper's method it is purely observational — it never sees the
// interventional datasets — so it inherits the confounding the paper's §III
// identifies: correlation-selected parents conflate request edges with
// resource contention, and symmetric correlations cannot orient the blame
// direction.
type CausalRCA struct {
	// Parents is the number of regression parents per service (zero means
	// defaultParents, capped at len(services)-1).
	Parents int
	// Threshold is the z-score above which a service joins the candidate
	// set (zero means defaultRCAThreshold).
	Threshold float64

	services []string
	metrics  []string
	// parents[svc] is the fixed parent set chosen on baseline data.
	parents map[string][]string
	// coef[metric][svc] holds the fitted weights: intercept followed by one
	// weight per parent (in parents[svc] order).
	coef map[string]map[string][]float64
	// mean/std[metric][svc] standardize residuals against baseline scale.
	resMean map[string]map[string]float64
	resStd  map[string]map[string]float64
}

const (
	defaultParents      = 3
	defaultRCAThreshold = 3.0
)

var _ RankedTechnique = (*CausalRCA)(nil)

// Name implements Technique.
func (c *CausalRCA) Name() string { return "causalrca-regression" }

// Train implements Technique: parent selection and per-metric regression
// fits on the fault-free baseline; interventional datasets are ignored.
func (c *CausalRCA) Train(ctx context.Context, baseline *metrics.Snapshot, _ map[string]*metrics.Snapshot) error {
	if baseline == nil {
		return fmt.Errorf("baselines: causalrca: nil baseline")
	}
	if err := baseline.Validate(); err != nil {
		return err
	}
	k := c.Parents
	if k <= 0 {
		k = defaultParents
	}
	if k > len(baseline.Services)-1 {
		k = len(baseline.Services) - 1
	}
	if k <= 0 {
		return fmt.Errorf("baselines: causalrca: need at least two services")
	}
	c.services = append([]string(nil), baseline.Services...)
	sort.Strings(c.services)
	c.metrics = append([]string(nil), baseline.Metrics...)
	sort.Strings(c.metrics)

	// Parent selection: mean absolute Pearson correlation across metrics.
	c.parents = make(map[string][]string, len(c.services))
	for _, svc := range c.services {
		if err := ctx.Err(); err != nil {
			return err
		}
		type corr struct {
			svc   string
			score float64
		}
		cands := make([]corr, 0, len(c.services)-1)
		for _, other := range c.services {
			if other == svc {
				continue
			}
			sum, n := 0.0, 0
			for _, metric := range c.metrics {
				r := pearson(baseline.Data[metric][svc], baseline.Data[metric][other])
				if !math.IsNaN(r) {
					sum += math.Abs(r)
					n++
				}
			}
			score := 0.0
			if n > 0 {
				score = sum / float64(n)
			}
			cands = append(cands, corr{other, score})
		}
		sort.Slice(cands, func(i, j int) bool {
			//vet:allow floateq -- sort tie-break: exact equality falls through to the alphabetical order
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].svc < cands[j].svc
		})
		parents := make([]string, 0, k)
		for _, cand := range cands[:k] {
			parents = append(parents, cand.svc)
		}
		sort.Strings(parents)
		c.parents[svc] = parents
	}

	// Per (metric, service) least-squares fit via normal equations.
	c.coef = make(map[string]map[string][]float64, len(c.metrics))
	c.resMean = make(map[string]map[string]float64, len(c.metrics))
	c.resStd = make(map[string]map[string]float64, len(c.metrics))
	for _, metric := range c.metrics {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.coef[metric] = make(map[string][]float64, len(c.services))
		c.resMean[metric] = make(map[string]float64, len(c.services))
		c.resStd[metric] = make(map[string]float64, len(c.services))
		for _, svc := range c.services {
			y := baseline.Data[metric][svc]
			xs := make([][]float64, len(c.parents[svc]))
			for i, p := range c.parents[svc] {
				xs[i] = baseline.Data[metric][p]
			}
			w := fitOLS(y, xs)
			c.coef[metric][svc] = w
			mean, std := residualStats(y, xs, w)
			c.resMean[metric][svc] = mean
			c.resStd[metric][svc] = std
		}
	}
	return nil
}

// Localize implements Technique: candidates are the services whose ranked
// score clears Threshold, falling back to every service when none does.
func (c *CausalRCA) Localize(ctx context.Context, production *metrics.Snapshot) ([]string, error) {
	ranked, err := c.LocalizeRanked(ctx, production)
	if err != nil {
		return nil, err
	}
	thr := c.Threshold
	if thr == 0 {
		thr = defaultRCAThreshold
	}
	var winners []string
	for _, s := range ranked {
		if s.Score > thr {
			winners = append(winners, s.Service)
		}
	}
	if len(winners) == 0 {
		winners = append([]string(nil), c.services...)
	}
	sort.Strings(winners)
	return winners, nil
}

// LocalizeRanked implements RankedTechnique: each service scored by the mean
// (over metrics) standardized absolute regression residual of its production
// series against its fitted parent model.
func (c *CausalRCA) LocalizeRanked(ctx context.Context, production *metrics.Snapshot) ([]Scored, error) {
	if c.coef == nil {
		return nil, fmt.Errorf("baselines: causalrca: Localize before Train")
	}
	if production == nil {
		return nil, fmt.Errorf("baselines: causalrca: nil production snapshot")
	}
	ranked := make([]Scored, 0, len(c.services))
	for _, svc := range c.services {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sum, n := 0.0, 0
		for _, metric := range c.metrics {
			data, ok := production.Data[metric]
			if !ok {
				continue
			}
			y := data[svc]
			xs := make([][]float64, len(c.parents[svc]))
			for i, p := range c.parents[svc] {
				xs[i] = data[p]
			}
			mean, _ := residualStats(y, xs, c.coef[metric][svc])
			std := c.resStd[metric][svc]
			if std <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
				continue
			}
			sum += math.Abs(mean-c.resMean[metric][svc]) / std
			n++
		}
		score := 0.0
		if n > 0 {
			score = sum / float64(n)
		}
		ranked = append(ranked, Scored{Service: svc, Score: score})
	}
	sortScored(ranked)
	return ranked, nil
}

// pearson is the sample correlation over the common finite prefix of two
// series; NaN when undefined (mismatched support or zero variance).
func pearson(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sx, sy, sxx, syy, sxy := 0.0, 0.0, 0.0, 0.0, 0.0
	m := 0
	for i := 0; i < n; i++ {
		x, y := a[i], b[i]
		if !finite(x) || !finite(y) {
			continue
		}
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
		m++
	}
	if m < 2 {
		return math.NaN()
	}
	fm := float64(m)
	cov := sxy - sx*sy/fm
	vx := sxx - sx*sx/fm
	vy := syy - sy*sy/fm
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// fitOLS solves the least-squares problem y ~ [1, xs...] by Gaussian
// elimination on the normal equations, returning intercept-first weights.
// Degenerate systems (rank deficiency, all-nonfinite rows) fall back to the
// mean-only model.
func fitOLS(y []float64, xs [][]float64) []float64 {
	p := len(xs) + 1
	// Rows where y and every regressor are finite.
	n := len(y)
	for _, x := range xs {
		if len(x) < n {
			n = len(x)
		}
	}
	var rows [][]float64
	for i := 0; i < n; i++ {
		if !finite(y[i]) {
			continue
		}
		ok := true
		row := make([]float64, p+1)
		row[0] = 1
		for j, x := range xs {
			if !finite(x[i]) {
				ok = false
				break
			}
			row[j+1] = x[i]
		}
		if !ok {
			continue
		}
		row[p] = y[i]
		rows = append(rows, row)
	}
	meanOnly := func() []float64 {
		w := make([]float64, p)
		sum, m := 0.0, 0
		for _, v := range y {
			if finite(v) {
				sum += v
				m++
			}
		}
		if m > 0 {
			w[0] = sum / float64(m)
		}
		return w
	}
	if len(rows) < p {
		return meanOnly()
	}
	// Normal equations A w = b with A = XᵀX, b = Xᵀy.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p+1)
	}
	for _, row := range rows {
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][p] += row[i] * row[p]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < p; col++ {
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return meanOnly()
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for j := col; j <= p; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	w := make([]float64, p)
	for i := 0; i < p; i++ {
		w[i] = a[i][p] / a[i][i]
		if !finite(w[i]) {
			return meanOnly()
		}
	}
	return w
}

// residualStats returns the mean and standard deviation of the model's
// residuals on (y, xs); NaN mean when no finite row exists.
func residualStats(y []float64, xs [][]float64, w []float64) (mean, std float64) {
	n := len(y)
	for _, x := range xs {
		if len(x) < n {
			n = len(x)
		}
	}
	sum, sumSq, m := 0.0, 0.0, 0
	for i := 0; i < n; i++ {
		if !finite(y[i]) {
			continue
		}
		pred := w[0]
		ok := true
		for j, x := range xs {
			if !finite(x[i]) {
				ok = false
				break
			}
			pred += w[j+1] * x[i]
		}
		if !ok {
			continue
		}
		r := y[i] - pred
		sum += r
		sumSq += r * r
		m++
	}
	if m == 0 {
		return math.NaN(), 0
	}
	mean = sum / float64(m)
	variance := sumSq/float64(m) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
