package baselines

import (
	"math/rand"
	"testing"

	"causalfl/internal/apps"
	"causalfl/internal/metrics"
)

// topoFixture models the pattern-1 chain a -> b -> c with a single metric
// whose anomaly signature under a fault on b is {a, b, c}: a is anomalous
// via upstream error logs, c via downstream starvation.
func topoFixture(t *testing.T) (*TopologyRCA, *metrics.Snapshot, *metrics.Snapshot) {
	t.Helper()
	services := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(8))
	mk := func(shifted map[string]bool) *metrics.Snapshot {
		snap := metrics.NewSnapshot([]string{"m"}, services)
		for _, svc := range services {
			series := make([]float64, 20)
			off := 0.0
			if shifted[svc] {
				off = 9
			}
			for i := range series {
				series[i] = 5 + off + rng.NormFloat64()*0.3
			}
			snap.Data["m"][svc] = series
		}
		return snap
	}
	baseline := mk(nil)
	production := mk(map[string]bool{"a": true, "b": true, "c": true})
	rca := &TopologyRCA{Edges: []apps.Edge{{From: "a", To: "b"}, {From: "b", To: "c"}}}
	if err := rca.Train(ctx, baseline, nil); err != nil {
		t.Fatal(err)
	}
	return rca, baseline, production
}

func TestTopologyRCABlamesAnomalyFrontier(t *testing.T) {
	rca, _, production := topoFixture(t)
	got, err := rca.Localize(ctx, production)
	if err != nil {
		t.Fatal(err)
	}
	// The whole chain is anomalous; the frontier along the call direction
	// is c — which is WRONG for a fault on b. This mislocalization is the
	// baseline's documented failure mode (§III-A: error logs propagate
	// against the call direction), so the test pins it.
	if len(got) != 1 || got[0] != "c" {
		t.Fatalf("topology RCA blamed %v; expected its characteristic wrong answer {c}", got)
	}
}

func TestTopologyRCAHealthyData(t *testing.T) {
	rca, baseline, _ := topoFixture(t)
	got, err := rca.Localize(ctx, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("healthy data should yield the full set, got %v", got)
	}
}

func TestTopologyRCAValidation(t *testing.T) {
	rca := &TopologyRCA{}
	if err := rca.Train(ctx, nil, nil); err == nil {
		t.Error("nil baseline accepted")
	}
	if _, err := rca.Localize(ctx, nil); err == nil {
		t.Error("Localize before Train accepted")
	}
	f := &fixture{rng: rand.New(rand.NewSource(1))}
	noEdges := &TopologyRCA{}
	if err := noEdges.Train(ctx, f.snapshot(nil), nil); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestTopologyRCACycle(t *testing.T) {
	services := []string{"p", "q"}
	rng := rand.New(rand.NewSource(9))
	mk := func(off float64) *metrics.Snapshot {
		snap := metrics.NewSnapshot([]string{"m"}, services)
		for _, svc := range services {
			series := make([]float64, 15)
			for i := range series {
				series[i] = 5 + off + rng.NormFloat64()*0.3
			}
			snap.Data["m"][svc] = series
		}
		return snap
	}
	rca := &TopologyRCA{Edges: []apps.Edge{{From: "p", To: "q"}, {From: "q", To: "p"}}}
	if err := rca.Train(ctx, mk(0), nil); err != nil {
		t.Fatal(err)
	}
	got, err := rca.Localize(ctx, mk(9))
	if err != nil {
		t.Fatal(err)
	}
	// Mutually anomalous cycle: no frontier exists; both are returned.
	if len(got) != 2 {
		t.Fatalf("cyclic anomalies should return both services, got %v", got)
	}
}
