// Ranked extension of the Technique interface: techniques that can order
// every service by suspicion, not just emit a flat candidate set. The arena
// (internal/arena) uses the ranking for top-1/top-3 accuracy; plain
// set-valued techniques are graded on their sets alone.
package baselines

import (
	"context"
	"sort"

	"causalfl/internal/metrics"
)

// Scored is one ranked localization candidate. Higher scores are more
// suspicious; ties are broken by service name so rankings are deterministic.
type Scored struct {
	Service string
	Score   float64
}

// RankedTechnique extends Technique with an ordered verdict. The contract
// mirrors core.Localization.Ranked(): scores descending, name-ascending on
// ties, and the leading tie group equal to what Localize returns whenever
// the technique's set verdict is score-derived.
type RankedTechnique interface {
	Technique
	// LocalizeRanked returns every scoreable service ordered by
	// suspicion. Train must have been called first.
	LocalizeRanked(ctx context.Context, production *metrics.Snapshot) ([]Scored, error)
}

// sortScored orders candidates score-descending with name-ascending
// tiebreaks, in place.
func sortScored(ranked []Scored) {
	sort.Slice(ranked, func(i, j int) bool {
		//vet:allow floateq -- sort tie-break: exact equality falls through to the alphabetical order
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Service < ranked[j].Service
	})
}

// RankedOrSets adapts any Technique to a ranked verdict: a RankedTechnique
// is asked directly, anything else has its candidate set lifted to a
// uniform-score ranking (each candidate scored 1, everything else omitted).
func RankedOrSets(ctx context.Context, tech Technique, production *metrics.Snapshot) ([]Scored, error) {
	if rt, ok := tech.(RankedTechnique); ok {
		return rt.LocalizeRanked(ctx, production)
	}
	cands, err := tech.Localize(ctx, production)
	if err != nil {
		return nil, err
	}
	ranked := make([]Scored, 0, len(cands))
	for _, svc := range cands {
		ranked = append(ranked, Scored{Service: svc, Score: 1})
	}
	sortScored(ranked)
	return ranked, nil
}
