// Package load generates user traffic against a benchmark application,
// standing in for the paper's Locust-based load-generation service (§V-A).
//
// Two modes are provided:
//
//   - Open loop: requests arrive as a Poisson process at a configured total
//     rate regardless of response times ("maintain a request throughput of
//     fifty"). Scaling the multiplier reproduces the paper's 1×/4× sweep.
//
//   - Closed loop: a fixed population of virtual users issues one request at
//     a time with think-time pauses, exactly like Locust's user model. This
//     mode exhibits the Fig. 2 queuing confounder: a fail-fast fault on one
//     branch speeds the users up and shifts load onto the other branch.
package load

import (
	"fmt"
	"math"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/sim"
)

// ClientName is the caller name used for generated requests. It is not a
// registered service, so the generator itself produces no telemetry —
// matching the paper, which monitors only the application's microservices.
const ClientName = "loadgen"

// Mode selects how load is generated.
type Mode int

const (
	// OpenLoop issues requests at a fixed Poisson rate.
	OpenLoop Mode = iota + 1
	// ClosedLoop emulates a fixed population of blocking virtual users.
	ClosedLoop
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case OpenLoop:
		return "open-loop"
	case ClosedLoop:
		return "closed-loop"
	default:
		return "unknown"
	}
}

// Config tunes a Generator.
type Config struct {
	// Mode selects open- or closed-loop generation. Zero means OpenLoop.
	Mode Mode
	// RatePerSecond is the total open-loop request rate across all flows
	// at multiplier 1. Zero means DefaultRate.
	RatePerSecond float64
	// Users is the closed-loop virtual user count at multiplier 1. Zero
	// means DefaultUsers.
	Users int
	// ThinkTime is the closed-loop pause between a response and the next
	// request. Zero means DefaultThinkTime.
	ThinkTime time.Duration
	// Multiplier scales the load (the paper's 1× and 4× configurations).
	// Zero means 1.
	Multiplier float64
	// Diurnal, when set, modulates the open-loop arrival rate
	// sinusoidally around its mean — the nonstationary production traffic
	// of the §III-C confounder discussion. Ignored in closed-loop mode.
	Diurnal *DiurnalProfile
}

// DiurnalProfile describes sinusoidal load modulation:
// rate(t) = base · (1 + Amplitude·sin(2πt/Period)).
type DiurnalProfile struct {
	// Period is the oscillation period.
	Period time.Duration
	// Amplitude is the relative swing, in [0, 1).
	Amplitude float64
}

// Defaults matching the paper's testbed: ten users maintaining a throughput
// of fifty requests per second.
const (
	DefaultRate      = 50.0
	DefaultUsers     = 10
	DefaultThinkTime = 100 * time.Millisecond
)

// Stats aggregates the client-side view of generated traffic.
type Stats struct {
	Issued    uint64
	Succeeded uint64
	Failed    uint64
	// SuccessLatency accumulates the end-to-end latency of succeeded
	// requests. Together with Succeeded it yields the client-side mean —
	// the latency an operator's SLO actually measures, unpolluted by
	// fail-fast errors that return quickly.
	SuccessLatency time.Duration
	// PerFlow counts issued requests by flow name.
	PerFlow map[string]uint64
}

// Availability is the fraction of completed requests that succeeded.
// It reports 1 when nothing completed yet.
func (s Stats) Availability() float64 {
	completed := s.Succeeded + s.Failed
	if completed == 0 {
		return 1
	}
	return float64(s.Succeeded) / float64(completed)
}

// MeanLatency is the mean end-to-end latency over succeeded requests, zero
// when none succeeded.
func (s Stats) MeanLatency() time.Duration {
	if s.Succeeded == 0 {
		return 0
	}
	return s.SuccessLatency / time.Duration(s.Succeeded)
}

// Generator drives traffic for one application instance.
type Generator struct {
	app     *apps.App
	cfg     Config
	flows   []apps.Flow
	weights []float64
	total   float64
	stats   Stats
	running bool
}

// NewGenerator validates cfg against app and returns a ready (not yet
// started) generator.
func NewGenerator(app *apps.App, cfg Config) (*Generator, error) {
	if app == nil {
		return nil, fmt.Errorf("load: nil app")
	}
	if len(app.Flows) == 0 {
		return nil, fmt.Errorf("load: app %s has no flows", app.Name)
	}
	if cfg.Mode == 0 {
		cfg.Mode = OpenLoop
	}
	if cfg.Mode != OpenLoop && cfg.Mode != ClosedLoop {
		return nil, fmt.Errorf("load: unknown mode %d", cfg.Mode)
	}
	if cfg.RatePerSecond == 0 {
		cfg.RatePerSecond = DefaultRate
	}
	if cfg.RatePerSecond < 0 {
		return nil, fmt.Errorf("load: negative rate %v", cfg.RatePerSecond)
	}
	if cfg.Users == 0 {
		cfg.Users = DefaultUsers
	}
	if cfg.Users < 0 {
		return nil, fmt.Errorf("load: negative users %d", cfg.Users)
	}
	if cfg.ThinkTime == 0 {
		cfg.ThinkTime = DefaultThinkTime
	}
	if cfg.ThinkTime < 0 {
		return nil, fmt.Errorf("load: negative think time %v", cfg.ThinkTime)
	}
	if cfg.Multiplier == 0 {
		cfg.Multiplier = 1
	}
	if cfg.Multiplier < 0 {
		return nil, fmt.Errorf("load: negative multiplier %v", cfg.Multiplier)
	}
	if d := cfg.Diurnal; d != nil {
		if d.Period <= 0 {
			return nil, fmt.Errorf("load: diurnal profile needs a positive period, got %v", d.Period)
		}
		if d.Amplitude < 0 || d.Amplitude >= 1 {
			return nil, fmt.Errorf("load: diurnal amplitude must be in [0,1), got %v", d.Amplitude)
		}
	}
	g := &Generator{
		app:   app,
		cfg:   cfg,
		flows: append([]apps.Flow(nil), app.Flows...),
		stats: Stats{PerFlow: make(map[string]uint64, len(app.Flows))},
	}
	g.weights = make([]float64, len(g.flows))
	for i, f := range g.flows {
		g.total += f.Weight
		g.weights[i] = g.total
	}
	return g, nil
}

// Config returns the effective (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// Start begins generating traffic. It may be called once.
func (g *Generator) Start() error {
	if g.running {
		return fmt.Errorf("load: generator already started")
	}
	g.running = true
	switch g.cfg.Mode {
	case OpenLoop:
		g.scheduleNextArrival()
	case ClosedLoop:
		users := int(float64(g.cfg.Users) * g.cfg.Multiplier)
		if users < 1 {
			users = 1
		}
		eng := g.app.Cluster.Engine()
		for u := 0; u < users; u++ {
			// Stagger user start over one think time to avoid a
			// synchronized stampede.
			offset := time.Duration(eng.Rand().Int63n(int64(g.cfg.ThinkTime) + 1))
			eng.After(offset, g.userLoop)
		}
	}
	return nil
}

// Stop halts traffic generation after in-flight callbacks settle.
func (g *Generator) Stop() { g.running = false }

// Stats returns a copy of the client-side counters.
func (g *Generator) Stats() Stats {
	out := g.stats
	out.PerFlow = make(map[string]uint64, len(g.stats.PerFlow))
	for k, v := range g.stats.PerFlow {
		out.PerFlow[k] = v
	}
	return out
}

// pickFlow samples a flow proportionally to its weight.
func (g *Generator) pickFlow() apps.Flow {
	x := g.app.Cluster.Engine().Rand().Float64() * g.total
	for i, cum := range g.weights {
		if x < cum {
			return g.flows[i]
		}
	}
	return g.flows[len(g.flows)-1]
}

// issue sends one request for flow and records the outcome.
func (g *Generator) issue(flow apps.Flow, done func(ok bool)) {
	g.stats.Issued++
	g.stats.PerFlow[flow.Name]++
	eng := g.app.Cluster.Engine()
	start := eng.Now()
	g.app.Cluster.Call(ClientName, flow.Entry, flow.Endpoint, func(res sim.Result) {
		if res.Err != nil {
			g.stats.Failed++
		} else {
			g.stats.Succeeded++
			g.stats.SuccessLatency += time.Duration(eng.Now() - start)
		}
		if done != nil {
			done(res.Err == nil)
		}
	})
}

// currentRate evaluates the instantaneous arrival rate, applying the
// diurnal modulation if configured.
func (g *Generator) currentRate() float64 {
	rate := g.cfg.RatePerSecond * g.cfg.Multiplier
	if d := g.cfg.Diurnal; d != nil {
		t := g.app.Cluster.Engine().Now()
		phase := 2 * math.Pi * float64(t) / float64(d.Period)
		rate *= 1 + d.Amplitude*math.Sin(phase)
	}
	return rate
}

// scheduleNextArrival draws the next Poisson inter-arrival gap at the
// instantaneous rate and issues a request when it elapses.
func (g *Generator) scheduleNextArrival() {
	rate := g.currentRate()
	if rate <= 0 {
		return
	}
	eng := g.app.Cluster.Engine()
	gap := time.Duration(eng.Rand().ExpFloat64() / rate * float64(time.Second))
	eng.After(gap, func() {
		if !g.running {
			return
		}
		g.issue(g.pickFlow(), nil)
		g.scheduleNextArrival()
	})
}

// userLoop runs one closed-loop virtual user: request, wait, think, repeat.
func (g *Generator) userLoop() {
	if !g.running {
		return
	}
	g.issue(g.pickFlow(), func(bool) {
		eng := g.app.Cluster.Engine()
		think := time.Duration(eng.Rand().Int63n(int64(g.cfg.ThinkTime)) + int64(g.cfg.ThinkTime)/2)
		eng.After(think, g.userLoop)
	})
}
