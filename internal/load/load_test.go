package load

import (
	"math"
	"testing"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/sim"
)

// testApp builds a one-service app with two weighted flows.
func testApp(t *testing.T, capacity int, proc time.Duration) *apps.App {
	t.Helper()
	eng := sim.NewEngine(9)
	cluster := sim.NewCluster(eng)
	cluster.MustAddService(sim.ServiceConfig{
		Name:     "svc",
		Capacity: capacity,
		Endpoints: []sim.Endpoint{
			{Name: "fast", Steps: []sim.Step{sim.Compute{Mean: proc}}},
			{Name: "slow", Steps: []sim.Step{sim.Compute{Mean: proc}}},
		},
	})
	app := &apps.App{
		Name:    "test",
		Cluster: cluster,
		Flows: []apps.Flow{
			{Name: "fast", Entry: "svc", Endpoint: "fast", Weight: 3},
			{Name: "slow", Entry: "svc", Endpoint: "slow", Weight: 1},
		},
		FaultTargets: []string{"svc"},
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestOpenLoopRate(t *testing.T) {
	app := testApp(t, 64, time.Millisecond)
	gen, err := NewGenerator(app, Config{Mode: OpenLoop, RatePerSecond: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	app.Cluster.Engine().Run(60 * time.Second)
	stats := gen.Stats()
	// Poisson(50/s) over 60s: expect ~3000 ± a few hundred.
	if stats.Issued < 2700 || stats.Issued > 3300 {
		t.Fatalf("issued %d requests in 60s at 50rps, want ~3000", stats.Issued)
	}
	if stats.Failed != 0 {
		t.Fatalf("%d requests failed on a healthy service", stats.Failed)
	}
}

func TestOpenLoopMultiplier(t *testing.T) {
	app := testApp(t, 256, time.Millisecond)
	gen, err := NewGenerator(app, Config{Mode: OpenLoop, RatePerSecond: 25, Multiplier: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	app.Cluster.Engine().Run(30 * time.Second)
	got := gen.Stats().Issued
	if got < 2600 || got > 3400 {
		t.Fatalf("issued %d in 30s at 25rps x4, want ~3000", got)
	}
}

func TestFlowWeights(t *testing.T) {
	app := testApp(t, 256, time.Millisecond)
	gen, err := NewGenerator(app, Config{Mode: OpenLoop, RatePerSecond: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	app.Cluster.Engine().Run(60 * time.Second)
	stats := gen.Stats()
	ratio := float64(stats.PerFlow["fast"]) / float64(stats.PerFlow["slow"])
	if math.Abs(ratio-3) > 0.6 {
		t.Fatalf("fast/slow ratio = %.2f, want ~3 (weights 3:1)", ratio)
	}
}

func TestClosedLoopUsersAreBlocking(t *testing.T) {
	// One user with think time ~100ms against a fast service issues at
	// most ~1000/(think/ms) requests; it must never pipeline.
	app := testApp(t, 1, 50*time.Millisecond)
	gen, err := NewGenerator(app, Config{Mode: ClosedLoop, Users: 1, ThinkTime: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	app.Cluster.Engine().Run(10 * time.Second)
	stats := gen.Stats()
	// Each cycle is >= 50ms proc + ~50ms think => at most ~100 requests.
	if stats.Issued > 120 {
		t.Fatalf("single closed-loop user issued %d requests in 10s, impossible without pipelining", stats.Issued)
	}
	if stats.Issued < 50 {
		t.Fatalf("single closed-loop user issued only %d requests", stats.Issued)
	}
}

func TestClosedLoopFailFastSpeedsUsersUp(t *testing.T) {
	// The Fig. 2 mechanism in miniature: with the service unavailable,
	// closed-loop users cycle faster and issue more requests.
	run := func(faulted bool) uint64 {
		app := testApp(t, 1, 50*time.Millisecond)
		if faulted {
			svc, _ := app.Cluster.Service("svc")
			svc.SetUnavailable(true)
		}
		gen, err := NewGenerator(app, Config{Mode: ClosedLoop, Users: 5, ThinkTime: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.Start(); err != nil {
			t.Fatal(err)
		}
		app.Cluster.Engine().Run(10 * time.Second)
		return gen.Stats().Issued
	}
	healthy, faulted := run(false), run(true)
	if faulted <= healthy {
		t.Fatalf("fail-fast did not speed users up: healthy=%d faulted=%d", healthy, faulted)
	}
}

func TestGeneratorStop(t *testing.T) {
	app := testApp(t, 16, time.Millisecond)
	gen, err := NewGenerator(app, Config{Mode: OpenLoop, RatePerSecond: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	eng := app.Cluster.Engine()
	eng.Run(5 * time.Second)
	gen.Stop()
	at := gen.Stats().Issued
	eng.Run(10 * time.Second)
	after := gen.Stats().Issued
	if after > at+1 {
		t.Fatalf("generator kept issuing after Stop (%d -> %d)", at, after)
	}
}

func TestGeneratorValidation(t *testing.T) {
	app := testApp(t, 1, time.Millisecond)
	cases := []Config{
		{Mode: Mode(99)},
		{RatePerSecond: -1},
		{Users: -1},
		{ThinkTime: -time.Second},
		{Multiplier: -2},
	}
	for i, cfg := range cases {
		if _, err := NewGenerator(app, cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	if _, err := NewGenerator(nil, Config{}); err == nil {
		t.Error("nil app accepted")
	}
	gen, err := NewGenerator(app, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Config().RatePerSecond != DefaultRate || gen.Config().Users != DefaultUsers {
		t.Errorf("defaults not applied: %+v", gen.Config())
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err == nil {
		t.Error("double Start accepted")
	}
}

func TestDiurnalProfileModulatesRate(t *testing.T) {
	app := testApp(t, 256, time.Millisecond)
	gen, err := NewGenerator(app, Config{
		Mode:          OpenLoop,
		RatePerSecond: 100,
		Diurnal:       &DiurnalProfile{Period: 2 * time.Minute, Amplitude: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	eng := app.Cluster.Engine()
	// First quarter period (peak of the sine): rate ~ up to 180/s.
	eng.Run(30 * time.Second)
	peak := gen.Stats().Issued
	// Third quarter (trough): rate down to ~20/s.
	eng.Run(60 * time.Second)
	eng.Run(90 * time.Second)
	trough := gen.Stats().Issued - peak
	_ = trough
	eng.Run(2 * time.Minute)
	total := gen.Stats().Issued
	// Over one full period the mean rate is the base rate: ~12000 ± noise.
	if total < 10500 || total > 13500 {
		t.Fatalf("one diurnal period issued %d requests, want ~12000 (mean preserved)", total)
	}
	// The first quarter (rising peak) must clearly out-pace a steady 25%%
	// share of the period.
	if float64(peak) < float64(total)*0.25*1.2 {
		t.Fatalf("peak quarter issued %d of %d; no visible modulation", peak, total)
	}
}

func TestDiurnalValidation(t *testing.T) {
	app := testApp(t, 1, time.Millisecond)
	if _, err := NewGenerator(app, Config{Diurnal: &DiurnalProfile{Period: 0, Amplitude: 0.5}}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewGenerator(app, Config{Diurnal: &DiurnalProfile{Period: time.Minute, Amplitude: 1.0}}); err == nil {
		t.Error("amplitude 1.0 accepted")
	}
	if _, err := NewGenerator(app, Config{Diurnal: &DiurnalProfile{Period: time.Minute, Amplitude: -0.1}}); err == nil {
		t.Error("negative amplitude accepted")
	}
}

func TestStatsIsACopy(t *testing.T) {
	app := testApp(t, 16, time.Millisecond)
	gen, err := NewGenerator(app, Config{Mode: OpenLoop, RatePerSecond: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	app.Cluster.Engine().Run(time.Second)
	s := gen.Stats()
	s.PerFlow["fast"] = 999999
	if gen.Stats().PerFlow["fast"] == 999999 {
		t.Fatal("Stats exposes internal map")
	}
}

func TestSuccessLatencyStats(t *testing.T) {
	app := testApp(t, 64, 20*time.Millisecond)
	gen, err := NewGenerator(app, Config{Mode: OpenLoop, RatePerSecond: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	app.Cluster.Engine().Run(30 * time.Second)
	stats := gen.Stats()
	if stats.Succeeded == 0 {
		t.Fatal("no succeeded requests")
	}
	mean := stats.MeanLatency()
	// Exponential compute with 20ms mean, effectively no queueing at this
	// rate and capacity: the client-side mean must sit near 20ms.
	if mean < 10*time.Millisecond || mean > 40*time.Millisecond {
		t.Fatalf("mean success latency %v, want ~20ms", mean)
	}
	if got := stats.Availability(); got != 1 {
		t.Fatalf("availability %v with zero failures, want 1", got)
	}
	if (Stats{}).MeanLatency() != 0 {
		t.Error("zero-value Stats should report zero mean latency")
	}
	if (Stats{}).Availability() != 1 {
		t.Error("zero-value Stats should report availability 1")
	}
}
