package webui

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
)

// trainedModel builds a small model over services {x, y} where a fault in x
// shifts metric m on both.
func trainedModel(t *testing.T) (*core.Model, *metrics.Snapshot) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	mk := func(shift bool) *metrics.Snapshot {
		snap := metrics.NewSnapshot([]string{"m"}, []string{"x", "y"})
		for _, svc := range []string{"x", "y"} {
			series := make([]float64, 15)
			off := 0.0
			if shift {
				off = 9
			}
			for i := range series {
				series[i] = 5 + off + rng.NormFloat64()*0.4
			}
			snap.Data["m"][svc] = series
		}
		return snap
	}
	baseline := mk(false)
	learner, err := core.NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	model, err := learner.Learn(context.Background(), baseline, map[string]*metrics.Snapshot{"x": mk(true)})
	if err != nil {
		t.Fatal(err)
	}
	return model, mk(true) // production data matching the x world
}

func newTestServer(t *testing.T) (*Server, *metrics.Snapshot) {
	t.Helper()
	model, production := trainedModel(t)
	s, err := NewServer(model)
	if err != nil {
		t.Fatal(err)
	}
	return s, production
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewServer(&core.Model{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestIndexPage(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET / = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"causalfl", "/worlds", "/localize"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestIndexRejectsUnknownPaths(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", rec.Code)
	}
}

func TestWorldsPage(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/worlds", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /worlds = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "metric m") {
		t.Errorf("worlds page missing metric heading:\n%s", body)
	}
	if !strings.Contains(body, "x, y") {
		t.Errorf("worlds page missing causal set:\n%s", body)
	}
}

func TestLocalizeEndpoint(t *testing.T) {
	s, production := newTestServer(t)
	blob, err := json.Marshal(production)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/localize", bytes.NewReader(blob)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /localize = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Candidates []string            `json:"candidates"`
		Anomalies  map[string][]string `json:"anomalies"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0] != "x" {
		t.Fatalf("candidates = %v, want {x}", resp.Candidates)
	}
	if len(resp.Anomalies) == 0 {
		t.Error("response lacks anomaly explanation")
	}
}

func TestLocalizeRejectsBadRequests(t *testing.T) {
	s, _ := newTestServer(t)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/localize", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /localize = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/localize", strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/localize", strings.NewReader(`{"metrics":[],"services":[],"data":{}}`)))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid snapshot = %d, want 400", rec.Code)
	}

	// A structurally valid snapshot with the wrong metrics fails inside
	// the localizer.
	wrong := metrics.NewSnapshot([]string{"other"}, []string{"x", "y"})
	wrong.Data["other"]["x"] = []float64{1, 2}
	wrong.Data["other"]["y"] = []float64{1, 2}
	blob, err := json.Marshal(wrong)
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/localize", bytes.NewReader(blob)))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("metric-mismatched snapshot = %d, want 422", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("healthz = %d %s", rec.Code, rec.Body.String())
	}
}

func TestLocalizeAcceptsDegradedSnapshots(t *testing.T) {
	s, production := newTestServer(t)

	post := func(snap *metrics.Snapshot) (*httptest.ResponseRecorder, localizeResponse) {
		t.Helper()
		blob, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/localize", bytes.NewReader(blob)))
		var resp localizeResponse
		if rec.Code == http.StatusOK {
			if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
				t.Fatal(err)
			}
		}
		return rec, resp
	}

	// A declared pair is missing: the localizer runs on what remains.
	partial := production.Clone()
	delete(partial.Data["m"], "y")
	rec, resp := post(partial)
	if rec.Code != http.StatusOK {
		t.Fatalf("partial snapshot = %d, want 200: %s", rec.Code, rec.Body)
	}
	if resp.Abstained {
		t.Fatalf("partial snapshot abstained: %+v", resp)
	}

	// Every series is gone (universe still declared): explicit abstention.
	dark := metrics.NewSnapshot([]string{"m"}, []string{"x", "y"})
	rec, resp = post(dark)
	if rec.Code != http.StatusOK {
		t.Fatalf("dark snapshot = %d, want 200: %s", rec.Code, rec.Body)
	}
	if !resp.Abstained || len(resp.Candidates) != 0 {
		t.Fatalf("dark snapshot should abstain with no candidates, got %+v", resp)
	}
}

// TestMethodHygiene pins the 405 contract: wrong-method requests answer with
// an Allow header instead of a bare rejection or 404.
func TestMethodHygiene(t *testing.T) {
	s, _ := newTestServer(t)
	for _, tc := range []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/localize", http.MethodPost},
		{http.MethodPost, "/worlds", http.MethodGet},
		{http.MethodDelete, "/healthz", http.MethodGet},
	} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, tc.allow) {
			t.Errorf("%s %s Allow = %q, want %q listed", tc.method, tc.path, allow, tc.allow)
		}
	}
}

// TestLocalizeErrorsAreJSON pins the error content-type on the API path.
func TestLocalizeErrorsAreJSON(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/localize", strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error content-type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("error body %q not a JSON error payload (%v)", rec.Body.String(), err)
	}
}

// TestDashboardPage checks the live dashboard is mounted and self-contained.
func TestDashboardPage(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dashboard", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /dashboard = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"/v1/tenants", "wait=1", "out_of_order"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
