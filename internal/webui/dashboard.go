package webui

import "net/http"

// Dashboard returns the live verdict dashboard: a self-contained HTML+JS
// page that consumes the `causalfl serve` streaming API on the same origin —
// GET /v1/tenants for the tenant list, then a long-poll loop on each
// tenant's verdict subscription endpoint (GET /v1/tenants/{t}/verdicts
// ?since=N&wait=1) and its stats endpoint. It is a pure static handler: all
// state lives in the serve API, so the dashboard works against any server
// that mounts both, and degrades to an explicit notice when the streaming
// API is absent.
func Dashboard() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
}

const dashboardHTML = `<!DOCTYPE html>
<html><head><title>causalfl — live verdicts</title>
<style>
body { font-family: monospace; margin: 1.5em; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
td, th { border: 1px solid #999; padding: 3px 8px; text-align: left; }
.confirmed { background: #fdd; font-weight: bold; }
.muted { color: #777; }
</style></head><body>
<h1>causalfl — live verdict dashboard</h1>
<p id="status" class="muted">connecting…</p>
<div id="tenants"></div>
<script>
"use strict";
const status = document.getElementById("status");
const root = document.getElementById("tenants");
const watched = new Set();

function section(name) {
  const div = document.createElement("div");
  div.innerHTML = '<h2>tenant ' + name + '</h2>' +
    '<p class="muted" id="stats-' + name + '"></p>' +
    '<table><thead><tr><th>seq</th><th>at</th><th>confirmed</th>' +
    '<th>candidates</th></tr></thead>' +
    '<tbody id="rows-' + name + '"></tbody></table>';
  root.appendChild(div);
}

function row(name, sv) {
  const v = sv.verdict;
  const tr = document.createElement("tr");
  if ((v.confirmed || []).length > 0) tr.className = "confirmed";
  tr.innerHTML = "<td>" + sv.seq + "</td><td>" + v.at + "</td><td>" +
    (v.confirmed || []).join(", ") + "</td><td>" +
    (v.candidates || []).join(", ") + "</td>";
  const body = document.getElementById("rows-" + name);
  body.insertBefore(tr, body.firstChild);
  while (body.rows.length > 50) body.deleteRow(-1);
}

async function pollStats(name) {
  for (;;) {
    try {
      const r = await fetch("/v1/tenants/" + name + "/stats");
      if (r.ok) {
        const st = await r.json();
        document.getElementById("stats-" + name).textContent =
          "processed " + st.processed + " batches, shed " + st.shed +
          ", queue " + st.queue_len + "/" + st.queue_cap +
          ", out-of-order " + st.pipeline.aggregator.out_of_order +
          ", dead " + st.pipeline.aggregator.dead;
      }
    } catch (e) { /* transient; the verdict poll reports outages */ }
    await new Promise(res => setTimeout(res, 2000));
  }
}

async function pollVerdicts(name) {
  let since = 0;
  for (;;) {
    try {
      const r = await fetch("/v1/tenants/" + name +
        "/verdicts?since=" + since + "&wait=1");
      if (!r.ok) { await new Promise(res => setTimeout(res, 2000)); continue; }
      const out = await r.json();
      for (const sv of out.verdicts || []) row(name, sv);
      since = out.next;
    } catch (e) {
      await new Promise(res => setTimeout(res, 2000));
    }
  }
}

async function discover() {
  for (;;) {
    try {
      const r = await fetch("/v1/tenants");
      if (!r.ok) throw new Error(r.status);
      const out = await r.json();
      status.textContent = (out.tenants || []).length + " tenant(s)";
      for (const name of out.tenants || []) {
        if (watched.has(name)) continue;
        watched.add(name);
        section(name);
        pollVerdicts(name);
        pollStats(name);
      }
    } catch (e) {
      status.textContent =
        "streaming API unreachable — is causalfl serve running here?";
    }
    await new Promise(res => setTimeout(res, 5000));
  }
}
discover();
</script>
</body></html>
`
