// Package webui serves a trained causal model over HTTP: human-readable
// pages for the per-metric causal worlds and a JSON localization endpoint
// that accepts production metric snapshots. It is the operator-facing
// surface of the pipeline — in the paper's deployment story, the component
// an SRE would query when production alarms fire.
package webui

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
)

// Server serves one trained model.
type Server struct {
	model     *core.Model
	localizer *core.Localizer
	mux       *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// NewServer validates the model and builds the handler.
func NewServer(model *core.Model) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("webui: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("webui: %w", err)
	}
	localizer, err := core.NewLocalizer()
	if err != nil {
		return nil, err
	}
	s := &Server{model: model, localizer: localizer, mux: http.NewServeMux()}
	// Method patterns: a wrong-method request gets 405 with an Allow header
	// from the mux itself instead of a handler-specific 404 or rejection.
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("GET /worlds", s.handleWorlds)
	s.mux.HandleFunc("POST /localize", s.handleLocalize)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /dashboard", Dashboard())
	return s, nil
}

// jsonError writes an error payload with an explicit JSON content-type, so
// API clients on the /localize path never have to sniff a text/plain body.
func jsonError(w http.ResponseWriter, msg string, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>causalfl</title></head><body>
<h1>causalfl — interventional causal fault localization</h1>
<p>Model: {{.Services}} services, {{.Metrics}} metrics, {{.Targets}} trained
targets, &alpha;={{printf "%.2f" .Alpha}}.</p>
<ul>
<li><a href="/worlds">Per-metric causal worlds</a></li>
<li><code>POST /localize</code> with a production snapshot JSON body
(the <code>metrics.Snapshot</code> format) returns the candidate fault set.</li>
<li><a href="/dashboard">Live verdict dashboard</a> (needs the streaming
API of <code>causalfl serve</code> on this host)</li>
<li><a href="/healthz">Health</a></li>
</ul>
</body></html>
`))

// handleIndex renders the overview.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	data := struct {
		Services, Metrics, Targets int
		Alpha                      float64
	}{len(s.model.Services), len(s.model.Metrics), len(s.model.Targets), s.model.Alpha}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var worldsTmpl = template.Must(template.New("worlds").Parse(`<!DOCTYPE html>
<html><head><title>causal worlds</title></head><body>
<h1>Per-metric causal worlds</h1>
<p>C(s, M): the services whose metric-M distribution shifts when a fault is
injected into s. One world per metric — they genuinely differ.</p>
{{range .Worlds}}
<h2>metric {{.Metric}}</h2>
<table border="1" cellpadding="4">
<tr><th>injected service</th><th>causal set</th></tr>
{{range .Rows}}<tr><td>{{.Target}}</td><td>{{.Set}}</td></tr>
{{end}}
</table>
{{end}}
</body></html>
`))

// handleWorlds renders the causal sets.
func (s *Server) handleWorlds(w http.ResponseWriter, _ *http.Request) {
	type row struct{ Target, Set string }
	type world struct {
		Metric string
		Rows   []row
	}
	var data struct{ Worlds []world }
	for _, metric := range s.model.Metrics {
		wld := world{Metric: metric}
		for _, target := range s.model.Targets {
			set, err := s.model.CausalSet(metric, target)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			wld.Rows = append(wld.Rows, row{Target: target, Set: join(set)})
		}
		data.Worlds = append(data.Worlds, wld)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := worldsTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// localizeResponse is the JSON shape of POST /localize.
type localizeResponse struct {
	Candidates []string            `json:"candidates"`
	Abstained  bool                `json:"abstained,omitempty"`
	Votes      map[string]float64  `json:"votes"`
	Anomalies  map[string][]string `json:"anomalies"`
}

// handleLocalize runs Algorithm 2 on a posted snapshot.
func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	var snap metrics.Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		jsonError(w, fmt.Sprintf("decode snapshot: %v", err), http.StatusBadRequest)
		return
	}
	// Tolerant validation: production snapshots may legitimately arrive
	// with missing (metric, service) pairs when telemetry is degraded; the
	// localizer handles those (abstaining if need be) rather than erroring.
	if err := snap.ValidateTolerant(); err != nil {
		jsonError(w, fmt.Sprintf("invalid snapshot: %v", err), http.StatusBadRequest)
		return
	}
	// The localizer tolerates degraded snapshots (missing pairs, short
	// series), but the HTTP contract stays strict about the *declared*
	// universe: a snapshot over different metrics or services is a client
	// mix-up, not telemetry degradation.
	if err := universeMatches(s.model, &snap); err != nil {
		jsonError(w, fmt.Sprintf("localize: %v", err), http.StatusUnprocessableEntity)
		return
	}
	loc, err := s.localizer.Localize(r.Context(), s.model, &snap)
	if err != nil {
		jsonError(w, fmt.Sprintf("localize: %v", err), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(localizeResponse{
		Candidates: loc.Candidates,
		Abstained:  loc.Abstained,
		Votes:      loc.Votes,
		Anomalies:  loc.Anomalies,
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// universeMatches checks that the posted snapshot declares every metric and
// service the model was trained on.
func universeMatches(model *core.Model, snap *metrics.Snapshot) error {
	declaredM := make(map[string]bool, len(snap.Metrics))
	for _, m := range snap.Metrics {
		declaredM[m] = true
	}
	for _, m := range model.Metrics {
		if !declaredM[m] {
			return fmt.Errorf("snapshot does not declare model metric %q", m)
		}
	}
	declaredS := make(map[string]bool, len(snap.Services))
	for _, svc := range snap.Services {
		declaredS[svc] = true
	}
	for _, svc := range model.Services {
		if !declaredS[svc] {
			return fmt.Errorf("snapshot does not declare model service %q", svc)
		}
	}
	return nil
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","targets":%d}`, len(s.model.Targets))
}

// join renders a set compactly.
func join(set []string) string {
	out := ""
	for i, s := range set {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
