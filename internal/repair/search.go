package repair

import (
	"context"
	"fmt"
	"sort"
	"time"

	"causalfl/internal/parallel"
	"causalfl/internal/sim"
)

// Options tunes the fix-set search.
type Options struct {
	// Ranked lists candidate services in attribution order (most suspect
	// first) — typically core.Localization.Ranked() of the verdict. Empty
	// falls back to the app's sorted fault targets.
	Ranked []string
	// MaxSetSize bounds the searched intervention sets (default 3, the CCA
	// setting: beyond three simultaneous actions an operator wants a
	// postmortem, not a plan).
	MaxSetSize int
	// TopExact bounds the candidate pool of the exact minimality phase
	// (default 8): after greedy finds a working set, every subset of the
	// TopExact best-scoring singletons up to the greedy size is enumerated.
	TopExact int
	// ScaleTop adds a scale-replicas candidate for the first ScaleTop
	// ranked services (default 2).
	ScaleTop int
	// ScaleFactor is the capacity multiplier of scale candidates
	// (default 4).
	ScaleFactor int
	// MaxSets bounds the evaluated sets retained in the report (default
	// 10). The chosen set is always included.
	MaxSets int
	// Workers bounds the replay worker pool. Zero selects GOMAXPROCS; one
	// forces the serial reference path. Results are identical at every
	// setting.
	Workers int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.MaxSetSize == 0 {
		o.MaxSetSize = 3
	}
	if o.TopExact == 0 {
		o.TopExact = 8
	}
	if o.ScaleTop == 0 {
		o.ScaleTop = 2
	}
	if o.ScaleFactor == 0 {
		o.ScaleFactor = 4
	}
	if o.MaxSets == 0 {
		o.MaxSets = 10
	}
	return o
}

// searcher carries the state of one search run.
type searcher struct {
	sc      Scenario
	opts    Options
	healthy Metrics
	slo     SLO
	memo    map[string]FixSet
	replays int
	workers int
}

// Search finds the minimal intervention set whose counterfactual replay
// restores the SLO. It replays the healthy reference and the unrepaired
// control, generates candidates from the attribution ranking and the
// application's flows and nodes, evaluates singletons, grows a set greedily
// until the SLO holds (or the size bound is hit), then enumerates subsets of
// the best singletons to certify minimality. All candidate replays of one
// round run in parallel with ordered fan-in; every selection breaks ties on
// the candidate key, so the report is deterministic at any worker count.
func Search(ctx context.Context, sc Scenario, opts Options) (*Report, error) {
	sc, err := sc.withDefaults()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	healthy, err := ReplayHealthy(sc)
	if err != nil {
		return nil, err
	}
	control, err := Replay(sc, nil)
	if err != nil {
		return nil, err
	}
	s := &searcher{
		sc:      sc,
		opts:    opts,
		healthy: healthy,
		slo:     DeriveSLO(healthy),
		memo:    make(map[string]FixSet),
		replays: 2,
		workers: opts.Workers,
	}
	report := &Report{
		App:     sc.App,
		Seed:    sc.Seed,
		Warmup:  sc.Warmup,
		Window:  sc.Window,
		Healthy: healthy,
		Control: control,
		SLO:     s.slo,
	}
	for _, tf := range sc.Faults {
		report.Faults = append(report.Faults, FaultSpec{Target: tf.Target, Fault: tf.Fault.Type.String()})
	}
	report.ControlMeetsSLO = s.slo.Met(control)
	if report.ControlMeetsSLO {
		// Nothing to repair: the faulty window still meets the SLO.
		report.Replays = s.replays
		return report, nil
	}

	candidates, err := s.generate()
	if err != nil {
		return nil, err
	}
	singles, err := s.evaluateAll(ctx, singletons(candidates))
	if err != nil {
		return nil, err
	}
	for i, fs := range singles {
		report.Candidates = append(report.Candidates, Candidate{
			Intervention: candidates[i],
			Metrics:      fs.Metrics,
			Score:        fs.Score,
			MeetsSLO:     fs.MeetsSLO,
			Delta:        deltaVs(control, fs.Metrics),
		})
	}
	sort.SliceStable(report.Candidates, func(a, b int) bool {
		return lessCandidate(report.Candidates[a], report.Candidates[b])
	})

	if err := s.greedy(ctx, candidates); err != nil {
		return nil, err
	}
	if err := s.exact(ctx); err != nil {
		return nil, err
	}

	report.Sets = s.rankedSets()
	if len(report.Sets) > opts.MaxSets {
		report.Sets = report.Sets[:opts.MaxSets]
	}
	report.Replays = s.replays
	return report, nil
}

// generate builds the deterministic candidate list: a restore per ranked
// service, a scale for the top-ranked few, a shed per flow, an evacuation
// per node. Restores cover *every* ranked candidate — not just the services
// that are actually faulted — so the search never peeks at ground truth.
func (s *searcher) generate() ([]Intervention, error) {
	eng := sim.NewEngine(s.sc.Seed)
	app, err := s.sc.Build(eng)
	if err != nil {
		return nil, err
	}
	if s.sc.Perturb != nil {
		if err := s.sc.Perturb(app); err != nil {
			return nil, err
		}
	}
	ranked := s.opts.Ranked
	if len(ranked) == 0 {
		ranked = app.SortedFaultTargets()
	}
	var out []Intervention
	seen := make(map[string]bool)
	add := func(iv Intervention) {
		if key := iv.Key(); !seen[key] {
			seen[key] = true
			out = append(out, iv)
		}
	}
	for _, svc := range ranked {
		if _, ok := app.Cluster.Service(svc); !ok {
			return nil, fmt.Errorf("repair: ranked candidate %q is not a service of %s", svc, app.Name)
		}
		add(Intervention{Kind: KindRestore, Target: svc})
	}
	for i, svc := range ranked {
		if i >= s.opts.ScaleTop {
			break
		}
		add(Intervention{Kind: KindScale, Target: svc, Factor: s.opts.ScaleFactor})
	}
	flowNames := make([]string, 0, len(app.Flows))
	for _, f := range app.Flows {
		flowNames = append(flowNames, f.Name)
	}
	sort.Strings(flowNames)
	for _, name := range flowNames {
		add(Intervention{Kind: KindShed, Target: name})
	}
	for _, node := range app.Cluster.NodeNames() {
		add(Intervention{Kind: KindEvacuate, Target: node})
	}
	return out, nil
}

// singletons wraps each candidate as a one-element set.
func singletons(candidates []Intervention) [][]Intervention {
	sets := make([][]Intervention, len(candidates))
	for i, iv := range candidates {
		sets[i] = []Intervention{iv}
	}
	return sets
}

// evaluateAll replays every set (memoized) in parallel with ordered fan-in.
func (s *searcher) evaluateAll(ctx context.Context, sets [][]Intervention) ([]FixSet, error) {
	fresh := make([]int, 0, len(sets))
	for i, ivs := range sets {
		if _, done := s.memo[setKey(ivs)]; !done {
			fresh = append(fresh, i)
		}
	}
	results, err := parallel.Map(ctx, s.workers, len(fresh), func(ctx context.Context, i int) (Metrics, error) {
		return Replay(s.sc, sets[fresh[i]])
	})
	if err != nil {
		return nil, err
	}
	for j, i := range fresh {
		m := results[j]
		ivs := canonical(sets[i])
		s.memo[setKey(ivs)] = FixSet{
			Interventions: ivs,
			Metrics:       m,
			Score:         Score(s.healthy, m),
			MeetsSLO:      s.slo.Met(m),
		}
		s.replays++
	}
	out := make([]FixSet, len(sets))
	for i, ivs := range sets {
		out[i] = s.memo[setKey(ivs)]
	}
	return out, nil
}

// canonical orders a set by intervention key.
func canonical(ivs []Intervention) []Intervention {
	out := append([]Intervention(nil), ivs...)
	sort.Slice(out, func(a, b int) bool { return out[a].Key() < out[b].Key() })
	return out
}

// greedy grows the working set: each round evaluates the current set plus
// every remaining candidate and keeps the best extension (score descending,
// key ascending), stopping when the SLO holds or the size bound is reached.
func (s *searcher) greedy(ctx context.Context, candidates []Intervention) error {
	var cur []Intervention
	for len(cur) < s.opts.MaxSetSize {
		var trial [][]Intervention
		var added []Intervention
		inCur := make(map[string]bool, len(cur))
		for _, iv := range cur {
			inCur[iv.Key()] = true
		}
		for _, iv := range candidates {
			if !inCur[iv.Key()] {
				trial = append(trial, append(append([]Intervention(nil), cur...), iv))
				added = append(added, iv)
			}
		}
		if len(trial) == 0 {
			return nil
		}
		results, err := s.evaluateAll(ctx, trial)
		if err != nil {
			return err
		}
		best := 0
		for i := 1; i < len(results); i++ {
			better := results[i].Score > results[best].Score
			if results[i].Score == results[best].Score { //vet:allow floateq -- deterministic tie-break: exact equality falls through to the key order
				better = added[i].Key() < added[best].Key()
			}
			if better {
				best = i
			}
		}
		cur = append(cur, added[best])
		if results[best].MeetsSLO {
			return nil
		}
	}
	return nil
}

// exact certifies minimality: if any evaluated set meets the SLO at size k,
// enumerate every subset of the TopExact best singletons with size below k
// and evaluate the ones not yet memoized. Afterwards the ranked-set order
// provably starts with a smallest SLO-restoring set over the pool.
func (s *searcher) exact(ctx context.Context) error {
	bestSize := 0
	for _, fs := range s.memo {
		if fs.MeetsSLO && (bestSize == 0 || len(fs.Interventions) < bestSize) {
			bestSize = len(fs.Interventions)
		}
	}
	if bestSize <= 1 {
		// Either nothing works (nothing to certify) or a singleton works
		// (trivially minimal — all singletons are already evaluated).
		return nil
	}
	var pool []FixSet
	for _, fs := range s.memo {
		if len(fs.Interventions) == 1 {
			pool = append(pool, fs)
		}
	}
	sort.Slice(pool, func(a, b int) bool { return lessFixSet(pool[a], pool[b]) })
	if len(pool) > s.opts.TopExact {
		pool = pool[:s.opts.TopExact]
	}
	base := make([]Intervention, len(pool))
	for i, fs := range pool {
		base[i] = fs.Interventions[0]
	}
	var sets [][]Intervention
	var build func(start int, cur []Intervention)
	build = func(start int, cur []Intervention) {
		if len(cur) >= 2 && len(cur) < bestSize {
			sets = append(sets, append([]Intervention(nil), cur...))
		}
		if len(cur) >= bestSize-1 {
			return
		}
		for i := start; i < len(base); i++ {
			build(i+1, append(cur, base[i]))
		}
	}
	build(0, nil)
	_, err := s.evaluateAll(ctx, sets)
	return err
}

// rankedSets orders every evaluated non-empty set: SLO-restoring sets first,
// then smaller, then higher-scoring, then lexicographic key — so the first
// entry is the top-ranked minimal fix set.
func (s *searcher) rankedSets() []FixSet {
	out := make([]FixSet, 0, len(s.memo))
	for _, fs := range s.memo {
		out = append(out, fs)
	}
	sort.Slice(out, func(a, b int) bool { return lessFixSet(out[a], out[b]) })
	return out
}

// lessFixSet is the total order of fix sets: meets-SLO first, size
// ascending, score descending, key ascending. Size-ascending is what makes
// padding a working set with irrelevant interventions structurally unable to
// outrank the unpadded set, even at equal score.
func lessFixSet(a, b FixSet) bool {
	if a.MeetsSLO != b.MeetsSLO {
		return a.MeetsSLO
	}
	if len(a.Interventions) != len(b.Interventions) {
		return len(a.Interventions) < len(b.Interventions)
	}
	if a.Score != b.Score { //vet:allow floateq -- sort tie-break: exact equality falls through to the key order
		return a.Score > b.Score
	}
	return setKey(a.Interventions) < setKey(b.Interventions)
}

// lessCandidate orders singleton candidates for the report table.
func lessCandidate(a, b Candidate) bool {
	if a.MeetsSLO != b.MeetsSLO {
		return a.MeetsSLO
	}
	if a.Score != b.Score { //vet:allow floateq -- sort tie-break: exact equality falls through to the key order
		return a.Score > b.Score
	}
	return a.Intervention.Key() < b.Intervention.Key()
}

// searchDurations documents the quick defaults used by eval and the CLI.
const (
	// QuickWarmup and QuickWindow are the compact replay durations of
	// quick-mode searches (eval extension, -quick explain runs).
	QuickWarmup = 10 * time.Second
	QuickWindow = 40 * time.Second
)
