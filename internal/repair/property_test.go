package repair

import (
	"context"
	"reflect"
	"testing"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/chaos"
	"causalfl/internal/sim"
)

// The property harness of the ISSUE: on both paper apps, across seeds and
// every single-fault eval scenario, the injected fault's restoration must
// appear in the top-ranked fix set; and — metamorphically — padding a fix
// set with an irrelevant intervention never improves its score or its rank.

// propertyApps are the paper's two evaluation applications.
func propertyApps(t *testing.T) []struct {
	Name    string
	Build   apps.Builder
	Targets []string
} {
	t.Helper()
	var out []struct {
		Name    string
		Build   apps.Builder
		Targets []string
	}
	for _, b := range []apps.Builder{causalbench.Build, robotshop.Build} {
		app, err := b(sim.NewEngine(0))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			Name    string
			Build   apps.Builder
			Targets []string
		}{app.Name, b, app.SortedFaultTargets()})
	}
	return out
}

func TestPropertyTrueFixTopRanked(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	seeds := []int64{1, 7}
	for _, app := range propertyApps(t) {
		for _, seed := range seeds {
			for _, target := range app.Targets {
				sc := Scenario{
					App:    app.Name,
					Build:  app.Build,
					Seed:   seed,
					Faults: []chaos.TargetFault{{Target: target, Fault: chaos.Unavailable()}},
					Warmup: QuickWarmup,
					Window: QuickWindow,
				}
				// The attribution ranking is deliberately the *alphabetical*
				// target list: the property must hold without any help from
				// a localizer putting the true fault first.
				report, err := Search(context.Background(), sc, Options{Ranked: app.Targets})
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", app.Name, target, seed, err)
				}
				if report.ControlMeetsSLO {
					// Some faults are invisible to the client SLO by
					// design — CausalBench's G is only called by the
					// background worker F, which swallows errors (§III-B's
					// omission fault). The correct repair answer there is
					// the empty fix set: nothing the client can see needs
					// fixing. Assert the search says exactly that.
					if len(report.Sets) != 0 {
						t.Errorf("%s/%s seed %d: SLO met but search proposed %v",
							app.Name, target, seed, report.Sets[0].Interventions)
					}
					continue
				}
				chosen := report.Chosen()
				if chosen == nil || !chosen.MeetsSLO {
					t.Errorf("%s/%s seed %d: no SLO-restoring fix set", app.Name, target, seed)
					continue
				}
				found := false
				for _, iv := range chosen.Interventions {
					if iv.Kind == KindRestore && iv.Target == target {
						found = true
					}
				}
				if !found {
					t.Errorf("%s/%s seed %d: true restoration missing from top set %v",
						app.Name, target, seed, chosen.Interventions)
				}
			}
		}
	}
}

func TestMetamorphicIrrelevantInterventionNeverImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic sweep skipped in -short mode")
	}
	// Restoring a service that carries no fault is a no-op by construction,
	// so the padded replay must be *bit-identical* — equal score, and the
	// strictly worse rank that size-ascending ordering implies.
	for _, app := range propertyApps(t) {
		target := app.Targets[0]
		sc := Scenario{
			App:    app.Name,
			Build:  app.Build,
			Seed:   3,
			Faults: []chaos.TargetFault{{Target: target, Fault: chaos.Unavailable()}},
			Warmup: QuickWarmup,
			Window: QuickWindow,
		}
		healthy, err := ReplayHealthy(sc)
		if err != nil {
			t.Fatal(err)
		}
		fix := []Intervention{{Kind: KindRestore, Target: target}}
		base, err := Replay(sc, fix)
		if err != nil {
			t.Fatal(err)
		}
		baseScore := Score(healthy, base)
		slo := DeriveSLO(healthy)
		for _, other := range app.Targets[1:] {
			padded, err := Replay(sc, append(append([]Intervention(nil), fix...),
				Intervention{Kind: KindRestore, Target: other}))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, padded) {
				t.Fatalf("%s: padding with restore %s changed the replay:\nbase   %+v\npadded %+v",
					app.Name, other, base, padded)
			}
			if got := Score(healthy, padded); got != baseScore {
				t.Fatalf("%s: padded score %v != base score %v", app.Name, got, baseScore)
			}
			// At equal score, the smaller set must rank strictly better.
			small := FixSet{Interventions: fix, Metrics: base, Score: baseScore, MeetsSLO: slo.Met(base)}
			big := FixSet{
				Interventions: canonical(append(append([]Intervention(nil), fix...),
					Intervention{Kind: KindRestore, Target: other})),
				Metrics:  padded,
				Score:    Score(healthy, padded),
				MeetsSLO: slo.Met(padded),
			}
			if !lessFixSet(small, big) || lessFixSet(big, small) {
				t.Fatalf("%s: padded set does not rank strictly below the minimal set", app.Name)
			}
		}
	}
}
