package repair

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/chaos"
	"causalfl/internal/sim"
)

// benchScenario is the canonical test scenario: CausalBench with the paper's
// fault on service B, compact quick-mode windows.
func benchScenario(seed int64) Scenario {
	return Scenario{
		App:    "causalbench",
		Build:  causalbench.Build,
		Seed:   seed,
		Faults: []chaos.TargetFault{{Target: "B", Fault: chaos.Unavailable()}},
		Warmup: QuickWarmup,
		Window: QuickWindow,
	}
}

func TestInterventionValidateAndKey(t *testing.T) {
	cases := []struct {
		iv Intervention
		ok bool
	}{
		{Intervention{Kind: KindRestore, Target: "B"}, true},
		{Intervention{Kind: KindScale, Target: "B", Factor: 4}, true},
		{Intervention{Kind: KindShed, Target: "path_be"}, true},
		{Intervention{Kind: KindEvacuate, Target: "n1"}, true},
		{Intervention{Kind: KindRestore, Target: ""}, false},
		{Intervention{Kind: KindRestore, Target: "B", Factor: 2}, false},
		{Intervention{Kind: KindScale, Target: "B"}, false},
		{Intervention{Kind: KindScale, Target: "B", Factor: 1}, false},
		{Intervention{Kind: Kind("teleport"), Target: "B"}, false},
	}
	for _, c := range cases {
		if err := c.iv.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.iv, err, c.ok)
		}
	}
	a := Intervention{Kind: KindScale, Target: "B", Factor: 4}
	if a.Key() != "scale-replicas:B:x4" {
		t.Errorf("Key() = %q", a.Key())
	}
	// Set identity is order-independent.
	s1 := setKey([]Intervention{{Kind: KindRestore, Target: "B"}, {Kind: KindShed, Target: "f"}})
	s2 := setKey([]Intervention{{Kind: KindShed, Target: "f"}, {Kind: KindRestore, Target: "B"}})
	if s1 != s2 {
		t.Errorf("setKey order-dependent: %q vs %q", s1, s2)
	}
}

func TestRestoreTrueFaultIsExactlyHealthy(t *testing.T) {
	sc := benchScenario(11)
	healthy, err := ReplayHealthy(sc)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Replay(sc, []Intervention{{Kind: KindRestore, Target: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	// Fault injection and restoration are flag flips that consume no
	// randomness, so the restored replay is bit-identical to healthy —
	// the property the exact score of 1 rests on.
	if !reflect.DeepEqual(healthy, restored) {
		t.Fatalf("restored replay differs from healthy:\nhealthy  %+v\nrestored %+v", healthy, restored)
	}
	if got := Score(healthy, restored); got != 1 {
		t.Fatalf("Score(healthy, restored) = %v, want exactly 1", got)
	}
	control, err := Replay(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if DeriveSLO(healthy).Met(control) {
		t.Fatal("unrepaired control unexpectedly meets the SLO")
	}
	if Score(healthy, control) >= 1 {
		t.Fatalf("control score %v not below 1", Score(healthy, control))
	}
}

func TestShedCannotGameTheSLO(t *testing.T) {
	// Shedding the broken flow restores availability by not serving, but
	// the throughput floor keeps the predicate honest.
	sc := benchScenario(12)
	healthy, err := ReplayHealthy(sc)
	if err != nil {
		t.Fatal(err)
	}
	slo := DeriveSLO(healthy)
	for _, flow := range []string{"path_bce", "path_be"} {
		m, err := Replay(sc, []Intervention{{Kind: KindShed, Target: flow}})
		if err != nil {
			t.Fatal(err)
		}
		if slo.Met(m) {
			t.Errorf("shed %s meets the SLO (throughput %v vs floor %v)", flow, m.Throughput, slo.MinThroughput)
		}
		if s := Score(healthy, m); s >= 1 {
			t.Errorf("shed %s scores %v, want < 1", flow, s)
		}
	}
}

func TestSearchFindsTrueFix(t *testing.T) {
	sc := benchScenario(13)
	report, err := Search(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chosen := report.Chosen()
	if chosen == nil {
		t.Fatal("search returned no fix sets")
	}
	if !chosen.MeetsSLO {
		t.Fatalf("top-ranked set %v does not meet the SLO", chosen.Interventions)
	}
	if len(chosen.Interventions) != 1 || chosen.Interventions[0].Key() != "restore-service:B" {
		t.Fatalf("top-ranked set = %v, want [restore B]", chosen.Interventions)
	}
	if chosen.Score != 1 {
		t.Fatalf("true fix score %v, want exactly 1", chosen.Score)
	}
	// The candidate table leads with the true fix too.
	if len(report.Candidates) == 0 || report.Candidates[0].Intervention.Key() != "restore-service:B" {
		t.Fatalf("candidate ranking does not lead with restore B: %+v", report.Candidates[:1])
	}
	if report.Replays < len(report.Candidates)+2 {
		t.Errorf("replay count %d below candidates+references", report.Replays)
	}
}

func TestSearchNothingToRepair(t *testing.T) {
	sc := benchScenario(14)
	sc.Faults = nil
	report, err := Search(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.ControlMeetsSLO {
		t.Fatal("fault-free control violates the SLO")
	}
	if len(report.Sets) != 0 || len(report.Candidates) != 0 {
		t.Fatalf("no-repair report still carries sets/candidates: %d/%d", len(report.Sets), len(report.Candidates))
	}
	if report.Replays != 2 {
		t.Fatalf("no-repair search ran %d replays, want 2", report.Replays)
	}
	if !strings.Contains(report.String(), "no repair needed") {
		t.Error("text report does not say no repair is needed")
	}
}

// pressureApp is a one-service app whose Perturb places the service on a
// 1-core node with heavy background load — environmental sickness no chaos
// ledger records, curable only by evacuation.
func pressureApp(eng *sim.Engine) (*apps.App, error) {
	cluster := sim.NewCluster(eng)
	cluster.MustAddService(sim.ServiceConfig{
		Name:     "api",
		Capacity: 16,
		Endpoints: []sim.Endpoint{{Name: "get", Steps: []sim.Step{
			sim.Compute{Mean: 10 * time.Millisecond},
		}}},
	})
	if err := cluster.AddNode(sim.NodeConfig{Name: "n1", Cores: 1}); err != nil {
		return nil, err
	}
	app := &apps.App{
		Name:         "pressure",
		Cluster:      cluster,
		Flows:        []apps.Flow{{Name: "get", Entry: "api", Endpoint: "get", Weight: 1}},
		FaultTargets: []string{"api"},
	}
	return app, app.Validate()
}

func TestSearchEvacuatesSickNode(t *testing.T) {
	sc := Scenario{
		App:   "pressure",
		Build: pressureApp,
		Seed:  15,
		Perturb: func(app *apps.App) error {
			if err := app.Cluster.Place("api", "n1"); err != nil {
				return err
			}
			return app.Cluster.SetNodeBackgroundLoad("n1", 8)
		},
		Warmup: QuickWarmup,
		Window: QuickWindow,
	}
	report, err := Search(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.ControlMeetsSLO {
		t.Fatal("node pressure did not violate the SLO")
	}
	chosen := report.Chosen()
	if chosen == nil || !chosen.MeetsSLO {
		t.Fatalf("no SLO-restoring set found: %+v", chosen)
	}
	if len(chosen.Interventions) != 1 || chosen.Interventions[0].Key() != "evacuate-node:n1" {
		t.Fatalf("top-ranked set = %v, want [evacuate node n1]", chosen.Interventions)
	}
}

func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	sc := benchScenario(16)
	var reports []*Report
	var texts []string
	for _, workers := range []int{1, 8} {
		report, err := Search(context.Background(), sc, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, report)
		texts = append(texts, report.String())
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatal("reports differ between workers=1 and workers=8")
	}
	if texts[0] != texts[1] {
		t.Fatal("rendered reports differ between workers=1 and workers=8")
	}
	// And across repeated runs at the same worker count.
	again, err := Search(context.Background(), sc, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reports[1], again) {
		t.Fatal("repeated search at fixed seed differs")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	sc := benchScenario(17)
	report, err := Search(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report, back) {
		t.Fatal("report JSON round trip not identical")
	}
}

func TestReadReportRejectsHostileInput(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"not-json":      "{(",
		"wrong-kind":    `{"kind":"causalfl-vet","version":1,"report":{"app":"x","window":1}}`,
		"wrong-version": `{"kind":"causalfl-repair-report","version":99,"report":{"app":"x","window":1}}`,
		"no-report":     `{"kind":"causalfl-repair-report","version":1}`,
		"no-app":        `{"kind":"causalfl-repair-report","version":1,"report":{"window":1}}`,
		"bad-window":    `{"kind":"causalfl-repair-report","version":1,"report":{"app":"x","window":-5}}`,
		"unknown-field": `{"kind":"causalfl-repair-report","version":1,"report":{"app":"x","window":1,"wat":3}}`,
		"bad-avail": `{"kind":"causalfl-repair-report","version":1,"report":{"app":"x","window":1,` +
			`"healthy":{"availability":7}}}`,
		"empty-set": `{"kind":"causalfl-repair-report","version":1,"report":{"app":"x","window":1,` +
			`"sets":[{"interventions":[]}]}}`,
		"dup-in-set": `{"kind":"causalfl-repair-report","version":1,"report":{"app":"x","window":1,` +
			`"sets":[{"interventions":[{"kind":"restore-service","target":"B"},{"kind":"restore-service","target":"B"}]}]}}`,
	}
	for name, input := range cases {
		if _, err := ReadReport(strings.NewReader(input)); err == nil {
			t.Errorf("%s: hostile input accepted", name)
		}
	}
}
