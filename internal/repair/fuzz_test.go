package repair

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// seedReport builds a small hand-rolled report for the fuzz corpus.
func seedReport() *Report {
	return &Report{
		App:    "causalbench",
		Seed:   42,
		Warmup: 10 * time.Second,
		Window: 40 * time.Second,
		Faults: []FaultSpec{{Target: "B", Fault: "http-service-unavailable"}},
		Healthy: Metrics{
			Issued: 2035, Succeeded: 2034,
			Availability: 1, MeanLatency: 12 * time.Millisecond, Throughput: 50.85,
		},
		Control: Metrics{
			Issued: 1998, Succeeded: 1019, Failed: 979,
			Availability: 0.51, MeanLatency: 9 * time.Millisecond, Throughput: 25.4,
		},
		SLO: SLO{MinAvailability: 0.98, MaxMeanLatency: 20 * time.Millisecond, MinThroughput: 45},
		Candidates: []Candidate{{
			Intervention: Intervention{Kind: KindRestore, Target: "B"},
			Metrics:      Metrics{Issued: 2035, Succeeded: 2034, Availability: 1, Throughput: 50.85},
			Score:        1, MeetsSLO: true,
			Delta: Delta{Availability: 0.49, MeanLatency: 3 * time.Millisecond, Throughput: 25.45},
		}},
		Sets: []FixSet{
			{
				Interventions: []Intervention{{Kind: KindRestore, Target: "B"}},
				Metrics:       Metrics{Issued: 2035, Succeeded: 2034, Availability: 1, Throughput: 50.85},
				Score:         1, MeetsSLO: true,
			},
			{
				Interventions: []Intervention{
					{Kind: KindScale, Target: "B", Factor: 4},
					{Kind: KindShed, Target: "path_be"},
				},
				Metrics: Metrics{Issued: 1500, Succeeded: 1400, Failed: 100, Availability: 0.93, Throughput: 35},
				Score:   0.8,
			},
		},
		Replays: 16,
	}
}

// FuzzReadReport feeds the JSON codec hostile input: whatever happens, it
// must never panic, and any input it accepts must survive a write/read round
// trip unchanged.
func FuzzReadReport(f *testing.F) {
	var corpus bytes.Buffer
	if err := seedReport().WriteJSON(&corpus); err != nil {
		f.Fatal(err)
	}
	f.Add(corpus.Bytes())
	f.Add([]byte(`{"kind":"causalfl-repair-report","version":1,"report":{"app":"x","window":1}}`))
	f.Add([]byte(`{"kind":"causalfl-repair-report","version":1,"report":{"app":"x","window":1,` +
		`"sets":[{"interventions":[{"kind":"restore-service","target":"B"}],"score":2}]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		report, err := ReadReport(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := report.WriteJSON(&out); err != nil {
			t.Fatalf("accepted report fails to re-encode: %v", err)
		}
		back, err := ReadReport(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded report rejected: %v", err)
		}
		if !reflect.DeepEqual(report, back) {
			t.Fatal("report changed across a write/read round trip")
		}
	})
}
