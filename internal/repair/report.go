package repair

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// FaultSpec describes one injected fault of the replayed scenario.
type FaultSpec struct {
	Target string `json:"target"`
	Fault  string `json:"fault"`
}

// Candidate is one singleton intervention's counterfactual evaluation.
type Candidate struct {
	Intervention Intervention `json:"intervention"`
	Metrics      Metrics      `json:"metrics"`
	Score        float64      `json:"score"`
	MeetsSLO     bool         `json:"meets_slo"`
	// Delta is the change against the unrepaired control window.
	Delta Delta `json:"delta"`
}

// FixSet is one evaluated intervention set.
type FixSet struct {
	Interventions []Intervention `json:"interventions"`
	Metrics       Metrics        `json:"metrics"`
	Score         float64        `json:"score"`
	MeetsSLO      bool           `json:"meets_slo"`
}

// Report is the full outcome of a fix-set search. Sets is ranked; Sets[0],
// when present, is the top-ranked minimal fix set.
type Report struct {
	App             string        `json:"app"`
	Seed            int64         `json:"seed"`
	Warmup          time.Duration `json:"warmup"`
	Window          time.Duration `json:"window"`
	Faults          []FaultSpec   `json:"faults"`
	Healthy         Metrics       `json:"healthy"`
	Control         Metrics       `json:"control"`
	SLO             SLO           `json:"slo"`
	ControlMeetsSLO bool          `json:"control_meets_slo"`
	Candidates      []Candidate   `json:"candidates,omitempty"`
	Sets            []FixSet      `json:"sets,omitempty"`
	// Replays counts the counterfactual replays the search executed.
	Replays int `json:"replays"`
}

// Chosen returns the top-ranked fix set, or nil when the search found
// nothing to repair (control met the SLO) or evaluated no sets.
func (r *Report) Chosen() *FixSet {
	if len(r.Sets) == 0 {
		return nil
	}
	return &r.Sets[0]
}

// String renders the report for terminals.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Counterfactual repair: %s (seed %d, warmup %v, window %v)\n", r.App, r.Seed, r.Warmup, r.Window)
	if len(r.Faults) == 0 {
		fmt.Fprintf(&b, "faults: none declared\n")
	} else {
		parts := make([]string, len(r.Faults))
		for i, f := range r.Faults {
			parts[i] = f.Target + ": " + f.Fault
		}
		fmt.Fprintf(&b, "faults: %s\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "\n%-9s %-7s %-9s %-10s %s\n", "window", "avail", "latency", "throughput", "slo")
	fmt.Fprintf(&b, "%-9s %-7.3f %-9s %-10.2f %s\n", "healthy",
		r.Healthy.Availability, fmtLatency(r.Healthy.MeanLatency), r.Healthy.Throughput, "reference")
	fmt.Fprintf(&b, "%-9s %-7.3f %-9s %-10.2f %s\n", "faulty",
		r.Control.Availability, fmtLatency(r.Control.MeanLatency), r.Control.Throughput, meets(r.ControlMeetsSLO))
	fmt.Fprintf(&b, "slo: avail ≥ %.3f, latency ≤ %s, throughput ≥ %.2f/s\n",
		r.SLO.MinAvailability, fmtLatency(r.SLO.MaxMeanLatency), r.SLO.MinThroughput)

	if r.ControlMeetsSLO {
		fmt.Fprintf(&b, "\nThe faulty window still meets the SLO — no repair needed (%d replays).\n", r.Replays)
		return b.String()
	}

	if chosen := r.Chosen(); chosen != nil {
		fmt.Fprintf(&b, "\nMinimal fix set (%s):\n", meets(chosen.MeetsSLO))
		for _, iv := range chosen.Interventions {
			fmt.Fprintf(&b, "  - %s\n", iv)
		}
		fmt.Fprintf(&b, "  replayed: avail %.3f, latency %s, throughput %.2f/s, score %.4f\n",
			chosen.Metrics.Availability, fmtLatency(chosen.Metrics.MeanLatency),
			chosen.Metrics.Throughput, chosen.Score)
	}

	if len(r.Candidates) > 0 {
		fmt.Fprintf(&b, "\n%-24s %-7s %-5s %-8s %-9s %s\n", "intervention", "score", "slo", "Δavail", "Δlatency", "Δthroughput")
		for _, c := range r.Candidates {
			fmt.Fprintf(&b, "%-24s %-7.4f %-5s %+-8.3f %-9s %+.2f/s\n",
				c.Intervention.String(), c.Score, meets(c.MeetsSLO),
				c.Delta.Availability, fmtSignedLatency(c.Delta.MeanLatency), c.Delta.Throughput)
		}
	}

	if len(r.Sets) > 1 {
		fmt.Fprintf(&b, "\nRanked fix sets:\n")
		for i, fs := range r.Sets {
			names := make([]string, len(fs.Interventions))
			for j, iv := range fs.Interventions {
				names[j] = iv.String()
			}
			fmt.Fprintf(&b, "%3d. [%s] score %.4f (%s)\n", i+1, strings.Join(names, " + "), fs.Score, meets(fs.MeetsSLO))
		}
	}
	fmt.Fprintf(&b, "\n%d counterfactual replays\n", r.Replays)
	return b.String()
}

// meets renders an SLO verdict.
func meets(ok bool) string {
	if ok {
		return "meets-slo"
	}
	return "violates"
}

// fmtLatency renders a duration rounded to 0.1ms for stable tables.
func fmtLatency(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// fmtSignedLatency renders a latency delta with an explicit sign.
func fmtSignedLatency(d time.Duration) string {
	return fmt.Sprintf("%+.1fms", float64(d)/float64(time.Millisecond))
}

// Envelope versioning of the JSON form.
const (
	// ReportKind tags the JSON envelope.
	ReportKind = "causalfl-repair-report"
	// ReportVersion is bumped on breaking schema changes; ReadReport
	// rejects versions it does not understand.
	ReportVersion = 1
)

// envelope is the on-disk JSON form.
type envelope struct {
	Kind    string  `json:"kind"`
	Version int     `json:"version"`
	Report  *Report `json:"report"`
}

// WriteJSON writes the report as a versioned, self-describing JSON envelope.
func (r *Report) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(envelope{Kind: ReportKind, Version: ReportVersion, Report: r})
}

// ReadReport parses and validates a JSON envelope produced by WriteJSON.
// Hostile input yields an error, never a panic.
func ReadReport(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("repair: parse report: %w", err)
	}
	if env.Kind != ReportKind {
		return nil, fmt.Errorf("repair: not a repair report (kind %q)", env.Kind)
	}
	if env.Version != ReportVersion {
		return nil, fmt.Errorf("repair: unsupported report version %d (want %d)", env.Version, ReportVersion)
	}
	if env.Report == nil {
		return nil, fmt.Errorf("repair: envelope has no report")
	}
	if err := env.Report.Validate(); err != nil {
		return nil, err
	}
	return env.Report, nil
}

// Validate checks the report's internal consistency — the guard that keeps
// hostile or truncated JSON from flowing further.
func (r *Report) Validate() error {
	if r.App == "" {
		return fmt.Errorf("repair: report has no app")
	}
	if r.Warmup < 0 || r.Window <= 0 {
		return fmt.Errorf("repair: report has bad durations warmup=%v window=%v", r.Warmup, r.Window)
	}
	if r.Replays < 0 {
		return fmt.Errorf("repair: negative replay count %d", r.Replays)
	}
	for _, f := range r.Faults {
		if f.Target == "" || f.Fault == "" {
			return fmt.Errorf("repair: report fault entry %+v incomplete", f)
		}
	}
	for _, m := range []Metrics{r.Healthy, r.Control} {
		if err := m.validate(); err != nil {
			return err
		}
	}
	if err := r.SLO.validate(); err != nil {
		return err
	}
	for _, c := range r.Candidates {
		if err := c.Intervention.Validate(); err != nil {
			return err
		}
		if err := c.Metrics.validate(); err != nil {
			return err
		}
		if !finite01ish(c.Score) {
			return fmt.Errorf("repair: candidate %s has bad score %v", c.Intervention.Key(), c.Score)
		}
	}
	for _, fs := range r.Sets {
		if len(fs.Interventions) == 0 {
			return fmt.Errorf("repair: report contains an empty fix set")
		}
		seen := make(map[string]bool, len(fs.Interventions))
		for _, iv := range fs.Interventions {
			if err := iv.Validate(); err != nil {
				return err
			}
			if key := iv.Key(); seen[key] {
				return fmt.Errorf("repair: fix set repeats intervention %s", key)
			} else {
				seen[key] = true
			}
		}
		if err := fs.Metrics.validate(); err != nil {
			return err
		}
		if !finite01ish(fs.Score) {
			return fmt.Errorf("repair: fix set %s has bad score %v", setKey(fs.Interventions), fs.Score)
		}
	}
	return nil
}

// validate checks one metrics block.
func (m Metrics) validate() error {
	if m.Succeeded+m.Failed > m.Issued {
		return fmt.Errorf("repair: metrics complete more requests than issued (%d+%d > %d)",
			m.Succeeded, m.Failed, m.Issued)
	}
	if m.Availability < 0 || m.Availability > 1 || math.IsNaN(m.Availability) {
		return fmt.Errorf("repair: availability %v outside [0,1]", m.Availability)
	}
	if m.MeanLatency < 0 {
		return fmt.Errorf("repair: negative mean latency %v", m.MeanLatency)
	}
	if m.Throughput < 0 || math.IsNaN(m.Throughput) || math.IsInf(m.Throughput, 0) {
		return fmt.Errorf("repair: bad throughput %v", m.Throughput)
	}
	return nil
}

// validate checks the SLO thresholds.
func (s SLO) validate() error {
	if math.IsNaN(s.MinAvailability) || s.MinAvailability > 1 {
		return fmt.Errorf("repair: bad SLO availability floor %v", s.MinAvailability)
	}
	if s.MaxMeanLatency < 0 {
		return fmt.Errorf("repair: negative SLO latency ceiling %v", s.MaxMeanLatency)
	}
	if math.IsNaN(s.MinThroughput) || math.IsInf(s.MinThroughput, 0) || s.MinThroughput < 0 {
		return fmt.Errorf("repair: bad SLO throughput floor %v", s.MinThroughput)
	}
	return nil
}

// finite01ish accepts scores in [0, 1] (the constructed range) with a guard
// against NaN/Inf smuggled in via JSON.
func finite01ish(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 0 && x <= 1
}
