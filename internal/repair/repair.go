// Package repair turns a localization verdict into actionable remediation:
// it replays the faulty window in the deterministic simulator under candidate
// interventions — restore a service's fault, scale replicas, shed a flow,
// evacuate a node — and searches for the minimal intervention set whose
// counterfactual replay restores the SLO, scored against a healthy replay of
// the same window.
//
// This is the ROADMAP's counterfactual-repair item: the counterfactual-replay
// technique of TraceForge (SNIPPETS.md Snippet 1) combined with the bounded
// minimal-fix-set search of model-forensics CCA (Snippet 3), applied to the
// simulator the project already owns. The paper stops at naming the faulty
// service; a ranked, replay-verified fix set answers the operator's actual
// question — *what do I change to make the pager stop?*
//
// Everything here is deterministic: replays are pure functions of the
// scenario (builder + seed + load + faults) and the intervention set, the
// search fans candidate replays out through internal/parallel with ordered
// fan-in, and every selection rule breaks ties on a total order. Reports are
// byte-identical at any worker count.
package repair

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/chaos"
	"causalfl/internal/load"
)

// Kind names an intervention type. Kinds are strings so reports and plans
// stay self-describing in JSON.
type Kind string

// The four intervention kinds of the ROADMAP item.
const (
	// KindRestore undoes the scenario fault on a service (the inverse of
	// the chaos injection). On a service that carries no fault it is a
	// literal no-op — which is what makes it a safe candidate everywhere.
	KindRestore Kind = "restore-service"
	// KindScale multiplies a service's worker capacity by Factor, the
	// horizontal-scaling remediation.
	KindScale Kind = "scale-replicas"
	// KindShed removes a user flow from the generated load for the whole
	// replay — deliberate load shedding of a broken feature.
	KindShed Kind = "shed-flow"
	// KindEvacuate unassigns every service from a node, rerouting around
	// sick infrastructure.
	KindEvacuate Kind = "evacuate-node"
)

// Intervention is one atomic remediation action.
type Intervention struct {
	Kind   Kind   `json:"kind"`
	Target string `json:"target"`
	// Factor is the capacity multiplier of KindScale (ignored otherwise).
	Factor int `json:"factor,omitempty"`
}

// Validate checks the intervention is well-formed.
func (iv Intervention) Validate() error {
	if iv.Target == "" {
		return fmt.Errorf("repair: %s intervention has no target", iv.Kind)
	}
	switch iv.Kind {
	case KindRestore, KindShed, KindEvacuate:
		if iv.Factor != 0 {
			return fmt.Errorf("repair: %s intervention must not set a factor", iv.Kind)
		}
		return nil
	case KindScale:
		if iv.Factor < 2 {
			return fmt.Errorf("repair: scale intervention needs a factor ≥ 2, got %d", iv.Factor)
		}
		return nil
	default:
		return fmt.Errorf("repair: unknown intervention kind %q", iv.Kind)
	}
}

// Key is the canonical identity of the intervention, used for memoization
// and deterministic tie-breaking.
func (iv Intervention) Key() string {
	if iv.Kind == KindScale {
		return fmt.Sprintf("%s:%s:x%d", iv.Kind, iv.Target, iv.Factor)
	}
	return string(iv.Kind) + ":" + iv.Target
}

// String renders the intervention for humans.
func (iv Intervention) String() string {
	switch iv.Kind {
	case KindRestore:
		return "restore " + iv.Target
	case KindScale:
		return fmt.Sprintf("scale %s ×%d", iv.Target, iv.Factor)
	case KindShed:
		return "shed flow " + iv.Target
	case KindEvacuate:
		return "evacuate node " + iv.Target
	default:
		return string(iv.Kind) + " " + iv.Target
	}
}

// setKey is the canonical identity of an intervention set: sorted keys
// joined. The empty set has the empty key.
func setKey(ivs []Intervention) string {
	keys := make([]string, len(ivs))
	for i, iv := range ivs {
		keys[i] = iv.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "+")
}

// Scenario pins one faulty window for counterfactual replay: how to build
// the application, how to load it, and what went wrong. Replays derived from
// the same scenario are pure functions of the intervention set.
type Scenario struct {
	// App names the application (display only).
	App string
	// Build constructs a fresh application instance per replay.
	Build apps.Builder
	// Seed drives all replay randomness.
	Seed int64
	// Load configures the generator (zero values take load defaults).
	Load load.Config
	// Faults are the service faults active from window start on.
	Faults []chaos.TargetFault
	// Perturb, when set, applies environmental sickness (node pressure,
	// placement) at window start — trouble no chaos ledger records.
	Perturb func(app *apps.App) error
	// Warmup is discarded before the window (default 30s virtual time).
	Warmup time.Duration
	// Window is the measured faulty window (default 120s virtual time).
	Window time.Duration
}

// withDefaults fills zero durations and validates the scenario.
func (sc Scenario) withDefaults() (Scenario, error) {
	if sc.Build == nil {
		return sc, fmt.Errorf("repair: scenario needs a Build function")
	}
	if sc.Warmup == 0 {
		sc.Warmup = 30 * time.Second
	}
	if sc.Window == 0 {
		sc.Window = 120 * time.Second
	}
	if sc.Warmup < 0 || sc.Window <= 0 {
		return sc, fmt.Errorf("repair: bad scenario durations warmup=%v window=%v", sc.Warmup, sc.Window)
	}
	for _, tf := range sc.Faults {
		if tf.Target == "" {
			return sc, fmt.Errorf("repair: scenario fault with empty target")
		}
		if err := tf.Fault.Validate(); err != nil {
			return sc, err
		}
	}
	return sc, nil
}

// Metrics is the client-side view of one replayed window — the quantities an
// SLO is written against.
type Metrics struct {
	Issued       uint64        `json:"issued"`
	Succeeded    uint64        `json:"succeeded"`
	Failed       uint64        `json:"failed"`
	Availability float64       `json:"availability"`
	MeanLatency  time.Duration `json:"mean_latency"`
	// Throughput is succeeded requests per second of window time. Counting
	// only successes keeps load shedding honest: a shed flow's requests
	// never complete, so shedding always costs throughput.
	Throughput float64 `json:"throughput"`
}

// SLO holds the thresholds a replayed window must meet, derived from the
// healthy replay of the same scenario.
type SLO struct {
	// MinAvailability is the availability floor.
	MinAvailability float64 `json:"min_availability"`
	// MaxMeanLatency is the mean-latency ceiling.
	MaxMeanLatency time.Duration `json:"max_mean_latency"`
	// MinThroughput is the succeeded-per-second floor.
	MinThroughput float64 `json:"min_throughput"`
}

// DeriveSLO derives thresholds from the healthy window: availability within
// two points, mean latency within 25% plus a 5ms absolute allowance (so
// microsecond-scale baselines aren't impossibly tight), throughput within
// 10%. The throughput floor is what prevents "shed everything" from gaming
// the predicate.
func DeriveSLO(healthy Metrics) SLO {
	return SLO{
		MinAvailability: healthy.Availability - 0.02,
		MaxMeanLatency:  healthy.MeanLatency + healthy.MeanLatency/4 + 5*time.Millisecond,
		MinThroughput:   healthy.Throughput * 0.9,
	}
}

// Met reports whether the window meets the SLO.
func (s SLO) Met(m Metrics) bool {
	return m.Availability >= s.MinAvailability &&
		m.MeanLatency <= s.MaxMeanLatency &&
		m.Throughput >= s.MinThroughput
}

// clamp01 clamps x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Score rates a replayed window against the healthy one on [0, 1]: one minus
// the mean of three clamped deficits (availability drop, relative latency
// overshoot, relative throughput loss). A replay bit-identical to the healthy
// window — which is exactly what restoring the true fault produces — scores
// 1 precisely; any residual degradation scores strictly below.
func Score(healthy, m Metrics) float64 {
	availDef := clamp01(healthy.Availability - m.Availability)
	latDef := 0.0
	if healthy.MeanLatency > 0 && m.MeanLatency > healthy.MeanLatency {
		latDef = clamp01(float64(m.MeanLatency-healthy.MeanLatency) / float64(healthy.MeanLatency))
	}
	tpDef := 0.0
	if healthy.Throughput > 0 {
		tpDef = clamp01((healthy.Throughput - m.Throughput) / healthy.Throughput)
	}
	return 1 - (availDef+latDef+tpDef)/3
}

// Delta is the per-intervention counterfactual difference against the
// unrepaired control window: what this action alone buys.
type Delta struct {
	Availability float64       `json:"availability"`
	MeanLatency  time.Duration `json:"mean_latency"`
	Throughput   float64       `json:"throughput"`
}

// deltaVs computes m − control on the three SLO dimensions.
func deltaVs(control, m Metrics) Delta {
	return Delta{
		Availability: m.Availability - control.Availability,
		MeanLatency:  m.MeanLatency - control.MeanLatency,
		Throughput:   m.Throughput - control.Throughput,
	}
}
