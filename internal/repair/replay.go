package repair

import (
	"fmt"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/chaos"
	"causalfl/internal/load"
	"causalfl/internal/sim"
)

// This file is the counterfactual replay harness. A replay rebuilds the
// application from scratch on a fresh engine with the scenario seed, warms
// it up healthy, then — at window start, within a single virtual instant —
// injects the scenario faults, applies the environmental perturbation, and
// applies the candidate interventions. The measured window is the stats
// delta across [warmup, warmup+window).
//
// Two properties fall out of "fault injection and restoration are pure flag
// flips that consume no randomness":
//
//   - Restoring the true fault yields a replay bit-identical to the healthy
//     replay, so its score is exactly 1.
//   - Restoring a service that carries no scenario fault is a literal no-op,
//     so padding a fix set with irrelevant restores cannot change — let
//     alone improve — its score.
//
// The shed-flow intervention is the one exception to window-start
// application: shedding reconfigures the load generator, so it holds for the
// whole replay (warmup included). The measured window delta is still
// directly comparable — shed replays simply never issue the shed flow.

// Replay runs the scenario once under the given interventions and returns
// the window metrics. An empty intervention set is the unrepaired control
// window; see ReplayHealthy for the fault-free reference.
func Replay(sc Scenario, interventions []Intervention) (Metrics, error) {
	return replay(sc, interventions, false)
}

// ReplayHealthy runs the scenario's window with no faults, no perturbation
// and no interventions — the reference the SLO derives from.
func ReplayHealthy(sc Scenario) (Metrics, error) {
	return replay(sc, nil, true)
}

func replay(sc Scenario, interventions []Intervention, healthy bool) (Metrics, error) {
	sc, err := sc.withDefaults()
	if err != nil {
		return Metrics{}, err
	}
	for _, iv := range interventions {
		if err := iv.Validate(); err != nil {
			return Metrics{}, err
		}
	}
	eng := sim.NewEngine(sc.Seed)
	app, err := sc.Build(eng)
	if err != nil {
		return Metrics{}, fmt.Errorf("repair: replay build: %w", err)
	}

	// Shed flows reconfigure the generator itself.
	shed := make(map[string]bool)
	for _, iv := range interventions {
		if iv.Kind == KindShed {
			shed[iv.Target] = true
		}
	}
	flows := app.Flows[:0:0]
	for _, f := range app.Flows {
		if !shed[f.Name] {
			flows = append(flows, f)
		}
	}
	if len(shed) > 0 && len(flows) == len(app.Flows) {
		return Metrics{}, fmt.Errorf("repair: shed flow not found in app %s", app.Name)
	}
	app.Flows = flows

	var gen *load.Generator
	if len(app.Flows) > 0 {
		gen, err = load.NewGenerator(app, sc.Load)
		if err != nil {
			return Metrics{}, fmt.Errorf("repair: replay generator: %w", err)
		}
		if err := gen.Start(); err != nil {
			return Metrics{}, err
		}
	}

	eng.Run(sc.Warmup)
	var pre load.Stats
	if gen != nil {
		pre = gen.Stats()
	}

	if !healthy {
		if err := breakAndIntervene(app, sc, interventions); err != nil {
			return Metrics{}, err
		}
	}

	eng.Run(sc.Warmup + sc.Window)
	var post load.Stats
	if gen != nil {
		post = gen.Stats()
	}
	return windowMetrics(pre, post, sc.Window), nil
}

// breakAndIntervene applies, in one virtual instant at window start: the
// scenario faults, the environmental perturbation, then the interventions.
// Interventions come last so a restore can undo the fault just injected.
func breakAndIntervene(app *apps.App, sc Scenario, interventions []Intervention) error {
	inj, err := chaos.NewInjector(app.Cluster)
	if err != nil {
		return err
	}
	for _, tf := range sc.Faults {
		if err := inj.Inject(tf.Target, tf.Fault); err != nil {
			return fmt.Errorf("repair: replay inject: %w", err)
		}
	}
	if sc.Perturb != nil {
		if err := sc.Perturb(app); err != nil {
			return fmt.Errorf("repair: replay perturb: %w", err)
		}
	}
	for _, iv := range interventions {
		if err := apply(app, sc, iv); err != nil {
			return err
		}
	}
	return nil
}

// apply executes one intervention on the running application.
func apply(app *apps.App, sc Scenario, iv Intervention) error {
	switch iv.Kind {
	case KindRestore:
		svc, ok := app.Cluster.Service(iv.Target)
		if !ok {
			return fmt.Errorf("repair: restore: %w", &sim.UnknownServiceError{Name: iv.Target})
		}
		// Undo exactly the scenario fault on this target, if any. A
		// restore on an unfaulted service is deliberately a no-op.
		for _, tf := range sc.Faults {
			if tf.Target == iv.Target {
				chaos.Undo(svc, tf.Fault)
			}
		}
		return nil
	case KindScale:
		svc, ok := app.Cluster.Service(iv.Target)
		if !ok {
			return fmt.Errorf("repair: scale: %w", &sim.UnknownServiceError{Name: iv.Target})
		}
		svc.SetCapacity(svc.Capacity() * iv.Factor)
		return nil
	case KindEvacuate:
		if _, err := app.Cluster.EvacuateNode(iv.Target); err != nil {
			return fmt.Errorf("repair: evacuate: %w", err)
		}
		return nil
	case KindShed:
		// Already applied at generator construction.
		return nil
	default:
		return fmt.Errorf("repair: unknown intervention kind %q", iv.Kind)
	}
}

// windowMetrics converts a stats delta over the window into Metrics.
func windowMetrics(pre, post load.Stats, window time.Duration) Metrics {
	d := load.Stats{
		Issued:         post.Issued - pre.Issued,
		Succeeded:      post.Succeeded - pre.Succeeded,
		Failed:         post.Failed - pre.Failed,
		SuccessLatency: post.SuccessLatency - pre.SuccessLatency,
	}
	return Metrics{
		Issued:       d.Issued,
		Succeeded:    d.Succeeded,
		Failed:       d.Failed,
		Availability: d.Availability(),
		MeanLatency:  d.MeanLatency(),
		Throughput:   float64(d.Succeeded) / window.Seconds(),
	}
}
