// Package parallel provides the bounded worker pool behind every fan-out in
// the pipeline: the learner's per-target KS matrix, the localizer's
// per-metric anomaly detection, campaign-round sharding in internal/eval, and
// the report generator's section workers.
//
// The design contract, shared by every caller:
//
//   - Bounded: at most `workers` goroutines run fn concurrently; callers pass
//     a configured count or zero for GOMAXPROCS.
//   - Ordered fan-in: results land in an index-addressed slice, so the
//     assembled output is identical to a sequential loop no matter how the
//     scheduler interleaves workers. Determinism is a property of the repo's
//     tier-1 contract (fixed seed => byte-identical output), not an
//     optimization.
//   - Context-cancellable: cancellation stops job dispatch promptly;
//     in-flight jobs finish (they hold no cancellable resources — pure CPU on
//     private data) and the context error is reported unless an earlier job
//     failed first.
//   - Deterministic errors: when several jobs fail, the error of the
//     lowest-indexed failed job is returned — the same error a sequential
//     loop would have hit first.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged. Callers that
// thread a `-workers` flag through pass it here at the point of use.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(ctx, i) for every i in [0, n) across at most workers
// goroutines and returns the results in index order. A zero or negative
// worker count means GOMAXPROCS. See the package comment for the
// cancellation and error contract.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	results := make([]T, n)
	errs := make([]error, n)

	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// Plain loop: no goroutines, no channels — the serial reference
		// the parallel path is tested against.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var err error
			if results[i], err = fn(ctx, i); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	// failed flips (under mu) when any job errors; the dispatcher stops
	// handing out new indices, already-dispatched jobs drain.
	var (
		mu     sync.Mutex
		failed bool
	)
	jobFailed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return failed
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					mu.Lock()
					failed = true
					mu.Unlock()
					continue
				}
				results[i] = res
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		if jobFailed() {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	// Lowest-indexed job error wins; ties with cancellation go to the job
	// error because a sequential loop would have surfaced it first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach is Map without results: it runs fn(ctx, i) for every i in [0, n)
// under the same pool, cancellation and error contract.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
