package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("Map(n=0) = %v, %v", got, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	_, err := Map(context.Background(), workers, 64, func(_ context.Context, i int) (int, error) {
		now := active.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, pool bound is %d", p, workers)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	wantErr := func(i int) error { return fmt.Errorf("job %d failed", i) }
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 20, func(_ context.Context, i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, wantErr(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Errorf("workers=%d: err = %v, want job 7 failed", workers, err)
		}
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(context.Background(), 2, 10_000, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Error("all jobs ran despite an early error; dispatch did not stop")
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	block := make(chan struct{})
	var once sync.Once
	_, err := Map(ctx, 2, 10_000, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		once.Do(func() {
			cancel()
			close(block)
		})
		<-block
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Error("all jobs ran despite cancellation")
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 5, func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 32)
	if err := ForEach(context.Background(), 4, len(out), func(_ context.Context, i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	sentinel := errors.New("bad slot")
	err := ForEach(context.Background(), 4, 8, func(_ context.Context, i int) error {
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("ForEach err = %v", err)
	}
}

// TestMapMatchesSerial is the package-level determinism check: identical
// inputs produce identical outputs at any worker count.
func TestMapMatchesSerial(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (float64, error) {
			v := float64(i)
			for k := 0; k < 50; k++ {
				v = v*1.0000001 + float64(k)
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 16} {
		par := run(workers)
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("workers=%d diverges from serial at %d: %v != %v", workers, i, par[i], serial[i])
			}
		}
	}
}
