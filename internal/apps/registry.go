package apps

import (
	"fmt"

	"causalfl/internal/metrics"
)

// This file holds the introspection hooks the domain linters
// (internal/analysis) consume: a declarative Definition per benchmark
// application and the metric classification its derived metrics rely on.
// Keeping the declarations here — rather than deriving them from a running
// simulation — is what lets `causalfl-vet` validate topology and statistical
// hygiene without executing a campaign.

// MetricClassification declares which observability metrics of an
// application are externally driven (independent) and which are consequences
// of that drive (dependent), plus the independent divisor that
// de-confounds each dependent metric (§V-A's derived-metric recipe).
type MetricClassification struct {
	// Independent lists metrics that are legal divisors.
	Independent []string
	// Dependent lists metrics that need a divisor.
	Dependent []string
	// Divisor maps each dependent metric to the independent metric that
	// normalizes it.
	Divisor map[string]string
}

// Validate checks the classification's internal consistency: the classes are
// disjoint, every dependent metric has a divisor, every divisor is declared
// independent, and every name is a raw metric the pipeline knows.
func (mc MetricClassification) Validate() error {
	known := metrics.Classify()
	indep := make(map[string]bool, len(mc.Independent))
	for _, name := range mc.Independent {
		if _, ok := known[name]; !ok {
			return fmt.Errorf("apps: independent metric %q is not a known raw metric", name)
		}
		if indep[name] {
			return fmt.Errorf("apps: independent metric %q declared twice", name)
		}
		indep[name] = true
	}
	dep := make(map[string]bool, len(mc.Dependent))
	for _, name := range mc.Dependent {
		if _, ok := known[name]; !ok {
			return fmt.Errorf("apps: dependent metric %q is not a known raw metric", name)
		}
		if indep[name] {
			return fmt.Errorf("apps: metric %q declared both independent and dependent", name)
		}
		if dep[name] {
			return fmt.Errorf("apps: dependent metric %q declared twice", name)
		}
		dep[name] = true
	}
	for _, name := range mc.Dependent {
		div, ok := mc.Divisor[name]
		if !ok {
			return fmt.Errorf("apps: dependent metric %q has no independent divisor", name)
		}
		if !indep[div] {
			return fmt.Errorf("apps: divisor %q of %q is not declared independent", div, name)
		}
	}
	for name := range mc.Divisor {
		if !dep[name] {
			return fmt.Errorf("apps: divisor declared for %q, which is not a dependent metric", name)
		}
	}
	return nil
}

// DefaultMetricClassification is the classification shared by the benchmark
// applications: packets/requests received are the external drive, everything
// else is normalized by received packets (the paper's divisor of choice —
// cAdvisor reports it for every container, port or not).
func DefaultMetricClassification() MetricClassification {
	return MetricClassification{
		Independent: []string{metrics.RxPackets.Name, metrics.ReqRate.Name},
		Dependent: []string{
			metrics.MsgRate.Name, metrics.ErrLogRate.Name,
			metrics.CPU.Name, metrics.TxPackets.Name, metrics.Busy.Name,
		},
		Divisor: map[string]string{
			metrics.MsgRate.Name:    metrics.RxPackets.Name,
			metrics.ErrLogRate.Name: metrics.RxPackets.Name,
			metrics.CPU.Name:        metrics.RxPackets.Name,
			metrics.TxPackets.Name:  metrics.RxPackets.Name,
			metrics.Busy.Name:       metrics.RxPackets.Name,
		},
	}
}

// Definition is the static, declarative description of a benchmark
// application: everything the domain linters can verify without running a
// simulation (plus the Builder to instantiate it when a check needs the
// concrete service list).
type Definition struct {
	// Name identifies the application.
	Name string
	// Build instantiates the application on an engine.
	Build Builder
	// NonInjectable maps each service deliberately absent from FaultTargets
	// to the reason (e.g. "background worker with no exposed port"). Every
	// service of the built app must be either a fault target or excused
	// here; the topology linter enforces it.
	NonInjectable map[string]string
	// Metrics classifies the metrics the application is evaluated with.
	Metrics MetricClassification
}

// Validate checks the definition's declarative parts (the parts that need no
// engine): name, builder presence, excuse reasons, metric classification.
func (d Definition) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("apps: definition has no name")
	}
	if d.Build == nil {
		return fmt.Errorf("apps: definition %s has no builder", d.Name)
	}
	for svc, reason := range d.NonInjectable {
		if reason == "" {
			return fmt.Errorf("apps: definition %s excuses %q from fault injection without a reason", d.Name, svc)
		}
	}
	if err := d.Metrics.Validate(); err != nil {
		return fmt.Errorf("apps: definition %s: %w", d.Name, err)
	}
	return nil
}
