package catalog

import (
	"testing"

	"causalfl/internal/sim"
)

// The catalog is the domain linters' ground truth: every entry must carry a
// valid declarative definition and a builder that produces a valid app.
func TestEveryDefinitionBuildsAndValidates(t *testing.T) {
	defs, err := Definitions()
	if err != nil {
		t.Fatalf("Definitions: %v", err)
	}
	if len(defs) < 4 {
		t.Fatalf("catalog has %d entries, expected at least the two benchmarks, the patterns and synth", len(defs))
	}
	seen := map[string]bool{}
	for _, def := range defs {
		if seen[def.Name] {
			t.Errorf("duplicate catalog entry %q", def.Name)
		}
		seen[def.Name] = true
		if err := def.Validate(); err != nil {
			t.Errorf("definition %s: %v", def.Name, err)
			continue
		}
		app, err := def.Build(sim.NewEngine(1))
		if err != nil {
			t.Errorf("build %s: %v", def.Name, err)
			continue
		}
		if err := app.Validate(); err != nil {
			t.Errorf("app %s: %v", def.Name, err)
		}
		if app.Name != def.Name {
			t.Errorf("definition %q builds app named %q", def.Name, app.Name)
		}
	}
	for _, want := range []string{"causalbench", "robotshop"} {
		if !seen[want] {
			t.Errorf("catalog is missing %s", want)
		}
	}
}

// Two builds of the same definition must agree on topology — the catalog
// feeds linters that reason about the static structure, so generation has to
// be deterministic and engine-seed independent.
func TestDefinitionsAreDeterministic(t *testing.T) {
	defsA, err := Definitions()
	if err != nil {
		t.Fatalf("Definitions: %v", err)
	}
	defsB, err := Definitions()
	if err != nil {
		t.Fatalf("Definitions: %v", err)
	}
	if len(defsA) != len(defsB) {
		t.Fatalf("catalog size changed between calls: %d vs %d", len(defsA), len(defsB))
	}
	for i := range defsA {
		appA, err := defsA[i].Build(sim.NewEngine(1))
		if err != nil {
			t.Fatalf("build %s: %v", defsA[i].Name, err)
		}
		appB, err := defsB[i].Build(sim.NewEngine(99))
		if err != nil {
			t.Fatalf("build %s: %v", defsB[i].Name, err)
		}
		if len(appA.Edges) != len(appB.Edges) {
			t.Errorf("%s: edge count differs across engine seeds: %d vs %d", defsA[i].Name, len(appA.Edges), len(appB.Edges))
			continue
		}
		for j := range appA.Edges {
			if appA.Edges[j] != appB.Edges[j] {
				t.Errorf("%s: edge %d differs across engine seeds: %v vs %v", defsA[i].Name, j, appA.Edges[j], appB.Edges[j])
				break
			}
		}
	}
}
