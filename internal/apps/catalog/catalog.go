// Package catalog enumerates every benchmark application the project
// defines. It is the single registry the domain linters (internal/analysis)
// and future tooling walk; adding an application to the repository means
// adding its Definition here, which automatically puts it under
// `causalfl-vet`'s topology and metric-classification checks.
//
// The registry lives in its own package (rather than internal/apps) because
// the app packages import internal/apps for the App/Builder types; a
// registry inside internal/apps would create an import cycle.
package catalog

import (
	"fmt"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/patterns"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/apps/synth"
)

// synthCatalogConfig pins the generated topology the linters verify: the
// mid-size scalability configuration with the project's default seed.
var synthCatalogConfig = synth.Config{Services: 18, Seed: 42}

// Definitions returns the declarative description of every application, in
// stable order: the two paper benchmarks, the three illustration patterns,
// and one representative generated topology.
func Definitions() ([]apps.Definition, error) {
	defs := []apps.Definition{
		causalbench.Definition(),
		robotshop.Definition(),
	}
	defs = append(defs, patterns.Definitions()...)
	synthDef, err := synth.Definition(synthCatalogConfig)
	if err != nil {
		return nil, fmt.Errorf("catalog: synth definition: %w", err)
	}
	defs = append(defs, synthDef)
	return defs, nil
}
