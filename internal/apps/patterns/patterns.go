// Package patterns builds the two small illustration topologies of the
// paper's challenge section.
//
// Fig. 1 — "causal relations depend on observed metrics & code":
//
//	pattern 1 (stateless chain):  A -> B -> C
//	pattern 2 (stateful/omission): H -> D <- F -> G
//
// A fault on B surfaces as error logs on A (response path) but as a request
// drop on C (request path); a fault on D surfaces as error logs on H but as
// an omission of requests to G, mediated by the stateful store D and the
// background worker F.
//
// Fig. 2 — "confounder is intervention dependent": user requests enter A and
// fan out to either the B branch (B -> C -> E or B -> E) or the I branch.
// Under closed-loop load, failing C makes the A queue drain faster, which
// *increases* the rate of requests reaching I — a spurious causal edge C→I
// created purely by the load confounder.
package patterns

import (
	"fmt"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/sim"
)

// Benchmark identifiers.
const (
	Pattern1Name   = "pattern1"
	Pattern2Name   = "pattern2"
	ConfounderName = "confounder"
)

const (
	compute   = 3 * time.Millisecond
	jitter    = 1 * time.Millisecond
	fPoll     = 500 * time.Millisecond
	fItemCost = 1 * time.Millisecond
	// confounderCompute is sized so that node A is the closed-loop
	// bottleneck, making the Fig. 2 queuing effect visible.
	confounderCompute = 20 * time.Millisecond
)

// BuildPattern1 constructs the stateless chain A -> B -> C of Fig. 1. It
// satisfies apps.Builder.
func BuildPattern1(eng *sim.Engine) (*apps.App, error) {
	cluster := sim.NewCluster(eng)
	small := sim.Compute{Mean: compute, Jitter: jitter}
	specs := []sim.ServiceConfig{
		{Name: "C", Endpoints: []sim.Endpoint{{Name: "/", Steps: []sim.Step{small}}}},
		{Name: "B", Endpoints: []sim.Endpoint{{Name: "/", Steps: []sim.Step{small, sim.CallStep{Target: "C", Endpoint: "/"}}}}},
		{Name: "A", Endpoints: []sim.Endpoint{{Name: "/", Steps: []sim.Step{small, sim.CallStep{Target: "B", Endpoint: "/"}}}}},
	}
	for _, cfg := range specs {
		if _, err := cluster.AddService(cfg); err != nil {
			return nil, fmt.Errorf("pattern1: %w", err)
		}
	}
	app := &apps.App{
		Name:         Pattern1Name,
		Cluster:      cluster,
		Flows:        []apps.Flow{{Name: "chain", Entry: "A", Endpoint: "/", Weight: 1}},
		FaultTargets: []string{"A", "B", "C"},
		Edges:        []apps.Edge{{From: "A", To: "B"}, {From: "B", To: "C"}},
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// BuildPattern2 constructs the stateful omission pattern of Fig. 1: calls to
// H increment a counter on store D; worker F drains the counter and calls G.
// It satisfies apps.Builder.
func BuildPattern2(eng *sim.Engine) (*apps.App, error) {
	cluster := sim.NewCluster(eng)
	small := sim.Compute{Mean: compute, Jitter: jitter}
	specs := []sim.ServiceConfig{
		{Name: "D", KV: true},
		{Name: "G", Endpoints: []sim.Endpoint{{Name: "/", Steps: []sim.Step{small}}}},
		{Name: "H", Endpoints: []sim.Endpoint{{Name: "/", Steps: []sim.Step{
			small, sim.KVIncr{Store: "D", Key: "items", Delta: 1},
		}}}},
	}
	for _, cfg := range specs {
		if _, err := cluster.AddService(cfg); err != nil {
			return nil, fmt.Errorf("pattern2: %w", err)
		}
	}
	if err := addDrainWorker(cluster, "F", "D", "items", "G"); err != nil {
		return nil, fmt.Errorf("pattern2: %w", err)
	}
	app := &apps.App{
		Name:         Pattern2Name,
		Cluster:      cluster,
		Flows:        []apps.Flow{{Name: "ingest", Entry: "H", Endpoint: "/", Weight: 1}},
		FaultTargets: []string{"H", "D", "G"},
		Edges: []apps.Edge{
			{From: "H", To: "D"}, {From: "F", To: "D"}, {From: "F", To: "G"},
		},
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// BuildConfounder constructs the Fig. 2 topology. Node A is the shared entry
// with limited capacity; two user flows exercise the B branch and one the I
// branch, so branch failures redistribute A's effective throughput. It
// satisfies apps.Builder.
func BuildConfounder(eng *sim.Engine) (*apps.App, error) {
	cluster := sim.NewCluster(eng)
	entry := sim.Compute{Mean: confounderCompute, Jitter: jitter}
	small := sim.Compute{Mean: compute, Jitter: jitter}
	specs := []sim.ServiceConfig{
		{Name: "E", Endpoints: []sim.Endpoint{{Name: "/", Steps: []sim.Step{small}}}},
		{Name: "C", Endpoints: []sim.Endpoint{{Name: "path_e", Steps: []sim.Step{
			small, sim.CallStep{Target: "E", Endpoint: "/"},
		}}}},
		{Name: "B", Endpoints: []sim.Endpoint{
			{Name: "path_ce", Steps: []sim.Step{small, sim.CallStep{Target: "C", Endpoint: "path_e"}}},
			{Name: "path_e", Steps: []sim.Step{small, sim.CallStep{Target: "E", Endpoint: "/"}}},
		}},
		// I is deliberately expensive: failing it fast-fails a slow flow,
		// freeing enough of A's capacity for the confounder effect to be
		// visible in both directions.
		{Name: "I", Endpoints: []sim.Endpoint{{Name: "/", Steps: []sim.Step{
			sim.Compute{Mean: confounderCompute, Jitter: jitter},
		}}}},
		{
			Name: "A",
			// Low capacity: the shared queue at A is what couples the
			// two branches (the paper's queuing confounder).
			Capacity: 2,
			Endpoints: []sim.Endpoint{
				{Name: "path_bce", Steps: []sim.Step{entry, sim.CallStep{Target: "B", Endpoint: "path_ce"}}},
				{Name: "path_be", Steps: []sim.Step{entry, sim.CallStep{Target: "B", Endpoint: "path_e"}}},
				{Name: "path_i", Steps: []sim.Step{entry, sim.CallStep{Target: "I", Endpoint: "/"}}},
			},
		},
	}
	for _, cfg := range specs {
		if _, err := cluster.AddService(cfg); err != nil {
			return nil, fmt.Errorf("confounder: %w", err)
		}
	}
	app := &apps.App{
		Name:    ConfounderName,
		Cluster: cluster,
		Flows: []apps.Flow{
			{Name: "path_bce", Entry: "A", Endpoint: "path_bce", Weight: 1},
			{Name: "path_be", Entry: "A", Endpoint: "path_be", Weight: 1},
			{Name: "path_i", Entry: "A", Endpoint: "path_i", Weight: 1},
		},
		FaultTargets: []string{"A", "B", "C", "E", "I"},
		Edges: []apps.Edge{
			{From: "A", To: "B"}, {From: "A", To: "I"},
			{From: "B", To: "C"}, {From: "B", To: "E"}, {From: "C", To: "E"},
		},
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

var (
	_ apps.Builder = BuildPattern1
	_ apps.Builder = BuildPattern2
	_ apps.Builder = BuildConfounder
)

// Definitions returns the declarative descriptions of the three illustration
// topologies for the domain linters (internal/analysis).
func Definitions() []apps.Definition {
	mc := apps.DefaultMetricClassification()
	return []apps.Definition{
		{Name: Pattern1Name, Build: BuildPattern1, Metrics: mc},
		{
			Name:  Pattern2Name,
			Build: BuildPattern2,
			NonInjectable: map[string]string{
				"F": "background drain worker with no exposed port; the dead-port injection needs a port",
			},
			Metrics: mc,
		},
		{Name: ConfounderName, Build: BuildConfounder, Metrics: mc},
	}
}

// addDrainWorker registers a background worker that drains one unit at a
// time from store/key and calls target once per unit, mirroring CausalBench's
// node F without its logging rules.
func addDrainWorker(cluster *sim.Cluster, name, store, key, target string) error {
	var drain func(ctx *sim.PollCtx, done func())
	drain = func(ctx *sim.PollCtx, done func()) {
		ctx.CallKV(store, sim.KVOp{Kind: sim.KVDecrIfPositive, Key: key}, func(res sim.Result) {
			if res.Err != nil {
				ctx.ObserveError()
				done()
				return
			}
			if res.Value == 0 {
				done()
				return
			}
			ctx.Compute(fItemCost, func() {
				ctx.Call(target, "/", func(callRes sim.Result) {
					if callRes.Err != nil {
						ctx.ObserveError()
					}
					drain(ctx, done)
				})
			})
		})
	}
	_, err := cluster.AddPoller(sim.PollerConfig{
		Service:  sim.ServiceConfig{Name: name, SuppressErrorLogs: true},
		Interval: fPoll,
		Body:     drain,
	})
	return err
}
