package patterns

import (
	"testing"
	"time"

	"causalfl/internal/sim"
)

func TestPattern1ErrorVsRequestPropagation(t *testing.T) {
	eng := sim.NewEngine(1)
	app, err := BuildPattern1(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	b, _ := app.Cluster.Service("B")
	b.SetUnavailable(true)
	for i := 0; i < 10; i++ {
		app.Cluster.Call("client", "A", "/", nil)
	}
	eng.Run(time.Second)

	a, _ := app.Cluster.Service("A")
	c, _ := app.Cluster.Service("C")
	// Fig. 1 pattern 1: errors surface as logs at A (response path) while
	// C simply stops receiving requests (request path).
	if a.Counters().ErrorLogMessages != 10 {
		t.Errorf("A wrote %d error logs, want 10", a.Counters().ErrorLogMessages)
	}
	if c.Counters().RequestsReceived != 0 {
		t.Errorf("C received %d requests, want 0", c.Counters().RequestsReceived)
	}
}

func TestPattern2OmissionThroughStore(t *testing.T) {
	eng := sim.NewEngine(2)
	app, err := BuildPattern2(eng)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: items flow H -> D -> F -> G.
	for i := 0; i < 10; i++ {
		app.Cluster.Call("client", "H", "/", nil)
	}
	eng.Run(5 * time.Second)
	g, _ := app.Cluster.Service("G")
	if got := g.Counters().RequestsReceived; got != 10 {
		t.Fatalf("G received %d calls, want 10", got)
	}

	// Fault on D: H errors, G starves (Fig. 1 pattern 2).
	d, _ := app.Cluster.Service("D")
	d.SetUnavailable(true)
	failed := 0
	for i := 0; i < 10; i++ {
		app.Cluster.Call("client", "H", "/", func(r sim.Result) {
			if r.Err != nil {
				failed++
			}
		})
	}
	eng.Run(10 * time.Second)
	if failed != 10 {
		t.Errorf("%d ingest calls failed, want 10", failed)
	}
	if got := g.Counters().RequestsReceived; got != 10 {
		t.Errorf("G received %d calls total, want still 10 (omission)", got)
	}
	h, _ := app.Cluster.Service("H")
	if h.Counters().ErrorLogMessages == 0 {
		t.Error("H should log errors when D is down")
	}
	f, _ := app.Cluster.Service("F")
	if f.Counters().ErrorLogMessages != 0 {
		t.Error("F must stay silent (suppressed error logs)")
	}
}

func TestConfounderTopology(t *testing.T) {
	eng := sim.NewEngine(3)
	app, err := BuildConfounder(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(app.Services()); got != 5 {
		t.Fatalf("confounder app has %d services, want 5", got)
	}
	// All three flows complete end to end.
	oks := 0
	for _, ep := range []string{"path_bce", "path_be", "path_i"} {
		app.Cluster.Call("client", "A", ep, func(r sim.Result) {
			if r.Err == nil {
				oks++
			}
		})
	}
	eng.Run(time.Second)
	if oks != 3 {
		t.Fatalf("%d/3 flows succeeded", oks)
	}
	e, _ := app.Cluster.Service("E")
	if got := e.Counters().RequestsReceived; got != 2 {
		t.Errorf("E received %d requests, want 2 (via C and directly from B)", got)
	}
}
