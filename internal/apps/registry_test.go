package apps

import (
	"strings"
	"testing"

	"causalfl/internal/metrics"
	"causalfl/internal/sim"
)

func TestDefaultMetricClassificationIsValid(t *testing.T) {
	if err := DefaultMetricClassification().Validate(); err != nil {
		t.Fatalf("default classification invalid: %v", err)
	}
}

func TestMetricClassificationValidateRejects(t *testing.T) {
	rx := metrics.RxPackets.Name
	cpu := metrics.CPU.Name
	cases := []struct {
		name string
		mc   MetricClassification
		want string
	}{
		{
			name: "unknown independent",
			mc:   MetricClassification{Independent: []string{"made_up"}},
			want: "not a known raw metric",
		},
		{
			name: "metric in both classes",
			mc: MetricClassification{
				Independent: []string{rx},
				Dependent:   []string{rx},
			},
			want: "both independent and dependent",
		},
		{
			name: "dependent without divisor",
			mc: MetricClassification{
				Independent: []string{rx},
				Dependent:   []string{cpu},
			},
			want: "no independent divisor",
		},
		{
			name: "divisor not independent",
			mc: MetricClassification{
				Independent: []string{rx},
				Dependent:   []string{cpu},
				Divisor:     map[string]string{cpu: cpu},
			},
			want: "not declared independent",
		},
		{
			name: "divisor for a non-dependent metric",
			mc: MetricClassification{
				Independent: []string{rx},
				Dependent:   []string{cpu},
				Divisor:     map[string]string{cpu: rx, rx: rx},
			},
			want: "not a dependent metric",
		},
		{
			name: "duplicate independent",
			mc:   MetricClassification{Independent: []string{rx, rx}},
			want: "declared twice",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mc.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid classification")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDefinitionValidate(t *testing.T) {
	builder := Builder(func(eng *sim.Engine) (*App, error) { return nil, nil })
	valid := Definition{
		Name:          "x",
		Build:         builder,
		NonInjectable: map[string]string{"bg": "no exposed port"},
		Metrics:       DefaultMetricClassification(),
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid definition rejected: %v", err)
	}

	cases := []struct {
		name string
		def  Definition
		want string
	}{
		{
			name: "missing name",
			def:  Definition{Build: builder, Metrics: DefaultMetricClassification()},
			want: "no name",
		},
		{
			name: "missing builder",
			def:  Definition{Name: "x", Metrics: DefaultMetricClassification()},
			want: "no builder",
		},
		{
			name: "reasonless excuse",
			def: Definition{
				Name: "x", Build: builder,
				NonInjectable: map[string]string{"bg": ""},
				Metrics:       DefaultMetricClassification(),
			},
			want: "without a reason",
		},
		{
			name: "broken classification",
			def: Definition{
				Name: "x", Build: builder,
				Metrics: MetricClassification{Dependent: []string{metrics.CPU.Name}},
			},
			want: "no independent divisor",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.def.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid definition")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
