package robotshop

import (
	"testing"
	"time"

	"causalfl/internal/sim"
)

func build(t *testing.T) (*sim.Engine, *sim.Cluster) {
	t.Helper()
	eng := sim.NewEngine(2)
	app, err := Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	return eng, app.Cluster
}

func TestTopology(t *testing.T) {
	eng := sim.NewEngine(1)
	app, err := Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(app.Services()); got != 12 {
		t.Fatalf("robot-shop has %d services, want 12 (paper §V-A)", got)
	}
	if got := len(app.FaultTargets); got != 11 {
		t.Fatalf("%d fault targets, want 11 (dispatch has no port)", got)
	}
	for _, target := range app.FaultTargets {
		if target == "dispatch" {
			t.Error("dispatch must not be injectable")
		}
	}
	for _, store := range []string{"mongodb", "mysql", "redis", "rabbitmq"} {
		s, ok := app.Cluster.Service(store)
		if !ok || !s.IsKV() {
			t.Errorf("%s must be a KV store", store)
		}
	}
}

func TestBrowseFlow(t *testing.T) {
	eng, cluster := build(t)
	var ok bool
	cluster.Call("client", "web", "browse", func(r sim.Result) { ok = r.Err == nil })
	eng.Run(time.Second)
	if !ok {
		t.Fatal("browse failed")
	}
	for _, svc := range []string{"web", "catalogue", "ratings"} {
		s, _ := cluster.Service(svc)
		if s.Counters().RequestsReceived == 0 {
			t.Errorf("%s untouched by browse", svc)
		}
	}
	cartSvc, _ := cluster.Service("cart")
	if cartSvc.Counters().RequestsReceived != 0 {
		t.Error("browse must not touch cart")
	}
}

func TestCheckoutPublishesOrderAndDispatchConsumes(t *testing.T) {
	eng, cluster := build(t)
	var ok bool
	cluster.Call("client", "web", "checkout", func(r sim.Result) { ok = r.Err == nil })
	eng.Run(5 * time.Second)
	if !ok {
		t.Fatal("checkout failed")
	}
	rabbit, _ := cluster.Service("rabbitmq")
	if got := rabbit.KVValue("orders"); got != 0 {
		t.Errorf("orders queue = %d after dispatch drain, want 0", got)
	}
	dispatch, _ := cluster.Service("dispatch")
	if dispatch.Counters().CPUSeconds == 0 {
		t.Error("dispatch consumed no CPU; order was not processed")
	}
	for _, svc := range []string{"payment", "cart", "user", "shipping", "mysql", "redis"} {
		s, _ := cluster.Service(svc)
		if s.Counters().RequestsReceived == 0 {
			t.Errorf("%s untouched by checkout", svc)
		}
	}
}

func TestMongoFaultBreaksBrowseButNotShipping(t *testing.T) {
	eng, cluster := build(t)
	mongo, _ := cluster.Service("mongodb")
	mongo.SetUnavailable(true)

	var browseErr, quoteErr error
	cluster.Call("client", "web", "browse", func(r sim.Result) { browseErr = r.Err })
	eng.Run(time.Second)
	cluster.Call("client", "shipping", "quote", func(r sim.Result) { quoteErr = r.Err })
	eng.Run(2 * time.Second)

	if browseErr == nil {
		t.Error("browse should fail when mongodb is down")
	}
	if quoteErr != nil {
		t.Errorf("shipping quote should survive a mongodb fault, got %v", quoteErr)
	}
}

func TestRabbitFaultIsAsyncOmission(t *testing.T) {
	// A broker fault breaks checkout (payment publishes synchronously) and
	// starves dispatch — the robot-shop analogue of CausalBench's D/F
	// omission path.
	eng, cluster := build(t)
	rabbit, _ := cluster.Service("rabbitmq")
	rabbit.SetUnavailable(true)
	var err error
	cluster.Call("client", "web", "checkout", func(r sim.Result) { err = r.Err })
	eng.Run(5 * time.Second)
	if err == nil {
		t.Error("checkout should fail when rabbitmq is down")
	}
	dispatch, _ := cluster.Service("dispatch")
	if dispatch.Counters().CPUSeconds != 0 {
		t.Error("dispatch should process nothing with the broker down")
	}
	if dispatch.Counters().ErrorLogMessages == 0 {
		t.Error("dispatch should log broker connection failures")
	}
}
