// Package robotshop models Instana's Robot-shop — the open-source e-commerce
// storefront the paper uses as its second benchmark (§V-B) — as a
// twelve-service simulator topology:
//
//	web        front end; entry point for all user flows
//	catalogue  product listing        -> mongodb
//	user       accounts and sessions  -> mongodb, redis
//	cart       shopping cart          -> redis, catalogue
//	shipping   shipping quotes        -> mysql
//	payment    order placement        -> cart, user, rabbitmq (publish)
//	ratings    product ratings        -> mysql
//	dispatch   background consumer    <- rabbitmq (no exposed port)
//	mongodb / mysql / redis / rabbitmq  data stores and broker
//
// The heterogeneous runtimes of the real application (NodeJS, Java, Go,
// Python, ...) matter to the paper only through their black-box metrics; the
// simulator reproduces the call topology, the async queue edge through
// RabbitMQ (an omission-fault path like CausalBench's D/F), and data-store
// fan-in.
package robotshop

import (
	"fmt"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/sim"
)

// Name is the benchmark identifier.
const Name = "robotshop"

const (
	webCompute  = 2 * time.Millisecond
	svcCompute  = 4 * time.Millisecond
	svcJitter   = 1 * time.Millisecond
	storeOpCost = 400 * time.Microsecond
	// dispatchPoll is long relative to per-order work so that dispatch's
	// traffic scales with orders processed, not with idle polling (see the
	// same constant in the causalbench package).
	dispatchPoll = 500 * time.Millisecond
	dispatchCost = 2 * time.Millisecond
	// dispatchLogEvery: the real dispatch service logs every processed
	// order; sampled down to keep log volume comparable to other services.
	dispatchLogEvery = 10
	ordersKey        = "orders"
)

// Build constructs a fresh Robot-shop instance on eng. It satisfies
// apps.Builder.
func Build(eng *sim.Engine) (*apps.App, error) {
	cluster := sim.NewCluster(eng)
	web := sim.Compute{Mean: webCompute, Jitter: svcJitter}
	work := sim.Compute{Mean: svcCompute, Jitter: svcJitter}

	specs := []sim.ServiceConfig{
		{Name: "mongodb", KV: true, KVOpCost: storeOpCost},
		{Name: "mysql", KV: true, KVOpCost: storeOpCost},
		{Name: "redis", KV: true, KVOpCost: storeOpCost},
		{Name: "rabbitmq", KV: true, KVOpCost: storeOpCost},
		{
			Name: "catalogue",
			Endpoints: []sim.Endpoint{
				{Name: "list", Steps: []sim.Step{work, sim.KVCall{Store: "mongodb", Op: sim.KVGet, Key: "products"}}},
				{Name: "item", Steps: []sim.Step{work, sim.KVCall{Store: "mongodb", Op: sim.KVGet, Key: "product"}}},
			},
		},
		{
			Name: "user",
			Endpoints: []sim.Endpoint{
				{Name: "login", Steps: []sim.Step{
					work,
					sim.KVCall{Store: "mongodb", Op: sim.KVGet, Key: "accounts"},
					sim.KVCall{Store: "redis", Op: sim.KVIncrBy, Key: "sessions", Delta: 1},
				}},
				{Name: "check", Steps: []sim.Step{work, sim.KVCall{Store: "redis", Op: sim.KVGet, Key: "sessions"}}},
			},
		},
		{
			Name: "cart",
			Endpoints: []sim.Endpoint{
				{Name: "add", Steps: []sim.Step{
					work,
					sim.CallStep{Target: "catalogue", Endpoint: "item"},
					sim.KVCall{Store: "redis", Op: sim.KVIncrBy, Key: "cart", Delta: 1},
				}},
				{Name: "get", Steps: []sim.Step{work, sim.KVCall{Store: "redis", Op: sim.KVGet, Key: "cart"}}},
			},
		},
		{
			Name: "shipping",
			Endpoints: []sim.Endpoint{
				{Name: "quote", Steps: []sim.Step{work, sim.KVCall{Store: "mysql", Op: sim.KVGet, Key: "codes"}}},
			},
		},
		{
			Name: "ratings",
			Endpoints: []sim.Endpoint{
				{Name: "get", Steps: []sim.Step{work, sim.KVCall{Store: "mysql", Op: sim.KVGet, Key: "ratings"}}},
			},
		},
		{
			Name: "payment",
			Endpoints: []sim.Endpoint{
				{Name: "pay", Steps: []sim.Step{
					work,
					sim.CallStep{Target: "cart", Endpoint: "get"},
					sim.CallStep{Target: "user", Endpoint: "check"},
					sim.KVCall{Store: "rabbitmq", Op: sim.KVIncrBy, Key: ordersKey, Delta: 1},
				}},
			},
		},
		{
			Name: "web",
			Endpoints: []sim.Endpoint{
				{Name: "browse", Steps: []sim.Step{
					web,
					sim.CallStep{Target: "catalogue", Endpoint: "list"},
					sim.CallStep{Target: "ratings", Endpoint: "get"},
				}},
				{Name: "login", Steps: []sim.Step{web, sim.CallStep{Target: "user", Endpoint: "login"}}},
				{Name: "addcart", Steps: []sim.Step{web, sim.CallStep{Target: "cart", Endpoint: "add"}}},
				{Name: "checkout", Steps: []sim.Step{
					web,
					sim.CallStep{Target: "payment", Endpoint: "pay"},
					sim.CallStep{Target: "shipping", Endpoint: "quote"},
				}},
			},
		},
	}
	for _, cfg := range specs {
		if _, err := cluster.AddService(cfg); err != nil {
			return nil, fmt.Errorf("robotshop: %w", err)
		}
	}
	if err := addDispatch(cluster); err != nil {
		return nil, fmt.Errorf("robotshop: %w", err)
	}

	app := &apps.App{
		Name:    Name,
		Cluster: cluster,
		Flows: []apps.Flow{
			// Browsing dominates a storefront's traffic.
			{Name: "browse", Entry: "web", Endpoint: "browse", Weight: 4},
			{Name: "login", Entry: "web", Endpoint: "login", Weight: 2},
			{Name: "addcart", Entry: "web", Endpoint: "addcart", Weight: 2},
			{Name: "checkout", Entry: "web", Endpoint: "checkout", Weight: 1},
		},
		// dispatch consumes from the broker and exposes no port, so the
		// dead-port fault injection cannot target it.
		FaultTargets: []string{
			"web", "catalogue", "user", "cart", "shipping",
			"payment", "ratings", "mongodb", "mysql", "redis", "rabbitmq",
		},
		Edges: []apps.Edge{
			{From: "web", To: "catalogue"}, {From: "web", To: "ratings"},
			{From: "web", To: "user"}, {From: "web", To: "cart"},
			{From: "web", To: "payment"}, {From: "web", To: "shipping"},
			{From: "catalogue", To: "mongodb"},
			{From: "user", To: "mongodb"}, {From: "user", To: "redis"},
			{From: "cart", To: "redis"}, {From: "cart", To: "catalogue"},
			{From: "shipping", To: "mysql"}, {From: "ratings", To: "mysql"},
			{From: "payment", To: "cart"}, {From: "payment", To: "user"},
			{From: "payment", To: "rabbitmq"},
			{From: "dispatch", To: "rabbitmq"},
		},
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

var _ apps.Builder = Build

// Definition is the declarative description the domain linters
// (internal/analysis) validate: topology, injectability excuses, and metric
// classification, without running a campaign.
func Definition() apps.Definition {
	return apps.Definition{
		Name:  Name,
		Build: Build,
		NonInjectable: map[string]string{
			"dispatch": "background queue consumer with no exposed port; the dead-port injection needs a port",
		},
		Metrics: apps.DefaultMetricClassification(),
	}
}

// addDispatch registers the background order consumer: it drains the orders
// queue from rabbitmq, burning CPU per order and logging every
// dispatchLogEvery orders. Broker failures are logged as errors (the real
// dispatch service logs connection failures).
func addDispatch(cluster *sim.Cluster) error {
	var processed uint64
	var drain func(ctx *sim.PollCtx, done func())
	drain = func(ctx *sim.PollCtx, done func()) {
		ctx.CallKV("rabbitmq", sim.KVOp{Kind: sim.KVDecrIfPositive, Key: ordersKey}, func(res sim.Result) {
			if res.Err != nil {
				ctx.ObserveError()
				done()
				return
			}
			if res.Value == 0 {
				done()
				return
			}
			ctx.Compute(dispatchCost, func() {
				processed++
				if ctx.Rand().Float64() < 1.0/dispatchLogEvery {
					ctx.Log(false)
				}
				drain(ctx, done)
			})
		})
	}
	_, err := cluster.AddPoller(sim.PollerConfig{
		Service:  sim.ServiceConfig{Name: "dispatch"},
		Interval: dispatchPoll,
		Body:     drain,
	})
	return err
}
