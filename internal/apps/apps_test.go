package apps

import (
	"testing"

	"causalfl/internal/sim"
)

func validApp(t *testing.T) *App {
	t.Helper()
	eng := sim.NewEngine(1)
	cluster := sim.NewCluster(eng)
	cluster.MustAddService(sim.ServiceConfig{Name: "front", Endpoints: []sim.Endpoint{{Name: "home"}}})
	cluster.MustAddService(sim.ServiceConfig{Name: "store", KV: true})
	return &App{
		Name:         "test",
		Cluster:      cluster,
		Flows:        []Flow{{Name: "home", Entry: "front", Endpoint: "home", Weight: 1}},
		FaultTargets: []string{"front", "store"},
		Edges:        []Edge{{From: "front", To: "store"}},
	}
}

func TestValidateAcceptsWellFormedApp(t *testing.T) {
	if err := validApp(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*App)
	}{
		{"empty name", func(a *App) { a.Name = "" }},
		{"no flows", func(a *App) { a.Flows = nil }},
		{"flow to unknown service", func(a *App) { a.Flows[0].Entry = "ghost" }},
		{"flow to unknown endpoint", func(a *App) { a.Flows[0].Endpoint = "nope" }},
		{"non-positive weight", func(a *App) { a.Flows[0].Weight = 0 }},
		{"unknown fault target", func(a *App) { a.FaultTargets = []string{"ghost"} }},
		{"edge from unknown", func(a *App) { a.Edges = []Edge{{From: "ghost", To: "store"}} }},
		{"edge to unknown", func(a *App) { a.Edges = []Edge{{From: "front", To: "ghost"}} }},
	}
	for _, tc := range cases {
		app := validApp(t)
		tc.mutate(app)
		if err := app.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
}

func TestFlowIntoKVServiceSkipsEndpointCheck(t *testing.T) {
	app := validApp(t)
	app.Flows = append(app.Flows, Flow{Name: "kv", Entry: "store", Endpoint: "whatever", Weight: 1})
	if err := app.Validate(); err != nil {
		t.Fatalf("KV entry flow rejected: %v", err)
	}
}

func TestSortedFaultTargetsIsACopy(t *testing.T) {
	app := validApp(t)
	app.FaultTargets = []string{"store", "front"}
	sorted := app.SortedFaultTargets()
	if sorted[0] != "front" || sorted[1] != "store" {
		t.Fatalf("SortedFaultTargets = %v", sorted)
	}
	sorted[0] = "mutated"
	if app.FaultTargets[0] == "mutated" || app.FaultTargets[1] == "mutated" {
		t.Fatal("SortedFaultTargets aliases the original slice")
	}
}

func TestServicesDelegatesToCluster(t *testing.T) {
	app := validApp(t)
	services := app.Services()
	if len(services) != 2 || services[0] != "front" || services[1] != "store" {
		t.Fatalf("Services = %v", services)
	}
}
