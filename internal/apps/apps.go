// Package apps defines the benchmark applications of the paper as simulator
// topologies: CausalBench (the 9-service microbenchmark of Fig. 4),
// Robot-shop (the 12-service e-commerce application), and the small pattern
// topologies used by Fig. 1 and Fig. 2 to illustrate the challenges of §III.
package apps

import (
	"fmt"
	"sort"

	"causalfl/internal/sim"
)

// Flow is one user flow: an entry service/endpoint driven by the load
// generator with a relative weight.
type Flow struct {
	Name     string
	Entry    string
	Endpoint string
	Weight   float64
}

// Edge is a static caller-callee relation, used for documentation and
// topology tests (the black edges of the paper's figures).
type Edge struct {
	From string
	To   string
}

// App is an instantiated benchmark application on a cluster.
type App struct {
	// Name identifies the benchmark ("causalbench", "robotshop", ...).
	Name string
	// Cluster holds the running services.
	Cluster *sim.Cluster
	// Flows lists the user flows the load generator drives.
	Flows []Flow
	// FaultTargets lists the services covered by user flows, i.e. the
	// services the paper injects faults into. Background workers with no
	// exposed port (CausalBench node F, Robot-shop dispatch) are excluded,
	// matching the paper's injection mechanism (a Kubernetes service-port
	// rewrite needs a port).
	FaultTargets []string
	// Edges is the static topology.
	Edges []Edge
}

// Builder constructs a fresh instance of an application on an engine. Every
// campaign phase builds its own instance so runs stay independent.
type Builder func(eng *sim.Engine) (*App, error)

// Services returns all service names of the app in registration order.
func (a *App) Services() []string { return a.Cluster.ServiceNames() }

// Validate checks internal consistency: flows reference existing services
// and endpoints, fault targets exist, edges reference existing services.
func (a *App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("apps: app has no name")
	}
	if len(a.Flows) == 0 {
		return fmt.Errorf("apps: %s has no flows", a.Name)
	}
	for _, f := range a.Flows {
		svc, ok := a.Cluster.Service(f.Entry)
		if !ok {
			return fmt.Errorf("apps: %s flow %q enters unknown service %q", a.Name, f.Name, f.Entry)
		}
		if f.Weight <= 0 {
			return fmt.Errorf("apps: %s flow %q has non-positive weight %v", a.Name, f.Name, f.Weight)
		}
		if !svc.IsKV() {
			found := false
			for _, ep := range svc.Endpoints() {
				if ep == f.Endpoint {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("apps: %s flow %q uses unknown endpoint %s/%s", a.Name, f.Name, f.Entry, f.Endpoint)
			}
		}
	}
	for _, target := range a.FaultTargets {
		if _, ok := a.Cluster.Service(target); !ok {
			return fmt.Errorf("apps: %s fault target %q is not a service", a.Name, target)
		}
	}
	for _, e := range a.Edges {
		if _, ok := a.Cluster.Service(e.From); !ok {
			return fmt.Errorf("apps: %s edge from unknown service %q", a.Name, e.From)
		}
		if _, ok := a.Cluster.Service(e.To); !ok {
			return fmt.Errorf("apps: %s edge to unknown service %q", a.Name, e.To)
		}
	}
	return nil
}

// SortedFaultTargets returns the fault targets alphabetically (a copy).
func (a *App) SortedFaultTargets() []string {
	out := append([]string(nil), a.FaultTargets...)
	sort.Strings(out)
	return out
}
