// Package causalbench builds the paper's CausalBench microbenchmark (Fig. 4):
// nine services arranged to surface the three challenges of §III.
//
//	user flows (paper §V-B):
//	  (a) A/path_bce -> B/path_ce -> C/path_e -> E/   (E logs every 100th)
//	  (b) A/path_be  -> B/path_e  -> E/
//	  (c) A/path_hd  -> H/        -> D INCR items
//	  (d) A/path_id  -> I/        -> D INCR dummy
//	  (e) F (background) polls D: while items > 0, decrement and call G/;
//	      F logs after every 100 processed items and once after 30s idle.
//
// All services except D (a key-value store) and F (a poller with no exposed
// port) are plain web services performing a small compute task per request.
package causalbench

import (
	"fmt"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/sim"
)

// Name is the benchmark identifier.
const Name = "causalbench"

// Tunables of the benchmark topology.
const (
	// computeMean is the per-request compute cost of the stateless
	// services ("generate a random string and calculate its base64
	// encoding").
	computeMean   = 3 * time.Millisecond
	computeJitter = 1 * time.Millisecond
	// eInfoLogEvery matches the paper: node E writes "I am okay!" every
	// hundredth request.
	eInfoLogEvery = 100
	// fPollInterval is node F's pause between drain sweeps. It is long
	// relative to the per-item work so that F's traffic is dominated by
	// items processed (proportional to load) rather than by idle polls
	// (fixed rate) — a worker whose poll overhead dominates has
	// load-dependent derived metrics, reintroducing the confounder the
	// derived metrics exist to remove.
	fPollInterval = 500 * time.Millisecond
	// fItemCost is node F's compute per processed item.
	fItemCost = 1 * time.Millisecond
	// fIdleLogAfter matches the paper: F logs when there have been no
	// items to process for more than 30 seconds.
	fIdleLogAfter = 30 * time.Second
	// fProcessedLogEvery matches the paper: F logs whenever it has
	// finished processing a hundred items.
	fProcessedLogEvery = 100
)

// Build constructs a fresh CausalBench instance on eng with node E's info
// logging enabled (the paper's default). It satisfies apps.Builder.
func Build(eng *sim.Engine) (*apps.App, error) {
	return build(eng, true)
}

// BuildQuiet constructs CausalBench with node E's logging disabled — the
// paper's "when logging is enabled" toggle flipped off. Without E's "I am
// okay!" heartbeat the msg-rate world loses its only omission signal on the
// B/C/E path, the concrete §III-B scenario where a developer's logging
// choice erases a causal edge. It satisfies apps.Builder.
func BuildQuiet(eng *sim.Engine) (*apps.App, error) {
	return build(eng, false)
}

func build(eng *sim.Engine, eLogging bool) (*apps.App, error) {
	cluster := sim.NewCluster(eng)
	small := sim.Compute{Mean: computeMean, Jitter: computeJitter}

	add := func(cfg sim.ServiceConfig) error {
		_, err := cluster.AddService(cfg)
		return err
	}

	specs := []sim.ServiceConfig{
		{
			Name: "A",
			Endpoints: []sim.Endpoint{
				{Name: "path_bce", Steps: []sim.Step{small, sim.CallStep{Target: "B", Endpoint: "path_ce"}}},
				{Name: "path_be", Steps: []sim.Step{small, sim.CallStep{Target: "B", Endpoint: "path_e"}}},
				{Name: "path_hd", Steps: []sim.Step{small, sim.CallStep{Target: "H", Endpoint: "/"}}},
				{Name: "path_id", Steps: []sim.Step{small, sim.CallStep{Target: "I", Endpoint: "/"}}},
			},
		},
		{
			Name: "B",
			Endpoints: []sim.Endpoint{
				{Name: "path_ce", Steps: []sim.Step{small, sim.CallStep{Target: "C", Endpoint: "path_e"}}},
				{Name: "path_e", Steps: []sim.Step{small, sim.CallStep{Target: "E", Endpoint: "/"}}},
			},
		},
		{
			Name: "C",
			Endpoints: []sim.Endpoint{
				{Name: "path_e", Steps: []sim.Step{small, sim.CallStep{Target: "E", Endpoint: "/"}}},
			},
		},
		{Name: "D", KV: true},
		{
			Name: "E",
			Endpoints: []sim.Endpoint{
				// "I am okay!" at a rate of one per eInfoLogEvery
				// requests. Sampled rather than counted so window
				// aggregates carry realistic Poisson noise.
				{Name: "/", Steps: []sim.Step{small, sim.LogSampled{P: eLogRate(eLogging)}}},
			},
		},
		{
			Name: "G",
			Endpoints: []sim.Endpoint{
				{Name: "/", Steps: []sim.Step{small}},
			},
		},
		{
			Name: "H",
			Endpoints: []sim.Endpoint{
				{Name: "/", Steps: []sim.Step{small, sim.KVIncr{Store: "D", Key: "items", Delta: 1}}},
			},
		},
		{
			Name: "I",
			Endpoints: []sim.Endpoint{
				{Name: "/", Steps: []sim.Step{small, sim.KVIncr{Store: "D", Key: "dummy", Delta: 1}}},
			},
		},
	}
	for _, cfg := range specs {
		if err := add(cfg); err != nil {
			return nil, fmt.Errorf("causalbench: %w", err)
		}
	}
	if err := addWorkerF(cluster); err != nil {
		return nil, fmt.Errorf("causalbench: %w", err)
	}

	app := &apps.App{
		Name:    Name,
		Cluster: cluster,
		Flows: []apps.Flow{
			{Name: "path_bce", Entry: "A", Endpoint: "path_bce", Weight: 1},
			{Name: "path_be", Entry: "A", Endpoint: "path_be", Weight: 1},
			{Name: "path_hd", Entry: "A", Endpoint: "path_hd", Weight: 1},
			{Name: "path_id", Entry: "A", Endpoint: "path_id", Weight: 1},
		},
		// Every flask-based service is covered by a user flow and hence
		// injectable. F has no port (paper: not a web service), so the
		// dead-port injection cannot target it.
		FaultTargets: []string{"A", "B", "C", "D", "E", "G", "H", "I"},
		Edges: []apps.Edge{
			{From: "A", To: "B"}, {From: "B", To: "C"}, {From: "C", To: "E"},
			{From: "B", To: "E"},
			{From: "A", To: "H"}, {From: "H", To: "D"},
			{From: "A", To: "I"}, {From: "I", To: "D"},
			{From: "F", To: "D"}, {From: "F", To: "G"},
		},
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

var (
	_ apps.Builder = Build
	_ apps.Builder = BuildQuiet
)

// Definition is the declarative description the domain linters
// (internal/analysis) validate: topology, injectability excuses, and metric
// classification, without running a campaign.
func Definition() apps.Definition {
	return apps.Definition{
		Name:  Name,
		Build: Build,
		NonInjectable: map[string]string{
			"F": "background poller with no exposed port; the dead-port injection needs a port",
		},
		Metrics: apps.DefaultMetricClassification(),
	}
}

// eLogRate returns E's info-log sampling rate, zero when logging is off.
func eLogRate(enabled bool) float64 {
	if !enabled {
		return 0
	}
	return 1.0 / eInfoLogEvery
}

// addWorkerF registers node F: an infinite loop that drains the `items`
// counter on D, calling G once per drained item. F handles store failures
// silently (it retries next sweep) — the developer-catches-the-exception
// behaviour that makes omission faults invisible in error logs (§III-B).
func addWorkerF(cluster *sim.Cluster) error {
	var (
		processed  uint64
		lastWork   sim.Time
		idleLogged bool
	)
	var drain func(ctx *sim.PollCtx, done func())
	drain = func(ctx *sim.PollCtx, done func()) {
		ctx.CallKV("D", sim.KVOp{Kind: sim.KVGet, Key: "items"}, func(res sim.Result) {
			if res.Err != nil {
				// Store unreachable: swallow the error, retry on
				// the next sweep.
				ctx.ObserveError()
				done()
				return
			}
			if res.Value <= 0 {
				if !idleLogged && ctx.Now()-lastWork > fIdleLogAfter {
					ctx.Log(false) // "no items to process for 30s"
					idleLogged = true
				}
				done()
				return
			}
			ctx.CallKV("D", sim.KVOp{Kind: sim.KVDecrIfPositive, Key: "items"}, func(res sim.Result) {
				if res.Err != nil || res.Value == 0 {
					if res.Err != nil {
						ctx.ObserveError()
					}
					done()
					return
				}
				ctx.Compute(fItemCost, func() {
					ctx.Call("G", "/", func(callRes sim.Result) {
						if callRes.Err != nil {
							ctx.ObserveError()
						}
						processed++
						lastWork = ctx.Now()
						idleLogged = false
						// "processed 100 items", emitted at the
						// equivalent sampled rate.
						if ctx.Rand().Float64() < 1.0/fProcessedLogEvery {
							ctx.Log(false)
						}
						drain(ctx, done)
					})
				})
			})
		})
	}
	_, err := cluster.AddPoller(sim.PollerConfig{
		Service: sim.ServiceConfig{
			Name: "F",
			// F catches exceptions without writing error logs.
			SuppressErrorLogs: true,
		},
		Interval: fPollInterval,
		Body:     drain,
	})
	return err
}
