package causalbench

import (
	"testing"
	"time"

	"causalfl/internal/sim"
)

func buildForTest(t *testing.T) (*sim.Engine, *sim.Cluster) {
	t.Helper()
	eng := sim.NewEngine(1)
	app, err := Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	return eng, app.Cluster
}

func TestTopologyMatchesFig4(t *testing.T) {
	eng := sim.NewEngine(1)
	app, err := Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	services := app.Services()
	if len(services) != 9 {
		t.Fatalf("CausalBench has %d services, want 9 (paper §V-A)", len(services))
	}
	want := map[string]bool{"A": true, "B": true, "C": true, "D": true, "E": true, "F": true, "G": true, "H": true, "I": true}
	for _, s := range services {
		if !want[s] {
			t.Errorf("unexpected service %q", s)
		}
		delete(want, s)
	}
	for s := range want {
		t.Errorf("missing service %q", s)
	}
	// F is a background worker with no exposed port: not injectable.
	for _, target := range app.FaultTargets {
		if target == "F" {
			t.Error("F must not be a fault target (no port to rewrite)")
		}
	}
	if len(app.FaultTargets) != 8 {
		t.Errorf("%d fault targets, want 8", len(app.FaultTargets))
	}
	d, _ := app.Cluster.Service("D")
	if !d.IsKV() {
		t.Error("D must be a key-value store (redis)")
	}
	if len(app.Flows) != 4 {
		t.Errorf("%d user flows, want 4 (paths bce, be, hd, id)", len(app.Flows))
	}
}

func TestFlowBCEReachesE(t *testing.T) {
	eng, cluster := buildForTest(t)
	var okResp bool
	cluster.Call("client", "A", "path_bce", func(r sim.Result) { okResp = r.Err == nil })
	eng.Run(time.Second)
	if !okResp {
		t.Fatal("path_bce failed")
	}
	for _, svc := range []string{"A", "B", "C", "E"} {
		s, _ := cluster.Service(svc)
		if s.Counters().RequestsReceived != 1 {
			t.Errorf("%s received %d requests on path_bce, want 1", svc, s.Counters().RequestsReceived)
		}
	}
	// D still sees F's background poll GETs, so only the request-path
	// services must stay silent.
	for _, svc := range []string{"G", "H", "I"} {
		s, _ := cluster.Service(svc)
		if s.Counters().RequestsReceived != 0 {
			t.Errorf("%s received %d requests on path_bce, want 0", svc, s.Counters().RequestsReceived)
		}
	}
}

func TestFlowBEBypassesC(t *testing.T) {
	eng, cluster := buildForTest(t)
	cluster.Call("client", "A", "path_be", nil)
	eng.Run(time.Second)
	c, _ := cluster.Service("C")
	e, _ := cluster.Service("E")
	if c.Counters().RequestsReceived != 0 {
		t.Error("path_be must not touch C")
	}
	if e.Counters().RequestsReceived != 1 {
		t.Error("path_be must reach E")
	}
}

func TestOmissionPipelineHDThroughFToG(t *testing.T) {
	eng, cluster := buildForTest(t)
	// Send 20 path_hd requests; F must eventually drain 20 items from D
	// and call G 20 times.
	for i := 0; i < 20; i++ {
		eng.After(time.Duration(i)*50*time.Millisecond, func() {
			cluster.Call("client", "A", "path_hd", nil)
		})
	}
	eng.Run(30 * time.Second)
	d, _ := cluster.Service("D")
	g, _ := cluster.Service("G")
	if got := d.KVValue("items"); got != 0 {
		t.Errorf("items counter = %d after drain, want 0", got)
	}
	if got := g.Counters().RequestsReceived; got != 20 {
		t.Errorf("G received %d calls, want 20 (one per item)", got)
	}
}

func TestFlowIDOnlyTouchesDummyCounter(t *testing.T) {
	eng, cluster := buildForTest(t)
	for i := 0; i < 5; i++ {
		cluster.Call("client", "A", "path_id", nil)
	}
	eng.Run(10 * time.Second)
	d, _ := cluster.Service("D")
	g, _ := cluster.Service("G")
	if got := d.KVValue("dummy"); got != 5 {
		t.Errorf("dummy counter = %d, want 5", got)
	}
	if g.Counters().RequestsReceived != 0 {
		t.Error("path_id must not cause calls to G")
	}
}

func TestFaultOnDCausesOmissionAtG(t *testing.T) {
	eng, cluster := buildForTest(t)
	d, _ := cluster.Service("D")
	d.SetUnavailable(true)
	errs := 0
	for i := 0; i < 10; i++ {
		cluster.Call("client", "A", "path_hd", func(r sim.Result) {
			if r.Err != nil {
				errs++
			}
		})
	}
	eng.Run(10 * time.Second)
	if errs != 10 {
		t.Errorf("%d path_hd requests failed, want 10 (D unavailable)", errs)
	}
	g, _ := cluster.Service("G")
	if g.Counters().RequestsReceived != 0 {
		t.Error("G must starve when D is unavailable (omission fault)")
	}
	// H observed the failures and logged errors; A as well.
	h, _ := cluster.Service("H")
	a, _ := cluster.Service("A")
	if h.Counters().ErrorLogMessages == 0 {
		t.Error("H should log errors when its INCR to D fails")
	}
	if a.Counters().ErrorLogMessages == 0 {
		t.Error("A should log errors on the response path")
	}
	// F swallows its GET failures silently (§III-B).
	f, _ := cluster.Service("F")
	if f.Counters().ErrorLogMessages != 0 {
		t.Error("F must not write error logs (catches exceptions silently)")
	}
	if f.Counters().ErrorsObserved == 0 {
		t.Error("F should still observe its GET failures internally")
	}
}

func TestWorkerFIdleLog(t *testing.T) {
	eng, cluster := buildForTest(t)
	// Drive one item through, then leave the system idle past the 30s
	// threshold: F must log exactly one idle message.
	cluster.Call("client", "A", "path_hd", nil)
	eng.Run(2 * time.Minute)
	f, _ := cluster.Service("F")
	logs := f.Counters().LogMessages
	if logs == 0 {
		t.Fatal("F never logged its idle message")
	}
	eng.Run(4 * time.Minute)
	if got := f.Counters().LogMessages; got != logs {
		t.Errorf("F kept logging while idle (%d -> %d), want a single idle log per idle period", logs, got)
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	run := func() map[string]sim.Counters {
		eng, cluster := buildForTest(t)
		for i := 0; i < 50; i++ {
			eng.After(time.Duration(i)*20*time.Millisecond, func() {
				cluster.Call("client", "A", "path_bce", nil)
			})
		}
		eng.Run(5 * time.Second)
		return cluster.CountersByService()
	}
	a, b := run(), run()
	for svc, ca := range a {
		if ca != b[svc] {
			t.Fatalf("service %s diverged across identical builds", svc)
		}
	}
}
