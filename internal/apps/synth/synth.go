// Package synth generates synthetic microservice applications of arbitrary
// size for scalability experiments.
//
// The paper motivates fault localization with production-scale call graphs —
// "10% of the call graphs consist of more than 40 microservices" (Alibaba
// trace study [1]) — but evaluates on 9- and 12-service benchmarks. This
// generator produces layered topologies with the same ingredients as
// CausalBench (stateless fan-out services, key-value stores, background
// drain workers creating omission paths, heterogeneous logging discipline)
// at any size, so the pipeline's accuracy and cost can be measured as the
// application grows.
//
// Generation is deterministic in Config.Seed and independent of the
// simulation engine's seed: the same Config always yields the same topology,
// while different engine seeds vary the traffic.
package synth

import (
	"fmt"
	"math/rand"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/sim"
)

// Config shapes a generated application.
type Config struct {
	// Services is the total service count, including stores and workers.
	// Minimum 4 (front end, one mid service, one store, one worker).
	Services int
	// Seed drives topology generation.
	Seed int64
	// Layers is the call-graph depth below the front end (default 3).
	Layers int
	// MaxFanout bounds downstream calls per endpoint (default 2).
	MaxFanout int
	// StoreFraction is the share of services that are key-value stores
	// (default 0.15, at least one).
	StoreFraction float64
	// WorkerFraction is the share of services that are background drain
	// workers (default 0.1, at least one).
	WorkerFraction float64
	// SilentFraction is the share of services that suppress error logs —
	// the paper's developer-dependent logging discipline (default 0.2).
	SilentFraction float64
}

// withDefaults fills zero fields and validates.
func (c Config) withDefaults() (Config, error) {
	if c.Services < 4 {
		return c, fmt.Errorf("synth: need at least 4 services, got %d", c.Services)
	}
	if c.Layers == 0 {
		c.Layers = 3
	}
	if c.Layers < 1 {
		return c, fmt.Errorf("synth: need at least 1 layer, got %d", c.Layers)
	}
	if c.MaxFanout == 0 {
		c.MaxFanout = 2
	}
	if c.MaxFanout < 1 {
		return c, fmt.Errorf("synth: need fanout >= 1, got %d", c.MaxFanout)
	}
	if c.StoreFraction == 0 {
		c.StoreFraction = 0.15
	}
	if c.WorkerFraction == 0 {
		c.WorkerFraction = 0.1
	}
	if c.SilentFraction == 0 {
		c.SilentFraction = 0.2
	}
	for _, f := range []float64{c.StoreFraction, c.WorkerFraction, c.SilentFraction} {
		if f < 0 || f > 0.5 {
			return c, fmt.Errorf("synth: fractions must be in [0, 0.5], got %v", f)
		}
	}
	return c, nil
}

const (
	computeMean   = 3 * time.Millisecond
	computeJitter = 1 * time.Millisecond
	workerPoll    = 500 * time.Millisecond
	workerCost    = 1 * time.Millisecond
	infoLogRate   = 1.0 / 50
)

// Builder returns an apps.Builder for the configured topology. The topology
// (names, edges, logging discipline) is fixed at Builder call time; only the
// simulated traffic varies with the engine's seed.
func Builder(cfg Config) (apps.Builder, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	plan, err := plan(cfg)
	if err != nil {
		return nil, err
	}
	return plan.build, nil
}

// Definition returns the declarative description of the configured topology
// for the domain linters (internal/analysis). Generated drain workers are
// the only services excused from fault injection: like CausalBench's node F,
// they expose no port.
func Definition(cfg Config) (apps.Definition, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return apps.Definition{}, err
	}
	p, err := plan(cfg)
	if err != nil {
		return apps.Definition{}, err
	}
	nonInjectable := make(map[string]string, len(p.workers))
	for _, w := range p.workers {
		nonInjectable[w.name] = "generated background drain worker with no exposed port"
	}
	return apps.Definition{
		Name:          p.name,
		Build:         p.build,
		NonInjectable: nonInjectable,
		Metrics:       apps.DefaultMetricClassification(),
	}, nil
}

// topologyPlan is the deterministic blueprint of one generated application.
type topologyPlan struct {
	name         string
	services     []sim.ServiceConfig
	workers      []workerPlan
	flows        []apps.Flow
	faultTargets []string
	edges        []apps.Edge
}

// workerPlan describes one background drain worker.
type workerPlan struct {
	name   string
	store  string
	key    string
	target string // service called once per drained item ("" = none)
}

// plan generates the blueprint.
func plan(cfg Config) (*topologyPlan, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &topologyPlan{name: fmt.Sprintf("synth-%d-%d", cfg.Services, cfg.Seed)}

	nStores := max(1, int(float64(cfg.Services)*cfg.StoreFraction))
	nWorkers := max(1, int(float64(cfg.Services)*cfg.WorkerFraction))
	nPlain := cfg.Services - nStores - nWorkers - 1 // minus front end
	if nPlain < 1 {
		return nil, fmt.Errorf("synth: %d services leave no room for the call graph (stores=%d workers=%d)",
			cfg.Services, nStores, nWorkers)
	}

	stores := make([]string, nStores)
	for i := range stores {
		stores[i] = fmt.Sprintf("db%02d", i+1)
		p.services = append(p.services, sim.ServiceConfig{Name: stores[i], KV: true})
		p.faultTargets = append(p.faultTargets, stores[i])
	}

	// Distribute plain services across layers; layer 0 is the front end's
	// immediate callees.
	layers := make([][]string, cfg.Layers)
	idx := 0
	for i := 0; i < nPlain; i++ {
		layer := i % cfg.Layers
		idx++
		layers[layer] = append(layers[layer], fmt.Sprintf("s%02d", idx))
	}

	compute := sim.Compute{Mean: computeMean, Jitter: computeJitter}
	// Assign downstream calls per layer. Coverage first: every service in
	// layer i+1 gets at least one caller from layer i (round-robin), so no
	// service is orphaned; random extra fanout follows. The deepest layer
	// (and any caller's surplus fanout there) hits the stores.
	calls := make(map[string][]sim.Step, nPlain)
	storeStep := func(name string) sim.Step {
		store := stores[rng.Intn(len(stores))]
		op := sim.KVGet
		key := "data"
		if rng.Float64() < 0.4 {
			op = sim.KVIncrBy
			key = "queue:" + name
		}
		p.edges = append(p.edges, apps.Edge{From: name, To: store})
		return sim.KVCall{Store: store, Op: op, Key: key, Delta: 1}
	}
	for layer := 0; layer < cfg.Layers; layer++ {
		callers := layers[layer]
		var callees []string
		if layer+1 < cfg.Layers {
			callees = layers[layer+1]
		}
		// Coverage pass.
		for i, callee := range callees {
			caller := callers[i%len(callers)]
			calls[caller] = append(calls[caller], sim.CallStep{Target: callee, Endpoint: "/"})
			p.edges = append(p.edges, apps.Edge{From: caller, To: callee})
		}
		// Random surplus fanout.
		for _, caller := range callers {
			extra := rng.Intn(cfg.MaxFanout)
			for f := 0; f < extra; f++ {
				if len(callees) == 0 || rng.Float64() < 0.3 {
					calls[caller] = append(calls[caller], storeStep(caller))
				} else {
					callee := callees[rng.Intn(len(callees))]
					calls[caller] = append(calls[caller], sim.CallStep{Target: callee, Endpoint: "/"})
					p.edges = append(p.edges, apps.Edge{From: caller, To: callee})
				}
			}
			if len(calls[caller]) == 0 {
				calls[caller] = append(calls[caller], storeStep(caller))
			}
		}
	}
	// Create the plain services, deepest first so callees exist.
	for layer := cfg.Layers - 1; layer >= 0; layer-- {
		for _, name := range layers[layer] {
			steps := append([]sim.Step{compute}, calls[name]...)
			if rng.Float64() < 0.5 {
				steps = append(steps, sim.LogSampled{P: infoLogRate})
			}
			p.services = append(p.services, sim.ServiceConfig{
				Name:              name,
				SuppressErrorLogs: rng.Float64() < cfg.SilentFraction,
				Endpoints:         []sim.Endpoint{{Name: "/", Steps: steps}},
			})
			p.faultTargets = append(p.faultTargets, name)
		}
	}

	// Front end: one endpoint (= user flow) per immediate callee.
	fe := sim.ServiceConfig{Name: "fe"}
	for i, callee := range layers[0] {
		epName := fmt.Sprintf("flow%02d", i+1)
		fe.Endpoints = append(fe.Endpoints, sim.Endpoint{
			Name:  epName,
			Steps: []sim.Step{compute, sim.CallStep{Target: callee, Endpoint: "/"}},
		})
		p.flows = append(p.flows, apps.Flow{Name: epName, Entry: "fe", Endpoint: epName, Weight: 1})
		p.edges = append(p.edges, apps.Edge{From: "fe", To: callee})
	}
	p.services = append(p.services, fe)
	p.faultTargets = append(p.faultTargets, "fe")

	// Background workers drain per-worker queues on random stores and
	// call a random plain service — omission paths a la CausalBench F.
	// The queue is fed by a dedicated flow through the front end.
	allPlain := flatten(layers)
	for w := 0; w < nWorkers; w++ {
		name := fmt.Sprintf("w%02d", w+1)
		store := stores[rng.Intn(len(stores))]
		key := "items:" + name
		target := allPlain[rng.Intn(len(allPlain))]
		p.workers = append(p.workers, workerPlan{name: name, store: store, key: key, target: target})
		p.edges = append(p.edges, apps.Edge{From: name, To: store}, apps.Edge{From: name, To: target})

		epName := fmt.Sprintf("ingest%02d", w+1)
		fe.Endpoints = append(fe.Endpoints, sim.Endpoint{
			Name:  epName,
			Steps: []sim.Step{compute, sim.KVIncr{Store: store, Key: key, Delta: 1}},
		})
		p.flows = append(p.flows, apps.Flow{Name: epName, Entry: "fe", Endpoint: epName, Weight: 1})
		p.edges = append(p.edges, apps.Edge{From: "fe", To: store})
	}
	// fe's endpoint slice grew after append; refresh the stored copy.
	p.services[len(p.services)-1] = fe
	return p, nil
}

// build instantiates the blueprint on an engine (apps.Builder).
func (p *topologyPlan) build(eng *sim.Engine) (*apps.App, error) {
	cluster := sim.NewCluster(eng)
	for _, cfg := range p.services {
		if _, err := cluster.AddService(cfg); err != nil {
			return nil, fmt.Errorf("synth: %w", err)
		}
	}
	for _, w := range p.workers {
		if err := addWorker(cluster, w); err != nil {
			return nil, fmt.Errorf("synth: %w", err)
		}
	}
	app := &apps.App{
		Name:         p.name,
		Cluster:      cluster,
		Flows:        append([]apps.Flow(nil), p.flows...),
		FaultTargets: append([]string(nil), p.faultTargets...),
		Edges:        append([]apps.Edge(nil), p.edges...),
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// addWorker registers one drain worker.
func addWorker(cluster *sim.Cluster, w workerPlan) error {
	var drain func(ctx *sim.PollCtx, done func())
	drain = func(ctx *sim.PollCtx, done func()) {
		ctx.CallKV(w.store, sim.KVOp{Kind: sim.KVDecrIfPositive, Key: w.key}, func(res sim.Result) {
			if res.Err != nil {
				ctx.ObserveError()
				done()
				return
			}
			if res.Value == 0 {
				done()
				return
			}
			ctx.Compute(workerCost, func() {
				ctx.Call(w.target, "/", func(callRes sim.Result) {
					if callRes.Err != nil {
						ctx.ObserveError()
					}
					drain(ctx, done)
				})
			})
		})
	}
	_, err := cluster.AddPoller(sim.PollerConfig{
		Service:  sim.ServiceConfig{Name: w.name, SuppressErrorLogs: true},
		Interval: workerPoll,
		Body:     drain,
	})
	return err
}

// flatten concatenates the layers.
func flatten(layers [][]string) []string {
	var out []string
	for _, l := range layers {
		out = append(out, l...)
	}
	return out
}

// max returns the larger int.
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
