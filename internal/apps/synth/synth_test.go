package synth

import (
	"testing"
	"time"

	"causalfl/internal/load"
	"causalfl/internal/sim"
)

func TestBuilderValidation(t *testing.T) {
	if _, err := Builder(Config{Services: 3}); err == nil {
		t.Error("3 services accepted")
	}
	if _, err := Builder(Config{Services: 10, StoreFraction: 0.9}); err == nil {
		t.Error("fraction > 0.5 accepted")
	}
	if _, err := Builder(Config{Services: 10, Layers: -1}); err == nil {
		t.Error("negative layers accepted")
	}
}

func TestGeneratedAppIsValidAndSized(t *testing.T) {
	for _, n := range []int{6, 12, 24, 48} {
		build, err := Builder(Config{Services: n, Seed: 7})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		app, err := build(sim.NewEngine(1))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := len(app.Services()); got != n {
			t.Errorf("n=%d: generated %d services", n, got)
		}
		if err := app.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if len(app.Flows) == 0 {
			t.Errorf("n=%d: no flows", n)
		}
		// Workers must not be fault targets.
		for _, target := range app.FaultTargets {
			if target[0] == 'w' {
				t.Errorf("n=%d: worker %s is a fault target", n, target)
			}
		}
	}
}

func TestTopologyDeterministicInSeed(t *testing.T) {
	build := func(seed int64) []string {
		b, err := Builder(Config{Services: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		app, err := b(sim.NewEngine(99))
		if err != nil {
			t.Fatal(err)
		}
		var edges []string
		for _, e := range app.Edges {
			edges = append(edges, e.From+">"+e.To)
		}
		return edges
	}
	a, b := build(5), build(5)
	if len(a) != len(b) {
		t.Fatal("same seed gave different edge counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different topologies")
		}
	}
	c := build(6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical topologies")
	}
}

func TestGeneratedAppServesTraffic(t *testing.T) {
	build, err := Builder(Config{Services: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(2)
	app, err := build(eng)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := load.NewGenerator(app, load.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run(30 * time.Second)
	stats := gen.Stats()
	if stats.Issued < 1000 {
		t.Fatalf("issued only %d requests in 30s", stats.Issued)
	}
	if stats.Failed > stats.Issued/20 {
		t.Fatalf("%d/%d requests failed on a healthy generated app", stats.Failed, stats.Issued)
	}
	// Every service except maybe a few must see traffic (stores via
	// calls/ingest, workers via their own polling).
	idle := 0
	for _, name := range app.Services() {
		svc, _ := app.Cluster.Service(name)
		c := svc.Counters()
		if c.RequestsReceived == 0 && c.RequestsSent == 0 {
			idle++
			t.Logf("idle service: %s", name)
		}
	}
	if idle > 0 {
		t.Errorf("%d services saw no traffic at all", idle)
	}
}

func TestGeneratedFaultsPropagate(t *testing.T) {
	build, err := Builder(Config{Services: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(2)
	app, err := build(eng)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := load.NewGenerator(app, load.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run(10 * time.Second)
	before := gen.Stats()
	// Break the first store: some flows must start failing.
	var store string
	for _, name := range app.Services() {
		svc, _ := app.Cluster.Service(name)
		if svc.IsKV() {
			store = name
			break
		}
	}
	if store == "" {
		t.Fatal("no store generated")
	}
	svc, _ := app.Cluster.Service(store)
	svc.SetUnavailable(true)
	eng.Run(40 * time.Second)
	after := gen.Stats()
	if after.Failed == before.Failed {
		t.Fatalf("breaking store %s caused no client-visible failures", store)
	}
}
