package core

import (
	"fmt"

	"causalfl/internal/metrics"
	"causalfl/internal/stats"
)

// DefaultAlpha is the significance level for the two-sample tests. It
// aliases the project-wide constant so the statistical configuration lives
// in internal/stats.
const DefaultAlpha = stats.DefaultAlpha

// DefaultMinSamples is the smallest series length a KS comparison is run on.
// Below four points per side the KS statistic's resolution is so coarse that
// rejection is effectively arbitrary; degraded pairs shorter than this are
// skipped rather than tested.
const DefaultMinSamples = 4

// LearnerOption customizes a Learner.
type LearnerOption func(*Learner) error

// WithAlpha sets the significance level of the distribution-shift decision.
func WithAlpha(alpha float64) LearnerOption {
	return func(l *Learner) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("core: alpha must be in (0,1), got %v", alpha)
		}
		l.alpha = alpha
		return nil
	}
}

// WithTest replaces the default KS test with another two-sample test.
func WithTest(t stats.TwoSampleTest) LearnerOption {
	return func(l *Learner) error {
		if t == nil {
			return fmt.Errorf("core: nil two-sample test")
		}
		l.test = t
		return nil
	}
}

// WithFDR switches the per-metric anomaly decision from per-test alpha
// thresholds to Benjamini-Hochberg false-discovery-rate control at level q.
// Algorithm 1 tests every other service per metric per intervention — a
// multiple-testing family whose false-anomaly count grows with application
// size under fixed alpha; FDR control keeps it proportional to the
// discoveries actually made.
func WithFDR(q float64) LearnerOption {
	return func(l *Learner) error {
		if q <= 0 || q >= 1 {
			return fmt.Errorf("core: FDR level must be in (0,1), got %v", q)
		}
		l.fdrQ = q
		return nil
	}
}

// WithMinSamples overrides the minimum series length required to run a KS
// comparison on a (metric, service) pair (default DefaultMinSamples). Pairs
// with fewer finite points on either side are skipped, not tested.
func WithMinSamples(n int) LearnerOption {
	return func(l *Learner) error {
		if n < 1 {
			return fmt.Errorf("core: min samples must be >= 1, got %d", n)
		}
		l.minSamples = n
		return nil
	}
}

// Learner implements Algorithm 1: fault-injection-driven causal learning.
type Learner struct {
	alpha      float64
	test       stats.TwoSampleTest
	fdrQ       float64
	minSamples int
}

// NewLearner constructs a learner with the paper's defaults: the KS test at
// alpha = 0.05, wrapped in a practical-equivalence guard so that
// operationally meaningless micro-shifts on near-deterministic metrics do
// not pollute the causal sets.
func NewLearner(opts ...LearnerOption) (*Learner, error) {
	l := &Learner{alpha: DefaultAlpha, test: stats.GuardedTest{Inner: stats.KSTest{}}, minSamples: DefaultMinSamples}
	for _, opt := range opts {
		if err := opt(l); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Learn runs Algorithm 1 over collected datasets: baseline is D_0 (fault
// free) and interventions maps each injected service s to its dataset D_s.
// Both are declared over the same metric and service universe, but may be
// incomplete: (metric, service) pairs that are missing, or too short to test
// on either side, are skipped rather than failing the whole campaign. On a
// complete clean grid the result is identical to strict learning.
//
// For every metric M and injected service s it computes
//
//	C(s, M) = {s} ∪ { s' : KS(D_s(M, s'), D_0(M, s')) rejects at alpha }
//
// and returns the per-metric causal worlds as a Model.
func (l *Learner) Learn(baseline *metrics.Snapshot, interventions map[string]*metrics.Snapshot) (*Model, error) {
	if baseline == nil {
		return nil, fmt.Errorf("core: learn: nil baseline")
	}
	if err := baseline.ValidateTolerant(); err != nil {
		return nil, fmt.Errorf("core: learn: baseline: %w", err)
	}
	if len(interventions) == 0 {
		return nil, fmt.Errorf("core: learn: no intervention datasets")
	}

	model := &Model{
		Services:   append([]string(nil), baseline.Services...),
		Metrics:    append([]string(nil), baseline.Metrics...),
		CausalSets: make(map[string]map[string][]string, len(baseline.Metrics)),
		Baseline:   baseline.Clone(),
		Alpha:      l.alpha,
	}
	for _, m := range model.Metrics {
		model.CausalSets[m] = make(map[string][]string, len(interventions))
	}

	known := make(map[string]bool, len(model.Services))
	for _, s := range model.Services {
		known[s] = true
	}

	// Deterministic target order: follow the service universe, then any
	// extra map keys (rejected below).
	for target := range interventions {
		if !known[target] {
			return nil, fmt.Errorf("core: learn: intervention target %q is not in the service universe", target)
		}
	}
	for _, target := range model.Services {
		snap, ok := interventions[target]
		if !ok {
			continue
		}
		if err := l.learnTarget(model, target, snap); err != nil {
			return nil, err
		}
		model.Targets = append(model.Targets, target)
	}
	if len(model.Targets) != len(interventions) {
		return nil, fmt.Errorf("core: learn: %d interventions but %d matched the universe", len(interventions), len(model.Targets))
	}
	return model, nil
}

// learnTarget fills C(target, M) for every metric from one intervention
// dataset. Pairs missing from either side, or with fewer than minSamples
// points, are skipped: under degraded telemetry an untestable pair simply
// contributes no edge, it does not abort learning.
func (l *Learner) learnTarget(model *Model, target string, snap *metrics.Snapshot) error {
	if err := snap.ValidateTolerant(); err != nil {
		return fmt.Errorf("core: learn: intervention %q: %w", target, err)
	}
	minSamples := l.minSamples
	if minSamples < 1 {
		minSamples = DefaultMinSamples
	}
	for _, m := range model.Metrics {
		set := map[string]bool{target: true} // Algorithm 1 line 9
		var family []string
		var pvals []float64
		for _, svc := range model.Services {
			if svc == target {
				continue
			}
			faulted, okF := snap.SeriesOK(m, svc)
			base, okB := model.Baseline.SeriesOK(m, svc)
			if !okF || !okB || len(faulted) < minSamples || len(base) < minSamples {
				continue
			}
			p, err := l.test.PValue(faulted, base)
			if err != nil {
				return fmt.Errorf("core: learn: test %s on %s under fault in %s: %w", m, svc, target, err)
			}
			family = append(family, svc)
			pvals = append(pvals, p)
		}
		shifted, err := decideFamily(pvals, l.alpha, l.fdrQ)
		if err != nil {
			return fmt.Errorf("core: learn: %w", err)
		}
		for i, svc := range family {
			if shifted[i] {
				set[svc] = true
			}
		}
		model.CausalSets[m][target] = sortedSet(set)
	}
	return nil
}

// decideFamily turns a family of p-values into rejection decisions, either
// with the paper's per-test alpha threshold or with BH FDR control when
// fdrQ > 0.
func decideFamily(pvals []float64, alpha, fdrQ float64) ([]bool, error) {
	if fdrQ > 0 {
		return stats.BenjaminiHochberg(pvals, fdrQ)
	}
	out := make([]bool, len(pvals))
	for i, p := range pvals {
		out[i] = p < alpha
	}
	return out, nil
}

// Anomalies computes the anomalous set A(M) for one metric by comparing each
// service's production series against the model baseline (Algorithm 2 lines
// 8–13). It is exported because the localizer, the baselines, and the
// figure experiments all need it.
func Anomalies(test stats.TwoSampleTest, alpha float64, baseline, production *metrics.Snapshot, metric string) ([]string, error) {
	return anomalies(test, alpha, 0, baseline, production, metric)
}

// AnomaliesFDR is Anomalies with Benjamini-Hochberg FDR control at level q
// over the per-service family instead of a per-test alpha.
func AnomaliesFDR(test stats.TwoSampleTest, q float64, baseline, production *metrics.Snapshot, metric string) ([]string, error) {
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("core: FDR level must be in (0,1), got %v", q)
	}
	return anomalies(test, 0, q, baseline, production, metric)
}

func anomalies(test stats.TwoSampleTest, alpha, fdrQ float64, baseline, production *metrics.Snapshot, metric string) ([]string, error) {
	var family []string
	var pvals []float64
	for _, svc := range baseline.Services {
		base, err := baseline.Series(metric, svc)
		if err != nil {
			return nil, err
		}
		prod, err := production.Series(metric, svc)
		if err != nil {
			return nil, err
		}
		p, err := test.PValue(prod, base)
		if err != nil {
			return nil, fmt.Errorf("core: anomaly test %s on %s: %w", metric, svc, err)
		}
		family = append(family, svc)
		pvals = append(pvals, p)
	}
	shifted, err := decideFamily(pvals, alpha, fdrQ)
	if err != nil {
		return nil, fmt.Errorf("core: anomalies: %w", err)
	}
	set := make(map[string]bool)
	for i, svc := range family {
		if shifted[i] {
			set[svc] = true
		}
	}
	return sortedSet(set), nil
}
