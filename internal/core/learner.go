package core

import (
	"context"
	"fmt"

	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/stats"
)

// DefaultAlpha is the significance level for the two-sample tests. It
// aliases the project-wide constant so the statistical configuration lives
// in internal/stats.
const DefaultAlpha = stats.DefaultAlpha

// DefaultMinSamples is the smallest series length a KS comparison is run on.
// Below four points per side the KS statistic's resolution is so coarse that
// rejection is effectively arbitrary; degraded pairs shorter than this are
// skipped rather than tested.
const DefaultMinSamples = 4

// Learner implements Algorithm 1: fault-injection-driven causal learning.
type Learner struct {
	settings
}

// NewLearner constructs a learner with the paper's defaults: the KS test at
// alpha = 0.05, wrapped in a practical-equivalence guard so that
// operationally meaningless micro-shifts on near-deterministic metrics do
// not pollute the causal sets.
func NewLearner(opts ...Option) (*Learner, error) {
	s, err := applyOptions(settings{
		alpha:      DefaultAlpha,
		test:       stats.GuardedTest{Inner: stats.KSTest{}},
		minSamples: DefaultMinSamples,
	}, opts)
	if err != nil {
		return nil, err
	}
	return &Learner{settings: s}, nil
}

// Learn runs Algorithm 1 over collected datasets: baseline is D_0 (fault
// free) and interventions maps each injected service s to its dataset D_s.
// Both are declared over the same metric and service universe, but may be
// incomplete: (metric, service) pairs that are missing, or too short to test
// on either side, are skipped rather than failing the whole campaign. On a
// complete clean grid the result is identical to strict learning.
//
// For every metric M and injected service s it computes
//
//	C(s, M) = {s} ∪ { s' : KS(D_s(M, s'), D_0(M, s')) rejects at alpha }
//
// and returns the per-metric causal worlds as a Model.
//
// The (target × metric) cells are independent p-value families, so they fan
// out across the learner's worker pool; each family's rejection decision is
// made once inside its cell, and the causal sets are assembled in
// deterministic target-major order. The output is byte-identical at every
// worker count. Cancelling ctx stops the fan-out and returns the context
// error.
func (l *Learner) Learn(ctx context.Context, baseline *metrics.Snapshot, interventions map[string]*metrics.Snapshot) (*Model, error) {
	if baseline == nil {
		return nil, fmt.Errorf("core: learn: nil baseline")
	}
	if err := baseline.ValidateTolerant(); err != nil {
		return nil, fmt.Errorf("core: learn: baseline: %w", err)
	}
	if len(interventions) == 0 {
		return nil, fmt.Errorf("core: learn: no intervention datasets")
	}

	model := &Model{
		Services:   append([]string(nil), baseline.Services...),
		Metrics:    append([]string(nil), baseline.Metrics...),
		CausalSets: make(map[string]map[string][]string, len(baseline.Metrics)),
		Baseline:   baseline.Clone(),
		Alpha:      l.alpha,
	}
	for _, m := range model.Metrics {
		model.CausalSets[m] = make(map[string][]string, len(interventions))
	}

	known := make(map[string]bool, len(model.Services))
	for _, s := range model.Services {
		known[s] = true
	}

	// Deterministic target order: follow the service universe, then any
	// extra map keys (rejected below). Snapshot validation stays serial so
	// skip and error decisions never depend on scheduling.
	for target := range interventions {
		if !known[target] {
			return nil, fmt.Errorf("core: learn: intervention target %q is not in the service universe", target)
		}
	}
	var targets []string
	for _, target := range model.Services {
		snap, ok := interventions[target]
		if !ok {
			continue
		}
		if err := snap.ValidateTolerant(); err != nil {
			return nil, fmt.Errorf("core: learn: intervention %q: %w", target, err)
		}
		targets = append(targets, target)
	}
	if len(targets) != len(interventions) {
		return nil, fmt.Errorf("core: learn: %d interventions but %d matched the universe", len(interventions), len(targets))
	}

	// One job per (target, metric) cell, indexed target-major so the
	// lowest-index error is the one a sequential loop would hit first.
	nm := len(model.Metrics)
	sets, err := parallel.Map(ctx, l.workers, len(targets)*nm, func(_ context.Context, idx int) ([]string, error) {
		return l.learnCell(model, targets[idx/nm], interventions[targets[idx/nm]], model.Metrics[idx%nm])
	})
	if err != nil {
		return nil, err
	}
	for idx, set := range sets {
		model.CausalSets[model.Metrics[idx%nm]][targets[idx/nm]] = set
	}
	model.Targets = targets
	return model, nil
}

// learnCell fills C(target, metric) from one intervention dataset: one
// complete p-value family, tested and decided inside a single worker. Pairs
// missing from either side, or with fewer than minSamples points, are
// skipped: under degraded telemetry an untestable pair simply contributes no
// edge, it does not abort learning.
func (l *Learner) learnCell(model *Model, target string, snap *metrics.Snapshot, m string) ([]string, error) {
	minSamples := l.minSamples
	if minSamples < 1 {
		minSamples = DefaultMinSamples
	}
	set := map[string]bool{target: true} // Algorithm 1 line 9
	var family []string
	var pvals []float64
	for _, svc := range model.Services {
		if svc == target {
			continue
		}
		faulted, okF := snap.SeriesOK(m, svc)
		base, okB := model.Baseline.SeriesOK(m, svc)
		if !okF || !okB || len(faulted) < minSamples || len(base) < minSamples {
			continue
		}
		p, err := l.test.PValue(faulted, base)
		if err != nil {
			return nil, fmt.Errorf("core: learn: test %s on %s under fault in %s: %w", m, svc, target, err)
		}
		family = append(family, svc)
		pvals = append(pvals, p)
	}
	shifted, err := DecideFamily(pvals, l.alpha, l.fdrQ)
	if err != nil {
		return nil, fmt.Errorf("core: learn: %w", err)
	}
	for i, svc := range family {
		if shifted[i] {
			set[svc] = true
		}
	}
	return sortedSet(set), nil
}
