package core

import (
	"fmt"
	"sort"
)

// CausalIndex is the sparse vote-time representation of a model's causal
// sets: an inverted index mapping, per metric, each service to the (sorted)
// positions of the targets whose causal world contains it, plus the exact
// size of every causal set. Built once per model, it lets the vote phase
// score a metric in O(Σ_{s∈A} |postings(s)|) — the services with observed
// shifts — instead of walking the dense target × service matrix, which is
// what keeps a steady-state streaming hop flat as deployments grow to
// thousands of services.
//
// The index is immutable after construction and safe for concurrent readers.
type CausalIndex struct {
	model *Model
	// postings[metric][service] lists the indices into model.Targets (always
	// ascending) of targets with service ∈ C(target, metric).
	postings map[string]map[string][]int32
	// setSizes[metric][ti] is |C(model.Targets[ti], metric)| — the union
	// arithmetic for Jaccard scoring and the parsimony tie-break need sizes,
	// never the members.
	setSizes map[string][]int32
	// sortedTargets caches sort.Strings(model.Targets) for the
	// no-metric-voted fallback candidate set.
	sortedTargets []string
}

// NewCausalIndex builds the inverted index for model. The model is validated
// and must have duplicate-free causal sets (Learn emits sorted sets, which
// are): a duplicated member would make the index's size-based union
// arithmetic diverge from the dense reference, so it is rejected loudly.
func NewCausalIndex(model *Model) (*CausalIndex, error) {
	if model == nil {
		return nil, fmt.Errorf("core: causal index: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: causal index: %w", err)
	}
	idx := &CausalIndex{
		model:    model,
		postings: make(map[string]map[string][]int32, len(model.Metrics)),
		setSizes: make(map[string][]int32, len(model.Metrics)),
	}
	for _, metric := range model.Metrics {
		post := make(map[string][]int32)
		sizes := make([]int32, len(model.Targets))
		for ti, target := range model.Targets {
			set := model.CausalSets[metric][target]
			seen := make(map[string]bool, len(set))
			for _, svc := range set {
				if seen[svc] {
					return nil, fmt.Errorf("core: causal index: duplicate service %q in C(%s, %s)", svc, target, metric)
				}
				seen[svc] = true
				post[svc] = append(post[svc], int32(ti))
			}
			sizes[ti] = int32(len(set))
		}
		idx.postings[metric] = post
		idx.setSizes[metric] = sizes
	}
	idx.sortedTargets = append([]string(nil), model.Targets...)
	sort.Strings(idx.sortedTargets)
	return idx, nil
}

// Model returns the model the index was built over.
func (idx *CausalIndex) Model() *Model { return idx.model }

// Postings reports the total number of (metric, service → target) index
// entries — the sparse representation's size, Σ_M Σ_t |C(t, M)|.
func (idx *CausalIndex) Postings() int {
	total := 0
	for _, post := range idx.postings {
		for _, ts := range post {
			total += len(ts)
		}
	}
	return total
}

// score computes the metric's argmax over targets touched by the anomaly set
// anom (sorted, duplicate-free — a Detection's Anomalous slice). Targets with
// an empty intersection score zero under both rules and can never win (the
// caller discards best <= 0), so skipping them reproduces the dense loop's
// result exactly; winners come out in ascending model.Targets order, the
// dense iteration order.
func (idx *CausalIndex) score(rule VoteRule, metric string, anom []string) (float64, []string) {
	post := idx.postings[metric]
	counts := make(map[int32]int32, 8)
	for _, s := range anom {
		for _, ti := range post[s] {
			counts[ti]++
		}
	}
	if len(counts) == 0 {
		return 0, nil
	}
	touched := make([]int32, 0, len(counts))
	for ti := range counts {
		touched = append(touched, ti)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	sizes := idx.setSizes[metric]
	best := -1.0
	var winners []string
	for _, ti := range touched {
		c := counts[ti]
		var score float64
		if rule == JaccardVote {
			// |C ∪ A| = |C| + |A| − |C ∩ A|; both sets are duplicate-free.
			u := int(sizes[ti]) + len(anom) - int(c)
			score = float64(c) / float64(u)
		} else {
			score = float64(c)
		}
		switch {
		case score > best:
			best = score
			winners = []string{idx.model.Targets[ti]}
		//vet:allow floateq -- tied targets compute the same integer ratio; exact tie detection is the vote-splitting rule
		case score == best:
			winners = append(winners, idx.model.Targets[ti])
		}
	}
	return best, winners
}

// AggregateIndexed is Aggregate running over the sparse index instead of the
// dense causal matrix: same inputs (one Detection per model metric, aligned
// by index), bit-identical output, cost proportional to the anomaly evidence
// rather than the deployment width. The streaming localizer uses it on every
// hop; the dense Aggregate remains the conformance reference.
func (lo *Localizer) AggregateIndexed(idx *CausalIndex, detections []*Detection) (*Localization, error) {
	if idx == nil {
		return nil, fmt.Errorf("core: aggregate: nil causal index")
	}
	return lo.aggregate(idx.model, idx, detections)
}
