package core

import (
	"context"
	"testing"

	"causalfl/internal/metrics"
)

// multiFixture builds a hand-crafted model over services {fe, x, y, z} where
// fe (the front end) has a universal causal world and x, y have narrow
// disjoint worlds — the configuration where raw intersection voting
// attributes everything to fe.
func multiFixture(t *testing.T) (*Model, *metrics.Snapshot) {
	t.Helper()
	services := []string{"fe", "x", "y", "z"}
	baseline := metrics.NewSnapshot([]string{"m"}, services)
	for _, svc := range services {
		series := make([]float64, 20)
		for i := range series {
			series[i] = 10 + float64(i%3) // benign variation
		}
		baseline.Data["m"][svc] = series
	}
	model := &Model{
		Services: services,
		Metrics:  []string{"m"},
		Targets:  []string{"fe", "x", "y"},
		CausalSets: map[string]map[string][]string{
			"m": {
				"fe": {"fe", "x", "y", "z"},
				"x":  {"x", "z"},
				"y":  {"y"},
			},
		},
		Baseline: baseline,
		Alpha:    0.05,
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	// Production: x and y faulted simultaneously — anomalies {x, y, z}.
	production := baseline.Clone()
	for _, svc := range []string{"x", "y", "z"} {
		series := production.Data["m"][svc]
		for i := range series {
			series[i] = 100 + float64(i%3)
		}
	}
	return model, production
}

func TestLocalizeMultiExplainsAwayTwoFaults(t *testing.T) {
	model, production := multiFixture(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	got, err := lo.LocalizeMulti(context.Background(), model, production, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("named %v, want exactly 2 faults", got)
	}
	found := map[string]bool{got[0]: true, got[1]: true}
	if !found["x"] || !found["y"] {
		t.Fatalf("LocalizeMulti named %v, want {x, y}; intersection bias toward fe?", got)
	}
	// Greedy order under F_0.5: x covers {x,z} with precision 1
	// (F_0.5 ≈ 0.91) and beats fe's broad world (precision 3/4, F_0.5 =
	// 0.79) — the precision weighting exists precisely so that a wide
	// imprecise explanation cannot swallow two exact narrow ones.
	if got[0] != "x" {
		t.Fatalf("first explain-away pick = %q, want x (precise cover)", got[0])
	}
}

func TestLocalizeMultiStopsWhenExplained(t *testing.T) {
	model, production := multiFixture(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	// Ask for more faults than exist: the loop must stop once anomalies
	// are consumed rather than inventing culprits.
	got, err := lo.LocalizeMulti(context.Background(), model, production, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("named %v, want 2 (anomalies fully explained)", got)
	}
}

func TestLocalizeMultiHealthyData(t *testing.T) {
	model, _ := multiFixture(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	got, err := lo.LocalizeMulti(context.Background(), model, model.Baseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("healthy data named %v, want none", got)
	}
}

func TestLocalizeMultiShadowedPair(t *testing.T) {
	// Two faults on one causal path: the downstream fault's signature is a
	// subset of the upstream one's, so explain-away can only name the
	// upstream culprit — the documented limitation of concurrent-fault
	// localization on shared paths.
	services := []string{"up", "down", "other"}
	baseline := metrics.NewSnapshot([]string{"m"}, services)
	for _, svc := range services {
		series := make([]float64, 20)
		for i := range series {
			series[i] = 10 + float64(i%3)
		}
		baseline.Data["m"][svc] = series
	}
	model := &Model{
		Services: services,
		Metrics:  []string{"m"},
		Targets:  []string{"up", "down"},
		CausalSets: map[string]map[string][]string{
			"m": {
				"up":   {"up", "down"},
				"down": {"down"},
			},
		},
		Baseline: baseline,
		Alpha:    0.05,
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	production := baseline.Clone()
	for _, svc := range []string{"up", "down"} {
		series := production.Data["m"][svc]
		for i := range series {
			series[i] = 100 + float64(i%3)
		}
	}
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	named, err := lo.LocalizeMulti(context.Background(), model, production, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(named) != 1 || named[0] != "up" {
		t.Fatalf("shadowed pair named %v; the upstream world covers everything, so only {up} is recoverable", named)
	}
}

func TestLocalizeMultiValidation(t *testing.T) {
	model, production := multiFixture(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lo.LocalizeMulti(context.Background(), model, production, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := lo.LocalizeMulti(context.Background(), nil, production, 1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := lo.LocalizeMulti(context.Background(), model, nil, 1); err == nil {
		t.Error("nil production accepted")
	}
}

func TestRankedOrdering(t *testing.T) {
	loc := &Localization{Votes: map[string]float64{
		"b": 2, "a": 2, "c": 5, "d": 0.5,
	}}
	got := loc.Ranked()
	want := []string{"c", "a", "b", "d"}
	if len(got) != len(want) {
		t.Fatalf("Ranked = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranked = %v, want %v", got, want)
		}
	}
}
