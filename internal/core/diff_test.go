package core

import (
	"strings"
	"testing"
)

func TestDiffModelsIdentical(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	d, err := DiffModels(model, model)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("self-diff not empty: %s", d)
	}
	if !strings.Contains(d.String(), "no drift") {
		t.Errorf("empty diff rendering: %q", d.String())
	}
}

func TestDiffModelsDetectsSetChange(t *testing.T) {
	f := newFixture()
	oldModel := f.trainModel(t)
	newModel := f.trainModel(t)
	// Simulate drift: a deployment removed the b dependency and grew a d
	// one in the m1 world of target a.
	newModel.CausalSets["m1"]["a"] = []string{"a", "d"}

	d, err := DiffModels(oldModel, newModel)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("drift not detected")
	}
	if len(d.ChangedSets) != 1 {
		t.Fatalf("changed sets = %+v, want exactly one", d.ChangedSets)
	}
	c := d.ChangedSets[0]
	if c.Metric != "m1" || c.Target != "a" {
		t.Fatalf("changed set identity = %+v", c)
	}
	if len(c.Added) != 1 || c.Added[0] != "d" {
		t.Errorf("added = %v, want [d]", c.Added)
	}
	if len(c.Removed) != 1 || c.Removed[0] != "b" {
		t.Errorf("removed = %v, want [b]", c.Removed)
	}
	out := d.String()
	if !strings.Contains(out, "+d") || !strings.Contains(out, "-b") {
		t.Errorf("diff rendering: %s", out)
	}
}

func TestDiffModelsTargetAndMetricDeltas(t *testing.T) {
	f := newFixture()
	oldModel := f.trainModel(t)
	newModel := f.trainModel(t)
	// Drop target c from the new model (it was never retrained).
	newModel.Targets = []string{"a"}
	for _, m := range newModel.Metrics {
		delete(newModel.CausalSets[m], "c")
	}
	d, err := DiffModels(oldModel, newModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RemovedTargets) != 1 || d.RemovedTargets[0] != "c" {
		t.Fatalf("removed targets = %v", d.RemovedTargets)
	}
	if len(d.AddedTargets) != 0 {
		t.Fatalf("added targets = %v", d.AddedTargets)
	}
}

func TestDiffModelsValidation(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	if _, err := DiffModels(nil, model); err == nil {
		t.Error("nil old model accepted")
	}
	if _, err := DiffModels(model, &Model{}); err == nil {
		t.Error("invalid new model accepted")
	}
}
