package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"causalfl/internal/metrics"
)

// randomCampaign builds a random-but-valid baseline + interventions + one
// production snapshot from a seed, for property checks.
func randomCampaign(seed int64) (*metrics.Snapshot, map[string]*metrics.Snapshot, *metrics.Snapshot) {
	rng := rand.New(rand.NewSource(seed))
	nServices := 3 + rng.Intn(5)
	nMetrics := 1 + rng.Intn(3)
	services := make([]string, nServices)
	for i := range services {
		services[i] = string(rune('a' + i))
	}
	metricNames := make([]string, nMetrics)
	for i := range metricNames {
		metricNames[i] = "m" + string(rune('0'+i))
	}
	mk := func(shift map[string]map[string]bool) *metrics.Snapshot {
		snap := metrics.NewSnapshot(metricNames, services)
		for _, m := range metricNames {
			for _, svc := range services {
				series := make([]float64, 15)
				off := 0.0
				if shift != nil && shift[m][svc] {
					off = 7
				}
				for i := range series {
					series[i] = 5 + off + rng.NormFloat64()*0.4
				}
				snap.Data[m][svc] = series
			}
		}
		return snap
	}
	randomWorld := func() map[string]map[string]bool {
		world := make(map[string]map[string]bool, nMetrics)
		for _, m := range metricNames {
			world[m] = make(map[string]bool)
			for _, svc := range services {
				if rng.Float64() < 0.3 {
					world[m][svc] = true
				}
			}
		}
		return world
	}
	baseline := mk(nil)
	interventions := make(map[string]*metrics.Snapshot)
	nTargets := 1 + rng.Intn(nServices)
	for i := 0; i < nTargets; i++ {
		interventions[services[i]] = mk(randomWorld())
	}
	production := mk(randomWorld())
	return baseline, interventions, production
}

// Property: for any random campaign, learning succeeds, every causal set
// contains its target and stays inside the universe, and localization
// returns a non-empty candidate set drawn from the trained targets.
func TestPipelineInvariantsProperty(t *testing.T) {
	learner, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	localizer, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		baseline, interventions, production := randomCampaign(seed)
		model, err := learner.Learn(context.Background(), baseline, interventions)
		if err != nil {
			t.Logf("seed %d: learn: %v", seed, err)
			return false
		}
		if err := model.Validate(); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		universe := make(map[string]bool, len(model.Services))
		for _, s := range model.Services {
			universe[s] = true
		}
		targets := make(map[string]bool, len(model.Targets))
		for _, s := range model.Targets {
			targets[s] = true
		}
		for _, m := range model.Metrics {
			for _, target := range model.Targets {
				hasSelf := false
				for _, svc := range model.CausalSets[m][target] {
					if !universe[svc] {
						return false
					}
					if svc == target {
						hasSelf = true
					}
				}
				if !hasSelf {
					return false
				}
			}
		}
		loc, err := localizer.Localize(context.Background(), model, production)
		if err != nil {
			t.Logf("seed %d: localize: %v", seed, err)
			return false
		}
		if len(loc.Candidates) == 0 {
			return false
		}
		for _, c := range loc.Candidates {
			if !targets[c] {
				t.Logf("seed %d: candidate %q not a trained target", seed, c)
				return false
			}
		}
		// Determinism: a second run is identical.
		loc2, err := localizer.Localize(context.Background(), model, production)
		if err != nil || len(loc2.Candidates) != len(loc.Candidates) {
			return false
		}
		for i := range loc.Candidates {
			if loc.Candidates[i] != loc2.Candidates[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LocalizeMulti never names more than k faults, never repeats a
// name, and names only trained targets.
func TestLocalizeMultiInvariantsProperty(t *testing.T) {
	learner, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	localizer, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw%4)
		baseline, interventions, production := randomCampaign(seed)
		model, err := learner.Learn(context.Background(), baseline, interventions)
		if err != nil {
			return false
		}
		named, err := localizer.LocalizeMulti(context.Background(), model, production, k)
		if err != nil {
			return false
		}
		if len(named) > k {
			return false
		}
		targets := make(map[string]bool, len(model.Targets))
		for _, s := range model.Targets {
			targets[s] = true
		}
		seen := make(map[string]bool, len(named))
		for _, s := range named {
			if seen[s] || !targets[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
