package core

import (
	"context"
	"fmt"

	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/stats"
)

// DetectConfig configures one Detect call. The zero value is usable: guarded
// KS test, DefaultAlpha, per-test thresholds (no FDR control), strict
// completeness, serial execution.
type DetectConfig struct {
	// Test is the two-sample test; nil selects the library default (a KS
	// test wrapped in the practical-equivalence guard).
	Test stats.TwoSampleTest
	// Alpha is the per-test significance threshold. Zero selects
	// DefaultAlpha. Ignored when FDR > 0.
	Alpha float64
	// FDR, when positive, switches the family decision to
	// Benjamini-Hochberg control at this level; Alpha is then ignored.
	FDR float64
	// MinSamples is the minimum finite series length per side required to
	// test a pair in tolerant mode. Zero selects DefaultMinSamples. Ignored
	// in strict mode, which never skips.
	MinSamples int
	// Tolerant selects degraded-telemetry semantics: (metric, service)
	// pairs that are missing on either side, or too short after dropping
	// non-finite production values, are skipped instead of failing the
	// call. Strict mode errors on the first missing pair.
	Tolerant bool
	// Workers bounds the fan-out of the per-service tests. Zero or one runs
	// serially — detection families are small, and callers that already fan
	// out per metric (the localizer) must not nest pools. The family
	// decision is always made once over the complete family, whatever the
	// worker count, so FDR semantics do not depend on parallelism.
	Workers int
}

// Detection is the outcome of one Detect call over a single metric.
type Detection struct {
	// Anomalous is the sorted set of services whose production distribution
	// shifted from baseline — A(M) in Algorithm 2.
	Anomalous []string
	// Tested counts the (metric, service) pairs actually compared: the
	// family size, and the coverage numerator in tolerant mode.
	Tested int
}

// Detect computes the anomalous set A(metric) by comparing each service's
// production series against its baseline series (Algorithm 2 lines 8–13). It
// is the single detection entry point shared by the localizer, the baseline
// techniques, and the figure experiments; the per-test-versus-FDR choice,
// strict-versus-tolerant completeness, and parallelism are all DetectConfig
// fields rather than separate functions.
func Detect(ctx context.Context, cfg DetectConfig, baseline, production *metrics.Snapshot, metric string) (*Detection, error) {
	if baseline == nil {
		return nil, fmt.Errorf("core: detect: nil baseline snapshot")
	}
	if production == nil {
		return nil, fmt.Errorf("core: detect: nil production snapshot")
	}
	if cfg.FDR < 0 || cfg.FDR >= 1 {
		return nil, fmt.Errorf("core: FDR level must be in (0,1), got %v", cfg.FDR)
	}
	test := cfg.Test
	if test == nil {
		test = stats.GuardedTest{Inner: stats.KSTest{}}
	}
	alpha := cfg.Alpha
	if alpha == 0 && cfg.FDR == 0 {
		alpha = DefaultAlpha
	}
	minSamples := cfg.MinSamples
	if minSamples < 1 {
		minSamples = DefaultMinSamples
	}

	// Assemble the testable family serially — cheap map lookups whose skip
	// decisions must not depend on scheduling — then fan the p-values out.
	type pair struct{ prod, base []float64 }
	var family []string
	var pairs []pair
	for _, svc := range baseline.Services {
		var base, prod []float64
		if cfg.Tolerant {
			var okB, okP bool
			base, okB = baseline.SeriesOK(metric, svc)
			prod, okP = production.SeriesOK(metric, svc)
			if !okB || !okP {
				continue
			}
			prod = finiteValues(prod)
			if len(base) < minSamples || len(prod) < minSamples {
				continue
			}
		} else {
			var err error
			if base, err = baseline.Series(metric, svc); err != nil {
				return nil, err
			}
			if prod, err = production.Series(metric, svc); err != nil {
				return nil, err
			}
		}
		family = append(family, svc)
		pairs = append(pairs, pair{prod: prod, base: base})
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	pvals, err := parallel.Map(ctx, workers, len(family), func(_ context.Context, i int) (float64, error) {
		p, err := test.PValue(pairs[i].prod, pairs[i].base)
		if err != nil {
			return 0, fmt.Errorf("core: anomaly test %s on %s: %w", metric, family[i], err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}

	// The family decision runs once over every p-value — never per shard —
	// so Benjamini-Hochberg sees the same family a serial loop would.
	shifted, err := DecideFamily(pvals, alpha, cfg.FDR)
	if err != nil {
		return nil, fmt.Errorf("core: anomalies: %w", err)
	}
	set := make(map[string]bool)
	for i, svc := range family {
		if shifted[i] {
			set[svc] = true
		}
	}
	return &Detection{Anomalous: sortedSet(set), Tested: len(family)}, nil
}

// DecideFamily turns a family of p-values into rejection decisions, either
// with the paper's per-test alpha threshold or with BH FDR control when
// fdrQ > 0. It is exported so the streaming detection engine
// (internal/stream), which computes its p-values incrementally, shares the
// exact decision arithmetic with the batch path.
func DecideFamily(pvals []float64, alpha, fdrQ float64) ([]bool, error) {
	if fdrQ > 0 {
		return stats.BenjaminiHochberg(pvals, fdrQ)
	}
	out := make([]bool, len(pvals))
	for i, p := range pvals {
		out[i] = p < alpha
	}
	return out, nil
}
