package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/stats"
)

// VoteRule selects how a metric scores a candidate service against its
// anomalous set. The paper uses IntersectionVote; the alternatives exist for
// the ablation benchmarks.
type VoteRule int

const (
	// IntersectionVote scores |A(M) ∩ C(s, M)| (Algorithm 2 line 14) and
	// breaks ties toward the most parsimonious causal set. This is the
	// library default.
	IntersectionVote VoteRule = iota + 1
	// JaccardVote scores |A ∩ C| / |A ∪ C|, penalizing over-broad causal
	// sets.
	JaccardVote
	// PureIntersectionVote is the paper's Algorithm 2 verbatim: raw
	// |A ∩ C| with no tie-break. Kept for the ablation benchmarks; it
	// cannot separate a causal world from its supersets, so entry
	// services with universal causal sets absorb votes.
	PureIntersectionVote
)

// String returns the rule name.
func (v VoteRule) String() string {
	switch v {
	case IntersectionVote:
		return "intersection+parsimony"
	case JaccardVote:
		return "jaccard"
	case PureIntersectionVote:
		return "intersection"
	default:
		return "unknown"
	}
}

// Localizer implements Algorithm 2: majority-voting fault localization.
type Localizer struct {
	settings
}

// NewLocalizer constructs a localizer with the paper's defaults.
func NewLocalizer(opts ...Option) (*Localizer, error) {
	s, err := applyOptions(settings{
		test:       stats.GuardedTest{Inner: stats.KSTest{}},
		rule:       IntersectionVote,
		minSamples: DefaultMinSamples,
	}, opts)
	if err != nil {
		return nil, err
	}
	return &Localizer{settings: s}, nil
}

// detectConfig builds the per-metric Detect configuration. Workers stays 1:
// the localizer fans out across metrics, and nesting a second pool inside
// each metric would oversubscribe the scheduler without adding parallelism.
func (lo *Localizer) detectConfig(alpha float64) DetectConfig {
	return DetectConfig{
		Test:       lo.test,
		Alpha:      alpha,
		FDR:        lo.fdrQ,
		MinSamples: lo.minSamples,
		Tolerant:   true,
		Workers:    1,
	}
}

// Localization is the output of Algorithm 2.
type Localization struct {
	// Candidates is the estimated fault-location set: every service tied
	// at the maximum vote count. Ideally a singleton; ties shrink
	// informativeness. When no metric cast a vote but data was available,
	// the candidate set is all trained targets — the algorithm learned
	// nothing. When Abstained is set, Candidates is nil.
	Candidates []string
	// Abstained marks a localization that could not run at all: every
	// metric was too degraded to test even one (metric, service) pair.
	// The degradation evidence is in MetricCoverage and Degradation.
	Abstained bool
	// Votes maps each candidate target to its accumulated (possibly
	// fractional, when per-metric winners tie) vote mass.
	Votes map[string]float64
	// Anomalies records A(M) per metric for interpretability — the paper
	// emphasizes that interventional approaches stay explainable.
	Anomalies map[string][]string
	// MetricWinners records the per-metric argmax set (the services that
	// tied for the best match under that metric).
	MetricWinners map[string][]string
	// MetricCoverage maps each metric to the fraction of the model's
	// services whose production series was testable, in [0,1]. All 1 on
	// clean data.
	MetricCoverage map[string]float64
	// Degradation summarizes the production snapshot measured against the
	// model's metric×service grid.
	Degradation *metrics.DegradationReport
}

// Localize runs Algorithm 2 against production data. The production snapshot
// may be incomplete or contain non-finite values: untestable (metric,
// service) pairs are skipped, votes from partially covered metrics are
// down-weighted by their coverage, and when every metric is completely dark
// the result is an explicit abstention (Abstained=true, nil Candidates) with
// the coverage evidence attached — never an error or panic. On a clean
// full-grid snapshot the result is identical to strict localization.
//
// Anomaly detection fans out per metric across the localizer's worker pool;
// each metric is one complete p-value family decided inside its worker, and
// the vote aggregation runs serially over the metrics in model order, so the
// result is byte-identical at every worker count.
func (lo *Localizer) Localize(ctx context.Context, model *Model, production *metrics.Snapshot) (*Localization, error) {
	if model == nil {
		return nil, fmt.Errorf("core: localize: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: localize: %w", err)
	}
	if production == nil {
		return nil, fmt.Errorf("core: localize: nil production snapshot")
	}
	alpha := lo.alpha
	if alpha == 0 {
		alpha = model.Alpha
	}

	cfg := lo.detectConfig(alpha)
	detections, err := parallel.Map(ctx, lo.workers, len(model.Metrics), func(ctx context.Context, i int) (*Detection, error) {
		return Detect(ctx, cfg, model.Baseline, production, model.Metrics[i])
	})
	if err != nil {
		return nil, err
	}
	out, err := lo.Aggregate(model, detections)
	if err != nil {
		return nil, err
	}
	out.Degradation = metrics.AssessOver(production, model.Metrics, model.Services)
	return out, nil
}

// Aggregate is the vote phase of Algorithm 2, split from anomaly detection:
// it turns one Detection per model metric (aligned with model.Metrics by
// index) into a Localization. Localize feeds it the batch detections; the
// streaming engine (internal/stream) feeds it per-hop incremental detections,
// so a streaming verdict and a batch localization over the same anomaly
// evidence are the same computation. The Degradation field is left nil —
// it describes a production snapshot, which Aggregate never sees.
func (lo *Localizer) Aggregate(model *Model, detections []*Detection) (*Localization, error) {
	return lo.aggregate(model, nil, detections)
}

// aggregate is the shared vote loop behind Aggregate (dense, idx nil) and
// AggregateIndexed (sparse, idx non-nil). The two paths differ only in how a
// metric's argmax is computed: the dense loop scores every trained target,
// the sparse one scores only targets whose causal set intersects the anomaly
// set — every skipped target scores zero and zero never wins, so the results
// are identical (TestAggregateIndexedMatchesDense pins this).
func (lo *Localizer) aggregate(model *Model, idx *CausalIndex, detections []*Detection) (*Localization, error) {
	if model == nil {
		return nil, fmt.Errorf("core: aggregate: nil model")
	}
	if len(detections) != len(model.Metrics) {
		return nil, fmt.Errorf("core: aggregate: %d detections for %d model metrics", len(detections), len(model.Metrics))
	}
	for i, d := range detections {
		if d == nil {
			return nil, fmt.Errorf("core: aggregate: nil detection for metric %q", model.Metrics[i])
		}
	}
	// The sparse path sizes the vote map for the handful of winners a hop
	// produces, not the full target universe — at 4096 targets the dense
	// hint alone would dominate a steady-state hop's allocations.
	voteHint := len(model.Targets)
	if idx != nil {
		voteHint = 8
	}
	out := &Localization{
		Votes:          make(map[string]float64, voteHint),
		Anomalies:      make(map[string][]string, len(model.Metrics)),
		MetricWinners:  make(map[string][]string, len(model.Metrics)),
		MetricCoverage: make(map[string]float64, len(model.Metrics)),
	}

	testedAny := false
	for i, metric := range model.Metrics {
		anom, tested := detections[i].Anomalous, detections[i].Tested
		coverage := 0.0
		if n := len(model.Services); n > 0 {
			coverage = float64(tested) / float64(n)
		}
		out.MetricCoverage[metric] = coverage
		if tested == 0 {
			// The metric is completely dark: no pair was testable, so
			// it can neither vote nor attest health.
			continue
		}
		testedAny = true
		out.Anomalies[metric] = anom
		if len(anom) == 0 {
			// Nothing anomalous under this metric: abstain rather
			// than vote for an arbitrary tie of everything.
			continue
		}
		// s* = argmax_s score(A(M), C(s, M)) over trained targets.
		var (
			best    float64
			winners []string
		)
		if idx != nil {
			best, winners = idx.score(lo.rule, metric, anom)
		} else {
			anomSet := make(map[string]bool, len(anom))
			for _, s := range anom {
				anomSet[s] = true
			}
			best = -1.0
			for _, target := range model.Targets {
				set := model.CausalSets[metric][target]
				var score float64
				switch lo.rule {
				case JaccardVote:
					u := unionSize(set, anomSet)
					if u > 0 {
						score = float64(intersectionSize(set, anomSet)) / float64(u)
					}
				default:
					score = float64(intersectionSize(set, anomSet))
				}
				switch {
				case score > best:
					best = score
					winners = []string{target}
				//vet:allow floateq -- tied targets compute the same integer ratio; exact tie detection is the vote-splitting rule
				case score == best:
					winners = append(winners, target)
				}
			}
		}
		if best <= 0 {
			// The anomalies match no learned world at all.
			continue
		}
		if lo.rule == IntersectionVote {
			winners = mostParsimonious(model, metric, winners)
		}
		out.MetricWinners[metric] = winners
		// Ties split the metric's vote evenly; a partially covered metric
		// casts proportionally less mass (coverage 1 on clean data, so
		// the weighting is invisible there) — a metric that saw half its
		// services should not outvote one that saw them all.
		share := coverage / float64(len(winners))
		for _, w := range winners {
			out.Votes[w] += share
		}
	}

	if !testedAny {
		// Every metric was dark: abstain explicitly instead of guessing.
		out.Abstained = true
		return out, nil
	}
	out.Candidates = argmaxVotes(out.Votes)
	if len(out.Candidates) == 0 {
		// No metric voted: return the uninformative full candidate set.
		if idx != nil {
			out.Candidates = append([]string(nil), idx.sortedTargets...)
		} else {
			out.Candidates = append([]string(nil), model.Targets...)
			sort.Strings(out.Candidates)
		}
	}
	return out, nil
}

// finiteValues returns the finite entries of s. When every entry is finite —
// the steady-state case — it returns s itself without allocating.
func finiteValues(s []float64) []float64 {
	clean := true
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	out := make([]float64, 0, len(s))
	for _, v := range s {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}

// mostParsimonious shrinks a tied winner list to the targets with the
// smallest causal set under the metric — the Occam refinement of the paper's
// "closest set" criterion. Raw intersection counting cannot separate a
// target whose causal world is a superset of another's (the entry service of
// a call graph causally covers everything, so it ties every comparison);
// among explanations covering the same anomalies, the one that predicts the
// fewest unobserved effects explains the data better.
func mostParsimonious(model *Model, metric string, winners []string) []string {
	if len(winners) <= 1 {
		return winners
	}
	minSize := -1
	for _, w := range winners {
		size := len(model.CausalSets[metric][w])
		if minSize == -1 || size < minSize {
			minSize = size
		}
	}
	out := winners[:0]
	for _, w := range winners {
		if len(model.CausalSets[metric][w]) == minSize {
			out = append(out, w)
		}
	}
	return out
}

// LocalizeMulti is the concurrent-fault extension of Algorithm 2: a greedy
// explain-away loop for up to k simultaneous faults. Each round scores every
// trained target against the *remaining* anomalies, commits the best
// explainer, removes the anomalies its worlds cover, and repeats until the
// anomalies are exhausted or k faults are named.
//
// The per-metric score is the precision-weighted F-measure (F_0.5) of the
// causal set against the anomaly set. Two failure modes shape this choice:
// raw intersection counting attributes every concurrent failure to the entry
// service (its universal world is a superset of any anomaly union), and even
// Jaccard lets one broad imprecise world outscore two exact narrow covers.
// Weighting precision doubly means a world that predicts unobserved
// anomalies is distrusted — whatever it fails to cover is simply explained
// by the next round.
func (lo *Localizer) LocalizeMulti(ctx context.Context, model *Model, production *metrics.Snapshot, k int) ([]string, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: localize-multi needs k >= 1, got %d", k)
	}
	if model == nil {
		return nil, fmt.Errorf("core: localize-multi: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: localize-multi: %w", err)
	}
	if production == nil {
		return nil, fmt.Errorf("core: localize-multi: nil production snapshot")
	}
	alpha := lo.alpha
	if alpha == 0 {
		alpha = model.Alpha
	}

	// Anomalies per metric, computed once (fanned out across the worker
	// pool) and consumed round by round. The tolerant path skips untestable
	// pairs, so degraded production snapshots narrow the anomaly evidence
	// instead of erroring.
	cfg := lo.detectConfig(alpha)
	detections, err := parallel.Map(ctx, lo.workers, len(model.Metrics), func(ctx context.Context, i int) (*Detection, error) {
		return Detect(ctx, cfg, model.Baseline, production, model.Metrics[i])
	})
	if err != nil {
		return nil, err
	}
	remaining := make(map[string]map[string]bool, len(model.Metrics))
	for i, metric := range model.Metrics {
		set := make(map[string]bool, len(detections[i].Anomalous))
		for _, s := range detections[i].Anomalous {
			set[s] = true
		}
		remaining[metric] = set
	}

	var found []string
	taken := make(map[string]bool, k)
	for len(found) < k {
		best := 0.0
		winner := ""
		for _, target := range model.Targets {
			if taken[target] {
				continue
			}
			score := 0.0
			for _, metric := range model.Metrics {
				anom := remaining[metric]
				if len(anom) == 0 {
					continue
				}
				set := model.CausalSets[metric][target]
				inter := float64(intersectionSize(set, anom))
				if inter == 0 {
					continue
				}
				precision := inter / float64(len(set))
				recall := inter / float64(len(anom))
				// F_0.5 = 1.25·P·R / (0.25·P + R).
				score += 1.25 * precision * recall / (0.25*precision + recall)
			}
			//vet:allow floateq -- exact tie → alphabetical winner keeps greedy selection deterministic
			if score > best || (score == best && score > 0 && (winner == "" || target < winner)) {
				best = score
				winner = target
			}
		}
		if winner == "" {
			break
		}
		found = append(found, winner)
		taken[winner] = true
		// Explain away: the committed fault accounts for its worlds.
		for _, metric := range model.Metrics {
			for _, svc := range model.CausalSets[metric][winner] {
				delete(remaining[metric], svc)
			}
		}
	}
	return found, nil
}

// Ranked returns every target that received vote mass, ordered by
// descending votes (ties alphabetically). It supports the multi-fault
// extension: with k concurrent faults, each tends to win the metrics whose
// causal world it matches, so the true faults surface in the top ranks even
// though Algorithm 2 was designed for a single fault.
func (l *Localization) Ranked() []string {
	out := make([]string, 0, len(l.Votes))
	for s := range l.Votes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := l.Votes[out[i]], l.Votes[out[j]]
		//vet:allow floateq -- sort tie-break: exact equality falls through to the alphabetical order
		if vi != vj {
			return vi > vj
		}
		return out[i] < out[j]
	})
	return out
}

// argmaxVotes returns the sorted set of services holding the maximum
// positive vote mass.
func argmaxVotes(votes map[string]float64) []string {
	best := 0.0
	for _, v := range votes {
		if v > best {
			best = v
		}
	}
	if best == 0 {
		return nil
	}
	const eps = 1e-9
	var out []string
	for s, v := range votes {
		if v >= best-eps {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
