package core

import (
	"fmt"
	"math"
	"sort"

	"causalfl/internal/metrics"
	"causalfl/internal/stats"
)

// VoteRule selects how a metric scores a candidate service against its
// anomalous set. The paper uses IntersectionVote; the alternatives exist for
// the ablation benchmarks.
type VoteRule int

const (
	// IntersectionVote scores |A(M) ∩ C(s, M)| (Algorithm 2 line 14) and
	// breaks ties toward the most parsimonious causal set. This is the
	// library default.
	IntersectionVote VoteRule = iota + 1
	// JaccardVote scores |A ∩ C| / |A ∪ C|, penalizing over-broad causal
	// sets.
	JaccardVote
	// PureIntersectionVote is the paper's Algorithm 2 verbatim: raw
	// |A ∩ C| with no tie-break. Kept for the ablation benchmarks; it
	// cannot separate a causal world from its supersets, so entry
	// services with universal causal sets absorb votes.
	PureIntersectionVote
)

// String returns the rule name.
func (v VoteRule) String() string {
	switch v {
	case IntersectionVote:
		return "intersection+parsimony"
	case JaccardVote:
		return "jaccard"
	case PureIntersectionVote:
		return "intersection"
	default:
		return "unknown"
	}
}

// LocalizerOption customizes a Localizer.
type LocalizerOption func(*Localizer) error

// WithLocalizerAlpha overrides the significance level (default: the model's
// training alpha).
func WithLocalizerAlpha(alpha float64) LocalizerOption {
	return func(lo *Localizer) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("core: alpha must be in (0,1), got %v", alpha)
		}
		lo.alpha = alpha
		return nil
	}
}

// WithLocalizerTest replaces the KS test.
func WithLocalizerTest(t stats.TwoSampleTest) LocalizerOption {
	return func(lo *Localizer) error {
		if t == nil {
			return fmt.Errorf("core: nil two-sample test")
		}
		lo.test = t
		return nil
	}
}

// WithLocalizerFDR switches the production anomaly decision to
// Benjamini-Hochberg FDR control at level q (see core.WithFDR).
func WithLocalizerFDR(q float64) LocalizerOption {
	return func(lo *Localizer) error {
		if q <= 0 || q >= 1 {
			return fmt.Errorf("core: FDR level must be in (0,1), got %v", q)
		}
		lo.fdrQ = q
		return nil
	}
}

// WithVoteRule selects the per-metric scoring rule.
func WithVoteRule(rule VoteRule) LocalizerOption {
	return func(lo *Localizer) error {
		if rule != IntersectionVote && rule != JaccardVote && rule != PureIntersectionVote {
			return fmt.Errorf("core: unknown vote rule %d", rule)
		}
		lo.rule = rule
		return nil
	}
}

// WithLocalizerMinSamples overrides the minimum finite series length required
// to test a (metric, service) pair (default DefaultMinSamples).
func WithLocalizerMinSamples(n int) LocalizerOption {
	return func(lo *Localizer) error {
		if n < 1 {
			return fmt.Errorf("core: min samples must be >= 1, got %d", n)
		}
		lo.minSamples = n
		return nil
	}
}

// Localizer implements Algorithm 2: majority-voting fault localization.
type Localizer struct {
	alpha      float64
	test       stats.TwoSampleTest
	rule       VoteRule
	fdrQ       float64
	minSamples int
}

// NewLocalizer constructs a localizer with the paper's defaults.
func NewLocalizer(opts ...LocalizerOption) (*Localizer, error) {
	lo := &Localizer{test: stats.GuardedTest{Inner: stats.KSTest{}}, rule: IntersectionVote, minSamples: DefaultMinSamples}
	for _, opt := range opts {
		if err := opt(lo); err != nil {
			return nil, err
		}
	}
	return lo, nil
}

// Localization is the output of Algorithm 2.
type Localization struct {
	// Candidates is the estimated fault-location set: every service tied
	// at the maximum vote count. Ideally a singleton; ties shrink
	// informativeness. When no metric cast a vote but data was available,
	// the candidate set is all trained targets — the algorithm learned
	// nothing. When Abstained is set, Candidates is nil.
	Candidates []string
	// Abstained marks a localization that could not run at all: every
	// metric was too degraded to test even one (metric, service) pair.
	// The degradation evidence is in MetricCoverage and Degradation.
	Abstained bool
	// Votes maps each candidate target to its accumulated (possibly
	// fractional, when per-metric winners tie) vote mass.
	Votes map[string]float64
	// Anomalies records A(M) per metric for interpretability — the paper
	// emphasizes that interventional approaches stay explainable.
	Anomalies map[string][]string
	// MetricWinners records the per-metric argmax set (the services that
	// tied for the best match under that metric).
	MetricWinners map[string][]string
	// MetricCoverage maps each metric to the fraction of the model's
	// services whose production series was testable, in [0,1]. All 1 on
	// clean data.
	MetricCoverage map[string]float64
	// Degradation summarizes the production snapshot measured against the
	// model's metric×service grid.
	Degradation *metrics.DegradationReport
}

// Localize runs Algorithm 2 against production data. The production snapshot
// may be incomplete or contain non-finite values: untestable (metric,
// service) pairs are skipped, votes from partially covered metrics are
// down-weighted by their coverage, and when every metric is completely dark
// the result is an explicit abstention (Abstained=true, nil Candidates) with
// the coverage evidence attached — never an error or panic. On a clean
// full-grid snapshot the result is identical to strict localization.
func (lo *Localizer) Localize(model *Model, production *metrics.Snapshot) (*Localization, error) {
	if model == nil {
		return nil, fmt.Errorf("core: localize: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: localize: %w", err)
	}
	if production == nil {
		return nil, fmt.Errorf("core: localize: nil production snapshot")
	}
	alpha := lo.alpha
	if alpha == 0 {
		alpha = model.Alpha
	}

	out := &Localization{
		Votes:          make(map[string]float64, len(model.Targets)),
		Anomalies:      make(map[string][]string, len(model.Metrics)),
		MetricWinners:  make(map[string][]string, len(model.Metrics)),
		MetricCoverage: make(map[string]float64, len(model.Metrics)),
		Degradation:    metrics.AssessOver(production, model.Metrics, model.Services),
	}

	testedAny := false
	for _, metric := range model.Metrics {
		anom, tested, err := lo.anomaliesTolerant(alpha, model, production, metric)
		if err != nil {
			return nil, err
		}
		coverage := 0.0
		if n := len(model.Services); n > 0 {
			coverage = float64(tested) / float64(n)
		}
		out.MetricCoverage[metric] = coverage
		if tested == 0 {
			// The metric is completely dark: no pair was testable, so
			// it can neither vote nor attest health.
			continue
		}
		testedAny = true
		out.Anomalies[metric] = anom
		if len(anom) == 0 {
			// Nothing anomalous under this metric: abstain rather
			// than vote for an arbitrary tie of everything.
			continue
		}
		anomSet := make(map[string]bool, len(anom))
		for _, s := range anom {
			anomSet[s] = true
		}

		// s* = argmax_s score(A(M), C(s, M)) over trained targets.
		best := -1.0
		var winners []string
		for _, target := range model.Targets {
			set := model.CausalSets[metric][target]
			var score float64
			switch lo.rule {
			case JaccardVote:
				u := unionSize(set, anomSet)
				if u > 0 {
					score = float64(intersectionSize(set, anomSet)) / float64(u)
				}
			default:
				score = float64(intersectionSize(set, anomSet))
			}
			switch {
			case score > best:
				best = score
				winners = []string{target}
			//vet:allow floateq -- tied targets compute the same integer ratio; exact tie detection is the vote-splitting rule
			case score == best:
				winners = append(winners, target)
			}
		}
		if best <= 0 {
			// The anomalies match no learned world at all.
			continue
		}
		if lo.rule == IntersectionVote {
			winners = mostParsimonious(model, metric, winners)
		}
		out.MetricWinners[metric] = winners
		// Ties split the metric's vote evenly; a partially covered metric
		// casts proportionally less mass (coverage 1 on clean data, so
		// the weighting is invisible there) — a metric that saw half its
		// services should not outvote one that saw them all.
		share := coverage / float64(len(winners))
		for _, w := range winners {
			out.Votes[w] += share
		}
	}

	if !testedAny {
		// Every metric was dark: abstain explicitly instead of guessing.
		out.Abstained = true
		return out, nil
	}
	out.Candidates = argmaxVotes(out.Votes)
	if len(out.Candidates) == 0 {
		// No metric voted: return the uninformative full candidate set.
		out.Candidates = append([]string(nil), model.Targets...)
		sort.Strings(out.Candidates)
	}
	return out, nil
}

// anomaliesTolerant computes A(metric) on a possibly-degraded production
// snapshot. A (metric, service) pair is tested only when both the model
// baseline and production carry at least minSamples finite points for it;
// untestable pairs are skipped. It returns the anomalous set and how many
// services were actually tested (the metric's coverage numerator).
func (lo *Localizer) anomaliesTolerant(alpha float64, model *Model, production *metrics.Snapshot, metric string) ([]string, int, error) {
	minSamples := lo.minSamples
	if minSamples < 1 {
		minSamples = DefaultMinSamples
	}
	var family []string
	var pvals []float64
	for _, svc := range model.Services {
		base, okB := model.Baseline.SeriesOK(metric, svc)
		prod, okP := production.SeriesOK(metric, svc)
		if !okB || !okP {
			continue
		}
		prod = finiteValues(prod)
		if len(base) < minSamples || len(prod) < minSamples {
			continue
		}
		p, err := lo.test.PValue(prod, base)
		if err != nil {
			return nil, 0, fmt.Errorf("core: anomaly test %s on %s: %w", metric, svc, err)
		}
		family = append(family, svc)
		pvals = append(pvals, p)
	}
	shifted, err := decideFamily(pvals, alpha, lo.fdrQ)
	if err != nil {
		return nil, 0, fmt.Errorf("core: anomalies: %w", err)
	}
	set := make(map[string]bool)
	for i, svc := range family {
		if shifted[i] {
			set[svc] = true
		}
	}
	return sortedSet(set), len(family), nil
}

// finiteValues returns the finite entries of s. When every entry is finite —
// the steady-state case — it returns s itself without allocating.
func finiteValues(s []float64) []float64 {
	clean := true
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	out := make([]float64, 0, len(s))
	for _, v := range s {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}

// mostParsimonious shrinks a tied winner list to the targets with the
// smallest causal set under the metric — the Occam refinement of the paper's
// "closest set" criterion. Raw intersection counting cannot separate a
// target whose causal world is a superset of another's (the entry service of
// a call graph causally covers everything, so it ties every comparison);
// among explanations covering the same anomalies, the one that predicts the
// fewest unobserved effects explains the data better.
func mostParsimonious(model *Model, metric string, winners []string) []string {
	if len(winners) <= 1 {
		return winners
	}
	minSize := -1
	for _, w := range winners {
		size := len(model.CausalSets[metric][w])
		if minSize == -1 || size < minSize {
			minSize = size
		}
	}
	out := winners[:0]
	for _, w := range winners {
		if len(model.CausalSets[metric][w]) == minSize {
			out = append(out, w)
		}
	}
	return out
}

// LocalizeMulti is the concurrent-fault extension of Algorithm 2: a greedy
// explain-away loop for up to k simultaneous faults. Each round scores every
// trained target against the *remaining* anomalies, commits the best
// explainer, removes the anomalies its worlds cover, and repeats until the
// anomalies are exhausted or k faults are named.
//
// The per-metric score is the precision-weighted F-measure (F_0.5) of the
// causal set against the anomaly set. Two failure modes shape this choice:
// raw intersection counting attributes every concurrent failure to the entry
// service (its universal world is a superset of any anomaly union), and even
// Jaccard lets one broad imprecise world outscore two exact narrow covers.
// Weighting precision doubly means a world that predicts unobserved
// anomalies is distrusted — whatever it fails to cover is simply explained
// by the next round.
func (lo *Localizer) LocalizeMulti(model *Model, production *metrics.Snapshot, k int) ([]string, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: localize-multi needs k >= 1, got %d", k)
	}
	if model == nil {
		return nil, fmt.Errorf("core: localize-multi: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: localize-multi: %w", err)
	}
	if production == nil {
		return nil, fmt.Errorf("core: localize-multi: nil production snapshot")
	}
	alpha := lo.alpha
	if alpha == 0 {
		alpha = model.Alpha
	}

	// Anomalies per metric, computed once and consumed round by round.
	// The tolerant path skips untestable pairs, so degraded production
	// snapshots narrow the anomaly evidence instead of erroring.
	remaining := make(map[string]map[string]bool, len(model.Metrics))
	for _, metric := range model.Metrics {
		anom, _, err := lo.anomaliesTolerant(alpha, model, production, metric)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(anom))
		for _, s := range anom {
			set[s] = true
		}
		remaining[metric] = set
	}

	var found []string
	taken := make(map[string]bool, k)
	for len(found) < k {
		best := 0.0
		winner := ""
		for _, target := range model.Targets {
			if taken[target] {
				continue
			}
			score := 0.0
			for _, metric := range model.Metrics {
				anom := remaining[metric]
				if len(anom) == 0 {
					continue
				}
				set := model.CausalSets[metric][target]
				inter := float64(intersectionSize(set, anom))
				if inter == 0 {
					continue
				}
				precision := inter / float64(len(set))
				recall := inter / float64(len(anom))
				// F_0.5 = 1.25·P·R / (0.25·P + R).
				score += 1.25 * precision * recall / (0.25*precision + recall)
			}
			//vet:allow floateq -- exact tie → alphabetical winner keeps greedy selection deterministic
			if score > best || (score == best && score > 0 && (winner == "" || target < winner)) {
				best = score
				winner = target
			}
		}
		if winner == "" {
			break
		}
		found = append(found, winner)
		taken[winner] = true
		// Explain away: the committed fault accounts for its worlds.
		for _, metric := range model.Metrics {
			for _, svc := range model.CausalSets[metric][winner] {
				delete(remaining[metric], svc)
			}
		}
	}
	return found, nil
}

// Ranked returns every target that received vote mass, ordered by
// descending votes (ties alphabetically). It supports the multi-fault
// extension: with k concurrent faults, each tends to win the metrics whose
// causal world it matches, so the true faults surface in the top ranks even
// though Algorithm 2 was designed for a single fault.
func (l *Localization) Ranked() []string {
	out := make([]string, 0, len(l.Votes))
	for s := range l.Votes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := l.Votes[out[i]], l.Votes[out[j]]
		//vet:allow floateq -- sort tie-break: exact equality falls through to the alphabetical order
		if vi != vj {
			return vi > vj
		}
		return out[i] < out[j]
	})
	return out
}

// argmaxVotes returns the sorted set of services holding the maximum
// positive vote mass.
func argmaxVotes(votes map[string]float64) []string {
	best := 0.0
	for _, v := range votes {
		if v > best {
			best = v
		}
	}
	if best == 0 {
		return nil
	}
	const eps = 1e-9
	var out []string
	for s, v := range votes {
		if v >= best-eps {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
