package core

import (
	"context"
	"math/rand"
	"testing"

	"causalfl/internal/metrics"
	"causalfl/internal/stats"
)

func TestWithFDRValidation(t *testing.T) {
	for _, q := range []float64{0, 1, -0.1, 2} {
		if _, err := NewLearner(WithFDR(q)); err == nil {
			t.Errorf("WithFDR(%v) accepted", q)
		}
		if _, err := NewLocalizer(WithFDR(q)); err == nil {
			t.Errorf("WithFDR(%v) accepted by NewLocalizer", q)
		}
	}
	if _, err := NewLearner(WithFDR(0.1)); err != nil {
		t.Fatal(err)
	}
}

func TestFDRPipelineStillLocalizes(t *testing.T) {
	f := newFixture()
	baseline := f.snapshot(nil)
	interventions := make(map[string]*metrics.Snapshot)
	for target, worlds := range f.groundTruth() {
		interventions[target] = f.snapshot(worlds)
	}
	learner, err := NewLearner(WithFDR(0.05))
	if err != nil {
		t.Fatal(err)
	}
	model, err := learner.Learn(context.Background(), baseline, interventions)
	if err != nil {
		t.Fatal(err)
	}
	localizer, err := NewLocalizer(WithFDR(0.05))
	if err != nil {
		t.Fatal(err)
	}
	for target, worlds := range f.groundTruth() {
		loc, err := localizer.Localize(context.Background(), model, f.snapshot(worlds))
		if err != nil {
			t.Fatal(err)
		}
		if !setEqual(loc.Candidates, target) {
			t.Errorf("FDR pipeline localized fault %s to %v", target, loc.Candidates)
		}
	}
}

func TestFDRSuppressesHealthyFalseAnomalies(t *testing.T) {
	// Over a large healthy family with an unguarded KS test, per-test
	// alpha flags ~5% of services while BH rarely flags any: the
	// multiple-testing motivation in one assertion.
	rng := rand.New(rand.NewSource(17))
	const nServices = 60
	services := make([]string, nServices)
	for i := range services {
		services[i] = string(rune('A'+i%26)) + string(rune('a'+i/26))
	}
	mk := func() *metrics.Snapshot {
		snap := metrics.NewSnapshot([]string{"m"}, services)
		for _, svc := range services {
			series := make([]float64, 19)
			for i := range series {
				series[i] = rng.NormFloat64()
			}
			snap.Data["m"][svc] = series
		}
		return snap
	}
	baseline := mk()
	production := mk()

	perTestAnoms := 0
	fdrAnoms := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		production = mk()
		perTest, err := Detect(context.Background(), DetectConfig{Test: stats.KSTest{}, Alpha: 0.05}, baseline, production, "m")
		if err != nil {
			t.Fatal(err)
		}
		fdr, err := Detect(context.Background(), DetectConfig{Test: stats.KSTest{}, FDR: 0.05}, baseline, production, "m")
		if err != nil {
			t.Fatal(err)
		}
		perTestAnoms += len(perTest.Anomalous)
		fdrAnoms += len(fdr.Anomalous)
	}
	if fdrAnoms >= perTestAnoms {
		t.Fatalf("BH flagged %d healthy anomalies vs %d for per-test alpha; FDR should shrink the family-wise error",
			fdrAnoms, perTestAnoms)
	}
}

func TestDetectFDRValidation(t *testing.T) {
	f := newFixture()
	snap := f.snapshot(nil)
	for _, q := range []float64{-0.1, 1, 2} {
		if _, err := Detect(context.Background(), DetectConfig{Test: stats.KSTest{}, FDR: q}, snap, snap, "m1"); err == nil {
			t.Errorf("FDR=%v accepted", q)
		}
	}
}
