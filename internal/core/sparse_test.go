package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"causalfl/internal/metrics"
)

// randomModel builds a valid model over n services with random causal sets
// (each target's set contains itself plus a random subset of the services).
func randomModel(rng *rand.Rand, n int) *Model {
	services := make([]string, n)
	for i := range services {
		services[i] = fmt.Sprintf("svc-%03d", i)
	}
	names := []string{"cpu", "rps", "lat"}
	targets := append([]string(nil), services...)
	sets := make(map[string]map[string][]string, len(names))
	for _, m := range names {
		per := make(map[string][]string, len(targets))
		for _, t := range targets {
			members := map[string]bool{t: true}
			for k := rng.Intn(4); k > 0; k-- {
				members[services[rng.Intn(n)]] = true
			}
			set := make([]string, 0, len(members))
			for s := range members {
				set = append(set, s)
			}
			sort.Strings(set)
			per[t] = set
		}
		sets[m] = per
	}
	return &Model{
		Services:   services,
		Metrics:    names,
		Targets:    targets,
		CausalSets: sets,
		Baseline:   metrics.NewSnapshot(names, services),
		Alpha:      DefaultAlpha,
	}
}

// randomDetections builds one detection per model metric with a random
// anomaly subset, exercising dark metrics, clean metrics and partial
// coverage.
func randomDetections(rng *rand.Rand, model *Model) []*Detection {
	out := make([]*Detection, len(model.Metrics))
	for i := range out {
		switch rng.Intn(6) {
		case 0: // dark metric
			out[i] = &Detection{Anomalous: []string{}, Tested: 0}
		case 1: // clean metric
			out[i] = &Detection{Anomalous: []string{}, Tested: len(model.Services)}
		default:
			members := map[string]bool{}
			for k := 1 + rng.Intn(4); k > 0; k-- {
				members[model.Services[rng.Intn(len(model.Services))]] = true
			}
			anom := make([]string, 0, len(members))
			for s := range members {
				anom = append(anom, s)
			}
			sort.Strings(anom)
			tested := len(anom) + rng.Intn(len(model.Services)-len(anom)+1)
			out[i] = &Detection{Anomalous: anom, Tested: tested}
		}
	}
	return out
}

// TestAggregateIndexedMatchesDense is the sparse path's conformance property:
// over random models, random anomaly evidence and every vote rule, the
// indexed aggregation is DeepEqual to the dense reference.
func TestAggregateIndexedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		model := randomModel(rng, 3+rng.Intn(30))
		idx, err := NewCausalIndex(model)
		if err != nil {
			t.Fatalf("trial %d: NewCausalIndex: %v", trial, err)
		}
		for _, rule := range []VoteRule{IntersectionVote, JaccardVote, PureIntersectionVote} {
			lo, err := NewLocalizer(WithVoteRule(rule))
			if err != nil {
				t.Fatal(err)
			}
			detections := randomDetections(rng, model)
			want, err1 := lo.Aggregate(model, detections)
			got, err2 := lo.AggregateIndexed(idx, detections)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d rule %v: dense err=%v sparse err=%v", trial, rule, err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d rule %v: sparse diverges from dense\n dense: %+v\nsparse: %+v", trial, rule, want, got)
			}
		}
	}
}

func TestCausalIndexValidation(t *testing.T) {
	if _, err := NewCausalIndex(nil); err == nil {
		t.Fatal("nil model accepted")
	}
	rng := rand.New(rand.NewSource(1))
	model := randomModel(rng, 5)
	model.CausalSets["cpu"][model.Targets[0]] = []string{model.Targets[0], "svc-001", "svc-001"}
	if _, err := NewCausalIndex(model); err == nil {
		t.Fatal("duplicated causal-set member accepted")
	}

	model = randomModel(rng, 5)
	idx, err := NewCausalIndex(model)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Model() != model {
		t.Fatal("Model() does not return the indexed model")
	}
	wantPostings := 0
	for _, per := range model.CausalSets {
		for _, set := range per {
			wantPostings += len(set)
		}
	}
	if got := idx.Postings(); got != wantPostings {
		t.Fatalf("Postings = %d, want %d", got, wantPostings)
	}

	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lo.AggregateIndexed(nil, nil); err == nil {
		t.Fatal("nil index accepted")
	}
	if _, err := lo.AggregateIndexed(idx, nil); err == nil {
		t.Fatal("misaligned detections accepted")
	}
}
