package core

import (
	"fmt"

	"causalfl/internal/stats"
)

// settings is the shared configuration of the Learner and the Localizer.
// Both algorithms run the same statistical machinery — a two-sample test per
// (metric, service) pair, a per-family rejection decision, a minimum-sample
// guard — so they are configured through one option vocabulary; vote rules
// only affect localization and are ignored by the learner.
type settings struct {
	alpha      float64
	test       stats.TwoSampleTest
	fdrQ       float64
	minSamples int
	rule       VoteRule
	workers    int
}

// Option configures a Learner or a Localizer. Every option is accepted by
// both NewLearner and NewLocalizer; options that only apply to one algorithm
// (WithVoteRule) are validated but ignored by the other.
type Option func(*settings) error

// WithAlpha sets the significance level of the distribution-shift decision.
// The learner defaults to DefaultAlpha; the localizer defaults to the trained
// model's alpha.
func WithAlpha(alpha float64) Option {
	return func(s *settings) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("core: alpha must be in (0,1), got %v", alpha)
		}
		s.alpha = alpha
		return nil
	}
}

// WithTest replaces the default two-sample test (a KS test wrapped in the
// practical-equivalence guard).
func WithTest(t stats.TwoSampleTest) Option {
	return func(s *settings) error {
		if t == nil {
			return fmt.Errorf("core: nil two-sample test")
		}
		s.test = t
		return nil
	}
}

// WithFDR switches the per-metric anomaly decision from per-test alpha
// thresholds to Benjamini-Hochberg false-discovery-rate control at level q.
// Algorithm 1 tests every other service per metric per intervention — a
// multiple-testing family whose false-anomaly count grows with application
// size under fixed alpha; FDR control keeps it proportional to the
// discoveries actually made.
func WithFDR(q float64) Option {
	return func(s *settings) error {
		if q <= 0 || q >= 1 {
			return fmt.Errorf("core: FDR level must be in (0,1), got %v", q)
		}
		s.fdrQ = q
		return nil
	}
}

// WithMinSamples overrides the minimum series length required to run a
// two-sample comparison on a (metric, service) pair (default
// DefaultMinSamples). Pairs with fewer finite points on either side are
// skipped, not tested.
func WithMinSamples(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("core: min samples must be >= 1, got %d", n)
		}
		s.minSamples = n
		return nil
	}
}

// WithVoteRule selects the localizer's per-metric scoring rule. The learner
// accepts but ignores it.
func WithVoteRule(rule VoteRule) Option {
	return func(s *settings) error {
		if rule != IntersectionVote && rule != JaccardVote && rule != PureIntersectionVote {
			return fmt.Errorf("core: unknown vote rule %d", rule)
		}
		s.rule = rule
		return nil
	}
}

// WithWorkers bounds the worker pool that fans out the per-target KS matrix
// (learning) and the per-metric anomaly detection (localization). Zero — the
// default — selects GOMAXPROCS at the point of use. Output is byte-identical
// at every worker count; only wall-clock changes.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("core: worker count must be >= 0, got %d", n)
		}
		s.workers = n
		return nil
	}
}

// applyOptions folds opts into a settings value seeded with defaults.
func applyOptions(defaults settings, opts []Option) (settings, error) {
	s := defaults
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return s, err
		}
	}
	return s, nil
}
