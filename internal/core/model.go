// Package core implements the paper's contribution: fault-injection-driven
// interventional causal learning (Algorithm 1) and majority-voting fault
// localization (Algorithm 2).
//
// Algorithm 1 learns, for every metric M and every injectable service s, the
// causal set C(s, M): the services whose metric-M distribution shifts when a
// fault is injected into s. Deliberately, one causal world is kept *per
// metric* — the paper demonstrates (§III-A, §VI-B) that different metrics
// observe genuinely different propagation graphs (response-path error logs
// vs request-path omissions), so collapsing them into a single causal graph
// destroys identifiability.
//
// Algorithm 2 localizes: given production data, it computes the anomalous
// set A(M) per metric, lets each metric vote for the service whose learned
// causal set best matches A(M), and returns the majority vote.
package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"causalfl/internal/metrics"
)

// Model is the trained artifact of Algorithm 1: the causal sets plus the
// fault-free baseline dataset needed at localization time.
type Model struct {
	// Services is the service universe S.
	Services []string `json:"services"`
	// Metrics lists the metric names M the model was trained with.
	Metrics []string `json:"metrics"`
	// Targets lists the services that were fault-injected during training
	// (the candidate set of Algorithm 2's argmax).
	Targets []string `json:"targets"`
	// CausalSets maps metric -> injected service -> sorted causal set
	// C(s, M). Each set contains the injected service itself (Algorithm 1
	// line 9) plus every service whose distribution shifted.
	CausalSets map[string]map[string][]string `json:"causal_sets"`
	// Baseline is the fault-free training dataset D_0, retained because
	// Algorithm 2 compares production series against it.
	Baseline *metrics.Snapshot `json:"baseline"`
	// Alpha is the significance level used for the KS decisions.
	Alpha float64 `json:"alpha"`
}

// CausalSet returns C(s, M) as a sorted slice (copy).
func (m *Model) CausalSet(metric, target string) ([]string, error) {
	byTarget, ok := m.CausalSets[metric]
	if !ok {
		return nil, fmt.Errorf("core: model has no metric %q", metric)
	}
	set, ok := byTarget[target]
	if !ok {
		return nil, fmt.Errorf("core: model metric %q has no target %q", metric, target)
	}
	return append([]string(nil), set...), nil
}

// Validate checks structural consistency of the model.
func (m *Model) Validate() error {
	if len(m.Services) == 0 {
		return fmt.Errorf("core: model has no services")
	}
	if len(m.Metrics) == 0 {
		return fmt.Errorf("core: model has no metrics")
	}
	if len(m.Targets) == 0 {
		return fmt.Errorf("core: model has no trained targets")
	}
	if m.Alpha <= 0 || m.Alpha >= 1 {
		return fmt.Errorf("core: model alpha %v outside (0,1)", m.Alpha)
	}
	if m.Baseline == nil {
		return fmt.Errorf("core: model lacks baseline dataset")
	}
	known := make(map[string]bool, len(m.Services))
	for _, s := range m.Services {
		known[s] = true
	}
	for _, metric := range m.Metrics {
		byTarget, ok := m.CausalSets[metric]
		if !ok {
			return fmt.Errorf("core: model missing causal sets for metric %q", metric)
		}
		for _, target := range m.Targets {
			set, ok := byTarget[target]
			if !ok {
				return fmt.Errorf("core: metric %q missing causal set for target %q", metric, target)
			}
			selfIncluded := false
			for _, svc := range set {
				if !known[svc] {
					return fmt.Errorf("core: causal set C(%s,%s) contains unknown service %q", target, metric, svc)
				}
				if svc == target {
					selfIncluded = true
				}
			}
			if !selfIncluded {
				return fmt.Errorf("core: causal set C(%s,%s) does not contain the injected service", target, metric)
			}
		}
	}
	// Tolerant on purpose: a baseline learned from degraded telemetry may
	// legitimately lack (metric, service) pairs that repair dropped.
	return m.Baseline.ValidateTolerant()
}

// Describe renders the model's causal worlds as text: one block per metric,
// one line per injected service, matching the presentation of the paper's
// §VI-B example.
func (m *Model) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "causal model: %d services, %d metrics, %d trained targets, alpha=%.2f\n",
		len(m.Services), len(m.Metrics), len(m.Targets), m.Alpha)
	for _, metric := range m.Metrics {
		fmt.Fprintf(&b, "metric %s:\n", metric)
		for _, target := range m.Targets {
			fmt.Fprintf(&b, "  C(%s) = {%s}\n", target, strings.Join(m.CausalSets[metric][target], ", "))
		}
	}
	return b.String()
}

// WriteJSON serializes the model for persistence.
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// ReadModel deserializes a model written by WriteJSON and validates it.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// sortedSet turns a membership map into a sorted slice.
func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s, in := range set {
		if in {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// intersectionSize counts |a ∩ b| for sorted-or-not string slices.
func intersectionSize(a []string, b map[string]bool) int {
	n := 0
	for _, s := range a {
		if b[s] {
			n++
		}
	}
	return n
}

// unionSize counts |a ∪ b|.
func unionSize(a []string, b map[string]bool) int {
	seen := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		seen[s] = true
	}
	for s, in := range b {
		if in {
			seen[s] = true
		}
	}
	return len(seen)
}
