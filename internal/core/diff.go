package core

import (
	"fmt"
	"sort"
	"strings"
)

// Model drift tooling. Causal worlds age: deployments change call paths,
// feature flags reroute traffic, logging disciplines change. DiffModels
// compares two trained models so operators can see *what* changed and decide
// whether localization can still be trusted — the retrain-or-not question
// the paper's conclusion leaves open.

// SetChange records one causal set whose membership changed.
type SetChange struct {
	Metric  string
	Target  string
	Added   []string
	Removed []string
}

// ModelDiff summarizes the differences between two models.
type ModelDiff struct {
	AddedTargets   []string
	RemovedTargets []string
	AddedMetrics   []string
	RemovedMetrics []string
	ChangedSets    []SetChange
}

// Empty reports whether the models agree completely.
func (d *ModelDiff) Empty() bool {
	return len(d.AddedTargets) == 0 && len(d.RemovedTargets) == 0 &&
		len(d.AddedMetrics) == 0 && len(d.RemovedMetrics) == 0 &&
		len(d.ChangedSets) == 0
}

// String renders the diff.
func (d *ModelDiff) String() string {
	if d.Empty() {
		return "models agree: no drift\n"
	}
	var b strings.Builder
	writeList := func(label string, items []string) {
		if len(items) > 0 {
			fmt.Fprintf(&b, "%s: %s\n", label, strings.Join(items, ", "))
		}
	}
	writeList("targets added", d.AddedTargets)
	writeList("targets removed", d.RemovedTargets)
	writeList("metrics added", d.AddedMetrics)
	writeList("metrics removed", d.RemovedMetrics)
	for _, c := range d.ChangedSets {
		fmt.Fprintf(&b, "C(%s, %s):", c.Target, c.Metric)
		for _, s := range c.Added {
			fmt.Fprintf(&b, " +%s", s)
		}
		for _, s := range c.Removed {
			fmt.Fprintf(&b, " -%s", s)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// DiffModels compares two validated models. Only metric/target combinations
// present in both are diffed for membership changes; added/removed metrics
// and targets are reported separately.
func DiffModels(oldModel, newModel *Model) (*ModelDiff, error) {
	if oldModel == nil || newModel == nil {
		return nil, fmt.Errorf("core: diff needs two models")
	}
	if err := oldModel.Validate(); err != nil {
		return nil, fmt.Errorf("core: diff: old model: %w", err)
	}
	if err := newModel.Validate(); err != nil {
		return nil, fmt.Errorf("core: diff: new model: %w", err)
	}
	d := &ModelDiff{}
	d.AddedTargets, d.RemovedTargets = setDelta(oldModel.Targets, newModel.Targets)
	d.AddedMetrics, d.RemovedMetrics = setDelta(oldModel.Metrics, newModel.Metrics)

	sharedMetrics := intersect(oldModel.Metrics, newModel.Metrics)
	sharedTargets := intersect(oldModel.Targets, newModel.Targets)
	for _, metric := range sharedMetrics {
		for _, target := range sharedTargets {
			oldSet := oldModel.CausalSets[metric][target]
			newSet := newModel.CausalSets[metric][target]
			added, removed := setDelta(oldSet, newSet)
			if len(added) > 0 || len(removed) > 0 {
				d.ChangedSets = append(d.ChangedSets, SetChange{
					Metric:  metric,
					Target:  target,
					Added:   added,
					Removed: removed,
				})
			}
		}
	}
	sort.Slice(d.ChangedSets, func(i, j int) bool {
		a, c := d.ChangedSets[i], d.ChangedSets[j]
		if a.Metric != c.Metric {
			return a.Metric < c.Metric
		}
		return a.Target < c.Target
	})
	return d, nil
}

// setDelta returns new-but-not-old (added) and old-but-not-new (removed),
// sorted.
func setDelta(oldSet, newSet []string) (added, removed []string) {
	oldM := make(map[string]bool, len(oldSet))
	for _, s := range oldSet {
		oldM[s] = true
	}
	newM := make(map[string]bool, len(newSet))
	for _, s := range newSet {
		newM[s] = true
	}
	for s := range newM {
		if !oldM[s] {
			added = append(added, s)
		}
	}
	for s := range oldM {
		if !newM[s] {
			removed = append(removed, s)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// intersect returns the elements of a that also appear in b, preserving a's
// order.
func intersect(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	var out []string
	for _, s := range a {
		if inB[s] {
			out = append(out, s)
		}
	}
	return out
}
