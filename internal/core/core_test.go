package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"causalfl/internal/metrics"
	"causalfl/internal/stats"
)

// fixture builds synthetic datasets over services {a,b,c,d} and metrics
// {m1,m2} where the ground-truth causal worlds are:
//
//	m1: fault in a -> shifts {a, b};   fault in c -> shifts {c}
//	m2: fault in a -> shifts {a, d};   fault in c -> shifts {c, b}
//
// Series are Gaussian noise around per-service means; "shifted" series get a
// large mean offset so the KS decision is unambiguous.
type fixture struct {
	services []string
	metrics  []string
	rng      *rand.Rand
}

func newFixture() *fixture {
	return &fixture{
		services: []string{"a", "b", "c", "d"},
		metrics:  []string{"m1", "m2"},
		rng:      rand.New(rand.NewSource(7)),
	}
}

// snapshot produces a dataset where shifted[metric][service] marks series
// drawn from the shifted distribution.
func (f *fixture) snapshot(shifted map[string]map[string]bool) *metrics.Snapshot {
	const n = 20
	snap := metrics.NewSnapshot(f.metrics, f.services)
	for _, m := range f.metrics {
		for _, svc := range f.services {
			series := make([]float64, n)
			offset := 0.0
			if shifted != nil && shifted[m][svc] {
				offset = 8.0
			}
			for i := range series {
				series[i] = 10 + offset + f.rng.NormFloat64()
			}
			snap.Data[m][svc] = series
		}
	}
	return snap
}

func (f *fixture) groundTruth() map[string]map[string]map[string]bool {
	return map[string]map[string]map[string]bool{
		"a": {
			"m1": {"a": true, "b": true},
			"m2": {"a": true, "d": true},
		},
		"c": {
			"m1": {"c": true},
			"m2": {"c": true, "b": true},
		},
	}
}

func (f *fixture) trainModel(t *testing.T) *Model {
	t.Helper()
	baseline := f.snapshot(nil)
	interventions := make(map[string]*metrics.Snapshot)
	for target, worlds := range f.groundTruth() {
		interventions[target] = f.snapshot(worlds)
	}
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	model, err := l.Learn(context.Background(), baseline, interventions)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func setEqual(got []string, want ...string) bool {
	if len(got) != len(want) {
		return false
	}
	m := make(map[string]bool, len(got))
	for _, s := range got {
		m[s] = true
	}
	for _, s := range want {
		if !m[s] {
			return false
		}
	}
	return true
}

func TestLearnerRecoversPerMetricCausalSets(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		metric, target string
		want           []string
	}{
		{"m1", "a", []string{"a", "b"}},
		{"m2", "a", []string{"a", "d"}},
		{"m1", "c", []string{"c"}},
		{"m2", "c", []string{"b", "c"}},
	}
	for _, tt := range tests {
		got, err := model.CausalSet(tt.metric, tt.target)
		if err != nil {
			t.Fatal(err)
		}
		if !setEqual(got, tt.want...) {
			t.Errorf("C(%s,%s) = %v, want %v", tt.target, tt.metric, got, tt.want)
		}
	}
	// The per-metric worlds for the same intervention genuinely differ —
	// the central observation of the paper (§VI-B).
	m1, _ := model.CausalSet("m1", "a")
	m2, _ := model.CausalSet("m2", "a")
	if setEqual(m1, m2...) {
		t.Error("per-metric causal worlds collapsed; fixture should make them differ")
	}
}

func TestLearnerValidation(t *testing.T) {
	f := newFixture()
	baseline := f.snapshot(nil)
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Learn(context.Background(), nil, map[string]*metrics.Snapshot{"a": baseline}); err == nil {
		t.Error("accepted nil baseline")
	}
	if _, err := l.Learn(context.Background(), baseline, nil); err == nil {
		t.Error("accepted empty interventions")
	}
	if _, err := l.Learn(context.Background(), baseline, map[string]*metrics.Snapshot{"ghost": f.snapshot(nil)}); err == nil {
		t.Error("accepted intervention on service outside the universe")
	}
}

func TestNewLearnerOptions(t *testing.T) {
	if _, err := NewLearner(WithAlpha(0)); err == nil {
		t.Error("accepted alpha 0")
	}
	if _, err := NewLearner(WithAlpha(1)); err == nil {
		t.Error("accepted alpha 1")
	}
	if _, err := NewLearner(WithTest(nil)); err == nil {
		t.Error("accepted nil test")
	}
	l, err := NewLearner(WithAlpha(0.01), WithTest(stats.PermutationTest{Rounds: 50, Seed: 1}))
	if err != nil || l.alpha != 0.01 {
		t.Errorf("options not applied: %+v err=%v", l, err)
	}
}

func TestLocalizerFindsInjectedFault(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	for target, worlds := range f.groundTruth() {
		production := f.snapshot(worlds)
		loc, err := lo.Localize(context.Background(), model, production)
		if err != nil {
			t.Fatal(err)
		}
		if !setEqual(loc.Candidates, target) {
			t.Errorf("fault in %s localized to %v (votes %v)", target, loc.Candidates, loc.Votes)
		}
		if len(loc.Anomalies) == 0 {
			t.Error("localization carries no anomaly explanation")
		}
	}
}

func TestLocalizerNoAnomaliesReturnsAllTargets(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	// Production data identical to the baseline: KS distance is zero
	// everywhere, so no metric votes. (A *fresh* healthy sample may still
	// trip ~5% of the per-service tests at alpha=0.05 — that inherent
	// false-positive rate is exercised by the campaign tests instead.)
	loc, err := lo.Localize(context.Background(), model, model.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !setEqual(loc.Candidates, model.Targets...) {
		t.Errorf("healthy data localized to %v, want full target set %v", loc.Candidates, model.Targets)
	}
	if len(loc.Votes) != 0 {
		t.Errorf("healthy data produced votes %v", loc.Votes)
	}
}

func TestLocalizerTieSplitsVotes(t *testing.T) {
	// Build a model with two targets whose causal sets are identical for
	// the single metric; production anomalies then tie and the vote
	// splits, yielding both candidates.
	baseline := metrics.NewSnapshot([]string{"m"}, []string{"x", "y"})
	rng := rand.New(rand.NewSource(3))
	mk := func(offset float64) []float64 {
		s := make([]float64, 20)
		for i := range s {
			s[i] = 5 + offset + rng.NormFloat64()
		}
		return s
	}
	baseline.Data["m"]["x"] = mk(0)
	baseline.Data["m"]["y"] = mk(0)

	model := &Model{
		Services: []string{"x", "y"},
		Metrics:  []string{"m"},
		Targets:  []string{"x", "y"},
		CausalSets: map[string]map[string][]string{
			"m": {
				"x": {"x", "y"},
				"y": {"x", "y"},
			},
		},
		Baseline: baseline,
		Alpha:    0.05,
	}
	production := metrics.NewSnapshot([]string{"m"}, []string{"x", "y"})
	production.Data["m"]["x"] = mk(8)
	production.Data["m"]["y"] = mk(8)

	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := lo.Localize(context.Background(), model, production)
	if err != nil {
		t.Fatal(err)
	}
	if !setEqual(loc.Candidates, "x", "y") {
		t.Fatalf("indistinguishable worlds localized to %v, want {x,y}", loc.Candidates)
	}
	if loc.Votes["x"] != 0.5 || loc.Votes["y"] != 0.5 {
		t.Fatalf("tied vote mass = %v, want 0.5/0.5", loc.Votes)
	}
}

func TestLocalizerJaccardPenalizesBroadSets(t *testing.T) {
	// Target "wide" claims everything is causally affected; "narrow"
	// claims exactly the observed anomalies. Intersection voting ties
	// narrow with wide only if |A∩C| differs; Jaccard prefers narrow.
	services := []string{"p", "q", "r"}
	baseline := metrics.NewSnapshot([]string{"m"}, services)
	rng := rand.New(rand.NewSource(4))
	mk := func(offset float64) []float64 {
		s := make([]float64, 20)
		for i := range s {
			s[i] = offset + rng.NormFloat64()
		}
		return s
	}
	for _, svc := range services {
		baseline.Data["m"][svc] = mk(0)
	}
	model := &Model{
		Services: services,
		Metrics:  []string{"m"},
		Targets:  []string{"p", "q"},
		CausalSets: map[string]map[string][]string{
			"m": {
				"p": {"p", "q", "r"}, // wide
				"q": {"p", "q"},      // narrow, matches anomalies exactly
			},
		},
		Baseline: baseline,
		Alpha:    0.05,
	}
	production := metrics.NewSnapshot([]string{"m"}, services)
	production.Data["m"]["p"] = mk(8)
	production.Data["m"]["q"] = mk(8)
	production.Data["m"]["r"] = mk(0)

	inter, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	locInter, err := inter.Localize(context.Background(), model, production)
	if err != nil {
		t.Fatal(err)
	}
	// Intersection: both score 2, and the parsimony tie-break prefers the
	// narrower explanation q.
	if !setEqual(locInter.Candidates, "q") {
		t.Fatalf("intersection vote candidates = %v, want {q} via parsimony tie-break", locInter.Candidates)
	}

	jac, err := NewLocalizer(WithVoteRule(JaccardVote))
	if err != nil {
		t.Fatal(err)
	}
	locJac, err := jac.Localize(context.Background(), model, production)
	if err != nil {
		t.Fatal(err)
	}
	if !setEqual(locJac.Candidates, "q") {
		t.Fatalf("jaccard vote candidates = %v, want {q}", locJac.Candidates)
	}
}

func TestLocalizerValidation(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lo.Localize(context.Background(), nil, f.snapshot(nil)); err == nil {
		t.Error("accepted nil model")
	}
	if _, err := lo.Localize(context.Background(), model, nil); err == nil {
		t.Error("accepted nil production")
	}
	if _, err := NewLocalizer(WithVoteRule(VoteRule(99))); err == nil {
		t.Error("accepted unknown vote rule")
	}
	if _, err := NewLocalizer(WithAlpha(2)); err == nil {
		t.Error("accepted alpha 2")
	}
	if _, err := NewLocalizer(WithTest(nil)); err == nil {
		t.Error("accepted nil test")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	var buf bytes.Buffer
	if err := model.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Targets) != len(model.Targets) || back.Alpha != model.Alpha {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	got, err := back.CausalSet("m1", "a")
	if err != nil {
		t.Fatal(err)
	}
	if !setEqual(got, "a", "b") {
		t.Fatalf("round-tripped C(a,m1) = %v", got)
	}
	// Localization must still work with a reloaded model.
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := lo.Localize(context.Background(), back, f.snapshot(f.groundTruth()["a"]))
	if err != nil {
		t.Fatal(err)
	}
	if !setEqual(loc.Candidates, "a") {
		t.Fatalf("reloaded model localized to %v", loc.Candidates)
	}
}

func TestReadModelRejectsCorrupt(t *testing.T) {
	if _, err := ReadModel(bytes.NewBufferString("{")); err == nil {
		t.Error("accepted truncated JSON")
	}
	if _, err := ReadModel(bytes.NewBufferString(`{"services":[]}`)); err == nil {
		t.Error("accepted structurally invalid model")
	}
}

func TestModelValidateCatchesMissingSelf(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	model.CausalSets["m1"]["a"] = []string{"b"} // drop the self-inclusion
	if err := model.Validate(); err == nil {
		t.Error("Validate accepted causal set missing the injected service")
	}
}

func TestDetectDirectly(t *testing.T) {
	f := newFixture()
	baseline := f.snapshot(nil)
	production := f.snapshot(map[string]map[string]bool{
		"m1": {"b": true, "d": true},
	})
	cfg := DetectConfig{Test: stats.KSTest{}, Alpha: 0.05}
	det, err := Detect(context.Background(), cfg, baseline, production, "m1")
	if err != nil {
		t.Fatal(err)
	}
	if !setEqual(det.Anomalous, "b", "d") {
		t.Fatalf("anomalies = %v, want {b,d}", det.Anomalous)
	}
	if _, err := Detect(context.Background(), cfg, baseline, production, "ghost"); err == nil {
		t.Error("accepted unknown metric")
	}
}
