package core_test

import (
	"context"
	"fmt"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
)

// series builds a constant-ish window series around level with a small
// deterministic wobble (so the example stays reproducible).
func series(level float64) []float64 {
	out := make([]float64, 12)
	for i := range out {
		out[i] = level + float64(i%3)*0.1
	}
	return out
}

// snapshot builds a dataset over two services and one metric; faulty marks
// the services whose distribution carries a large shift.
func snapshot(faulty map[string]bool) *metrics.Snapshot {
	snap := metrics.NewSnapshot([]string{"cpu_per_rx"}, []string{"frontend", "backend"})
	for _, svc := range []string{"frontend", "backend"} {
		level := 5.0
		if faulty[svc] {
			level = 50.0
		}
		snap.Data["cpu_per_rx"][svc] = series(level)
	}
	return snap
}

// Example shows the full Algorithm 1 + Algorithm 2 loop on a two-service
// system: train by injecting a fault into the backend, then localize a
// production incident with the same signature.
func Example() {
	baseline := snapshot(nil)
	// A fault injected in the backend shifted both services' metrics
	// (the frontend depends on the backend).
	interventions := map[string]*metrics.Snapshot{
		"backend": snapshot(map[string]bool{"backend": true, "frontend": true}),
	}

	learner, err := core.NewLearner()
	if err != nil {
		panic(err)
	}
	model, err := learner.Learn(context.Background(), baseline, interventions)
	if err != nil {
		panic(err)
	}
	set, err := model.CausalSet("cpu_per_rx", "backend")
	if err != nil {
		panic(err)
	}
	fmt.Println("C(backend, cpu_per_rx) =", set)

	localizer, err := core.NewLocalizer()
	if err != nil {
		panic(err)
	}
	production := snapshot(map[string]bool{"backend": true, "frontend": true})
	loc, err := localizer.Localize(context.Background(), model, production)
	if err != nil {
		panic(err)
	}
	fmt.Println("localized to:", loc.Candidates)
	// Output:
	// C(backend, cpu_per_rx) = [backend frontend]
	// localized to: [backend]
}
