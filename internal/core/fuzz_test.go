package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadModel hardens the model parser against corrupt or hostile input:
// it must either return an error or a model that passes Validate — never
// panic, never return an inconsistent model.
func FuzzReadModel(f *testing.F) {
	// Seed with a real model.
	valid := `{
	  "services": ["a", "b"],
	  "metrics": ["m"],
	  "targets": ["a"],
	  "causal_sets": {"m": {"a": ["a", "b"]}},
	  "baseline": {"metrics": ["m"], "services": ["a", "b"],
	    "data": {"m": {"a": [1, 2], "b": [1, 2]}}},
	  "alpha": 0.05
	}`
	f.Add(valid)
	f.Add(`{}`)
	f.Add(`{"services": null}`)
	f.Add(`[1,2,3]`)
	f.Add(strings.Replace(valid, `"a", "b"`, `"a"`, 1))
	f.Add(strings.Replace(valid, `0.05`, `7`, 1))
	f.Fuzz(func(t *testing.T, raw string) {
		model, err := ReadModel(bytes.NewBufferString(raw))
		if err != nil {
			return
		}
		if model == nil {
			t.Fatal("nil model without error")
		}
		if err := model.Validate(); err != nil {
			t.Fatalf("ReadModel returned invalid model: %v", err)
		}
	})
}
