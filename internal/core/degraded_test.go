package core

import (
	"context"
	"math"
	"testing"

	"causalfl/internal/metrics"
)

// TestLocalizePartialSnapshots drives Localize through the degraded-input
// table: every case must return a result — possibly an abstention — with a
// degradation report attached, and must never error or panic.
func TestLocalizePartialSnapshots(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}

	allNaN := func() *metrics.Snapshot {
		snap := metrics.NewSnapshot(f.metrics, f.services)
		for _, m := range f.metrics {
			for _, svc := range f.services {
				series := make([]float64, 20)
				for i := range series {
					series[i] = math.NaN()
				}
				snap.Data[m][svc] = series
			}
		}
		return snap
	}

	tests := []struct {
		name          string
		production    func() *metrics.Snapshot
		wantAbstain   bool
		wantDegraded  bool   // snapshot-level report must flag degradation
		wantCandidate string // checked only when non-empty
	}{
		{
			name: "empty snapshot",
			production: func() *metrics.Snapshot {
				return metrics.NewSnapshot(f.metrics, f.services)
			},
			wantAbstain:  true,
			wantDegraded: true,
		},
		{
			name: "fully missing metric",
			production: func() *metrics.Snapshot {
				snap := f.snapshot(f.groundTruth()["a"])
				delete(snap.Data, "m2")
				return snap
			},
			wantCandidate: "a",
		},
		{
			name: "fully missing service",
			production: func() *metrics.Snapshot {
				snap := f.snapshot(f.groundTruth()["c"])
				for _, m := range f.metrics {
					delete(snap.Data[m], "d")
				}
				return snap
			},
			wantCandidate: "c",
		},
		{
			name:         "all series NaN",
			production:   allNaN,
			wantAbstain:  true,
			wantDegraded: true,
		},
		{
			// Series exist and are finite, just too short to test: the
			// snapshot-level report stays clean; the abstention evidence
			// lives in MetricCoverage instead.
			name: "short series below min samples",
			production: func() *metrics.Snapshot {
				snap := metrics.NewSnapshot(f.metrics, f.services)
				for _, m := range f.metrics {
					for _, svc := range f.services {
						snap.Data[m][svc] = []float64{1, 2}
					}
				}
				return snap
			},
			wantAbstain: true,
		},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			loc, err := lo.Localize(context.Background(), model, tt.production())
			if err != nil {
				t.Fatalf("Localize errored on degraded input: %v", err)
			}
			if loc.Degradation == nil {
				t.Fatal("no degradation report attached")
			}
			if loc.Abstained != tt.wantAbstain {
				t.Fatalf("Abstained = %v, want %v (candidates %v, coverage %v)",
					loc.Abstained, tt.wantAbstain, loc.Candidates, loc.MetricCoverage)
			}
			if tt.wantAbstain {
				if loc.Candidates != nil {
					t.Fatalf("abstention carries candidates %v", loc.Candidates)
				}
				// Abstention must come with coverage evidence.
				for m, cov := range loc.MetricCoverage {
					if cov != 0 {
						t.Errorf("abstained but metric %s coverage = %v", m, cov)
					}
				}
				if tt.wantDegraded && !loc.Degradation.Degraded() {
					t.Error("abstained but degradation report claims clean")
				}
				return
			}
			if tt.wantCandidate != "" && !setEqual(loc.Candidates, tt.wantCandidate) {
				t.Fatalf("candidates = %v, want {%s}", loc.Candidates, tt.wantCandidate)
			}
		})
	}
}

func TestLocalizeMissingMetricReportsCoverage(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	production := f.snapshot(f.groundTruth()["a"])
	delete(production.Data, "m2")
	loc, err := lo.Localize(context.Background(), model, production)
	if err != nil {
		t.Fatal(err)
	}
	if got := loc.MetricCoverage["m2"]; got != 0 {
		t.Errorf("dark metric m2 coverage = %v, want 0", got)
	}
	if got := loc.MetricCoverage["m1"]; got != 1 {
		t.Errorf("intact metric m1 coverage = %v, want 1", got)
	}
	if _, ok := loc.Anomalies["m2"]; ok {
		t.Error("dark metric m2 contributed an anomaly set")
	}
	if loc.Degradation.MissingPairs != len(f.services) {
		t.Errorf("MissingPairs = %d, want %d", loc.Degradation.MissingPairs, len(f.services))
	}
}

func TestLocalizeDownWeightsPartialMetrics(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	// Fault in a. m1 is fully covered; m2 lost half its services (c and d),
	// so its vote for a carries weight 0.5 instead of 1.
	production := f.snapshot(f.groundTruth()["a"])
	delete(production.Data["m2"], "c")
	delete(production.Data["m2"], "d")
	loc, err := lo.Localize(context.Background(), model, production)
	if err != nil {
		t.Fatal(err)
	}
	if !setEqual(loc.Candidates, "a") {
		t.Fatalf("candidates = %v, want {a}", loc.Candidates)
	}
	if got := loc.MetricCoverage["m2"]; got != 0.5 {
		t.Fatalf("m2 coverage = %v, want 0.5", got)
	}
	const eps = 1e-9
	if got := loc.Votes["a"]; math.Abs(got-1.5) > eps {
		t.Fatalf("votes for a = %v, want 1.5 (1.0 from m1 + 0.5 from half-covered m2)", got)
	}
}

func TestLocalizeCleanSnapshotUnchanged(t *testing.T) {
	f := newFixture()
	model := f.trainModel(t)
	lo, err := NewLocalizer()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := lo.Localize(context.Background(), model, f.snapshot(f.groundTruth()["c"]))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Abstained {
		t.Fatal("clean snapshot abstained")
	}
	if !setEqual(loc.Candidates, "c") {
		t.Fatalf("candidates = %v, want {c}", loc.Candidates)
	}
	for m, cov := range loc.MetricCoverage {
		if cov != 1 {
			t.Errorf("clean metric %s coverage = %v, want 1", m, cov)
		}
	}
	if loc.Degradation.Degraded() {
		t.Errorf("clean snapshot flagged degraded: %s", loc.Degradation)
	}
}

func TestLearnerSkipsMissingPairs(t *testing.T) {
	f := newFixture()
	baseline := f.snapshot(nil)
	interventions := make(map[string]*metrics.Snapshot)
	for target, worlds := range f.groundTruth() {
		interventions[target] = f.snapshot(worlds)
	}
	// Service d's series is gone from the intervention-on-a dataset: the
	// learner must still train, just without testing that pair.
	delete(interventions["a"].Data["m1"], "d")
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	model, err := l.Learn(context.Background(), baseline, interventions)
	if err != nil {
		t.Fatalf("Learn errored on incomplete intervention data: %v", err)
	}
	got, err := model.CausalSet("m1", "a")
	if err != nil {
		t.Fatal(err)
	}
	// d was never in C(a, m1); the untestable pair changes nothing here,
	// but the causal set must still be recovered from the remaining pairs.
	if !setEqual(got, "a", "b") {
		t.Fatalf("C(a,m1) = %v, want {a,b}", got)
	}
}

func TestLearnerMinSamplesOption(t *testing.T) {
	if _, err := NewLearner(WithMinSamples(0)); err == nil {
		t.Error("accepted min samples 0")
	}
	l, err := NewLearner(WithMinSamples(10))
	if err != nil || l.minSamples != 10 {
		t.Errorf("WithMinSamples not applied: %+v err=%v", l, err)
	}
	if _, err := NewLocalizer(WithMinSamples(0)); err == nil {
		t.Error("localizer accepted min samples 0")
	}
}
