package core

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"causalfl/internal/metrics"
)

// campaignFixture builds one fixed campaign (baseline, interventions,
// production) for the determinism and race tests below.
func campaignFixture() (*metrics.Snapshot, map[string]*metrics.Snapshot, *metrics.Snapshot) {
	f := newFixture()
	baseline := f.snapshot(nil)
	interventions := make(map[string]*metrics.Snapshot)
	for target, worlds := range f.groundTruth() {
		interventions[target] = f.snapshot(worlds)
	}
	production := f.snapshot(f.groundTruth()["a"])
	return baseline, interventions, production
}

// TestLearnDeterministicAcrossWorkers pins the tentpole contract: the model
// learned with the serial path is byte-identical (through JSON) to the model
// learned at every parallel worker count.
func TestLearnDeterministicAcrossWorkers(t *testing.T) {
	baseline, interventions, _ := campaignFixture()
	var want []byte
	for _, workers := range []int{1, 2, 3, 8, 32} {
		l, err := NewLearner(WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		model, err := l.Learn(context.Background(), baseline, interventions)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(model)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d: model differs from serial result", workers)
		}
	}
}

// TestLocalizeDeterministicAcrossWorkers does the same for Algorithm 2: the
// full Localization (votes, anomalies, winners, coverage) must not depend on
// the worker count.
func TestLocalizeDeterministicAcrossWorkers(t *testing.T) {
	baseline, interventions, production := campaignFixture()
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	model, err := l.Learn(context.Background(), baseline, interventions)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, workers := range []int{1, 2, 8, 32} {
		lo, err := NewLocalizer(WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		loc, err := lo.Localize(context.Background(), model, production)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(loc)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d: localization differs from serial result", workers)
		}
		multi, err := lo.LocalizeMulti(context.Background(), model, production, 2)
		if err != nil {
			t.Fatalf("workers=%d: multi: %v", workers, err)
		}
		if len(multi) == 0 || multi[0] != "a" {
			t.Fatalf("workers=%d: multi = %v, want a first", workers, multi)
		}
	}
}

// TestConcurrentLearnAndLocalize exercises the shared-read paths under the
// race detector: one trained Model serves concurrent Localize/LocalizeMulti
// calls while fresh Learn runs chew on the same baseline and intervention
// snapshots. Everything here is read-shared; the test fails only under
// `go test -race` if any of it is secretly written.
func TestConcurrentLearnAndLocalize(t *testing.T) {
	baseline, interventions, production := campaignFixture()
	l, err := NewLearner(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	model, err := l.Learn(context.Background(), baseline, interventions)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := NewLocalizer(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 12)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.Learn(context.Background(), baseline, interventions); err != nil {
				errc <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := lo.Localize(context.Background(), model, production); err != nil {
				errc <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := lo.LocalizeMulti(context.Background(), model, production, 2); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestCancelledContext pins the context contract: a pre-cancelled context
// aborts Learn, Localize, LocalizeMulti and Detect with the context error.
func TestCancelledContext(t *testing.T) {
	baseline, interventions, production := campaignFixture()
	l, err := NewLearner(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	model, err := l.Learn(context.Background(), baseline, interventions)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := NewLocalizer(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Learn(ctx, baseline, interventions); err != context.Canceled {
		t.Fatalf("Learn under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := lo.Localize(ctx, model, production); err != context.Canceled {
		t.Fatalf("Localize under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := lo.LocalizeMulti(ctx, model, production, 2); err != context.Canceled {
		t.Fatalf("LocalizeMulti under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := Detect(ctx, DetectConfig{}, baseline, production, "m1"); err != context.Canceled {
		t.Fatalf("Detect under cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestDetectInvariants pins the unified detection API's contracts: the
// result is byte-identical at every worker count in both alpha and FDR mode,
// tolerant mode reproduces the strict result on a clean full grid, and
// invalid configuration is rejected.
func TestDetectInvariants(t *testing.T) {
	f := newFixture()
	baseline := f.snapshot(nil)
	production := f.snapshot(f.groundTruth()["a"])

	for _, metric := range f.metrics {
		ref, err := Detect(context.Background(), DetectConfig{Alpha: 0.05, Workers: 1}, baseline, production, metric)
		if err != nil {
			t.Fatal(err)
		}
		wantAlpha := ref.Anomalous
		refFDR, err := Detect(context.Background(), DetectConfig{FDR: 0.05, Workers: 1}, baseline, production, metric)
		if err != nil {
			t.Fatal(err)
		}
		wantFDR := refFDR.Anomalous
		for _, workers := range []int{0, 1, 4} {
			det, err := Detect(context.Background(), DetectConfig{Alpha: 0.05, Workers: workers}, baseline, production, metric)
			if err != nil {
				t.Fatal(err)
			}
			if !setEqual(det.Anomalous, wantAlpha...) {
				t.Fatalf("%s workers=%d: Detect alpha mode %v != serial reference %v", metric, workers, det.Anomalous, wantAlpha)
			}
			if det.Tested != len(f.services) {
				t.Fatalf("%s: tested %d services, want %d", metric, det.Tested, len(f.services))
			}
			detFDR, err := Detect(context.Background(), DetectConfig{FDR: 0.05, Workers: workers}, baseline, production, metric)
			if err != nil {
				t.Fatal(err)
			}
			if !setEqual(detFDR.Anomalous, wantFDR...) {
				t.Fatalf("%s workers=%d: Detect FDR mode %v != serial reference %v", metric, workers, detFDR.Anomalous, wantFDR)
			}
			tol, err := Detect(context.Background(), DetectConfig{Alpha: 0.05, Tolerant: true, Workers: workers}, baseline, production, metric)
			if err != nil {
				t.Fatal(err)
			}
			if !setEqual(tol.Anomalous, wantAlpha...) {
				t.Fatalf("%s workers=%d: tolerant %v != strict %v on clean grid", metric, workers, tol.Anomalous, wantAlpha)
			}
		}
	}

	if _, err := Detect(context.Background(), DetectConfig{FDR: 2}, baseline, production, "m1"); err == nil {
		t.Fatal("Detect accepted FDR level 2")
	}
	if _, err := Detect(context.Background(), DetectConfig{}, nil, production, "m1"); err == nil {
		t.Fatal("Detect accepted nil baseline")
	}
	if _, err := Detect(context.Background(), DetectConfig{}, baseline, nil, "m1"); err == nil {
		t.Fatal("Detect accepted nil production")
	}
}
