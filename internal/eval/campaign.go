// Package eval orchestrates end-to-end fault-localization campaigns on the
// benchmark applications and scores them with the paper's measures
// (accuracy and informativeness, §VI-A). It also implements the experiment
// harnesses that regenerate every table and figure of the evaluation.
package eval

import (
	"context"
	"fmt"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/load"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

// Config describes one campaign. Zero fields take the paper's defaults.
type Config struct {
	// Build constructs the application under test.
	Build apps.Builder
	// Metrics is the metric set (default: the derived-all preset used for
	// Table I).
	Metrics []metrics.Metric
	// Alpha is the KS significance level (default core.DefaultAlpha).
	Alpha float64
	// Seed drives all randomness. Train and test sessions derive distinct
	// sub-seeds from it.
	Seed int64
	// LoadMode selects open- or closed-loop load (default open loop).
	LoadMode load.Mode
	// Rate is the open-loop base request rate (default load.DefaultRate).
	Rate float64
	// Users is the closed-loop base user count (default load.DefaultUsers).
	Users int
	// TrainMultiplier scales training load (default 1).
	TrainMultiplier float64
	// TestMultiplier scales production load (default 1; Table I also uses 4).
	TestMultiplier float64
	// Warmup is discarded at session start (default 30s of virtual time).
	Warmup time.Duration
	// BaselineDuration is the fault-free D_0 collection window (default
	// 10min, the paper's setting).
	BaselineDuration time.Duration
	// FaultDuration is the per-fault collection window (default 10min).
	FaultDuration time.Duration
	// Settle is discarded after injecting or clearing a fault (default 15s).
	Settle time.Duration
	// SampleInterval, WindowLength, WindowHop control telemetry (defaults:
	// 5s samples, 60s windows every 30s — the paper's hopping windows).
	SampleInterval time.Duration
	WindowLength   time.Duration
	WindowHop      time.Duration
	// Targets overrides the services to inject (default app.FaultTargets).
	Targets []string
	// Rounds repeats the whole test sweep with fresh seeds (default 1).
	Rounds int
	// Diurnal, when set, modulates the open-loop load of every session
	// this config creates (see load.DiurnalProfile). Used by the
	// nonstationary-load extension experiment.
	Diurnal *load.DiurnalProfile
	// Fault is the injected fault (default the paper's
	// http-service-unavailable).
	Fault chaos.Fault
	// Workers bounds the worker pool that shards campaign rounds and
	// parallelizes per-case localization. Zero selects GOMAXPROCS; one
	// forces the serial reference path. Any value produces identical
	// output — each round derives its own sub-seed, so rounds are
	// order-independent.
	Workers int
	// Degraded, when set, degrades the telemetry plane for the whole
	// campaign and routes collection through the lossy pipeline (retrying
	// sampler, coverage-aware windows, snapshot repair). Nil reproduces
	// the clean pipeline bit for bit.
	Degraded *DegradedTelemetry
}

// DegradedTelemetry configures campaign-wide telemetry degradation: every
// service's scrapes fail with probability ScrapeLoss and are corrupted with
// probability Corruption, independently per tick. Collection then runs the
// full robustness pipeline. With both rates zero the configuration is inert:
// no randomness is drawn and the collected snapshots equal the clean path's.
type DegradedTelemetry struct {
	// ScrapeLoss is the per-tick probability that a scrape returns
	// nothing, in [0,1].
	ScrapeLoss float64
	// Corruption is the per-tick probability that a scrape's reading is
	// mangled (NaN/Inf/spike), in [0,1].
	Corruption float64
	// Retry re-reads failed scrapes before declaring a tick missing.
	// Zero Attempts disables retrying.
	Retry telemetry.RetryPolicy
	// MinWindowCoverage marks windows with less tick coverage than this
	// as missing (NaN). Zero selects the BuildSnapshotDegraded default.
	MinWindowCoverage float64
	// Repair is the snapshot repair policy. The zero value imputes with
	// the default thresholds.
	Repair metrics.RepairPolicy
}

// validate checks the degradation rates.
func (d *DegradedTelemetry) validate() error {
	if d.ScrapeLoss < 0 || d.ScrapeLoss > 1 {
		return fmt.Errorf("eval: scrape-loss fraction %v outside [0,1]", d.ScrapeLoss)
	}
	if d.Corruption < 0 || d.Corruption > 1 {
		return fmt.Errorf("eval: corruption fraction %v outside [0,1]", d.Corruption)
	}
	if d.MinWindowCoverage < 0 || d.MinWindowCoverage > 1 {
		return fmt.Errorf("eval: min window coverage %v outside [0,1]", d.MinWindowCoverage)
	}
	return nil
}

// withDefaults fills zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Build == nil {
		return c, fmt.Errorf("eval: config needs a Build function")
	}
	if c.Metrics == nil {
		c.Metrics = metrics.DerivedAll()
	}
	if c.Alpha == 0 {
		c.Alpha = core.DefaultAlpha
	}
	if c.LoadMode == 0 {
		c.LoadMode = load.OpenLoop
	}
	if c.TrainMultiplier == 0 {
		c.TrainMultiplier = 1
	}
	if c.TestMultiplier == 0 {
		c.TestMultiplier = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 30 * time.Second
	}
	if c.BaselineDuration == 0 {
		c.BaselineDuration = 10 * time.Minute
	}
	if c.FaultDuration == 0 {
		c.FaultDuration = 10 * time.Minute
	}
	if c.Settle == 0 {
		c.Settle = 15 * time.Second
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = telemetry.DefaultSampleInterval
	}
	if c.WindowLength == 0 {
		c.WindowLength = telemetry.DefaultWindowLength
	}
	if c.WindowHop == 0 {
		c.WindowHop = telemetry.DefaultWindowHop
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.Fault.Type == 0 {
		c.Fault = chaos.Unavailable()
	}
	if c.Degraded != nil {
		if err := c.Degraded.validate(); err != nil {
			return c, err
		}
	}
	return c, nil
}

// session is one live application instance with load, telemetry and chaos
// attached.
type session struct {
	cfg      Config
	app      *apps.App
	eng      *sim.Engine
	sampler  *telemetry.Sampler
	injector *chaos.Injector
	gen      *load.Generator
	targets  []string
}

// newSession builds an app, starts load at the given multiplier, warms up,
// and starts telemetry.
func newSession(cfg Config, multiplier float64, seed int64) (*session, error) {
	eng := sim.NewEngine(seed)
	app, err := cfg.Build(eng)
	if err != nil {
		return nil, fmt.Errorf("eval: build app: %w", err)
	}
	gen, err := load.NewGenerator(app, load.Config{
		Mode:          cfg.LoadMode,
		RatePerSecond: cfg.Rate,
		Users:         cfg.Users,
		Multiplier:    multiplier,
		Diurnal:       cfg.Diurnal,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: load generator: %w", err)
	}
	var samplerOpts []telemetry.SamplerOption
	if cfg.Degraded != nil && cfg.Degraded.Retry.Attempts > 0 {
		samplerOpts = append(samplerOpts, telemetry.WithRetry(cfg.Degraded.Retry))
	}
	sampler, err := telemetry.NewSampler(app.Cluster, cfg.SampleInterval, samplerOpts...)
	if err != nil {
		return nil, fmt.Errorf("eval: sampler: %w", err)
	}
	injector, err := chaos.NewInjector(app.Cluster)
	if err != nil {
		return nil, fmt.Errorf("eval: injector: %w", err)
	}
	if cfg.Degraded != nil {
		// Ambient degradation is environment state, not an injected
		// experiment fault: set the rates directly so the injector's
		// telemetry-plane ledger stays free for per-target injections.
		for _, name := range app.Cluster.ServiceNames() {
			svc, ok := app.Cluster.Service(name)
			if !ok {
				continue
			}
			svc.SetScrapeLossRate(cfg.Degraded.ScrapeLoss)
			svc.SetSampleCorruptionRate(cfg.Degraded.Corruption)
		}
	}
	if err := gen.Start(); err != nil {
		return nil, fmt.Errorf("eval: start load: %w", err)
	}
	// Let queues, counters and the background workers reach steady state
	// before measuring.
	eng.Run(eng.Now() + cfg.Warmup)
	if err := sampler.Start(); err != nil {
		return nil, fmt.Errorf("eval: start sampler: %w", err)
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = app.FaultTargets
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("eval: app %s has no fault targets", app.Name)
	}
	return &session{
		cfg:      cfg,
		app:      app,
		eng:      eng,
		sampler:  sampler,
		injector: injector,
		gen:      gen,
		targets:  targets,
	}, nil
}

// collect advances the simulation d of virtual time and returns the metric
// snapshot of that period.
func (s *session) collect(d time.Duration) (*metrics.Snapshot, error) {
	s.sampler.Discard()
	s.eng.Run(s.eng.Now() + d)
	windows, err := telemetry.WindowsByService(s.sampler.Drain(), s.cfg.WindowLength, s.cfg.WindowHop)
	if err != nil {
		return nil, fmt.Errorf("eval: collect: %w", err)
	}
	if d := s.cfg.Degraded; d != nil {
		snap, err := metrics.BuildSnapshotDegraded(windows, s.app.Services(), s.cfg.Metrics, d.MinWindowCoverage)
		if err != nil {
			return nil, fmt.Errorf("eval: collect: %w", err)
		}
		repaired, _ := metrics.Repair(snap, d.Repair)
		return repaired, nil
	}
	snap, err := metrics.BuildSnapshot(windows, s.app.Services(), s.cfg.Metrics)
	if err != nil {
		return nil, fmt.Errorf("eval: collect: %w", err)
	}
	return snap, nil
}

// settle advances past a fault transition, discarding telemetry.
func (s *session) settle() {
	s.eng.Run(s.eng.Now() + s.cfg.Settle)
	s.sampler.Discard()
}

// collectWithFault injects the campaign fault into target, collects for d,
// then clears the fault.
func (s *session) collectWithFault(target string, d time.Duration) (*metrics.Snapshot, error) {
	if err := s.injector.Inject(target, s.cfg.Fault); err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	s.settle()
	snap, err := s.collect(d)
	if clearErr := s.injector.Clear(target); clearErr != nil && err == nil {
		err = fmt.Errorf("eval: %w", clearErr)
	}
	if err != nil {
		return nil, err
	}
	s.settle()
	return snap, nil
}

// TrainingData is the output of one Algorithm 1 data-collection campaign.
type TrainingData struct {
	// Baseline is the fault-free dataset D_0.
	Baseline *metrics.Snapshot
	// Interventions maps each injected service s to its dataset D_s.
	Interventions map[string]*metrics.Snapshot
}

// TestCase is one production dataset with its ground-truth fault location.
type TestCase struct {
	// Target carried the injected fault.
	Target string
	// Production is the dataset D collected while the fault was active.
	Production *metrics.Snapshot
}

// CollectTraining runs the training campaign's data collection: a fault-free
// baseline period followed by one fault injection per target, all in a
// single continuous session at the training load (the paper injects one
// fault at a time into a live deployment, §V-A).
// The session is one continuous virtual-time engine, so collection is
// inherently serial; ctx is checked between faults so a cancelled campaign
// stops at the next fault boundary.
func CollectTraining(ctx context.Context, cfg Config) (*TrainingData, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s, err := newSession(cfg, cfg.TrainMultiplier, cfg.Seed)
	if err != nil {
		return nil, err
	}
	baseline, err := s.collect(cfg.BaselineDuration)
	if err != nil {
		return nil, fmt.Errorf("eval: train baseline: %w", err)
	}
	interventions := make(map[string]*metrics.Snapshot, len(s.targets))
	for _, target := range s.targets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		snap, err := s.collectWithFault(target, cfg.FaultDuration)
		if err != nil {
			return nil, fmt.Errorf("eval: train fault %s: %w", target, err)
		}
		interventions[target] = snap
	}
	return &TrainingData{Baseline: baseline, Interventions: interventions}, nil
}

// CollectTests runs the production-side campaign at the test multiplier and
// returns one labelled test case per target and round. Each round uses a
// fresh session and seed: the paper collects train and test datasets in
// separate experiments.
// Rounds are sharded across the campaign worker pool: each round derives its
// own sub-seed and runs in a private session (engine, load, telemetry), so
// rounds are independent and the assembled case list is identical to the
// serial loop's at any worker count. Within a round the intervention sequence
// stays serial — it is one continuous virtual-time session by design.
func CollectTests(ctx context.Context, cfg Config) ([]TestCase, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rounds, err := parallel.Map(ctx, cfg.Workers, cfg.Rounds, func(ctx context.Context, round int) ([]TestCase, error) {
		s, err := newSession(cfg, cfg.TestMultiplier, cfg.Seed+1009*int64(round+1))
		if err != nil {
			return nil, err
		}
		var cases []TestCase
		for _, target := range s.targets {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			production, err := s.collectWithFault(target, cfg.FaultDuration)
			if err != nil {
				return nil, fmt.Errorf("eval: test fault %s: %w", target, err)
			}
			cases = append(cases, TestCase{Target: target, Production: production})
		}
		return cases, nil
	})
	if err != nil {
		return nil, err
	}
	var cases []TestCase
	for _, r := range rounds {
		cases = append(cases, r...)
	}
	return cases, nil
}

// Train executes the Algorithm 1 campaign: collect D_0, then inject one
// fault at a time into every target and collect D_s, then learn the model.
func Train(ctx context.Context, cfg Config) (*core.Model, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	data, err := CollectTraining(ctx, cfg)
	if err != nil {
		return nil, err
	}
	learner, err := core.NewLearner(core.WithAlpha(cfg.Alpha), core.WithWorkers(parallel.Workers(cfg.Workers)))
	if err != nil {
		return nil, err
	}
	model, err := learner.Learn(ctx, data.Baseline, data.Interventions)
	if err != nil {
		return nil, fmt.Errorf("eval: train: %w", err)
	}
	return model, nil
}

// Evaluate runs the production-side campaign: with the trained model, inject
// each fault at the test multiplier and score the localizer's output.
// Per-case localization fans out across the campaign worker pool; each case
// is localized with a serial localizer (the case fan-out already saturates
// the pool) and the outcomes are assembled in case order.
func Evaluate(ctx context.Context, cfg Config, model *core.Model) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("eval: evaluate: nil model")
	}
	localizer, err := core.NewLocalizer(core.WithWorkers(1))
	if err != nil {
		return nil, err
	}
	report := &Report{
		App:          appName(cfg),
		Multiplier:   cfg.TestMultiplier,
		ServiceCount: len(model.Services),
		MetricNames:  append([]string(nil), model.Metrics...),
	}
	cases, err := CollectTests(ctx, cfg)
	if err != nil {
		return nil, err
	}
	outcomes, err := parallel.Map(ctx, cfg.Workers, len(cases), func(ctx context.Context, i int) (Outcome, error) {
		tc := cases[i]
		loc, err := localizer.Localize(ctx, model, tc.Production)
		if err != nil {
			return Outcome{}, fmt.Errorf("eval: localize fault %s: %w", tc.Target, err)
		}
		return newOutcome(tc.Target, loc, len(model.Services)), nil
	})
	if err != nil {
		return nil, err
	}
	report.Outcomes = outcomes
	report.finalize()
	return report, nil
}

// appName instantiates the builder on a throwaway engine to learn the app's
// name for reporting.
func appName(cfg Config) string {
	app, err := cfg.Build(sim.NewEngine(0))
	if err != nil {
		return "unknown"
	}
	return app.Name
}

// CollectProduction spins up a fresh session at the given load multiplier,
// injects fault into target, and returns the production dataset collected
// over the campaign's fault duration. It is the building block behind
// Evaluate, exposed for diagnostics and the CLI's one-shot localize command.
func CollectProduction(ctx context.Context, cfg Config, multiplier float64, target string, fault chaos.Fault, seed int64) (*metrics.Snapshot, error) {
	return CollectProductionMulti(ctx, cfg, multiplier, []string{target}, fault, seed)
}

// CollectProductionMulti is CollectProduction with several simultaneous
// faults — the data source for the concurrent-fault localizer.
func CollectProductionMulti(ctx context.Context, cfg Config, multiplier float64, targets []string, fault chaos.Fault, seed int64) (*metrics.Snapshot, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("eval: collect production: no fault targets")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.Fault = fault
	s, err := newSession(cfg, multiplier, seed)
	if err != nil {
		return nil, err
	}
	for _, target := range targets {
		if err := s.injector.Inject(target, cfg.Fault); err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
	}
	s.settle()
	return s.collect(cfg.FaultDuration)
}

// Run is the unified campaign entry point: collect training data, learn the
// model, run the production-side campaign, score it. It is the pipeline
// behind every table experiment and the CLI's train/eval commands.
func Run(ctx context.Context, cfg Config) (*core.Model, *Report, error) {
	model, err := Train(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	report, err := Evaluate(ctx, cfg, model)
	if err != nil {
		return nil, nil, err
	}
	return model, report, nil
}

// TrainAndEvaluate is the common train-then-test pipeline used by the table
// experiments.
//
// Deprecated: use Run, which is the same pipeline under the unified name.
func TrainAndEvaluate(ctx context.Context, cfg Config) (*core.Model, *Report, error) {
	return Run(ctx, cfg)
}
