package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/patterns"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/baselines"
	"causalfl/internal/clock"
	"causalfl/internal/load"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
	"causalfl/internal/stats"
)

// Options tunes the experiment harnesses that regenerate the paper's tables
// and figures.
type Options struct {
	// Seed drives all randomness (zero means 42).
	Seed int64
	// Quick shortens collection windows (2.5-minute periods with 30s/15s
	// hopping windows instead of the paper's 10-minute periods with
	// 60s/30s windows), cutting runtime roughly fourfold at slightly
	// reduced statistical power. Benchmarks use it; headline runs do not.
	Quick bool
	// Clock supplies the wall-clock readings behind host-cost columns
	// (scalability train/eval walls, report section timings). Nil means the
	// host clock; tests inject a clock.Fake for deterministic timings.
	Clock clock.Clock
	// Workers bounds every worker pool the experiments spin up (campaign
	// rounds, per-case localization, seed sweeps, degradation arms). Zero
	// selects GOMAXPROCS; one forces the serial reference path. Results are
	// identical at every setting.
	Workers int
}

// WallClock returns the configured clock, defaulting to the host clock.
func (o Options) WallClock() clock.Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return clock.Wall
}

// Apply merges the options into a campaign config, returning the config the
// experiment harnesses would run with.
func (o Options) Apply(cfg Config) Config {
	cfg.Seed = o.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	cfg.Workers = o.Workers
	if o.Quick {
		cfg.BaselineDuration = 150 * time.Second
		cfg.FaultDuration = 150 * time.Second
		cfg.WindowLength = 30 * time.Second
		cfg.WindowHop = 15 * time.Second
		cfg.SampleInterval = 5 * time.Second
	}
	return cfg
}

// benchmarkApps lists the two evaluation applications of the paper.
func benchmarkApps() []struct {
	Name  string
	Build apps.Builder
} {
	return []struct {
		Name  string
		Build apps.Builder
	}{
		{causalbench.Name, causalbench.Build},
		{robotshop.Name, robotshop.Build},
	}
}

// TableIRow is one row of Table I.
type TableIRow struct {
	App             string
	Load            float64
	Accuracy        float64
	Informativeness float64
}

// TableIResult reproduces Table I: accuracy and informativeness on
// CausalBench and Robot-shop with the model trained at 1x load and tested at
// 1x and 4x, using the derived metric set.
type TableIResult struct {
	Rows []TableIRow
}

// String renders the result in the paper's row order.
func (r *TableIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: fault localization accuracy and informativeness\n")
	fmt.Fprintf(&b, "%-14s %-6s %-9s %s\n", "app", "load", "accuracy", "informativeness")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-6s %-9.2f %.2f\n",
			row.App, fmt.Sprintf("%gx", row.Load), row.Accuracy, row.Informativeness)
	}
	return b.String()
}

// RunTableI regenerates Table I.
func RunTableI(ctx context.Context, o Options) (*TableIResult, error) {
	result := &TableIResult{}
	for _, app := range benchmarkApps() {
		cfg := o.Apply(Config{Build: app.Build, Metrics: metrics.DerivedAll()})
		model, err := Train(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: table I %s: %w", app.Name, err)
		}
		for _, mult := range []float64{1, 4} {
			c := cfg
			c.TestMultiplier = mult
			report, err := Evaluate(ctx, c, model)
			if err != nil {
				return nil, fmt.Errorf("eval: table I %s @%gx: %w", app.Name, mult, err)
			}
			result.Rows = append(result.Rows, TableIRow{
				App:             app.Name,
				Load:            mult,
				Accuracy:        report.Accuracy,
				Informativeness: report.MeanInformativeness,
			})
		}
	}
	return result, nil
}

// TableIIRow is one cell group of Table II: a metric-set preset evaluated on
// one application.
type TableIIRow struct {
	App             string
	Preset          string
	Accuracy        float64
	Informativeness float64
}

// TableIIResult reproduces Table II: the informativeness (and, additionally,
// accuracy) of single-metric and all-metric sets, raw versus derived, with
// training at 1x load and testing at 4x.
type TableIIResult struct {
	Rows []TableIIRow
}

// String renders the result grouped like the paper's Table II columns.
func (r *TableIIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: metric sets under 4x test load (trained at 1x)\n")
	fmt.Fprintf(&b, "%-14s %-13s %-9s %s\n", "app", "metric set", "accuracy", "informativeness")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-13s %-9.2f %.2f\n", row.App, row.Preset, row.Accuracy, row.Informativeness)
	}
	return b.String()
}

// tableIIPresets are the Table II columns, in the paper's order.
func tableIIPresets() []string {
	return []string{
		metrics.SetRawMsg, metrics.SetRawCPU, metrics.SetRawAll,
		metrics.SetDerivedMsg, metrics.SetDerivedCPU, metrics.SetDerivedAll,
	}
}

// RunTableII regenerates Table II. All presets share one collection pass per
// application (the union metric set is collected once and projected), so the
// comparison isolates the metric choice.
func RunTableII(ctx context.Context, o Options) (*TableIIResult, error) {
	union := append(metrics.RawAll(), metrics.DerivedAll()...)
	result := &TableIIResult{}
	for _, app := range benchmarkApps() {
		cfg := o.Apply(Config{
			Build:          app.Build,
			Metrics:        union,
			TestMultiplier: 4,
		})
		var techniques []baselines.Technique
		for _, preset := range tableIIPresets() {
			set, err := metrics.Preset(preset)
			if err != nil {
				return nil, err
			}
			techniques = append(techniques, &baselines.Paper{MetricNames: metrics.Names(set)})
		}
		scores, err := CompareTechniques(ctx, cfg, techniques)
		if err != nil {
			return nil, fmt.Errorf("eval: table II %s: %w", app.Name, err)
		}
		for i, preset := range tableIIPresets() {
			result.Rows = append(result.Rows, TableIIRow{
				App:             app.Name,
				Preset:          preset,
				Accuracy:        scores[i].Accuracy,
				Informativeness: scores[i].MeanInformativeness,
			})
		}
	}
	return result, nil
}

// BaselineComparisonResult compares the paper's method against the related
// approaches of §VII on both applications (trained at 1x, tested at 4x).
type BaselineComparisonResult struct {
	App    string
	Scores []TechniqueScore
}

// String renders one comparison table per app.
func (r *BaselineComparisonResult) String() string {
	return RenderScores(fmt.Sprintf("Baseline comparison on %s (test load 4x)", r.App), r.Scores)
}

// RunBaselineComparison scores our method against the error-log-only [23],
// single-causal-world [24], topology-driven [14], observational, and random
// baselines.
func RunBaselineComparison(ctx context.Context, o Options, build apps.Builder, appName string) (*BaselineComparisonResult, error) {
	union := append(metrics.RawAll(), metrics.DerivedAll()...)
	union = append(union, metrics.ErrLogRate)
	cfg := o.Apply(Config{Build: build, Metrics: union, TestMultiplier: 4})
	// The topology baseline receives the static call graph, as a service
	// mesh would report it.
	app, err := build(sim.NewEngine(0))
	if err != nil {
		return nil, fmt.Errorf("eval: baseline comparison %s: %w", appName, err)
	}
	techniques := []baselines.Technique{
		&baselines.Paper{MetricNames: metrics.Names(metrics.DerivedAll())},
		baselines.ErrLogOnly(),
		&baselines.SingleWorld{},
		&baselines.TopologyRCA{Edges: app.Edges},
		&baselines.Observational{},
		&baselines.RandomGuess{Seed: cfg.Seed},
	}
	scores, err := CompareTechniques(ctx, cfg, techniques)
	if err != nil {
		return nil, fmt.Errorf("eval: baseline comparison %s: %w", appName, err)
	}
	return &BaselineComparisonResult{App: appName, Scores: scores}, nil
}

// Fig1Result reproduces Fig. 1: the causal sets learned on the two
// communication patterns under the #logs and #requests metrics, showing that
// the learned world depends on the observed metric.
type Fig1Result struct {
	// Sets maps pattern -> metric -> injected target -> causal set.
	Sets map[string]map[string]map[string][]string
}

// fig1Metrics returns the two metrics of the figure: count of (error) logs
// and count of API requests received.
func fig1Metrics() []metrics.Metric {
	return []metrics.Metric{metrics.MsgRate, metrics.ReqRate}
}

// String renders the learned worlds per pattern and metric.
func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1: causal relations depend on observed metrics & code\n")
	for _, pattern := range []string{patterns.Pattern1Name, patterns.Pattern2Name} {
		byMetric, ok := r.Sets[pattern]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", pattern)
		for _, metric := range []string{metrics.MsgRate.Name, metrics.ReqRate.Name} {
			fmt.Fprintf(&b, "  metric %s:\n", metric)
			byTarget := byMetric[metric]
			for target, set := range byTarget {
				fmt.Fprintf(&b, "    C(%s) = %s\n", target, strings.Join(set, ","))
			}
		}
	}
	return b.String()
}

// RunFig1 learns causal worlds on pattern 1 (stateless chain) and pattern 2
// (stateful omission) with the figure's two metrics.
func RunFig1(ctx context.Context, o Options) (*Fig1Result, error) {
	result := &Fig1Result{Sets: make(map[string]map[string]map[string][]string, 2)}
	cases := []struct {
		name    string
		build   apps.Builder
		targets []string
	}{
		{patterns.Pattern1Name, patterns.BuildPattern1, []string{"B"}},
		{patterns.Pattern2Name, patterns.BuildPattern2, []string{"D"}},
	}
	for _, c := range cases {
		cfg := o.Apply(Config{Build: c.build, Metrics: fig1Metrics(), Targets: c.targets})
		model, err := Train(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: fig1 %s: %w", c.name, err)
		}
		byMetric := make(map[string]map[string][]string, len(model.Metrics))
		for _, metric := range model.Metrics {
			byTarget := make(map[string][]string, len(model.Targets))
			for _, target := range model.Targets {
				set, err := model.CausalSet(metric, target)
				if err != nil {
					return nil, err
				}
				byTarget[target] = set
			}
			byMetric[metric] = byTarget
		}
		result.Sets[c.name] = byMetric
	}
	return result, nil
}

// Fig2Result reproduces Fig. 2: the load confounder. Under closed-loop load
// on the confounder topology, failing node C increases the request rate
// observed at node I (and symmetrically failing I increases the rate at C),
// because node A's shared queue drains faster when one branch fails fast.
type Fig2Result struct {
	// HealthyI and FaultCI summarize requests/window at node I with the
	// system healthy versus with node C faulted.
	HealthyI, FaultCI stats.Summary
	// HealthyC and FaultIC summarize requests/window at node C with the
	// system healthy versus with node I faulted.
	HealthyC, FaultIC stats.Summary
	// PValueI and PValueC are the KS p-values of the two comparisons.
	PValueI, PValueC float64
}

// String renders the boxplot-style five-number summaries.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2: intervention changes the load distribution (closed-loop users)\n")
	row := func(label string, s stats.Summary) {
		fmt.Fprintf(&b, "%-24s min=%-7.0f q1=%-7.0f med=%-7.0f q3=%-7.0f max=%-7.0f mean=%.1f\n",
			label, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
	}
	row("req@I healthy", r.HealthyI)
	row("req@I with C faulted", r.FaultCI)
	fmt.Fprintf(&b, "  KS p-value: %.4f (reject => C causally influences I via the load confounder)\n", r.PValueI)
	row("req@C healthy", r.HealthyC)
	row("req@C with I faulted", r.FaultIC)
	fmt.Fprintf(&b, "  KS p-value: %.4f\n", r.PValueC)
	return b.String()
}

// RunFig2 measures the confounder effect with closed-loop virtual users.
func RunFig2(ctx context.Context, o Options) (*Fig2Result, error) {
	cfg := o.Apply(Config{
		Build:    patterns.BuildConfounder,
		Metrics:  []metrics.Metric{metrics.ReqRate},
		LoadMode: load.ClosedLoop,
		Users:    10,
	})
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s, err := newSession(cfg, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	healthy, err := s.collect(cfg.BaselineDuration)
	if err != nil {
		return nil, fmt.Errorf("eval: fig2 healthy: %w", err)
	}
	faultC, err := s.collectWithFault("C", cfg.FaultDuration)
	if err != nil {
		return nil, fmt.Errorf("eval: fig2 fault C: %w", err)
	}
	faultI, err := s.collectWithFault("I", cfg.FaultDuration)
	if err != nil {
		return nil, fmt.Errorf("eval: fig2 fault I: %w", err)
	}

	result := &Fig2Result{}
	var ks stats.KSTest
	reqI, err := healthy.Series(metrics.ReqRate.Name, "I")
	if err != nil {
		return nil, err
	}
	reqIFault, err := faultC.Series(metrics.ReqRate.Name, "I")
	if err != nil {
		return nil, err
	}
	if result.HealthyI, err = stats.Summarize(reqI); err != nil {
		return nil, err
	}
	if result.FaultCI, err = stats.Summarize(reqIFault); err != nil {
		return nil, err
	}
	if result.PValueI, err = ks.PValue(reqIFault, reqI); err != nil {
		return nil, err
	}

	reqC, err := healthy.Series(metrics.ReqRate.Name, "C")
	if err != nil {
		return nil, err
	}
	reqCFault, err := faultI.Series(metrics.ReqRate.Name, "C")
	if err != nil {
		return nil, err
	}
	if result.HealthyC, err = stats.Summarize(reqC); err != nil {
		return nil, err
	}
	if result.FaultIC, err = stats.Summarize(reqCFault); err != nil {
		return nil, err
	}
	if result.PValueC, err = ks.PValue(reqCFault, reqC); err != nil {
		return nil, err
	}
	return result, nil
}

// LoggingDisciplineResult reproduces §III-B's metric-sufficiency argument as
// an experiment: the causal world a metric sees depends on developers'
// logging choices. With node E's "I am okay!" heartbeat enabled, the msg-rate
// world of a fault on B contains E (the heartbeat disappears — an omission
// signal); with logging disabled, the same physical fault produces a smaller
// world and the edge vanishes from that metric entirely.
type LoggingDisciplineResult struct {
	// WithLogging is C(B, msg rate) when E logs.
	WithLogging []string
	// WithoutLogging is C(B, msg rate) when E is silent.
	WithoutLogging []string
}

// String renders the two worlds.
func (r *LoggingDisciplineResult) String() string {
	return fmt.Sprintf("§III-B logging discipline: C(B, msg rate)\n"+
		"  E logging enabled : {%s}\n"+
		"  E logging disabled: {%s}\n",
		strings.Join(r.WithLogging, ", "), strings.Join(r.WithoutLogging, ", "))
}

// RunLoggingDiscipline learns the msg-rate world of a fault on B with E's
// logging on and off.
func RunLoggingDiscipline(ctx context.Context, o Options) (*LoggingDisciplineResult, error) {
	learn := func(build apps.Builder) ([]string, error) {
		cfg := o.Apply(Config{
			Build:   build,
			Metrics: []metrics.Metric{metrics.MsgRate},
			Targets: []string{"B"},
		})
		model, err := Train(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return model.CausalSet(metrics.MsgRate.Name, "B")
	}
	loud, err := learn(causalbench.Build)
	if err != nil {
		return nil, fmt.Errorf("eval: logging discipline (enabled): %w", err)
	}
	quiet, err := learn(causalbench.BuildQuiet)
	if err != nil {
		return nil, fmt.Errorf("eval: logging discipline (disabled): %w", err)
	}
	return &LoggingDisciplineResult{WithLogging: loud, WithoutLogging: quiet}, nil
}

// CausalSetsExampleResult reproduces the §VI-B example: the causal sets for
// an intervention on CausalBench node B differ between the msg-rate world
// (response-path error logs plus E's omitted info logs: {A, B, E}) and the
// CPU world (request-path starvation: {B, C, E}).
type CausalSetsExampleResult struct {
	MsgRateSet []string
	CPUSet     []string
}

// String renders the two worlds.
func (r *CausalSetsExampleResult) String() string {
	return fmt.Sprintf("§VI-B example: intervention on CausalBench node B\n"+
		"  C(B, msg rate) = {%s}   (paper: {B, A, E})\n"+
		"  C(B, cpu)      = {%s}   (paper: {B, C, E})\n",
		strings.Join(r.MsgRateSet, ", "), strings.Join(r.CPUSet, ", "))
}

// RunCausalSetsExample learns the two §VI-B worlds.
func RunCausalSetsExample(ctx context.Context, o Options) (*CausalSetsExampleResult, error) {
	cfg := o.Apply(Config{
		Build:   causalbench.Build,
		Metrics: []metrics.Metric{metrics.MsgRate, metrics.CPU},
		Targets: []string{"B"},
	})
	model, err := Train(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: causal sets example: %w", err)
	}
	msg, err := model.CausalSet(metrics.MsgRate.Name, "B")
	if err != nil {
		return nil, err
	}
	cpu, err := model.CausalSet(metrics.CPU.Name, "B")
	if err != nil {
		return nil, err
	}
	return &CausalSetsExampleResult{MsgRateSet: msg, CPUSet: cpu}, nil
}
