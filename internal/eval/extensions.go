package eval

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/baselines"
	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/load"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/stats"
)

// This file implements the extension experiments beyond the paper's
// evaluation: fault-type generalization (the paper claims "our methodology
// is not dependent on a specific fault type, just that faults propagate"),
// concurrent-fault ranking (the paper assumes one fault at a time), and
// multi-seed robustness sweeps.

// FaultTypeRow is one fault type's score in the generalization experiment.
type FaultTypeRow struct {
	TrainedOn       string
	Fault           string
	Accuracy        float64
	Informativeness float64
}

// FaultTypeResult reports how a model trained exclusively on
// http-service-unavailable injections localizes *other* fault types at
// detection time.
type FaultTypeResult struct {
	Rows []FaultTypeRow
}

// String renders the result.
func (r *FaultTypeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-type generalization\n")
	fmt.Fprintf(&b, "%-26s %-26s %-9s %s\n", "trained on", "production fault", "accuracy", "informativeness")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s %-26s %-9.2f %.2f\n", row.TrainedOn, row.Fault, row.Accuracy, row.Informativeness)
	}
	return b.String()
}

// RunFaultTypeExtension trains on the paper's fault and evaluates against
// error-rate and latency faults on CausalBench. The metric set is extended
// with busy⊘rx (worker-slot occupancy per request): latency faults burn no
// extra CPU and drop no requests, so the paper's metric set alone cannot see
// them, but they hold worker slots longer — upstream callers included,
// because synchronous calls block.
func RunFaultTypeExtension(ctx context.Context, o Options) (*FaultTypeResult, error) {
	cfg := o.Apply(Config{
		Build:   causalbench.Build,
		Metrics: metrics.ExtendedDerived(),
	})
	model, err := Train(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: fault-type extension: %w", err)
	}
	latency := chaos.Fault{Type: chaos.Latency, Delay: 150 * time.Millisecond}
	faults := []chaos.Fault{
		chaos.Unavailable(),
		{Type: chaos.ErrorRate, Rate: 0.5},
		latency,
	}
	result := &FaultTypeResult{}
	for _, fault := range faults {
		c := cfg
		c.Fault = fault
		report, err := Evaluate(ctx, c, model)
		if err != nil {
			return nil, fmt.Errorf("eval: fault-type extension %s: %w", fault.Type, err)
		}
		result.Rows = append(result.Rows, FaultTypeRow{
			TrainedOn:       chaos.ServiceUnavailable.String(),
			Fault:           fault.Type.String(),
			Accuracy:        report.Accuracy,
			Informativeness: report.MeanInformativeness,
		})
	}

	// Matched training: latency faults propagate along a different world
	// (blocking spreads upstream through held worker slots), so a model
	// trained on the *same* fault type recovers what the cross-type model
	// loses — quantifying the paper's §III observation that propagation
	// depends on the fault type.
	matched := cfg
	matched.Fault = latency
	matchedModel, err := Train(ctx, matched)
	if err != nil {
		return nil, fmt.Errorf("eval: fault-type extension matched training: %w", err)
	}
	report, err := Evaluate(ctx, matched, matchedModel)
	if err != nil {
		return nil, fmt.Errorf("eval: fault-type extension matched eval: %w", err)
	}
	result.Rows = append(result.Rows, FaultTypeRow{
		TrainedOn:       latency.Type.String(),
		Fault:           latency.Type.String(),
		Accuracy:        report.Accuracy,
		Informativeness: report.MeanInformativeness,
	})
	return result, nil
}

// MultiFaultResult reports the concurrent-fault extension: with two faults
// active simultaneously, how often do both appear in the localizer's top-2
// ranking?
type MultiFaultResult struct {
	// Pairs is the number of evaluated fault pairs.
	Pairs int
	// BothInTop2 counts pairs fully recovered in the top-2 ranking.
	BothInTop2 int
	// AtLeastOne counts pairs where at least one fault ranked first or
	// second.
	AtLeastOne int
}

// String renders the result.
func (r *MultiFaultResult) String() string {
	return fmt.Sprintf("Concurrent-fault extension (2 simultaneous faults, greedy explain-away)\n"+
		"pairs=%d both-in-top2=%.2f at-least-one=%.2f\n",
		r.Pairs,
		float64(r.BothInTop2)/float64(r.Pairs),
		float64(r.AtLeastOne)/float64(r.Pairs))
}

// RunMultiFaultExtension trains the single-fault model, then injects fault
// pairs and scores the greedy explain-away localizer
// (core.Localizer.LocalizeMulti). Pairs are chosen on independent flows
// where possible (two faults on one path shadow each other).
func RunMultiFaultExtension(ctx context.Context, o Options) (*MultiFaultResult, error) {
	cfg := o.Apply(Config{
		Build:   causalbench.Build,
		Metrics: metrics.DerivedAll(),
	})
	model, err := Train(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: multi-fault extension: %w", err)
	}
	localizer, err := core.NewLocalizer()
	if err != nil {
		return nil, err
	}
	// Pairs on independent flows: each fault's signature stays visible.
	pairs := [][2]string{
		{"B", "I"}, {"C", "H"}, {"E", "I"}, {"G", "C"}, {"D", "B"}, {"H", "E"},
	}
	cfg2, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	result := &MultiFaultResult{}
	for i, pair := range pairs {
		s, err := newSession(cfg2, cfg2.TestMultiplier, cfg2.Seed+5000+int64(i))
		if err != nil {
			return nil, err
		}
		for _, target := range pair {
			if err := s.injector.Inject(target, cfg2.Fault); err != nil {
				return nil, fmt.Errorf("eval: multi-fault inject %s: %w", target, err)
			}
		}
		s.settle()
		production, err := s.collect(cfg2.FaultDuration)
		if err != nil {
			return nil, err
		}
		named, err := localizer.LocalizeMulti(ctx, model, production, 2)
		if err != nil {
			return nil, err
		}
		top2 := make(map[string]bool, 2)
		for _, svc := range named {
			top2[svc] = true
		}
		hits := 0
		for _, target := range pair {
			if top2[target] {
				hits++
			}
		}
		result.Pairs++
		if hits == 2 {
			result.BothInTop2++
		}
		if hits >= 1 {
			result.AtLeastOne++
		}
	}
	return result, nil
}

// NonstationaryRow scores one metric-set / decision-rule combination under
// nonstationary production load.
type NonstationaryRow struct {
	Preset          string
	Test            string
	Accuracy        float64
	Informativeness float64
}

// NonstationaryResult reports the diurnal-load extension: the model is
// trained under steady 1x load, but production traffic oscillates ±60%
// around the same mean. Raw metrics see the oscillation as anomalies
// everywhere; the derived metrics were built to be invariant to exactly
// this (§III-C generalized from a level shift to a drifting level).
type NonstationaryResult struct {
	Amplitude float64
	Rows      []NonstationaryRow
}

// String renders the result.
func (r *NonstationaryResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Nonstationary-load extension (diurnal ±%.0f%% production load, steady training)\n", r.Amplitude*100)
	fmt.Fprintf(&b, "%-13s %-12s %-9s %s\n", "metric set", "test", "accuracy", "informativeness")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %-12s %-9.2f %.2f\n", row.Preset, row.Test, row.Accuracy, row.Informativeness)
	}
	return b.String()
}

// RunNonstationaryExtension trains steadily and tests under diurnal load.
func RunNonstationaryExtension(ctx context.Context, o Options) (*NonstationaryResult, error) {
	const amplitude = 0.6
	union := append(metrics.RawAll(), metrics.DerivedAll()...)
	trainCfg := o.Apply(Config{Build: causalbench.Build, Metrics: union})
	testCfg := trainCfg
	// One full oscillation per collection period; quick runs use a
	// proportionally shorter period.
	period := 5 * time.Minute
	if o.Quick {
		period = 75 * time.Second
	}
	testCfg.Diurnal = &load.DiurnalProfile{Period: period, Amplitude: amplitude}

	// 2x2 design: {raw, derived} metric sets x {guarded, raw} KS tests.
	// Mean-preserving oscillation is absorbed by the effect-size guard
	// even on raw metrics; without the guard only the derived ratios,
	// which are pointwise load-invariant, survive.
	type cell struct {
		preset string
		test   stats.TwoSampleTest
		label  string
	}
	cells := []cell{
		{metrics.SetRawAll, stats.GuardedTest{Inner: stats.KSTest{}}, "guarded-ks"},
		{metrics.SetRawAll, stats.KSTest{}, "raw-ks"},
		{metrics.SetDerivedAll, stats.GuardedTest{Inner: stats.KSTest{}}, "guarded-ks"},
		{metrics.SetDerivedAll, stats.KSTest{}, "raw-ks"},
	}
	var techniques []baselines.Technique
	for _, c := range cells {
		set, err := metrics.Preset(c.preset)
		if err != nil {
			return nil, err
		}
		techniques = append(techniques, &baselines.Paper{
			MetricNames: metrics.Names(set),
			Test:        c.test,
			Label:       c.preset + "/" + c.label,
		})
	}
	scores, err := CompareTechniquesSplit(ctx, trainCfg, testCfg, techniques)
	if err != nil {
		return nil, fmt.Errorf("eval: nonstationary extension: %w", err)
	}
	result := &NonstationaryResult{Amplitude: amplitude}
	for i, c := range cells {
		result.Rows = append(result.Rows, NonstationaryRow{
			Preset:          c.preset,
			Test:            c.label,
			Accuracy:        scores[i].Accuracy,
			Informativeness: scores[i].MeanInformativeness,
		})
	}
	return result, nil
}

// ContaminationResult reports the contaminated-baseline robustness probe:
// Algorithm 1 assumes the T_0 period is fault free, but production baselines
// are collected from systems that may already be degraded. This experiment
// deliberately leaves a fault active in one service while D_0 is collected,
// then scores the resulting model normally.
type ContaminationResult struct {
	// Contaminant carried the hidden fault during baseline collection.
	Contaminant string
	// CleanAccuracy / CleanInformativeness come from an uncontaminated
	// control run with the same seeds.
	CleanAccuracy        float64
	CleanInformativeness float64
	// DirtyAccuracy / DirtyInformativeness come from the contaminated run.
	DirtyAccuracy        float64
	DirtyInformativeness float64
}

// String renders the comparison.
func (r *ContaminationResult) String() string {
	return fmt.Sprintf("Contaminated-baseline extension (hidden fault in %s during D_0 collection)\n"+
		"clean baseline: accuracy=%.2f informativeness=%.2f\n"+
		"dirty  baseline: accuracy=%.2f informativeness=%.2f\n",
		r.Contaminant,
		r.CleanAccuracy, r.CleanInformativeness,
		r.DirtyAccuracy, r.DirtyInformativeness)
}

// RunContaminationExtension measures how a hidden fault during baseline
// collection degrades the model.
func RunContaminationExtension(ctx context.Context, o Options) (*ContaminationResult, error) {
	const contaminant = "C"
	cfg := o.Apply(Config{Build: causalbench.Build, Metrics: metrics.DerivedAll()})

	clean, err := Train(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: contamination control: %w", err)
	}
	cleanReport, err := Evaluate(ctx, cfg, clean)
	if err != nil {
		return nil, fmt.Errorf("eval: contamination control eval: %w", err)
	}

	dirty, err := trainWithContaminatedBaseline(ctx, cfg, contaminant)
	if err != nil {
		return nil, err
	}
	dirtyReport, err := Evaluate(ctx, cfg, dirty)
	if err != nil {
		return nil, fmt.Errorf("eval: contamination eval: %w", err)
	}

	return &ContaminationResult{
		Contaminant:          contaminant,
		CleanAccuracy:        cleanReport.Accuracy,
		CleanInformativeness: cleanReport.MeanInformativeness,
		DirtyAccuracy:        dirtyReport.Accuracy,
		DirtyInformativeness: dirtyReport.MeanInformativeness,
	}, nil
}

// trainWithContaminatedBaseline runs the Algorithm 1 campaign with a hidden
// fault active throughout the baseline period only.
func trainWithContaminatedBaseline(ctx context.Context, cfg Config, contaminant string) (*core.Model, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s, err := newSession(cfg, cfg.TrainMultiplier, cfg.Seed)
	if err != nil {
		return nil, err
	}
	baseline, err := s.collectWithFault(contaminant, cfg.BaselineDuration)
	if err != nil {
		return nil, fmt.Errorf("eval: contaminated baseline: %w", err)
	}
	interventions := make(map[string]*metrics.Snapshot, len(s.targets))
	for _, target := range s.targets {
		snap, err := s.collectWithFault(target, cfg.FaultDuration)
		if err != nil {
			return nil, fmt.Errorf("eval: contaminated train fault %s: %w", target, err)
		}
		interventions[target] = snap
	}
	learner, err := core.NewLearner(core.WithAlpha(cfg.Alpha))
	if err != nil {
		return nil, err
	}
	model, err := learner.Learn(ctx, baseline, interventions)
	if err != nil {
		return nil, fmt.Errorf("eval: contaminated learn: %w", err)
	}
	return model, nil
}

// BudgetRow is one training-budget level.
type BudgetRow struct {
	TrainedTargets  int
	Accuracy        float64
	Informativeness float64
}

// BudgetResult reports the intervention-budget curve: Algorithm 1's cost is
// one controlled fault window per service, and the experimental-design
// literature the paper cites ([30]-[32]) is about spending fewer
// interventions. This experiment trains on growing prefixes of CausalBench's
// fault targets and evaluates against faults in *all* services: faults in
// untrained services cannot be named (their worlds were never learned), so
// accuracy tracks the budget roughly linearly — the price of skipping
// injections, made explicit.
type BudgetResult struct {
	TotalTargets int
	Rows         []BudgetRow
}

// String renders the curve.
func (r *BudgetResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Training-budget curve (CausalBench, %d injectable services)\n", r.TotalTargets)
	fmt.Fprintf(&b, "%-16s %-9s %s\n", "trained targets", "accuracy", "informativeness")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16d %-9.2f %.2f\n", row.TrainedTargets, row.Accuracy, row.Informativeness)
	}
	return b.String()
}

// RunBudgetExtension sweeps the training budget.
func RunBudgetExtension(ctx context.Context, o Options) (*BudgetResult, error) {
	allTargets := []string{"A", "B", "C", "D", "E", "G", "H", "I"}
	result := &BudgetResult{TotalTargets: len(allTargets)}
	for _, k := range []int{2, 4, 6, 8} {
		cfg := o.Apply(Config{
			Build:   causalbench.Build,
			Metrics: metrics.DerivedAll(),
			Targets: allTargets[:k],
		})
		model, err := Train(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: budget k=%d train: %w", k, err)
		}
		// Test faults cover every injectable service, trained or not.
		evalCfg := cfg
		evalCfg.Targets = allTargets
		report, err := Evaluate(ctx, evalCfg, model)
		if err != nil {
			return nil, fmt.Errorf("eval: budget k=%d eval: %w", k, err)
		}
		result.Rows = append(result.Rows, BudgetRow{
			TrainedTargets:  k,
			Accuracy:        report.Accuracy,
			Informativeness: report.MeanInformativeness,
		})
	}
	return result, nil
}

// SweepResult aggregates a multi-seed robustness sweep.
type SweepResult struct {
	App             string
	Multiplier      float64
	Seeds           []int64
	Accuracies      []float64
	Informativeness []float64
	MeanAccuracy    float64
	StdAccuracy     float64
	MeanInformative float64
	StdInformative  float64
}

// String renders the sweep summary.
func (r *SweepResult) String() string {
	return fmt.Sprintf("Seed sweep on %s @ %gx (%d seeds)\naccuracy        = %.3f ± %.3f\ninformativeness = %.3f ± %.3f\n",
		r.App, r.Multiplier, len(r.Seeds),
		r.MeanAccuracy, r.StdAccuracy, r.MeanInformative, r.StdInformative)
}

// SweepSeeds runs the full train-and-evaluate campaign once per seed and
// reports mean and standard deviation of both measures — the robustness
// check a single-seed table cannot give. Seeds are independent deterministic
// campaigns: they shard across the campaign worker pool and assemble in seed
// order, so the result is identical to a sequential sweep.
func SweepSeeds(ctx context.Context, cfg Config, seeds []int64) (*SweepResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("eval: sweep needs at least one seed")
	}
	base, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	result := &SweepResult{
		App:        appName(base),
		Multiplier: base.TestMultiplier,
		Seeds:      append([]int64(nil), seeds...),
	}
	type outcome struct {
		accuracy float64
		info     float64
	}
	outcomes, err := parallel.Map(ctx, cfg.Workers, len(seeds), func(ctx context.Context, idx int) (outcome, error) {
		c := cfg
		c.Seed = seeds[idx]
		c.Workers = 1 // each arm stays serial; the seed fan-out owns the pool
		_, report, err := Run(ctx, c)
		if err != nil {
			return outcome{}, fmt.Errorf("eval: sweep seed %d: %w", seeds[idx], err)
		}
		return outcome{accuracy: report.Accuracy, info: report.MeanInformativeness}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, oc := range outcomes {
		result.Accuracies = append(result.Accuracies, oc.accuracy)
		result.Informativeness = append(result.Informativeness, oc.info)
	}
	result.MeanAccuracy, result.StdAccuracy = meanStd(result.Accuracies)
	result.MeanInformative, result.StdInformative = meanStd(result.Informativeness)
	return result, nil
}

// meanStd returns the mean and (population) standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
