package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"causalfl/internal/apps/synth"
	"causalfl/internal/metrics"
)

// ScalabilityRow is one application size in the scalability experiment.
type ScalabilityRow struct {
	Services        int
	Targets         int
	Accuracy        float64
	Informativeness float64
	// TrainWall and EvalWall are host wall-clock costs of the campaigns
	// (the training cost also proxies the real-world injection budget:
	// one fault window per target).
	TrainWall time.Duration
	EvalWall  time.Duration
}

// ScalabilityResult measures localization quality and cost as the
// application grows — the production-scale regime (40+ services per call
// graph, per the Alibaba study the paper cites) that the 9- and 12-service
// benchmarks cannot probe. The dominant cost is inherent to the method:
// Algorithm 1 needs one fault-injection window per service, so training time
// grows linearly in application size.
type ScalabilityResult struct {
	Rows []ScalabilityRow
}

// String renders the scaling table.
func (r *ScalabilityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scalability on generated topologies (derived metrics, 1x load)\n")
	fmt.Fprintf(&b, "%-9s %-8s %-9s %-16s %-11s %s\n",
		"services", "targets", "accuracy", "informativeness", "train-wall", "eval-wall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9d %-8d %-9.2f %-16.2f %-11s %s\n",
			row.Services, row.Targets, row.Accuracy, row.Informativeness,
			row.TrainWall.Round(time.Millisecond), row.EvalWall.Round(time.Millisecond))
	}
	return b.String()
}

// ScalabilitySizes are the default application sizes swept.
var ScalabilitySizes = []int{9, 18, 36}

// RunScalabilityExtension sweeps application sizes.
func RunScalabilityExtension(ctx context.Context, o Options) (*ScalabilityResult, error) {
	result := &ScalabilityResult{}
	clk := o.WallClock()
	for _, n := range ScalabilitySizes {
		seed := o.Seed
		if seed == 0 {
			seed = 42
		}
		build, err := synth.Builder(synth.Config{Services: n, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("eval: scalability n=%d: %w", n, err)
		}
		cfg := o.Apply(Config{Build: build, Metrics: metrics.DerivedAll()})

		trainStart := clk.Now()
		model, err := Train(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: scalability n=%d train: %w", n, err)
		}
		trainWall := clk.Now().Sub(trainStart)

		evalStart := clk.Now()
		report, err := Evaluate(ctx, cfg, model)
		if err != nil {
			return nil, fmt.Errorf("eval: scalability n=%d eval: %w", n, err)
		}
		evalWall := clk.Now().Sub(evalStart)

		result.Rows = append(result.Rows, ScalabilityRow{
			Services:        n,
			Targets:         len(model.Targets),
			Accuracy:        report.Accuracy,
			Informativeness: report.MeanInformativeness,
			TrainWall:       trainWall,
			EvalWall:        evalWall,
		})
	}
	return result, nil
}
