package eval

import (
	"strings"
	"testing"
)

// FuzzReadTrainingData hardens the dataset parser: error or valid data,
// never a panic.
func FuzzReadTrainingData(f *testing.F) {
	valid := `{
	  "app": "x",
	  "baseline": {"metrics": ["m"], "services": ["a"],
	    "data": {"m": {"a": [1, 2, 3]}}},
	  "interventions": {"a": {"metrics": ["m"], "services": ["a"],
	    "data": {"m": {"a": [9, 9, 9]}}}}
	}`
	f.Add(valid)
	f.Add(`{}`)
	f.Add(`{"baseline": {}}`)
	f.Add(strings.Replace(valid, `[9, 9, 9]`, `null`, 1))
	f.Fuzz(func(t *testing.T, raw string) {
		data, _, err := ReadTrainingData(strings.NewReader(raw))
		if err != nil {
			return
		}
		if data == nil || data.Baseline == nil {
			t.Fatal("incomplete data without error")
		}
		if err := data.Baseline.Validate(); err != nil {
			t.Fatalf("accepted invalid baseline: %v", err)
		}
	})
}
