package eval

import (
	"context"
	"strings"
	"testing"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/metrics"
	"causalfl/internal/telemetry"
)

func TestDegradedTelemetryValidation(t *testing.T) {
	bad := []DegradedTelemetry{
		{ScrapeLoss: -0.1},
		{ScrapeLoss: 1.1},
		{Corruption: -1},
		{Corruption: 2},
		{MinWindowCoverage: 1.5},
	}
	for i, d := range bad {
		cfg := Config{Build: causalbench.Build, Degraded: &d}
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("case %d: accepted %+v", i, d)
		}
	}
	cfg := Config{Build: causalbench.Build, Degraded: &DegradedTelemetry{ScrapeLoss: 0.2}}
	if _, err := cfg.withDefaults(); err != nil {
		t.Fatalf("rejected valid degradation config: %v", err)
	}
}

func TestRunDegradationSweepRejectsBadFractions(t *testing.T) {
	if _, err := RunDegradationSweep(context.Background(), Options{Quick: true}, causalbench.Build, causalbench.Name, []float64{-0.1}); err == nil {
		t.Error("accepted negative loss fraction")
	}
	if _, err := RunDegradationSweep(context.Background(), Options{Quick: true}, causalbench.Build, causalbench.Name, []float64{1.5}); err == nil {
		t.Error("accepted loss fraction above 1")
	}
}

// TestZeroLossReproducesCleanEvaluation is the sweep's anchor criterion: the
// degraded pipeline at 0% scrape loss must reproduce the clean evaluation
// exactly — same seeds, same localizations, same accuracy.
func TestZeroLossReproducesCleanEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	cfg := quickCfg()
	cfg.Targets = []string{"B", "D"} // small sweep for speed
	model, err := Train(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Evaluate(context.Background(), cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	degradedCfg := cfg
	degradedCfg.Degraded = &DegradedTelemetry{ScrapeLoss: 0, Retry: telemetry.DefaultRetryPolicy()}
	degraded, err := Evaluate(context.Background(), degradedCfg, model)
	if err != nil {
		t.Fatal(err)
	}
	if clean.String() != degraded.String() {
		t.Fatalf("0%% loss through the degraded pipeline diverged from the clean run:\n%s\nvs\n%s", clean, degraded)
	}
	for _, out := range degraded.Outcomes {
		if out.Coverage != 1 {
			t.Errorf("0%% loss outcome for %s has coverage %v, want 1", out.Target, out.Coverage)
		}
		if out.Abstained {
			t.Errorf("0%% loss outcome for %s abstained", out.Target)
		}
	}
}

// TestLossyCampaignCompletes checks the ≤20%-loss robustness criterion: the
// campaign must finish every test case without error, whatever the
// localization quality.
func TestLossyCampaignCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	cfg := quickCfg()
	cfg.Targets = []string{"B", "D"}
	cfg.Degraded = &DegradedTelemetry{
		ScrapeLoss: 0.2,
		Corruption: 0.05,
		Retry:      telemetry.DefaultRetryPolicy(),
		Repair:     metrics.DefaultRepairPolicy(),
	}
	model, err := Train(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Evaluate(context.Background(), cfg, model)
	if err != nil {
		t.Fatalf("20%% scrape loss + 5%% corruption broke the campaign: %v", err)
	}
	if len(report.Outcomes) != len(cfg.Targets) {
		t.Fatalf("got %d outcomes, want %d — lossy campaign dropped test cases", len(report.Outcomes), len(cfg.Targets))
	}
	for _, out := range report.Outcomes {
		if out.Coverage < 0 || out.Coverage > 1 {
			t.Errorf("outcome for %s has coverage %v outside [0,1]", out.Target, out.Coverage)
		}
	}
}

func TestRunDegradationSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunDegradationSweep(context.Background(), Options{Seed: 7, Quick: true}, causalbench.Build, causalbench.Name, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(result.Points))
	}
	p0, p30 := result.Points[0], result.Points[1]
	if p0.Loss != 0 || p30.Loss != 0.3 {
		t.Fatalf("points out of order: %+v", result.Points)
	}
	// The clean anchor point: full coverage, no abstentions, and the same
	// accuracy the plain campaign achieves on this app.
	if p0.MeanCoverage != 1 || p0.Abstentions != 0 {
		t.Fatalf("0%% point not clean: %+v", p0)
	}
	if p0.Accuracy < 0.75 {
		t.Fatalf("0%% point accuracy %.2f too low (degraded pipeline broke the clean path?)", p0.Accuracy)
	}
	// At 30% loss the campaign still runs to completion on every target.
	if p30.Campaigns != p0.Campaigns || p30.Campaigns == 0 {
		t.Fatalf("lossy point dropped campaigns: %+v vs %+v", p30, p0)
	}
	if p30.MeanCoverage > p0.MeanCoverage {
		t.Errorf("coverage rose under loss: %+v", p30)
	}
	out := result.String()
	for _, want := range []string{"causalbench", "0%", "30%", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep rendering missing %q:\n%s", want, out)
		}
	}
}
