package eval

import (
	"context"
	"fmt"
	"strings"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
)

// Noisy-neighbor interference experiment: an *unmonitored* batch job starts
// burning cores on the node a healthy service shares. Nothing in the
// application is faulty; no monitored counter shows the culprit. The probe
// measures which metric sets raise a false alarm.
//
// This closes the loop with the fault-type extension: the busy⊘rx occupancy
// metric is what makes latency faults visible, and it is also the only
// channel through which pure interference can masquerade as an application
// fault. Metric choice buys sensitivity at the price of false-alarm surface
// — the paper's "carefully choose the metrics" (§V-A), quantified.

// interferenceNode is the shared node of the experiment.
const interferenceNode = "shared-node"

// interferenceVictim is the CausalBench service placed on the shared node.
const interferenceVictim = "E"

// BuildWithSharedNode is causalbench.Build plus a one-core node hosting the
// victim. It satisfies apps.Builder.
func BuildWithSharedNode(eng *sim.Engine) (*apps.App, error) {
	app, err := causalbench.Build(eng)
	if err != nil {
		return nil, err
	}
	if err := app.Cluster.AddNode(sim.NodeConfig{Name: interferenceNode, Cores: 1}); err != nil {
		return nil, err
	}
	if err := app.Cluster.Place(interferenceVictim, interferenceNode); err != nil {
		return nil, err
	}
	return app, nil
}

// InterferenceRow is one metric set's verdict on one production period.
type InterferenceRow struct {
	Preset string
	// Interfered marks the batch-job period (false = healthy control).
	Interfered bool
	// AlarmRaised reports whether some metric cast an unambiguous, untied
	// vote (mass >= 1): tie fragments mean the metric could not actually
	// distinguish an explanation, so they do not constitute an alarm.
	AlarmRaised bool
	// Candidates is the (spurious) fault set when an alarm was raised.
	Candidates []string
}

// InterferenceResult is the false-alarm probe's outcome.
type InterferenceResult struct {
	Rows []InterferenceRow
}

// String renders the verdicts.
func (r *InterferenceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Noisy-neighbor interference (healthy app, unmonitored batch job beside %s)\n", interferenceVictim)
	fmt.Fprintf(&b, "%-13s %-11s %-7s %s\n", "metric set", "period", "alarm", "blamed")
	for _, row := range r.Rows {
		blamed := "-"
		if row.AlarmRaised {
			blamed = strings.Join(row.Candidates, ",")
		}
		period := "healthy"
		if row.Interfered {
			period = "batch job"
		}
		fmt.Fprintf(&b, "%-13s %-11s %-7v %s\n", row.Preset, period, row.AlarmRaised, blamed)
	}
	return b.String()
}

// CollectInterferedProduction collects healthy production data from the
// shared-node build, optionally with the batch job active. Exposed for
// diagnostics and the false-alarm probe.
func CollectInterferedProduction(cfg Config, interfere bool, seedOffset int64) (*metrics.Snapshot, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s, err := newSession(cfg, 1, cfg.Seed+seedOffset)
	if err != nil {
		return nil, err
	}
	if interfere {
		if err := s.app.Cluster.SetNodeBackgroundLoad(interferenceNode, 2); err != nil {
			return nil, fmt.Errorf("eval: interference inject: %w", err)
		}
	}
	s.settle()
	return s.collect(cfg.FaultDuration)
}

// RunInterferenceExtension trains normally (no interference), then scores
// each metric set on a healthy control period and on a period with the
// batch job active.
func RunInterferenceExtension(ctx context.Context, o Options) (*InterferenceResult, error) {
	result := &InterferenceResult{}
	for _, preset := range []string{metrics.SetDerivedAll, metrics.SetDerivedExt} {
		set, err := metrics.Preset(preset)
		if err != nil {
			return nil, err
		}
		cfg := o.Apply(Config{Build: BuildWithSharedNode, Metrics: set})
		model, err := Train(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: interference train (%s): %w", preset, err)
		}
		localizer, err := core.NewLocalizer()
		if err != nil {
			return nil, err
		}
		for _, interfere := range []bool{false, true} {
			production, err := CollectInterferedProduction(cfg, interfere, 31)
			if err != nil {
				return nil, fmt.Errorf("eval: interference collect (%s): %w", preset, err)
			}
			loc, err := localizer.Localize(ctx, model, production)
			if err != nil {
				return nil, fmt.Errorf("eval: interference localize (%s): %w", preset, err)
			}
			maxVote := 0.0
			for _, v := range loc.Votes {
				if v > maxVote {
					maxVote = v
				}
			}
			row := InterferenceRow{Preset: preset, Interfered: interfere, AlarmRaised: maxVote >= 1}
			if row.AlarmRaised {
				row.Candidates = loc.Candidates
			}
			result.Rows = append(result.Rows, row)
		}
	}
	return result, nil
}
