package eval

import (
	"context"
	"strings"
	"testing"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/baselines"
	"causalfl/internal/core"
	"causalfl/internal/metrics"
)

// quickCfg is a shortened CausalBench campaign used across the tests.
func quickCfg() Config {
	return Options{Seed: 7, Quick: true}.Apply(Config{
		Build:   causalbench.Build,
		Metrics: metrics.DerivedAll(),
	})
}

func TestInformativeness(t *testing.T) {
	tests := []struct {
		n, x int
		want float64
	}{
		{9, 1, 1.0},
		{9, 9, 0.0},
		{9, 3, 0.75},
		{1, 1, 1.0},  // degenerate universe
		{9, 12, 0.0}, // clamped
	}
	for _, tt := range tests {
		if got := Informativeness(tt.n, tt.x); got != tt.want {
			t.Errorf("Informativeness(%d,%d) = %v, want %v", tt.n, tt.x, got, tt.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Build: causalbench.Build}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != core.DefaultAlpha || cfg.Rounds != 1 || cfg.TestMultiplier != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if _, err := (Config{}).withDefaults(); err == nil {
		t.Fatal("accepted config without Build")
	}
}

func TestQuickCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	cfg := quickCfg()
	model, err := Train(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(model.Targets) != 8 {
		t.Fatalf("trained %d targets, want 8 (CausalBench injectable services)", len(model.Targets))
	}
	if len(model.Services) != 9 {
		t.Fatalf("universe has %d services, want 9", len(model.Services))
	}

	report, err := Evaluate(context.Background(), cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != 8 {
		t.Fatalf("report has %d outcomes, want 8", len(report.Outcomes))
	}
	// Even the abbreviated campaign must localize most faults at matched
	// load (the full-length campaign reaches accuracy 1.0).
	if report.Accuracy < 0.75 {
		t.Fatalf("quick campaign accuracy %.2f too low:\n%s", report.Accuracy, report)
	}
	if report.MeanInformativeness < 0.7 {
		t.Fatalf("quick campaign informativeness %.2f too low:\n%s", report.MeanInformativeness, report)
	}
	out := report.String()
	for _, want := range []string{"causalbench", "accuracy=", "fault"} {
		if !strings.Contains(out, want) {
			t.Errorf("report rendering missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	run := func() string {
		cfg := quickCfg()
		cfg.Targets = []string{"B", "D"} // small sweep for speed
		model, err := Train(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		report, err := Evaluate(context.Background(), cfg, model)
		if err != nil {
			t.Fatal(err)
		}
		return report.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical configs produced different reports:\n%s\nvs\n%s", a, b)
	}
}

func TestCollectTrainingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	cfg := quickCfg()
	cfg.Targets = []string{"C"}
	data, err := CollectTraining(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.Baseline.Validate(); err != nil {
		t.Fatal(err)
	}
	// 150s of 5s samples with 30s/15s windows -> 9 windows.
	if got := data.Baseline.WindowCount(); got != 9 {
		t.Fatalf("baseline has %d windows, want 9", got)
	}
	snap, ok := data.Interventions["C"]
	if !ok {
		t.Fatal("missing intervention dataset for C")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	// The faulted service must show a visible drop in received packets.
	base, err := data.Baseline.Series("cpu_per_rx_packets", "C")
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := snap.Series("cpu_per_rx_packets", "C")
	if err != nil {
		t.Fatal(err)
	}
	if base[0] <= 0 {
		t.Fatal("baseline cpu ratio for C should be positive")
	}
	for _, v := range faulted {
		if v != 0 {
			t.Fatalf("faulted C still shows cpu ratio %v, want 0 (connection refused)", v)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	cfg := quickCfg()
	if _, err := Evaluate(context.Background(), cfg, nil); err == nil {
		t.Fatal("Evaluate accepted nil model")
	}
}

func TestCompareTechniquesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	union := append(metrics.RawAll(), metrics.DerivedAll()...)
	union = append(union, metrics.ErrLogRate)
	cfg := Options{Seed: 11, Quick: true}.Apply(Config{
		Build:          causalbench.Build,
		Metrics:        union,
		TestMultiplier: 4,
	})
	ours := &baselines.Paper{MetricNames: metrics.Names(metrics.DerivedAll())}
	errlog := baselines.ErrLogOnly()
	random := &baselines.RandomGuess{Seed: 3}
	scores, err := CompareTechniques(context.Background(), cfg, []baselines.Technique{ours, errlog, random})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("got %d scores", len(scores))
	}
	if scores[0].Accuracy < scores[1].Accuracy {
		t.Errorf("our method (%.2f) should beat the error-log-only baseline (%.2f) at 4x load",
			scores[0].Accuracy, scores[1].Accuracy)
	}
	if scores[0].Accuracy < scores[2].Accuracy {
		t.Errorf("our method (%.2f) should beat random guessing (%.2f)",
			scores[0].Accuracy, scores[2].Accuracy)
	}
	rendered := RenderScores("test", scores)
	if !strings.Contains(rendered, "causalfl/") || !strings.Contains(rendered, "random") {
		t.Errorf("rendering missing technique names:\n%s", rendered)
	}
}

func TestCompareTechniquesValidation(t *testing.T) {
	if _, err := CompareTechniques(context.Background(), quickCfg(), nil); err == nil {
		t.Fatal("accepted empty technique list")
	}
}

func TestRunFig1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunFig1(context.Background(), Options{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	p1 := result.Sets["pattern1"]
	p2 := result.Sets["pattern2"]
	if p1 == nil || p2 == nil {
		t.Fatal("missing pattern results")
	}
	check := func(got []string, want ...string) bool {
		if len(got) != len(want) {
			return false
		}
		m := map[string]bool{}
		for _, s := range got {
			m[s] = true
		}
		for _, s := range want {
			if !m[s] {
				return false
			}
		}
		return true
	}
	// The figure's claim: the two metrics learn different causal worlds.
	if !check(p1["msg_rate"]["B"], "A", "B") {
		t.Errorf("pattern1 C(B, #logs) = %v, want {A,B} (errors on the response path)", p1["msg_rate"]["B"])
	}
	if !check(p1["req_rate"]["B"], "B", "C") {
		t.Errorf("pattern1 C(B, #requests) = %v, want {B,C} (request-path starvation)", p1["req_rate"]["B"])
	}
	if !check(p2["msg_rate"]["D"], "D", "H") {
		t.Errorf("pattern2 C(D, #logs) = %v, want {D,H}", p2["msg_rate"]["D"])
	}
	if !check(p2["req_rate"]["D"], "D", "G") {
		t.Errorf("pattern2 C(D, #requests) = %v, want {D,G} (omission fault)", p2["req_rate"]["D"])
	}
	if !strings.Contains(result.String(), "pattern2") {
		t.Error("Fig1 rendering incomplete")
	}
}

func TestRunFig2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunFig2(context.Background(), Options{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The confounder effect: failing one branch raises the request rate on
	// the other despite externally fixed load.
	if result.FaultCI.Mean <= result.HealthyI.Mean {
		t.Errorf("req@I did not increase under fault on C: %.1f -> %.1f",
			result.HealthyI.Mean, result.FaultCI.Mean)
	}
	if result.FaultIC.Mean <= result.HealthyC.Mean {
		t.Errorf("req@C did not increase under fault on I: %.1f -> %.1f",
			result.HealthyC.Mean, result.FaultIC.Mean)
	}
	if !strings.Contains(result.String(), "KS p-value") {
		t.Error("Fig2 rendering incomplete")
	}
}

func TestRunCausalSetsExampleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunCausalSetsExample(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	join := func(s []string) string { return strings.Join(s, ",") }
	if join(result.MsgRateSet) != "A,B,E" {
		t.Errorf("C(B, msg rate) = {%s}, want {A,B,E} (paper §VI-B)", join(result.MsgRateSet))
	}
	if join(result.CPUSet) != "B,C,E" {
		t.Errorf("C(B, cpu) = {%s}, want {B,C,E} (paper §VI-B)", join(result.CPUSet))
	}
}

func TestRunLoggingDisciplineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunLoggingDiscipline(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	containsE := func(set []string) bool {
		for _, s := range set {
			if s == "E" {
				return true
			}
		}
		return false
	}
	// §III-B: the heartbeat's omission is the only msg-rate signal on E;
	// silencing the developer's log erases the causal edge.
	if !containsE(result.WithLogging) {
		t.Errorf("C(B, msg) with logging = %v, want E included", result.WithLogging)
	}
	if containsE(result.WithoutLogging) {
		t.Errorf("C(B, msg) without logging = %v, want E absent", result.WithoutLogging)
	}
	if !strings.Contains(result.String(), "logging disabled") {
		t.Error("rendering incomplete")
	}
}

func TestEvaluateRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	cfg := quickCfg()
	cfg.Targets = []string{"B", "D"}
	cfg.Rounds = 2
	model, err := Train(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Evaluate(context.Background(), cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != 4 {
		t.Fatalf("2 rounds x 2 targets produced %d outcomes, want 4", len(report.Outcomes))
	}
	// Rounds use distinct seeds: both rounds should still localize.
	if report.Accuracy < 0.75 {
		t.Errorf("multi-round accuracy %.2f", report.Accuracy)
	}
}

func TestReportMisses(t *testing.T) {
	r := &Report{Outcomes: []Outcome{
		{Target: "a", Correct: true},
		{Target: "b", Correct: false},
		{Target: "c", Correct: false},
	}}
	misses := r.Misses()
	if len(misses) != 2 || misses[0] != "b" || misses[1] != "c" {
		t.Fatalf("Misses = %v", misses)
	}
}
