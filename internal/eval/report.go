package eval

import (
	"fmt"
	"sort"
	"strings"

	"causalfl/internal/core"
)

// Outcome records one scored fault-injection test.
type Outcome struct {
	// Target is the service that actually carried the fault.
	Target string
	// Candidates is the localizer's estimated fault-location set.
	Candidates []string
	// Correct reports whether Target ∈ Candidates (the paper's accuracy
	// criterion: the output is a set of candidate root causes).
	Correct bool
	// Informativeness is (n-x)/(n-1) with n services and x candidates
	// (§VI-A): 1.0 pins a single location, 0 excludes nothing. An
	// abstention scores 0: naming nobody excludes nobody.
	Informativeness float64
	// Abstained marks a localization that declined to answer because the
	// telemetry was too degraded to test anything.
	Abstained bool
	// Coverage is the localization's mean per-metric coverage (1 on clean
	// data).
	Coverage float64
	// Votes is the localizer's vote mass per candidate target.
	Votes map[string]float64
}

// newOutcome scores one localization against the known injected target.
func newOutcome(target string, loc *core.Localization, nServices int) Outcome {
	correct := false
	for _, c := range loc.Candidates {
		if c == target {
			correct = true
			break
		}
	}
	o := Outcome{
		Target:          target,
		Candidates:      append([]string(nil), loc.Candidates...),
		Correct:         correct,
		Informativeness: Informativeness(nServices, len(loc.Candidates)),
		Abstained:       loc.Abstained,
		Coverage:        1,
		Votes:           loc.Votes,
	}
	if n := len(loc.MetricCoverage); n > 0 {
		sum := 0.0
		for _, c := range loc.MetricCoverage {
			sum += c
		}
		o.Coverage = sum / float64(n)
	}
	if o.Abstained {
		o.Informativeness = 0
	}
	return o
}

// Informativeness computes (n-x)/(n-1) (paper §VI-A), clamped to [0, 1].
// n <= 1 yields 1 by convention (there is nothing to exclude).
func Informativeness(n, x int) float64 {
	if n <= 1 {
		return 1
	}
	v := float64(n-x) / float64(n-1)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Report aggregates a campaign's outcomes.
type Report struct {
	// App names the benchmark.
	App string
	// Multiplier is the test load scale.
	Multiplier float64
	// ServiceCount is n for the informativeness measure.
	ServiceCount int
	// MetricNames lists the metric set evaluated.
	MetricNames []string
	// Outcomes holds one entry per injected fault test.
	Outcomes []Outcome
	// Accuracy is the fraction of outcomes with the true target in the
	// candidate set.
	Accuracy float64
	// MeanInformativeness averages per-outcome informativeness.
	MeanInformativeness float64
}

// finalize computes the aggregate measures.
func (r *Report) finalize() {
	if len(r.Outcomes) == 0 {
		return
	}
	correct := 0
	var info float64
	for _, o := range r.Outcomes {
		if o.Correct {
			correct++
		}
		info += o.Informativeness
	}
	r.Accuracy = float64(correct) / float64(len(r.Outcomes))
	r.MeanInformativeness = info / float64(len(r.Outcomes))
}

// String renders the report as a fixed-width table with one row per fault.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s @ %.0fx load (%d services, metrics: %s)\n",
		r.App, r.Multiplier, r.ServiceCount, strings.Join(r.MetricNames, ","))
	fmt.Fprintf(&b, "%-10s %-8s %-6s %s\n", "fault", "correct", "info", "candidates")
	for _, o := range r.Outcomes {
		fmt.Fprintf(&b, "%-10s %-8v %-6.2f %s\n",
			o.Target, o.Correct, o.Informativeness, strings.Join(o.Candidates, ","))
	}
	fmt.Fprintf(&b, "accuracy=%.2f informativeness=%.2f\n", r.Accuracy, r.MeanInformativeness)
	return b.String()
}

// Misses lists the targets that were localized incorrectly, sorted.
func (r *Report) Misses() []string {
	var out []string
	for _, o := range r.Outcomes {
		if !o.Correct {
			out = append(out, o.Target)
		}
	}
	sort.Strings(out)
	return out
}
