package eval

import (
	"context"
	"fmt"
	"strings"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/chaos"
	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/repair"
)

// This file wires counterfactual repair into the evaluation: after the
// localizer names its suspects, the repair search replays the faulty window
// under candidate interventions ranked by that verdict and reports the
// minimal SLO-restoring fix set. Running it inside `eval` makes repair
// quality a measured, regression-visible dimension next to localization
// accuracy: if a change to the simulator, the search or the SLO predicate
// stops the true fix from topping the ranking, the report section moves.

// RepairRow is one fault scenario's repair outcome.
type RepairRow struct {
	App    string
	Target string
	// VerdictTop is the localizer's first-ranked suspect.
	VerdictTop string
	// FixSet renders the top-ranked minimal fix set.
	FixSet string
	// Size is the fix-set cardinality.
	Size int
	// Score is the counterfactual restoration score of the fix set.
	Score float64
	// MeetsSLO reports whether the fix set's replay restored the SLO.
	MeetsSLO bool
	// TrueFix reports whether restoring the injected target is part of the
	// top-ranked fix set.
	TrueFix bool
	// Replays counts the counterfactual replays the search spent.
	Replays int
}

// RepairResult aggregates the repair extension.
type RepairResult struct {
	Rows []RepairRow
}

// String renders the result.
func (r *RepairResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Counterfactual repair (verdict-ranked minimal fix sets)\n")
	fmt.Fprintf(&b, "%-12s %-10s %-10s %-26s %-7s %-10s %-9s %s\n",
		"app", "fault", "verdict", "minimal fix set", "score", "slo", "true-fix", "replays")
	trueFixes, total := 0, 0
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-10s %-10s %-26s %-7.4f %-10s %-9v %d\n",
			row.App, row.Target, row.VerdictTop, row.FixSet, row.Score,
			sloVerdict(row.MeetsSLO), row.TrueFix, row.Replays)
		total++
		if row.TrueFix {
			trueFixes++
		}
	}
	fmt.Fprintf(&b, "true fix in top-ranked set: %d/%d\n", trueFixes, total)
	return b.String()
}

// sloVerdict renders an SLO outcome.
func sloVerdict(ok bool) string {
	if ok {
		return "restored"
	}
	return "violated"
}

// repairCases picks the evaluated fault scenarios: two per app, covering
// distinct flows, so the section stays affordable inside the full report.
func repairCases() []struct {
	Name    string
	Build   apps.Builder
	Targets []string
} {
	return []struct {
		Name    string
		Build   apps.Builder
		Targets []string
	}{
		{causalbench.Name, causalbench.Build, []string{"B", "H"}},
		{robotshop.Name, robotshop.Build, []string{"payment", "catalogue"}},
	}
}

// RunRepairExtension trains the paper model on each app, localizes each
// evaluated fault scenario, and feeds the verdict's attribution ranking to
// the fix-set search. The searched window uses compact quick-mode durations
// in Quick runs and the repair defaults otherwise.
func RunRepairExtension(ctx context.Context, o Options) (*RepairResult, error) {
	result := &RepairResult{}
	for _, app := range repairCases() {
		cfg := o.Apply(Config{Build: app.Build, Metrics: metrics.DerivedAll()})
		model, err := Train(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: repair extension train %s: %w", app.Name, err)
		}
		localizer, err := core.NewLocalizer(core.WithWorkers(1))
		if err != nil {
			return nil, err
		}
		cfgd, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		for i, target := range app.Targets {
			seed := cfgd.Seed + 7300 + int64(i)
			production, err := CollectProduction(ctx, cfg, cfgd.TestMultiplier, target, chaos.Unavailable(), seed)
			if err != nil {
				return nil, fmt.Errorf("eval: repair extension %s/%s: %w", app.Name, target, err)
			}
			loc, err := localizer.Localize(ctx, model, production)
			if err != nil {
				return nil, fmt.Errorf("eval: repair extension localize %s/%s: %w", app.Name, target, err)
			}
			ranked := loc.Ranked()
			verdictTop := "-"
			if len(ranked) > 0 {
				verdictTop = ranked[0]
			}
			sc := repair.Scenario{
				App:    app.Name,
				Build:  app.Build,
				Seed:   seed,
				Faults: []chaos.TargetFault{{Target: target, Fault: chaos.Unavailable()}},
			}
			if o.Quick {
				sc.Warmup = repair.QuickWarmup
				sc.Window = repair.QuickWindow
			}
			report, err := repair.Search(ctx, sc, repair.Options{Ranked: ranked, Workers: cfgd.Workers})
			if err != nil {
				return nil, fmt.Errorf("eval: repair extension search %s/%s: %w", app.Name, target, err)
			}
			row := RepairRow{
				App:        app.Name,
				Target:     target,
				VerdictTop: verdictTop,
				FixSet:     "(none needed)",
				Replays:    report.Replays,
			}
			if chosen := report.Chosen(); chosen != nil {
				names := make([]string, len(chosen.Interventions))
				for j, iv := range chosen.Interventions {
					names[j] = iv.String()
					if iv.Kind == repair.KindRestore && iv.Target == target {
						row.TrueFix = true
					}
				}
				row.FixSet = strings.Join(names, " + ")
				row.Size = len(chosen.Interventions)
				row.Score = chosen.Score
				row.MeetsSLO = chosen.MeetsSLO
			}
			result.Rows = append(result.Rows, row)
		}
	}
	return result, nil
}
