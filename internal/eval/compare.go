package eval

import (
	"context"
	"fmt"
	"strings"

	"causalfl/internal/baselines"
)

// TechniqueScore is one technique's aggregate over a shared test campaign.
type TechniqueScore struct {
	Technique           string
	Accuracy            float64
	MeanInformativeness float64
}

// CompareTechniques trains every technique on one shared training campaign
// and scores them on one shared test campaign, so differences reflect the
// methods rather than collection noise. cfg.Metrics must contain the union
// of all metrics any technique projects.
func CompareTechniques(ctx context.Context, cfg Config, techniques []baselines.Technique) ([]TechniqueScore, error) {
	return CompareTechniquesSplit(ctx, cfg, cfg, techniques)
}

// CompareTechniquesSplit is CompareTechniques with distinct training and
// test campaign configurations — the shape needed when production conditions
// (load profile, fault type) deliberately differ from the controlled
// training environment. Both configs must share the application and metric
// set.
func CompareTechniquesSplit(ctx context.Context, trainCfg, testCfg Config, techniques []baselines.Technique) ([]TechniqueScore, error) {
	trainCfg, err := trainCfg.withDefaults()
	if err != nil {
		return nil, err
	}
	testCfg, err = testCfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(techniques) == 0 {
		return nil, fmt.Errorf("eval: compare: no techniques")
	}
	data, err := CollectTraining(ctx, trainCfg)
	if err != nil {
		return nil, err
	}
	cases, err := CollectTests(ctx, testCfg)
	if err != nil {
		return nil, err
	}
	n := len(data.Baseline.Services)

	scores := make([]TechniqueScore, 0, len(techniques))
	for _, tech := range techniques {
		if err := tech.Train(ctx, data.Baseline, data.Interventions); err != nil {
			return nil, fmt.Errorf("eval: compare: train %s: %w", tech.Name(), err)
		}
		correct := 0
		var info float64
		for _, tc := range cases {
			candidates, err := tech.Localize(ctx, tc.Production)
			if err != nil {
				return nil, fmt.Errorf("eval: compare: localize %s on fault %s: %w", tech.Name(), tc.Target, err)
			}
			for _, c := range candidates {
				if c == tc.Target {
					correct++
					break
				}
			}
			info += Informativeness(n, len(candidates))
		}
		scores = append(scores, TechniqueScore{
			Technique:           tech.Name(),
			Accuracy:            float64(correct) / float64(len(cases)),
			MeanInformativeness: info / float64(len(cases)),
		})
	}
	return scores, nil
}

// RenderScores prints technique scores as a fixed-width table.
func RenderScores(title string, scores []TechniqueScore) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-28s %-9s %s\n", title, "technique", "accuracy", "informativeness")
	for _, s := range scores {
		fmt.Fprintf(&b, "%-28s %-9.2f %.2f\n", s.Technique, s.Accuracy, s.MeanInformativeness)
	}
	return b.String()
}
