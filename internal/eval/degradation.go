package eval

import (
	"context"
	"fmt"
	"strings"

	"causalfl/internal/apps"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/telemetry"
)

// DegradationPoint is one row of the degradation sweep: the pipeline's
// quality measures with a given fraction of scrapes lost.
type DegradationPoint struct {
	// Loss is the per-tick scrape-loss probability applied to every
	// service during the test campaign.
	Loss float64
	// Accuracy and MeanInformativeness are the paper's measures at this
	// loss level.
	Accuracy            float64
	MeanInformativeness float64
	// Abstentions counts test cases where the localizer declined to
	// answer; Campaigns is the total number of test cases.
	Abstentions int
	Campaigns   int
	// MeanCoverage averages the per-localization metric coverage.
	MeanCoverage float64
}

// DegradationSweepResult is the accuracy-vs-scrape-loss curve for one
// application, quantifying the graceful-degradation claim next to the
// Tables I–II reproduction.
type DegradationSweepResult struct {
	App    string
	Points []DegradationPoint
}

// String renders the sweep as a fixed-width table.
func (r *DegradationSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degradation sweep on %s: localization vs scrape loss (trained clean)\n", r.App)
	fmt.Fprintf(&b, "%-7s %-9s %-6s %-9s %s\n", "loss", "accuracy", "info", "coverage", "abstained")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-7s %-9.2f %-6.2f %-9.2f %d/%d\n",
			fmt.Sprintf("%.0f%%", p.Loss*100), p.Accuracy, p.MeanInformativeness, p.MeanCoverage, p.Abstentions, p.Campaigns)
	}
	return b.String()
}

// DefaultLossFractions is the sweep grid: clean through half the scrapes
// gone.
func DefaultLossFractions() []float64 {
	return []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
}

// RunDegradationSweep trains one clean model per application, then evaluates
// it with the test campaign's telemetry degraded at each loss fraction: lossy
// scrapes with retrying collection, coverage-aware windows, and snapshot
// repair. Training stays clean so the sweep isolates what degraded
// *production* telemetry costs. The 0-loss point runs through the degraded
// pipeline too; it reproduces the clean evaluation exactly (same seeds, same
// localizations), which anchors the curve.
func RunDegradationSweep(ctx context.Context, o Options, build apps.Builder, appName string, fractions []float64) (*DegradationSweepResult, error) {
	if len(fractions) == 0 {
		fractions = DefaultLossFractions()
	}
	for _, f := range fractions {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("eval: degradation sweep: loss fraction %v outside [0,1]", f)
		}
	}
	cfg := o.Apply(Config{Build: build, Metrics: metrics.DerivedAll()})
	model, err := Train(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: degradation sweep %s: train: %w", appName, err)
	}
	result := &DegradationSweepResult{App: appName}
	// Loss fractions are independent evaluations of one read-only model:
	// fan them out and assemble the curve in grid order. Each arm keeps its
	// inner campaign serial so the pool is not oversubscribed.
	points, err := parallel.Map(ctx, cfg.Workers, len(fractions), func(ctx context.Context, i int) (DegradationPoint, error) {
		f := fractions[i]
		c := cfg
		c.Workers = 1
		c.Degraded = &DegradedTelemetry{
			ScrapeLoss: f,
			Retry:      telemetry.DefaultRetryPolicy(),
		}
		report, err := Evaluate(ctx, c, model)
		if err != nil {
			return DegradationPoint{}, fmt.Errorf("eval: degradation sweep %s @%.0f%%: %w", appName, f*100, err)
		}
		point := DegradationPoint{
			Loss:                f,
			Accuracy:            report.Accuracy,
			MeanInformativeness: report.MeanInformativeness,
			Campaigns:           len(report.Outcomes),
		}
		coverage := 0.0
		for _, out := range report.Outcomes {
			if out.Abstained {
				point.Abstentions++
			}
			coverage += out.Coverage
		}
		if point.Campaigns > 0 {
			point.MeanCoverage = coverage / float64(point.Campaigns)
		}
		return point, nil
	})
	if err != nil {
		return nil, err
	}
	result.Points = points
	return result, nil
}

// RunDegradationSweeps runs the sweep on both benchmark applications with
// the default loss grid.
func RunDegradationSweeps(ctx context.Context, o Options) ([]*DegradationSweepResult, error) {
	var out []*DegradationSweepResult
	for _, app := range benchmarkApps() {
		r, err := RunDegradationSweep(ctx, o, app.Build, app.Name, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
