package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
)

// syntheticTraining builds a tiny TrainingData by hand.
func syntheticTraining() *TrainingData {
	mk := func(offset float64) *metrics.Snapshot {
		snap := metrics.NewSnapshot([]string{"m"}, []string{"a", "b"})
		for _, svc := range []string{"a", "b"} {
			series := make([]float64, 12)
			for i := range series {
				series[i] = 5 + offset + float64(i%3)
			}
			snap.Data["m"][svc] = series
		}
		return snap
	}
	return &TrainingData{
		Baseline:      mk(0),
		Interventions: map[string]*metrics.Snapshot{"a": mk(10)},
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	data := syntheticTraining()
	var buf bytes.Buffer
	if err := data.WriteJSON(&buf, "toyapp"); err != nil {
		t.Fatal(err)
	}
	back, app, err := ReadTrainingData(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if app != "toyapp" {
		t.Errorf("app = %q", app)
	}
	if err := back.Baseline.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(back.Interventions) != 1 {
		t.Fatalf("interventions = %d", len(back.Interventions))
	}
	// The reloaded dataset must be learnable.
	learner, err := core.NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	model, err := learner.Learn(context.Background(), back.Baseline, back.Interventions)
	if err != nil {
		t.Fatal(err)
	}
	set, err := model.CausalSet("m", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("C(a,m) = %v, want both services shifted", set)
	}
}

func TestWriteJSONRejectsIncomplete(t *testing.T) {
	var buf bytes.Buffer
	if err := (&TrainingData{}).WriteJSON(&buf, "x"); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestReadTrainingDataRejections(t *testing.T) {
	cases := []string{
		"{",
		`{}`,
		`{"baseline": null, "interventions": {}}`,
		`{"app":"x","baseline":{"metrics":["m"],"services":["a"],"data":{"m":{"a":[1]}}},"interventions":{}}`,
		`{"app":"x","baseline":{"metrics":["m"],"services":["a"],"data":{"m":{"a":[1]}}},"interventions":{"a":null}}`,
		`{"app":"x","baseline":{"metrics":["m"],"services":["a"],"data":{"m":{"a":[1]}}},"interventions":{"a":{"metrics":[],"services":[],"data":{}}}}`,
	}
	for i, raw := range cases {
		if _, _, err := ReadTrainingData(strings.NewReader(raw)); err == nil {
			t.Errorf("case %d accepted: %s", i, raw)
		}
	}
}

func TestModelDescribe(t *testing.T) {
	data := syntheticTraining()
	learner, err := core.NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	model, err := learner.Learn(context.Background(), data.Baseline, data.Interventions)
	if err != nil {
		t.Fatal(err)
	}
	out := model.Describe()
	for _, want := range []string{"metric m:", "C(a)", "alpha=0.05"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}
