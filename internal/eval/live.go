package eval

import (
	"time"

	"causalfl/internal/chaos"
	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

// LiveSession exposes one running application session tick by tick, for
// streaming consumers. The batch campaign entry points (CollectTraining,
// CollectTests) advance a session in whole collection phases and hand back
// finished snapshots; `causalfl watch` instead needs to interleave small
// time steps with verdict computation, so LiveSession exports the session
// primitives — advance-and-drain, fault injection — without giving up the
// phase bookkeeping the campaign helpers rely on.
type LiveSession struct {
	s   *session
	cfg Config
}

// NewLiveSession builds an application session (load started, warmed up,
// telemetry running) at the given load multiplier. The config is defaulted
// exactly as the campaign entry points default it.
func NewLiveSession(cfg Config, multiplier float64, seed int64) (*LiveSession, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s, err := newSession(cfg, multiplier, seed)
	if err != nil {
		return nil, err
	}
	return &LiveSession{s: s, cfg: cfg}, nil
}

// Config returns the fully defaulted campaign configuration in effect.
func (ls *LiveSession) Config() Config { return ls.cfg }

// Services returns the application's service universe.
func (ls *LiveSession) Services() []string { return ls.s.app.Services() }

// Targets returns the fault-injection targets in effect.
func (ls *LiveSession) Targets() []string { return append([]string(nil), ls.s.targets...) }

// Now returns the current virtual time.
func (ls *LiveSession) Now() sim.Time { return ls.s.eng.Now() }

// Advance runs d of virtual time and drains the samples recorded during it,
// per service in ascending tick order.
func (ls *LiveSession) Advance(d time.Duration) map[string][]telemetry.Sample {
	ls.s.eng.Run(ls.s.eng.Now() + d)
	return ls.s.sampler.Drain()
}

// Discard drops buffered samples without returning them (settling periods).
func (ls *LiveSession) Discard() { ls.s.sampler.Discard() }

// Inject injects a fault into target; it stays active until Clear.
func (ls *LiveSession) Inject(target string, f chaos.Fault) error {
	return ls.s.injector.Inject(target, f)
}

// Clear removes the fault from target.
func (ls *LiveSession) Clear(target string) error {
	return ls.s.injector.Clear(target)
}
