package eval

import (
	"context"
	"fmt"
	"strings"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/core"
	"causalfl/internal/load"
	"causalfl/internal/metrics"
	"causalfl/internal/traces"
)

// TraceComparisonRow scores one injected fault under both localizers.
type TraceComparisonRow struct {
	Target          string
	TraceCandidates []string
	TraceCorrect    bool
	OurCandidates   []string
	OurCorrect      bool
}

// TraceComparisonResult pits the trace-based root-cause baseline (deepest
// erroring span of failed user traces) against the interventional causal
// localizer on every CausalBench fault. It operationalizes the paper's
// introductory argument: tracing pinpoints faults on synchronous request
// paths but is blind to omission faults (G dies and no user trace ever
// fails) and degrades when services drop trace context.
type TraceComparisonResult struct {
	Rows          []TraceComparisonRow
	TraceAccuracy float64
	TraceInfo     float64
	OurAccuracy   float64
	OurInfo       float64
}

// String renders the per-fault comparison.
func (r *TraceComparisonResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tracing vs interventional causal learning (CausalBench)\n")
	fmt.Fprintf(&b, "%-8s %-32s %s\n", "fault", "trace RCA", "causalfl")
	mark := func(ok bool) string {
		if ok {
			return "+"
		}
		return "-"
	}
	for _, row := range r.Rows {
		traceCol := fmt.Sprintf("%s {%s}", mark(row.TraceCorrect), strings.Join(row.TraceCandidates, ","))
		fmt.Fprintf(&b, "%-8s %-32s %s {%s}\n",
			row.Target, traceCol, mark(row.OurCorrect), strings.Join(row.OurCandidates, ","))
	}
	fmt.Fprintf(&b, "trace RCA: accuracy=%.2f informativeness=%.2f\n", r.TraceAccuracy, r.TraceInfo)
	fmt.Fprintf(&b, "causalfl : accuracy=%.2f informativeness=%.2f\n", r.OurAccuracy, r.OurInfo)
	return b.String()
}

// RunTraceComparison trains the causal model, then for every fault target
// collects one production session observed simultaneously by the metric
// pipeline and a span collector, and scores both localizers on it.
func RunTraceComparison(ctx context.Context, o Options) (*TraceComparisonResult, error) {
	cfg := o.Apply(Config{
		Build:   causalbench.Build,
		Metrics: metrics.DerivedAll(),
	})
	model, err := Train(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: trace comparison: %w", err)
	}
	localizer, err := core.NewLocalizer()
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	result := &TraceComparisonResult{}
	traceLoc := &traces.Localizer{ClientName: load.ClientName}
	n := len(model.Services)
	var traceHits, ourHits int
	var traceInfo, ourInfo float64

	for i, target := range model.Targets {
		s, err := newSession(cfg, cfg.TestMultiplier, cfg.Seed+7000+int64(i))
		if err != nil {
			return nil, err
		}
		collector := traces.NewCollector()
		s.app.Cluster.SetSpanObserver(collector.Observe)

		if err := s.injector.Inject(target, cfg.Fault); err != nil {
			return nil, fmt.Errorf("eval: trace comparison inject %s: %w", target, err)
		}
		s.settle()
		collector.Drain() // discard warmup/settle spans
		production, err := s.collect(cfg.FaultDuration)
		if err != nil {
			return nil, err
		}
		spans := collector.Drain()

		traceCandidates, err := traceLoc.Localize(spans, s.app.Services())
		if err != nil {
			return nil, fmt.Errorf("eval: trace comparison localize %s: %w", target, err)
		}
		loc, err := localizer.Localize(ctx, model, production)
		if err != nil {
			return nil, err
		}

		row := TraceComparisonRow{
			Target:          target,
			TraceCandidates: traceCandidates,
			TraceCorrect:    containsString(traceCandidates, target) && len(traceCandidates) < n,
			OurCandidates:   loc.Candidates,
			OurCorrect:      containsString(loc.Candidates, target),
		}
		result.Rows = append(result.Rows, row)
		if row.TraceCorrect {
			traceHits++
		}
		if row.OurCorrect {
			ourHits++
		}
		traceInfo += Informativeness(n, len(traceCandidates))
		ourInfo += Informativeness(n, len(loc.Candidates))
	}
	total := float64(len(result.Rows))
	result.TraceAccuracy = float64(traceHits) / total
	result.OurAccuracy = float64(ourHits) / total
	result.TraceInfo = traceInfo / total
	result.OurInfo = ourInfo / total
	return result, nil
}

// containsString reports membership.
func containsString(set []string, s string) bool {
	for _, v := range set {
		if v == s {
			return true
		}
	}
	return false
}
