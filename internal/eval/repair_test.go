package eval

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestRunRepairExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunRepairExtension(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(result.Rows))
	}
	for _, row := range result.Rows {
		if !row.MeetsSLO {
			t.Errorf("%s/%s: fix set does not restore the SLO", row.App, row.Target)
		}
		if !row.TrueFix {
			t.Errorf("%s/%s: true restoration missing from top set %q", row.App, row.Target, row.FixSet)
		}
		if row.Size != 1 {
			t.Errorf("%s/%s: single-fault scenario needs a singleton fix, got size %d (%q)",
				row.App, row.Target, row.Size, row.FixSet)
		}
		if row.Score != 1 {
			t.Errorf("%s/%s: true fix score %v, want exactly 1", row.App, row.Target, row.Score)
		}
		if row.VerdictTop != row.Target {
			t.Errorf("%s/%s: localizer verdict %q misses the target", row.App, row.Target, row.VerdictTop)
		}
	}
	if !strings.Contains(result.String(), "true fix in top-ranked set: 4/4") {
		t.Errorf("summary line wrong:\n%s", result.String())
	}
}

func TestRunRepairExtensionDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	serial, err := RunRepairExtension(context.Background(), Options{Seed: 7, Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunRepairExtension(context.Background(), Options{Seed: 7, Quick: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("repair extension differs across worker counts:\nserial %+v\npooled %+v", serial, pooled)
	}
}
