package eval

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/metrics"
)

func TestRunFaultTypeExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunFaultTypeExtension(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(result.Rows))
	}
	byKey := make(map[string]FaultTypeRow, len(result.Rows))
	for _, row := range result.Rows {
		byKey[row.TrainedOn+"->"+row.Fault] = row
	}
	control := byKey["http-service-unavailable->http-service-unavailable"]
	if control.Accuracy < 0.85 {
		t.Errorf("control accuracy %.2f too low", control.Accuracy)
	}
	errRate := byKey["http-service-unavailable->error-rate"]
	if errRate.Accuracy < 0.75 {
		t.Errorf("error-rate faults should transfer from unavailable training, got %.2f", errRate.Accuracy)
	}
	crossLatency := byKey["http-service-unavailable->latency"]
	matchedLatency := byKey["latency->latency"]
	// The experiment's finding: latency propagates along a different
	// world, so matched training must beat cross-type transfer clearly.
	if matchedLatency.Accuracy < crossLatency.Accuracy+0.25 {
		t.Errorf("matched latency training (%.2f) should clearly beat cross-type (%.2f)",
			matchedLatency.Accuracy, crossLatency.Accuracy)
	}
	if !strings.Contains(result.String(), "latency") {
		t.Error("rendering incomplete")
	}
}

func TestRunMultiFaultExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunMultiFaultExtension(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if result.Pairs == 0 {
		t.Fatal("no pairs evaluated")
	}
	if result.AtLeastOne < result.BothInTop2 {
		t.Fatal("inconsistent counters")
	}
	// The greedy explain-away localizer should recover most pairs fully.
	if frac := float64(result.BothInTop2) / float64(result.Pairs); frac < 0.75 {
		t.Errorf("explain-away recovered only %.2f of fault pairs:\n%s", frac, result)
	}
}

func TestRunTraceComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunTraceComparison(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(result.Rows))
	}
	var gRow *TraceComparisonRow
	for i := range result.Rows {
		if result.Rows[i].Target == "G" {
			gRow = &result.Rows[i]
		}
	}
	if gRow == nil {
		t.Fatal("no row for the omission fault G")
	}
	// The paper's argument: tracing cannot see the omission fault, the
	// interventional method can.
	if gRow.TraceCorrect {
		t.Errorf("trace RCA should fail on the omission fault G, got candidates %v", gRow.TraceCandidates)
	}
	if !gRow.OurCorrect {
		t.Errorf("causalfl should localize the omission fault G, got %v", gRow.OurCandidates)
	}
	if result.OurAccuracy <= result.TraceAccuracy {
		t.Errorf("causalfl (%.2f) should beat trace RCA (%.2f) overall",
			result.OurAccuracy, result.TraceAccuracy)
	}
}

func TestSweepSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	cfg := Options{Quick: true}.Apply(Config{
		Build:   causalbench.Build,
		Metrics: metrics.DerivedAll(),
		Targets: []string{"B", "D"},
	})
	result, err := SweepSeeds(context.Background(), cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Accuracies) != 3 {
		t.Fatalf("swept %d seeds, want 3", len(result.Accuracies))
	}
	if result.MeanAccuracy < 0.5 {
		t.Errorf("sweep mean accuracy %.2f suspiciously low", result.MeanAccuracy)
	}
	if result.StdAccuracy < 0 || result.StdInformative < 0 {
		t.Error("negative standard deviation")
	}
	if !strings.Contains(result.String(), "Seed sweep") {
		t.Error("rendering incomplete")
	}
}

func TestRunNonstationaryExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunNonstationaryExtension(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 4 {
		t.Fatalf("got %d rows, want the 2x2 design", len(result.Rows))
	}
	byKey := make(map[string]NonstationaryRow)
	for _, row := range result.Rows {
		byKey[row.Preset+"/"+row.Test] = row
	}
	guardedDerived := byKey[metrics.SetDerivedAll+"/guarded-ks"]
	if guardedDerived.Accuracy < 0.85 {
		t.Errorf("derived+guard should survive diurnal load, got %.2f", guardedDerived.Accuracy)
	}
	rawKSRaw := byKey[metrics.SetRawAll+"/raw-ks"]
	if rawKSRaw.Accuracy > guardedDerived.Accuracy {
		t.Errorf("raw metrics with unguarded KS (%.2f) should not beat derived+guard (%.2f) under diurnal load",
			rawKSRaw.Accuracy, guardedDerived.Accuracy)
	}
	if !strings.Contains(result.String(), "diurnal") {
		t.Error("rendering incomplete")
	}
}

func TestRunScalabilityExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunScalabilityExtension(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != len(ScalabilitySizes) {
		t.Fatalf("got %d rows, want %d", len(result.Rows), len(ScalabilitySizes))
	}
	for _, row := range result.Rows {
		if row.Accuracy < 0.8 {
			t.Errorf("accuracy %.2f at %d services; the method should scale", row.Accuracy, row.Services)
		}
		if row.Targets < row.Services/2 {
			t.Errorf("only %d of %d services injectable", row.Targets, row.Services)
		}
	}
	// Cost grows with size (linearly in targets); the largest sweep must
	// cost more than the smallest.
	first, last := result.Rows[0], result.Rows[len(result.Rows)-1]
	if last.TrainWall <= first.TrainWall {
		t.Errorf("training cost did not grow with size: %v -> %v", first.TrainWall, last.TrainWall)
	}
	if !strings.Contains(result.String(), "services") {
		t.Error("rendering incomplete")
	}
}

func TestRunContaminationExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunContaminationExtension(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if result.Contaminant == "" {
		t.Fatal("no contaminant recorded")
	}
	if result.CleanAccuracy < 0.85 {
		t.Errorf("control run accuracy %.2f too low", result.CleanAccuracy)
	}
	// The contaminated model must not silently look as good as the clean
	// one on both measures — the experiment exists to show the cost of a
	// dirty baseline.
	if result.DirtyAccuracy >= result.CleanAccuracy &&
		result.DirtyInformativeness >= result.CleanInformativeness {
		t.Errorf("contamination cost nothing: clean %.2f/%.2f vs dirty %.2f/%.2f",
			result.CleanAccuracy, result.CleanInformativeness,
			result.DirtyAccuracy, result.DirtyInformativeness)
	}
	if !strings.Contains(result.String(), "hidden fault") {
		t.Error("rendering incomplete")
	}
}

func TestRunInterferenceExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunInterferenceExtension(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 4 {
		t.Fatalf("got %d rows, want the 2x2 design", len(result.Rows))
	}
	key := func(preset string, interfered bool) string {
		return fmt.Sprintf("%s/%v", preset, interfered)
	}
	rows := make(map[string]InterferenceRow)
	for _, row := range result.Rows {
		rows[key(row.Preset, row.Interfered)] = row
	}
	// Healthy controls must never alarm.
	for _, preset := range []string{metrics.SetDerivedAll, metrics.SetDerivedExt} {
		if rows[key(preset, false)].AlarmRaised {
			t.Errorf("%s alarmed on the healthy control: %v", preset, rows[key(preset, false)].Candidates)
		}
	}
	if rows[key(metrics.SetDerivedAll, true)].AlarmRaised {
		t.Errorf("the paper's metric set false-alarmed on pure interference: blamed %v",
			rows[key(metrics.SetDerivedAll, true)].Candidates)
	}
	if !rows[key(metrics.SetDerivedExt, true)].AlarmRaised {
		t.Error("the occupancy-extended set should be sensitive to interference (that is its tradeoff)")
	}
	if !strings.Contains(result.String(), "batch job") {
		t.Error("rendering incomplete")
	}
}

func TestRunBudgetExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test skipped in -short mode")
	}
	result, err := RunBudgetExtension(context.Background(), Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Rows) != 4 {
		t.Fatalf("got %d rows", len(result.Rows))
	}
	// Accuracy must be (weakly) monotone in the budget and track k/n.
	prev := -1.0
	for _, row := range result.Rows {
		if row.Accuracy < prev-0.13 {
			t.Errorf("accuracy regressed with larger budget: %.2f after %.2f", row.Accuracy, prev)
		}
		ceiling := float64(row.TrainedTargets) / float64(result.TotalTargets)
		if row.Accuracy > ceiling+1e-9 {
			t.Errorf("k=%d accuracy %.2f exceeds the %.2f budget ceiling (untrained faults cannot be named)",
				row.TrainedTargets, row.Accuracy, ceiling)
		}
		prev = row.Accuracy
	}
	full := result.Rows[len(result.Rows)-1]
	if full.TrainedTargets != result.TotalTargets || full.Accuracy < 0.85 {
		t.Errorf("full budget row: %+v", full)
	}
}

func TestSweepSeedsValidation(t *testing.T) {
	if _, err := SweepSeeds(context.Background(), Config{Build: causalbench.Build}, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if std < 1.99 || std > 2.01 {
		t.Errorf("population std = %v, want 2", std)
	}
}
