package eval

import (
	"encoding/json"
	"fmt"
	"io"

	"causalfl/internal/metrics"
)

// Dataset persistence. The paper's platform separates fault injection and
// data collection from learning [34]; these helpers give the CLI the same
// decomposition: `causalfl collect` produces a dataset file, `causalfl
// learn` fits the model from it, and `causalfl localize` consumes the model.
// Researchers can also hand-edit or generate dataset files to probe the
// learner directly.

// datasetFile is the serialized TrainingData.
type datasetFile struct {
	// App names the application the data came from.
	App string `json:"app"`
	// Baseline is D_0.
	Baseline *metrics.Snapshot `json:"baseline"`
	// Interventions maps injected service -> D_s.
	Interventions map[string]*metrics.Snapshot `json:"interventions"`
}

// WriteJSON serializes the training data.
func (d *TrainingData) WriteJSON(w io.Writer, app string) error {
	if d.Baseline == nil || len(d.Interventions) == 0 {
		return fmt.Errorf("eval: dataset incomplete (baseline=%v interventions=%d)",
			d.Baseline != nil, len(d.Interventions))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(datasetFile{App: app, Baseline: d.Baseline, Interventions: d.Interventions}); err != nil {
		return fmt.Errorf("eval: encode dataset: %w", err)
	}
	return nil
}

// ReadTrainingData deserializes and validates a dataset file, returning the
// data and the application name it was collected from.
func ReadTrainingData(r io.Reader) (*TrainingData, string, error) {
	var f datasetFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, "", fmt.Errorf("eval: decode dataset: %w", err)
	}
	if f.Baseline == nil {
		return nil, "", fmt.Errorf("eval: dataset has no baseline")
	}
	if err := f.Baseline.Validate(); err != nil {
		return nil, "", fmt.Errorf("eval: dataset baseline: %w", err)
	}
	if len(f.Interventions) == 0 {
		return nil, "", fmt.Errorf("eval: dataset has no interventions")
	}
	for target, snap := range f.Interventions {
		if snap == nil {
			return nil, "", fmt.Errorf("eval: dataset intervention %q is null", target)
		}
		if err := snap.Validate(); err != nil {
			return nil, "", fmt.Errorf("eval: dataset intervention %q: %w", target, err)
		}
	}
	return &TrainingData{Baseline: f.Baseline, Interventions: f.Interventions}, f.App, nil
}
